// Sdfdemo shows the high-level path the paper's introduction motivates:
// an HDF5-like container (package sdf) whose hyperslab selections flow
// down as derived datatypes and move with single datatype I/O
// operations. Four ranks cooperatively write one climate-style dataset,
// then one process reads back a strided slice.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"dtio"
	"dtio/sdf"
)

func main() {
	cluster, err := dtio.NewCluster(dtio.ClusterConfig{Servers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const (
		ranks = 4
		rows  = 64  // latitude
		cols  = 128 // longitude
	)

	// One process lays out the container.
	setup, err := sdf.Create(cluster.Mount(), "climate.sdf")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := setup.CreateDataset("sst", 8, rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	ds.SetAttr("units", "degC")
	ds.SetAttr("grid", "gaussian")
	if err := setup.Close(); err != nil {
		log.Fatal(err)
	}

	// Every rank writes its latitude band collectively.
	err = cluster.World(ranks, func(rank int, fs *dtio.FS) error {
		st, err := sdf.Open(fs, "climate.sdf")
		if err != nil {
			return err
		}
		st.SetMethod(dtio.DtypeIO)
		d, err := st.Dataset("sst")
		if err != nil {
			return err
		}
		band := sdf.Slab{
			Start:  []int64{int64(rank * rows / ranks), 0},
			Count:  []int64{rows / ranks, cols},
			Stride: []int64{1, 1},
		}
		buf := make([]byte, band.Elems()*8)
		for i := int64(0); i < band.Elems(); i++ {
			r := band.Start[0] + i/cols
			c := i % cols
			v := 15 + 10*math.Sin(float64(r)/8)*math.Cos(float64(c)/16)
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return d.WriteSlabAll(band, buf)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Analysis: read every 8th longitude of every 4th latitude — a
	// strided hyperslab that becomes ONE datatype I/O operation.
	st, err := sdf.Open(cluster.Mount(), "climate.sdf")
	if err != nil {
		log.Fatal(err)
	}
	d, err := st.Dataset("sst")
	if err != nil {
		log.Fatal(err)
	}
	units, _ := d.Attr("units")
	slice := sdf.Slab{
		Start:  []int64{0, 0},
		Count:  []int64{rows / 4, cols / 8},
		Stride: []int64{4, 8},
	}
	buf := make([]byte, slice.Elems()*8)
	if err := d.ReadSlab(slice, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q %v (%s): strided slice of %d samples read as one structured op\n",
		d.Name(), d.Dims(), units, slice.Elems())
	for r := 0; r < 4; r++ {
		fmt.Printf("  lat %2d:", r*4)
		for c := 0; c < 8; c++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[(r*int(slice.Count[1])+c)*8:]))
			fmt.Printf(" %6.2f", v)
		}
		fmt.Println()
	}
}
