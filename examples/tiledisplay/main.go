// Tiledisplay reproduces the paper's tile reader scenario (§4.2) as an
// application: six clients, each driving one tile of a 3x2 display wall,
// read their overlapping portions of rendered frames — the file access
// is a 2-D subarray per client, described once and read with datatype
// I/O.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dtio"
)

func main() {
	var (
		tilesX  = flag.Int("tx", 3, "tiles across")
		tilesY  = flag.Int("ty", 2, "tiles down")
		tileW   = flag.Int("tw", 256, "tile width (px)")
		tileH   = flag.Int("th", 192, "tile height (px)")
		overX   = flag.Int("ox", 64, "horizontal overlap (px)")
		overY   = flag.Int("oy", 32, "vertical overlap (px)")
		frames  = flag.Int("frames", 4, "frames to play")
		methods = flag.String("method", "dtype", "posix|sieve|twophase|listio|dtype")
	)
	flag.Parse()
	const depth = 3 // 24-bit colour

	frameW := *tilesX**tileW - (*tilesX-1)**overX
	frameH := *tilesY**tileH - (*tilesY-1)**overY
	frameBytes := frameW * frameH * depth
	tileBytes := *tileW * *tileH * depth
	nClients := *tilesX * *tilesY
	fmt.Printf("display %dx%d tiles; frame %dx%d px = %d bytes; %d clients\n",
		*tilesX, *tilesY, frameW, frameH, frameBytes, nClients)

	method := map[string]dtio.Method{
		"posix": dtio.Posix, "sieve": dtio.Sieve, "twophase": dtio.TwoPhase,
		"listio": dtio.ListIO, "dtype": dtio.DtypeIO,
	}[*methods]

	cluster, err := dtio.NewCluster(dtio.ClusterConfig{Servers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The render farm: write the frames contiguously.
	fs := cluster.Mount()
	f, err := fs.Create("frames.raw")
	if err != nil {
		log.Fatal(err)
	}
	frame := make([]byte, frameBytes)
	for fr := 0; fr < *frames; fr++ {
		for i := range frame {
			frame[i] = pixel(fr, i)
		}
		if err := f.Write(int64(fr*frameBytes), frame, dtio.Bytes(int64(frameBytes)), 1); err != nil {
			log.Fatal(err)
		}
	}

	// The display wall: each client reads its tile from every frame.
	start := time.Now()
	err = cluster.World(nClients, func(rank int, fs *dtio.FS) error {
		tf, err := fs.Open("frames.raw")
		if err != nil {
			return err
		}
		tf.SetMethod(method)
		tx, ty := rank%*tilesX, rank / *tilesX
		view := dtio.Subarray(
			[]int{frameH, frameW * depth},
			[]int{*tileH, *tileW * depth},
			[]int{ty * (*tileH - *overY), tx * (*tileW - *overX) * depth},
			dtio.OrderC, dtio.Byte)
		if err := tf.SetView(0, dtio.Byte, view); err != nil {
			return err
		}
		buf := make([]byte, tileBytes)
		for fr := 0; fr < *frames; fr++ {
			if err := tf.ReadAll(int64(fr*tileBytes), buf, dtio.Bytes(int64(tileBytes)), 1); err != nil {
				return err
			}
			// Spot-check the tile's first row against the renderer.
			rowStart := (ty*(*tileH-*overY)*frameW + tx*(*tileW-*overX)) * depth
			for i := 0; i < *tileW*depth; i++ {
				if buf[i] != pixel(fr, rowStart+i) {
					return fmt.Errorf("tile (%d,%d) frame %d: pixel %d wrong", tx, ty, fr, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	total := nClients * *frames * tileBytes
	fmt.Printf("method=%s: %d clients played %d frames (%.1f MB of tile data) in %v\n",
		*methods, nClients, *frames, float64(total)/1e6, elapsed.Round(time.Millisecond))
}

// pixel is the renderer's deterministic pattern.
func pixel(frame, i int) byte { return byte(frame*131 + i*7 + i>>11) }
