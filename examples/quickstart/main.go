// Quickstart: start an in-process parallel file system, describe a
// strided dataset with a datatype, and move it with one datatype I/O
// operation.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dtio"
)

func main() {
	// A 4-server parallel file system running in this process.
	cluster, err := dtio.NewCluster(dtio.ClusterConfig{Servers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs := cluster.Mount()
	f, err := fs.Create("matrix.dat")
	if err != nil {
		log.Fatal(err)
	}

	// The file holds a 64x64 float64 matrix. We want column 3: one
	// element per row, stride of a full row — a classic structured,
	// noncontiguous access.
	const n = 64
	column := dtio.Vector(n, 1, n, dtio.Float64)
	if err := f.SetView(0, dtio.Float64, column); err != nil {
		log.Fatal(err)
	}

	// Write the column in ONE datatype I/O operation: the file system's
	// servers expand the access description themselves (no offset list
	// crosses the network).
	colData := make([]byte, n*8)
	for i := range colData {
		colData[i] = byte(i)
	}
	if err := f.Write(0, colData, dtio.Bytes(n*8), 1); err != nil {
		log.Fatal(err)
	}

	// Read it back through a different method to show they interoperate.
	f.SetMethod(dtio.ListIO)
	got := make([]byte, n*8)
	if err := f.Read(0, got, dtio.Bytes(n*8), 1); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, colData) {
		log.Fatal("read back differs")
	}

	size, _ := f.Size()
	fmt.Printf("wrote column of %d float64s as one structured op; file size now %d bytes\n", n, size)
	fmt.Printf("column datatype: size=%dB extent=%dB regions=%d\n",
		column.Size(), column.Extent(), column.NumRegions())
}
