// Block3d reproduces the paper's ROMIO three-dimensional block test
// (§4.3) as an application: an N³ array block-decomposed over a cube of
// processes, written and read back collectively, comparing the access
// methods' operation counts on the way.
package main

import (
	"flag"
	"fmt"
	"log"

	"dtio"
)

func main() {
	var (
		n      = flag.Int("n", 48, "array edge (elements)")
		cube   = flag.Int("cube", 2, "process cube edge (cube^3 ranks)")
		method = flag.String("method", "dtype", "posix|sieve|twophase|listio|dtype")
	)
	flag.Parse()
	const elem = 4 // int32 elements
	if *n%*cube != 0 {
		log.Fatalf("array edge %d not divisible by cube edge %d", *n, *cube)
	}
	ranks := *cube * *cube * *cube
	block := *n / *cube
	blockBytes := block * block * block * elem

	m := map[string]dtio.Method{
		"posix": dtio.Posix, "sieve": dtio.Sieve, "twophase": dtio.TwoPhase,
		"listio": dtio.ListIO, "dtype": dtio.DtypeIO,
	}[*method]

	cluster, err := dtio.NewCluster(dtio.ClusterConfig{Servers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	view := func(rank int) *dtio.Type {
		z := rank % *cube
		y := (rank / *cube) % *cube
		x := rank / (*cube * *cube)
		return dtio.Subarray(
			[]int{*n, *n, *n},
			[]int{block, block, block},
			[]int{x * block, y * block, z * block},
			dtio.OrderC, dtio.Bytes(elem))
	}
	fmt.Printf("array %d^3 (%d MB) over %d ranks; each block %d^3; view has %d file regions\n",
		*n, *n**n**n*elem/1000000, ranks, block, view(0).NumRegions())

	// Collective write: each rank fills its block with a global pattern.
	err = cluster.World(ranks, func(rank int, fs *dtio.FS) error {
		var f *dtio.File
		var err error
		if rank == 0 {
			f, err = fs.Create("array3d")
		}
		fs.Barrier()
		if rank != 0 {
			f, err = fs.Open("array3d")
		}
		if err != nil {
			return err
		}
		f.SetMethod(m)
		v := view(rank)
		if err := f.SetView(0, dtio.Bytes(elem), v); err != nil {
			return err
		}
		buf := make([]byte, blockBytes)
		pos := 0
		v.Walk(0, func(off, ln int64) bool {
			for i := int64(0); i < ln; i++ {
				buf[pos+int(i)] = pattern(off + i)
			}
			pos += int(ln)
			return true
		})
		if err := f.WriteAll(0, buf, dtio.Bytes(int64(blockBytes)), 1); err != nil {
			return err
		}
		fs.Barrier()
		// Collective read back through a (possibly) different block: the
		// transpose neighbour, to prove blocks interleave correctly.
		peer := (rank + ranks/2) % ranks
		pv := view(peer)
		if err := f.SetView(0, dtio.Bytes(elem), pv); err != nil {
			return err
		}
		got := make([]byte, blockBytes)
		if err := f.ReadAll(0, got, dtio.Bytes(int64(blockBytes)), 1); err != nil {
			return err
		}
		pos = 0
		var bad error
		pv.Walk(0, func(off, ln int64) bool {
			for i := int64(0); i < ln; i++ {
				if got[pos+int(i)] != pattern(off+i) {
					bad = fmt.Errorf("rank %d: array byte %d wrong", rank, off+i)
					return false
				}
			}
			pos += int(ln)
			return true
		})
		return bad
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method=%s: wrote and cross-read all %d blocks correctly\n", *method, ranks)
}

// pattern is the global array oracle by byte offset.
func pattern(off int64) byte { return byte(off*131 + off>>11) }
