// Flashcheckpoint reproduces the paper's FLASH I/O scenario (§4.4) as an
// application: every rank holds AMR blocks of cells with guard cells and
// interleaved variables, and checkpoints them into a variable-major file
// — noncontiguous in memory AND in file — with a single collective write.
package main

import (
	"flag"
	"fmt"
	"log"

	"dtio"
)

func main() {
	var (
		ranks  = flag.Int("ranks", 4, "number of processes")
		blocks = flag.Int("blocks", 8, "AMR blocks per process")
		nb     = flag.Int("nb", 4, "interior cells per dimension")
		guard  = flag.Int("guard", 2, "guard cells per side")
		vars   = flag.Int("vars", 6, "variables per cell")
		method = flag.String("method", "dtype", "posix|twophase|listio|dtype")
	)
	flag.Parse()
	const elem = 8 // float64 variables

	m := map[string]dtio.Method{
		"posix": dtio.Posix, "twophase": dtio.TwoPhase,
		"listio": dtio.ListIO, "dtype": dtio.DtypeIO,
	}[*method]

	side := *nb + 2**guard
	cell := *vars * elem
	blockAlloc := side * side * side * cell
	interior := *nb * *nb * *nb
	perRankVar := *blocks * interior * elem // bytes of one variable, one rank

	cluster, err := dtio.NewCluster(dtio.ClusterConfig{Servers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.World(*ranks, func(rank int, fs *dtio.FS) error {
		var f *dtio.File
		var err error
		if rank == 0 {
			f, err = fs.Create("flash.chk")
		}
		fs.Barrier()
		if rank != 0 {
			f, err = fs.Open("flash.chk")
		}
		if err != nil {
			return err
		}
		f.SetMethod(m)

		// Memory: for each (variable, block), the interior cells of a
		// guarded 3-D allocation, picking one 8-byte variable per cell.
		row := dtio.HVector(*nb, 1, int64(cell), dtio.Float64)
		plane := dtio.HVector(*nb, 1, int64(side*cell), row)
		cube := dtio.HVector(*nb, 1, int64(side*side*cell), plane)
		g := *guard
		guardOff := int64(((g*side+g)*side + g) * cell)
		var displs []int64
		for v := 0; v < *vars; v++ {
			for b := 0; b < *blocks; b++ {
				displs = append(displs, int64(b*blockAlloc)+guardOff+int64(v*elem))
			}
		}
		memType := dtio.HBlockIndexed(1, displs, cube)

		// File: variable-major — for each variable, this rank's
		// contiguous run at offset (v*ranks + rank) * perRankVar.
		lens := make([]int64, *vars)
		fdispls := make([]int64, *vars)
		for v := 0; v < *vars; v++ {
			lens[v] = int64(*blocks * interior)
			fdispls[v] = int64((v**ranks + rank)) * int64(perRankVar)
		}
		fileType := dtio.HIndexed(lens, fdispls, dtio.Float64)
		if err := f.SetView(0, dtio.Float64, fileType); err != nil {
			return err
		}

		// Fill interiors; guard cells stay 0xFF and must never reach the
		// file.
		buf := make([]byte, *blocks*blockAlloc)
		for i := range buf {
			buf[i] = 0xFF
		}
		memType.Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				b := byte(int(i)*13 + rank)
				if b == 0xFF {
					b = 0 // keep 0xFF as the guard-cell sentinel
				}
				buf[i] = b
			}
			return true
		})

		// One collective checkpoint write.
		if err := f.WriteAll(0, buf, memType, 1); err != nil {
			return err
		}
		fs.Barrier()
		if rank == 0 {
			size, err := f.Size()
			if err != nil {
				return err
			}
			fmt.Printf("checkpoint written: %d ranks x %d blocks x %d vars = %d bytes (method=%s)\n",
				*ranks, *blocks, *vars, size, *method)
			// No guard cells may have leaked.
			img := make([]byte, size)
			f.SetMethod(dtio.DtypeIO)
			whole := dtio.Bytes(size)
			if err := f.SetView(0, dtio.Byte, whole); err != nil {
				return err
			}
			if err := f.Read(0, img, whole, 1); err != nil {
				return err
			}
			for i, b := range img {
				if b == 0xFF {
					return fmt.Errorf("guard cell leaked into checkpoint at byte %d", i)
				}
			}
			fmt.Println("verified: variable-major layout intact, no guard-cell leakage")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
