package transport

import (
	"errors"
	"fmt"
	"time"

	"dtio/internal/vtime"
)

// SimConfig models the cluster hardware. The defaults (DefaultSimConfig)
// correspond to the paper's Chiba City testbed: 100 Mbit/s full-duplex
// fast ethernet, era-typical TCP latency, one commodity SCSI disk per
// server.
type SimConfig struct {
	// Bandwidth is NIC bandwidth per direction in bytes/second.
	Bandwidth float64
	// Latency is added once per message.
	Latency time.Duration
	// ChunkBytes is the flow-control segment size; a long transfer
	// occupies the NICs one chunk at a time so concurrent flows
	// interleave fairly.
	ChunkBytes int
	// FrameOverhead approximates per-message header bytes (ethernet +
	// IP + TCP + framing).
	FrameOverhead int
	// CPUSlots is the number of CPUs per node (Chiba City nodes were
	// dual Pentium III).
	CPUSlots int
}

// DefaultSimConfig returns the Chiba City model from DESIGN.md §4.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Bandwidth:     12.5e6, // 100 Mbit/s
		Latency:       120 * time.Microsecond,
		ChunkBytes:    64 * 1024,
		FrameOverhead: 60,
		CPUSlots:      2,
	}
}

// SimNet is a simulated cluster network on a vtime scheduler. Nodes are
// created up front; addresses are "n<node>/<service>" strings produced by
// Addr.
type SimNet struct {
	sched     *vtime.Scheduler
	cfg       SimConfig
	nodes     []*SimNode
	listeners map[string]*simListener
}

// SimNode is one machine: NIC transmit/receive directions, CPUs, a disk.
type SimNode struct {
	ID   int
	TX   *vtime.Resource
	RX   *vtime.Resource
	CPU  *vtime.Resource
	Disk *vtime.Resource
}

// NewSimNet creates a simulated network on sched.
func NewSimNet(sched *vtime.Scheduler, cfg SimConfig) *SimNet {
	if cfg.Bandwidth <= 0 || cfg.ChunkBytes <= 0 || cfg.CPUSlots <= 0 {
		panic("transport: invalid SimConfig")
	}
	return &SimNet{
		sched:     sched,
		cfg:       cfg,
		listeners: make(map[string]*simListener),
	}
}

// Scheduler returns the underlying vtime scheduler.
func (n *SimNet) Scheduler() *vtime.Scheduler { return n.sched }

// Config returns the hardware model.
func (n *SimNet) Config() SimConfig { return n.cfg }

// NewNode adds a machine to the cluster and returns it.
func (n *SimNet) NewNode() *SimNode {
	id := len(n.nodes)
	node := &SimNode{
		ID:   id,
		TX:   n.sched.NewResource(fmt.Sprintf("n%d.tx", id), 1),
		RX:   n.sched.NewResource(fmt.Sprintf("n%d.rx", id), 1),
		CPU:  n.sched.NewResource(fmt.Sprintf("n%d.cpu", id), n.cfg.CPUSlots),
		Disk: n.sched.NewResource(fmt.Sprintf("n%d.disk", id), 1),
	}
	n.nodes = append(n.nodes, node)
	return node
}

// Addr names a service on a node.
func Addr(node *SimNode, service string) string {
	return fmt.Sprintf("n%d/%s", node.ID, service)
}

// Spawn starts a root process on node and returns once it is registered.
// fn runs in the simulation; use the provided Env for all blocking calls.
func (n *SimNet) Spawn(name string, node *SimNode, fn func(env Env)) {
	n.sched.Go(name, func(p *vtime.Proc) {
		fn(&SimEnv{net: n, node: node, proc: p})
	})
}

// SimEnv is the Env of one simulated process.
type SimEnv struct {
	net  *SimNet
	node *SimNode
	proc *vtime.Proc
}

// Node returns the machine this process runs on.
func (e *SimEnv) Node() *SimNode { return e.node }

// Proc returns the vtime process (for advanced primitives).
func (e *SimEnv) Proc() *vtime.Proc { return e.proc }

// Go implements Env: the child runs on the same node.
func (e *SimEnv) Go(name string, fn func(env Env)) {
	e.net.sched.Go(name, func(p *vtime.Proc) {
		fn(&SimEnv{net: e.net, node: e.node, proc: p})
	})
}

// Sleep implements Env.
func (e *SimEnv) Sleep(d time.Duration) { e.proc.Sleep(d) }

// Compute implements Env: occupies one CPU slot of this node.
func (e *SimEnv) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	e.node.CPU.Use(e.proc, d)
}

// DiskUse implements Env: occupies this node's disk.
func (e *SimEnv) DiskUse(d time.Duration) {
	if d <= 0 {
		return
	}
	e.node.Disk.Use(e.proc, d)
}

// Overlap implements Env: d of CPU work runs in a sibling process while
// fn executes in this one; Overlap returns after both complete.
func (e *SimEnv) Overlap(d time.Duration, fn func() error) error {
	if d <= 0 {
		return fn()
	}
	wg := e.net.sched.NewWaitGroup()
	wg.Add(1)
	e.Go("overlap-cpu", func(env Env) {
		env.Compute(d)
		wg.Done()
	})
	err := fn()
	wg.Wait(e.proc)
	return err
}

// OverlapDisk implements Env: d of disk occupancy runs in a sibling
// process while fn executes in this one; it returns after both complete.
// This is the server-side pipelining primitive: segment k+1's disk time
// is charged while segment k is on the wire.
func (e *SimEnv) OverlapDisk(d time.Duration, fn func() error) error {
	if d <= 0 {
		return fn()
	}
	wg := e.net.sched.NewWaitGroup()
	wg.Add(1)
	e.Go("overlap-disk", func(env Env) {
		env.DiskUse(d)
		wg.Done()
	})
	err := fn()
	wg.Wait(e.proc)
	return err
}

// Parallel implements Env: each function runs as its own simulated
// process on this node (the scheduler interleaves them in virtual time).
func (e *SimEnv) Parallel(name string, fns ...func(env Env) error) error {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0](e)
	}
	errs := make([]error, len(fns))
	wg := e.net.sched.NewWaitGroup()
	wg.Add(len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		e.Go(fmt.Sprintf("%s-%d", name, i), func(env Env) {
			errs[i] = fn(env)
			wg.Done()
		})
	}
	wg.Wait(e.proc)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Now implements Env.
func (e *SimEnv) Now() time.Duration { return e.proc.Now() }

type simListener struct {
	net     *SimNet
	addr    string
	node    *SimNode
	backlog *vtime.Mailbox
}

// chunkMsg is one flow-control segment in flight: its receive-side
// service time, plus (on the final chunk of a message) the delivery
// action.
type chunkMsg struct {
	d       time.Duration
	deliver func()
}

// startPump spawns the receive-side pump: it drains a chunk queue
// through node's RX resource in FIFO order, modeling switch buffering
// that decouples senders from receivers (so a busy receiver does not
// block the sender's NIC).
func (n *SimNet) startPump(name string, node *SimNode, q *vtime.Mailbox) {
	n.sched.Go(name, func(p *vtime.Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			c := v.(chunkMsg)
			node.RX.Use(p, c.d)
			if c.deliver != nil {
				c.deliver()
			}
		}
	})
}

// sendChunks serializes size payload bytes onto from's TX one chunk at a
// time and queues each chunk for the destination pump; deliver runs in
// the pump after the final chunk clears the receiver's NIC.
func (n *SimNet) sendChunks(e *SimEnv, from *SimNode, q *vtime.Mailbox, size int, deliver func()) {
	cfg := &n.cfg
	e.proc.Sleep(cfg.Latency)
	remaining := size + cfg.FrameOverhead
	for remaining > 0 {
		chunk := remaining
		if chunk > cfg.ChunkBytes {
			chunk = cfg.ChunkBytes
		}
		d := time.Duration(float64(chunk) / cfg.Bandwidth * float64(time.Second))
		from.TX.Use(e.proc, d)
		remaining -= chunk
		var dl func()
		if remaining <= 0 {
			dl = deliver
		}
		// The peer can tear the connection down while we hold the TX
		// (crash, reset, or an impatient retry): in-flight frames then
		// vanish, as on a real wire.
		if q.Closed() {
			return
		}
		q.Put(chunkMsg{d: d, deliver: dl})
	}
}

type simConn struct {
	net         *SimNet
	local, peer *SimNode
	inbox       *vtime.Mailbox // messages for this side
	peerInbox   *vtime.Mailbox // messages for the other side
	outQ        *vtime.Mailbox // chunks in flight to the peer
	inQ         *vtime.Mailbox // chunks in flight to this side
	closed      bool
	bytesOut    int64
	msgsOut     int64
}

// Listen implements Network. The node is parsed from the address, which
// must have been produced by Addr for a node of this network.
func (n *SimNet) Listen(addr string) (Listener, error) {
	node, err := n.nodeOf(addr)
	if err != nil {
		return nil, err
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("transport: address in use: " + addr)
	}
	l := &simListener{
		net:     n,
		addr:    addr,
		node:    node,
		backlog: n.sched.NewMailbox("listen:" + addr),
	}
	n.listeners[addr] = l
	return l, nil
}

func (n *SimNet) nodeOf(addr string) (*SimNode, error) {
	var id int
	var svc string
	if _, err := fmt.Sscanf(addr, "n%d/%s", &id, &svc); err != nil {
		return nil, fmt.Errorf("transport: bad sim address %q", addr)
	}
	if id < 0 || id >= len(n.nodes) {
		return nil, fmt.Errorf("transport: no node %d", id)
	}
	return n.nodes[id], nil
}

// Dial implements Network. env must be a *SimEnv of this network.
func (n *SimNet) Dial(env Env, addr string) (Conn, error) {
	e, ok := env.(*SimEnv)
	if !ok || e.net != n {
		return nil, errors.New("transport: Dial with foreign env")
	}
	l, ok := n.listeners[addr]
	if !ok {
		return nil, errors.New("transport: no listener at " + addr)
	}
	toServer := n.sched.NewMailbox("c2s:" + addr)
	toClient := n.sched.NewMailbox("s2c:" + addr)
	qToServer := n.sched.NewMailbox("c2s-wire:" + addr)
	qToClient := n.sched.NewMailbox("s2c-wire:" + addr)
	client := &simConn{net: n, local: e.node, peer: l.node,
		inbox: toClient, peerInbox: toServer, outQ: qToServer, inQ: qToClient}
	server := &simConn{net: n, local: l.node, peer: e.node,
		inbox: toServer, peerInbox: toClient, outQ: qToClient, inQ: qToServer}
	n.startPump("pump:"+addr, l.node, qToServer)
	n.startPump("pump:"+addr, e.node, qToClient)
	// Connection setup costs one round trip.
	e.Sleep(2 * n.cfg.Latency)
	l.backlog.Put(server)
	return client, nil
}

func (l *simListener) Accept(env Env) (Conn, error) {
	e := env.(*SimEnv)
	v, ok := l.backlog.Get(e.proc)
	if !ok {
		return nil, ErrClosed
	}
	return v.(*simConn), nil
}

func (l *simListener) Close() error {
	delete(l.net.listeners, l.addr)
	l.backlog.Close()
	return nil
}

// Send implements Conn: the message is serialized onto the sender's TX
// one chunk at a time; a receive-side pump charges the receiver's RX and
// delivers. Send returns once the final chunk has left the sender
// (buffered-send semantics, as with TCP).
func (c *simConn) Send(env Env, msg []byte) error {
	e := env.(*SimEnv)
	if c.closed || c.peerInbox.Closed() {
		return ErrClosed
	}
	m := make([]byte, len(msg))
	copy(m, msg)
	inbox := c.peerInbox
	c.net.sendChunks(e, c.local, c.outQ, len(msg), func() {
		if !inbox.Closed() {
			inbox.Put(m)
		}
	})
	c.bytesOut += int64(len(msg))
	c.msgsOut++
	return nil
}

// Recv implements Conn.
func (c *simConn) Recv(env Env) ([]byte, error) {
	e := env.(*SimEnv)
	v, ok := c.inbox.Get(e.proc)
	if !ok {
		return nil, ErrClosed
	}
	return v.([]byte), nil
}

// RecvTimeout implements TimedConn in virtual time.
func (c *simConn) RecvTimeout(env Env, d time.Duration) ([]byte, error) {
	e := env.(*SimEnv)
	v, ok, timedOut := c.inbox.GetTimeout(e.proc, d)
	if timedOut {
		return nil, ErrTimeout
	}
	if !ok {
		return nil, ErrClosed
	}
	return v.([]byte), nil
}

// TryRecv implements PollConn: messages already delivered to the inbox
// are returned; anything still in flight on the modeled wire is not.
func (c *simConn) TryRecv(env Env) ([]byte, bool, error) {
	v, ok := c.inbox.TryGet()
	if !ok {
		if c.inbox.Closed() {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
	return v.([]byte), true, nil
}

// Close implements Conn: both directions see EOF and the wire pumps
// drain and exit.
func (c *simConn) Close() error {
	if !c.closed {
		c.closed = true
		c.inbox.Close()
		c.peerInbox.Close()
		c.outQ.Close()
		c.inQ.Close()
	}
	return nil
}
