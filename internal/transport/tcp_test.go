package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair spawns a listener and returns an accepted framed connection
// together with a raw client socket, so tests can write malformed frames.
func tcpPair(t *testing.T) (srv Conn, raw net.Conn) {
	t.Helper()
	tn := NewTCPNetwork()
	env := NewRealEnv()
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	addr, _ := BoundAddr(l)
	done := make(chan Conn, 1)
	go func() {
		c, err := l.Accept(env)
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	raw, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	srv = <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { srv.Close() })
	return srv, raw
}

// A peer that disconnects after sending only part of the 4-byte length
// prefix must surface an error, not hang or return a bogus frame.
func TestTCPPartialHeaderRead(t *testing.T) {
	srv, raw := tcpPair(t)
	if _, err := raw.Write([]byte{0x10, 0x00}); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	_, err := srv.Recv(NewRealEnv())
	if err == nil {
		t.Fatal("Recv succeeded on a truncated header")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("partial header reported as clean close: %v", err)
	}
}

// A clean close before any bytes is EOF and maps to ErrClosed.
func TestTCPCleanDisconnectIsErrClosed(t *testing.T) {
	srv, raw := tcpPair(t)
	raw.Close()
	if _, err := srv.Recv(NewRealEnv()); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// A peer that promises a frame body and disconnects mid-frame must
// surface an unexpected-EOF error.
func TestTCPDisconnectMidFrame(t *testing.T) {
	srv, raw := tcpPair(t)
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], 100)
	if _, err := raw.Write(head[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	_, err := srv.Recv(NewRealEnv())
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want unexpected EOF", err)
	}
}

// A length prefix beyond maxFrame is rejected without allocating it.
func TestTCPOversizedFrameRejected(t *testing.T) {
	srv, raw := tcpPair(t)
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], maxFrame+1)
	if _, err := raw.Write(head[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(NewRealEnv()); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	srv, raw := tcpPair(t)
	env := NewRealEnv()
	tc, ok := srv.(TimedConn)
	if !ok {
		t.Fatal("tcp conn does not implement TimedConn")
	}
	start := time.Now()
	_, err := tc.RecvTimeout(env, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
	// A frame arriving after the timeout is still readable on a fresh
	// blocking Recv (the deadline must have been cleared): the stream is
	// only mid-frame if bytes were partially consumed, which they were
	// not here.
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], 2)
	raw.Write(head[:])
	raw.Write([]byte("ok"))
	msg, err := srv.Recv(env)
	if err != nil || string(msg) != "ok" {
		t.Fatalf("post-timeout Recv: %q, %v", msg, err)
	}
}

// Send on a connection whose peer reset it eventually errors (possibly
// after a buffered first write succeeds).
func TestTCPSendAfterPeerClose(t *testing.T) {
	srv, raw := tcpPair(t)
	raw.Close()
	env := NewRealEnv()
	var err error
	for i := 0; i < 50 && err == nil; i++ {
		err = srv.Send(env, make([]byte, 64*1024))
		time.Sleep(time.Millisecond)
	}
	if err == nil {
		t.Fatal("sends kept succeeding after peer close")
	}
}
