package transport

import (
	"fmt"
	"time"

	"dtio/internal/vtime"
)

// Fabric is the message-passing substrate under the MPI layer: ordered,
// reliable point-to-point delivery between ranks. Messages between a pair
// of ranks are delivered in send order; tag matching is strict FIFO per
// source (the collectives in internal/mpi are written for this
// discipline, as are most MPI programs in practice).
type Fabric interface {
	// Send delivers data from rank src to rank dst with a tag.
	Send(env Env, src, dst, tag int, data []byte)
	// Recv returns the next message from src addressed to dst.
	Recv(env Env, dst, src int) (tag int, data []byte)
}

type fabricMsg struct {
	tag  int
	data []byte
}

// MemFabric is an uncosted in-process Fabric.
type MemFabric struct {
	n int
	q []*queueAny // index src*n+dst
}

// NewMemFabric creates a fabric for n ranks.
func NewMemFabric(n int) *MemFabric {
	f := &MemFabric{n: n, q: make([]*queueAny, n*n)}
	for i := range f.q {
		f.q[i] = newQueueAny()
	}
	return f
}

// Send implements Fabric.
func (f *MemFabric) Send(env Env, src, dst, tag int, data []byte) {
	m := make([]byte, len(data))
	copy(m, data)
	f.q[src*f.n+dst].put(fabricMsg{tag: tag, data: m})
}

// Recv implements Fabric.
func (f *MemFabric) Recv(env Env, dst, src int) (int, []byte) {
	v, err := f.q[src*f.n+dst].get()
	if err != nil {
		panic("transport: fabric recv on closed queue")
	}
	m := v.(fabricMsg)
	return m.tag, m.data
}

// SimFabric is a costed Fabric: rank-to-rank traffic occupies the NICs of
// the nodes the ranks live on, sharing them with file-system traffic.
// Ranks colocated on one node exchange messages at memory speed (latency
// only, no NIC occupancy). Call Close from inside the simulation when the
// ranks are done, so the wire pumps exit.
type SimFabric struct {
	net      *SimNet
	rankNode []*SimNode
	box      []*vtime.Mailbox // index src*n+dst: delivered messages
	wire     []*vtime.Mailbox // index src*n+dst: chunks in flight (nil if same node)
	// LocalLatency is the cost of a same-node message.
	LocalLatency time.Duration
}

// NewSimFabric creates a fabric whose rank i runs on rankNode[i].
func NewSimFabric(net *SimNet, rankNode []*SimNode) *SimFabric {
	n := len(rankNode)
	f := &SimFabric{
		net:          net,
		rankNode:     rankNode,
		box:          make([]*vtime.Mailbox, n*n),
		wire:         make([]*vtime.Mailbox, n*n),
		LocalLatency: 5 * time.Microsecond,
	}
	for i := range f.box {
		f.box[i] = net.sched.NewMailbox(fmt.Sprintf("fabric%d", i))
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if rankNode[s] == rankNode[d] {
				continue
			}
			q := net.sched.NewMailbox(fmt.Sprintf("fabricwire%d-%d", s, d))
			f.wire[s*n+d] = q
			net.startPump(fmt.Sprintf("fabricpump%d-%d", s, d), rankNode[d], q)
		}
	}
	return f
}

// Close shuts down the wire pumps; call from inside the simulation once
// all ranks have finished communicating.
func (f *SimFabric) Close() {
	for _, q := range f.wire {
		if q != nil && !q.Closed() {
			q.Close()
		}
	}
}

// Send implements Fabric.
func (f *SimFabric) Send(env Env, src, dst, tag int, data []byte) {
	e := env.(*SimEnv)
	n := len(f.rankNode)
	m := make([]byte, len(data))
	copy(m, data)
	box := f.box[src*n+dst]
	if q := f.wire[src*n+dst]; q != nil {
		f.net.sendChunks(e, f.rankNode[src], q, len(data), func() {
			box.Put(fabricMsg{tag: tag, data: m})
		})
		return
	}
	e.proc.Sleep(f.LocalLatency)
	box.Put(fabricMsg{tag: tag, data: m})
}

// Recv implements Fabric.
func (f *SimFabric) Recv(env Env, dst, src int) (int, []byte) {
	e := env.(*SimEnv)
	n := len(f.rankNode)
	v, ok := f.box[src*n+dst].Get(e.proc)
	if !ok {
		panic("transport: fabric recv on closed mailbox")
	}
	m := v.(fabricMsg)
	return m.tag, m.data
}
