// Package transport abstracts how the file system's clients and servers
// execute and communicate, so the same PVFS and MPI-IO code runs on:
//
//   - Mem: real goroutines, in-process message queues, no modeled time
//     (unit/integration tests, examples);
//   - Sim: vtime processes on a modeled cluster — NIC bandwidth/latency,
//     disk and CPU contention — producing deterministic virtual-time
//     performance numbers (the benchmark harness);
//   - TCP: real sockets (the cmd/pvfs-* daemons).
//
// Every blocking or costed call takes the caller's Env explicitly; this
// is how a goroutine identifies itself to the virtual-time kernel.
package transport

import (
	"errors"
	"sync"
	"time"
)

// Env is the execution environment of one logical thread of control.
type Env interface {
	// Go starts a sibling thread on the same node.
	Go(name string, fn func(env Env))
	// Sleep advances (modeled) time. No-op outside simulation.
	Sleep(d time.Duration)
	// Compute models CPU work on this node, contending with other
	// threads on the same node. No-op outside simulation.
	Compute(d time.Duration)
	// DiskUse models disk occupancy on this node. No-op outside
	// simulation.
	DiskUse(d time.Duration)
	// Overlap runs fn while d of CPU work proceeds concurrently on this
	// node (modeling pipelined processing overlapped with I/O); it
	// returns fn's error after both finish. Outside simulation it just
	// runs fn.
	Overlap(d time.Duration, fn func() error) error
	// OverlapDisk runs fn while d of disk occupancy proceeds concurrently
	// on this node (modeling the next flow segment being read or written
	// while the current one is on the wire); it returns fn's error after
	// both finish. Outside simulation it just runs fn.
	OverlapDisk(d time.Duration, fn func() error) error
	// Parallel runs the given functions as concurrent sibling threads on
	// this node and returns after all complete; the result is the first
	// non-nil error in argument order. Outside simulation the functions
	// run on real goroutines.
	Parallel(name string, fns ...func(env Env) error) error
	// Now reports elapsed (modeled or wall) time since the environment
	// started.
	Now() time.Duration
}

// Conn is a message-oriented, bidirectional, ordered connection.
// Send/Recv take the calling Env; distinct threads may concurrently use
// the two directions.
type Conn interface {
	Send(env Env, msg []byte) error
	Recv(env Env) ([]byte, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept(env Env) (Conn, error)
	Close() error
}

// Network creates listeners and connections by address. Address syntax is
// network-specific; Mem and Sim use opaque strings like "server3".
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(env Env, addr string) (Conn, error)
}

// ErrClosed is returned by operations on closed connections or listeners.
var ErrClosed = errors.New("transport: closed")

// ErrTimeout is returned by RecvTimeout when the deadline passes with no
// message. After a timeout the connection should be considered suspect:
// the TCP transport may have consumed part of a frame, so the only safe
// recovery is to drop the connection and redial.
var ErrTimeout = errors.New("transport: receive timeout")

// TimedConn is implemented by connections that support a bounded-wait
// receive. All three in-repo transports implement it.
type TimedConn interface {
	Conn
	// RecvTimeout behaves like Recv but fails with ErrTimeout once d of
	// (modeled or wall) time passes without a message. d <= 0 means no
	// deadline.
	RecvTimeout(env Env, d time.Duration) ([]byte, error)
}

// RecvTimeout performs a timed receive when c supports it, falling back
// to a blocking Recv otherwise (or when d <= 0).
func RecvTimeout(env Env, c Conn, d time.Duration) ([]byte, error) {
	if tc, ok := c.(TimedConn); ok && d > 0 {
		return tc.RecvTimeout(env, d)
	}
	return c.Recv(env)
}

// PollConn is implemented by connections that support a non-blocking
// receive. The Mem and Sim transports implement it; TCP does not (a
// frame may arrive in pieces, so "is a message ready" has no cheap
// answer there).
type PollConn interface {
	Conn
	// TryRecv returns the next queued message without blocking. ok is
	// false when no message is ready. A closed connection reports
	// (nil, false, ErrClosed).
	TryRecv(env Env) (msg []byte, ok bool, err error)
}

// TryRecv performs a non-blocking receive when c supports it; on
// transports without polling it reports no message ready.
func TryRecv(env Env, c Conn) ([]byte, bool, error) {
	if pc, ok := c.(PollConn); ok {
		return pc.TryRecv(env)
	}
	return nil, false, nil
}

// RealEnv is the Env for ordinary goroutines: spawning is `go`, modeled
// costs are no-ops, Now is wall-clock.
type RealEnv struct {
	start time.Time
}

// NewRealEnv returns an Env backed by real goroutines and wall time.
func NewRealEnv() *RealEnv { return &RealEnv{start: time.Now()} }

// Go implements Env.
func (e *RealEnv) Go(name string, fn func(env Env)) { go fn(e) }

// Sleep implements Env (modeled time: no-op).
func (e *RealEnv) Sleep(d time.Duration) {}

// Compute implements Env (no-op).
func (e *RealEnv) Compute(d time.Duration) {}

// DiskUse implements Env (no-op).
func (e *RealEnv) DiskUse(d time.Duration) {}

// Overlap implements Env (no modeled cost: just runs fn).
func (e *RealEnv) Overlap(d time.Duration, fn func() error) error { return fn() }

// OverlapDisk implements Env (no modeled cost: just runs fn).
func (e *RealEnv) OverlapDisk(d time.Duration, fn func() error) error { return fn() }

// Parallel implements Env: the functions run on real goroutines.
func (e *RealEnv) Parallel(name string, fns ...func(env Env) error) error {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0](e)
	}
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func(env Env) error) {
			defer wg.Done()
			errs[i] = fn(e)
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Now implements Env.
func (e *RealEnv) Now() time.Duration { return time.Since(e.start) }

// queue is an unbounded FIFO of messages for the Mem network.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) put(m []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, m)
	q.cond.Signal()
	return nil
}

func (q *queue) get() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, nil
}

// getTimeout is get with a wall-clock deadline. sync.Cond has no timed
// wait, so a timer briefly wakes all waiters at the deadline.
func (q *queue) getTimeout(d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		rest := time.Until(deadline)
		if rest <= 0 {
			return nil, ErrTimeout
		}
		t := time.AfterFunc(rest, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		q.cond.Wait()
		t.Stop()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, nil
}

// tryGet pops the next message without blocking.
func (q *queue) tryGet() ([]byte, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		if q.closed {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, true, nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// MemNetwork is an in-process Network with no modeled costs.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

type memListener struct {
	net     *MemNetwork
	addr    string
	backlog *queueAny
}

type memConn struct {
	in, out *queue
	once    sync.Once
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("transport: address in use: " + addr)
	}
	l := &memListener{net: n, addr: addr, backlog: newQueueAny()}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(env Env, addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, errors.New("transport: no listener at " + addr)
	}
	ab, ba := newQueue(), newQueue()
	client := &memConn{in: ba, out: ab}
	server := &memConn{in: ab, out: ba}
	if err := l.backlog.put(server); err != nil {
		return nil, err
	}
	return client, nil
}

func (l *memListener) Accept(env Env) (Conn, error) {
	v, err := l.backlog.get()
	if err != nil {
		return nil, err
	}
	return v.(*memConn), nil
}

func (l *memListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	l.backlog.close()
	return nil
}

func (c *memConn) Send(env Env, msg []byte) error {
	m := make([]byte, len(msg))
	copy(m, msg)
	return c.out.put(m)
}

func (c *memConn) Recv(env Env) ([]byte, error) {
	return c.in.get()
}

// RecvTimeout implements TimedConn over wall time.
func (c *memConn) RecvTimeout(env Env, d time.Duration) ([]byte, error) {
	if d <= 0 {
		return c.in.get()
	}
	return c.in.getTimeout(d)
}

// TryRecv implements PollConn.
func (c *memConn) TryRecv(env Env) ([]byte, bool, error) {
	return c.in.tryGet()
}

func (c *memConn) Close() error {
	c.once.Do(func() {
		c.in.close()
		c.out.close()
	})
	return nil
}

// queueAny is queue for arbitrary values (listener backlogs).
type queueAny struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	closed bool
}

func newQueueAny() *queueAny {
	q := &queueAny{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queueAny) put(v any) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, v)
	q.cond.Signal()
	return nil
}

func (q *queueAny) get() (any, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, nil
}

func (q *queueAny) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
