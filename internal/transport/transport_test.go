package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dtio/internal/vtime"
)

// exerciseNetwork runs a request/response exchange over any Network. The
// run function executes client logic in an appropriate environment and
// blocks until it (and the simulation, if any) completes.
func exerciseNetwork(t *testing.T, net Network, addr string, spawnServer func(fn func(env Env)), runClient func(fn func(env Env))) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	spawnServer(func(env Env) {
		for {
			conn, err := l.Accept(env)
			if err != nil {
				return
			}
			env.Go("handler", func(env Env) {
				for {
					msg, err := conn.Recv(env)
					if err != nil {
						return
					}
					reply := append([]byte("echo:"), msg...)
					if err := conn.Send(env, reply); err != nil {
						return
					}
				}
			})
		}
	})
	runClient(func(env Env) {
		conn, err := net.Dial(env, addr)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			msg := []byte(fmt.Sprintf("ping-%d", i))
			if err := conn.Send(env, msg); err != nil {
				t.Error(err)
				return
			}
			got, err := conn.Recv(env)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, append([]byte("echo:"), msg...)) {
				t.Errorf("got %q", got)
				return
			}
		}
		conn.Close()
		l.Close()
	})
}

func TestMemNetworkEcho(t *testing.T) {
	net := NewMemNetwork()
	env := NewRealEnv()
	done := make(chan struct{})
	exerciseNetwork(t, net, "svc",
		func(fn func(env Env)) { go fn(env) },
		func(fn func(env Env)) {
			go func() { fn(env); close(done) }()
			<-done
		})
}

func TestTCPNetworkEcho(t *testing.T) {
	net := NewTCPNetwork()
	env := NewRealEnv()
	l, err := net.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := BoundAddr(l)
	if !ok {
		t.Fatal("no bound addr")
	}
	go func() {
		conn, err := l.Accept(env)
		if err != nil {
			return
		}
		msg, err := conn.Recv(env)
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(env, append([]byte("echo:"), msg...))
	}()
	conn, err := net.Dial(env, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(env, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello" {
		t.Fatalf("got %q", got)
	}
	l.Close()
}

func TestTCPLargeFrame(t *testing.T) {
	net := NewTCPNetwork()
	env := NewRealEnv()
	l, _ := net.Listen("127.0.0.1:0")
	addr, _ := BoundAddr(l)
	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = byte(i)
	}
	go func() {
		conn, err := l.Accept(env)
		if err != nil {
			return
		}
		msg, err := conn.Recv(env)
		if err != nil {
			return
		}
		conn.Send(env, msg)
	}()
	conn, err := net.Dial(env, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send(env, big)
	got, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("round trip corrupted")
	}
	l.Close()
}

func TestSimNetworkEchoAndTiming(t *testing.T) {
	sched := vtime.New()
	cfg := DefaultSimConfig()
	net := NewSimNet(sched, cfg)
	server := net.NewNode()
	client := net.NewNode()
	addr := Addr(server, "echo")
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	net.Spawn("server", server, func(env Env) {
		conn, err := l.Accept(env)
		if err != nil {
			return
		}
		for {
			msg, err := conn.Recv(env)
			if err != nil {
				return
			}
			if err := conn.Send(env, msg); err != nil {
				return
			}
		}
	})
	net.Spawn("client", client, func(env Env) {
		conn, err := net.Dial(env, addr)
		if err != nil {
			t.Error(err)
			return
		}
		msg := make([]byte, 1<<20) // 1 MiB
		start := env.Now()
		if err := conn.Send(env, msg); err != nil {
			t.Error(err)
			return
		}
		got, err := conn.Recv(env)
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != len(msg) {
			t.Errorf("len=%d", len(got))
		}
		elapsed = env.Now() - start
		conn.Close()
		l.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Round-tripping 1 MiB at 12.5 MB/s each way: >= 2 * 80ms transfer.
	lo := 2 * time.Duration(float64(1<<20)/cfg.Bandwidth*float64(time.Second))
	if elapsed < lo || elapsed > lo*2 {
		t.Fatalf("elapsed %v, expected near %v", elapsed, lo)
	}
}

func TestSimNICContention(t *testing.T) {
	// Two clients streaming to one server share its RX: delivery of both
	// messages completes at ~2x a single stream (send completion only
	// reflects the sender's own TX, which is uncontended).
	sched := vtime.New()
	cfg := DefaultSimConfig()
	cfg.Latency = 0
	net := NewSimNet(sched, cfg)
	server := net.NewNode()
	c1, c2 := net.NewNode(), net.NewNode()
	addr := Addr(server, "sink")
	l, _ := net.Listen(addr)
	var delivered [2]time.Duration
	net.Spawn("server", server, func(env Env) {
		for i := 0; i < 2; i++ {
			i := i
			conn, err := l.Accept(env)
			if err != nil {
				return
			}
			env.Go("h", func(env Env) {
				for {
					if _, err := conn.Recv(env); err != nil {
						return
					}
					delivered[i] = env.Now()
				}
			})
		}
	})
	var sendDone [2]time.Duration
	mk := func(idx int, node *SimNode) {
		net.Spawn("client", node, func(env Env) {
			conn, err := net.Dial(env, addr)
			if err != nil {
				t.Error(err)
				return
			}
			conn.Send(env, make([]byte, 4<<20))
			sendDone[idx] = env.Now()
			env.Sleep(5 * time.Second) // keep conn open until delivery
			conn.Close()
		})
	}
	mk(0, c1)
	mk(1, c2)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	single := time.Duration(float64(4<<20) / cfg.Bandwidth * float64(time.Second))
	worst := delivered[0]
	if delivered[1] > worst {
		worst = delivered[1]
	}
	if worst < 2*single*9/10 || worst > 2*single*12/10 {
		t.Fatalf("contended delivery %v, expected ~%v", worst, 2*single)
	}
	// Sends themselves complete at single-stream speed (buffered).
	for i, d := range sendDone {
		if d > single*13/10 {
			t.Fatalf("send %d completed at %v, expected ~%v", i, d, single)
		}
	}
}

func TestSimComputeContention(t *testing.T) {
	// 4 threads of CPU work on a 2-slot node take 2x the single time.
	sched := vtime.New()
	net := NewSimNet(sched, DefaultSimConfig())
	node := net.NewNode()
	var last time.Duration
	for i := 0; i < 4; i++ {
		net.Spawn("w", node, func(env Env) {
			env.Compute(10 * time.Millisecond)
			if env.Now() > last {
				last = env.Now()
			}
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 20*time.Millisecond {
		t.Fatalf("last=%v", last)
	}
}

func TestSimFabricLocalVsRemote(t *testing.T) {
	sched := vtime.New()
	cfg := DefaultSimConfig()
	net := NewSimNet(sched, cfg)
	n0, n1 := net.NewNode(), net.NewNode()
	// ranks 0,1 on node0; rank 2 on node1
	fab := NewSimFabric(net, []*SimNode{n0, n0, n1})
	wg := sched.NewWaitGroup()
	wg.Add(3)
	var localT, remoteT time.Duration
	net.Spawn("rank0", n0, func(env Env) {
		defer wg.Done()
		start := env.Now()
		fab.Send(env, 0, 1, 7, make([]byte, 1<<20))
		localT = env.Now() - start
		start = env.Now()
		fab.Send(env, 0, 2, 8, make([]byte, 1<<20))
		remoteT = env.Now() - start
	})
	net.Spawn("rank1", n0, func(env Env) {
		defer wg.Done()
		tag, data := fab.Recv(env, 1, 0)
		if tag != 7 || len(data) != 1<<20 {
			t.Errorf("tag=%d len=%d", tag, len(data))
		}
	})
	net.Spawn("rank2", n1, func(env Env) {
		defer wg.Done()
		tag, data := fab.Recv(env, 2, 0)
		if tag != 8 || len(data) != 1<<20 {
			t.Errorf("tag=%d len=%d", tag, len(data))
		}
	})
	net.Spawn("ctl", n0, func(env Env) {
		wg.Wait(env.(*SimEnv).Proc())
		fab.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if localT >= remoteT/100 {
		t.Fatalf("local %v not much cheaper than remote %v", localT, remoteT)
	}
}

func TestMemFabricOrder(t *testing.T) {
	fab := NewMemFabric(2)
	env := NewRealEnv()
	for i := 0; i < 10; i++ {
		fab.Send(env, 0, 1, i, []byte{byte(i)})
	}
	for i := 0; i < 10; i++ {
		tag, data := fab.Recv(env, 1, 0)
		if tag != i || data[0] != byte(i) {
			t.Fatalf("msg %d: tag=%d", i, tag)
		}
	}
}

func TestDialNoListener(t *testing.T) {
	net := NewMemNetwork()
	if _, err := net.Dial(NewRealEnv(), "nowhere"); err == nil {
		t.Fatal("dial succeeded with no listener")
	}
}

func TestSimDialForeignEnv(t *testing.T) {
	sched := vtime.New()
	net := NewSimNet(sched, DefaultSimConfig())
	node := net.NewNode()
	net.Listen(Addr(node, "x"))
	if _, err := net.Dial(NewRealEnv(), Addr(node, "x")); err == nil {
		t.Fatal("foreign env accepted")
	}
}

func TestSimOverlap(t *testing.T) {
	// Overlap(cpu, netWork) finishes at max(cpu, fn), not the sum.
	sched := vtime.New()
	net := NewSimNet(sched, DefaultSimConfig())
	node := net.NewNode()
	var elapsed time.Duration
	net.Spawn("w", node, func(env Env) {
		start := env.Now()
		err := env.Overlap(100*time.Millisecond, func() error {
			env.Sleep(60 * time.Millisecond)
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - start
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 100*time.Millisecond {
		t.Fatalf("elapsed %v, want 100ms (overlapped)", elapsed)
	}
}

func TestRealEnvOverlapRunsFn(t *testing.T) {
	ran := false
	err := NewRealEnv().Overlap(time.Hour, func() error { ran = true; return nil })
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
}
