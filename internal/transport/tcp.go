package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single message (1 GiB); larger transfers must be
// chunked by the caller. Protects against corrupt or hostile length
// prefixes.
const maxFrame = 1 << 30

// TCPNetwork implements Network over real sockets. Messages are framed
// with a 4-byte little-endian length prefix.
type TCPNetwork struct{}

// NewTCPNetwork returns the TCP transport.
func NewTCPNetwork() *TCPNetwork { return &TCPNetwork{} }

type tcpListener struct {
	l net.Listener
}

type tcpConn struct {
	c        net.Conn
	sendMu   sync.Mutex
	recvMu   sync.Mutex
	lenBuf   [4]byte
	sendHead [4]byte
}

// Listen implements Network. addr is a standard host:port.
func (n *TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (n *TCPNetwork) Dial(env Env, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c}, nil
}

func (l *tcpListener) Accept(env Env) (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c}, nil
}

func (l *tcpListener) Close() error { return l.l.Close() }

// Addr reports the bound address (useful with ":0" listens).
func (l *tcpListener) Addr() string { return l.l.Addr().String() }

// BoundAddr returns the listen address if l is a TCP listener.
func BoundAddr(l Listener) (string, bool) {
	if tl, ok := l.(*tcpListener); ok {
		return tl.Addr(), true
	}
	return "", false
}

// Send implements Conn.
func (c *tcpConn) Send(env Env, msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(msg))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	binary.LittleEndian.PutUint32(c.sendHead[:], uint32(len(msg)))
	if _, err := c.c.Write(c.sendHead[:]); err != nil {
		return err
	}
	_, err := c.c.Write(msg)
	return err
}

// Recv implements Conn.
func (c *tcpConn) Recv(env Env) ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return c.recvFrame()
}

// RecvTimeout implements TimedConn via a socket read deadline. On
// ErrTimeout the stream may be mid-frame; the connection must be dropped.
func (c *tcpConn) RecvTimeout(env Env, d time.Duration) ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if d <= 0 {
		return c.recvFrame()
	}
	c.c.SetReadDeadline(time.Now().Add(d))
	msg, err := c.recvFrame()
	c.c.SetReadDeadline(time.Time{})
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, ErrTimeout
		}
		return nil, err
	}
	return msg, nil
}

func (c *tcpConn) recvFrame() ([]byte, error) {
	if _, err := io.ReadFull(c.c, c.lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, ErrClosed
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.c, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// Close implements Conn.
func (c *tcpConn) Close() error { return c.c.Close() }
