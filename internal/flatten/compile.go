// Dataloop compilation: a one-time pass that turns a dataloop tree into
// a flat run program, so replaying a request window is pure arithmetic
// with zero tree-walking and zero per-request state beyond a cursor.
//
// The program is a short array of two opcodes in stream order:
//
//	RUN  (off, stride, length) x count — count runs of length bytes,
//	     run i at off + i*stride, relative to the enclosing base;
//	LOOP (off, stride) x count — count shifted replays of a body span
//	     of following ops, iteration i displaced by off + i*stride.
//
// All regularity the five dataloop kinds can express collapses into RUN
// strides (periodic-stride compression): a 2-D tile view compiles to one
// RUN, a 3-D block view to one LOOP over one RUN — O(dims) opcodes where
// the interpreted walk touches O(pieces) cursor states. Irregular kinds
// (indexed with unequal gaps) fall back to one opcode per block, and
// pathologically large descriptions decline to compile (Compile returns
// nil) rather than trade memory for speed; callers keep the interpreted
// Iter path as the always-correct fallback.
package flatten

import "dtio/internal/dataloop"

// Program opcodes.
const (
	opRun  = uint8(iota) // count runs of length bytes at off+i*stride
	opLoop               // count body replays, iteration i shifted off+i*stride
)

// progOp is one compiled opcode. Offsets are relative to the enclosing
// scope's base displacement, so one program serves every Disp.
type progOp struct {
	kind   uint8
	end    int32 // opLoop: index one past the body span
	count  int64
	off    int64
	stride int64
	length int64 // opRun: bytes per run; opLoop: stream bytes per iteration
	stream int64 // total stream bytes covered: count * length (RUN) or count * body (LOOP)
}

// Program is a compiled (loop) ready to replay for any (count, disp,
// window). It is immutable and safe for concurrent replay.
type Program struct {
	ops    []progOp
	size   int64 // stream bytes per instance
	extent int64 // file-space spacing between instances
}

// Size reports the stream bytes one instance of the program covers.
func (p *Program) Size() int64 { return p.size }

// NumOps reports the opcode count (a measure of compiled size).
func (p *Program) NumOps() int { return len(p.ops) }

// maxProgramOps bounds compiled size: a loop whose irregularity defeats
// stride compression (huge indexed lists) stays on the interpreted path
// instead of inflating the cache.
const maxProgramOps = 1 << 13

// Compile translates a validated dataloop into a Program, or returns nil
// when the loop is too irregular to compile compactly. The top-level
// instance count is a replay-time parameter, not a compile-time one, so
// one compilation serves every request against the same type.
func Compile(l *dataloop.Loop) *Program {
	p := &Program{size: l.Size, extent: l.Extent}
	if l.Size <= 0 {
		return p // empty stream: replay emits nothing
	}
	c := compiler{ok: true}
	c.node(l, 0)
	if !c.ok || len(c.ops) == 0 {
		return nil
	}
	p.ops = c.ops
	return p
}

// compiler accumulates opcodes with peephole folding as scopes close.
type compiler struct {
	ops     []progOp
	barrier int // merge fence: ops before it belong to a closed scope
	ok      bool
}

func (c *compiler) fail() { c.ok = false }

// emitRun appends a strided-run opcode, collapsing dense runs and
// merging with an adjacent sibling run when the stride pattern continues.
func (c *compiler) emitRun(off, length, stride, count int64) {
	if !c.ok || count <= 0 || length <= 0 {
		return
	}
	if count == 1 || stride == length {
		// Dense or single: a lone run of count*length bytes... only when
		// stride==length the runs abut; count==1 keeps its own length.
		if stride == length {
			length *= count
		}
		count, stride = 1, 0
	}
	if n := len(c.ops); n > c.barrier {
		prev := &c.ops[n-1]
		if prev.kind == opRun {
			switch {
			case prev.count == 1 && count == 1 && prev.off+prev.length == off:
				// Two abutting sibling runs merge into one.
				prev.length += length
				prev.stream += length
				return
			case prev.count == 1 && count == 1 && prev.length == length && off > prev.off:
				// Two equal-length siblings start an arithmetic progression.
				prev.count = 2
				prev.stride = off - prev.off
				prev.stream += length
				return
			case count == 1 && prev.length == length && off == prev.off+prev.count*prev.stride:
				// A lone sibling run continues the previous progression.
				prev.count++
				prev.stream += length
				return
			case prev.count == 1 && prev.length == length && prev.off+stride == off:
				// A progression continues backward over a lone predecessor.
				prev.count = count + 1
				prev.stride = stride
				prev.stream += count * length
				return
			case prev.length == length && prev.stride == stride && off == prev.off+prev.count*stride:
				// Two progressions with one period splice together.
				prev.count += count
				prev.stream += count * length
				return
			}
		}
	}
	c.push(progOp{kind: opRun, count: count, off: off, stride: stride,
		length: length, stream: count * length})
}

func (c *compiler) push(op progOp) {
	if len(c.ops) >= maxProgramOps {
		c.fail()
		return
	}
	c.ops = append(c.ops, op)
}

// beginLoop opens a LOOP scope; endLoop closes it, computing the body
// stream and folding single-run bodies back into strided runs.
func (c *compiler) beginLoop(off, stride, count int64) (int, int) {
	idx := len(c.ops)
	c.push(progOp{kind: opLoop, count: count, off: off, stride: stride})
	oldBarrier := c.barrier
	c.barrier = len(c.ops)
	return idx, oldBarrier
}

func (c *compiler) endLoop(idx, oldBarrier int) {
	if !c.ok {
		return
	}
	if len(c.ops) == idx+1 {
		// Empty body (zero-size child): drop the scope entirely.
		c.ops = c.ops[:idx]
		c.barrier = oldBarrier
		return
	}
	lo := c.ops[idx]
	// Sum the body's top-level op streams (nested spans are already
	// counted inside their own headers).
	var body int64
	for j := idx + 1; j < len(c.ops); {
		body += c.ops[j].stream
		if c.ops[j].kind == opLoop {
			j = int(c.ops[j].end)
		} else {
			j++
		}
	}
	// Fold: a loop whose body is a single RUN is itself a strided run
	// pattern (or two nested ones that multiply out when periods align).
	if len(c.ops) == idx+2 && c.ops[idx+1].kind == opRun {
		r := c.ops[idx+1]
		switch {
		case r.count == 1:
			c.ops = c.ops[:idx]
			c.barrier = oldBarrier
			c.emitRun(lo.off+r.off, r.length, lo.stride, lo.count)
			return
		case lo.stride == r.stride*r.count:
			c.ops = c.ops[:idx]
			c.barrier = oldBarrier
			c.emitRun(lo.off+r.off, r.length, r.stride, lo.count*r.count)
			return
		}
	}
	c.ops[idx].end = int32(len(c.ops))
	c.ops[idx].length = body
	c.ops[idx].stream = lo.count * body
	// The closed span is sealed: later siblings must not merge into its
	// body ops (their streams are now baked into the header).
	c.barrier = len(c.ops)
}

// rep emits count instances of child spaced stride bytes apart at base.
func (c *compiler) rep(count, base, stride int64, child *dataloop.Loop) {
	if !c.ok || count <= 0 || child.Size <= 0 {
		return
	}
	if count == 1 {
		c.node(child, base)
		return
	}
	idx, ob := c.beginLoop(base, stride, count)
	c.node(child, 0)
	c.endLoop(idx, ob)
}

// blockRun emits count blocks of blockLen leaf elements: block i at
// base+i*blockStride, elements elSize bytes spaced elExtent apart.
func (c *compiler) blockRun(base, blockStride, count, blockLen, elSize, elExtent int64) {
	if !c.ok || count <= 0 || blockLen <= 0 || elSize <= 0 {
		return
	}
	if count == 1 {
		c.emitRun(base, elSize, elExtent, blockLen)
		return
	}
	if elExtent == elSize || blockLen == 1 {
		// Dense blocks: one strided group of blockLen*elSize-byte runs.
		c.emitRun(base, blockLen*elSize, blockStride, count)
		return
	}
	idx, ob := c.beginLoop(base, blockStride, count)
	c.emitRun(0, elSize, elExtent, blockLen)
	c.endLoop(idx, ob)
}

// repBlocks emits count blocks of blockLen child instances: block i at
// base+i*blockStride, instances spaced elExtent apart.
func (c *compiler) repBlocks(count, base, blockStride, blockLen, elExtent int64, child *dataloop.Loop) {
	if !c.ok || count <= 0 || blockLen <= 0 || child.Size <= 0 {
		return
	}
	if count == 1 {
		c.rep(blockLen, base, elExtent, child)
		return
	}
	idx, ob := c.beginLoop(base, blockStride, count)
	c.rep(blockLen, 0, elExtent, child)
	c.endLoop(idx, ob)
}

// leaf reports whether l's elements are raw byte runs (mirrors the
// unexported dataloop helper).
func leaf(l *dataloop.Loop) bool { return l.Child == nil && l.Children == nil }

// apStride reports the common difference if offs form an arithmetic
// progression (the regularity blockindexed/indexed types usually carry).
func apStride(offs []int64) (int64, bool) {
	if len(offs) < 2 {
		return 0, false
	}
	d := offs[1] - offs[0]
	for i := 2; i < len(offs); i++ {
		if offs[i]-offs[i-1] != d {
			return 0, false
		}
	}
	return d, true
}

// equalLens reports whether every indexed block has the same length.
func equalLens(lens []int64) (int64, bool) {
	if len(lens) == 0 {
		return 0, false
	}
	for _, n := range lens[1:] {
		if n != lens[0] {
			return 0, false
		}
	}
	return lens[0], true
}

// node emits one instance of l at relative displacement base. Emission
// order is exactly the dataloop stream order — replay positions depend
// on it.
func (c *compiler) node(l *dataloop.Loop, base int64) {
	if !c.ok || l.Size <= 0 {
		return
	}
	switch l.Kind {
	case dataloop.Contig:
		if leaf(l) {
			c.emitRun(base, l.ElSize, l.ElExtent, l.Count)
			return
		}
		c.rep(l.Count, base, l.ElExtent, l.Child)
	case dataloop.Vector:
		if leaf(l) {
			c.blockRun(base, l.Stride, l.Count, l.BlockLen, l.ElSize, l.ElExtent)
			return
		}
		c.repBlocks(l.Count, base, l.Stride, l.BlockLen, l.ElExtent, l.Child)
	case dataloop.BlockIndexed:
		if d, ok := apStride(l.Offsets); ok {
			n := int64(len(l.Offsets))
			if leaf(l) {
				c.blockRun(base+l.Offsets[0], d, n, l.BlockLen, l.ElSize, l.ElExtent)
			} else {
				c.repBlocks(n, base+l.Offsets[0], d, l.BlockLen, l.ElExtent, l.Child)
			}
			return
		}
		for _, off := range l.Offsets {
			if leaf(l) {
				c.emitRun(base+off, l.ElSize, l.ElExtent, l.BlockLen)
			} else {
				c.rep(l.BlockLen, base+off, l.ElExtent, l.Child)
			}
		}
	case dataloop.Indexed:
		if bl, eq := equalLens(l.BlockLens); eq {
			if d, ok := apStride(l.Offsets); ok {
				n := int64(len(l.Offsets))
				if leaf(l) {
					c.blockRun(base+l.Offsets[0], d, n, bl, l.ElSize, l.ElExtent)
				} else {
					c.repBlocks(n, base+l.Offsets[0], d, bl, l.ElExtent, l.Child)
				}
				return
			}
		}
		for i, off := range l.Offsets {
			if leaf(l) {
				c.emitRun(base+off, l.ElSize, l.ElExtent, l.BlockLens[i])
			} else {
				c.rep(l.BlockLens[i], base+off, l.ElExtent, l.Child)
			}
		}
	case dataloop.Struct:
		for i, ch := range l.Children {
			c.node(ch, base+l.Offsets[i])
		}
	default:
		c.fail()
	}
}

// replayer carries the replay cursor: s is the stream position, [lo, hi)
// the request window, and cur/has the pending region held for adjacent
// coalescing (matching Iter's coalesce=true semantics exactly).
type replayer struct {
	ops  []progOp
	s    int64
	lo   int64
	hi   int64
	cur  Region
	has  bool
	emit func(off, n int64) error
}

// Replay emits the coalesced file regions of count instances of the
// program displaced by disp, clipped to stream window [pos, pos+n).
// Skipping to pos is O(program depth) divisions — no walking.
func (p *Program) Replay(count, disp, pos, n int64, emit func(off, n int64) error) error {
	if n <= 0 || count <= 0 || p.size <= 0 {
		return nil
	}
	if pos < 0 {
		pos = 0
	}
	end := pos + n
	if total := count * p.size; end > total {
		end = total
	}
	if pos >= end {
		return nil
	}
	r := replayer{ops: p.ops, lo: pos, hi: end, emit: emit}
	for inst := pos / p.size; inst < count; inst++ {
		r.s = inst * p.size
		if r.s >= end {
			break
		}
		if err := r.exec(0, int32(len(p.ops)), disp+inst*p.extent); err != nil {
			return err
		}
	}
	return r.flush()
}

// piece feeds one clipped run into the coalescer.
func (r *replayer) piece(off, n int64) error {
	if r.has && r.cur.Off+r.cur.Len == off {
		r.cur.Len += n
		return nil
	}
	var err error
	if r.has {
		err = r.emit(r.cur.Off, r.cur.Len)
	}
	r.cur = Region{Off: off, Len: n}
	r.has = true
	return err
}

func (r *replayer) flush() error {
	if !r.has {
		return nil
	}
	r.has = false
	return r.emit(r.cur.Off, r.cur.Len)
}

// exec replays ops[i:end) at displacement base, advancing the stream
// cursor and emitting only the parts inside [lo, hi). Whole ops and
// whole iterations below lo are skipped by division, not iteration.
func (r *replayer) exec(i, end int32, base int64) error {
	for i < end {
		if r.s >= r.hi {
			return nil
		}
		op := &r.ops[i]
		next := i + 1
		if op.kind == opLoop {
			next = op.end
		}
		if r.s+op.stream <= r.lo {
			r.s += op.stream
			i = next
			continue
		}
		if op.kind == opRun {
			j := int64(0)
			if r.s < r.lo {
				j = (r.lo - r.s) / op.length
				r.s += j * op.length
			}
			for ; j < op.count && r.s < r.hi; j++ {
				ps, pe := r.s, r.s+op.length
				off, ln := base+op.off+j*op.stride, op.length
				if ps < r.lo {
					off += r.lo - ps
					ln -= r.lo - ps
				}
				if pe > r.hi {
					ln -= pe - r.hi
				}
				if ln > 0 {
					if err := r.piece(off, ln); err != nil {
						return err
					}
				}
				r.s = pe
			}
			i = next
			continue
		}
		j := int64(0)
		if r.s < r.lo {
			j = (r.lo - r.s) / op.length
			r.s += j * op.length
		}
		for ; j < op.count && r.s < r.hi; j++ {
			if err := r.exec(i+1, op.end, base+op.off+j*op.stride); err != nil {
				return err
			}
		}
		i = next
	}
	return nil
}
