// Package flatten turns dataloop streams into offset-length regions: the
// bridge between concise datatype descriptions and the region lists that
// storage and network layers consume.
//
// Iter pulls pieces from a dataloop Segment in batches (amortizing cursor
// resumption), optionally coalescing adjacent regions — the optimization
// the paper's server-side processing functions perform. Dual walks a file
// stream and a memory stream in lockstep, producing (fileOff, memOff, n)
// triples; every noncontiguous access method is built on it.
package flatten

import (
	"dtio/internal/dataloop"
	"dtio/internal/datatype"
)

// Region is re-exported for convenience.
type Region = datatype.Region

// batchSize is the number of pieces pulled from a Segment per refill.
const batchSize = 256

// Iter is a pull-style iterator over the pieces of a dataloop stream.
type Iter struct {
	seg      *dataloop.Segment
	base     int64 // added to every produced offset
	limit    int64 // stream bytes still to produce; <0 = unlimited
	coalesce bool

	batch   []Region
	i       int
	pending Region // held back for coalescing
	hasPend bool
	done    bool
}

// NewIter iterates the pieces of count instances of loop, offsetting every
// piece by base. If coalesce is true, adjacent pieces merge.
func NewIter(loop *dataloop.Loop, count int64, base int64, coalesce bool) *Iter {
	return &Iter{
		seg:      dataloop.NewSegment(loop, count),
		base:     base,
		limit:    -1,
		coalesce: coalesce,
	}
}

// NewIterAt is NewIter but starts at stream offset pos and produces at
// most n stream bytes. It is how a file view is walked for one request.
func NewIterAt(loop *dataloop.Loop, count int64, base int64, pos, n int64, coalesce bool) *Iter {
	it := NewIter(loop, count, base, coalesce)
	it.seg.SetPos(pos)
	it.limit = n
	if n == 0 {
		it.done = true
	}
	return it
}

// refill pulls the next batch of pieces from the segment.
func (it *Iter) refill() {
	it.batch = it.batch[:0]
	it.i = 0
	if it.done {
		return
	}
	budget := it.limit // -1 means unlimited; Process treats <=0 as unbounded
	consumed, segDone := it.seg.Process(budget, func(off, n int64) bool {
		if len(it.batch) >= batchSize {
			return false // refuse; offered again next refill
		}
		it.batch = append(it.batch, Region{Off: off + it.base, Len: n})
		return true
	})
	if it.limit >= 0 {
		it.limit -= consumed
		if it.limit == 0 {
			it.done = true
		}
	}
	if segDone {
		it.done = true
	}
}

// Next returns the next region. ok is false when the stream is exhausted.
func (it *Iter) Next() (Region, bool) {
	for {
		if it.i < len(it.batch) {
			r := it.batch[it.i]
			it.i++
			if !it.coalesce {
				return r, true
			}
			if !it.hasPend {
				it.pending, it.hasPend = r, true
				continue
			}
			if it.pending.Off+it.pending.Len == r.Off {
				it.pending.Len += r.Len
				continue
			}
			out := it.pending
			it.pending = r
			return out, true
		}
		if it.done {
			if it.hasPend {
				it.hasPend = false
				return it.pending, true
			}
			return Region{}, false
		}
		it.refill()
		if len(it.batch) == 0 && it.done {
			continue // flush pending on next loop
		}
	}
}

// Collect materializes all remaining regions (test/tooling helper).
func (it *Iter) Collect() []Region {
	var out []Region
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Source yields regions in stream order. Iter and SliceSource satisfy it.
type Source interface {
	Next() (Region, bool)
}

// SliceSource adapts an explicit region list to Source.
type SliceSource struct {
	regions []Region
	i       int
}

// NewSliceSource wraps a region slice (not copied).
func NewSliceSource(regions []Region) *SliceSource {
	return &SliceSource{regions: regions}
}

// Next implements Source.
func (s *SliceSource) Next() (Region, bool) {
	if s.i >= len(s.regions) {
		return Region{}, false
	}
	r := s.regions[s.i]
	s.i++
	return r, true
}

// Dual walks two equal-length streams (file space and memory space) in
// lockstep and yields maximal runs contiguous in both.
type Dual struct {
	file, mem Source
	f, m      Region
	fok, mok  bool
	primed    bool
}

// NewDual pairs a file-stream source with a memory-stream source. The
// two must describe the same number of stream bytes.
func NewDual(file, mem Source) *Dual {
	return &Dual{file: file, mem: mem}
}

// Next yields the next (fileOff, memOff, n) run. ok is false at the end.
func (d *Dual) Next() (fileOff, memOff, n int64, ok bool) {
	if !d.primed {
		d.f, d.fok = d.file.Next()
		d.m, d.mok = d.mem.Next()
		d.primed = true
	}
	for d.fok && d.f.Len == 0 {
		d.f, d.fok = d.file.Next()
	}
	for d.mok && d.m.Len == 0 {
		d.m, d.mok = d.mem.Next()
	}
	if !d.fok || !d.mok {
		return 0, 0, 0, false
	}
	n = d.f.Len
	if d.m.Len < n {
		n = d.m.Len
	}
	fileOff, memOff = d.f.Off, d.m.Off
	d.f.Off += n
	d.f.Len -= n
	d.m.Off += n
	d.m.Len -= n
	if d.f.Len == 0 {
		d.f, d.fok = d.file.Next()
	}
	if d.m.Len == 0 {
		d.m, d.mok = d.mem.Next()
	}
	return fileOff, memOff, n, true
}

// Clip returns the overlap of r with the half-open byte range [lo, hi),
// and whether the overlap is nonempty.
func Clip(r Region, lo, hi int64) (Region, bool) {
	start, end := r.Off, r.Off+r.Len
	if start < lo {
		start = lo
	}
	if end > hi {
		end = hi
	}
	if start >= end {
		return Region{}, false
	}
	return Region{Off: start, Len: end - start}, true
}

// Coalescer is a streaming adjacent-region merger.
type Coalescer struct {
	cur Region
	has bool
	out func(Region)
}

// NewCoalescer forwards merged regions to out.
func NewCoalescer(out func(Region)) *Coalescer {
	return &Coalescer{out: out}
}

// Add feeds one region.
func (c *Coalescer) Add(r Region) {
	if r.Len == 0 {
		return
	}
	if c.has && c.cur.Off+c.cur.Len == r.Off {
		c.cur.Len += r.Len
		return
	}
	if c.has {
		c.out(c.cur)
	}
	c.cur, c.has = r, true
}

// Flush emits the held region, if any.
func (c *Coalescer) Flush() {
	if c.has {
		c.out(c.cur)
		c.has = false
	}
}
