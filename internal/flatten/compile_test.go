package flatten

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
)

// replayCollect materializes Replay's regions for comparison against the
// interpreted iterator.
func replayCollect(t *testing.T, p *Program, count, disp, pos, n int64) []Region {
	t.Helper()
	var out []Region
	if err := p.Replay(count, disp, pos, n, func(off, ln int64) error {
		out = append(out, Region{Off: off, Len: ln})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// checkReplay compiles loop and demands byte-identical regions from the
// compiled replay and the interpreted window iterator.
func checkReplay(t *testing.T, loop *dataloop.Loop, count, disp, pos, n int64) {
	t.Helper()
	p := Compile(loop)
	if p == nil {
		t.Fatalf("loop %v declined to compile", loop)
	}
	got := replayCollect(t, p, count, disp, pos, n)
	want := NewIterAt(loop, count, disp, pos, n, true).Collect()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loop %v count=%d disp=%d window=[%d,+%d):\n  compiled    %v\n  interpreted %v",
			loop, count, disp, pos, n, got, want)
	}
}

// fullWindows sweeps a loop through whole-stream and partial windows.
func fullWindows(t *testing.T, loop *dataloop.Loop, count int64) {
	t.Helper()
	total := count * loop.Size
	checkReplay(t, loop, count, 0, 0, total)
	checkReplay(t, loop, count, 4096, 0, total)
	for _, w := range [][2]int64{
		{0, 1}, {1, 3}, {total / 3, total / 2}, {total - 1, 1},
		{total / 2, total}, {total, 0}, {0, 0},
	} {
		if w[0] < 0 {
			continue
		}
		checkReplay(t, loop, count, 128, w[0], w[1])
	}
}

func TestReplayMatchesIterTable(t *testing.T) {
	cases := []*datatype.Type{
		datatype.Contiguous(6, datatype.Int32),
		datatype.Vector(5, 3, 7, datatype.Int32),
		datatype.Vector(4, 1, 2, datatype.Int64),
		datatype.HVector(3, 2, 40, datatype.Int64),
		datatype.Indexed([]int{2, 1, 3}, []int{0, 5, 9}, datatype.Int32),
		datatype.Indexed([]int{2, 2, 2}, []int{0, 4, 8}, datatype.Int32), // AP, dense lens
		datatype.HIndexed([]int64{1, 2, 1}, []int64{32, 0, 80}, datatype.Int64),
		datatype.HBlockIndexed(2, []int64{0, 48, 96}, datatype.Int32),  // AP offsets
		datatype.HBlockIndexed(2, []int64{0, 48, 100}, datatype.Int32), // irregular
		datatype.Struct([]int{2, 1}, []int64{0, 64}, []*datatype.Type{datatype.Int32, datatype.Int64}),
		datatype.Resized(datatype.Vector(3, 1, 2, datatype.Int32), 0, 100),
		datatype.Subarray([]int{8, 16}, []int{4, 6}, []int{2, 5}, datatype.OrderC, datatype.Int32),
		datatype.Subarray([]int{6, 6, 6}, []int{2, 3, 4}, []int{1, 0, 2}, datatype.OrderC, datatype.Int32),
		datatype.Contiguous(2, datatype.Vector(3, 2, 5, datatype.Int32)),
		datatype.Vector(3, 2, 9, datatype.Struct([]int{1, 1}, []int64{0, 12},
			[]*datatype.Type{datatype.Int64, datatype.Int32})),
	}
	for i, ty := range cases {
		loop := dataloop.FromType(ty)
		for _, count := range []int64{1, 2, 3} {
			fullWindows(t, loop, count)
		}
		_ = i
	}
}

// randType builds a random datatype tree, the generator for the quick
// property below. Sizes stay small so windows stay cheap to enumerate.
func randType(r *rand.Rand, depth int) *datatype.Type {
	if depth <= 0 || r.Intn(3) == 0 {
		return datatype.Bytes(int64(1 + r.Intn(8)))
	}
	sub := randType(r, depth-1)
	switch r.Intn(7) {
	case 0:
		return datatype.Contiguous(1+r.Intn(4), sub)
	case 1:
		bl := 1 + r.Intn(3)
		return datatype.Vector(1+r.Intn(4), bl, bl+r.Intn(4), sub)
	case 2:
		return datatype.HVector(1+r.Intn(4), 1+r.Intn(3), sub.Extent()*int64(r.Intn(5))+int64(r.Intn(7)), sub)
	case 3:
		n := 1 + r.Intn(4)
		lens, displs := make([]int, n), make([]int, n)
		at := 0
		for i := range lens {
			lens[i] = r.Intn(3) + 1
			displs[i] = at + r.Intn(4)
			at = displs[i] + lens[i]
		}
		return datatype.Indexed(lens, displs, sub)
	case 4:
		n := 1 + r.Intn(4)
		displs := make([]int64, n)
		at := int64(0)
		for i := range displs {
			displs[i] = at + int64(r.Intn(3))*sub.Extent()
			at = displs[i] + 2*sub.Extent()
		}
		return datatype.HBlockIndexed(1+r.Intn(2), displs, sub)
	case 5:
		n := 1 + r.Intn(3)
		lens := make([]int, n)
		displs := make([]int64, n)
		types := make([]*datatype.Type, n)
		at := int64(0)
		for i := range lens {
			lens[i] = 1 + r.Intn(2)
			types[i] = randType(r, depth-1)
			displs[i] = at + int64(r.Intn(9))
			at = displs[i] + int64(lens[i])*types[i].Extent()
		}
		return datatype.Struct(lens, displs, types)
	default:
		ext := sub.Extent() + int64(r.Intn(16))
		return datatype.Resized(sub, 0, ext)
	}
}

func TestReplayMatchesIterQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ty := randType(r, 3)
		if ty.Size() == 0 || ty.Size() > 1<<16 {
			return true
		}
		loop := dataloop.FromType(ty)
		p := Compile(loop)
		if p == nil {
			// Declining is allowed, silently falling back is the contract;
			// only compiled programs must match.
			return true
		}
		count := int64(1 + r.Intn(3))
		disp := int64(r.Intn(3)) * 512
		total := count * loop.Size
		for k := 0; k < 8; k++ {
			pos := r.Int63n(total + 1)
			n := r.Int63n(total - pos + 3)
			got := replayCollect(t, p, count, disp, pos, n)
			want := NewIterAt(loop, count, disp, pos, n, true).Collect()
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed=%d type=%v loop=%v count=%d disp=%d window=[%d,+%d)\n  compiled    %v\n  interpreted %v",
					seed, ty, loop, count, disp, pos, n, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileShapesAreDims(t *testing.T) {
	// The headline compression claims: a 2-D tile view is one strided-run
	// opcode, a 3-D block view is one loop over one run — O(dims), not
	// O(pieces).
	tile := dataloop.FromType(datatype.Subarray(
		[]int{1024, 1024}, []int{256, 384}, []int{128, 64}, datatype.OrderC, datatype.Byte))
	if p := Compile(tile); p == nil || p.NumOps() != 1 {
		t.Fatalf("2-D tile compiled to %v ops, want 1", opsOf(p))
	}
	block := dataloop.FromType(datatype.Subarray(
		[]int{600, 600, 600}, []int{200, 200, 200}, []int{200, 0, 400}, datatype.OrderC, datatype.Int32))
	if p := Compile(block); p == nil || p.NumOps() > 2 {
		t.Fatalf("3-D block compiled to %v ops, want <= 2", opsOf(p))
	}
	four := dataloop.FromType(datatype.Subarray(
		[]int{16, 16, 16, 16}, []int{4, 4, 4, 4}, []int{0, 4, 8, 12}, datatype.OrderC, datatype.Int64))
	if p := Compile(four); p == nil || p.NumOps() > 3 {
		t.Fatalf("4-D block compiled to %v ops, want <= 3", opsOf(p))
	}
	// A fully dense view collapses to a single whole-region run.
	dense := dataloop.FromType(datatype.Contiguous(4096, datatype.Int64))
	if p := Compile(dense); p == nil || p.NumOps() != 1 {
		t.Fatalf("dense contig compiled to %v ops, want 1", opsOf(p))
	}
}

func opsOf(p *Program) string {
	if p == nil {
		return "nil"
	}
	return fmt.Sprint(p.NumOps())
}

func TestCompileDeclinesHugeIrregular(t *testing.T) {
	// Irregular offsets (quadratic gaps) with alternating lens defeat both
	// AP compression and run merging; past the op budget Compile must
	// decline rather than inflate the cache.
	n := maxProgramOps + 512
	lens := make([]int, n)
	displs := make([]int, n)
	at := 0
	for i := range lens {
		lens[i] = 1 + i%2
		displs[i] = at
		at += lens[i] + 1 + i%3
	}
	ty := datatype.Indexed(lens, displs, datatype.Int32)
	if p := Compile(dataloop.FromType(ty)); p != nil {
		t.Fatalf("huge irregular indexed compiled to %d ops, want nil", p.NumOps())
	}
}

func TestCompileZeroSize(t *testing.T) {
	ty := datatype.Indexed([]int{0, 0}, []int{0, 8}, datatype.Int32)
	p := Compile(dataloop.FromType(ty))
	if p == nil {
		t.Fatal("zero-size loop should compile to an empty program")
	}
	if got := replayCollect(t, p, 3, 0, 0, 100); len(got) != 0 {
		t.Fatalf("zero-size replay emitted %v", got)
	}
}

func TestReplayResizedInstanceSpacing(t *testing.T) {
	// Instances are spaced by the (resized) extent, exactly as the
	// interpreter spaces them.
	ty := datatype.Resized(datatype.Contiguous(2, datatype.Int32), 0, 64)
	loop := dataloop.FromType(ty)
	checkReplay(t, loop, 4, 0, 0, 4*loop.Size)
	checkReplay(t, loop, 4, 0, 5, 17)
}
