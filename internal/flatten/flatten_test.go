package flatten

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
)

func loopOf(t *datatype.Type) *dataloop.Loop { return dataloop.FromType(t) }

func TestIterMatchesTypeFlatten(t *testing.T) {
	ty := datatype.Vector(5, 3, 7, datatype.Int32)
	got := NewIter(loopOf(ty), 2, 0, true).Collect()
	want := ty.Flatten(0, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIterBaseOffset(t *testing.T) {
	ty := datatype.Contiguous(2, datatype.Int32)
	got := NewIter(loopOf(ty), 1, 1000, true).Collect()
	want := []Region{{Off: 1000, Len: 8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestIterNoCoalesce(t *testing.T) {
	ty := datatype.Contiguous(3, datatype.Resized(datatype.Int32, 0, 4))
	// Resized to its own extent: still dense, should yield one run even
	// uncoalesced (structural density).
	got := NewIter(loopOf(ty), 1, 0, false).Collect()
	if len(got) != 1 || got[0].Len != 12 {
		t.Fatalf("got %v", got)
	}
}

func TestIterAtWindow(t *testing.T) {
	// Stream of 4 int32s with gaps; take bytes [6, 13) of the stream.
	ty := datatype.Vector(4, 1, 2, datatype.Int32) // elems at 0,8,16,24
	it := NewIterAt(loopOf(ty), 1, 0, 6, 7, true)
	got := it.Collect()
	// Stream byte 6 is element 1 byte 2 -> file 10; 7 bytes: {10,2},{16,4},{24,1}
	want := []Region{{Off: 10, Len: 2}, {Off: 16, Len: 4}, {Off: 24, Len: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestIterAtZeroBytes(t *testing.T) {
	ty := datatype.Contiguous(4, datatype.Int32)
	it := NewIterAt(loopOf(ty), 1, 0, 4, 0, true)
	if got := it.Collect(); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestIterManyBatches(t *testing.T) {
	// More pieces than one batch (256): 1000 single-element pieces.
	ty := datatype.Vector(1000, 1, 2, datatype.Int32)
	got := NewIter(loopOf(ty), 1, 0, true).Collect()
	if len(got) != 1000 {
		t.Fatalf("len=%d", len(got))
	}
	if got[999].Off != 999*8 {
		t.Fatalf("last=%v", got[999])
	}
}

func TestIterCoalesceAcrossBatchBoundary(t *testing.T) {
	// 600 adjacent 4-byte pieces via blockindexed with touching blocks:
	// they span batch refills but must coalesce to one region.
	displs := make([]int, 600)
	for i := range displs {
		displs[i] = i
	}
	ty := datatype.BlockIndexed(1, displs, datatype.Int32)
	got := NewIter(loopOf(ty), 1, 0, true).Collect()
	if len(got) != 1 || got[0] != (Region{Off: 0, Len: 2400}) {
		t.Fatalf("got %v", got)
	}
}

func TestDualContigMemory(t *testing.T) {
	fileTy := datatype.Vector(3, 1, 2, datatype.Int32) // file pieces 0,8,16
	memTy := datatype.Contiguous(3, datatype.Int32)    // dense memory
	d := NewDual(
		NewIter(loopOf(fileTy), 1, 0, true),
		NewIter(loopOf(memTy), 1, 0, true),
	)
	type trip struct{ f, m, n int64 }
	var got []trip
	for {
		f, m, n, ok := d.Next()
		if !ok {
			break
		}
		got = append(got, trip{f, m, n})
	}
	want := []trip{{0, 0, 4}, {8, 4, 4}, {16, 8, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDualBothNoncontig(t *testing.T) {
	// File: pieces of 6 bytes; memory: pieces of 4 bytes. Runs split at
	// both boundaries: lcm pattern 4,2,2,4,...
	fileTy := datatype.Vector(2, 1, 2, datatype.Bytes(6)) // file: {0,6},{12,6}
	memTy := datatype.Vector(3, 1, 2, datatype.Int32)     // mem: {0,4},{8,4},{16,4}
	d := NewDual(
		NewIter(loopOf(fileTy), 1, 0, true),
		NewIter(loopOf(memTy), 1, 0, true),
	)
	var total int64
	var runs int
	for {
		_, _, n, ok := d.Next()
		if !ok {
			break
		}
		total += n
		runs++
	}
	if total != 12 || runs != 4 {
		t.Fatalf("total=%d runs=%d", total, runs)
	}
}

func TestDualPreservesByteCorrespondence(t *testing.T) {
	// The k-th stream byte in file space must pair with the k-th stream
	// byte in memory space.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		fileTy := datatype.RandomType(rr, 1+rr.Intn(2))
		memTy := datatype.RandomType(rr, 1+rr.Intn(2))
		// Make sizes equal by repeating each the other's size.
		fCount := memTy.Size()
		mCount := fileTy.Size()
		d := NewDual(
			NewIter(loopOf(fileTy), fCount, 0, true),
			NewIter(loopOf(memTy), mCount, 0, true),
		)
		// Reference: byte-by-byte stream maps.
		fileMap := streamMap(fileTy, fCount)
		memMap := streamMap(memTy, mCount)
		k := 0
		for {
			fo, mo, n, ok := d.Next()
			if !ok {
				break
			}
			for i := int64(0); i < n; i++ {
				if fileMap[k] != fo+i || memMap[k] != mo+i {
					return false
				}
				k++
			}
		}
		return k == len(fileMap) && k == len(memMap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// streamMap returns, for each stream byte index, its byte offset.
func streamMap(ty *datatype.Type, count int64) []int64 {
	var m []int64
	ext := ty.Extent()
	for i := int64(0); i < count; i++ {
		ty.Walk(i*ext, func(off, n int64) bool {
			for j := int64(0); j < n; j++ {
				m = append(m, off+j)
			}
			return true
		})
	}
	return m
}

func TestClip(t *testing.T) {
	cases := []struct {
		r      Region
		lo, hi int64
		want   Region
		ok     bool
	}{
		{Region{Off: 10, Len: 20}, 0, 100, Region{Off: 10, Len: 20}, true},
		{Region{Off: 10, Len: 20}, 15, 100, Region{Off: 15, Len: 15}, true},
		{Region{Off: 10, Len: 20}, 0, 15, Region{Off: 10, Len: 5}, true},
		{Region{Off: 10, Len: 20}, 12, 18, Region{Off: 12, Len: 6}, true},
		{Region{Off: 10, Len: 20}, 30, 40, Region{}, false},
		{Region{Off: 10, Len: 20}, 0, 10, Region{}, false},
	}
	for i, c := range cases {
		got, ok := Clip(c.r, c.lo, c.hi)
		if ok != c.ok || got != c.want {
			t.Fatalf("case %d: got %v,%v", i, got, ok)
		}
	}
}

func TestCoalescer(t *testing.T) {
	var out []Region
	c := NewCoalescer(func(r Region) { out = append(out, r) })
	c.Add(Region{Off: 0, Len: 4})
	c.Add(Region{Off: 4, Len: 4})
	c.Add(Region{Off: 10, Len: 2})
	c.Add(Region{Off: 0, Len: 0}) // ignored
	c.Add(Region{Off: 12, Len: 1})
	c.Flush()
	want := []Region{{Off: 0, Len: 8}, {Off: 10, Len: 3}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v", out)
	}
	c.Flush() // idempotent
	if len(out) != 2 {
		t.Fatalf("double flush emitted extra")
	}
}

func TestPropertyIterAtEqualsWindowOfFull(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := datatype.RandomType(rr, 1+rr.Intn(3))
		count := int64(1 + rr.Intn(3))
		total := ty.Size() * count
		if total == 0 {
			return true
		}
		pos := rr.Int63n(total)
		n := rr.Int63n(total - pos + 1)
		// Reference: stream map slice.
		m := streamMap(ty, count)[pos : pos+n]
		it := NewIterAt(loopOf(ty), count, 0, pos, n, true)
		k := 0
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			for j := int64(0); j < r.Len; j++ {
				if k >= len(m) || m[k] != r.Off+j {
					return false
				}
				k++
			}
		}
		return k == len(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
