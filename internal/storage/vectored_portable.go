//go:build !linux

// Portable vectored fallback: one scalar call per buffer. Semantics are
// identical to the linux preadv/pwritev path; only the syscall count
// differs.
package storage

func (s *File) readv(bufs [][]byte, off int64) error {
	for _, p := range bufs {
		if len(p) == 0 {
			continue
		}
		if err := s.ReadAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
	}
	return nil
}

func (s *File) writev(bufs [][]byte, off int64) error {
	for _, p := range bufs {
		if len(p) == 0 {
			continue
		}
		if err := s.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
	}
	return nil
}
