package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	// Fresh store: reads are zeros, size 0.
	buf := make([]byte, 16)
	if err := s.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("fresh store not zero")
	}
	if s.Size() != 0 {
		t.Fatalf("size=%d", s.Size())
	}
	// Write grows size.
	if err := s.WriteAt([]byte("hello"), 1000); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1005 {
		t.Fatalf("size=%d", s.Size())
	}
	// Negative offsets rejected, uniformly across store kinds.
	if err := s.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if err := s.ReadAt(buf, -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := s.WriteAtv([][]byte{{1}}, -1); err == nil {
		t.Fatal("negative vectored write accepted")
	}
	if err := s.ReadAtv([][]byte{buf}, -1); err == nil {
		t.Fatal("negative vectored read accepted")
	}
	if err := s.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestMemStoreBasics(t *testing.T) { testStore(t, NewMem()) }
func TestFileStoreBasics(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "obj"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	testStore(t, f)
}

func TestMemReadBack(t *testing.T) {
	m := NewMem()
	data := []byte("the quick brown fox")
	m.WriteAt(data, 5)
	got := make([]byte, len(data))
	m.ReadAt(got, 5)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Hole before the data reads zero.
	hole := make([]byte, 5)
	m.ReadAt(hole, 0)
	if !bytes.Equal(hole, make([]byte, 5)) {
		t.Fatal("hole not zero")
	}
}

func TestMemCrossPageWrite(t *testing.T) {
	m := NewMem()
	data := make([]byte, 3*pageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(pageSize - 9)
	m.WriteAt(data, off)
	got := make([]byte, len(data))
	m.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
}

func TestMemTruncate(t *testing.T) {
	m := NewMem()
	m.WriteAt(bytes.Repeat([]byte{0xAA}, 2*pageSize), 0)
	if err := m.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 100 {
		t.Fatalf("size=%d", m.Size())
	}
	// Bytes past the new size read zero even after regrowth.
	m.WriteAt([]byte{1}, 3*pageSize)
	got := make([]byte, 50)
	m.ReadAt(got, 100)
	if !bytes.Equal(got, make([]byte, 50)) {
		t.Fatal("truncated bytes leaked back")
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestDiscardTracksSizeOnly(t *testing.T) {
	d := NewDiscard()
	d.WriteAt(make([]byte, 1000), 5000)
	if d.Size() != 6000 {
		t.Fatalf("size=%d", d.Size())
	}
	buf := []byte{1, 2, 3}
	d.ReadAt(buf, 5000)
	if !bytes.Equal(buf, make([]byte, 3)) {
		t.Fatal("discard read not zero")
	}
	d.Truncate(10)
	if d.Size() != 10 {
		t.Fatalf("size=%d", d.Size())
	}
}

// eachStore runs a subtest against a fresh Mem and a fresh File store,
// the pair whose observable semantics must never diverge.
func eachStore(t *testing.T, f func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) { f(t, NewMem()) })
	t.Run("file", func(t *testing.T) {
		fs, err := OpenFile(filepath.Join(t.TempDir(), "obj"))
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		f(t, fs)
	})
}

func TestEOFAndHoleSemantics(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		// Sparse object: data at [100,105), EOF at 105, hole before.
		if err := s.WriteAt([]byte("abcde"), 100); err != nil {
			t.Fatal(err)
		}
		// Read straddling EOF: data then zeros, no error, no short read.
		got := make([]byte, 10)
		for i := range got {
			got[i] = 0xFF
		}
		if err := s.ReadAt(got, 102); err != nil {
			t.Fatal(err)
		}
		if want := []byte{'c', 'd', 'e', 0, 0, 0, 0, 0, 0, 0}; !bytes.Equal(got, want) {
			t.Fatalf("straddle EOF: got %q want %q", got, want)
		}
		// Read entirely past EOF.
		past := []byte{9, 9, 9}
		if err := s.ReadAt(past, 10000); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(past, make([]byte, 3)) {
			t.Fatalf("past EOF: got %v", past)
		}
		// Read inside the leading hole.
		hole := []byte{7, 7, 7, 7}
		if err := s.ReadAt(hole, 10); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hole, make([]byte, 4)) {
			t.Fatalf("hole: got %v", hole)
		}
		// 0-byte reads succeed anywhere, including past EOF.
		if err := s.ReadAt(nil, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadAt([]byte{}, 1<<40); err != nil {
			t.Fatal(err)
		}
		if s.Size() != 105 {
			t.Fatalf("size=%d", s.Size())
		}
	})
}

func TestVectoredRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		// Gather-write three runs as one contiguous span, read back both
		// scalar and scattered, with empty buffers sprinkled in.
		bufs := [][]byte{[]byte("the "), {}, []byte("quick "), []byte("brown fox")}
		if err := s.WriteAtv(bufs, 37); err != nil {
			t.Fatal(err)
		}
		want := []byte("the quick brown fox")
		got := make([]byte, len(want))
		if err := s.ReadAt(got, 37); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("scalar readback: %q", got)
		}
		if s.Size() != 37+int64(len(want)) {
			t.Fatalf("size=%d", s.Size())
		}
		dst := [][]byte{make([]byte, 7), {}, make([]byte, 2), make([]byte, 10)}
		if err := s.ReadAtv(dst, 37); err != nil {
			t.Fatal(err)
		}
		join := append(append(append([]byte{}, dst[0]...), dst[2]...), dst[3]...)
		if !bytes.Equal(join, want) {
			t.Fatalf("scattered readback: %q", join)
		}
	})
}

func TestVectoredReadEOFZeroFill(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
			t.Fatal(err)
		}
		// Scatter read straddling EOF: first buffer full, second partial,
		// third entirely past the end — zeros, no error.
		dst := [][]byte{{9, 9, 9}, {9, 9, 9}, {9, 9, 9}}
		if err := s.ReadAtv(dst, 0); err != nil {
			t.Fatal(err)
		}
		want := [][]byte{{1, 2, 3}, {4, 0, 0}, {0, 0, 0}}
		for i := range want {
			if !bytes.Equal(dst[i], want[i]) {
				t.Fatalf("buf %d: got %v want %v", i, dst[i], want[i])
			}
		}
		// All-empty batch is a no-op.
		if err := s.ReadAtv([][]byte{{}, {}}, 1<<40); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteAtv([][]byte{{}, nil}, 1<<40); err != nil {
			t.Fatal(err)
		}
		if s.Size() != 4 {
			t.Fatalf("size=%d", s.Size())
		}
	})
}

func TestVectoredHugeBatchChunks(t *testing.T) {
	// More buffers than the kernel iovec limit: the linux path must chunk
	// the batch across syscalls; every store must survive it.
	eachStore(t, func(t *testing.T, s Store) {
		const n = 1500 // > UIO_MAXIOV (1024)
		src := make([][]byte, n)
		var flat []byte
		for i := range src {
			src[i] = []byte{byte(i), byte(i >> 8), byte(3 * i)}
			flat = append(flat, src[i]...)
		}
		if err := s.WriteAtv(src, 11); err != nil {
			t.Fatal(err)
		}
		dst := make([][]byte, n)
		for i := range dst {
			dst[i] = make([]byte, 3)
		}
		if err := s.ReadAtv(dst, 11); err != nil {
			t.Fatal(err)
		}
		var back []byte
		for _, p := range dst {
			back = append(back, p...)
		}
		if !bytes.Equal(back, flat) {
			t.Fatal("huge vectored batch round trip diverged")
		}
	})
}

func TestPropertyMemMatchesFlatBuffer(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMem()
		ref := make([]byte, 300000)
		for i := 0; i < 30; i++ {
			off := r.Int63n(250000)
			n := 1 + r.Intn(70000)
			if off+int64(n) > int64(len(ref)) {
				n = int(int64(len(ref)) - off)
			}
			p := make([]byte, n)
			r.Read(p)
			copy(ref[off:], p)
			m.WriteAt(p, off)
		}
		for i := 0; i < 30; i++ {
			off := r.Int63n(250000)
			n := 1 + r.Intn(70000)
			if off+int64(n) > int64(len(ref)) {
				n = int(int64(len(ref)) - off)
			}
			got := make([]byte, n)
			m.ReadAt(got, off)
			if !bytes.Equal(got, ref[off:off+int64(n)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
