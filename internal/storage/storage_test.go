package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	// Fresh store: reads are zeros, size 0.
	buf := make([]byte, 16)
	if err := s.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("fresh store not zero")
	}
	if s.Size() != 0 {
		t.Fatalf("size=%d", s.Size())
	}
	// Write grows size.
	if err := s.WriteAt([]byte("hello"), 1000); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1005 {
		t.Fatalf("size=%d", s.Size())
	}
	// Negative offsets rejected (file store returns OS error).
	if err := s.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write accepted")
	}
}

func TestMemStoreBasics(t *testing.T) { testStore(t, NewMem()) }
func TestFileStoreBasics(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "obj"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	testStore(t, f)
}

func TestMemReadBack(t *testing.T) {
	m := NewMem()
	data := []byte("the quick brown fox")
	m.WriteAt(data, 5)
	got := make([]byte, len(data))
	m.ReadAt(got, 5)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Hole before the data reads zero.
	hole := make([]byte, 5)
	m.ReadAt(hole, 0)
	if !bytes.Equal(hole, make([]byte, 5)) {
		t.Fatal("hole not zero")
	}
}

func TestMemCrossPageWrite(t *testing.T) {
	m := NewMem()
	data := make([]byte, 3*pageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(pageSize - 9)
	m.WriteAt(data, off)
	got := make([]byte, len(data))
	m.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
}

func TestMemTruncate(t *testing.T) {
	m := NewMem()
	m.WriteAt(bytes.Repeat([]byte{0xAA}, 2*pageSize), 0)
	if err := m.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 100 {
		t.Fatalf("size=%d", m.Size())
	}
	// Bytes past the new size read zero even after regrowth.
	m.WriteAt([]byte{1}, 3*pageSize)
	got := make([]byte, 50)
	m.ReadAt(got, 100)
	if !bytes.Equal(got, make([]byte, 50)) {
		t.Fatal("truncated bytes leaked back")
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestDiscardTracksSizeOnly(t *testing.T) {
	d := NewDiscard()
	d.WriteAt(make([]byte, 1000), 5000)
	if d.Size() != 6000 {
		t.Fatalf("size=%d", d.Size())
	}
	buf := []byte{1, 2, 3}
	d.ReadAt(buf, 5000)
	if !bytes.Equal(buf, make([]byte, 3)) {
		t.Fatal("discard read not zero")
	}
	d.Truncate(10)
	if d.Size() != 10 {
		t.Fatalf("size=%d", d.Size())
	}
}

func TestPropertyMemMatchesFlatBuffer(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMem()
		ref := make([]byte, 300000)
		for i := 0; i < 30; i++ {
			off := r.Int63n(250000)
			n := 1 + r.Intn(70000)
			if off+int64(n) > int64(len(ref)) {
				n = int(int64(len(ref)) - off)
			}
			p := make([]byte, n)
			r.Read(p)
			copy(ref[off:], p)
			m.WriteAt(p, off)
		}
		for i := 0; i < 30; i++ {
			off := r.Int63n(250000)
			n := 1 + r.Intn(70000)
			if off+int64(n) > int64(len(ref)) {
				n = int(int64(len(ref)) - off)
			}
			got := make([]byte, n)
			m.ReadAt(got, off)
			if !bytes.Equal(got, ref[off:off+int64(n)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
