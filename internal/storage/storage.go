// Package storage provides the byte stores backing I/O server objects.
//
// Three implementations share one interface: a sparse paged in-memory
// store (the default for simulated and in-process clusters), a
// size-tracking discard store for huge benchmark runs where the bytes
// themselves don't matter, and a file-backed store for the real TCP
// daemons.
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is a sparse random-access byte object. Reads beyond the current
// size return zeros up to the requested length and no error (parallel
// file system semantics for sparse objects: holes read as zeros, and
// per-server objects grow independently).
type Store interface {
	// WriteAt stores p at offset off, growing the object as needed.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from offset off; holes and bytes past EOF read zero.
	ReadAt(p []byte, off int64) error
	// WriteAtv gathers the buffers of bufs into one contiguous write
	// starting at off — the vectored form the I/O scheduler hands its
	// adjacency-coalesced run batches to (pwritev on file stores).
	WriteAtv(bufs [][]byte, off int64) error
	// ReadAtv scatters the contiguous bytes starting at off across the
	// buffers of bufs in order (preadv on file stores); holes and bytes
	// past EOF read zero, as with ReadAt.
	ReadAtv(bufs [][]byte, off int64) error
	// Size reports the current object size (highest written byte + 1).
	Size() int64
	// Truncate sets the object size, discarding data past it.
	Truncate(size int64) error
}

// pageSize is the allocation granularity of the memory store.
const pageSize = 64 * 1024

// Mem is a sparse in-memory Store. It is safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	pages map[int64][]byte // page index -> pageSize bytes
	size  int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{pages: make(map[int64][]byte)}
}

// WriteAt implements Store.
func (m *Mem) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeLocked(p, off)
	return nil
}

// WriteAtv implements Store: one lock acquisition for the whole batch.
func (m *Mem) WriteAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range bufs {
		m.writeLocked(p, off)
		off += int64(len(p))
	}
	return nil
}

func (m *Mem) writeLocked(p []byte, off int64) {
	if len(p) == 0 {
		return // 0-byte writes never extend (matches file semantics)
	}
	end := off + int64(len(p))
	if end > m.size {
		m.size = end
	}
	for len(p) > 0 {
		page := off / pageSize
		in := off % pageSize
		n := int64(len(p))
		if n > pageSize-in {
			n = pageSize - in
		}
		pg := m.pages[page]
		if pg == nil {
			pg = make([]byte, pageSize)
			m.pages[page] = pg
		}
		copy(pg[in:in+n], p[:n])
		p = p[n:]
		off += n
	}
}

// ReadAt implements Store.
func (m *Mem) ReadAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.readLocked(p, off)
	return nil
}

// ReadAtv implements Store: one lock acquisition for the whole batch.
func (m *Mem) ReadAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range bufs {
		m.readLocked(p, off)
		off += int64(len(p))
	}
	return nil
}

func (m *Mem) readLocked(p []byte, off int64) {
	for len(p) > 0 {
		page := off / pageSize
		in := off % pageSize
		n := int64(len(p))
		if n > pageSize-in {
			n = pageSize - in
		}
		if pg := m.pages[page]; pg != nil {
			copy(p[:n], pg[in:in+n])
		} else {
			zero(p[:n])
		}
		p = p[n:]
		off += n
	}
}

// Size implements Store.
func (m *Mem) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Truncate implements Store.
func (m *Mem) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < m.size {
		firstDead := (size + pageSize - 1) / pageSize
		for idx := range m.pages {
			if idx >= firstDead {
				delete(m.pages, idx)
			}
		}
		// Zero the tail of the boundary page so regrowth reads zeros.
		if pg := m.pages[size/pageSize]; pg != nil {
			zero(pg[size%pageSize:])
		}
	}
	m.size = size
	return nil
}

// Discard tracks size only; data is dropped on write and reads as zeros.
// It lets full-scale benchmark runs (hundreds of MB of file data) run
// without holding the bytes, while the code paths stay identical.
type Discard struct {
	mu   sync.Mutex
	size int64
}

// NewDiscard returns an empty discard store.
func NewDiscard() *Discard { return &Discard{} }

// WriteAt implements Store.
func (d *Discard) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	if len(p) == 0 {
		return nil // 0-byte writes never extend (matches file semantics)
	}
	d.mu.Lock()
	if end := off + int64(len(p)); end > d.size {
		d.size = end
	}
	d.mu.Unlock()
	return nil
}

// WriteAtv implements Store.
func (d *Discard) WriteAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	var n int64
	for _, p := range bufs {
		n += int64(len(p))
	}
	if n == 0 {
		return nil
	}
	d.mu.Lock()
	if end := off + n; end > d.size {
		d.size = end
	}
	d.mu.Unlock()
	return nil
}

// ReadAt implements Store.
func (d *Discard) ReadAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	zero(p)
	return nil
}

// ReadAtv implements Store.
func (d *Discard) ReadAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	for _, p := range bufs {
		zero(p)
	}
	return nil
}

// Size implements Store.
func (d *Discard) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Truncate implements Store.
func (d *Discard) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size %d", size)
	}
	d.mu.Lock()
	d.size = size
	d.mu.Unlock()
	return nil
}

// File is a Store backed by an *os.File (used by the TCP daemons).
// Error semantics deliberately match Mem: negative offsets fail with the
// same storage error (not an OS errno), reads past EOF and in holes
// return zeros, 0-byte reads succeed anywhere.
type File struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFile opens (creating if needed) a file-backed store at path.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// WriteAt implements Store.
func (s *File) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

// ReadAt implements Store.
func (s *File) ReadAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		zero(p[n:])
		return nil
	}
	return err
}

// WriteAtv implements Store via pwritev where the platform has it (see
// vectored_linux.go); the portable fallback loops WriteAt per buffer.
func (s *File) WriteAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	return s.writev(bufs, off)
}

// ReadAtv implements Store via preadv where the platform has it, with
// the same zero-fill-at-EOF semantics as ReadAt.
func (s *File) ReadAtv(bufs [][]byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	return s.readv(bufs, off)
}

// Size implements Store.
func (s *File) Size() int64 {
	fi, err := s.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Truncate implements Store.
func (s *File) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size %d", size)
	}
	return s.f.Truncate(size)
}

// Close closes the underlying file.
func (s *File) Close() error { return s.f.Close() }

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
