//go:build linux

// Vectored file I/O via raw preadv/pwritev: the scheduler's coalesced
// run batches land on the kernel as one syscall per disk op instead of
// one per run. Only the stdlib syscall package is used; iovec arrays are
// pooled so the steady-state path allocates nothing.
package storage

import (
	"io"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// iovMax is the kernel's per-call iovec limit (UIO_MAXIOV); longer
// batches are chunked.
const iovMax = 1024

var iovPool = sync.Pool{New: func() any {
	s := make([]syscall.Iovec, 0, iovMax)
	return &s
}}

// vec runs one preadv/pwritev over up to iovMax buffers starting at the
// cursor (buffer i, byte k), returning the byte count. The position is
// split lo/hi the way the kernel reassembles it on both 32- and 64-bit.
func (s *File) vec(trap uintptr, bufs [][]byte, off int64, i, k int) (int64, syscall.Errno) {
	iovp := iovPool.Get().(*[]syscall.Iovec)
	iov := (*iovp)[:0]
	bk := k
	for bi := i; bi < len(bufs) && len(iov) < iovMax; bi++ {
		p := bufs[bi][bk:]
		bk = 0
		if len(p) == 0 {
			continue
		}
		iov = append(iov, syscall.Iovec{Base: &p[0]})
		iov[len(iov)-1].SetLen(len(p))
	}
	if len(iov) == 0 {
		*iovp = iov
		iovPool.Put(iovp)
		return 0, 0
	}
	n, _, errno := syscall.Syscall6(trap, s.f.Fd(),
		uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)),
		uintptr(off), uintptr(uint64(off)>>32), 0)
	runtime.KeepAlive(bufs)
	*iovp = iov[:0]
	iovPool.Put(iovp)
	if errno != 0 {
		return 0, errno
	}
	return int64(n), 0
}

// skip advances the cursor past consumed and empty buffers.
func skip(bufs [][]byte, i, k int) (int, int) {
	for i < len(bufs) && k >= len(bufs[i]) {
		i, k = i+1, 0
	}
	return i, k
}

// advance moves the cursor n bytes forward.
func advance(bufs [][]byte, i, k int, n int64) (int, int) {
	for n > 0 {
		rem := int64(len(bufs[i]) - k)
		if n < rem {
			return i, k + int(n)
		}
		n -= rem
		i, k = i+1, 0
	}
	return i, k
}

func (s *File) readv(bufs [][]byte, off int64) error {
	i, k := skip(bufs, 0, 0)
	for i < len(bufs) {
		n, errno := s.vec(syscall.SYS_PREADV, bufs, off, i, k)
		switch {
		case errno == syscall.EINTR:
			continue
		case errno == syscall.ENOSYS:
			return s.readvSlow(bufs, off, i, k)
		case errno != 0:
			return errno
		case n == 0:
			// EOF: everything not yet filled reads zero (hole semantics).
			zero(bufs[i][k:])
			for j := i + 1; j < len(bufs); j++ {
				zero(bufs[j])
			}
			return nil
		}
		off += n
		i, k = advance(bufs, i, k, n)
		i, k = skip(bufs, i, k)
	}
	return nil
}

func (s *File) writev(bufs [][]byte, off int64) error {
	i, k := skip(bufs, 0, 0)
	for i < len(bufs) {
		n, errno := s.vec(syscall.SYS_PWRITEV, bufs, off, i, k)
		switch {
		case errno == syscall.EINTR:
			continue
		case errno == syscall.ENOSYS:
			return s.writevSlow(bufs, off, i, k)
		case errno != 0:
			return errno
		case n == 0:
			return io.ErrShortWrite
		}
		off += n
		i, k = advance(bufs, i, k, n)
		i, k = skip(bufs, i, k)
	}
	return nil
}

// readvSlow / writevSlow finish a batch with scalar calls from the
// cursor — the ENOSYS escape hatch for kernels without preadv.
func (s *File) readvSlow(bufs [][]byte, off int64, i, k int) error {
	for ; i < len(bufs); i, k = i+1, 0 {
		p := bufs[i][k:]
		if len(p) == 0 {
			continue
		}
		if err := s.ReadAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
	}
	return nil
}

func (s *File) writevSlow(bufs [][]byte, off int64, i, k int) error {
	for ; i < len(bufs); i, k = i+1, 0 {
		p := bufs[i][k:]
		if len(p) == 0 {
			continue
		}
		if err := s.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
	}
	return nil
}
