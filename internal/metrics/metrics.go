// Package metrics provides fixed-bucket latency histograms and
// counter/gauge registries for live server introspection. Recording is
// lock-free (atomics only, no allocation) so histograms can sit on I/O
// hot paths; snapshots are plain structs that merge across servers and
// serialize to JSON, and a Registry renders everything as Prometheus
// text exposition for the -http debug listener.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count: bucket i holds samples in
// (2^(i-1)µs, 2^i µs] (bucket 0 holds everything ≤ 1µs), spanning 1µs
// to ~2.3 hours; the last bucket is the overflow.
const NumBuckets = 34

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := (int64(d) + 999) / 1e3 // ceil: sub-µs remainders push upward
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketUpperBound reports bucket i's inclusive upper bound; the last
// bucket reports -1 (unbounded, Prometheus le="+Inf").
func BucketUpperBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return -1
	}
	return time.Duration(int64(1)<<uint(i)) * time.Microsecond
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// use. The zero value is ready. Observe is allocation-free.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // ns
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observe calls; callers quiesce recording first (bench does this at
// phase barriers).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot captures the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// HistSnapshot is an immutable histogram copy: mergeable across servers
// or ranks and JSON-serializable into bench results.
type HistSnapshot struct {
	Count  int64             `json:"count"`
	SumNs  int64             `json:"sum_ns"`
	Counts [NumBuckets]int64 `json:"buckets"`
}

// Add merges o into a copy of s.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	return s
}

// Sub subtracts an earlier snapshot o of the same histogram from a
// copy of s, yielding the window of samples recorded between the two —
// the basis for rolling quantiles (tail-sampling thresholds, straggler
// scores). Fields clamp at zero so a reset between snapshots degrades
// to "empty window" rather than corrupting quantile math.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	s.Count -= o.Count
	s.SumNs -= o.SumNs
	if s.Count < 0 {
		s.Count = 0
	}
	if s.SumNs < 0 {
		s.SumNs = 0
	}
	for i := range s.Counts {
		s.Counts[i] -= o.Counts[i]
		if s.Counts[i] < 0 {
			s.Counts[i] = 0
		}
	}
	return s
}

// Mean reports the average sample, 0 if empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the holding bucket. Returns 0 on an empty
// histogram. The overflow bucket reports its lower bound.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			hi := BucketUpperBound(i)
			var lo time.Duration
			if i > 0 {
				lo = BucketUpperBound(i - 1)
			}
			if hi < 0 { // overflow bucket: no upper bound to interpolate to
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return BucketUpperBound(NumBuckets - 2)
}

// Quantiles is a convenience for the common p50/p95/p99 triple.
func (s HistSnapshot) Quantiles() (p50, p95, p99 time.Duration) {
	return s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
}

// Counter is an atomic monotonically-increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry names metrics for the Prometheus text endpoint. Gauges and
// counters are functions sampled at render time, which is how iostats
// counters are exposed without double bookkeeping. Registration order
// does not matter: output is sorted by name for deterministic scrapes.
type Registry struct {
	mu       sync.Mutex
	gauges   map[string]func() int64
	gaugesF  map[string]func() float64
	counters map[string]func() float64
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		gauges:   make(map[string]func() int64),
		gaugesF:  make(map[string]func() float64),
		counters: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Gauge registers fn under name (rendered as a gauge metric).
func (r *Registry) Gauge(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.help[name] = help
	r.mu.Unlock()
}

// GaugeF registers a float-valued gauge (ratios, seconds).
func (r *Registry) GaugeF(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugesF[name] = fn
	r.help[name] = help
	r.mu.Unlock()
}

// Counter registers a monotonically-increasing metric. Counter names
// must end in _total (enforced by Lint, following Prometheus naming
// conventions); values are floats so durations can be exported in base
// seconds rather than integer nanoseconds.
func (r *Registry) Counter(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = fn
	r.help[name] = help
	r.mu.Unlock()
}

// Hist registers h under name (rendered as a Prometheus histogram with
// seconds-valued le labels).
func (r *Registry) Hist(name, help string, h *Histogram) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.help[name] = help
	r.mu.Unlock()
}

// WritePrometheus renders all metrics in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Scalar metrics render uniformly: (name, type, rendered value).
	// Int gauges keep %d so byte counters never lose precision to
	// float formatting; float kinds use %g.
	type scalar struct {
		kind string
		fn   func() string
	}
	scalars := make(map[string]scalar, len(r.gauges)+len(r.gaugesF)+len(r.counters))
	for n, f := range r.gauges {
		fn := f
		scalars[n] = scalar{"gauge", func() string { return fmt.Sprintf("%d", fn()) }}
	}
	for n, f := range r.gaugesF {
		fn := f
		scalars[n] = scalar{"gauge", func() string { return fmt.Sprintf("%g", fn()) }}
	}
	for n, f := range r.counters {
		fn := f
		scalars[n] = scalar{"counter", func() string { return fmt.Sprintf("%g", fn()) }}
	}
	snames := make([]string, 0, len(scalars))
	for n := range scalars {
		snames = append(snames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	help := make(map[string]string, len(r.help))
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.Unlock()
	sort.Strings(snames)
	sort.Strings(hnames)

	for _, n := range snames {
		if h := help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
				return err
			}
		}
		s := scalars[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", n, s.kind, n, s.fn()); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		s := hists[n].Snapshot()
		if h := help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i := 0; i < NumBuckets; i++ {
			cum += s.Counts[i]
			ub := BucketUpperBound(i)
			if ub < 0 {
				continue // folded into +Inf below
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, ub.Seconds(), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n",
			n, time.Duration(s.SumNs).Seconds(), n, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// nonBaseUnits are unit tokens Prometheus naming conventions reject:
// durations belong in base seconds, sizes in bytes, and fractions as
// 0..1 ratios, so scaled or abbreviated unit suffixes flag a metric
// that dashboards would have to special-case.
var nonBaseUnits = map[string]string{
	"ns": "seconds", "nanoseconds": "seconds",
	"us": "seconds", "microseconds": "seconds",
	"ms": "seconds", "milliseconds": "seconds",
	"mins": "seconds", "minutes": "seconds", "hours": "seconds",
	"kb": "bytes", "kib": "bytes", "mb": "bytes", "mib": "bytes",
	"gb": "bytes", "gib": "bytes",
	"pct": "ratio", "percent": "ratio", "percentage": "ratio",
}

// LintName checks one metric name against the Prometheus naming
// conventions this repo adopts (a promlint subset): lowercase
// snake_case, base units only, counters end in _total and nothing
// else does, and histograms are named in _seconds to match the
// seconds-valued le labels WritePrometheus emits. Returns one message
// per violation, empty when clean.
func LintName(name, kind string) []string {
	var probs []string
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			probs = append(probs, fmt.Sprintf("%s: invalid character %q (want lowercase snake_case)", name, c))
			break
		}
	}
	for _, tok := range strings.Split(name, "_") {
		if base, bad := nonBaseUnits[tok]; bad {
			probs = append(probs, fmt.Sprintf("%s: non-base unit %q (use %s)", name, tok, base))
		}
	}
	total := strings.HasSuffix(name, "_total")
	switch kind {
	case "counter":
		if !total {
			probs = append(probs, fmt.Sprintf("%s: counter must end in _total", name))
		}
	case "histogram":
		if total {
			probs = append(probs, fmt.Sprintf("%s: histogram must not end in _total", name))
		}
		if !strings.HasSuffix(name, "_seconds") {
			probs = append(probs, fmt.Sprintf("%s: histogram buckets render in seconds; name must end in _seconds", name))
		}
	default: // gauge
		if total {
			probs = append(probs, fmt.Sprintf("%s: non-counter must not end in _total", name))
		}
	}
	return probs
}

// Lint runs LintName over every registered metric and returns the
// sorted violations; an empty slice means the registry scrapes clean.
func (r *Registry) Lint() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var probs []string
	for n := range r.gauges {
		probs = append(probs, LintName(n, "gauge")...)
	}
	for n := range r.gaugesF {
		probs = append(probs, LintName(n, "gauge")...)
	}
	for n := range r.counters {
		probs = append(probs, LintName(n, "counter")...)
	}
	for n := range r.hists {
		probs = append(probs, LintName(n, "histogram")...)
	}
	r.mu.Unlock()
	sort.Strings(probs)
	return probs
}
