package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dtio/internal/iostats"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.SumNs != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	if s.Quantile(0.5) != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram quantiles nonzero")
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram recorded")
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != int64(100*time.Microsecond) {
		t.Fatalf("snapshot %+v", s)
	}
	// 100µs lands in bucket (64µs, 128µs]; every quantile interpolates
	// inside that bucket.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		got := s.Quantile(q)
		if got <= 64*time.Microsecond || got > 128*time.Microsecond {
			t.Fatalf("q=%v got %v, want in (64µs,128µs]", q, got)
		}
	}
	if s.Mean() != 100*time.Microsecond {
		t.Fatalf("mean %v", s.Mean())
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},     // exactly 1µs stays in bucket 0
		{time.Microsecond + 1, 1}, // just over
		{2 * time.Microsecond, 1}, // upper bound inclusive
		{2*time.Microsecond + 1, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{24 * time.Hour, NumBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v)=%d want %d", c.d, got, c.want)
		}
	}
	// Negative durations are clamped, not panics.
	var h Histogram
	h.Observe(-time.Second)
	if h.Snapshot().Counts[0] != 1 {
		t.Fatal("negative sample not clamped to bucket 0")
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantiles()
	if !(p50 > 0 && p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	// ~uniform 0..10ms: p50 should land within a 2x bucket of 5ms.
	if p50 < 4*time.Millisecond || p50 > 9*time.Millisecond {
		t.Fatalf("p50=%v implausible for uniform 0..10ms", p50)
	}
}

func TestMergeAcrossServers(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(50 * time.Microsecond)
		b.Observe(800 * time.Microsecond)
	}
	m := a.Snapshot().Add(b.Snapshot())
	if m.Count != 200 {
		t.Fatalf("merged count %d", m.Count)
	}
	if got := m.SumNs; got != int64(100*50*time.Microsecond)+int64(100*800*time.Microsecond) {
		t.Fatalf("merged sum %d", got)
	}
	// The median of the merged distribution sits between the two modes.
	p50 := m.Quantile(0.5)
	if p50 <= 50*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Fatalf("merged p50=%v", p50)
	}
	// Merge with an empty snapshot is identity.
	if a.Snapshot().Add(HistSnapshot{}) != a.Snapshot() {
		t.Fatal("merge with empty changed snapshot")
	}
}

// TestWindowedSub: the delta of two snapshots of one histogram is
// exactly the samples recorded between them — the rolling window the
// tail-sampling threshold and straggler scores quantile over — and a
// reset between snapshots clamps to empty instead of going negative.
func TestWindowedSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 60; i++ {
		h.Observe(100 * time.Microsecond)
	}
	before := h.Snapshot()
	for i := 0; i < 40; i++ {
		h.Observe(30 * time.Millisecond)
	}
	win := h.Snapshot().Sub(before)
	if win.Count != 40 {
		t.Fatalf("window count %d, want 40", win.Count)
	}
	if got := win.SumNs; got != int64(40*30*time.Millisecond) {
		t.Fatalf("window sum %d", got)
	}
	// All window mass is in the slow mode: its p50 ignores the fast
	// samples from before the window opened.
	if p50 := win.Quantile(0.5); p50 < 16*time.Millisecond {
		t.Fatalf("window p50=%v still sees pre-window samples", p50)
	}
	// Identity and clamping.
	if s := h.Snapshot(); s.Sub(HistSnapshot{}) != s {
		t.Fatal("sub of empty changed snapshot")
	}
	h.Reset()
	h.Observe(time.Millisecond)
	clamped := h.Snapshot().Sub(before)
	if clamped.Count != 0 || clamped.SumNs != 0 {
		t.Fatalf("sub across a reset went negative: %+v", clamped)
	}
	for i, c := range clamped.Counts {
		if c < 0 {
			t.Fatalf("bucket %d negative: %d", i, c)
		}
	}
}

func TestResetAndReuse(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 || s.Counts[bucketOf(time.Millisecond)] != 0 {
		t.Fatalf("reset left %+v", s)
	}
	h.Observe(2 * time.Millisecond)
	if h.Snapshot().Count != 1 {
		t.Fatal("post-reset observe lost")
	}
}

// TestConcurrentObserve is the -race stress: many writers, concurrent
// snapshots, exact final totals.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader exercising snapshot-vs-observe races
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writersWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * time.Microsecond)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count %d want %d", s.Count, writers*perWriter)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestObserveAllocFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(200, func() { h.Observe(37 * time.Microsecond) })
	if allocs != 0 {
		t.Fatalf("Observe allocates: %v allocs/op", allocs)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Fatalf("counter %d", c.Value())
	}
	var nilC *Counter
	nilC.Add(1)
	if nilC.Value() != 0 {
		t.Fatal("nil counter")
	}
}

func TestPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	reg.Hist("pvfs_request_latency_seconds", "request latency", &h)
	reg.Gauge("pvfs_up", "always 1", func() int64 { return 1 })
	var st iostats.Stats
	st.AddDisk(4, 2, 1<<20)
	st.AddRetry()
	RegisterIOStats(reg, "pvfs_io", st.Snapshot)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pvfs_up gauge",
		"pvfs_up 1",
		"# TYPE pvfs_request_latency_seconds histogram",
		`pvfs_request_latency_seconds_bucket{le="+Inf"} 2`,
		"pvfs_request_latency_seconds_count 2",
		"pvfs_io_disk_ops 4",
		"pvfs_io_disk_ops_merged 2",
		"pvfs_io_seek_bytes 1048576",
		"pvfs_io_retries 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "pvfs_request_latency_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		last = n
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket %d", last)
	}
}

// fmtSscan pulls the trailing integer off a Prometheus sample line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := parseInt(line[i+1:])
	*n = v
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", "", func() int64 { return 1 })
	lis, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	base := "http://" + lis.Addr().String()
	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up 1") {
		t.Fatalf("metrics %d %q", code, body)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("expvar %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index %d", code)
	}
}
