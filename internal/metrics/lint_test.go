package metrics

import "testing"

func TestLintNameRules(t *testing.T) {
	cases := []struct {
		name, kind string
		clean      bool
	}{
		{"pvfs_server_io_ops", "gauge", true},
		{"pvfs_server_replays_total", "counter", true},
		{"lock_wait_seconds_total", "counter", true},
		{"cache_hit_ratio", "gauge", true},
		{"read_latency_seconds", "histogram", true},
		{"lock_wait_ns", "gauge", false},          // scaled duration unit
		{"failover_ms_total", "counter", false},   // scaled unit inside counter
		{"cache_hit_pct", "gauge", false},         // percent instead of ratio
		{"heap_kb", "gauge", false},               // scaled size unit
		{"replays", "counter", false},             // counter without _total
		{"io_ops_total", "gauge", false},          // _total on a non-counter
		{"read_latency", "histogram", false},      // histogram without _seconds
		{"read_latency_total", "histogram", false},
		{"Read_Latency_seconds", "histogram", false}, // uppercase
	}
	for _, c := range cases {
		probs := LintName(c.name, c.kind)
		if c.clean && len(probs) > 0 {
			t.Errorf("%s (%s): want clean, got %v", c.name, c.kind, probs)
		}
		if !c.clean && len(probs) == 0 {
			t.Errorf("%s (%s): want violation, lint passed it", c.name, c.kind)
		}
	}
}

// TestRegistryLintFindsAllKinds: Lint must walk every registration
// map, not just gauges.
func TestRegistryLintFindsAllKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("bad_ns", "", func() int64 { return 0 })
	reg.GaugeF("bad_pct", "", func() float64 { return 0 })
	reg.Counter("bad_counter", "", func() float64 { return 0 })
	var h Histogram
	reg.Hist("bad_hist", "", &h)
	if got := len(reg.Lint()); got != 4 {
		t.Fatalf("want 4 violations (one per kind), got %d: %v", got, reg.Lint())
	}
}
