package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"dtio/internal/iostats"
)

// DebugMux builds the -http debug listener's handler: /metrics
// (Prometheus text), /healthz, /debug/vars (expvar), and /debug/pprof.
// Handlers are registered on a private mux so multiple daemons in one
// process (tests) never collide on http.DefaultServeMux.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug listener on addr and serves until the
// process exits, returning the bound listener (so callers can report
// the ephemeral port for addr ":0").
func ServeDebug(addr string, reg *Registry) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(lis, DebugMux(reg))
	return lis, nil
}

// RegisterIOStats exposes every iostats counter as a prefix_* metric
// sampled from fn at scrape time. Durations export in base seconds as
// _seconds_total counters and the cache hit fraction as a 0..1 ratio
// gauge, per Prometheus naming conventions (enforced by Registry.Lint).
func RegisterIOStats(reg *Registry, prefix string, fn func() iostats.Snapshot) {
	g := func(name, help string, pick func(iostats.Snapshot) int64) {
		reg.Gauge(prefix+"_"+name, help, func() int64 { return pick(fn()) })
	}
	secs := func(name, help string, pick func(iostats.Snapshot) int64) {
		reg.Counter(prefix+"_"+name, help, func() float64 { return float64(pick(fn())) / 1e9 })
	}
	g("desired_bytes", "bytes the application asked for", func(s iostats.Snapshot) int64 { return s.DesiredBytes })
	g("accessed_bytes", "bytes actually moved to/from storage", func(s iostats.Snapshot) int64 { return s.AccessedBytes })
	g("io_ops", "I/O requests issued", func(s iostats.Snapshot) int64 { return s.IOOps })
	g("wire_msgs", "wire messages sent", func(s iostats.Snapshot) int64 { return s.WireMsgs })
	g("req_bytes", "request descriptor bytes on the wire", func(s iostats.Snapshot) int64 { return s.ReqBytes })
	g("resent_bytes", "payload bytes resent by retries", func(s iostats.Snapshot) int64 { return s.ResentBytes })
	g("lock_waits", "lock acquisitions that waited", func(s iostats.Snapshot) int64 { return s.LockWaits })
	secs("lock_wait_seconds_total", "total time spent waiting for locks", func(s iostats.Snapshot) int64 { return s.LockWaitNs })
	g("regions", "noncontiguous regions processed", func(s iostats.Snapshot) int64 { return s.Regions })
	g("disk_ops", "disk operations dispatched", func(s iostats.Snapshot) int64 { return s.DiskOps })
	g("disk_ops_merged", "disk operations merged away by the scheduler", func(s iostats.Snapshot) int64 { return s.DiskOpsMerged })
	g("disk_vec_ops", "coalesced operations dispatched as one vectored call", func(s iostats.Snapshot) int64 { return s.DiskVecOps })
	g("seek_bytes", "disk head travel charged by the seek model", func(s iostats.Snapshot) int64 { return s.SeekBytes })
	g("retries", "request retries", func(s iostats.Snapshot) int64 { return s.Retries })
	g("timeouts", "request timeouts", func(s iostats.Snapshot) int64 { return s.Timeouts })
	g("replayed_bytes", "duplicate write bytes suppressed by replay dedup", func(s iostats.Snapshot) int64 { return s.ReplayedBytes })
	secs("failover_seconds_total", "time spent failing over to retries", func(s iostats.Snapshot) int64 { return s.FailoverNs })
	g("cache_hits", "cached operations served from the extent cache", func(s iostats.Snapshot) int64 { return s.CacheHits })
	g("cache_misses", "cached operations that had to fill from servers", func(s iostats.Snapshot) int64 { return s.CacheMisses })
	reg.GaugeF(prefix+"_cache_hit_ratio", "extent cache hit ratio (0..1)", func() float64 { return fn().HitRatio() })
	g("cache_flush_ops", "aggregated write-back flushes", func(s iostats.Snapshot) int64 { return s.FlushOps })
	g("cache_flush_bytes", "dirty bytes written back by flushes", func(s iostats.Snapshot) int64 { return s.FlushBytes })
	g("cache_invalidations", "cached extents dropped by revocation or expiry", func(s iostats.Snapshot) int64 { return s.Invalidations })
	g("degraded_reads", "reads served by a non-preferred replica member", func(s iostats.Snapshot) int64 { return s.DegradedReads })
	g("fanout_writes", "replica write copies beyond the first member", func(s iostats.Snapshot) int64 { return s.FanoutWrites })
	g("replica_repair_bytes", "bytes re-replicated onto restarted members", func(s iostats.Snapshot) int64 { return s.ReplicaRepairBytes })
}

// PublishExpvar mirrors the registry's gauges into the process-global
// expvar namespace under name (idempotent per name; later calls with a
// duplicate name are ignored, matching expvar semantics).
func PublishExpvar(name string, reg *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		reg.mu.Lock()
		fns := make(map[string]func() int64, len(reg.gauges))
		for n, f := range reg.gauges {
			fns[n] = f
		}
		ffns := make(map[string]func() float64, len(reg.gaugesF)+len(reg.counters))
		for n, f := range reg.gaugesF {
			ffns[n] = f
		}
		for n, f := range reg.counters {
			ffns[n] = f
		}
		reg.mu.Unlock()
		out := make(map[string]any, len(fns)+len(ffns))
		for n, f := range fns {
			out[n] = f()
		}
		for n, f := range ffns {
			out[n] = f()
		}
		return out
	}))
}
