package wire

import "fmt"

// Streamed transfers split a large payload into NSeg flow-control
// segments of SegBytes (the last may be short), so whichever side owns
// the data can overlap disk work with network transfer instead of
// staging the whole payload. The credit rule, shared by both directions:
//
//   - the sender may have at most Window unacknowledged segments in
//     flight: before sending segment k >= Window it waits for the ack of
//     segment k-Window;
//   - the receiver acks segment k after consuming it iff k+Window < NSeg
//     (acks that could not unblock anything are never sent, so a
//     completed stream leaves no stray messages on the connection).
//
// Errors: a read-side server failure mid-stream is reported in a
// terminal chunk with Err set, after which the connection closes. A
// write-side request failure is reported in the ordinary IOResp after
// the server drains (and keeps acking) the remaining segments, leaving
// the connection usable.

// ReadStreamHdr announces a streamed read response: Total payload bytes
// follow as chunks. It replaces the IOResp of an inline read (implying
// OK; request errors detected before data moves use a plain IOResp).
// Seq echoes the request tag's sequence number.
type ReadStreamHdr struct {
	Seq      uint64
	Total    int64
	SegBytes int32
	Window   int32
}

// WriteStreamHdr opens a streamed write: Inner is the encoded ordinary
// write request (contig, list, or dtype) with empty payload; Total
// payload bytes follow as chunks. StartSeg is the first segment the
// client will send: 0 on a fresh write, the last-acknowledged segment
// number when a retry resumes a stream whose prefix is known durable —
// the server skips (already-written) payload bytes before StartSeg*
// SegBytes without touching the disk.
type WriteStreamHdr struct {
	Total    int64
	SegBytes int32
	Window   int32
	StartSeg int64
	Inner    []byte
}

// StreamChunk carries flow-control segment Seq. A non-empty Err is
// terminal: the stream is abandoned and the connection closes.
type StreamChunk struct {
	Seq  uint32
	Err  string
	Data []byte
}

// StreamAck grants one segment of credit: the receiver has consumed
// segment Seq.
type StreamAck struct{ Seq uint32 }

// EncodeReadStreamHdr marshals a ReadStreamHdr.
func EncodeReadStreamHdr(r *ReadStreamHdr) []byte {
	e := NewEnc(MTReadStreamHdr)
	e.I64(int64(r.Seq))
	e.I64(r.Total)
	e.U32(uint32(r.SegBytes))
	e.U32(uint32(r.Window))
	return e.B
}

// EncodeWriteStreamHdr marshals a WriteStreamHdr.
func EncodeWriteStreamHdr(r *WriteStreamHdr) []byte {
	e := NewEnc(MTWriteStreamHdr)
	e.I64(r.Total)
	e.U32(uint32(r.SegBytes))
	e.U32(uint32(r.Window))
	e.I64(r.StartSeg)
	e.Bytes(r.Inner)
	return e.B
}

// AppendStreamChunk marshals a StreamChunk into dst[:0] (growing it as
// needed), so per-segment frames build into a reusable buffer.
func AppendStreamChunk(dst []byte, seq uint32, errStr string, data []byte) []byte {
	e := Enc{B: append(dst[:0], byte(MTStreamChunk))}
	e.U32(seq)
	e.Str(errStr)
	e.Bytes(data)
	return e.B
}

// AppendStreamChunkHdr marshals a StreamChunk frame for dataLen payload
// bytes, leaving the payload area for the caller to extend and fill
// (e.g. straight from storage, avoiding an intermediate copy).
func AppendStreamChunkHdr(dst []byte, seq uint32, dataLen int) []byte {
	e := Enc{B: append(dst[:0], byte(MTStreamChunk))}
	e.U32(seq)
	e.Str("")
	e.U32(uint32(dataLen))
	return e.B
}

// EncodeStreamChunk marshals a StreamChunk into a fresh buffer.
func EncodeStreamChunk(c *StreamChunk) []byte {
	return AppendStreamChunk(nil, c.Seq, c.Err, c.Data)
}

// AppendStreamAck marshals a StreamAck into dst[:0].
func AppendStreamAck(dst []byte, seq uint32) []byte {
	e := Enc{B: append(dst[:0], byte(MTStreamAck))}
	e.U32(seq)
	return e.B
}

// EncodeStreamAck marshals a StreamAck.
func EncodeStreamAck(a *StreamAck) []byte { return AppendStreamAck(nil, a.Seq) }

// DecodeStreamChunk parses a StreamChunk frame into c without interface
// boxing (hot path: one frame per segment). Data aliases b.
func DecodeStreamChunk(b []byte, c *StreamChunk) error {
	d := NewDec(b)
	if t := d.Type(); t != MTStreamChunk {
		return fmt.Errorf("wire: expected stream chunk, got %s", t)
	}
	c.Seq = d.U32()
	c.Err = d.Str()
	c.Data = d.Bytes()
	return d.Done()
}

// DecodeStreamAck parses a StreamAck frame.
func DecodeStreamAck(b []byte) (uint32, error) {
	d := NewDec(b)
	if t := d.Type(); t != MTStreamAck {
		return 0, fmt.Errorf("wire: expected stream ack, got %s", t)
	}
	seq := d.U32()
	return seq, d.Done()
}

// AppendIORespOK marshals into dst[:0] an OK IOResp frame (echoing seq)
// for dataLen payload bytes, leaving the payload area for the caller to
// extend and fill in place.
func AppendIORespOK(dst []byte, seq uint64, dataLen int) []byte {
	e := Enc{B: append(dst[:0], byte(MTIOResp))}
	e.I64(int64(seq))
	e.U8(1)
	e.Str("")
	e.I64(0)
	e.U32(uint32(dataLen))
	return e.B
}
