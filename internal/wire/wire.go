// Package wire defines the binary protocol between PVFS clients and
// servers: little-endian message codecs for metadata operations and the
// four data access interfaces (contiguous, list, and datatype reads and
// writes).
//
// Request encodings matter to the reproduction: a list I/O request grows
// by 16 bytes per region while a datatype request carries one fixed-size
// dataloop, and that difference — measured by Msg sizes on the wire — is
// a core effect the paper evaluates.
package wire

import (
	"encoding/binary"
	"fmt"
)

// MsgType discriminates messages.
type MsgType uint8

// Message types.
const (
	// Metadata server ops.
	MTCreateReq MsgType = iota + 1
	MTOpenReq
	MTRemoveReq
	MTListReq
	MTMetaResp
	MTListResp

	// I/O server ops.
	MTReadContigReq
	MTWriteContigReq
	MTReadListReq
	MTWriteListReq
	MTReadDtypeReq
	MTWriteDtypeReq
	MTLocalSizeReq
	MTTruncateReq
	MTRemoveObjReq
	MTIOResp

	// Streamed (flow-controlled) transfers. A read response larger than
	// the segment size arrives as MTReadStreamHdr followed by
	// MTStreamChunk frames; a large write is sent as MTWriteStreamHdr
	// (wrapping the ordinary write request, minus payload) followed by
	// chunks. MTStreamAck grants one segment of credit in the reverse
	// direction.
	MTReadStreamHdr
	MTWriteStreamHdr
	MTStreamChunk
	MTStreamAck

	// Byte-range lock service (hosted by the metadata server). An
	// acquire that must wait gets no immediate reply; the MTLockGrant
	// arrives once the range frees up (or the lease of a conflicting
	// holder expires).
	MTLockAcquireReq
	MTLockReleaseReq
	MTLockGrant

	// Fault administration: stall, crash-restart, or degrade an I/O
	// server (driven by pvfsctl against real clusters, by the bench
	// fault driver in simulation). Answered with an ordinary MTIOResp.
	MTAdminReq

	// Cache-lease revocation: the metadata server asks the holder of a
	// revocable byte-range lock (a client cache lease) to flush and
	// release it because a conflicting request queued behind it. The
	// holder's MTLockReleaseReq is the acknowledgement.
	MTLeaseRevoke

	// Meta-server introspection: ask a metadata shard for a JSON snapshot
	// of its namespace and lock service (table sizes, queue depths,
	// grants/revocations/expiries). Answered with an MTIOResp carrying the
	// JSON in Data, mirroring the I/O server AdminStats path.
	MTMetaStatsReq

	// Replica repair (server↔server, DESIGN.md §16): a member restarting
	// after a kill asks a group peer to enumerate its local objects
	// (MTReplicaListReq → MTReplicaListResp), compares per-chunk
	// checksums (MTReplicaSumReq → MTReplicaSumResp) across passes, and
	// pulls changed chunks with MTReplicaFetchReq, answered by an
	// ordinary MTIOResp carrying the piece in Data.
	MTReplicaListReq
	MTReplicaListResp
	MTReplicaFetchReq
	MTReplicaSumReq
	MTReplicaSumResp
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		MTCreateReq: "create", MTOpenReq: "open", MTRemoveReq: "remove",
		MTListReq: "list", MTMetaResp: "metaresp", MTListResp: "listresp",
		MTReadContigReq: "readcontig", MTWriteContigReq: "writecontig",
		MTReadListReq: "readlist", MTWriteListReq: "writelist",
		MTReadDtypeReq: "readdtype", MTWriteDtypeReq: "writedtype",
		MTLocalSizeReq: "localsize", MTTruncateReq: "truncate",
		MTRemoveObjReq: "removeobj", MTIOResp: "ioresp",
		MTReadStreamHdr: "readstreamhdr", MTWriteStreamHdr: "writestreamhdr",
		MTStreamChunk: "streamchunk", MTStreamAck: "streamack",
		MTLockAcquireReq: "lockacquire", MTLockReleaseReq: "lockrelease",
		MTLockGrant: "lockgrant", MTAdminReq: "admin",
		MTLeaseRevoke: "leaserevoke", MTMetaStatsReq: "metastats",
		MTReplicaListReq: "replicalist", MTReplicaListResp: "replicalistresp",
		MTReplicaFetchReq: "replicafetch", MTReplicaSumReq: "replicasum",
		MTReplicaSumResp: "replicasumresp",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Enc builds a message.
type Enc struct{ B []byte }

// NewEnc starts a message of the given type.
func NewEnc(t MsgType) *Enc { return &Enc{B: []byte{byte(t)}} }

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.B = append(e.B, v) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.B = binary.LittleEndian.AppendUint64(e.B, uint64(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) { e.Bytes([]byte(s)) }

// Dec parses a message.
type Dec struct {
	B   []byte
	Off int
	Err error
}

// NewDec wraps a received frame; Type consumes the first byte.
func NewDec(b []byte) *Dec { return &Dec{B: b} }

// Type reads the message type byte.
func (d *Dec) Type() MsgType {
	return MsgType(d.U8())
}

func (d *Dec) fail() {
	if d.Err == nil {
		d.Err = fmt.Errorf("wire: truncated message (%d bytes, offset %d)", len(d.B), d.Off)
	}
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	if d.Err != nil || d.Off+1 > len(d.B) {
		d.fail()
		return 0
	}
	v := d.B[d.Off]
	d.Off++
	return v
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	if d.Err != nil || d.Off+4 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B[d.Off:])
	d.Off += 4
	return v
}

// I64 reads an int64.
func (d *Dec) I64() int64 {
	if d.Err != nil || d.Off+8 > len(d.B) {
		d.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.B[d.Off:]))
	d.Off += 8
	return v
}

// Bytes reads a length-prefixed byte slice (aliasing the frame).
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.Off+n > len(d.B) {
		d.fail()
		return nil
	}
	v := d.B[d.Off : d.Off+n]
	d.Off += n
	return v
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Bytes()) }

// Done reports an error if decoding failed or bytes remain.
func (d *Dec) Done() error {
	if d.Err != nil {
		return d.Err
	}
	if d.Off != len(d.B) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.B)-d.Off)
	}
	return nil
}
