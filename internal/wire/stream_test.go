package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStreamHdrRoundTrips(t *testing.T) {
	rh := &ReadStreamHdr{Total: 1 << 30, SegBytes: 65536, Window: 4}
	roundTrip(t, EncodeReadStreamHdr(rh), rh)
	wh := &WriteStreamHdr{Total: 200000, SegBytes: 65536, Window: 4, Inner: []byte{1, 2, 3}}
	roundTrip(t, EncodeWriteStreamHdr(wh), wh)
}

func TestStreamChunkRoundTrip(t *testing.T) {
	c := &StreamChunk{Seq: 7, Data: []byte("segment bytes")}
	roundTrip(t, EncodeStreamChunk(c), c)
	term := &StreamChunk{Seq: 3, Err: "disk on fire", Data: []byte{}}
	roundTrip(t, EncodeStreamChunk(term), term)
}

func TestStreamAckRoundTrip(t *testing.T) {
	a := &StreamAck{Seq: 41}
	roundTrip(t, EncodeStreamAck(a), a)
	seq, err := DecodeStreamAck(EncodeStreamAck(a))
	if err != nil || seq != 41 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
}

func TestDecodeStreamChunkFast(t *testing.T) {
	enc := EncodeStreamChunk(&StreamChunk{Seq: 9, Data: []byte("abc")})
	var c StreamChunk
	if err := DecodeStreamChunk(enc, &c); err != nil {
		t.Fatal(err)
	}
	if c.Seq != 9 || c.Err != "" || string(c.Data) != "abc" {
		t.Fatalf("decoded %+v", c)
	}
	// Wrong type rejected.
	if err := DecodeStreamChunk(EncodeStreamAck(&StreamAck{Seq: 1}), &c); err == nil {
		t.Fatal("ack decoded as chunk")
	}
	if _, err := DecodeStreamAck(enc); err == nil {
		t.Fatal("chunk decoded as ack")
	}
	// Truncation rejected at every cut.
	for cut := 1; cut < len(enc); cut++ {
		if err := DecodeStreamChunk(enc[:cut], &c); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAppendStreamChunkReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	a := AppendStreamChunk(buf, 1, "", []byte("first"))
	if &a[0] != &buf[:1][0] {
		t.Fatal("append did not reuse the buffer")
	}
	b := AppendStreamChunk(a, 2, "", []byte("second"))
	var c StreamChunk
	if err := DecodeStreamChunk(b, &c); err != nil || c.Seq != 2 || string(c.Data) != "second" {
		t.Fatalf("reused-buffer frame decoded %+v err=%v", c, err)
	}
}

func TestAppendStreamChunkHdrFraming(t *testing.T) {
	// Header + caller-filled payload must equal the plain encoding.
	data := []byte("0123456789abcdef")
	frame := AppendStreamChunkHdr(nil, 5, len(data))
	h := len(frame)
	frame = append(frame, data...)
	if !bytes.Equal(frame, EncodeStreamChunk(&StreamChunk{Seq: 5, Data: data})) {
		t.Fatal("hdr+payload framing differs from EncodeStreamChunk")
	}
	if h != 13 { // type + seq + empty err + data length: the server's sizing assumption
		t.Fatalf("chunk header is %d bytes", h)
	}
}

func TestAppendIORespOKFraming(t *testing.T) {
	data := []byte("read payload")
	frame := AppendIORespOK(nil, 7, len(data))
	frame = append(frame, data...)
	want := &IOResp{Seq: 7, OK: true, Size: 0, Data: data}
	_, got, err := DecodeMsg(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	// Zero-length payload too.
	_, got, err = DecodeMsg(AppendIORespOK(nil, 0, 0))
	if err != nil || !got.(*IOResp).OK || len(got.(*IOResp).Data) != 0 {
		t.Fatalf("empty IOResp got %+v err=%v", got, err)
	}
}
