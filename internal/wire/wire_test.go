package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dtio/internal/datatype"
)

func roundTrip(t *testing.T, enc []byte, want any) {
	t.Helper()
	_, got, err := DecodeMsg(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
}

func sampleLayout() FileLayout {
	return FileLayout{Handle: 42, StripSize: 65536, NServers: 16, Base: 3, ServerIdx: 7}
}

func TestCreateRoundTrip(t *testing.T) {
	r := &CreateReq{Name: "checkpoint.dat", StripSize: 65536, NServers: 16}
	roundTrip(t, EncodeCreate(r), r)
}

func TestOpenRemoveRoundTrip(t *testing.T) {
	roundTrip(t, EncodeOpen(&OpenReq{Name: "f"}), &OpenReq{Name: "f"})
	roundTrip(t, EncodeRemove(&RemoveReq{Name: "g"}), &RemoveReq{Name: "g"})
}

func TestMetaRespRoundTrip(t *testing.T) {
	r := &MetaResp{OK: true, Handle: 9, StripSize: 1024, NServers: 4, Base: 1, Size: 1 << 40}
	roundTrip(t, EncodeMetaResp(r), r)
	r2 := &MetaResp{OK: false, Err: "no such file"}
	roundTrip(t, EncodeMetaResp(r2), r2)
}

func TestListRespRoundTrip(t *testing.T) {
	r := &ListResp{OK: true, Names: []string{"a", "bb", "ccc"}}
	roundTrip(t, EncodeListResp(r), r)
}

func TestContigRoundTrip(t *testing.T) {
	read := &ContigReq{Layout: sampleLayout(), Off: 100, N: 200}
	roundTrip(t, EncodeContig(read, false), read)
	write := &ContigReq{Layout: sampleLayout(), Off: 0, N: 3, Data: []byte{1, 2, 3}}
	roundTrip(t, EncodeContig(write, true), write)
}

func TestListIORoundTrip(t *testing.T) {
	r := &ListIOReq{
		Layout:  sampleLayout(),
		Regions: []datatype.Region{{Off: 0, Len: 10}, {Off: 100, Len: 5}},
		Data:    []byte("0123456789abcde"),
	}
	roundTrip(t, EncodeListIO(r, true), r)
}

func TestListIOCapEnforced(t *testing.T) {
	regions := make([]datatype.Region, MaxListRegions+1)
	for i := range regions {
		regions[i] = datatype.Region{Off: int64(i) * 10, Len: 4}
	}
	enc := EncodeListIO(&ListIOReq{Layout: sampleLayout(), Regions: regions}, false)
	if _, _, err := DecodeMsg(enc); err == nil {
		t.Fatal("over-cap list accepted")
	}
}

func TestDtypeRoundTrip(t *testing.T) {
	r := &DtypeReq{
		Layout: sampleLayout(),
		Loop:   []byte{1, 2, 3, 4},
		Count:  7, Disp: 1000, Pos: 64, NBytes: 4096,
		Data: []byte("xyz"),
	}
	roundTrip(t, EncodeDtype(r, true), r)
	read := &DtypeReq{Layout: sampleLayout(), Loop: []byte{9}, Count: 1, NBytes: 10}
	roundTrip(t, EncodeDtype(read, false), read)
}

func TestAdminRoundTrips(t *testing.T) {
	roundTrip(t, EncodeLocalSize(&LocalSizeReq{Layout: sampleLayout()}), &LocalSizeReq{Layout: sampleLayout()})
	roundTrip(t, EncodeTruncate(&TruncateReq{Layout: sampleLayout(), Size: 77}), &TruncateReq{Layout: sampleLayout(), Size: 77})
	roundTrip(t, EncodeRemoveObj(&RemoveObjReq{Layout: sampleLayout()}), &RemoveObjReq{Layout: sampleLayout()})
}

func TestIORespRoundTrip(t *testing.T) {
	r := &IOResp{OK: true, Size: 12, Data: []byte("payload")}
	roundTrip(t, EncodeIOResp(r), r)
	e := &IOResp{OK: false, Err: "boom", Data: []byte{}}
	roundTrip(t, EncodeIOResp(e), e)
}

func TestDecodeGarbageAndTruncation(t *testing.T) {
	if _, _, err := DecodeMsg(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, _, err := DecodeMsg([]byte{200}); err == nil {
		t.Fatal("unknown type decoded")
	}
	good := EncodeDtype(&DtypeReq{Layout: sampleLayout(), Loop: []byte{1, 2}, Count: 1, NBytes: 5, Data: []byte("abcde")}, true)
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeMsg(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage rejected too.
	if _, _, err := DecodeMsg(append(good, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPropertyContigFuzzRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &ContigReq{
			Layout: FileLayout{
				Handle:    r.Uint64(),
				StripSize: r.Int63(),
				NServers:  int32(r.Intn(1000)),
				Base:      int32(r.Intn(1000)),
				ServerIdx: int32(r.Intn(1000)),
			},
			Off: r.Int63(), N: r.Int63(),
		}
		if r.Intn(2) == 0 {
			req.Data = make([]byte, r.Intn(100))
			r.Read(req.Data)
			_, got, err := DecodeMsg(EncodeContig(req, true))
			return err == nil && reflect.DeepEqual(got, req)
		}
		_, got, err := DecodeMsg(EncodeContig(req, false))
		return err == nil && reflect.DeepEqual(got, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTagSpanRoundTrip(t *testing.T) {
	tag := ReqTag{Client: 7, Seq: 99, Span: 12345}
	read := &ContigReq{Tag: tag, Layout: sampleLayout(), Off: 0, N: 64}
	roundTrip(t, EncodeContig(read, false), read)
	d := &DtypeReq{Tag: tag, Layout: sampleLayout(), Loop: []byte{1}, Count: 1, NBytes: 8}
	roundTrip(t, EncodeDtype(d, false), d)
}

func TestLockRoundTrips(t *testing.T) {
	a := &LockAcquireReq{Handle: 42, Off: 1 << 30, N: 4 << 20, Shared: true, Span: 88}
	roundTrip(t, EncodeLockAcquire(a), a)
	a2 := &LockAcquireReq{Handle: 1, Off: 0, N: 1}
	roundTrip(t, EncodeLockAcquire(a2), a2)
	rel := &LockReleaseReq{Handle: 42, LockID: 7}
	roundTrip(t, EncodeLockRelease(rel), rel)
	g := &LockGrant{OK: true, LockID: 7, WaitedNs: 1234567}
	roundTrip(t, EncodeLockGrant(g), g)
	g2 := &LockGrant{OK: false, Err: "file removed while waiting for lock"}
	roundTrip(t, EncodeLockGrant(g2), g2)
}
