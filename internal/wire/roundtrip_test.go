package wire

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"dtio/internal/datatype"
)

// reEncode marshals a message decoded by DecodeMsg back to bytes. The
// round-trip invariant for every message M is
//
//	enc(dec(enc(M))) == enc(M)
//
// compared as bytes rather than reflect.DeepEqual, so nil-vs-empty
// slice normalization in the decoder (Dec.Bytes returns a non-nil empty
// slice) cannot mask a real field mismatch.
func reEncode(typ MsgType, v any) ([]byte, error) {
	switch r := v.(type) {
	case *CreateReq:
		return EncodeCreate(r), nil
	case *OpenReq:
		return EncodeOpen(r), nil
	case *RemoveReq:
		return EncodeRemove(r), nil
	case *MetaResp:
		return EncodeMetaResp(r), nil
	case *ListResp:
		return EncodeListResp(r), nil
	case *ContigReq:
		return EncodeContig(r, typ == MTWriteContigReq), nil
	case *ListIOReq:
		return EncodeListIO(r, typ == MTWriteListReq), nil
	case *DtypeReq:
		return EncodeDtype(r, typ == MTWriteDtypeReq), nil
	case *LocalSizeReq:
		return EncodeLocalSize(r), nil
	case *TruncateReq:
		return EncodeTruncate(r), nil
	case *RemoveObjReq:
		return EncodeRemoveObj(r), nil
	case *IOResp:
		return EncodeIOResp(r), nil
	case *ReadStreamHdr:
		return EncodeReadStreamHdr(r), nil
	case *WriteStreamHdr:
		return EncodeWriteStreamHdr(r), nil
	case *StreamChunk:
		return EncodeStreamChunk(r), nil
	case *StreamAck:
		return EncodeStreamAck(r), nil
	case *AdminReq:
		return EncodeAdmin(r), nil
	case *LockAcquireReq:
		return EncodeLockAcquire(r), nil
	case *LockReleaseReq:
		return EncodeLockRelease(r), nil
	case *LockGrant:
		return EncodeLockGrant(r), nil
	case *LeaseRevoke:
		return EncodeLeaseRevoke(r), nil
	case *ReplicaListResp:
		return EncodeReplicaListResp(r), nil
	case *ReplicaFetchReq:
		return EncodeReplicaFetch(r), nil
	case *ReplicaSumReq:
		return EncodeReplicaSum(r), nil
	case *ReplicaSumResp:
		return EncodeReplicaSumResp(r), nil
	case *struct{}:
		switch typ {
		case MTListReq:
			return EncodeListNames(), nil
		case MTMetaStatsReq:
			return EncodeMetaStats(), nil
		case MTReplicaListReq:
			return EncodeReplicaList(), nil
		}
	}
	return nil, fmt.Errorf("no encoder for %s (%T)", typ, v)
}

// reRoundTrip decodes a frame, re-encodes the result, and demands the
// identical bytes (and a stable second decode).
func reRoundTrip(t *testing.T, b []byte) {
	t.Helper()
	typ, v, err := DecodeMsg(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b2, err := reEncode(typ, v)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("%s: re-encoded bytes differ:\n enc: %x\nre-enc: %x", typ, b, b2)
	}
	typ2, _, err := DecodeMsg(b2)
	if err != nil || typ2 != typ {
		t.Fatalf("%s: second decode: type %s err %v", typ, typ2, err)
	}
}

// TestRoundTripEveryMessage covers each message type with representative
// and edge-case values (empty strings, nil and non-nil payloads, zero
// and negative numerics), then checks the table against the full
// MsgType enum so adding a message without a round-trip case fails.
func TestRoundTripEveryMessage(t *testing.T) {
	tag := ReqTag{Client: 7, Seq: 42, Span: 99}
	lay := FileLayout{Handle: 12, StripSize: 65536, NServers: 16, Base: 3, ServerIdx: 5, Replicas: 3, Member: 1}
	cases := []struct {
		typ MsgType
		b   []byte
	}{
		{MTCreateReq, EncodeCreate(&CreateReq{Name: "a/b.dat", StripSize: 1 << 16, NServers: 8})},
		{MTCreateReq, EncodeCreate(&CreateReq{})},
		{MTOpenReq, EncodeOpen(&OpenReq{Name: "x"})},
		{MTOpenReq, EncodeOpen(&OpenReq{})},
		{MTRemoveReq, EncodeRemove(&RemoveReq{Name: "gone"})},
		{MTListReq, EncodeListNames()},
		{MTMetaResp, EncodeMetaResp(&MetaResp{OK: true, Handle: 9, StripSize: 4096, NServers: 4, Base: 1, Size: 1 << 30})},
		{MTMetaResp, EncodeMetaResp(&MetaResp{Err: "no such file"})},
		{MTListResp, EncodeListResp(&ListResp{OK: true, Names: []string{"a", "", "c"}})},
		{MTListResp, EncodeListResp(&ListResp{OK: true})},
		{MTReadContigReq, EncodeContig(&ContigReq{Tag: tag, Layout: lay, Off: 128, N: 4096}, false)},
		{MTWriteContigReq, EncodeContig(&ContigReq{Tag: tag, Layout: lay, Off: 0, N: 3, Data: []byte{1, 2, 3}}, true)},
		{MTWriteContigReq, EncodeContig(&ContigReq{Tag: tag, Layout: lay}, true)},
		{MTReadListReq, EncodeListIO(&ListIOReq{Tag: tag, Layout: lay, Regions: []datatype.Region{{Off: 0, Len: 8}, {Off: 64, Len: 8}}}, false)},
		{MTWriteListReq, EncodeListIO(&ListIOReq{Tag: tag, Layout: lay, Regions: []datatype.Region{{Off: 4, Len: 2}}, Data: []byte{9, 9}}, true)},
		{MTReadDtypeReq, EncodeDtype(&DtypeReq{Tag: tag, Layout: lay, Loop: []byte{1, 2}, Count: 10, Disp: 4, Pos: 0, NBytes: 80, NoCoalesce: true}, false)},
		{MTWriteDtypeReq, EncodeDtype(&DtypeReq{Tag: tag, Layout: lay, Loop: []byte{3}, Count: 1, NBytes: 1, Data: []byte{5}}, true)},
		{MTLocalSizeReq, EncodeLocalSize(&LocalSizeReq{Tag: tag, Layout: lay})},
		{MTTruncateReq, EncodeTruncate(&TruncateReq{Tag: tag, Layout: lay, Size: 12345})},
		{MTRemoveObjReq, EncodeRemoveObj(&RemoveObjReq{Tag: tag, Layout: lay})},
		{MTIOResp, EncodeIOResp(&IOResp{Seq: 42, OK: true, Size: 7, Data: []byte("payload")})},
		{MTIOResp, EncodeIOResp(&IOResp{Err: "disk on fire"})},
		{MTReadStreamHdr, EncodeReadStreamHdr(&ReadStreamHdr{Seq: 1, Total: 1 << 20, SegBytes: 65536, Window: 4})},
		{MTWriteStreamHdr, EncodeWriteStreamHdr(&WriteStreamHdr{Total: 1 << 20, SegBytes: 65536, Window: 4, StartSeg: 2, Inner: []byte{7, 8}})},
		{MTStreamChunk, EncodeStreamChunk(&StreamChunk{Seq: 3, Data: []byte{0, 1}})},
		{MTStreamChunk, EncodeStreamChunk(&StreamChunk{Seq: 4, Err: "aborted"})},
		{MTStreamAck, EncodeStreamAck(&StreamAck{Seq: 17})},
		{MTLockAcquireReq, EncodeLockAcquire(&LockAcquireReq{Handle: 5, Off: 0, N: 100, Shared: true, Span: 8, Revocable: true})},
		{MTLockAcquireReq, EncodeLockAcquire(&LockAcquireReq{Handle: 6, Off: -1, N: 0})},
		{MTLockReleaseReq, EncodeLockRelease(&LockReleaseReq{Handle: 5, LockID: 77})},
		{MTLockGrant, EncodeLockGrant(&LockGrant{OK: true, LockID: 77, WaitedNs: 12000, LeaseNs: 30e9})},
		{MTLockGrant, EncodeLockGrant(&LockGrant{Err: "file removed"})},
		{MTAdminReq, EncodeAdmin(&AdminReq{Op: AdminDegrade, Dur: 5e8, Factor: 250})},
		{MTLeaseRevoke, EncodeLeaseRevoke(&LeaseRevoke{Handle: 5, LockID: 77, Off: 64, N: 128})},
		{MTMetaStatsReq, EncodeMetaStats()},
		{MTAdminReq, EncodeAdmin(&AdminReq{Op: AdminKill, Dur: 2e8})},
		{MTReplicaListReq, EncodeReplicaList()},
		{MTReplicaListResp, EncodeReplicaListResp(&ReplicaListResp{OK: true, Pending: 2, Handles: []uint64{3, 9}, Sizes: []int64{4096, 0}})},
		{MTReplicaListResp, EncodeReplicaListResp(&ReplicaListResp{Err: "repairing"})},
		{MTReplicaFetchReq, EncodeReplicaFetch(&ReplicaFetchReq{Handle: 9, Off: 1 << 20, N: 65536})},
		{MTReplicaSumReq, EncodeReplicaSum(&ReplicaSumReq{Handle: 9})},
		{MTReplicaSumResp, EncodeReplicaSumResp(&ReplicaSumResp{OK: true, Sums: []uint64{0, 1 << 63, 0xdeadbeef}})},
		{MTReplicaSumResp, EncodeReplicaSumResp(&ReplicaSumResp{Err: "repairing"})},
	}
	covered := map[MsgType]bool{}
	for _, c := range cases {
		reRoundTrip(t, c.b)
		covered[c.typ] = true
	}
	for typ := MTCreateReq; typ <= MTReplicaSumResp; typ++ {
		if !covered[typ] {
			t.Errorf("message type %s has no round-trip case", typ)
		}
	}
}

// TestRoundTripQuick drives every parameterized message with randomized
// field values via testing/quick.
func TestRoundTripQuick(t *testing.T) {
	check := func(name string, f any) {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	rt := func(b []byte) bool {
		typ, v, err := DecodeMsg(b)
		if err != nil {
			return false
		}
		b2, err := reEncode(typ, v)
		return err == nil && bytes.Equal(b, b2)
	}
	check("create", func(name string, strip int64, ns int32) bool {
		return rt(EncodeCreate(&CreateReq{Name: name, StripSize: strip, NServers: ns}))
	})
	check("open", func(name string) bool { return rt(EncodeOpen(&OpenReq{Name: name})) })
	check("remove", func(name string) bool { return rt(EncodeRemove(&RemoveReq{Name: name})) })
	check("metaresp", func(ok bool, errs string, h uint64, strip int64, ns, base int32, size int64) bool {
		return rt(EncodeMetaResp(&MetaResp{OK: ok, Err: errs, Handle: h, StripSize: strip, NServers: ns, Base: base, Size: size}))
	})
	check("listresp", func(ok bool, errs string, names []string) bool {
		return rt(EncodeListResp(&ListResp{OK: ok, Err: errs, Names: names}))
	})
	check("contig", func(tag ReqTag, lay FileLayout, off, n int64, data []byte, write bool) bool {
		r := &ContigReq{Tag: tag, Layout: lay, Off: off, N: n}
		if write {
			r.Data = data
		}
		return rt(EncodeContig(r, write))
	})
	check("listio", func(tag ReqTag, lay FileLayout, regions []datatype.Region, data []byte, write bool) bool {
		r := &ListIOReq{Tag: tag, Layout: lay, Regions: regions}
		if write {
			r.Data = data
		}
		return rt(EncodeListIO(r, write))
	})
	check("dtype", func(tag ReqTag, lay FileLayout, loop []byte, count, disp, pos, nb int64, noco bool, data []byte, write bool) bool {
		r := &DtypeReq{Tag: tag, Layout: lay, Loop: loop, Count: count, Disp: disp, Pos: pos, NBytes: nb, NoCoalesce: noco}
		if write {
			r.Data = data
		}
		return rt(EncodeDtype(r, write))
	})
	check("localsize", func(tag ReqTag, lay FileLayout) bool {
		return rt(EncodeLocalSize(&LocalSizeReq{Tag: tag, Layout: lay}))
	})
	check("truncate", func(tag ReqTag, lay FileLayout, size int64) bool {
		return rt(EncodeTruncate(&TruncateReq{Tag: tag, Layout: lay, Size: size}))
	})
	check("removeobj", func(tag ReqTag, lay FileLayout) bool {
		return rt(EncodeRemoveObj(&RemoveObjReq{Tag: tag, Layout: lay}))
	})
	check("ioresp", func(seq uint64, ok bool, errs string, size int64, data []byte) bool {
		return rt(EncodeIOResp(&IOResp{Seq: seq, OK: ok, Err: errs, Size: size, Data: data}))
	})
	check("readstreamhdr", func(seq uint64, total int64, seg, win int32) bool {
		return rt(EncodeReadStreamHdr(&ReadStreamHdr{Seq: seq, Total: total, SegBytes: seg, Window: win}))
	})
	check("writestreamhdr", func(total int64, seg, win int32, start int64, inner []byte) bool {
		return rt(EncodeWriteStreamHdr(&WriteStreamHdr{Total: total, SegBytes: seg, Window: win, StartSeg: start, Inner: inner}))
	})
	check("streamchunk", func(seq uint32, errs string, data []byte) bool {
		return rt(EncodeStreamChunk(&StreamChunk{Seq: seq, Err: errs, Data: data}))
	})
	check("streamack", func(seq uint32) bool { return rt(EncodeStreamAck(&StreamAck{Seq: seq})) })
	check("admin", func(op uint8, dur, factor int64) bool {
		return rt(EncodeAdmin(&AdminReq{Op: AdminOp(op), Dur: dur, Factor: factor}))
	})
	check("lockacquire", func(h uint64, off, n int64, shared bool, span uint64, rev bool) bool {
		return rt(EncodeLockAcquire(&LockAcquireReq{Handle: h, Off: off, N: n, Shared: shared, Span: span, Revocable: rev}))
	})
	check("lockrelease", func(h, id uint64) bool {
		return rt(EncodeLockRelease(&LockReleaseReq{Handle: h, LockID: id}))
	})
	check("lockgrant", func(ok bool, errs string, id uint64, waited, lease int64) bool {
		return rt(EncodeLockGrant(&LockGrant{OK: ok, Err: errs, LockID: id, WaitedNs: waited, LeaseNs: lease}))
	})
	check("leaserevoke", func(h, id uint64, off, n int64) bool {
		return rt(EncodeLeaseRevoke(&LeaseRevoke{Handle: h, LockID: id, Off: off, N: n}))
	})
	check("replicalistresp", func(ok bool, errs string, pending int64, handles []uint64, sizes []int64) bool {
		return rt(EncodeReplicaListResp(&ReplicaListResp{OK: ok, Err: errs, Pending: pending, Handles: handles, Sizes: sizes}))
	})
	check("replicafetch", func(h uint64, off, n int64) bool {
		return rt(EncodeReplicaFetch(&ReplicaFetchReq{Handle: h, Off: off, N: n}))
	})
	check("replicasum", func(h uint64) bool {
		return rt(EncodeReplicaSum(&ReplicaSumReq{Handle: h}))
	})
	check("replicasumresp", func(ok bool, errs string, sums []uint64) bool {
		return rt(EncodeReplicaSumResp(&ReplicaSumResp{OK: ok, Err: errs, Sums: sums}))
	})
}
