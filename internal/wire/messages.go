package wire

import (
	"fmt"

	"dtio/internal/datatype"
)

// FileLayout carries the striping parameters of a file inside every I/O
// request, so I/O servers stay stateless about metadata (as in PVFS,
// where clients learn the distribution at open time and servers derive
// local regions per request).
type FileLayout struct {
	Handle    uint64
	StripSize int64
	NServers  int32 // replica groups when Replicas > 1 (DESIGN.md §16)
	Base      int32
	ServerIdx int32 // index of the addressed group in the file's list
	// Replicas is the replica-group size k (0 and 1 both mean
	// unreplicated); Member addresses one of the group's k physical
	// servers. The striping math sees only ServerIdx; (ServerIdx,
	// Member) names physical server ServerIdx*Replicas+Member.
	Replicas int32
	Member   int32
}

func (l FileLayout) encode(e *Enc) {
	e.I64(int64(l.Handle))
	e.I64(l.StripSize)
	e.U32(uint32(l.NServers))
	e.U32(uint32(l.Base))
	e.U32(uint32(l.ServerIdx))
	e.U32(uint32(l.Replicas))
	e.U32(uint32(l.Member))
}

func decodeLayout(d *Dec) FileLayout {
	return FileLayout{
		Handle:    uint64(d.I64()),
		StripSize: d.I64(),
		NServers:  int32(d.U32()),
		Base:      int32(d.U32()),
		ServerIdx: int32(d.U32()),
		Replicas:  int32(d.U32()),
		Member:    int32(d.U32()),
	}
}

// CreateReq asks the metadata server to create a file.
type CreateReq struct {
	Name      string
	StripSize int64
	NServers  int32
}

// OpenReq asks the metadata server to look up a file.
type OpenReq struct{ Name string }

// RemoveReq asks the metadata server to delete a file's metadata.
type RemoveReq struct{ Name string }

// MetaResp answers create/open/remove.
type MetaResp struct {
	OK        bool
	Err       string
	Handle    uint64
	StripSize int64
	NServers  int32
	Base      int32
	Size      int64
}

// ListResp answers MTListReq with the namespace contents.
type ListResp struct {
	OK    bool
	Err   string
	Names []string
}

// ReqTag identifies one I/O request for retry matching and at-most-once
// replay suppression: Client is a process-unique client id, Seq the
// client's request counter. A retry resends the identical frame — same
// tag — so the server can recognize a replay of a write it already
// applied, and the client can discard stale or duplicated responses by
// comparing the echoed Seq. Client 0 means untagged (no dedup).
//
// Span piggybacks trace context: the client operation's span ID, so
// server-side spans (request handling, disk batches, stream segments)
// parent back to the originating client op. 0 means untraced; replay
// matching ignores it (retries reuse the same Client+Seq regardless).
type ReqTag struct {
	Client uint64
	Seq    uint64
	Span   uint64
}

func (t ReqTag) encode(e *Enc) {
	e.I64(int64(t.Client))
	e.I64(int64(t.Seq))
	e.I64(int64(t.Span))
}

func decodeTag(d *Dec) ReqTag {
	return ReqTag{Client: uint64(d.I64()), Seq: uint64(d.I64()), Span: uint64(d.I64())}
}

// ContigReq is a contiguous read or write of logical range [Off, Off+N).
// For writes, Data carries exactly the addressed server's bytes of the
// range, in logical order.
type ContigReq struct {
	Tag    ReqTag
	Layout FileLayout
	Off    int64
	N      int64
	Data   []byte // writes only
}

// ListIOReq is a list read or write: logical file regions, at most
// MaxListRegions per request. For writes, Data carries the addressed
// server's bytes in list order.
type ListIOReq struct {
	Tag     ReqTag
	Layout  FileLayout
	Regions []datatype.Region
	Data    []byte // writes only
}

// MaxListRegions is the protocol bound on regions per list request. The
// operational cap the paper describes ("in our implementation by a factor
// of 64") is mpiio.Hints.ListCap, which defaults to 64; the protocol
// limit exists so ablations can sweep the cap.
const MaxListRegions = 4096

// DtypeReq is a datatype read or write: the file access is described by
// a serialized dataloop tiled Count times at displacement Disp, starting
// at stream position Pos, covering NBytes of stream. For writes, Data
// carries the addressed server's bytes in stream order.
type DtypeReq struct {
	Tag    ReqTag
	Layout FileLayout
	Loop   []byte // encoded dataloop
	Count  int64  // tiles of the loop in the view
	Disp   int64  // byte displacement of tile 0
	Pos    int64  // starting stream offset
	NBytes int64  // stream bytes covered
	// NoCoalesce disables server-side adjacent-region coalescing (the
	// ablation of paper §3.2's optimization).
	NoCoalesce bool
	Data       []byte // writes only
}

// LocalSizeReq asks an I/O server for its local object size.
type LocalSizeReq struct {
	Tag    ReqTag
	Layout FileLayout
}

// TruncateReq sets the local object size implied by logical Size.
type TruncateReq struct {
	Tag    ReqTag
	Layout FileLayout
	Size   int64 // logical file size
}

// RemoveObjReq deletes the local object.
type RemoveObjReq struct {
	Tag    ReqTag
	Layout FileLayout
}

// LockAcquireReq asks the metadata server for a byte-range lock on
// [Off, Off+N) of the file named by Handle. Shared requests coexist
// with other shared holders; exclusive requests conflict with any
// overlap. The reply is an MTLockGrant — immediate if the range is
// free, deferred until it frees up otherwise.
type LockAcquireReq struct {
	Handle uint64
	Off    int64
	N      int64
	Shared bool
	Span   uint64 // requesting op's trace span (0 = untraced)
	// Revocable marks the lock as a cache lease: when a later request
	// conflicts with it, the server sends the holder an MTLeaseRevoke
	// instead of making the requester wait out the holder's lease. The
	// holder is expected to flush and release promptly; the release is
	// the revoke's acknowledgement.
	Revocable bool
}

// LockReleaseReq releases a granted lock; answered with an MTMetaResp.
type LockReleaseReq struct {
	Handle uint64
	LockID uint64
}

// LockGrant answers (possibly much later) an MTLockAcquireReq.
type LockGrant struct {
	OK       bool
	Err      string
	LockID   uint64
	WaitedNs int64 // time spent queued at the server, for client stats
	// LeaseNs is the server's lock lease in nanoseconds (0 = no lease).
	// Cache holders use it to flush dirty data before the server could
	// reclaim the lock out from under them.
	LeaseNs int64
}

// LeaseRevoke tells a client that a revocable lock it holds now blocks
// another request. The client must flush any dirty cached data under
// the lock and release it; the LockReleaseReq doubles as the ack. No
// direct reply is expected.
type LeaseRevoke struct {
	Handle uint64
	LockID uint64
	Off    int64
	N      int64
}

// AdminOp selects a fault-administration action on an I/O server.
type AdminOp uint8

// Admin operations.
const (
	// AdminStall makes the server hold every request it dequeues for Dur
	// before processing it (simulating an unresponsive-but-alive server).
	AdminStall AdminOp = iota + 1
	// AdminCrash drops the listener and every open connection, then
	// restarts the server after Dur. In-memory objects survive (the
	// local objects stand in for the server's disk).
	AdminCrash
	// AdminDegrade multiplies disk service time by Factor/100 (a slow or
	// failing disk) until reset with Factor == 100.
	AdminDegrade
	// AdminStats asks the server for a JSON introspection snapshot
	// (iostats counters, latency quantiles, cache stats), returned in the
	// IOResp's Data.
	AdminStats
	// AdminKill crashes the server like AdminCrash but marks its local
	// objects lost: the restart comes back empty (a dead machine replaced
	// by a blank spare) and, when the server has replica peers, triggers
	// background re-replication from the surviving group members.
	AdminKill
	// AdminFlightRec asks the server for its flight-recorder dump (the
	// last-N per-request completion events, DESIGN.md §17), returned as
	// JSON in the IOResp's Data.
	AdminFlightRec
)

// AdminReq drives fault administration; answered with an MTIOResp. The
// response is sent before a crash takes effect.
type AdminReq struct {
	Op     AdminOp
	Dur    int64 // nanoseconds (stall length, crash downtime)
	Factor int64 // AdminDegrade: disk slowdown in percent (100 = normal)
}

// EncodeAdmin marshals an AdminReq.
func EncodeAdmin(r *AdminReq) []byte {
	e := NewEnc(MTAdminReq)
	e.U8(uint8(r.Op))
	e.I64(r.Dur)
	e.I64(r.Factor)
	return e.B
}

// ReplicaListResp answers MTReplicaListReq with the serving member's
// local objects: parallel handle/size slices in handle order. The
// requester intersects this with what it can fetch; a peer that is
// itself repairing refuses with OK=false so repair never copies from
// an incomplete member. Pending counts the write requests the peer is
// servicing at the snapshot instant: a rebuilding member keeps
// sweeping until a pass sees Pending == 0 and unchanged checksums, so
// a write racing the copy cannot leave the members diverged.
type ReplicaListResp struct {
	OK      bool
	Err     string
	Pending int64
	Handles []uint64
	Sizes   []int64
}

// ReplicaSumReq asks a group peer for one local object's per-chunk
// checksums (FNV-1a over repair-chunk-sized pieces of its physical
// byte space). Repair passes diff these against the previous pass and
// re-fetch only the chunks that changed.
type ReplicaSumReq struct {
	Handle uint64
}

// ReplicaSumResp carries the chunk checksums in chunk order (the last
// chunk may cover a short tail).
type ReplicaSumResp struct {
	OK   bool
	Err  string
	Sums []uint64
}

// ReplicaFetchReq pulls [Off, Off+N) of one local object's *physical*
// byte space from a group peer during repair; answered with an
// MTIOResp whose Data holds the bytes (short when the object ends
// inside the range). Repair traffic is untagged: fetches are
// idempotent reads and never enter the at-most-once dedup ring.
type ReplicaFetchReq struct {
	Handle uint64
	Off    int64
	N      int64
}

// EncodeReplicaList marshals a replica object-listing request.
func EncodeReplicaList() []byte { return NewEnc(MTReplicaListReq).B }

// EncodeReplicaListResp marshals a ReplicaListResp.
func EncodeReplicaListResp(r *ReplicaListResp) []byte {
	e := NewEnc(MTReplicaListResp)
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.I64(r.Pending)
	e.U32(uint32(len(r.Handles)))
	for _, h := range r.Handles {
		e.I64(int64(h))
	}
	e.U32(uint32(len(r.Sizes)))
	for _, s := range r.Sizes {
		e.I64(s)
	}
	return e.B
}

// EncodeReplicaFetch marshals a ReplicaFetchReq.
func EncodeReplicaFetch(r *ReplicaFetchReq) []byte {
	e := NewEnc(MTReplicaFetchReq)
	e.I64(int64(r.Handle))
	e.I64(r.Off)
	e.I64(r.N)
	return e.B
}

// EncodeReplicaSum marshals a ReplicaSumReq.
func EncodeReplicaSum(r *ReplicaSumReq) []byte {
	e := NewEnc(MTReplicaSumReq)
	e.I64(int64(r.Handle))
	return e.B
}

// EncodeReplicaSumResp marshals a ReplicaSumResp.
func EncodeReplicaSumResp(r *ReplicaSumResp) []byte {
	e := NewEnc(MTReplicaSumResp)
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.U32(uint32(len(r.Sums)))
	for _, s := range r.Sums {
		e.I64(int64(s))
	}
	return e.B
}

// IOResp answers every I/O server request. Seq echoes the request
// tag's sequence number so retrying clients can discard stale frames.
type IOResp struct {
	Seq  uint64
	OK   bool
	Err  string
	Size int64  // LocalSizeReq answer
	Data []byte // read answers: the server's bytes in request order
}

// EncodeCreate marshals a CreateReq.
func EncodeCreate(r *CreateReq) []byte {
	e := NewEnc(MTCreateReq)
	e.Str(r.Name)
	e.I64(r.StripSize)
	e.U32(uint32(r.NServers))
	return e.B
}

// EncodeOpen marshals an OpenReq.
func EncodeOpen(r *OpenReq) []byte {
	e := NewEnc(MTOpenReq)
	e.Str(r.Name)
	return e.B
}

// EncodeRemove marshals a RemoveReq.
func EncodeRemove(r *RemoveReq) []byte {
	e := NewEnc(MTRemoveReq)
	e.Str(r.Name)
	return e.B
}

// EncodeListNames marshals a namespace listing request.
func EncodeListNames() []byte { return NewEnc(MTListReq).B }

// EncodeMetaResp marshals a MetaResp.
func EncodeMetaResp(r *MetaResp) []byte {
	e := NewEnc(MTMetaResp)
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.I64(int64(r.Handle))
	e.I64(r.StripSize)
	e.U32(uint32(r.NServers))
	e.U32(uint32(r.Base))
	e.I64(r.Size)
	return e.B
}

// EncodeListResp marshals a ListResp.
func EncodeListResp(r *ListResp) []byte {
	e := NewEnc(MTListResp)
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.U32(uint32(len(r.Names)))
	for _, n := range r.Names {
		e.Str(n)
	}
	return e.B
}

// EncodeContig marshals a ContigReq as a read (MTReadContigReq) or write.
func EncodeContig(r *ContigReq, write bool) []byte {
	t := MTReadContigReq
	if write {
		t = MTWriteContigReq
	}
	e := NewEnc(t)
	r.Tag.encode(e)
	r.Layout.encode(e)
	e.I64(r.Off)
	e.I64(r.N)
	if write {
		e.Bytes(r.Data)
	}
	return e.B
}

// EncodeListIO marshals a ListIOReq.
func EncodeListIO(r *ListIOReq, write bool) []byte {
	t := MTReadListReq
	if write {
		t = MTWriteListReq
	}
	e := NewEnc(t)
	r.Tag.encode(e)
	r.Layout.encode(e)
	e.U32(uint32(len(r.Regions)))
	for _, reg := range r.Regions {
		e.I64(reg.Off)
		e.I64(reg.Len)
	}
	if write {
		e.Bytes(r.Data)
	}
	return e.B
}

// EncodeDtype marshals a DtypeReq.
func EncodeDtype(r *DtypeReq, write bool) []byte {
	t := MTReadDtypeReq
	if write {
		t = MTWriteDtypeReq
	}
	e := NewEnc(t)
	r.Tag.encode(e)
	r.Layout.encode(e)
	e.Bytes(r.Loop)
	e.I64(r.Count)
	e.I64(r.Disp)
	e.I64(r.Pos)
	e.I64(r.NBytes)
	e.U8(b2u(r.NoCoalesce))
	if write {
		e.Bytes(r.Data)
	}
	return e.B
}

// EncodeLocalSize marshals a LocalSizeReq.
func EncodeLocalSize(r *LocalSizeReq) []byte {
	e := NewEnc(MTLocalSizeReq)
	r.Tag.encode(e)
	r.Layout.encode(e)
	return e.B
}

// EncodeTruncate marshals a TruncateReq.
func EncodeTruncate(r *TruncateReq) []byte {
	e := NewEnc(MTTruncateReq)
	r.Tag.encode(e)
	r.Layout.encode(e)
	e.I64(r.Size)
	return e.B
}

// EncodeRemoveObj marshals a RemoveObjReq.
func EncodeRemoveObj(r *RemoveObjReq) []byte {
	e := NewEnc(MTRemoveObjReq)
	r.Tag.encode(e)
	r.Layout.encode(e)
	return e.B
}

// EncodeLockAcquire marshals a LockAcquireReq.
func EncodeLockAcquire(r *LockAcquireReq) []byte {
	e := NewEnc(MTLockAcquireReq)
	e.I64(int64(r.Handle))
	e.I64(r.Off)
	e.I64(r.N)
	e.U8(b2u(r.Shared))
	e.I64(int64(r.Span))
	e.U8(b2u(r.Revocable))
	return e.B
}

// EncodeLockRelease marshals a LockReleaseReq.
func EncodeLockRelease(r *LockReleaseReq) []byte {
	e := NewEnc(MTLockReleaseReq)
	e.I64(int64(r.Handle))
	e.I64(int64(r.LockID))
	return e.B
}

// EncodeLockGrant marshals a LockGrant.
func EncodeLockGrant(r *LockGrant) []byte {
	e := NewEnc(MTLockGrant)
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.I64(int64(r.LockID))
	e.I64(r.WaitedNs)
	e.I64(r.LeaseNs)
	return e.B
}

// EncodeLeaseRevoke marshals a LeaseRevoke.
func EncodeLeaseRevoke(r *LeaseRevoke) []byte {
	e := NewEnc(MTLeaseRevoke)
	e.I64(int64(r.Handle))
	e.I64(int64(r.LockID))
	e.I64(r.Off)
	e.I64(r.N)
	return e.B
}

// EncodeMetaStats marshals a meta-server introspection request.
func EncodeMetaStats() []byte { return NewEnc(MTMetaStatsReq).B }

// EncodeIOResp marshals an IOResp.
func EncodeIOResp(r *IOResp) []byte {
	e := NewEnc(MTIOResp)
	e.I64(int64(r.Seq))
	e.U8(b2u(r.OK))
	e.Str(r.Err)
	e.I64(r.Size)
	e.Bytes(r.Data)
	return e.B
}

// RespIsErr reports whether an encoded frame is an IOResp carrying an
// error, by peeking the fixed prefix (type byte, 8-byte Seq, OK byte)
// without decoding. Used by the flight recorder to flag failed
// requests without paying a decode on every completion.
func RespIsErr(b []byte) bool {
	return len(b) >= 10 && MsgType(b[0]) == MTIOResp && b[9] == 0
}

// DecodeMsg parses any message, returning its type and the decoded
// struct (a pointer to one of the *Req/*Resp types above).
func DecodeMsg(b []byte) (MsgType, any, error) {
	d := NewDec(b)
	t := d.Type()
	var v any
	switch t {
	case MTCreateReq:
		r := &CreateReq{Name: d.Str(), StripSize: d.I64(), NServers: int32(d.U32())}
		v = r
	case MTOpenReq:
		v = &OpenReq{Name: d.Str()}
	case MTRemoveReq:
		v = &RemoveReq{Name: d.Str()}
	case MTListReq:
		v = &struct{}{}
	case MTMetaResp:
		r := &MetaResp{}
		r.OK = d.U8() != 0
		r.Err = d.Str()
		r.Handle = uint64(d.I64())
		r.StripSize = d.I64()
		r.NServers = int32(d.U32())
		r.Base = int32(d.U32())
		r.Size = d.I64()
		v = r
	case MTListResp:
		r := &ListResp{}
		r.OK = d.U8() != 0
		r.Err = d.Str()
		n := int(d.U32())
		if n > len(b) { // names are at least 4 bytes each on the wire
			d.fail()
			break
		}
		r.Names = make([]string, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			r.Names = append(r.Names, d.Str())
		}
		v = r
	case MTReadContigReq, MTWriteContigReq:
		r := &ContigReq{Tag: decodeTag(d), Layout: decodeLayout(d), Off: d.I64(), N: d.I64()}
		if t == MTWriteContigReq {
			r.Data = d.Bytes()
		}
		v = r
	case MTReadListReq, MTWriteListReq:
		r := &ListIOReq{Tag: decodeTag(d), Layout: decodeLayout(d)}
		n := int(d.U32())
		if n > MaxListRegions {
			return t, nil, fmt.Errorf("wire: %d regions exceeds list cap %d", n, MaxListRegions)
		}
		r.Regions = make([]datatype.Region, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			r.Regions = append(r.Regions, datatype.Region{Off: d.I64(), Len: d.I64()})
		}
		if t == MTWriteListReq {
			r.Data = d.Bytes()
		}
		v = r
	case MTReadDtypeReq, MTWriteDtypeReq:
		r := &DtypeReq{Tag: decodeTag(d), Layout: decodeLayout(d)}
		r.Loop = d.Bytes()
		r.Count = d.I64()
		r.Disp = d.I64()
		r.Pos = d.I64()
		r.NBytes = d.I64()
		r.NoCoalesce = d.U8() != 0
		if t == MTWriteDtypeReq {
			r.Data = d.Bytes()
		}
		v = r
	case MTLocalSizeReq:
		v = &LocalSizeReq{Tag: decodeTag(d), Layout: decodeLayout(d)}
	case MTTruncateReq:
		v = &TruncateReq{Tag: decodeTag(d), Layout: decodeLayout(d), Size: d.I64()}
	case MTRemoveObjReq:
		v = &RemoveObjReq{Tag: decodeTag(d), Layout: decodeLayout(d)}
	case MTIOResp:
		r := &IOResp{}
		r.Seq = uint64(d.I64())
		r.OK = d.U8() != 0
		r.Err = d.Str()
		r.Size = d.I64()
		r.Data = d.Bytes()
		v = r
	case MTReadStreamHdr:
		v = &ReadStreamHdr{Seq: uint64(d.I64()), Total: d.I64(), SegBytes: int32(d.U32()), Window: int32(d.U32())}
	case MTWriteStreamHdr:
		r := &WriteStreamHdr{Total: d.I64(), SegBytes: int32(d.U32()), Window: int32(d.U32())}
		r.StartSeg = d.I64()
		r.Inner = d.Bytes()
		v = r
	case MTStreamChunk:
		v = &StreamChunk{Seq: d.U32(), Err: d.Str(), Data: d.Bytes()}
	case MTStreamAck:
		v = &StreamAck{Seq: d.U32()}
	case MTAdminReq:
		v = &AdminReq{Op: AdminOp(d.U8()), Dur: d.I64(), Factor: d.I64()}
	case MTLockAcquireReq:
		v = &LockAcquireReq{Handle: uint64(d.I64()), Off: d.I64(), N: d.I64(), Shared: d.U8() != 0, Span: uint64(d.I64()), Revocable: d.U8() != 0}
	case MTLockReleaseReq:
		v = &LockReleaseReq{Handle: uint64(d.I64()), LockID: uint64(d.I64())}
	case MTLockGrant:
		v = &LockGrant{OK: d.U8() != 0, Err: d.Str(), LockID: uint64(d.I64()), WaitedNs: d.I64(), LeaseNs: d.I64()}
	case MTLeaseRevoke:
		v = &LeaseRevoke{Handle: uint64(d.I64()), LockID: uint64(d.I64()), Off: d.I64(), N: d.I64()}
	case MTMetaStatsReq:
		v = &struct{}{}
	case MTReplicaListReq:
		v = &struct{}{}
	case MTReplicaListResp:
		r := &ReplicaListResp{}
		r.OK = d.U8() != 0
		r.Err = d.Str()
		r.Pending = d.I64()
		nh := int(d.U32())
		if nh > len(b) { // handles are 8 bytes each on the wire
			d.fail()
			break
		}
		r.Handles = make([]uint64, 0, nh)
		for i := 0; i < nh && d.Err == nil; i++ {
			r.Handles = append(r.Handles, uint64(d.I64()))
		}
		ns := int(d.U32())
		if ns > len(b) {
			d.fail()
			break
		}
		r.Sizes = make([]int64, 0, ns)
		for i := 0; i < ns && d.Err == nil; i++ {
			r.Sizes = append(r.Sizes, d.I64())
		}
		v = r
	case MTReplicaFetchReq:
		v = &ReplicaFetchReq{Handle: uint64(d.I64()), Off: d.I64(), N: d.I64()}
	case MTReplicaSumReq:
		v = &ReplicaSumReq{Handle: uint64(d.I64())}
	case MTReplicaSumResp:
		r := &ReplicaSumResp{}
		r.OK = d.U8() != 0
		r.Err = d.Str()
		ns := int(d.U32())
		if ns > len(b) { // sums are 8 bytes each on the wire
			d.fail()
			break
		}
		r.Sums = make([]uint64, 0, ns)
		for i := 0; i < ns && d.Err == nil; i++ {
			r.Sums = append(r.Sums, uint64(d.I64()))
		}
		v = r
	default:
		return t, nil, fmt.Errorf("wire: unknown message type %d", uint8(t))
	}
	if err := d.Done(); err != nil {
		return t, nil, err
	}
	return t, v, nil
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
