// Package striping implements PVFS-style round-robin file striping math:
// the mapping between a file's logical byte space and the physical byte
// spaces of the I/O servers that hold it.
//
// A file is split into fixed-size strips dealt round-robin across the
// servers starting at Base: logical strip k lives on server
// (Base + k) mod N, at physical strip index k / N.
package striping

import "fmt"

// Layout describes a file's striping.
type Layout struct {
	StripSize int64 // bytes per strip
	NServers  int   // servers holding the file
	Base      int   // server index of strip 0
}

// Validate reports a descriptive error for nonsensical layouts.
func (l Layout) Validate() error {
	if l.StripSize <= 0 {
		return fmt.Errorf("striping: strip size %d", l.StripSize)
	}
	if l.NServers <= 0 {
		return fmt.Errorf("striping: %d servers", l.NServers)
	}
	if l.Base < 0 || l.Base >= l.NServers {
		return fmt.Errorf("striping: base %d out of range [0,%d)", l.Base, l.NServers)
	}
	return nil
}

// StripeSize reports the bytes of one full stripe (a row across all
// servers).
func (l Layout) StripeSize() int64 { return l.StripSize * int64(l.NServers) }

// Server reports which server holds logical byte offset off.
func (l Layout) Server(off int64) int {
	strip := off / l.StripSize
	return (l.Base + int(strip%int64(l.NServers))) % l.NServers
}

// Physical converts a logical offset to the byte offset within its
// server's local object.
func (l Layout) Physical(off int64) int64 {
	strip := off / l.StripSize
	return (strip/int64(l.NServers))*l.StripSize + off%l.StripSize
}

// Logical converts (server, physical offset) back to the logical offset.
func (l Layout) Logical(server int, phys int64) int64 {
	localStrip := phys / l.StripSize
	rank := (server - l.Base + l.NServers) % l.NServers
	strip := localStrip*int64(l.NServers) + int64(rank)
	return strip*l.StripSize + phys%l.StripSize
}

// Piece is a logical region mapped onto one server.
type Piece struct {
	Server  int
	Phys    int64 // physical offset on that server
	Logical int64 // logical offset of the piece start
	Len     int64
}

// Split cuts the logical region [off, off+n) at strip boundaries and
// reports each resulting piece in logical order. fn returns false to stop
// early; Split reports whether iteration completed.
func (l Layout) Split(off, n int64, fn func(p Piece) bool) bool {
	for n > 0 {
		inStrip := l.StripSize - off%l.StripSize
		take := n
		if take > inStrip {
			take = inStrip
		}
		p := Piece{
			Server:  l.Server(off),
			Phys:    l.Physical(off),
			Logical: off,
			Len:     take,
		}
		if !fn(p) {
			return false
		}
		off += take
		n -= take
	}
	return true
}

// ServerPieces restricts Split to pieces on one server, reported as
// (physical offset, logical offset, length).
func (l Layout) ServerPieces(server int, off, n int64, fn func(phys, logical, ln int64) bool) bool {
	return l.Split(off, n, func(p Piece) bool {
		if p.Server != server {
			return true
		}
		return fn(p.Phys, p.Logical, p.Len)
	})
}

// LocalLen reports how many bytes of the logical prefix [0, size) live on
// server (the local object length implied by a logical file size).
func (l Layout) LocalLen(server int, size int64) int64 {
	if size <= 0 {
		return 0
	}
	stripe := l.StripeSize()
	full := size / stripe
	rem := size % stripe
	rank := int64((server - l.Base + l.NServers) % l.NServers)
	n := full * l.StripSize
	tail := rem - rank*l.StripSize
	if tail > l.StripSize {
		tail = l.StripSize
	}
	if tail > 0 {
		n += tail
	}
	return n
}

// LocalEOF reports the logical end-of-file implied by a server's local
// object length: the smallest logical size that would produce exactly
// localLen bytes on server.
func (l Layout) LocalEOF(server int, localLen int64) int64 {
	if localLen == 0 {
		return 0
	}
	return l.Logical(server, localLen-1) + 1
}
