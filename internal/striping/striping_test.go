package striping

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func layout() Layout { return Layout{StripSize: 64 * 1024, NServers: 16, Base: 0} }

func TestValidate(t *testing.T) {
	if err := layout().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{StripSize: 0, NServers: 4},
		{StripSize: 64, NServers: 0},
		{StripSize: 64, NServers: 4, Base: 4},
		{StripSize: 64, NServers: 4, Base: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestServerRoundRobin(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 4, Base: 1}
	wantServers := []int{1, 2, 3, 0, 1}
	for k, want := range wantServers {
		off := int64(k)*10 + 5
		if got := l.Server(off); got != want {
			t.Fatalf("strip %d: server=%d want %d", k, got, want)
		}
	}
}

func TestPhysicalMapping(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 4, Base: 0}
	// Logical 45 = strip 4 (server 0, local strip 1) offset 5 -> phys 15.
	if got := l.Physical(45); got != 15 {
		t.Fatalf("phys=%d", got)
	}
	if got := l.Logical(0, 15); got != 45 {
		t.Fatalf("logical=%d", got)
	}
}

func TestSplitCountsAndCoverage(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 3, Base: 0}
	var total int64
	var pieces int
	prevEnd := int64(7)
	l.Split(7, 25, func(p Piece) bool {
		if p.Logical != prevEnd {
			t.Fatalf("gap at %d", p.Logical)
		}
		prevEnd = p.Logical + p.Len
		total += p.Len
		pieces++
		return true
	})
	if total != 25 || pieces != 3 { // [7,10) [10,20) [20,30) then 2 more bytes -> wait: 7+25=32 -> [30,32): 4 pieces
		if pieces != 4 {
			t.Fatalf("total=%d pieces=%d", total, pieces)
		}
	}
}

func TestSplitEarlyStop(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 3, Base: 0}
	n := 0
	done := l.Split(0, 100, func(p Piece) bool {
		n++
		return n < 2
	})
	if done || n != 2 {
		t.Fatalf("done=%v n=%d", done, n)
	}
}

func TestServerPieces(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 2, Base: 0}
	// Region [0,40): server 0 gets strips 0,2 -> phys [0,10),[10,20).
	var got [][3]int64
	l.ServerPieces(0, 0, 40, func(phys, logical, ln int64) bool {
		got = append(got, [3]int64{phys, logical, ln})
		return true
	})
	want := [][3]int64{{0, 0, 10}, {10, 20, 10}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v", got)
	}
}

func TestLocalEOF(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 2, Base: 0}
	if got := l.LocalEOF(0, 0); got != 0 {
		t.Fatalf("empty: %d", got)
	}
	// Server 1, 15 local bytes: last byte is local off 14 = strip 1 off 4
	// -> logical strip 3 -> logical byte 34 -> EOF 35.
	if got := l.LocalEOF(1, 15); got != 35 {
		t.Fatalf("eof=%d", got)
	}
}

func TestPropertyPhysicalLogicalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Layout{
			StripSize: int64(1 + r.Intn(1000)),
			NServers:  1 + r.Intn(20),
		}
		l.Base = r.Intn(l.NServers)
		off := r.Int63n(1 << 40)
		return l.Logical(l.Server(off), l.Physical(off)) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySplitPartitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Layout{StripSize: int64(1 + r.Intn(100)), NServers: 1 + r.Intn(8)}
		off := r.Int63n(10000)
		n := r.Int63n(5000)
		var total int64
		at := off
		ok := true
		l.Split(off, n, func(p Piece) bool {
			if p.Logical != at || p.Len <= 0 || p.Len > l.StripSize {
				ok = false
				return false
			}
			if p.Server != l.Server(p.Logical) || p.Phys != l.Physical(p.Logical) {
				ok = false
				return false
			}
			// A piece never crosses a strip boundary.
			if p.Logical/l.StripSize != (p.Logical+p.Len-1)/l.StripSize {
				ok = false
				return false
			}
			at += p.Len
			total += p.Len
			return true
		})
		return ok && total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLocalLenPartitionsSize(t *testing.T) {
	// Sum of LocalLen over all servers equals the logical size, and each
	// server's LocalLen matches a brute-force strip count.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Layout{StripSize: int64(1 + r.Intn(64)), NServers: 1 + r.Intn(6)}
		l.Base = r.Intn(l.NServers)
		size := r.Int63n(5000)
		var sum int64
		for s := 0; s < l.NServers; s++ {
			got := l.LocalLen(s, size)
			var want int64
			l.Split(0, size, func(p Piece) bool {
				if p.Server == s {
					want += p.Len
				}
				return true
			})
			if got != want {
				return false
			}
			sum += got
		}
		return sum == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLocalEOFConsistent(t *testing.T) {
	// Writing logical prefix [0,size) gives each server LocalLen bytes;
	// the max LocalEOF over servers recovers the size.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := Layout{StripSize: int64(1 + r.Intn(64)), NServers: 1 + r.Intn(6)}
		size := 1 + r.Int63n(5000)
		var eof int64
		for s := 0; s < l.NServers; s++ {
			if e := l.LocalEOF(s, l.LocalLen(s, size)); e > eof {
				eof = e
			}
		}
		return eof == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServerPiecesStripBoundaryEnd(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 2, Base: 0}
	// Region [5,20) ends exactly on a strip boundary: server 0 gets only
	// the tail of strip 0, server 1 gets all of strip 1 and nothing more.
	var got0, got1 [][3]int64
	l.ServerPieces(0, 5, 15, func(phys, logical, ln int64) bool {
		got0 = append(got0, [3]int64{phys, logical, ln})
		return true
	})
	l.ServerPieces(1, 5, 15, func(phys, logical, ln int64) bool {
		got1 = append(got1, [3]int64{phys, logical, ln})
		return true
	})
	want0 := [][3]int64{{5, 5, 5}}
	want1 := [][3]int64{{0, 10, 10}}
	if len(got0) != 1 || got0[0] != want0[0] {
		t.Fatalf("server 0: got %v, want %v", got0, want0)
	}
	if len(got1) != 1 || got1[0] != want1[0] {
		t.Fatalf("server 1: got %v, want %v", got1, want1)
	}
}

func TestServerPiecesSubStripAcrossTwoServers(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 4, Base: 0}
	// Region [8,12) is smaller than one strip but straddles a boundary:
	// 2 bytes on server 0, 2 bytes on server 1, nothing elsewhere.
	counts := map[int][][3]int64{}
	for s := 0; s < l.NServers; s++ {
		l.ServerPieces(s, 8, 4, func(phys, logical, ln int64) bool {
			counts[s] = append(counts[s], [3]int64{phys, logical, ln})
			return true
		})
	}
	if len(counts) != 2 {
		t.Fatalf("region touched servers %v, want exactly {0, 1}", counts)
	}
	if got, want := counts[0], ([3]int64{8, 8, 2}); len(got) != 1 || got[0] != want {
		t.Fatalf("server 0: got %v, want %v", got, want)
	}
	if got, want := counts[1], ([3]int64{0, 10, 2}); len(got) != 1 || got[0] != want {
		t.Fatalf("server 1: got %v, want %v", got, want)
	}
}

func TestServerPiecesZeroLength(t *testing.T) {
	l := Layout{StripSize: 10, NServers: 2, Base: 0}
	for _, off := range []int64{0, 5, 10, 25} {
		for s := 0; s < l.NServers; s++ {
			called := false
			done := l.ServerPieces(s, off, 0, func(phys, logical, ln int64) bool {
				called = true
				return true
			})
			if called {
				t.Fatalf("zero-length region at %d produced a piece on server %d", off, s)
			}
			if !done {
				t.Fatalf("zero-length region at %d reported early stop", off)
			}
		}
	}
}
