package dataloop

import "math"

// Segment is a resumable cursor over the offset/length pieces of a
// dataloop. It supports the partial-processing contract the paper relies
// on: process some pieces now (bounded by bytes or by the consumer
// refusing a piece), keep the position, resume later. Resumption costs
// O(depth + blocks skipped) arithmetic, not a re-walk of emitted pieces.
//
// Pieces are emitted in data-stream order: the k-th stream byte of the
// type maps to the k-th byte covered by the emitted pieces.
type Segment struct {
	top   *Loop
	count int64 // instances of top, spaced by top.Extent
	pos   int64 // stream position consumed so far

	remaining int64 // byte budget for the current Process call
}

// NewSegment creates a cursor over count instances of l.
func NewSegment(l *Loop, count int64) *Segment {
	return &Segment{top: l, count: count}
}

// Total reports the total stream bytes (count * loop size).
func (s *Segment) Total() int64 { return s.count * s.top.Size }

// Pos reports the stream position consumed so far.
func (s *Segment) Pos() int64 { return s.pos }

// Done reports whether the whole stream has been consumed.
func (s *Segment) Done() bool { return s.pos >= s.Total() }

// SetPos repositions the cursor to an absolute stream offset.
func (s *Segment) SetPos(pos int64) {
	if pos < 0 || pos > s.Total() {
		panic("dataloop: position out of range")
	}
	s.pos = pos
}

// Process emits pieces starting at the current position. Each piece is a
// contiguous byte run (off, n) relative to the placement origin of
// instance 0. Processing stops when:
//
//   - the stream is exhausted (returns consumed, true),
//   - maxBytes (>0) of stream have been emitted — the final piece is
//     split if needed (returns consumed, false), or
//   - emit returns false, which REFUSES the offered piece: it is not
//     consumed and will be offered again on the next call
//     (returns consumed, false).
//
// maxBytes <= 0 means no byte bound.
func (s *Segment) Process(maxBytes int64, emit func(off, n int64) bool) (consumed int64, done bool) {
	if s.top.Size == 0 || s.count == 0 {
		s.pos = s.Total()
		return 0, true
	}
	s.remaining = math.MaxInt64
	if maxBytes > 0 {
		s.remaining = maxBytes
	}
	start := s.pos
	inst := s.pos / s.top.Size
	skip := s.pos % s.top.Size
	for ; inst < s.count; inst++ {
		if !s.walk(s.top, inst*s.top.Extent, skip, emit) {
			return s.pos - start, false
		}
		skip = 0
	}
	return s.pos - start, true
}

// piece offers one contiguous run to emit, honoring the byte budget.
// It reports whether walking should continue.
func (s *Segment) piece(off, n int64, emit func(off, n int64) bool) bool {
	if n == 0 {
		return true
	}
	if s.remaining <= 0 {
		return false
	}
	give := n
	if give > s.remaining {
		give = s.remaining
	}
	if !emit(off, give) {
		return false // refused: nothing consumed
	}
	s.remaining -= give
	s.pos += give
	return give == n // a split piece exhausts the budget
}

// walk processes one instance of l placed at base, skipping the first
// skip stream bytes of it. It reports whether the instance completed.
func (s *Segment) walk(l *Loop, base, skip int64, emit func(off, n int64) bool) bool {
	if skip >= l.Size {
		return skip == l.Size || l.Size == 0
	}
	switch l.Kind {
	case Contig:
		i := skip / l.ElSize
		rem := skip % l.ElSize
		if l.leaf() {
			if l.ElExtent == l.ElSize { // dense: one long run
				return s.pieceLong(base+skip, l.Count*l.ElSize-skip, emit)
			}
			for ; i < l.Count; i++ {
				if !s.piece(base+i*l.ElExtent+rem, l.ElSize-rem, emit) {
					return false
				}
				rem = 0
			}
			return true
		}
		for ; i < l.Count; i++ {
			if !s.walk(l.Child, base+i*l.ElExtent, rem, emit) {
				return false
			}
			rem = 0
		}
		return true

	case Vector:
		blockBytes := l.BlockLen * l.ElSize
		b := skip / blockBytes
		rem := skip % blockBytes
		for ; b < l.Count; b++ {
			if !s.block(l, base+b*l.Stride, rem, l.BlockLen, emit) {
				return false
			}
			rem = 0
		}
		return true

	case BlockIndexed:
		blockBytes := l.BlockLen * l.ElSize
		b := skip / blockBytes
		rem := skip % blockBytes
		for ; b < int64(len(l.Offsets)); b++ {
			if !s.block(l, base+l.Offsets[b], rem, l.BlockLen, emit) {
				return false
			}
			rem = 0
		}
		return true

	case Indexed:
		// Skip whole blocks, then process the remainder.
		b := int64(0)
		for b < int64(len(l.BlockLens)) {
			bb := l.BlockLens[b] * l.ElSize
			if skip < bb {
				break
			}
			skip -= bb
			b++
		}
		for ; b < int64(len(l.BlockLens)); b++ {
			if !s.block(l, base+l.Offsets[b], skip, l.BlockLens[b], emit) {
				return false
			}
			skip = 0
		}
		return true

	case Struct:
		f := 0
		for f < len(l.Children) {
			if skip < l.Children[f].Size {
				break
			}
			skip -= l.Children[f].Size
			f++
		}
		for ; f < len(l.Children); f++ {
			if !s.walk(l.Children[f], base+l.Offsets[f], skip, emit) {
				return false
			}
			skip = 0
		}
		return true
	}
	panic("dataloop: unknown kind")
}

// block processes one block of n elements of l (leaf or child elements)
// starting at blockBase, skipping the first skip bytes of the block.
func (s *Segment) block(l *Loop, blockBase, skip, n int64, emit func(off, n int64) bool) bool {
	j := skip / l.ElSize
	rem := skip % l.ElSize
	if l.leaf() {
		// Dense blocks emit a single piece.
		if l.ElExtent == l.ElSize {
			return s.pieceLong(blockBase+skip, n*l.ElSize-skip, emit)
		}
		for ; j < n; j++ {
			if !s.piece(blockBase+j*l.ElExtent+rem, l.ElSize-rem, emit) {
				return false
			}
			rem = 0
		}
		return true
	}
	for ; j < n; j++ {
		if !s.walk(l.Child, blockBase+j*l.ElExtent, rem, emit) {
			return false
		}
		rem = 0
	}
	return true
}

// pieceLong emits a run that may exceed the budget repeatedly (used for
// dense blocks, which can be large).
func (s *Segment) pieceLong(off, n int64, emit func(off, n int64) bool) bool {
	for n > 0 {
		give := n
		if give > s.remaining {
			give = s.remaining
		}
		if give <= 0 {
			return false
		}
		if !emit(off, give) {
			return false
		}
		s.remaining -= give
		s.pos += give
		off += give
		n -= give
		if n > 0 && s.remaining == 0 {
			return false
		}
	}
	return true
}
