package dataloop

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dtio/internal/datatype"
)

// collect materializes all pieces of count instances without coalescing.
func collect(l *Loop, count int64) []datatype.Region {
	var out []datatype.Region
	seg := NewSegment(l, count)
	seg.Process(-1, func(off, n int64) bool {
		out = append(out, datatype.Region{Off: off, Len: n})
		return true
	})
	return out
}

// coalesce merges adjacent regions.
func coalesce(in []datatype.Region) []datatype.Region {
	var out []datatype.Region
	for _, r := range in {
		if r.Len == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == r.Off {
			out[len(out)-1].Len += r.Len
		} else {
			out = append(out, r)
		}
	}
	return out
}

// typeRegions is the datatype-package reference flattening.
func typeRegions(t *datatype.Type, count int) []datatype.Region {
	return t.Flatten(0, count)
}

func TestConvertBasic(t *testing.T) {
	l := FromType(datatype.Int32)
	if l.Kind != Contig || !l.leaf() || l.ElSize != 4 || l.Size != 4 {
		t.Fatalf("basic loop: %s", l)
	}
}

func TestConvertContigCollapses(t *testing.T) {
	// contig(10, contig(5, int32)) must become a single dense leaf.
	ty := datatype.Contiguous(10, datatype.Contiguous(5, datatype.Int32))
	l := FromType(ty)
	if !l.leaf() || l.Kind != Contig {
		t.Fatalf("not collapsed: %s", l)
	}
	if l.Size != 200 {
		t.Fatalf("size=%d", l.Size)
	}
	if l.NumNodes() != 1 {
		t.Fatalf("nodes=%d", l.NumNodes())
	}
}

func TestConvertVectorLeaf(t *testing.T) {
	ty := datatype.Vector(768, 3072, 7596, datatype.Byte) // tile view
	l := FromType(ty)
	if l.Kind != Vector || !l.leaf() {
		t.Fatalf("tile loop should be a leaf vector: %s", l)
	}
	if l.Count != 768 || l.BlockLen != 3072 || l.Stride != 7596 {
		t.Fatalf("loop fields: %s", l)
	}
	if l.EncodedSize() > 100 {
		t.Fatalf("tile dataloop encodes to %d bytes; should be tiny", l.EncodedSize())
	}
}

func TestConvertContigOfVectorCollapses(t *testing.T) {
	// A vector whose extent is count*stride tiles seamlessly; contig of it
	// collapses into a longer vector.
	v := datatype.HVector(4, 2, 16, datatype.Int32)
	v = datatype.Resized(v, 0, 64) // extent 4*16
	ty := datatype.Contiguous(3, v)
	l := FromType(ty)
	if l.Kind != Vector || !l.leaf() || l.Count != 12 {
		t.Fatalf("want leaf vector count 12, got %s", l)
	}
}

func TestConvertSubarrayIsCompact(t *testing.T) {
	// 3-D block subarray: nested vectors, a handful of nodes regardless of
	// array size.
	ty := datatype.Subarray([]int{600, 600, 600}, []int{300, 300, 300}, []int{0, 0, 0}, datatype.OrderC, datatype.Int32)
	l := FromType(ty)
	if l.NumNodes() > 4 {
		t.Fatalf("3-D block loop has %d nodes: %s", l.NumNodes(), l)
	}
	if l.EncodedSize() > 300 {
		t.Fatalf("encoded %d bytes", l.EncodedSize())
	}
	if l.Size != 300*300*300*4 {
		t.Fatalf("size=%d", l.Size)
	}
}

func TestSegmentMatchesTypeWalk(t *testing.T) {
	cases := []*datatype.Type{
		datatype.Int32,
		datatype.Contiguous(7, datatype.Int64),
		datatype.Vector(5, 3, 7, datatype.Int32),
		datatype.HVector(4, 2, 100, datatype.Contiguous(3, datatype.Byte)),
		datatype.Indexed([]int{2, 1, 3}, []int{5, 0, 10}, datatype.Int32),
		datatype.BlockIndexed(2, []int{0, 4, 9}, datatype.Int32),
		datatype.Struct([]int{1, 2}, []int64{0, 8}, []*datatype.Type{datatype.Int32, datatype.Float64}),
		datatype.Subarray([]int{6, 8}, []int{3, 4}, []int{1, 2}, datatype.OrderC, datatype.Int32),
		datatype.Resized(datatype.Int32, 0, 12),
		datatype.Vector(3, 2, 4, datatype.Vector(2, 1, 2, datatype.Int32)),
	}
	for i, ty := range cases {
		l := FromType(ty)
		if err := l.Validate(); err != nil {
			t.Fatalf("case %d: validate: %v", i, err)
		}
		for _, count := range []int64{1, 3} {
			got := coalesce(collect(l, count))
			want := typeRegions(ty, int(count))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("case %d count %d:\n got %v\nwant %v\nloop %s", i, count, got, want, l)
			}
		}
	}
}

func TestSegmentByteBudgetSplitsPieces(t *testing.T) {
	ty := datatype.Vector(3, 2, 4, datatype.Int32) // pieces of 8 bytes
	l := FromType(ty)
	seg := NewSegment(l, 1)
	var got []datatype.Region
	for !seg.Done() {
		consumed, _ := seg.Process(5, func(off, n int64) bool {
			got = append(got, datatype.Region{Off: off, Len: n})
			return true
		})
		if consumed == 0 && !seg.Done() {
			t.Fatal("no progress")
		}
	}
	// 24 bytes in <=5-byte chunks: every chunk at most 5 bytes; coalesced
	// coverage must equal the full flattening.
	for _, r := range got {
		if r.Len > 5 {
			t.Fatalf("piece %v exceeds budget", r)
		}
	}
	if !reflect.DeepEqual(coalesce(got), typeRegions(ty, 1)) {
		t.Fatalf("coverage mismatch: %v", coalesce(got))
	}
}

func TestSegmentRefusalDoesNotConsume(t *testing.T) {
	ty := datatype.Vector(4, 1, 2, datatype.Int32)
	l := FromType(ty)
	seg := NewSegment(l, 1)
	calls := 0
	consumed, done := seg.Process(-1, func(off, n int64) bool {
		calls++
		return calls <= 2 // refuse the third piece
	})
	if done || consumed != 8 {
		t.Fatalf("consumed=%d done=%v", consumed, done)
	}
	// Resume: the refused piece must be offered again.
	var first datatype.Region
	seg.Process(-1, func(off, n int64) bool {
		first = datatype.Region{Off: off, Len: n}
		return false
	})
	if first.Off != 16 || first.Len != 4 {
		t.Fatalf("resume offered %v, want {16 4}", first)
	}
}

func TestSegmentResumeAcrossInstances(t *testing.T) {
	ty := datatype.Vector(2, 1, 2, datatype.Int32) // 8 bytes/instance
	l := FromType(ty)
	seg := NewSegment(l, 3)
	if seg.Total() != 24 {
		t.Fatalf("total=%d", seg.Total())
	}
	var got []datatype.Region
	for !seg.Done() {
		seg.Process(3, func(off, n int64) bool {
			got = append(got, datatype.Region{Off: off, Len: n})
			return true
		})
	}
	if !reflect.DeepEqual(coalesce(got), typeRegions(ty, 3)) {
		t.Fatalf("mismatch: %v vs %v", coalesce(got), typeRegions(ty, 3))
	}
}

func TestSegmentSetPos(t *testing.T) {
	ty := datatype.Contiguous(4, datatype.Resized(datatype.Int32, 0, 10))
	l := FromType(ty)
	seg := NewSegment(l, 1)
	seg.SetPos(6) // into element 1 (bytes 4..8 are element 1)
	var first datatype.Region
	seg.Process(-1, func(off, n int64) bool {
		first = datatype.Region{Off: off, Len: n}
		return false
	})
	// element 1 at offset 10, skip 2 bytes in: off 12, len 2
	if first.Off != 12 || first.Len != 2 {
		t.Fatalf("got %v", first)
	}
}

func TestSegmentZeroSize(t *testing.T) {
	ty := datatype.Contiguous(0, datatype.Int32)
	seg := NewSegment(FromType(ty), 5)
	consumed, done := seg.Process(-1, func(off, n int64) bool { return true })
	if consumed != 0 || !done {
		t.Fatalf("consumed=%d done=%v", consumed, done)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*datatype.Type{
		datatype.Int32,
		datatype.Vector(768, 3072, 7596, datatype.Byte),
		datatype.Indexed([]int{2, 1, 3}, []int{5, 0, 10}, datatype.Int32),
		datatype.BlockIndexed(3, []int{0, 5, 11}, datatype.Int64),
		datatype.Struct([]int{1, 2, 1}, []int64{0, 8, 32}, []*datatype.Type{
			datatype.Int32, datatype.Float64, datatype.Vector(2, 1, 2, datatype.Int32)}),
		datatype.Subarray([]int{10, 10, 10}, []int{5, 5, 5}, []int{2, 2, 2}, datatype.OrderC, datatype.Int32),
	}
	for i, ty := range cases {
		l := FromType(ty)
		enc := l.Encode(nil)
		if len(enc) != l.EncodedSize() {
			t.Fatalf("case %d: EncodedSize=%d actual=%d", i, l.EncodedSize(), len(enc))
		}
		dec, used, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if used != len(enc) {
			t.Fatalf("case %d: used %d of %d", i, used, len(enc))
		}
		if !reflect.DeepEqual(collect(dec, 2), collect(l, 2)) {
			t.Fatalf("case %d: decoded loop walks differently", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xFF},
		make([]byte, 10),
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for i, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Fatalf("case %d: garbage decoded", i)
		}
	}
}

func TestDecodeRejectsTamperedSize(t *testing.T) {
	l := FromType(datatype.Vector(4, 2, 3, datatype.Int32))
	enc := l.Encode(nil)
	// Size field is at byte offset 2+8+8+8 = 26.
	enc[26] ^= 0x01
	if _, _, err := Decode(enc); err == nil {
		t.Fatal("tampered size accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	l := FromType(datatype.Indexed([]int{2, 1, 3}, []int{5, 0, 10}, datatype.Int32))
	enc := l.Encode(nil)
	for cut := 1; cut < len(enc); cut += 7 {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestValidateRejectsNegativeCount(t *testing.T) {
	l := &Loop{Kind: Contig, Count: -1, ElSize: 4, ElExtent: 4, Size: -4, Extent: -4}
	if err := l.Validate(); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestDepthAndNodes(t *testing.T) {
	ty := datatype.Vector(3, 2, 4, datatype.Vector(2, 1, 3, datatype.Vector(2, 1, 2, datatype.Int32)))
	l := FromType(ty)
	if l.Depth() != 3 {
		t.Fatalf("depth=%d loop=%s", l.Depth(), l)
	}
}

func TestPropertyLoopMatchesType(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := datatype.RandomType(rr, 1+rr.Intn(3))
		l := FromType(ty)
		if err := l.Validate(); err != nil {
			return false
		}
		if l.Size != ty.Size() || l.Extent != ty.Extent() {
			return false
		}
		count := 1 + rr.Intn(3)
		return reflect.DeepEqual(coalesce(collect(l, int64(count))), typeRegions(ty, count))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPartialEqualsFull(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := datatype.RandomType(rr, 1+rr.Intn(3))
		l := FromType(ty)
		count := int64(1 + rr.Intn(3))
		full := coalesce(collect(l, count))
		// Re-process with random byte budgets.
		seg := NewSegment(l, count)
		var parts []datatype.Region
		for !seg.Done() {
			budget := int64(1 + rr.Intn(17))
			consumed, done := seg.Process(budget, func(off, n int64) bool {
				parts = append(parts, datatype.Region{Off: off, Len: n})
				return true
			})
			if consumed == 0 && !done {
				return false
			}
		}
		return reflect.DeepEqual(coalesce(parts), full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := datatype.RandomType(rr, 1+rr.Intn(3))
		l := FromType(ty)
		enc := l.Encode(nil)
		dec, used, err := Decode(enc)
		if err != nil || used != len(enc) {
			return false
		}
		return reflect.DeepEqual(collect(dec, 1), collect(l, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDeepNesting(t *testing.T) {
	// Build a loop nested past the decode depth limit.
	l := &Loop{Kind: Contig, Count: 1, ElSize: 1, ElExtent: 1, Size: 1, Extent: 1}
	for i := 0; i < 80; i++ {
		l = &Loop{Kind: Contig, Count: 1, ElSize: l.Size, ElExtent: l.Extent,
			Child: l, Size: l.Size, Extent: l.Extent}
	}
	if err := l.Validate(); err == nil {
		t.Fatal("deep nesting accepted")
	}
	if _, _, err := Decode(l.Encode(nil)); err == nil {
		t.Fatal("deep nesting decoded")
	}
}

func TestDecodeRejectsHugeLists(t *testing.T) {
	// A forged indexed node declaring 2^30 entries must be rejected
	// before allocation.
	enc := FromType(datatype.Indexed([]int{1}, []int{0}, datatype.Int32)).Encode(nil)
	// count field of the indexed list: locate the u32 after the header.
	// header: kind(1) flags(1) count(8) elsize(8) elextent(8) size(8) extent(8) = 42
	enc[42] = 0xFF
	enc[43] = 0xFF
	enc[44] = 0xFF
	enc[45] = 0x3F
	if _, _, err := Decode(enc); err == nil {
		t.Fatal("huge list accepted")
	}
}
