package dataloop

import (
	"dtio/internal/datatype"
)

// FromType converts an MPI-style datatype into its dataloop
// representation. The conversion collapses regularity where possible —
// contigs of contigs merge, vectors over dense elements become leaf
// vectors — so the result is as concise as the type's structure allows.
// This mirrors what the paper's prototype does with
// MPI_Type_get_envelope/MPI_Type_get_contents, but operates directly on
// our datatype package.
func FromType(t *datatype.Type) *Loop {
	l := convert(t)
	l.Extent = t.Extent() // honor resized outer extents
	return l
}

// denseElement reports whether instances of t can serve as opaque leaf
// elements: a single run of t.Size() bytes starting at the origin.
func denseElement(t *datatype.Type) bool {
	return t.OneRun() && t.TrueLB() == 0
}

func convert(t *datatype.Type) *Loop {
	switch t.Kind() {
	case datatype.KindBasic:
		return &Loop{
			Kind: Contig, Count: 1,
			ElSize: t.Size(), ElExtent: t.Extent(),
			Size: t.Size(), Extent: t.Extent(),
		}

	case datatype.KindResized:
		l := convert(t.Child())
		nl := *l
		nl.Extent = t.Extent()
		return &nl

	case datatype.KindContig:
		child := t.Child()
		if denseElement(child) {
			return &Loop{
				Kind: Contig, Count: t.Count(),
				ElSize: child.Size(), ElExtent: child.Extent(),
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		c := convert(child)
		// contig(N, contig-leaf(C)) -> contig-leaf(N*C) when repetitions
		// continue the same element grid.
		if c.leaf() && c.Kind == Contig && c.Extent == c.Count*c.ElExtent {
			return &Loop{
				Kind: Contig, Count: t.Count() * c.Count,
				ElSize: c.ElSize, ElExtent: c.ElExtent,
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		// contig(N, vector-leaf(C)) -> vector-leaf(N*C) when block grid
		// continues across instances.
		if c.leaf() && c.Kind == Vector && c.Extent == c.Count*c.Stride {
			return &Loop{
				Kind: Vector, Count: t.Count() * c.Count,
				BlockLen: c.BlockLen, Stride: c.Stride,
				ElSize: c.ElSize, ElExtent: c.ElExtent,
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		return &Loop{
			Kind: Contig, Count: t.Count(),
			ElSize: c.Size, ElExtent: c.Extent,
			Child: c, Size: t.Size(), Extent: t.Extent(),
		}

	case datatype.KindVector:
		child := t.Child()
		if denseElement(child) {
			return &Loop{
				Kind: Vector, Count: t.Count(),
				BlockLen: t.BlockLen(), Stride: t.StrideBytes(),
				ElSize: child.Size(), ElExtent: child.Extent(),
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		c := convert(child)
		return &Loop{
			Kind: Vector, Count: t.Count(),
			BlockLen: t.BlockLen(), Stride: t.StrideBytes(),
			ElSize: c.Size, ElExtent: c.Extent,
			Child: c, Size: t.Size(), Extent: t.Extent(),
		}

	case datatype.KindBlockIndexed:
		child := t.Child()
		offs := append([]int64(nil), t.Displs()...)
		if denseElement(child) {
			return &Loop{
				Kind: BlockIndexed, BlockLen: t.BlockLen(), Offsets: offs,
				Count:  int64(len(offs)),
				ElSize: child.Size(), ElExtent: child.Extent(),
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		c := convert(child)
		return &Loop{
			Kind: BlockIndexed, BlockLen: t.BlockLen(), Offsets: offs,
			Count:  int64(len(offs)),
			ElSize: c.Size, ElExtent: c.Extent,
			Child: c, Size: t.Size(), Extent: t.Extent(),
		}

	case datatype.KindIndexed:
		child := t.Child()
		offs := append([]int64(nil), t.Displs()...)
		lens := append([]int64(nil), t.Lens()...)
		if denseElement(child) {
			return &Loop{
				Kind: Indexed, BlockLens: lens, Offsets: offs,
				Count:  int64(len(offs)),
				ElSize: child.Size(), ElExtent: child.Extent(),
				Size: t.Size(), Extent: t.Extent(),
			}
		}
		c := convert(child)
		return &Loop{
			Kind: Indexed, BlockLens: lens, Offsets: offs,
			Count:  int64(len(offs)),
			ElSize: c.Size, ElExtent: c.Extent,
			Child: c, Size: t.Size(), Extent: t.Extent(),
		}

	case datatype.KindStruct:
		types := t.Children()
		lens := t.Lens()
		offs := append([]int64(nil), t.Displs()...)
		children := make([]*Loop, len(types))
		for i := range types {
			// Fold the per-field repetition into the child loop.
			field := datatype.Contiguous(int(lens[i]), types[i])
			children[i] = FromType(field)
		}
		return &Loop{
			Kind: Struct, Count: int64(len(children)),
			Offsets: offs, Children: children,
			Size: t.Size(), Extent: t.Extent(),
		}
	}
	panic("dataloop: unknown datatype kind")
}
