// Package dataloop implements the dataloop representation used by
// datatype I/O: a concise, self-describing encoding of structured byte
// layouts, after the MPICH2 datatype-processing component (Ross, Miller,
// Gropp, EuroPVM/MPI 2003) that the paper's prototype reuses.
//
// Dataloops come in five kinds — contig, vector, blockindexed, indexed,
// and struct — which are sufficient to describe every MPI datatype while
// capturing all available regularity. Compared with full MPI datatypes the
// representation is simplified: extents are explicit (no LB/UB markers),
// and resized types cost nothing extra.
//
// The three properties called out in the paper hold here too:
//
//   - simplified type representation (five kinds, explicit extents);
//   - support for partial processing (Segment is a resumable cursor);
//   - separation of parsing from the action applied to data (Segment
//     emits offset/length pieces to a caller-supplied function).
package dataloop

import (
	"fmt"
	"strings"
)

// Kind is the dataloop node kind.
type Kind uint8

// The five dataloop kinds.
const (
	Contig Kind = iota
	Vector
	BlockIndexed
	Indexed
	Struct
)

func (k Kind) String() string {
	switch k {
	case Contig:
		return "contig"
	case Vector:
		return "vector"
	case BlockIndexed:
		return "blockindexed"
	case Indexed:
		return "indexed"
	case Struct:
		return "struct"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Loop is one dataloop node. A Loop with a nil Child (and no Children) is
// a leaf: its elements are opaque runs of ElSize bytes spaced ElExtent
// apart. A non-leaf's elements are instances of Child (or Children[i] for
// struct), spaced by the child's Extent.
//
// Loops are immutable after construction.
type Loop struct {
	Kind  Kind
	Count int64 // contig: repetitions; vector: blocks; struct: fields

	BlockLen  int64   // vector, blockindexed: elements per block
	Stride    int64   // vector: bytes between block starts
	BlockLens []int64 // indexed: elements per block
	Offsets   []int64 // blockindexed, indexed, struct: byte displacements

	ElSize   int64 // bytes per element
	ElExtent int64 // spacing between consecutive elements in a block

	Child    *Loop   // non-leaf, non-struct
	Children []*Loop // struct fields

	Size   int64 // total data bytes described by this loop
	Extent int64 // spacing when this loop itself is repeated
}

// leaf reports whether the loop's elements are raw byte runs.
func (l *Loop) leaf() bool { return l.Child == nil && l.Children == nil }

// Depth reports the nesting depth (a leaf has depth 1).
func (l *Loop) Depth() int {
	switch {
	case l.leaf():
		return 1
	case l.Kind == Struct:
		d := 0
		for _, c := range l.Children {
			if cd := c.Depth(); cd > d {
				d = cd
			}
		}
		return d + 1
	default:
		return l.Child.Depth() + 1
	}
}

// NumNodes counts loop nodes (a measure of representation size).
func (l *Loop) NumNodes() int {
	switch {
	case l.leaf():
		return 1
	case l.Kind == Struct:
		n := 1
		for _, c := range l.Children {
			n += c.NumNodes()
		}
		return n
	default:
		return 1 + l.Child.NumNodes()
	}
}

// String renders a compact single-line description.
func (l *Loop) String() string {
	var b strings.Builder
	l.format(&b)
	return b.String()
}

func (l *Loop) format(b *strings.Builder) {
	switch l.Kind {
	case Contig:
		fmt.Fprintf(b, "contig(%d", l.Count)
	case Vector:
		fmt.Fprintf(b, "vector(%d, bl=%d, str=%d", l.Count, l.BlockLen, l.Stride)
	case BlockIndexed:
		fmt.Fprintf(b, "blkidx(%d, bl=%d", len(l.Offsets), l.BlockLen)
	case Indexed:
		fmt.Fprintf(b, "indexed(%d", len(l.Offsets))
	case Struct:
		fmt.Fprintf(b, "struct(%d", l.Count)
	}
	if l.leaf() {
		fmt.Fprintf(b, ", el=%d", l.ElSize)
		if l.ElExtent != l.ElSize {
			fmt.Fprintf(b, "/%d", l.ElExtent)
		}
	} else if l.Kind == Struct {
		for _, c := range l.Children {
			b.WriteString(", ")
			c.format(b)
		}
	} else {
		b.WriteString(", ")
		l.Child.format(b)
	}
	b.WriteString(")")
}

// Validate checks structural invariants (counts, sizes, recursion) and
// returns a descriptive error for malformed loops. It is used on decode,
// since servers process loops received from the network.
func (l *Loop) Validate() error { return l.validate(0) }

const maxDepth = 64

func (l *Loop) validate(depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("dataloop: nesting deeper than %d", maxDepth)
	}
	if l.Count < 0 || l.BlockLen < 0 || l.ElSize < 0 || l.Size < 0 {
		return fmt.Errorf("dataloop: negative field in %s node", l.Kind)
	}
	switch l.Kind {
	case Contig, Vector:
		if l.Kind == Vector && l.BlockLen == 0 && l.Size != 0 {
			return fmt.Errorf("dataloop: vector with zero blocklen but size %d", l.Size)
		}
	case BlockIndexed:
		if len(l.BlockLens) != 0 {
			return fmt.Errorf("dataloop: blockindexed carries per-block lens")
		}
	case Indexed:
		if len(l.BlockLens) != len(l.Offsets) {
			return fmt.Errorf("dataloop: indexed lens/offsets mismatch (%d vs %d)",
				len(l.BlockLens), len(l.Offsets))
		}
		for _, n := range l.BlockLens {
			if n < 0 {
				return fmt.Errorf("dataloop: negative indexed block length")
			}
		}
	case Struct:
		if len(l.Children) != len(l.Offsets) {
			return fmt.Errorf("dataloop: struct children/offsets mismatch (%d vs %d)",
				len(l.Children), len(l.Offsets))
		}
	default:
		return fmt.Errorf("dataloop: unknown kind %d", uint8(l.Kind))
	}
	if l.leaf() {
		if l.Kind == Struct {
			return nil // empty struct
		}
		if l.ElSize == 0 && l.Size != 0 {
			return fmt.Errorf("dataloop: leaf with zero element size but size %d", l.Size)
		}
		if got := sizeOf(l); got != l.Size {
			return fmt.Errorf("dataloop: declared size %d != structural size %d", l.Size, got)
		}
		return nil
	}
	if l.Kind == Struct {
		for _, c := range l.Children {
			if err := c.validate(depth + 1); err != nil {
				return err
			}
		}
		if got := sizeOf(l); got != l.Size {
			return fmt.Errorf("dataloop: declared struct size %d != structural size %d", l.Size, got)
		}
		return nil
	}
	if err := l.Child.validate(depth + 1); err != nil {
		return err
	}
	if l.Child.Size != l.ElSize {
		return fmt.Errorf("dataloop: child size %d != element size %d", l.Child.Size, l.ElSize)
	}
	if got := sizeOf(l); got != l.Size {
		return fmt.Errorf("dataloop: declared size %d != structural size %d", l.Size, got)
	}
	return nil
}

// sizeOf computes the data bytes described by the loop from its structure.
func sizeOf(l *Loop) int64 {
	switch l.Kind {
	case Contig:
		return l.Count * l.ElSize
	case Vector:
		return l.Count * l.BlockLen * l.ElSize
	case BlockIndexed:
		return int64(len(l.Offsets)) * l.BlockLen * l.ElSize
	case Indexed:
		var n int64
		for _, bl := range l.BlockLens {
			n += bl
		}
		return n * l.ElSize
	case Struct:
		var n int64
		for _, c := range l.Children {
			n += c.Size
		}
		return n
	}
	panic("dataloop: unknown kind")
}
