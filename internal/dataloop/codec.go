package dataloop

import (
	"encoding/binary"
	"fmt"
)

// Wire format (little endian). Each node:
//
//	u8  kind
//	u8  flags (bit 0: has child / has children)
//	i64 count
//	i64 elsize, i64 elextent
//	i64 size, i64 extent
//	kind-specific:
//	  vector:        i64 blocklen, i64 stride
//	  blockindexed:  i64 blocklen, u32 n, n×i64 offsets
//	  indexed:       u32 n, n×i64 blocklens, n×i64 offsets
//	  struct:        u32 n, n×i64 offsets, then n child nodes
//	child node follows for non-struct non-leaf loops.
//
// The encoding is the "concise datatype representation" shipped inside
// datatype I/O requests; its small size relative to flattened
// offset-length lists is the point of the paper.

const flagChild = 1

// EncodedSize reports the exact number of bytes Encode will produce.
func (l *Loop) EncodedSize() int {
	n := 1 + 1 + 5*8
	switch l.Kind {
	case Vector:
		n += 16
	case BlockIndexed:
		n += 8 + 4 + 8*len(l.Offsets)
	case Indexed:
		n += 4 + 16*len(l.Offsets)
	case Struct:
		n += 4 + 8*len(l.Offsets)
		for _, c := range l.Children {
			n += c.EncodedSize()
		}
		return n
	}
	if l.Child != nil {
		n += l.Child.EncodedSize()
	}
	return n
}

// Encode appends the wire encoding of the loop to dst and returns the
// extended slice.
func (l *Loop) Encode(dst []byte) []byte {
	var flags byte
	if l.Child != nil || l.Children != nil {
		flags |= flagChild
	}
	dst = append(dst, byte(l.Kind), flags)
	dst = appendI64(dst, l.Count)
	dst = appendI64(dst, l.ElSize)
	dst = appendI64(dst, l.ElExtent)
	dst = appendI64(dst, l.Size)
	dst = appendI64(dst, l.Extent)
	switch l.Kind {
	case Vector:
		dst = appendI64(dst, l.BlockLen)
		dst = appendI64(dst, l.Stride)
	case BlockIndexed:
		dst = appendI64(dst, l.BlockLen)
		dst = appendU32(dst, uint32(len(l.Offsets)))
		for _, o := range l.Offsets {
			dst = appendI64(dst, o)
		}
	case Indexed:
		dst = appendU32(dst, uint32(len(l.Offsets)))
		for _, b := range l.BlockLens {
			dst = appendI64(dst, b)
		}
		for _, o := range l.Offsets {
			dst = appendI64(dst, o)
		}
	case Struct:
		dst = appendU32(dst, uint32(len(l.Offsets)))
		for _, o := range l.Offsets {
			dst = appendI64(dst, o)
		}
		for _, c := range l.Children {
			dst = c.Encode(dst)
		}
		return dst
	}
	if l.Child != nil {
		dst = l.Child.Encode(dst)
	}
	return dst
}

// Decode parses a loop from b, validates it, and returns it along with
// the number of bytes consumed.
func Decode(b []byte) (*Loop, int, error) {
	l, n, err := decode(b, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := l.Validate(); err != nil {
		return nil, 0, err
	}
	return l, n, nil
}

// maxListLen bounds decoded offset lists; dataloop requests are supposed
// to be concise, and this protects servers from hostile allocations.
const maxListLen = 1 << 22

func decode(b []byte, depth int) (*Loop, int, error) {
	if depth > maxDepth {
		return nil, 0, fmt.Errorf("dataloop: decode nesting deeper than %d", maxDepth)
	}
	if len(b) < 2+5*8 {
		return nil, 0, fmt.Errorf("dataloop: truncated node header")
	}
	l := &Loop{Kind: Kind(b[0])}
	if l.Kind > Struct {
		return nil, 0, fmt.Errorf("dataloop: unknown kind %d", b[0])
	}
	flags := b[1]
	p := 2
	l.Count = readI64(b, &p)
	l.ElSize = readI64(b, &p)
	l.ElExtent = readI64(b, &p)
	l.Size = readI64(b, &p)
	l.Extent = readI64(b, &p)
	switch l.Kind {
	case Vector:
		if len(b) < p+16 {
			return nil, 0, fmt.Errorf("dataloop: truncated vector node")
		}
		l.BlockLen = readI64(b, &p)
		l.Stride = readI64(b, &p)
	case BlockIndexed:
		if len(b) < p+12 {
			return nil, 0, fmt.Errorf("dataloop: truncated blockindexed node")
		}
		l.BlockLen = readI64(b, &p)
		n := int(readU32(b, &p))
		if n > maxListLen || len(b) < p+8*n {
			return nil, 0, fmt.Errorf("dataloop: bad blockindexed offset list")
		}
		l.Offsets = make([]int64, n)
		for i := range l.Offsets {
			l.Offsets[i] = readI64(b, &p)
		}
		l.Count = int64(n)
	case Indexed:
		if len(b) < p+4 {
			return nil, 0, fmt.Errorf("dataloop: truncated indexed node")
		}
		n := int(readU32(b, &p))
		if n > maxListLen || len(b) < p+16*n {
			return nil, 0, fmt.Errorf("dataloop: bad indexed lists")
		}
		l.BlockLens = make([]int64, n)
		for i := range l.BlockLens {
			l.BlockLens[i] = readI64(b, &p)
		}
		l.Offsets = make([]int64, n)
		for i := range l.Offsets {
			l.Offsets[i] = readI64(b, &p)
		}
		l.Count = int64(n)
	case Struct:
		if len(b) < p+4 {
			return nil, 0, fmt.Errorf("dataloop: truncated struct node")
		}
		n := int(readU32(b, &p))
		if n > maxListLen || len(b) < p+8*n {
			return nil, 0, fmt.Errorf("dataloop: bad struct offset list")
		}
		l.Offsets = make([]int64, n)
		for i := range l.Offsets {
			l.Offsets[i] = readI64(b, &p)
		}
		l.Count = int64(n)
		l.Children = make([]*Loop, n)
		for i := range l.Children {
			c, used, err := decode(b[p:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			l.Children[i] = c
			p += used
		}
		return l, p, nil
	}
	if flags&flagChild != 0 {
		c, used, err := decode(b[p:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		l.Child = c
		p += used
	}
	return l, p, nil
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func readI64(b []byte, p *int) int64 {
	v := int64(binary.LittleEndian.Uint64(b[*p:]))
	*p += 8
	return v
}

func readU32(b []byte, p *int) uint32 {
	v := binary.LittleEndian.Uint32(b[*p:])
	*p += 4
	return v
}
