package locks

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestExclusiveConflictQueuesFIFO(t *testing.T) {
	m := NewManager(0)
	id1, ok, wake := m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 100, Owner: 1})
	if !ok || len(wake) != 0 {
		t.Fatalf("first acquire: ok=%v wake=%v", ok, wake)
	}
	id2, ok, _ := m.Acquire(ms(1), Req{Handle: 1, Off: 50, N: 100, Owner: 2, Ctx: "b"})
	if ok {
		t.Fatal("overlapping exclusive acquired immediately")
	}
	id3, ok, _ := m.Acquire(ms(2), Req{Handle: 1, Off: 60, N: 10, Owner: 3, Ctx: "c"})
	if ok {
		t.Fatal("third overlapping exclusive acquired immediately")
	}
	ok, wake = m.Release(ms(10), 1, id1, 1)
	if !ok {
		t.Fatal("release failed")
	}
	// FIFO: only the second request is granted; the third conflicts with it.
	if len(wake) != 1 || wake[0].ID != id2 || wake[0].Ctx != "b" || wake[0].Waited != ms(9) {
		t.Fatalf("wake=%+v", wake)
	}
	ok, wake = m.Release(ms(20), 1, id2, 2)
	if !ok || len(wake) != 1 || wake[0].ID != id3 {
		t.Fatalf("second release: ok=%v wake=%+v", ok, wake)
	}
	if s := m.Stats(); s.Held != 1 || s.Queued != 0 || s.Waits != 2 || s.Immediate != 1 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(0)
	_, ok1, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 100, Shared: true, Owner: 1})
	_, ok2, _ := m.Acquire(0, Req{Handle: 1, Off: 50, N: 100, Shared: true, Owner: 2})
	if !ok1 || !ok2 {
		t.Fatal("overlapping shared locks should both be granted")
	}
	// An exclusive overlap waits; a later shared overlap must queue
	// behind it (no reader starvation of the writer).
	_, ok3, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 10, Owner: 3})
	if ok3 {
		t.Fatal("exclusive granted over shared holders")
	}
	_, ok4, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 10, Shared: true, Owner: 4})
	if ok4 {
		t.Fatal("shared request jumped the queued writer")
	}
	if s := m.Stats(); s.Held != 2 || s.Queued != 2 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestDisjointRangesAndFilesIndependent(t *testing.T) {
	m := NewManager(0)
	_, ok1, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 100, Owner: 1})
	_, ok2, _ := m.Acquire(0, Req{Handle: 1, Off: 100, N: 100, Owner: 2})
	_, ok3, _ := m.Acquire(0, Req{Handle: 2, Off: 0, N: 100, Owner: 3})
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("independent ranges blocked: %v %v %v", ok1, ok2, ok3)
	}
}

func TestLeaseExpiryRescuesWaiter(t *testing.T) {
	m := NewManager(ms(10))
	_, ok, _ := m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 64, Owner: 1})
	if !ok {
		t.Fatal("first acquire")
	}
	id2, ok, _ := m.Acquire(ms(5), Req{Handle: 1, Off: 0, N: 64, Owner: 2, Ctx: "w"})
	if ok {
		t.Fatal("conflicting acquire granted")
	}
	// Before the lease deadline nothing expires.
	if wake := m.Sweep(ms(9)); len(wake) != 0 {
		t.Fatalf("premature expiry: %+v", wake)
	}
	wake := m.Sweep(ms(10))
	if len(wake) != 1 || wake[0].ID != id2 || wake[0].Waited != ms(5) {
		t.Fatalf("wake=%+v", wake)
	}
	if s := m.Stats(); s.Expired != 1 || s.Held != 1 || s.Queued != 0 {
		t.Fatalf("stats=%+v", s)
	}
	// The expired lock is gone: releasing it now fails.
	if ok, _ := m.Release(ms(11), 1, 1, 1); ok {
		t.Fatal("released an expired lock")
	}
}

func TestLazyExpiryOnAcquire(t *testing.T) {
	m := NewManager(ms(10))
	m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 64, Owner: 1})
	// Well past the lease, a new acquire sweeps the stale lock itself.
	id2, ok, wake := m.Acquire(ms(50), Req{Handle: 1, Off: 0, N: 64, Owner: 2})
	if !ok || id2 == 0 || len(wake) != 0 {
		t.Fatalf("acquire after expiry: ok=%v wake=%+v", ok, wake)
	}
}

func TestReleaseOwnerDropsLocksAndWaits(t *testing.T) {
	m := NewManager(0)
	m.Acquire(0, Req{Handle: 1, Off: 0, N: 100, Owner: 1})
	m.Acquire(0, Req{Handle: 2, Off: 0, N: 100, Owner: 1})
	id3, ok, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 50, Owner: 2, Ctx: "x"})
	if ok {
		t.Fatal("conflicting acquire granted")
	}
	m.Acquire(0, Req{Handle: 2, Off: 0, N: 50, Owner: 2}) // queued, then owner 2 also dies
	wake := m.ReleaseOwner(ms(3), 1)
	// Owner 1's two locks vanish; owner 2's waiter on handle 1 is granted.
	found := false
	for _, g := range wake {
		if g.ID == id3 && g.Err == "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("waiter not promoted after owner drop: %+v", wake)
	}
	wake = m.ReleaseOwner(ms(4), 2)
	if len(wake) != 0 {
		t.Fatalf("unexpected wake=%+v", wake)
	}
	if s := m.Stats(); s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
}

func TestDropHandleFailsWaiters(t *testing.T) {
	m := NewManager(0)
	m.Acquire(0, Req{Handle: 7, Off: 0, N: 10, Owner: 1})
	id2, ok, _ := m.Acquire(0, Req{Handle: 7, Off: 0, N: 10, Owner: 2, Ctx: "w"})
	if ok {
		t.Fatal("conflicting acquire granted")
	}
	wake := m.DropHandle(ms(1), 7)
	if len(wake) != 1 || wake[0].ID != id2 || wake[0].Err == "" {
		t.Fatalf("wake=%+v", wake)
	}
	if s := m.Stats(); s.Held != 0 || s.Queued != 0 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestReleaseWrongOwnerOrIDRejected(t *testing.T) {
	m := NewManager(0)
	id, _, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 10, Owner: 1})
	if ok, _ := m.Release(0, 1, id, 99); ok {
		t.Fatal("foreign owner released the lock")
	}
	if ok, _ := m.Release(0, 1, id+100, 1); ok {
		t.Fatal("bogus id released a lock")
	}
	if ok, _ := m.Release(0, 99, id, 1); ok {
		t.Fatal("bogus handle released a lock")
	}
	if ok, _ := m.Release(0, 1, id, 1); !ok {
		t.Fatal("rightful release failed")
	}
}

func TestWatchdogProtocol(t *testing.T) {
	m := NewManager(ms(10))
	// No waiters: nothing to arm.
	if _, ok := m.ArmWatchdog(); ok {
		t.Fatal("armed with no waiters")
	}
	m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 10, Owner: 1})
	if _, ok := m.ArmWatchdog(); ok {
		t.Fatal("armed with no waiters behind the lock")
	}
	id2, _, _ := m.Acquire(ms(2), Req{Handle: 1, Off: 0, N: 10, Owner: 2, Ctx: "w"})
	at, ok := m.ArmWatchdog()
	if !ok || at != ms(10) {
		t.Fatalf("arm: at=%v ok=%v", at, ok)
	}
	// Second arm while one is pending: refused.
	if _, ok := m.ArmWatchdog(); ok {
		t.Fatal("double-armed")
	}
	// Fired early (a host whose clock did not reach the deadline): no
	// sweep, disarmed.
	wake, _, again := m.WatchdogFire(ms(5))
	if len(wake) != 0 || again {
		t.Fatalf("early fire: wake=%+v again=%v", wake, again)
	}
	at, ok = m.ArmWatchdog()
	if !ok || at != ms(10) {
		t.Fatalf("re-arm: at=%v ok=%v", at, ok)
	}
	wake, _, again = m.WatchdogFire(ms(10))
	if len(wake) != 1 || wake[0].ID != id2 {
		t.Fatalf("fire: wake=%+v", wake)
	}
	// The promoted waiter holds the only lock and nobody waits: done.
	if again {
		t.Fatal("watchdog re-armed with no waiters")
	}
}

func TestPromotionRespectsPhantomConflicts(t *testing.T) {
	// queue: W1 [0,100) excl, W2 [200,300) excl, W3 [50,250) excl.
	// Releasing the blocker grants W1 and W2 (disjoint), but W3 must
	// stay queued: it conflicts with both earlier grants.
	m := NewManager(0)
	id0, _, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 300, Owner: 1})
	id1, _, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 100, Owner: 2})
	id2, _, _ := m.Acquire(0, Req{Handle: 1, Off: 200, N: 100, Owner: 3})
	id3, _, _ := m.Acquire(0, Req{Handle: 1, Off: 50, N: 200, Owner: 4})
	_, wake := m.Release(ms(1), 1, id0, 1)
	got := map[uint64]bool{}
	for _, g := range wake {
		got[g.ID] = true
	}
	if !got[id1] || !got[id2] || got[id3] || len(wake) != 2 {
		t.Fatalf("wake=%+v", wake)
	}
	if s := m.Stats(); s.Held != 2 || s.Queued != 1 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestRevocationOnQueuedConflict(t *testing.T) {
	m := NewManager(0)
	idA, ok, _ := m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 100, Owner: 1, Revocable: true, Ctx: "leaseA"})
	if !ok {
		t.Fatal("revocable lease not granted on free range")
	}
	if rv := m.TakeRevocations(); len(rv) != 0 {
		t.Fatalf("revocations before any conflict: %+v", rv)
	}
	// A conflicting request queues and must revoke the lease blocking it.
	_, ok, _ = m.Acquire(ms(1), Req{Handle: 1, Off: 50, N: 100, Owner: 2, Ctx: "req"})
	if ok {
		t.Fatal("conflicting exclusive acquired over the lease")
	}
	rv := m.TakeRevocations()
	if len(rv) != 1 || rv[0].ID != idA || rv[0].Handle != 1 || rv[0].Ctx != "leaseA" {
		t.Fatalf("revocations=%+v, want the blocking lease", rv)
	}
	if rv[0].Off != 0 || rv[0].N != 100 {
		t.Fatalf("revocation range [%d,+%d), want the lease's [0,+100)", rv[0].Off, rv[0].N)
	}
	// Drained; a second conflicting request must not re-revoke.
	_, ok, _ = m.Acquire(ms(2), Req{Handle: 1, Off: 0, N: 10, Owner: 3})
	if ok {
		t.Fatal("third request acquired over the lease")
	}
	if rv := m.TakeRevocations(); len(rv) != 0 {
		t.Fatalf("lease revoked twice: %+v", rv)
	}
	if s := m.Stats(); s.Revocations != 1 {
		t.Fatalf("stats.Revocations = %d, want 1", s.Revocations)
	}
	// Release is the revoke-ack: both queued requests (disjoint from
	// each other) are granted, FIFO head first.
	ok, wake := m.Release(ms(5), 1, idA, 1)
	if !ok || len(wake) != 2 || wake[0].Ctx != "req" {
		t.Fatalf("release: ok=%v wake=%+v", ok, wake)
	}
}

func TestRevocationOnPromotion(t *testing.T) {
	m := NewManager(0)
	// Non-revocable holder, then a queued revocable lease request, then a
	// queued conflicting request behind it.
	idHold, ok, _ := m.Acquire(ms(0), Req{Handle: 1, Off: 0, N: 100, Owner: 1})
	if !ok {
		t.Fatal("holder not granted")
	}
	idLease, ok, _ := m.Acquire(ms(1), Req{Handle: 1, Off: 0, N: 100, Owner: 2, Revocable: true, Ctx: "lease"})
	if ok {
		t.Fatal("lease request granted over holder")
	}
	_, ok, _ = m.Acquire(ms(2), Req{Handle: 1, Off: 0, N: 100, Owner: 3, Ctx: "waiter"})
	if ok {
		t.Fatal("waiter granted over holder")
	}
	m.TakeRevocations() // queue-time revocations target nothing revocable yet
	// Releasing the holder promotes the lease — which is immediately
	// revoked because a conflicting waiter is still queued behind it.
	ok, wake := m.Release(ms(3), 1, idHold, 1)
	if !ok || len(wake) != 1 || wake[0].ID != idLease {
		t.Fatalf("release: ok=%v wake=%+v", ok, wake)
	}
	rv := m.TakeRevocations()
	if len(rv) != 1 || rv[0].ID != idLease || rv[0].Ctx != "lease" {
		t.Fatalf("promotion revocations=%+v, want the just-granted lease", rv)
	}
}

func TestSharedLeasesRevokedTogether(t *testing.T) {
	m := NewManager(0)
	id1, ok1, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 100, Shared: true, Owner: 1, Revocable: true, Ctx: "r1"})
	id2, ok2, _ := m.Acquire(0, Req{Handle: 1, Off: 50, N: 100, Shared: true, Owner: 2, Revocable: true, Ctx: "r2"})
	if !ok1 || !ok2 {
		t.Fatal("shared leases not granted")
	}
	// A writer queuing over both must revoke both.
	_, ok, _ := m.Acquire(0, Req{Handle: 1, Off: 0, N: 150, Owner: 3})
	if ok {
		t.Fatal("writer granted over shared leases")
	}
	rv := m.TakeRevocations()
	if len(rv) != 2 {
		t.Fatalf("revocations=%+v, want both shared leases", rv)
	}
	seen := map[uint64]bool{rv[0].ID: true, rv[1].ID: true}
	if !seen[id1] || !seen[id2] {
		t.Fatalf("revoked ids %v, want %d and %d", seen, id1, id2)
	}
	// A shared request over a shared lease coexists: no revocation.
	_, _, _ = m.Acquire(0, Req{Handle: 2, Off: 0, N: 10, Shared: true, Owner: 4, Revocable: true})
	_, ok, _ = m.Acquire(0, Req{Handle: 2, Off: 0, N: 10, Shared: true, Owner: 5})
	if !ok {
		t.Fatal("shared over shared lease should coexist")
	}
	if rv := m.TakeRevocations(); len(rv) != 0 {
		t.Fatalf("shared reader revoked a shared lease: %+v", rv)
	}
}
