// Package locks implements a byte-range lock service for PVFS files,
// the missing piece the paper (§4.1) cites for dropping data-sieving
// writes from its comparison: a read-modify-write needs its window
// locked, and PVFS provides no locking. The Manager is hosted by the
// metadata server so every range is ordered at a single authority (the
// design argued for in "Noncontiguous I/O through PVFS").
//
// Semantics:
//
//   - A lock covers the byte range [Off, Off+N) of one file handle.
//     Shared locks conflict only with overlapping exclusive locks;
//     exclusive locks conflict with any overlap.
//   - Grants are FIFO-fair per file: a request that conflicts with a
//     granted lock — or with an earlier request still queued — waits
//     behind it. A reader stream can therefore not starve a writer.
//   - Every granted lock carries a lease. If the configured lease
//     duration elapses before release, the lock is reclaimed and its
//     range handed to waiters, so a crashed client cannot wedge the
//     cluster. Expiry is lazy (checked against the caller-supplied
//     clock on every operation) plus an optional host-driven sweep.
//
// The Manager is passive about time: callers pass `now` explicitly, so
// the same code serves wall-clock daemons and the virtual-time
// simulator. All methods are safe for concurrent use. Methods never
// invoke callbacks while holding internal state: wake-ups are returned
// as values for the host to deliver, which keeps the Manager safe to
// drive from cooperative schedulers.
package locks

import (
	"sort"
	"sync"
	"time"
)

// Req describes one acquisition request.
type Req struct {
	Handle uint64 // file handle the range belongs to
	Off    int64  // first byte of the range
	N      int64  // length in bytes (must be positive)
	Shared bool   // read lock; compatible with other shared locks
	Owner  uint64 // requesting connection/client identity
	Ctx    any    // opaque host context, returned with the grant
	// Revocable marks a cache lease: when a later request conflicts
	// with this lock while it is granted, the Manager reports a
	// Revocation (see TakeRevocations) instead of leaving the requester
	// to wait out the holder's lease. The holder is expected to flush
	// and release; the release then promotes the waiter as usual.
	Revocable bool
}

// Granted reports a queued request whose wait just ended: either its
// lock was granted (Err == "") or the wait failed (for example the file
// was removed). The host delivers these to the waiting clients.
type Granted struct {
	ID     uint64
	Ctx    any
	Waited time.Duration // time spent queued
	Err    string        // non-empty: the wait failed; no lock is held
}

// lock is one granted range.
type lock struct {
	id        uint64
	owner     uint64
	off, n    int64
	shared    bool
	expiry    time.Duration // reclaim deadline; 0 = no lease
	ctx       any           // host context of the grant (revocation delivery)
	revocable bool
	revoked   bool // a revocation has already been reported
}

// Revocation asks the host to tell the holder of a revocable granted
// lock to flush and release it, because a conflicting request is now
// queued behind it. Each granted lock is reported at most once.
type Revocation struct {
	Handle uint64
	ID     uint64
	Off    int64
	N      int64
	Ctx    any // the holder's grant context
}

// waiter is one queued request.
type waiter struct {
	lock
	ctx any
	enq time.Duration
}

// table holds one file's lock state: granted ranges sorted by offset
// (the sorted-range table) and the FIFO wait queue.
type table struct {
	granted []*lock
	queue   []*waiter
}

// Stats is a snapshot of the Manager's counters.
type Stats struct {
	Acquires    int64         // acquisition requests accepted
	Immediate   int64         // granted without queuing
	Waits       int64         // requests that queued
	WaitTime    time.Duration // total queued time of completed waits
	Expired     int64         // leases reclaimed
	Releases    int64         // explicit releases
	Revocations int64         // cache-lease revocations reported
	Held        int           // currently granted locks
	Queued      int           // currently queued requests
	Tables      int           // files with live lock state
	MaxQueue    int           // deepest per-file wait queue right now
}

// Add combines two snapshots (summing a partitioned lock service's
// per-shard counters; MaxQueue takes the max, as it is a depth).
func (s Stats) Add(o Stats) Stats {
	s.Acquires += o.Acquires
	s.Immediate += o.Immediate
	s.Waits += o.Waits
	s.WaitTime += o.WaitTime
	s.Expired += o.Expired
	s.Releases += o.Releases
	s.Revocations += o.Revocations
	s.Held += o.Held
	s.Queued += o.Queued
	s.Tables += o.Tables
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
	return s
}

// Manager is the lock service state. The zero value is not usable; call
// NewManager.
type Manager struct {
	mu     sync.Mutex
	lease  time.Duration
	nextID uint64
	stride uint64 // id allocation step (shard count; 1 unsharded)
	files  map[uint64]*table

	acquires    int64
	immediate   int64
	waits       int64
	waitTime    time.Duration
	expired     int64
	releases    int64
	revocations int64

	// pending holds revocations produced by Acquire/promote until the
	// host drains them with TakeRevocations (same return-as-values
	// discipline as wake lists, kept separate so existing Acquire call
	// sites stay untouched).
	pending []Revocation

	// watchdog tracks the host's pending lease sweep (see ArmWatchdog).
	watchdogArmed bool
	watchdogAt    time.Duration
}

// NewManager creates a Manager whose granted locks expire after lease
// (<= 0 disables expiry: locks are held until released or the owner is
// dropped).
func NewManager(lease time.Duration) *Manager {
	return &Manager{lease: lease, nextID: 1, stride: 1, files: make(map[uint64]*table)}
}

// SetIDRange makes this Manager allocate lock ids from the strided
// sequence base, base+stride, … A partitioned lock service gives shard
// i the range (i+1, stride=N) so ids are unique cluster-wide: clients
// key lease state by bare lock id, and two shards must never hand out
// the same one. Call before any Acquire; (1, 1) is the unsharded
// default.
func (m *Manager) SetIDRange(base, stride uint64) {
	if base == 0 || stride == 0 {
		panic("locks: id base and stride must be positive")
	}
	m.mu.Lock()
	m.nextID, m.stride = base, stride
	m.mu.Unlock()
}

// SetLease changes the lease duration for locks granted from now on.
func (m *Manager) SetLease(lease time.Duration) {
	m.mu.Lock()
	m.lease = lease
	m.mu.Unlock()
}

// Lease reports the configured lease duration.
func (m *Manager) Lease() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lease
}

// conflicts reports whether two ranges are incompatible.
func conflicts(aOff, aN int64, aShared bool, bOff, bN int64, bShared bool) bool {
	if aShared && bShared {
		return false
	}
	return aOff < bOff+bN && bOff < aOff+aN
}

func (l *lock) conflictsWith(off, n int64, shared bool) bool {
	return conflicts(l.off, l.n, l.shared, off, n, shared)
}

// insertGranted keeps the granted table sorted by offset.
func (t *table) insertGranted(l *lock) {
	i := sort.Search(len(t.granted), func(i int) bool { return t.granted[i].off > l.off })
	t.granted = append(t.granted, nil)
	copy(t.granted[i+1:], t.granted[i:])
	t.granted[i] = l
}

// grantedConflict scans the sorted table for a conflicting granted
// lock. The table is sorted by offset but ranges vary in length, so the
// scan stops only once every remaining lock starts at or past the end
// of the probe range and the probe is known clear.
func (t *table) grantedConflict(off, n int64, shared bool) bool {
	for _, l := range t.granted {
		if l.off >= off+n {
			return false
		}
		if l.conflictsWith(off, n, shared) {
			return true
		}
	}
	return false
}

// removeGranted drops the lock with the given id; reports whether it
// was present.
func (t *table) removeGranted(id uint64) bool {
	for i, l := range t.granted {
		if l.id == id {
			t.granted = append(t.granted[:i], t.granted[i+1:]...)
			return true
		}
	}
	return false
}

// sweepLocked reclaims expired leases across all files; must hold m.mu.
func (m *Manager) sweepLocked(now time.Duration) (wake []Granted) {
	for h, t := range m.files {
		changed := false
		kept := t.granted[:0]
		for _, l := range t.granted {
			if l.expiry > 0 && now >= l.expiry {
				m.expired++
				changed = true
				continue
			}
			kept = append(kept, l)
		}
		t.granted = kept
		if changed {
			wake = append(wake, m.promoteLocked(t, h, now)...)
		}
		if len(t.granted) == 0 && len(t.queue) == 0 {
			delete(m.files, h)
		}
	}
	return wake
}

// promoteLocked grants queued requests in FIFO order: a waiter is
// granted only if it conflicts with no granted lock and with no earlier
// waiter still in the queue (earlier waiters act as phantom grants, the
// rule that keeps the queue starvation-free). Must hold m.mu.
func (m *Manager) promoteLocked(t *table, handle uint64, now time.Duration) (wake []Granted) {
	var blocked []*waiter
	kept := t.queue[:0]
	for _, w := range t.queue {
		wait := func() {
			kept = append(kept, w)
			blocked = append(blocked, w)
		}
		if t.grantedConflict(w.off, w.n, w.shared) {
			wait()
			continue
		}
		earlier := false
		for _, b := range blocked {
			if b.conflictsWith(w.off, w.n, w.shared) {
				earlier = true
				break
			}
		}
		if earlier {
			wait()
			continue
		}
		l := w.lock
		l.ctx = w.ctx
		if m.lease > 0 {
			l.expiry = now + m.lease
		}
		cp := l
		t.insertGranted(&cp)
		m.waitTime += now - w.enq
		wake = append(wake, Granted{ID: l.id, Ctx: w.ctx, Waited: now - w.enq})
	}
	t.queue = kept
	// A revocable lock granted while conflicting requests remain queued
	// must be revoked right away, or the waiters would sit behind a
	// cache lease that its holder has no reason to give up.
	for _, w := range t.queue {
		m.revokeBlockersLocked(t, handle, w.off, w.n, w.shared)
	}
	return wake
}

// revokeBlockersLocked reports (once each) every granted revocable lock
// that conflicts with the given range. Must hold m.mu.
func (m *Manager) revokeBlockersLocked(t *table, handle uint64, off, n int64, shared bool) {
	for _, l := range t.granted {
		if l.revocable && !l.revoked && l.conflictsWith(off, n, shared) {
			l.revoked = true
			m.revocations++
			m.pending = append(m.pending, Revocation{Handle: handle, ID: l.id, Off: l.off, N: l.n, Ctx: l.ctx})
		}
	}
}

// TakeRevocations drains the pending revocation list. Hosts call it
// after any operation that may queue requests (Acquire, Release,
// Sweep) and deliver each revocation to its holder.
func (m *Manager) TakeRevocations() []Revocation {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pending
	m.pending = nil
	return p
}

// Acquire requests a byte-range lock. If the range is free the lock is
// granted immediately (granted == true, id identifies it); otherwise the
// request joins the file's FIFO queue and the host delivers a Granted
// later. Expired leases are swept first, so wake may carry grants for
// other waiters either way.
func (m *Manager) Acquire(now time.Duration, r Req) (id uint64, granted bool, wake []Granted) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wake = m.sweepLocked(now)
	m.acquires++
	t := m.files[r.Handle]
	if t == nil {
		t = &table{}
		m.files[r.Handle] = t
	}
	id = m.nextID
	m.nextID += m.stride
	l := lock{id: id, owner: r.Owner, off: r.Off, n: r.N, shared: r.Shared, ctx: r.Ctx, revocable: r.Revocable}
	free := !t.grantedConflict(r.Off, r.N, r.Shared)
	if free {
		for _, w := range t.queue {
			if w.conflictsWith(r.Off, r.N, r.Shared) {
				free = false
				break
			}
		}
	}
	if free {
		if m.lease > 0 {
			l.expiry = now + m.lease
		}
		t.insertGranted(&l)
		m.immediate++
		return id, true, wake
	}
	m.waits++
	t.queue = append(t.queue, &waiter{lock: l, ctx: r.Ctx, enq: now})
	m.revokeBlockersLocked(t, r.Handle, r.Off, r.N, r.Shared)
	return id, false, wake
}

// Release drops a granted lock. ok reports whether (handle, id, owner)
// named a granted lock; wake carries any requests grantable now.
func (m *Manager) Release(now time.Duration, handle, id, owner uint64) (ok bool, wake []Granted) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wake = m.sweepLocked(now)
	t := m.files[handle]
	if t == nil {
		return false, wake
	}
	for _, l := range t.granted {
		if l.id == id {
			if l.owner != owner {
				return false, wake
			}
			break
		}
	}
	if !t.removeGranted(id) {
		return false, wake
	}
	m.releases++
	wake = append(wake, m.promoteLocked(t, handle, now)...)
	if len(t.granted) == 0 && len(t.queue) == 0 {
		delete(m.files, handle)
	}
	return true, wake
}

// ReleaseOwner drops every granted lock and queued request of owner (a
// disconnected client). Queued requests vanish silently — their
// connection is gone, there is nobody to notify.
func (m *Manager) ReleaseOwner(now time.Duration, owner uint64) (wake []Granted) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wake = m.sweepLocked(now)
	for h, t := range m.files {
		changed := false
		keptG := t.granted[:0]
		for _, l := range t.granted {
			if l.owner == owner {
				m.releases++
				changed = true
				continue
			}
			keptG = append(keptG, l)
		}
		t.granted = keptG
		keptQ := t.queue[:0]
		for _, w := range t.queue {
			if w.owner == owner {
				changed = true
				continue
			}
			keptQ = append(keptQ, w)
		}
		t.queue = keptQ
		if changed {
			wake = append(wake, m.promoteLocked(t, h, now)...)
		}
		if len(t.granted) == 0 && len(t.queue) == 0 {
			delete(m.files, h)
		}
	}
	return wake
}

// DropHandle clears a removed file's lock state. Queued requests are
// failed (Err set) so their clients do not wait forever.
func (m *Manager) DropHandle(now time.Duration, handle uint64) (wake []Granted) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wake = m.sweepLocked(now)
	t := m.files[handle]
	if t == nil {
		return wake
	}
	for _, w := range t.queue {
		wake = append(wake, Granted{ID: w.id, Ctx: w.ctx, Waited: now - w.enq, Err: "file removed while waiting for lock"})
	}
	delete(m.files, handle)
	return wake
}

// Sweep reclaims expired leases and reports the resulting grants. Hosts
// call it from their lease watchdog; every other operation also sweeps,
// so traffic alone keeps leases honest.
func (m *Manager) Sweep(now time.Duration) (wake []Granted) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(now)
}

// nextDeadlineLocked reports the earliest lease expiry among granted
// locks of files with waiters; ok is false when no wait is pending or
// leases are disabled. Must hold m.mu.
func (m *Manager) nextDeadlineLocked() (at time.Duration, ok bool) {
	for _, t := range m.files {
		if len(t.queue) == 0 {
			continue
		}
		for _, l := range t.granted {
			if l.expiry > 0 && (!ok || l.expiry < at) {
				at, ok = l.expiry, true
			}
		}
	}
	return at, ok
}

// ArmWatchdog asks whether the host should schedule a lease sweep: it
// returns the earliest relevant expiry when requests are waiting behind
// leased locks and no sweep is already scheduled. The host sleeps until
// `at` and then calls WatchdogFire. At most one watchdog is armed at a
// time.
func (m *Manager) ArmWatchdog() (at time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.watchdogArmed {
		return 0, false
	}
	at, ok = m.nextDeadlineLocked()
	if ok {
		m.watchdogArmed = true
		m.watchdogAt = at
	}
	return at, ok
}

// WatchdogFire runs the armed sweep. If now has not reached the target
// deadline (a host whose Sleep cannot advance time), the watchdog
// disarms without sweeping — lazy expiry on later traffic takes over.
// again reports whether the host should sleep until next and fire
// again.
func (m *Manager) WatchdogFire(now time.Duration) (wake []Granted, next time.Duration, again bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.watchdogArmed {
		return nil, 0, false
	}
	m.watchdogArmed = false
	if now < m.watchdogAt {
		return nil, 0, false
	}
	wake = m.sweepLocked(now)
	next, again = m.nextDeadlineLocked()
	if again {
		m.watchdogArmed = true
		m.watchdogAt = next
	}
	return wake, next, again
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Acquires:    m.acquires,
		Immediate:   m.immediate,
		Waits:       m.waits,
		WaitTime:    m.waitTime,
		Expired:     m.expired,
		Releases:    m.releases,
		Revocations: m.revocations,
	}
	s.Tables = len(m.files)
	for _, t := range m.files {
		s.Held += len(t.granted)
		s.Queued += len(t.queue)
		if len(t.queue) > s.MaxQueue {
			s.MaxQueue = len(t.queue)
		}
	}
	return s
}
