package vtime

import (
	"testing"
	"time"
)

func TestGetTimeoutExpires(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	s.Go("a", func(p *Proc) {
		v, ok, timedOut := m.GetTimeout(p, 10*time.Millisecond)
		if v != nil || ok || !timedOut {
			t.Errorf("got (%v, %v, %v), want timeout", v, ok, timedOut)
		}
		if p.Now() != 10*time.Millisecond {
			t.Errorf("timed out at %v, want 10ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGetTimeoutDelivers(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	s.Go("sender", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		m.Put("msg")
	})
	s.Go("recv", func(p *Proc) {
		v, ok, timedOut := m.GetTimeout(p, 10*time.Millisecond)
		if v != "msg" || !ok || timedOut {
			t.Errorf("got (%v, %v, %v), want (msg, true, false)", v, ok, timedOut)
		}
		if p.Now() != 3*time.Millisecond {
			t.Errorf("delivered at %v, want 3ms", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// A message arriving at exactly the deadline loses the FIFO tie-break to
// the earlier-scheduled timer, but must stay queued — never be eaten by
// the stale wake targeting the timed-out waiter.
func TestGetTimeoutTieKeepsMessage(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	s.Go("recv", func(p *Proc) {
		_, ok, timedOut := m.GetTimeout(p, 5*time.Millisecond)
		if ok || !timedOut {
			t.Errorf("want deterministic timeout on the tie, got ok=%v timedOut=%v", ok, timedOut)
		}
		v, ok := m.Get(p)
		if !ok || v != "tie" {
			t.Errorf("tie message lost: got (%v, %v)", v, ok)
		}
	})
	s.Go("sender", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		m.Put("tie")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// After a timed-out Get, a later Put must not be consumed by the stale
// wait: the value goes to the next Get and the timed-out proc is no
// longer a waiter.
func TestGetTimeoutWithdrawsWaiter(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	var got any
	s.Go("recv", func(p *Proc) {
		if _, _, timedOut := m.GetTimeout(p, 2*time.Millisecond); !timedOut {
			t.Error("want timeout")
		}
		// Re-arm: the late message must reach this fresh Get.
		v, ok := m.Get(p)
		if !ok {
			t.Error("second get failed")
		}
		got = v
	})
	s.Go("sender", func(p *Proc) {
		p.Sleep(8 * time.Millisecond)
		m.Put("late")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "late" {
		t.Fatalf("got %v, want late", got)
	}
}

func TestGetTimeoutClose(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	s.Go("recv", func(p *Proc) {
		v, ok, timedOut := m.GetTimeout(p, 50*time.Millisecond)
		if v != nil || ok || timedOut {
			t.Errorf("got (%v, %v, %v), want closed", v, ok, timedOut)
		}
		if p.Now() != time.Millisecond {
			t.Errorf("woke at %v, want 1ms", p.Now())
		}
	})
	s.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGetTimeoutZeroBlocksForever(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	s.Go("recv", func(p *Proc) {
		v, ok, timedOut := m.GetTimeout(p, 0)
		if v != "v" || !ok || timedOut {
			t.Errorf("got (%v, %v, %v), want (v, true, false)", v, ok, timedOut)
		}
	})
	s.Go("sender", func(p *Proc) {
		p.Sleep(time.Hour)
		m.Put("v")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// Stale timer events left in the heap after a normal delivery must not
// corrupt later scheduling or inflate the clock.
func TestStaleTimerEventsAreInert(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	var end time.Duration
	s.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if _, ok, timedOut := m.GetTimeout(p, time.Hour); !ok || timedOut {
				t.Errorf("round %d: lost message", i)
			}
		}
		end = p.Now()
	})
	s.Go("sender", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			m.Put(i)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 3*time.Millisecond {
		t.Fatalf("receiver finished at %v, want 3ms (stale hour-long timers fired?)", end)
	}
}
