package vtime

import (
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var at time.Duration
	s.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("got %v, want 5ms", at)
	}
}

func TestSleepNegativeClampsToZero(t *testing.T) {
	s := New()
	s.Go("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for _, nm := range []string{"a", "b", "c"} {
			nm := nm
			s.Go(nm, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					order = append(order, nm)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := strings.Join(run(), "")
	for i := 0; i < 10; i++ {
		if got := strings.Join(run(), ""); got != first {
			t.Fatalf("nondeterministic: %q vs %q", got, first)
		}
	}
	if first != "abcabcabc" {
		t.Fatalf("unexpected FIFO order %q", first)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		s.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("end[%d]=%v want %v", i, ends[i], want[i])
		}
	}
	if r.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy=%v", r.BusyTime())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	s := New()
	r := s.NewResource("cpu", 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		s.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			last = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 20*time.Millisecond {
		t.Fatalf("4 jobs on capacity-2 resource finished at %v, want 20ms", last)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	s := New()
	r := s.NewResource("r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go("u", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestMailboxHandoff(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	var got []int
	s.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := m.Get(p)
			if !ok {
				t.Error("unexpected close")
				return
			}
			got = append(got, v.(int))
		}
	})
	s.Go("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			m.Put(i)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestMailboxQueuedBeforeGet(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	m.Put("x")
	m.Put("y")
	if m.Len() != 2 {
		t.Fatalf("len=%d", m.Len())
	}
	s.Go("r", func(p *Proc) {
		a, _ := m.Get(p)
		b, _ := m.Get(p)
		if a != "x" || b != "y" {
			t.Errorf("got %v,%v", a, b)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxClose(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	var closedSeen bool
	s.Go("r", func(p *Proc) {
		_, ok := m.Get(p)
		closedSeen = !ok
	})
	s.Go("c", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !closedSeen {
		t.Fatal("waiter not released by Close")
	}
}

func TestTryGet(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty returned ok")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v.(int) != 7 {
		t.Fatalf("TryGet=%v,%v", v, ok)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		s.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	s.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroDoesNotBlock(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	ran := false
	s.Go("w", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("waiter blocked on zero waitgroup")
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	m := s.NewMailbox("never")
	s.Go("stuck", func(p *Proc) {
		m.Get(p)
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never") {
		t.Fatalf("diagnostic missing proc/primitive name: %v", err)
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New()
	var childTime time.Duration
	s.Go("parent", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		s.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childTime = c.Now()
		})
		p.Sleep(10 * time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 3*time.Millisecond {
		t.Fatalf("child finished at %v, want 3ms", childTime)
	}
}

func TestYield(t *testing.T) {
	s := New()
	var order []string
	s.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1,b1,a2"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New()
	s.Go("a", func(p *Proc) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestManyProcsStress(t *testing.T) {
	s := New()
	r := s.NewResource("link", 1)
	const n = 500
	finished := 0
	for i := 0; i < n; i++ {
		s.Go("p", func(p *Proc) {
			for k := 0; k < 5; k++ {
				r.Use(p, time.Microsecond)
			}
			finished++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished %d/%d", finished, n)
	}
	if s.Now() != n*5*time.Microsecond {
		t.Fatalf("clock %v, want %v", s.Now(), n*5*time.Microsecond)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	s := New()
	r := s.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on idle release")
		}
	}()
	r.Release()
}

func TestPutAfterClosePanics(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on put-after-close")
		}
	}()
	m.Put(1)
}

func TestNegativeWaitGroupPanics(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative waitgroup")
		}
	}()
	wg.Add(-1)
}

func TestResourceBadCapacityPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero capacity")
		}
	}()
	s.NewResource("bad", 0)
}

func TestMailboxCloseIdempotent(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	m.Close()
	m.Close() // must not panic
	if !m.Closed() {
		t.Fatal("not closed")
	}
}

func TestGetDrainsQueueAfterClose(t *testing.T) {
	s := New()
	m := s.NewMailbox("m")
	m.Put("a")
	m.Close()
	s.Go("r", func(p *Proc) {
		v, ok := m.Get(p)
		if !ok || v != "a" {
			t.Errorf("got %v,%v", v, ok)
		}
		if _, ok := m.Get(p); ok {
			t.Error("second get should report closed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
