// Package vtime implements a deterministic, cooperative discrete-event
// scheduler used to simulate a cluster in virtual time.
//
// A Scheduler owns a set of processes (Proc). Exactly one process runs at
// any instant; a process runs until it blocks on a virtual-time primitive
// (Sleep, Resource, Mailbox, WaitGroup), at which point control returns to
// the scheduler, which advances the clock to the next pending event and
// resumes the corresponding process. Because scheduling is cooperative and
// tie-breaking is FIFO by event sequence number, simulations are fully
// deterministic and independent of wall-clock time or GOMAXPROCS.
//
// The kernel deliberately mirrors classic simulation kernels (e.g. CSIM,
// SimPy): resources model contended hardware (NICs, disks, CPUs), and
// mailboxes model message channels.
package vtime

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scheduler is a discrete-event simulation kernel. The zero value is not
// usable; call New.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	yield   chan struct{} // the running proc signals the scheduler here
	live    int           // procs that have started and not yet exited
	blocked map[*Proc]string
	started bool
}

// Proc is a simulated process. A Proc must only be used from the goroutine
// that the scheduler created for it.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	// handoff carries the value of the event that resumed the process
	// (nil for sleeps and plain wakes, timeoutMark for an expired
	// GetTimeout timer). It is only valid immediately after a resume.
	handoff any
	// gen counts resumes. An event only fires if the generation it
	// captured at schedule time still matches, so a process that blocks
	// with two pending wake-ups (a timer and a message) consumes exactly
	// one: the other becomes stale and is discarded by Run.
	gen uint64
}

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	gen uint64
	val any
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h).less(parent, i) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// New returns an empty scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{
		yield:   make(chan struct{}),
		blocked: map[*Proc]string{},
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Go registers a new process. It may be called before Run, or by a running
// process (in which case the child starts at the current virtual time,
// after the parent next yields).
func (s *Scheduler) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	s.live++
	s.schedule(p, 0)
	go func() {
		<-p.resume
		fn(p)
		s.live--
		s.yield <- struct{}{}
	}()
	return p
}

// schedule enqueues a wake-up for p after delay d.
func (s *Scheduler) schedule(p *Proc, d time.Duration) {
	s.scheduleVal(p, d, nil)
}

// scheduleVal enqueues a wake-up carrying a hand-off value. The event
// captures p's current generation; it is discarded if p resumes through
// some other event first.
func (s *Scheduler) scheduleVal(p *Proc, d time.Duration, v any) {
	s.seq++
	s.events.push(event{at: s.now + d, seq: s.seq, p: p, gen: p.gen, val: v})
}

// Run executes events until no process remains. It returns an error if
// processes remain blocked with no pending events (deadlock).
func (s *Scheduler) Run() error {
	if s.started {
		return fmt.Errorf("vtime: Run called twice")
	}
	s.started = true
	for s.live > 0 {
		if len(s.events) == 0 {
			return s.deadlockError()
		}
		ev := s.events.pop()
		if ev.gen != ev.p.gen {
			// Stale: the process already resumed through another event
			// (e.g. a message arrived before its timeout timer fired).
			// Skip without advancing the clock.
			continue
		}
		if ev.at < s.now {
			panic("vtime: time went backwards")
		}
		s.now = ev.at
		ev.p.gen++
		ev.p.handoff = ev.val
		delete(s.blocked, ev.p)
		ev.p.resume <- struct{}{}
		<-s.yield
	}
	return nil
}

func (s *Scheduler) deadlockError() error {
	var names []string
	for p, why := range s.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
	}
	sort.Strings(names)
	return fmt.Errorf("vtime: deadlock at %v: %d blocked process(es): %s",
		s.now, len(names), strings.Join(names, ", "))
}

// block parks the calling process until some other party schedules a wake.
// why describes the wait for deadlock diagnostics.
func (p *Proc) block(why string) {
	p.s.blocked[p] = why
	p.s.yield <- struct{}{}
	<-p.resume
}

// yieldAndWait is used when the process has already scheduled its own
// wake-up event (Sleep).
func (p *Proc) yieldAndWait() {
	p.s.yield <- struct{}{}
	<-p.resume
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.s.now }

// Sleep advances virtual time by d for this process.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.schedule(p, d)
	p.yieldAndWait()
}

// Yield reschedules the process at the current time, letting any other
// runnable process at the same timestamp run first.
func (p *Proc) Yield() {
	p.s.schedule(p, 0)
	p.yieldAndWait()
}

// wake schedules p to resume at the current virtual time with v as the
// hand-off value.
func (s *Scheduler) wake(p *Proc, v any) {
	s.scheduleVal(p, 0, v)
}

// Resource models a contended unit-service facility (a NIC direction, a
// disk, a CPU) with an optional multiplicity. Waiters are served FIFO.
type Resource struct {
	s        *Scheduler
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	// busyTime accumulates capacity-seconds of use for utilization stats.
	busyTime time.Duration
	lastAcq  time.Duration
}

// NewResource creates a resource with the given capacity (>= 1).
func (s *Scheduler) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("vtime: resource capacity must be >= 1")
	}
	return &Resource{s: s, name: name, capacity: capacity}
}

// Acquire obtains one unit of the resource, blocking in FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block("resource " + r.name)
}

// Release returns one unit. If processes are waiting, ownership transfers
// directly to the first waiter.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.s.wake(p, nil) // unit transfers; inUse unchanged
		return
	}
	if r.inUse == 0 {
		panic("vtime: release of idle resource " + r.name)
	}
	r.inUse--
}

// Use acquires the resource, holds it for service duration d, and releases
// it. This is the common pattern for modeling a transfer or a computation.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	r.busyTime += d
	p.Sleep(d)
	r.Release()
}

// BusyTime reports accumulated service time (for utilization reporting).
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// Mailbox is an unbounded FIFO message queue between processes.
type Mailbox struct {
	s       *Scheduler
	name    string
	q       []any
	waiters []*Proc
	closed  bool
}

// NewMailbox creates an empty mailbox.
func (s *Scheduler) NewMailbox(name string) *Mailbox {
	return &Mailbox{s: s, name: name}
}

// Put deposits a message; it never blocks. The message stays queued and
// the first waiter (if any) is scheduled to pick it up; keeping the value
// in the queue rather than handing it off directly means a waiter that is
// simultaneously woken by a GetTimeout timer cannot lose the message.
func (m *Mailbox) Put(v any) {
	if m.closed {
		panic("vtime: put on closed mailbox " + m.name)
	}
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.s.wake(p, nil)
	}
}

// timeoutMark is the hand-off value of an expired GetTimeout timer.
type timeoutMark struct{}

// Get removes the oldest message, blocking until one is available. The
// second result is false if the mailbox was closed while (or before)
// waiting and no message remains.
func (m *Mailbox) Get(p *Proc) (any, bool) {
	for {
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			return v, true
		}
		if m.closed {
			return nil, false
		}
		m.waiters = append(m.waiters, p)
		p.block("mailbox " + m.name)
		p.handoff = nil
	}
}

// GetTimeout is Get with a deadline: it returns (v, true, false) on a
// message, (nil, false, false) if the mailbox closed, and
// (nil, false, true) once d elapses with nothing delivered. d <= 0 means
// no deadline. A message arriving at the same virtual instant as the
// deadline may lose the FIFO tie-break to the timer; it is then left
// queued for the next Get, never lost.
func (m *Mailbox) GetTimeout(p *Proc, d time.Duration) (v any, ok bool, timedOut bool) {
	if d <= 0 {
		v, ok = m.Get(p)
		return v, ok, false
	}
	deadline := p.s.now + d
	for {
		if len(m.q) > 0 {
			v := m.q[0]
			m.q = m.q[1:]
			return v, true, false
		}
		if m.closed {
			return nil, false, false
		}
		if p.s.now >= deadline {
			return nil, false, true
		}
		// Arm a fresh timer each pass: any timer from a previous pass
		// went stale when the wake that restarted the loop bumped the
		// generation.
		p.s.scheduleVal(p, deadline-p.s.now, timeoutMark{})
		m.waiters = append(m.waiters, p)
		p.block("mailbox " + m.name)
		woke := p.handoff
		p.handoff = nil
		if _, expired := woke.(timeoutMark); expired {
			// The timer fired while we were still a waiter; withdraw.
			// The loop re-checks the queue first, so a message that
			// landed at this same instant is still delivered.
			m.removeWaiter(p)
		}
	}
}

// removeWaiter withdraws p from the wait list (after a timeout fired
// while p was still queued as a waiter).
func (m *Mailbox) removeWaiter(p *Proc) {
	for i, w := range m.waiters {
		if w == p {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// TryGet removes a message if one is queued.
func (m *Mailbox) TryGet() (any, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Closed reports whether Close has been called.
func (m *Mailbox) Closed() bool { return m.closed }

// Close wakes all waiters with ok=false; subsequent Gets drain the queue
// then report closed. Put after Close panics.
func (m *Mailbox) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, p := range m.waiters {
		m.s.wake(p, nil)
	}
	m.waiters = nil
}

// WaitGroup mirrors sync.WaitGroup in virtual time.
type WaitGroup struct {
	s       *Scheduler
	n       int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with counter zero.
func (s *Scheduler) NewWaitGroup() *WaitGroup { return &WaitGroup{s: s} }

// Add adjusts the counter; a transition to zero wakes all waiters.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			w.s.wake(p, nil)
		}
		w.waiters = nil
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block("waitgroup")
}
