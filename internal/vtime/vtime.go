// Package vtime implements a deterministic, cooperative discrete-event
// scheduler used to simulate a cluster in virtual time.
//
// A Scheduler owns a set of processes (Proc). Exactly one process runs at
// any instant; a process runs until it blocks on a virtual-time primitive
// (Sleep, Resource, Mailbox, WaitGroup), at which point control returns to
// the scheduler, which advances the clock to the next pending event and
// resumes the corresponding process. Because scheduling is cooperative and
// tie-breaking is FIFO by event sequence number, simulations are fully
// deterministic and independent of wall-clock time or GOMAXPROCS.
//
// The kernel deliberately mirrors classic simulation kernels (e.g. CSIM,
// SimPy): resources model contended hardware (NICs, disks, CPUs), and
// mailboxes model message channels.
package vtime

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scheduler is a discrete-event simulation kernel. The zero value is not
// usable; call New.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	yield   chan struct{} // the running proc signals the scheduler here
	live    int           // procs that have started and not yet exited
	blocked map[*Proc]string
	started bool
}

// Proc is a simulated process. A Proc must only be used from the goroutine
// that the scheduler created for it.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	// handoff carries a value delivered directly by a waker (mailbox put,
	// resource grant). It is only valid immediately after a wake.
	handoff any
}

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h).less(parent, i) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// New returns an empty scheduler with the clock at zero.
func New() *Scheduler {
	return &Scheduler{
		yield:   make(chan struct{}),
		blocked: map[*Proc]string{},
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Go registers a new process. It may be called before Run, or by a running
// process (in which case the child starts at the current virtual time,
// after the parent next yields).
func (s *Scheduler) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	s.live++
	s.schedule(p, 0)
	go func() {
		<-p.resume
		fn(p)
		s.live--
		s.yield <- struct{}{}
	}()
	return p
}

// schedule enqueues a wake-up for p after delay d.
func (s *Scheduler) schedule(p *Proc, d time.Duration) {
	s.seq++
	s.events.push(event{at: s.now + d, seq: s.seq, p: p})
}

// Run executes events until no process remains. It returns an error if
// processes remain blocked with no pending events (deadlock).
func (s *Scheduler) Run() error {
	if s.started {
		return fmt.Errorf("vtime: Run called twice")
	}
	s.started = true
	for s.live > 0 {
		if len(s.events) == 0 {
			return s.deadlockError()
		}
		ev := s.events.pop()
		if ev.at < s.now {
			panic("vtime: time went backwards")
		}
		s.now = ev.at
		delete(s.blocked, ev.p)
		ev.p.resume <- struct{}{}
		<-s.yield
	}
	return nil
}

func (s *Scheduler) deadlockError() error {
	var names []string
	for p, why := range s.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
	}
	sort.Strings(names)
	return fmt.Errorf("vtime: deadlock at %v: %d blocked process(es): %s",
		s.now, len(names), strings.Join(names, ", "))
}

// block parks the calling process until some other party schedules a wake.
// why describes the wait for deadlock diagnostics.
func (p *Proc) block(why string) {
	p.s.blocked[p] = why
	p.s.yield <- struct{}{}
	<-p.resume
}

// yieldAndWait is used when the process has already scheduled its own
// wake-up event (Sleep).
func (p *Proc) yieldAndWait() {
	p.s.yield <- struct{}{}
	<-p.resume
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.s.now }

// Sleep advances virtual time by d for this process.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.schedule(p, d)
	p.yieldAndWait()
}

// Yield reschedules the process at the current time, letting any other
// runnable process at the same timestamp run first.
func (p *Proc) Yield() {
	p.s.schedule(p, 0)
	p.yieldAndWait()
}

// wake schedules p to resume at the current virtual time with v as the
// hand-off value.
func (s *Scheduler) wake(p *Proc, v any) {
	p.handoff = v
	s.schedule(p, 0)
}

// Resource models a contended unit-service facility (a NIC direction, a
// disk, a CPU) with an optional multiplicity. Waiters are served FIFO.
type Resource struct {
	s        *Scheduler
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	// busyTime accumulates capacity-seconds of use for utilization stats.
	busyTime time.Duration
	lastAcq  time.Duration
}

// NewResource creates a resource with the given capacity (>= 1).
func (s *Scheduler) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("vtime: resource capacity must be >= 1")
	}
	return &Resource{s: s, name: name, capacity: capacity}
}

// Acquire obtains one unit of the resource, blocking in FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block("resource " + r.name)
}

// Release returns one unit. If processes are waiting, ownership transfers
// directly to the first waiter.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.s.wake(p, nil) // unit transfers; inUse unchanged
		return
	}
	if r.inUse == 0 {
		panic("vtime: release of idle resource " + r.name)
	}
	r.inUse--
}

// Use acquires the resource, holds it for service duration d, and releases
// it. This is the common pattern for modeling a transfer or a computation.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	r.busyTime += d
	p.Sleep(d)
	r.Release()
}

// BusyTime reports accumulated service time (for utilization reporting).
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// Mailbox is an unbounded FIFO message queue between processes.
type Mailbox struct {
	s       *Scheduler
	name    string
	q       []any
	waiters []*Proc
	closed  bool
}

// NewMailbox creates an empty mailbox.
func (s *Scheduler) NewMailbox(name string) *Mailbox {
	return &Mailbox{s: s, name: name}
}

// Put deposits a message; it never blocks. If a process is waiting, the
// message is handed to it directly and the process is scheduled.
func (m *Mailbox) Put(v any) {
	if m.closed {
		panic("vtime: put on closed mailbox " + m.name)
	}
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.s.wake(p, mailItem{v: v, ok: true})
		return
	}
	m.q = append(m.q, v)
}

type mailItem struct {
	v  any
	ok bool
}

// Get removes the oldest message, blocking until one is available. The
// second result is false if the mailbox was closed while (or before)
// waiting and no message remains.
func (m *Mailbox) Get(p *Proc) (any, bool) {
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v, true
	}
	if m.closed {
		return nil, false
	}
	m.waiters = append(m.waiters, p)
	p.block("mailbox " + m.name)
	item := p.handoff.(mailItem)
	p.handoff = nil
	return item.v, item.ok
}

// TryGet removes a message if one is queued.
func (m *Mailbox) TryGet() (any, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Closed reports whether Close has been called.
func (m *Mailbox) Closed() bool { return m.closed }

// Close wakes all waiters with ok=false; subsequent Gets drain the queue
// then report closed. Put after Close panics.
func (m *Mailbox) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, p := range m.waiters {
		m.s.wake(p, mailItem{ok: false})
	}
	m.waiters = nil
}

// WaitGroup mirrors sync.WaitGroup in virtual time.
type WaitGroup struct {
	s       *Scheduler
	n       int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with counter zero.
func (s *Scheduler) NewWaitGroup() *WaitGroup { return &WaitGroup{s: s} }

// Add adjusts the counter; a transition to zero wakes all waiters.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("vtime: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			w.s.wake(p, nil)
		}
		w.waiters = nil
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block("waitgroup")
}
