// Package trace is a lightweight span tracer for attributing where time
// goes in a distributed I/O operation: client op -> wire -> server
// request loop -> disk batch -> stream segment, across retries. Spans
// carry parent links so server-side work recorded on one tracer can
// point back at the originating client operation via an ID piggybacked
// on the wire (wire.ReqTag.Span), and the whole forest exports as Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing.
//
// Timestamps come from a Clock (satisfied by transport.Env), so spans
// record virtual time in simulated runs and wall time in real TCP runs.
// A nil *Tracer is the disabled state: every method is a nil-safe no-op
// that performs no allocation and never touches the clock, so
// instrumented hot paths pay only a nil check.
//
// By default every span is retained. EnableTailSampling switches a
// tracer to tail-based retention: span trees buffer until their local
// root ends, and only trees that ended slow (an adaptive threshold,
// typically a rolling p99) or hit a 1-in-N uniform sample are kept.
// That bounds memory enough to leave tracing permanently on
// (DESIGN.md §17).
package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanID identifies a span within one trace. 0 means "no span" (a nil
// span's ID, and the parent of a root span).
type SpanID uint64

// Clock supplies span timestamps. transport.Env satisfies it, giving
// sim time under SimEnv and wall time under RealEnv.
type Clock interface{ Now() time.Duration }

// Attr is one span attribute (method, regions, bytes, ...). Values are
// int64 or string; Str is used when IsStr is set.
type Attr struct {
	Key   string
	Val   int64
	Str   string
	IsStr bool
}

// Span is one timed unit of work. Fields are exported for exporters and
// tests; mutate only through the methods, which are nil-safe.
type Span struct {
	t      *Tracer
	ID     SpanID
	Parent SpanID
	Track  string // display lane: "rank3", "io-server-7", "meta"
	Name   string
	Start  time.Duration
	Finish time.Duration
	Attrs  []Attr
}

// Tracer collects spans from any number of goroutines. The zero value
// is NOT ready; use New. A nil Tracer is the disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	next  uint64
	spans []*Span
	tail  *tailState // nil: retain everything (the default)
}

// New returns an empty enabled tracer.
func New() *Tracer { return &Tracer{} }

// TailConfig configures tail-based sampling: the keep/drop decision for
// a span tree is made at the END of its local root span, when the total
// duration is known — which is what lets tracing stay permanently on.
type TailConfig struct {
	// Threshold returns the current slow-op cutoff: a root whose
	// duration meets or exceeds it is retained with its whole tree.
	// Called once per root decision under the tracer lock, so it must
	// be cheap and must not call back into the tracer (pvfs supplies a
	// cached rolling-p99 here). Nil or a non-positive return disables
	// the slow criterion for that decision.
	Threshold func() time.Duration
	// Every keeps 1 in Every roots unconditionally (a uniform sample so
	// the trace always shows what "normal" looks like). 0 disables it.
	Every int
	// OnKeepSlow, if set, is called (outside the tracer lock) when a
	// root is retained as slow, BEFORE its tree is published to the
	// span list — the hook may still attach attributes race-free. pvfs
	// daemons use this to stamp the flight-recorder window onto the
	// slow span (DESIGN.md §17).
	OnKeepSlow func(root *Span)
}

// tailState holds the pending (undecided) span trees. A span is a
// local root when its parent is unknown to this tracer — either 0, or
// a wire-carried ID that lives on a remote tracer. All fields are
// guarded by Tracer.mu.
type tailState struct {
	cfg    TailConfig
	rootOf map[SpanID]SpanID // live pending span -> its tree's root
	trees  map[SpanID][]*Span
	roots  int64 // root decisions made
	slow   int64 // roots kept because duration >= Threshold()
	samp   int64 // roots kept by the 1-in-Every uniform sample
	drop   int64 // spans discarded with their root
}

// EnableTailSampling switches the tracer from retain-everything to
// tail-sampled retention. Spans buffer in per-root trees and commit to
// the trace only if the root ends slow (>= cfg.Threshold()) or the
// 1-in-cfg.Every uniform sample fires; otherwise the whole tree is
// dropped. Trees whose root never ends are never exported. Enable
// before recording begins; it does not reprocess existing spans.
func (t *Tracer) EnableTailSampling(cfg TailConfig) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tail = &tailState{
		cfg:    cfg,
		rootOf: make(map[SpanID]SpanID),
		trees:  make(map[SpanID][]*Span),
	}
	t.mu.Unlock()
}

// TailStats reports tail-sampling bookkeeping: root decisions made,
// roots kept as slow, roots kept by the uniform sample, and spans
// dropped. All zero when tail sampling is off.
func (t *Tracer) TailStats() (roots, slow, sampled, droppedSpans int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.tail; ts != nil {
		return ts.roots, ts.slow, ts.samp, ts.drop
	}
	return
}

// Begin opens a span at clk.Now() on the given display track, parented
// to parent (0 for a root). On a nil tracer it returns nil without
// touching clk. The returned span must be closed with End.
func (t *Tracer) Begin(clk Clock, track, name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, Track: track, Name: name, Parent: parent, Start: clk.Now(), Finish: -1}
	t.mu.Lock()
	t.next++
	sp.ID = SpanID(t.next)
	if ts := t.tail; ts != nil {
		// Buffer in the parent's pending tree; a span whose parent is
		// unknown here (0, remote, or already decided) starts its own.
		root := sp.ID
		if r, ok := ts.rootOf[parent]; ok {
			root = r
		}
		ts.rootOf[sp.ID] = root
		ts.trees[root] = append(ts.trees[root], sp)
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
	return sp
}

// Record adds an already-finished span covering [start, end] — used
// where the duration is learned after the fact (e.g. a lock grant
// reporting how long the waiter queued). Nil-safe.
func (t *Tracer) Record(track, name string, parent SpanID, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	sp := &Span{t: t, Track: track, Name: name, Parent: parent, Start: start, Finish: end}
	sp.Attrs = append(sp.Attrs, attrs...)
	t.mu.Lock()
	t.next++
	sp.ID = SpanID(t.next)
	if ts := t.tail; ts != nil {
		if root, ok := ts.rootOf[parent]; ok {
			// Rides with its parent's pending tree: complete already, so
			// it needs no rootOf entry and just flushes (or drops) with
			// the tree's decision.
			ts.trees[root] = append(ts.trees[root], sp)
			t.mu.Unlock()
			return
		}
		// Parentless (or parent already decided): Record spans are rare
		// out-of-band facts like lock waits — always retain.
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// End closes the span at clk.Now(). Under tail sampling, the End of a
// pending local root is the sampling decision point. Nil-safe.
func (sp *Span) End(clk Clock) {
	if sp == nil {
		return
	}
	sp.Finish = clk.Now()
	sp.t.tailEnd(sp)
}

// tailEnd decides a pending tree when its root ends: keep it (slow or
// uniformly sampled) or drop it. No-op when tail sampling is off or sp
// is not a pending local root.
func (t *Tracer) tailEnd(sp *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ts := t.tail
	if ts == nil {
		t.mu.Unlock()
		return
	}
	root, ok := ts.rootOf[sp.ID]
	if !ok || root != sp.ID {
		t.mu.Unlock()
		return // mid-tree span, or already decided: nothing to do yet
	}
	tree := ts.trees[root]
	delete(ts.trees, root)
	for _, s := range tree {
		delete(ts.rootOf, s.ID)
	}
	ts.roots++
	slow := false
	if ts.cfg.Threshold != nil {
		if thr := ts.cfg.Threshold(); thr > 0 && sp.Finish-sp.Start >= thr {
			slow = true
		}
	}
	sampled := ts.cfg.Every > 0 && (ts.roots-1)%int64(ts.cfg.Every) == 0
	if slow {
		ts.slow++
	} else if sampled {
		ts.samp++
	}
	keep := slow || sampled
	if !keep {
		ts.drop += int64(len(tree))
	}
	cb := ts.cfg.OnKeepSlow
	t.mu.Unlock()
	if !keep {
		return
	}
	if slow && cb != nil {
		cb(sp) // tree not yet published: the hook may attach attrs race-free
	}
	t.mu.Lock()
	t.spans = append(t.spans, tree...)
	t.mu.Unlock()
}

// SetAttr attaches an integer attribute. Nil-safe.
func (sp *Span) SetAttr(key string, v int64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: v})
}

// SetParent re-parents the span — used when the true parent is only
// learned after the span opened (e.g. a streamed write whose tag rides
// inside the stream header's inner request). Under tail sampling, a
// pending root re-parented under another pending tree merges into it,
// so the adoptive root makes one decision for the combined tree.
// Nil-safe.
func (sp *Span) SetParent(p SpanID) {
	if sp == nil {
		return
	}
	sp.Parent = p
	sp.t.tailReparent(sp, p)
}

func (t *Tracer) tailReparent(sp *Span, p SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tail
	if ts == nil {
		return
	}
	oldRoot, ok := ts.rootOf[sp.ID]
	if !ok || oldRoot != sp.ID {
		return // already decided, or not the root of its tree
	}
	newRoot, ok := ts.rootOf[p]
	if !ok || newRoot == oldRoot {
		return // new parent is remote or already decided: still a local root
	}
	tree := ts.trees[oldRoot]
	delete(ts.trees, oldRoot)
	for _, s := range tree {
		ts.rootOf[s.ID] = newRoot
	}
	ts.trees[newRoot] = append(ts.trees[newRoot], tree...)
}

// SetStr attaches a string attribute. Nil-safe.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v, IsStr: true})
}

// SID returns the span's ID, 0 for nil — the value to place in
// wire.ReqTag.Span so the far side can parent to this span.
func (sp *Span) SID() SpanID {
	if sp == nil {
		return 0
	}
	return sp.ID
}

// Spans returns a snapshot of all recorded spans in creation order.
// Nil-safe (returns nil).
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Len reports the number of recorded spans. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteChrome exports the trace as Chrome trace-event JSON
// ({"traceEvents": [...]}) for Perfetto / chrome://tracing. Each track
// becomes a pid with a process_name metadata record; within a track,
// tid groups each span under its root ancestor so one client operation
// and all its descendants share a lane. Unfinished spans export with
// zero duration. Nil-safe (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	byID := make(map[SpanID]*Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	// Deterministic pid per track, in first-seen order.
	pids := make(map[string]int)
	var tracks []string
	for _, sp := range spans {
		if _, ok := pids[sp.Track]; !ok {
			pids[sp.Track] = len(pids) + 1
			tracks = append(tracks, sp.Track)
		}
	}
	root := func(sp *Span) SpanID {
		id := sp.ID
		for i := 0; i < len(spans); i++ { // bounded walk guards cycles
			p, ok := byID[byID[id].Parent]
			if !ok {
				break
			}
			id = p.ID
		}
		return id
	}

	bw := &errWriter{w: w}
	bw.puts(`{"traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.puts(",")
		}
		first = false
	}
	for _, tr := range tracks {
		comma()
		bw.puts(`{"name":"process_name","ph":"M","pid":`)
		bw.puti(int64(pids[tr]))
		bw.puts(`,"tid":0,"args":{"name":`)
		bw.putq(tr)
		bw.puts(`}}`)
	}
	for _, sp := range spans {
		dur := sp.Finish - sp.Start
		if sp.Finish < 0 || dur < 0 {
			dur = 0
		}
		comma()
		bw.puts(`{"name":`)
		bw.putq(sp.Name)
		bw.puts(`,"ph":"X","pid":`)
		bw.puti(int64(pids[sp.Track]))
		bw.puts(`,"tid":`)
		bw.puti(int64(root(sp)))
		bw.puts(`,"ts":`)
		bw.putf(float64(sp.Start) / 1e3) // ns -> µs
		bw.puts(`,"dur":`)
		bw.putf(float64(dur) / 1e3)
		bw.puts(`,"args":{"span":`)
		bw.puti(int64(sp.ID))
		bw.puts(`,"parent":`)
		bw.puti(int64(sp.Parent))
		for _, a := range sp.Attrs {
			bw.puts(",")
			bw.putq(a.Key)
			bw.puts(":")
			if a.IsStr {
				bw.putq(a.Str)
			} else {
				bw.puti(a.Val)
			}
		}
		bw.puts(`}}`)
	}
	bw.puts("]}\n")
	return bw.err
}

// WriteChromeSorted is WriteChrome with spans ordered by start time
// (stable), which makes fixture diffs readable; the JSON format itself
// does not require ordering.
func (t *Tracer) WriteChromeSorted(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	clone := &Tracer{spans: spans}
	return clone.WriteChrome(w)
}

// errWriter accumulates the first write error so the emit loop stays
// branch-light.
type errWriter struct {
	w   io.Writer
	err error
	buf []byte
}

func (e *errWriter) puts(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) puti(v int64) {
	e.buf = strconv.AppendInt(e.buf[:0], v, 10)
	e.putb(e.buf)
}

func (e *errWriter) putf(v float64) {
	e.buf = strconv.AppendFloat(e.buf[:0], v, 'f', 3, 64)
	e.putb(e.buf)
}

func (e *errWriter) putq(s string) {
	e.buf = strconv.AppendQuote(e.buf[:0], s)
	e.putb(e.buf)
}

func (e *errWriter) putb(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}
