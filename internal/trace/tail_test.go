package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// tailTracer returns a tracer keeping roots >= thr, with no uniform
// sample unless every > 0.
func tailTracer(thr time.Duration, every int, onKeep func(*Span)) *Tracer {
	t := New()
	t.EnableTailSampling(TailConfig{
		Threshold:  func() time.Duration { return thr },
		Every:      every,
		OnKeepSlow: onKeep,
	})
	return t
}

// TestTailKeepsSlowTreeDropsFast is the core retention rule: a root
// ending at or over the threshold commits its whole tree (children
// included), a fast root drops its whole tree.
func TestTailKeepsSlowTreeDropsFast(t *testing.T) {
	clk := &fakeClock{}
	tr := tailTracer(10*time.Millisecond, 0, nil)

	// Fast tree: root + child, 1ms total.
	root := tr.Begin(clk, "srv", "req:fast", 0)
	child := tr.Begin(clk, "srv", "disk", root.SID())
	clk.t = 1 * time.Millisecond
	child.End(clk)
	root.End(clk)
	if got := tr.Len(); got != 0 {
		t.Fatalf("fast tree retained %d spans, want 0", got)
	}

	// Slow tree: root + 2 children, 25ms total.
	clk.t = 0
	root = tr.Begin(clk, "srv", "req:slow", 0)
	c1 := tr.Begin(clk, "srv", "disk", root.SID())
	clk.t = 20 * time.Millisecond
	c1.End(clk)
	c2 := tr.Begin(clk, "srv", "disk", root.SID())
	clk.t = 25 * time.Millisecond
	c2.End(clk)
	root.End(clk)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("slow tree retained %d spans, want 3", len(spans))
	}
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	if names["req:slow"] != 1 || names["disk"] != 2 {
		t.Fatalf("retained wrong spans: %v", names)
	}
	roots, slow, sampled, dropped := tr.TailStats()
	if roots != 2 || slow != 1 || sampled != 0 || dropped != 2 {
		t.Fatalf("stats roots=%d slow=%d sampled=%d dropped=%d, want 2/1/0/2",
			roots, slow, sampled, dropped)
	}
}

// TestTailUniformSample verifies the 1-in-N sample keeps fast trees at
// the configured rate even when nothing is slow.
func TestTailUniformSample(t *testing.T) {
	clk := &fakeClock{}
	tr := tailTracer(time.Hour, 4, nil) // nothing will be "slow"
	for i := 0; i < 16; i++ {
		sp := tr.Begin(clk, "srv", "req", 0)
		clk.t += time.Millisecond
		sp.End(clk)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("uniform 1-in-4 kept %d of 16 roots, want 4", got)
	}
	_, slow, sampled, dropped := tr.TailStats()
	if slow != 0 || sampled != 4 || dropped != 12 {
		t.Fatalf("stats slow=%d sampled=%d dropped=%d, want 0/4/12", slow, sampled, dropped)
	}
}

// TestTailRemoteParentIsLocalRoot: a span parented to a wire-carried
// ID that this tracer never issued (the daemon case: the client span
// lives on another process's tracer) must be treated as a local root
// and decided on its own duration.
func TestTailRemoteParentIsLocalRoot(t *testing.T) {
	clk := &fakeClock{}
	tr := tailTracer(10*time.Millisecond, 0, nil)
	sp := tr.Begin(clk, "io-server-0", "req", SpanID(9999)) // remote parent
	clk.t = 15 * time.Millisecond
	sp.End(clk)
	if got := tr.Len(); got != 1 {
		t.Fatalf("remote-parented slow root retained %d spans, want 1", got)
	}
	if got := tr.Spans()[0].Parent; got != SpanID(9999) {
		t.Fatalf("retained span lost its wire parent: %d", got)
	}
}

// TestTailReparentMergesTrees: SetParent moving a pending root under a
// live local tree merges them, so the adoptive root decides for both
// (the streamed-write pattern, where the tag arrives after Begin).
func TestTailReparentMergesTrees(t *testing.T) {
	clk := &fakeClock{}
	tr := tailTracer(10*time.Millisecond, 0, nil)

	op := tr.Begin(clk, "rank0", "op:write", 0)
	req := tr.Begin(clk, "srv", "req:stream", 0) // opens parentless
	req.SetParent(op.SID())                      // tag learned later
	clk.t = 2 * time.Millisecond
	req.End(clk) // fast — but no longer a root, so no decision here
	if got := tr.Len(); got != 0 {
		t.Fatalf("child End leaked %d spans before root decision", got)
	}
	clk.t = 30 * time.Millisecond
	op.End(clk) // slow: both spans commit together
	if got := tr.Len(); got != 2 {
		t.Fatalf("merged tree retained %d spans, want 2", got)
	}
}

// TestTailRecordRidesWithTree: Record spans attach to a live pending
// tree and share its fate; parentless Record spans are always kept.
func TestTailRecordRidesWithTree(t *testing.T) {
	clk := &fakeClock{}
	tr := tailTracer(10*time.Millisecond, 0, nil)

	root := tr.Begin(clk, "srv", "req", 0)
	tr.Record("meta", "lock:wait", root.SID(), 0, time.Millisecond)
	clk.t = time.Millisecond
	root.End(clk) // fast: both drop
	if got := tr.Len(); got != 0 {
		t.Fatalf("fast tree's Record span leaked: %d spans", got)
	}

	tr.Record("meta", "lock:wait", 0, 0, time.Millisecond) // parentless
	if got := tr.Len(); got != 1 {
		t.Fatalf("parentless Record span dropped: %d spans", got)
	}
}

// TestTailOnKeepSlowAttachesContext: the slow hook fires before the
// tree is published and its attributes land on the exported span.
func TestTailOnKeepSlowAttachesContext(t *testing.T) {
	clk := &fakeClock{}
	var hooked int
	tr := tailTracer(10*time.Millisecond, 0, func(root *Span) {
		hooked++
		root.SetStr("flight", "readcontig h=1 b=64")
	})
	sp := tr.Begin(clk, "srv", "req", 0)
	clk.t = 20 * time.Millisecond
	sp.End(clk)
	if hooked != 1 {
		t.Fatalf("OnKeepSlow fired %d times, want 1", hooked)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans", len(spans))
	}
	var found bool
	for _, a := range spans[0].Attrs {
		if a.Key == "flight" && a.IsStr && a.Str == "readcontig h=1 b=64" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight context attr missing: %+v", spans[0].Attrs)
	}
	var buf strings.Builder
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"flight":"readcontig h=1 b=64"`) {
		t.Fatalf("chrome export missing flight attr: %s", buf.String())
	}
}

// TestTailPassivityWhenDisabled: a tracer without tail sampling must
// behave exactly as before — every span retained at Begin time.
func TestTailPassivityWhenDisabled(t *testing.T) {
	clk := &fakeClock{}
	tr := New()
	sp := tr.Begin(clk, "srv", "req", 0)
	if got := tr.Len(); got != 1 {
		t.Fatalf("default tracer buffered the span (%d retained)", got)
	}
	sp.End(clk)
	roots, slow, sampled, dropped := tr.TailStats()
	if roots != 0 || slow != 0 || sampled != 0 || dropped != 0 {
		t.Fatal("tail stats nonzero on a default tracer")
	}
}

// TestTailConcurrent hammers a tail-sampling tracer from many
// goroutines (run under -race in CI): interleaved trees must each be
// decided exactly once with no pending-state leaks.
func TestTailConcurrent(t *testing.T) {
	clk := &fakeClock{t: time.Millisecond}
	tr := tailTracer(time.Hour, 2, nil)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := tr.Begin(clk, "srv", "req", 0)
				child := tr.Begin(clk, "srv", "disk", root.SID())
				child.End(clk)
				root.End(clk)
			}
		}()
	}
	wg.Wait()
	roots, _, sampled, dropped := tr.TailStats()
	if roots != workers*per {
		t.Fatalf("decided %d roots, want %d", roots, workers*per)
	}
	if got := int64(tr.Len()); got != 2*sampled {
		t.Fatalf("retained %d spans, want %d (2 per sampled root)", got, 2*sampled)
	}
	if sampled != workers*per/2 || dropped != 2*(workers*per-sampled) {
		t.Fatalf("sampled=%d dropped=%d for %d roots", sampled, dropped, workers*per)
	}
	tr.mu.Lock()
	pending := len(tr.tail.rootOf) + len(tr.tail.trees)
	tr.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending entries leaked after all roots ended", pending)
	}
}
