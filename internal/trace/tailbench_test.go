package trace

import (
	"testing"
	"time"
)

type benchClock struct{ t time.Duration }

func (c *benchClock) Now() time.Duration { c.t += time.Microsecond; return c.t }

// BenchmarkTailRootDecision prices the full tail-sampled span cycle a
// server pays per observed request — root Begin, child Begin with an
// attribute, both Ends, and the root drop decision. BENCH_PR10.json's
// <2% overhead bar assumes this stays deep sub-microsecond against a
// ~100µs TCP+disk request; a regression here is what would move it.
func BenchmarkTailRootDecision(b *testing.B) {
	tr := New()
	tr.EnableTailSampling(TailConfig{Threshold: func() time.Duration { return time.Hour }, Every: 128})
	clk := &benchClock{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(clk, "io-server-0", "req", 0)
		child := tr.Begin(clk, "io-server-0", "disk:read", sp.SID())
		child.SetAttr("bytes", 4096)
		child.End(clk)
		sp.End(clk)
	}
}
