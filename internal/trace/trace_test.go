package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced Clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	tr := New()
	clk.t = 10 * time.Microsecond
	op := tr.Begin(clk, "rank0", "read-dtype", 0)
	op.SetAttr("bytes", 4096)
	op.SetStr("method", "dtype")
	clk.t = 30 * time.Microsecond
	child := tr.Begin(clk, "io-server-3", "req:dtype-read", op.SID())
	clk.t = 40 * time.Microsecond
	child.End(clk)
	clk.t = 50 * time.Microsecond
	op.End(clk)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans=%d", len(spans))
	}
	if spans[0].ID != 1 || spans[1].ID != 2 {
		t.Fatalf("ids %d %d", spans[0].ID, spans[1].ID)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("parent link %d != %d", spans[1].Parent, spans[0].ID)
	}
	if spans[0].Start != 10*time.Microsecond || spans[0].Finish != 50*time.Microsecond {
		t.Fatalf("span0 window [%v,%v]", spans[0].Start, spans[0].Finish)
	}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[0].Val != 4096 || spans[0].Attrs[1].Str != "dtype" {
		t.Fatalf("attrs %+v", spans[0].Attrs)
	}
}

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	// A panicking clock proves the disabled path never reads the clock.
	sp := tr.Begin(panicClock{}, "x", "y", 0)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetAttr("k", 1)
	sp.SetStr("k", "v")
	sp.End(panicClock{})
	if sp.SID() != 0 {
		t.Fatal("nil span SID != 0")
	}
	tr.Record("x", "y", 0, 0, 0)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid: %q", buf.String())
	}

	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Begin(panicClock{}, "x", "y", 0)
		s.SetAttr("bytes", 123)
		s.End(panicClock{})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

type panicClock struct{}

func (panicClock) Now() time.Duration { panic("clock read on disabled tracer") }

func TestRecordCompletedSpan(t *testing.T) {
	tr := New()
	tr.Record("meta", "lock:wait", 7, 100*time.Microsecond, 250*time.Microsecond,
		Attr{Key: "handle", Val: 42})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans=%d", len(spans))
	}
	sp := spans[0]
	if sp.Parent != 7 || sp.Start != 100*time.Microsecond || sp.Finish != 250*time.Microsecond {
		t.Fatalf("span %+v", sp)
	}
	if len(sp.Attrs) != 1 || sp.Attrs[0].Val != 42 {
		t.Fatalf("attrs %+v", sp.Attrs)
	}
}

func TestConcurrentBegin(t *testing.T) {
	clk := &fakeClock{}
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(clk, "rank", "op", 0)
				sp.SetAttr("i", int64(i))
				sp.End(clk)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1600 {
		t.Fatalf("len=%d", tr.Len())
	}
	seen := map[SpanID]bool{}
	for _, sp := range tr.Spans() {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// chromeEvent mirrors the subset of the trace-event format we emit.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func exportEvents(t *testing.T, tr *Tracer) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.TraceEvents
}

func TestWriteChrome(t *testing.T) {
	clk := &fakeClock{}
	tr := New()
	clk.t = 5 * time.Microsecond
	op := tr.Begin(clk, "rank0", "read", 0)
	clk.t = 8 * time.Microsecond
	srv := tr.Begin(clk, "io-server-1", `req:"quoted"`, op.SID())
	srv.SetAttr("bytes", 64)
	srv.SetStr("method", "dtype")
	clk.t = 12 * time.Microsecond
	srv.End(clk)
	clk.t = 20 * time.Microsecond
	op.End(clk)

	evs := exportEvents(t, tr)
	var meta, x []chromeEvent
	for _, e := range evs {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			x = append(x, e)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if len(meta) != 2 || len(x) != 2 {
		t.Fatalf("meta=%d x=%d", len(meta), len(x))
	}
	names := map[int]string{}
	for _, m := range meta {
		names[m.Pid] = m.Args["name"].(string)
	}
	if names[1] != "rank0" || names[2] != "io-server-1" {
		t.Fatalf("track names %v", names)
	}
	// Both spans share the root span's tid lane.
	if x[0].Tid != int64(op.ID) || x[1].Tid != int64(op.ID) {
		t.Fatalf("tids %d %d want %d", x[0].Tid, x[1].Tid, op.ID)
	}
	if x[1].Ts != 8 || x[1].Dur != 4 {
		t.Fatalf("server span ts=%v dur=%v", x[1].Ts, x[1].Dur)
	}
	if x[1].Args["parent"].(float64) != float64(op.ID) {
		t.Fatalf("parent arg %v", x[1].Args["parent"])
	}
	if x[1].Args["bytes"].(float64) != 64 || x[1].Args["method"].(string) != "dtype" {
		t.Fatalf("attrs %v", x[1].Args)
	}
	if !strings.Contains(x[1].Name, `"quoted"`) {
		t.Fatalf("name quoting lost: %q", x[1].Name)
	}
}

func TestWriteChromeUnfinishedSpan(t *testing.T) {
	clk := &fakeClock{t: time.Millisecond}
	tr := New()
	tr.Begin(clk, "rank0", "stuck", 0) // never ended
	evs := exportEvents(t, tr)
	for _, e := range evs {
		if e.Ph == "X" && e.Dur != 0 {
			t.Fatalf("unfinished span dur=%v", e.Dur)
		}
	}
}

func TestWriteChromeSortedOrdersByStart(t *testing.T) {
	clk := &fakeClock{}
	tr := New()
	clk.t = 30 * time.Microsecond
	b := tr.Begin(clk, "r", "late", 0)
	b.End(clk)
	clk.t = 10 * time.Microsecond
	a := tr.Begin(clk, "r", "early", 0)
	a.End(clk)
	var buf bytes.Buffer
	if err := tr.WriteChromeSorted(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	early := strings.Index(buf.String(), `"early"`)
	late := strings.Index(buf.String(), `"late"`)
	if early == -1 || late == -1 || early > late {
		t.Fatalf("order early=%d late=%d", early, late)
	}
}
