package cache

import "container/list"

// DefaultChunkBytes is the cache's extent (and lease) granularity: file
// space is cached in aligned chunks of this size, each covered by one
// byte-range lease. Large enough that a flush is a few big runs, small
// enough that false sharing between neighboring writers stays cheap.
const DefaultChunkBytes = 256 * 1024

// Config sizes a Store.
type Config struct {
	// ChunkBytes is the aligned chunk size (<= 0: DefaultChunkBytes).
	ChunkBytes int64
	// MaxBytes caps resident chunk data; at least one chunk is always
	// admitted (<= 0: unlimited).
	MaxBytes int64
}

// Chunk is one resident extent: ChunkBytes of file [Off, Off+ChunkBytes)
// of the file named by Handle. Valid and Dirty are chunk-relative byte
// ranges; Dirty ⊆ Valid. Lease state lives with the owner (the pvfs
// client), which stores what it needs in the exported fields.
type Chunk struct {
	Handle uint64
	Off    int64
	Data   []byte
	Valid  RangeSet
	Dirty  RangeSet

	// Lease bookkeeping for the owner: the covering lock's ID, whether
	// it is exclusive, and when it was granted (for expiry tracking).
	LockID    uint64
	Exclusive bool
	LeaseEnd  int64 // owner's flush-before deadline in ns (0 = none)

	elem *list.Element
}

// Write copies p into the chunk at absolute file offset off, marking
// the range valid and dirty. The caller guarantees the range lies
// within the chunk.
func (c *Chunk) Write(off int64, p []byte) {
	rel := off - c.Off
	copy(c.Data[rel:], p)
	c.Valid = c.Valid.Add(rel, int64(len(p)))
	c.Dirty = c.Dirty.Add(rel, int64(len(p)))
}

// ReadInto copies the absolute range [off, off+len(p)) into p if it is
// entirely valid; ok reports whether it was.
func (c *Chunk) ReadInto(off int64, p []byte) (ok bool) {
	rel := off - c.Off
	if !c.Valid.Contains(rel, int64(len(p))) {
		return false
	}
	copy(p, c.Data[rel:])
	return true
}

// Fill installs freshly read chunk contents without clobbering ranges
// already valid (which may hold newer, dirty bytes): only the gaps are
// copied. data covers the whole chunk.
func (c *Chunk) Fill(data []byte) {
	gaps := RangeSet{{Off: 0, N: int64(len(c.Data))}}
	for _, v := range c.Valid {
		gaps = gaps.Sub(v.Off, v.N)
	}
	for _, g := range gaps {
		copy(c.Data[g.Off:g.End()], data[g.Off:g.End()])
	}
	c.Valid = RangeSet{{Off: 0, N: int64(len(c.Data))}}
}

// DirtyRuns reports the dirty ranges as absolute file regions.
func (c *Chunk) DirtyRuns() []Region {
	runs := make([]Region, len(c.Dirty))
	for i, d := range c.Dirty {
		runs[i] = Region{Off: c.Off + d.Off, N: d.N}
	}
	return runs
}

// MarkClean clears dirtiness (after the owner flushed the runs).
func (c *Chunk) MarkClean() { c.Dirty = nil }

// Store holds a client's cached chunks with LRU eviction order.
type Store struct {
	cfg    Config
	chunks map[chunkKey]*Chunk
	lru    *list.List // front = most recently used
	bytes  int64
}

type chunkKey struct {
	handle uint64
	off    int64
}

// New creates an empty Store.
func New(cfg Config) *Store {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	return &Store{cfg: cfg, chunks: make(map[chunkKey]*Chunk), lru: list.New()}
}

// ChunkBytes reports the chunk granularity.
func (s *Store) ChunkBytes() int64 { return s.cfg.ChunkBytes }

// Align rounds off down to its chunk start.
func (s *Store) Align(off int64) int64 { return off - off%s.cfg.ChunkBytes }

// Get returns the resident chunk at the aligned offset, or nil.
func (s *Store) Get(handle uint64, off int64) *Chunk {
	return s.chunks[chunkKey{handle, off}]
}

// GetOrCreate returns the chunk at the aligned offset, allocating an
// empty one if absent, and bumps it to most-recently-used.
func (s *Store) GetOrCreate(handle uint64, off int64) *Chunk {
	k := chunkKey{handle, off}
	c := s.chunks[k]
	if c == nil {
		c = &Chunk{Handle: handle, Off: off, Data: make([]byte, s.cfg.ChunkBytes)}
		c.elem = s.lru.PushFront(c)
		s.chunks[k] = c
		s.bytes += s.cfg.ChunkBytes
	} else {
		s.lru.MoveToFront(c.elem)
	}
	return c
}

// Touch bumps a chunk to most-recently-used.
func (s *Store) Touch(c *Chunk) { s.lru.MoveToFront(c.elem) }

// Drop removes a chunk from the store.
func (s *Store) Drop(c *Chunk) {
	k := chunkKey{c.Handle, c.Off}
	if s.chunks[k] == c {
		delete(s.chunks, k)
		s.lru.Remove(c.elem)
		s.bytes -= int64(len(c.Data))
	}
}

// Bytes reports resident chunk data.
func (s *Store) Bytes() int64 { return s.bytes }

// OverBudget reports whether eviction is due. A single chunk is always
// admitted, so a cache smaller than one chunk still functions.
func (s *Store) OverBudget() bool {
	return s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes && s.lru.Len() > 1
}

// Victim returns the least-recently-used chunk not in pinned, or nil.
func (s *Store) Victim(pinned map[*Chunk]bool) *Chunk {
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		c := e.Value.(*Chunk)
		if !pinned[c] {
			return c
		}
	}
	return nil
}

// Chunks returns every resident chunk of the file (any order).
func (s *Store) Chunks(handle uint64) []*Chunk {
	var out []*Chunk
	for k, c := range s.chunks {
		if k.handle == handle {
			out = append(out, c)
		}
	}
	return out
}

// All returns every resident chunk (any order).
func (s *Store) All() []*Chunk {
	out := make([]*Chunk, 0, len(s.chunks))
	for _, c := range s.chunks {
		out = append(out, c)
	}
	return out
}

// Overlapping returns the resident chunks of the file intersecting the
// absolute range [off, off+n), in ascending chunk order.
func (s *Store) Overlapping(handle uint64, off, n int64) []*Chunk {
	if n <= 0 {
		return nil
	}
	var out []*Chunk
	for at := s.Align(off); at < off+n; at += s.cfg.ChunkBytes {
		if c := s.Get(handle, at); c != nil {
			out = append(out, c)
		}
	}
	return out
}
