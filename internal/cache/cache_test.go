package cache

import (
	"bytes"
	"testing"
)

func regions(s RangeSet) []Region { return []Region(s) }

func TestRangeSetAddMerge(t *testing.T) {
	var s RangeSet
	s = s.Add(10, 10) // [10,20)
	s = s.Add(30, 10) // [10,20) [30,40)
	if len(s) != 2 {
		t.Fatalf("want 2 regions, got %v", regions(s))
	}
	s = s.Add(20, 10) // adjacent on both sides: merge to [10,40)
	if len(s) != 1 || s[0] != (Region{Off: 10, N: 30}) {
		t.Fatalf("want [10,+30), got %v", regions(s))
	}
	s = s.Add(5, 100)
	if len(s) != 1 || s[0] != (Region{Off: 5, N: 100}) {
		t.Fatalf("want [5,+100), got %v", regions(s))
	}
	if got := s.Bytes(); got != 100 {
		t.Fatalf("Bytes = %d, want 100", got)
	}
}

func TestRangeSetSubSplits(t *testing.T) {
	var s RangeSet
	s = s.Add(0, 100)
	s = s.Sub(40, 20) // [0,40) [60,100)
	if len(s) != 2 || s[0] != (Region{0, 40}) || s[1] != (Region{60, 40}) {
		t.Fatalf("got %v", regions(s))
	}
	if s.Contains(30, 20) {
		t.Fatal("range straddling the hole reported contained")
	}
	if !s.Contains(60, 40) || !s.Contains(0, 40) {
		t.Fatal("surviving halves not contained")
	}
	if !s.Overlaps(35, 10) {
		t.Fatal("overlap with left half missed")
	}
	if s.Overlaps(45, 10) {
		t.Fatal("hole reported overlapping")
	}
	s = s.Sub(0, 200)
	if len(s) != 0 {
		t.Fatalf("full subtract left %v", regions(s))
	}
}

func TestChunkWriteReadFill(t *testing.T) {
	s := New(Config{ChunkBytes: 64})
	c := s.GetOrCreate(1, 64)
	c.Write(70, []byte("dirty!"))
	buf := make([]byte, 6)
	if !c.ReadInto(70, buf) || string(buf) != "dirty!" {
		t.Fatalf("read-back of cached write: %q", buf)
	}
	if c.ReadInto(64, make([]byte, 10)) {
		t.Fatal("partially-valid range served as a hit")
	}
	// Fill with server contents: gaps take the fill, dirty bytes win.
	fill := bytes.Repeat([]byte{0xAA}, 64)
	c.Fill(fill)
	whole := make([]byte, 64)
	if !c.ReadInto(64, whole) {
		t.Fatal("chunk not fully valid after Fill")
	}
	want := bytes.Repeat([]byte{0xAA}, 64)
	copy(want[6:], "dirty!")
	if !bytes.Equal(whole, want) {
		t.Fatalf("Fill clobbered dirty bytes:\n got %x\nwant %x", whole, want)
	}
	runs := c.DirtyRuns()
	if len(runs) != 1 || runs[0] != (Region{Off: 70, N: 6}) {
		t.Fatalf("DirtyRuns = %v", runs)
	}
	c.MarkClean()
	if len(c.Dirty) != 0 {
		t.Fatal("MarkClean left dirt")
	}
}

func TestStoreLRUAndVictim(t *testing.T) {
	s := New(Config{ChunkBytes: 64, MaxBytes: 128})
	a := s.GetOrCreate(1, 0)
	b := s.GetOrCreate(1, 64)
	if s.OverBudget() {
		t.Fatal("at budget, not over")
	}
	c := s.GetOrCreate(1, 128)
	if !s.OverBudget() {
		t.Fatal("3 chunks of 64 over a 128 budget")
	}
	s.Touch(a) // a most recent; b is LRU
	if v := s.Victim(nil); v != b {
		t.Fatalf("victim = %+v, want chunk at 64", v)
	}
	if v := s.Victim(map[*Chunk]bool{b: true}); v != c {
		t.Fatalf("pinned victim = %+v, want chunk at 128", v)
	}
	s.Drop(b)
	if s.Get(1, 64) != nil || s.Bytes() != 128 {
		t.Fatal("Drop did not remove the chunk")
	}
	if got := len(s.Overlapping(1, 60, 100)); got != 2 {
		t.Fatalf("Overlapping spans %d chunks, want 2 (0 and 128 resident)", got)
	}
	if got := len(s.Chunks(1)); got != 2 {
		t.Fatalf("Chunks = %d, want 2", got)
	}
}

func TestStoreAlignAndSingleChunkAdmission(t *testing.T) {
	s := New(Config{ChunkBytes: 256, MaxBytes: 100}) // budget < one chunk
	if s.Align(300) != 256 || s.Align(255) != 0 {
		t.Fatal("Align broken")
	}
	s.GetOrCreate(7, 0)
	if s.OverBudget() {
		t.Fatal("sole chunk must always be admitted")
	}
}
