// Package cache is the client-side extent cache: chunk-organized file
// data with validity and dirtiness tracked as byte ranges, evicted LRU.
// It is a pure data structure — no I/O, no locking protocol. The pvfs
// client layers coherence on top by covering every resident chunk with
// a shared or exclusive lease from the metadata server's lock service
// and flushing dirty ranges through the list-I/O write path (see
// DESIGN.md §13).
//
// The cache is not safe for concurrent use: it belongs to one client's
// logical thread, which is the only thread that reads or writes it.
package cache

// Region is a half-open byte range [Off, Off+N).
type Region struct {
	Off int64
	N   int64
}

// End reports Off+N.
func (r Region) End() int64 { return r.Off + r.N }

// RangeSet is a sorted list of disjoint, non-adjacent regions. The zero
// value is an empty set. Operations return the updated set (append-style
// usage: s = s.Add(...)).
type RangeSet []Region

// Add inserts [off, off+n), merging with any overlapping or adjacent
// regions.
func (s RangeSet) Add(off, n int64) RangeSet {
	if n <= 0 {
		return s
	}
	out := make(RangeSet, 0, len(s)+1)
	i := 0
	for ; i < len(s) && s[i].End() < off; i++ {
		out = append(out, s[i])
	}
	lo, hi := off, off+n
	for ; i < len(s) && s[i].Off <= hi; i++ {
		if s[i].Off < lo {
			lo = s[i].Off
		}
		if s[i].End() > hi {
			hi = s[i].End()
		}
	}
	out = append(out, Region{Off: lo, N: hi - lo})
	out = append(out, s[i:]...)
	return out
}

// Sub removes [off, off+n), splitting regions that straddle the cut.
func (s RangeSet) Sub(off, n int64) RangeSet {
	if n <= 0 {
		return s
	}
	hi := off + n
	out := make(RangeSet, 0, len(s)+1)
	for _, r := range s {
		if r.End() <= off || r.Off >= hi {
			out = append(out, r)
			continue
		}
		if r.Off < off {
			out = append(out, Region{Off: r.Off, N: off - r.Off})
		}
		if r.End() > hi {
			out = append(out, Region{Off: hi, N: r.End() - hi})
		}
	}
	return out
}

// Contains reports whether [off, off+n) lies entirely inside the set.
func (s RangeSet) Contains(off, n int64) bool {
	if n <= 0 {
		return true
	}
	for _, r := range s {
		if r.Off <= off && off+n <= r.End() {
			return true
		}
	}
	return false
}

// Overlaps reports whether [off, off+n) intersects the set.
func (s RangeSet) Overlaps(off, n int64) bool {
	hi := off + n
	for _, r := range s {
		if r.Off < hi && off < r.End() {
			return true
		}
	}
	return false
}

// Bytes reports the total length covered.
func (s RangeSet) Bytes() int64 {
	var total int64
	for _, r := range s {
		total += r.N
	}
	return total
}
