package bench

import (
	"fmt"

	"dtio/internal/mpiio"
)

// cacheByte is the oracle for the locality workloads: the expected value
// of file byte off after round rd.
func cacheByte(rd int, off int64) byte { return byte(off*193 + off>>10 + int64(rd)*31) }

// ReRead measures read locality through the extent cache: every rank
// owns a disjoint region, writes it once, then re-reads it `rounds`
// times in opBytes steps. With the cache sized to hold the region, the
// first pass fills and every later pass hits — the workload behind the
// hit-ratio guarantee (EXPERIMENTS.md PR6).
func ReRead(cfg Config, clients int, regionBytes, opBytes int64, rounds int) Result {
	return cacheLocality(cfg, "cache-reread", clients, regionBytes, opBytes, rounds, false)
}

// ReWrite measures write locality: every rank overwrites its region
// `rounds` times. A caching client absorbs every round in place and
// writes the region back once; an uncached client pays full wire
// traffic per round.
func ReWrite(cfg Config, clients int, regionBytes, opBytes int64, rounds int) Result {
	return cacheLocality(cfg, "cache-rewrite", clients, regionBytes, opBytes, rounds, true)
}

func cacheLocality(cfg Config, name string, clients int, regionBytes, opBytes int64, rounds int, rewrite bool) Result {
	res := Result{Name: name, Method: mpiio.Posix, Clients: clients}
	if clients <= 0 || regionBytes <= 0 || opBytes <= 0 || opBytes > regionBytes || rounds <= 0 {
		res.Err = fmt.Errorf("bench: bad locality shape: %d clients, %d region, %d op, %d rounds",
			clients, regionBytes, opBytes, rounds)
		return res
	}
	cfg.Clients = clients
	cl := NewCluster(cfg)
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "locality.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		base := int64(r.ID) * regionBytes
		buf := make([]byte, opBytes)
		write := func(rd int) error {
			for at := int64(0); at < regionBytes; at += opBytes {
				if cfg.Verify {
					for i := range buf {
						buf[i] = cacheByte(rd, base+at+int64(i))
					}
				}
				if err := pf.WriteContig(r.Env, base+at, buf); err != nil {
					return err
				}
			}
			return nil
		}
		read := func(rd int) error {
			for at := int64(0); at < regionBytes; at += opBytes {
				if err := pf.ReadContig(r.Env, base+at, buf); err != nil {
					return err
				}
				if cfg.Verify {
					for i := range buf {
						if buf[i] != cacheByte(rd, base+at+int64(i)) {
							return fmt.Errorf("rank %d: stale byte at %d on round %d", r.ID, base+at+int64(i), rd)
						}
					}
				}
			}
			return nil
		}
		r.Stats.Reset()
		if err := r.TimePhase(func() error {
			if rewrite {
				for rd := 0; rd < rounds; rd++ {
					if err := write(rd); err != nil {
						return err
					}
				}
				return nil
			}
			if err := write(0); err != nil {
				return err
			}
			for rd := 0; rd < rounds; rd++ {
				if err := read(0); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if cfg.Verify {
			// Read back through the plain path (NoCache) and check the
			// flushed image byte-for-byte: cached and uncached runs must
			// produce identical files.
			r.Comm.Barrier(r.Env)
			plain, err := r.FS.Open(r.Env, "locality.dat")
			if err != nil {
				return err
			}
			plain.NoCache = true
			final := 0
			if rewrite {
				final = rounds - 1
			}
			got := make([]byte, regionBytes)
			if err := plain.ReadContig(r.Env, base, got); err != nil {
				return err
			}
			for i := range got {
				if got[i] != cacheByte(final, base+int64(i)) {
					return fmt.Errorf("rank %d: flushed byte %d wrong", r.ID, base+int64(i))
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Bytes = regionBytes * int64(clients)
	if rewrite {
		res.Bytes *= int64(rounds)
	} else {
		res.Bytes *= int64(rounds + 1)
	}
	res.Err = err
	return res
}

// CacheContention is the coherence stress: every rank writes the SAME
// shared extent each round, so each access conflicts with every cached
// copy and the metadata server revokes its way around the ring. The
// interesting columns are lock waits, invalidations and flushes — the
// bounded price of keeping caches coherent — while verification holds
// because every rank writes the same oracle pattern.
func CacheContention(cfg Config, writers int, extentBytes int64, rounds int) Result {
	res := Result{Name: "cache-contention", Method: mpiio.Posix, Clients: writers}
	if writers <= 0 || extentBytes <= 0 || rounds <= 0 {
		res.Err = fmt.Errorf("bench: bad contention shape: %d writers, %d extent, %d rounds", writers, extentBytes, rounds)
		return res
	}
	cfg.Clients = writers
	cl := NewCluster(cfg)
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "pingpong.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		// Step through the extent in sub-chunk writes: every rank's pass
		// touches every chunk of the shared extent, so concurrent passes
		// collide chunk by chunk and the lease protocol must revoke its
		// way through (one whole-extent write would serialize at a single
		// lease acquire and hide the contention).
		const step = 4096
		buf := make([]byte, step)
		got := make([]byte, step)
		r.Stats.Reset()
		if err := r.TimePhase(func() error {
			for rd := 0; rd < rounds; rd++ {
				for at := int64(0); at < extentBytes; at += step {
					n := min(step, extentBytes-at)
					for i := int64(0); i < n; i++ {
						buf[i] = cacheByte(0, at+i)
					}
					if err := pf.WriteContig(r.Env, at, buf[:n]); err != nil {
						return err
					}
				}
				for at := int64(0); at < extentBytes; at += step {
					n := min(step, extentBytes-at)
					if err := pf.ReadContig(r.Env, at, got[:n]); err != nil {
						return err
					}
					if cfg.Verify {
						for i := int64(0); i < n; i++ {
							if got[i] != cacheByte(0, at+i) {
								return fmt.Errorf("rank %d round %d: torn byte at %d", r.ID, rd, at+i)
							}
						}
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if cfg.Verify {
			r.Comm.Barrier(r.Env)
			if r.ID == 0 {
				plain, err := r.FS.Open(r.Env, "pingpong.dat")
				if err != nil {
					return err
				}
				plain.NoCache = true
				got := make([]byte, extentBytes)
				if err := plain.ReadContig(r.Env, 0, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != cacheByte(0, int64(i)) {
						return fmt.Errorf("flushed byte %d wrong after contention", i)
					}
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Bytes = 2 * extentBytes * int64(writers) * int64(rounds)
	res.Err = err
	return res
}
