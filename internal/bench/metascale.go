package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// MetaScale hammers the control plane alone: every rank cycles over its
// private files doing open + exclusive lock + unlock — three metadata
// exchanges and zero data I/O — so aggregate throughput is bounded by
// the metadata service, not disks or data NICs. File names spread over
// the shard map by rendezvous hashing, so with N shards the same rank
// population drives N lock services; the scaling curve (ops/s and
// lock-grant latency vs MetaShards) is the PR7 headline. Per-rank
// volume is fixed as shards vary, so runs differ only in control-plane
// capacity.
func MetaScale(cfg Config, files, rounds int) Result {
	res := Result{Name: "meta-scale", Clients: cfg.Clients}
	if cfg.Clients <= 0 || files <= 0 || rounds <= 0 {
		res.Err = fmt.Errorf("bench: bad meta-scale shape: %d clients, %d files, %d rounds", cfg.Clients, files, rounds)
		return res
	}
	cl := NewCluster(cfg)
	elapsed, per, err := cl.Run(func(r *Rank) error {
		names := make([]string, files)
		for i := range names {
			names[i] = fmt.Sprintf("ms.%04d.%02d", r.ID, i)
			if _, err := r.FS.Create(r.Env, names[i], cfg.StripSize, 1); err != nil {
				return err
			}
		}
		r.Stats.Reset()
		return r.TimePhase(func() error {
			for round := 0; round < rounds; round++ {
				for _, name := range names {
					pf, err := r.FS.Open(r.Env, name)
					if err != nil {
						return err
					}
					// Observe the acquire→grant round trip: under a
					// saturated shard this is where queueing shows up.
					t0 := r.Env.Now()
					lk, err := pf.Lock(r.Env, 0, 4096, false)
					if err != nil {
						return err
					}
					r.c.opLats[r.ID].Observe(r.Env.Now() - t0)
					if err := pf.Unlock(r.Env, lk); err != nil {
						return err
					}
				}
			}
			return nil
		})
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.ShardLocks = cl.ShardLockStats()
	res.MetaOps = int64(cfg.Clients) * int64(files) * int64(rounds) * 3
	res.Err = err
	return res
}

// MetaOpsPerSec reports the workload's control-plane throughput.
func (r Result) MetaOpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.MetaOps) / r.Elapsed.Seconds()
}

// identByte is the oracle for ShardIdentity file contents.
func identByte(rank int, off int64) byte { return byte(int64(rank)*211 + off*167 + off>>9) }

// ShardIdentity proves shard count never changes file contents: every
// rank writes a private file, disjoint interleaved stripes of a shared
// file, and performs locked read-modify-write increments on a shared
// counter; rank 0 then reads everything back, verifies it against the
// oracles, and folds the namespace listing plus every byte into one
// FNV-1a hash. The hash must be identical across 1/2/4/8 meta shards —
// partitioning moves metadata and lock authority, never data. Run with
// Verify on (real storage).
func ShardIdentity(cfg Config, ranks, rounds int) (Result, uint64) {
	const (
		privBytes = 64 * 1024
		stripe    = int64(4096)
		rows      = 4
		ctrCells  = int64(8)
	)
	res := Result{Name: "shard-identity", Clients: ranks}
	if ranks <= 0 || rounds <= 0 {
		res.Err = fmt.Errorf("bench: bad shard-identity shape: %d ranks, %d rounds", ranks, rounds)
		return res, 0
	}
	cfg.Clients = ranks
	cfg.Discard = false
	cl := NewCluster(cfg)
	period := stripe * int64(ranks)
	var hash uint64
	elapsed, per, err := cl.Run(func(r *Rank) error {
		// Rank 0 creates the shared files; everyone creates their own.
		if r.ID == 0 {
			if _, err := r.FS.Create(r.Env, "id.shared.dat", cfg.StripSize, 0); err != nil {
				return err
			}
			ctr, err := r.FS.Create(r.Env, "id.counter.dat", cfg.StripSize, 0)
			if err != nil {
				return err
			}
			if err := ctr.WriteContig(r.Env, 0, make([]byte, ctrCells)); err != nil {
				return err
			}
		}
		priv, err := r.FS.Create(r.Env, fmt.Sprintf("id.%04d.dat", r.ID), cfg.StripSize, 0)
		if err != nil {
			return err
		}
		r.Comm.Barrier(r.Env)
		shared, err := r.FS.Open(r.Env, "id.shared.dat")
		if err != nil {
			return err
		}
		ctr, err := r.FS.Open(r.Env, "id.counter.dat")
		if err != nil {
			return err
		}
		return r.TimePhase(func() error {
			// Private file: one contiguous oracle-patterned write.
			buf := make([]byte, privBytes)
			for i := range buf {
				buf[i] = identByte(r.ID, int64(i))
			}
			if err := priv.WriteContig(r.Env, 0, buf); err != nil {
				return err
			}
			// Shared file: this rank's disjoint interleaved stripes.
			srow := make([]byte, stripe)
			for p := 0; p < rows; p++ {
				off := int64(p)*period + int64(r.ID)*stripe
				for i := range srow {
					srow[i] = identByte(0, off+int64(i))
				}
				if err := shared.WriteContig(r.Env, off, srow); err != nil {
					return err
				}
			}
			// Counter: locked read-modify-write increments. Increments
			// commute, so the final cells are deterministic however the
			// ranks interleave — but only if the lock actually excludes;
			// a lost update changes the hash.
			cell := make([]byte, ctrCells)
			for round := 0; round < rounds; round++ {
				lk, err := ctr.Lock(r.Env, 0, ctrCells, false)
				if err != nil {
					return err
				}
				if err := ctr.ReadContig(r.Env, 0, cell); err != nil {
					return err
				}
				for i := range cell {
					cell[i]++
				}
				if err := ctr.WriteContig(r.Env, 0, cell); err != nil {
					return err
				}
				if err := ctr.Unlock(r.Env, lk); err != nil {
					return err
				}
			}
			r.Comm.Barrier(r.Env)
			if r.ID != 0 {
				return nil
			}
			// Rank 0: verify every byte against the oracles and fold the
			// namespace plus all contents into the identity hash.
			h := fnv.New64a()
			names, err := r.FS.ListNames(r.Env)
			if err != nil {
				return err
			}
			for _, n := range names {
				h.Write([]byte(n))
				h.Write([]byte{0})
			}
			for rank := 0; rank < ranks; rank++ {
				pf, err := r.FS.Open(r.Env, fmt.Sprintf("id.%04d.dat", rank))
				if err != nil {
					return err
				}
				got := make([]byte, privBytes)
				if err := pf.ReadContig(r.Env, 0, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != identByte(rank, int64(i)) {
						return fmt.Errorf("rank %d private byte %d wrong", rank, i)
					}
				}
				h.Write(got)
			}
			got := make([]byte, period*int64(rows))
			if err := shared.ReadContig(r.Env, 0, got); err != nil {
				return err
			}
			for i := range got {
				if got[i] != identByte(0, int64(i)) {
					return fmt.Errorf("shared byte %d wrong after interleaved writes", i)
				}
			}
			h.Write(got)
			want := byte(ranks * rounds)
			cells := make([]byte, ctrCells)
			if err := ctr.ReadContig(r.Env, 0, cells); err != nil {
				return err
			}
			if !bytes.Equal(cells, bytes.Repeat([]byte{want}, int(ctrCells))) {
				return fmt.Errorf("counter cells %v, want all %d: lost update under lock", cells, want)
			}
			h.Write(cells)
			hash = h.Sum64()
			return nil
		})
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.ShardLocks = cl.ShardLockStats()
	res.Bytes = int64(ranks)*privBytes + period*int64(rows) + ctrCells
	res.Err = err
	return res, hash
}
