// Package bench reproduces the paper's evaluation: it builds a simulated
// Chiba City cluster (16 I/O servers, 100 Mbit/s fast ethernet, one disk
// per server) and runs the three benchmarks — tile reader, ROMIO 3-D
// block, FLASH I/O — under each access method, reporting bandwidth
// figures and the per-client I/O characteristics tables.
package bench

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dtio/internal/fault"
	"dtio/internal/flightrec"
	"dtio/internal/iostats"
	"dtio/internal/locks"
	"dtio/internal/metrics"
	"dtio/internal/mpi"
	"dtio/internal/mpiio"
	"dtio/internal/pvfs"
	"dtio/internal/replica"
	"dtio/internal/storage"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/vtime"
)

// Config describes one simulated cluster.
type Config struct {
	Servers      int // I/O servers (16 in the paper)
	Clients      int // compute processes
	ProcsPerNode int // client processes per node (paper: 1 tile, 2 others)
	// MetaShards is the number of metadata servers the control plane is
	// partitioned over (DESIGN.md §14). 0 or 1 runs the classic single
	// metadata server; shard i is placed on I/O server node i mod
	// Servers, as the paper's testbed doubles the meta server up on a
	// storage node.
	MetaShards int
	// Replicas organizes the I/O servers into replica groups of this
	// size k (DESIGN.md §16): Servers must be a multiple of k, the
	// striping width becomes Servers/k groups, every write fans out to
	// all k members of its group, and reads are served by any live
	// member. 0 or 1 runs unreplicated — byte-identical to a
	// pre-replication cluster.
	Replicas int
	// LeastLoadedReads switches each rank's replica read picker from
	// rendezvous hashing to least-outstanding-requests (ties resolve to
	// the rendezvous choice). Only meaningful with Replicas > 1.
	LeastLoadedReads bool
	StripSize        int64
	SimCfg           transport.SimConfig
	Cost             pvfs.CostModel
	Hints            mpiio.Hints
	// Discard makes servers track sizes without storing bytes: used for
	// full-scale performance runs where contents don't matter.
	Discard bool
	// Verify enables data verification inside workloads (requires
	// Discard to be false).
	Verify bool
	// LoopCache enables server-side dataloop caching (the paper's §5
	// future-work extension). Off by default so headline numbers match
	// the paper's prototype, which decodes per request.
	LoopCache bool
	// NoStreaming disables pipelined (flow-controlled) transfers on both
	// servers and clients, restoring store-and-forward I/O: the ablation
	// that isolates the disk/network overlap win.
	NoStreaming bool
	// NoDiskSched disables the servers' disk scheduler: each request's
	// physical runs dispatch in arrival order with no coalescing (the
	// ablation that isolates the scheduling win; DESIGN.md §10).
	NoDiskSched bool
	// SieveGapBytes is the disk scheduler's read gap-merge threshold.
	// Zero means adjacency-only merging; DefaultConfig sets
	// pvfs.DefaultSieveGapBytes.
	SieveGapBytes int64
	// LeaseTimeout is the byte-range lock lease on the metadata server.
	// Simulated clients do not crash, so benchmarks default to 0 (no
	// expiry): a nonzero lease would wake the sweep watchdog and inflate
	// total simulated time without changing the measured phase.
	LeaseTimeout time.Duration
	// Fault, when live, injects message faults into every client ↔
	// I/O-server connection (the metadata channel stays reliable) and
	// schedules the plan's server events — stall, crash-restart, disk
	// degrade — at their virtual times. Nil or a zero plan injects
	// nothing and leaves runs byte-identical to a fault-free build.
	Fault *fault.Plan
	// Retry is the clients' retry policy. The zero value picks a
	// default: pvfs.DefaultRetryPolicy when Fault is live, otherwise no
	// retries (single attempt, blocking receives), matching fault-free
	// behavior exactly.
	Retry pvfs.RetryPolicy
	// Trace, when non-nil, records every rank's operation spans and
	// every server's request/disk/stream spans (plus meta lock waits)
	// into one tracer, linked across the wire, for Chrome export.
	Trace *trace.Tracer
	// CacheBytes enables each rank's client-side extent cache with this
	// data budget (DESIGN.md §13); 0 runs uncached, the pre-PR6
	// behavior. Ranks Flush before their final barrier, so results
	// include write-back costs.
	CacheBytes int64
	// CacheChunkBytes overrides the cache chunk/lease granularity
	// (0 = cache.DefaultChunkBytes).
	CacheChunkBytes int64
	// HealthInterval, when positive, runs the in-sim cluster health
	// aggregator (DESIGN.md §17): every interval it scores each server
	// over the window since the last tick — windowed p99 (via
	// HistSnapshot.Sub) against the cluster median, live queue depth,
	// degrade/repair state — records when a server first crosses the
	// straggler cutoff, and writes the scores into every rank's
	// least-loaded read picker so reads shift away from a straggler
	// within one interval. 0 disables it.
	HealthInterval time.Duration
	// FlightEvents, when positive, gives every I/O server a flight
	// recorder retaining the last N request completions (DESIGN.md
	// §17), so crash/kill events capture a post-mortem
	// (Cluster.PostMortem). 0 runs without recorders, byte-identical to
	// a pre-flightrec cluster.
	FlightEvents int
	// DigestFile, when non-empty, names a file to hash after every rank
	// has finished (still inside the simulation, before the servers shut
	// down): a fresh client reads it contiguously and folds every byte
	// into an FNV-1a digest, retrievable with Cluster.Digest. Requires
	// Discard to be false. Replication experiments compare this digest
	// across healthy and killed-server runs.
	DigestFile string
}

// DefaultConfig is the paper's testbed: 16 I/O servers, 64 KiB strips,
// Chiba City hardware model, discard storage (performance runs).
func DefaultConfig(clients, procsPerNode int) Config {
	return Config{
		Servers:       16,
		Clients:       clients,
		ProcsPerNode:  procsPerNode,
		StripSize:     64 * 1024,
		SimCfg:        transport.DefaultSimConfig(),
		Cost:          pvfs.DefaultCostModel(),
		Hints:         mpiio.DefaultHints(),
		Discard:       true,
		SieveGapBytes: pvfs.DefaultSieveGapBytes,
	}
}

// Rank is the per-process context handed to workload functions.
type Rank struct {
	ID    int
	Env   transport.Env
	FS    *pvfs.Client
	Comm  *mpi.Comm
	Stats *iostats.Stats

	c *Cluster
}

// TimePhase runs work between two barriers and records the window (rank
// 0's measurement defines it, as is conventional). Each rank's op
// latency histogram resets at the first barrier, so reported quantiles
// cover the timed phase only (the rank has issued nothing yet between
// the barriers, so resetting its own histogram cannot race).
func (r *Rank) TimePhase(work func() error) error {
	// A rank blocked in a barrier cannot answer cache-lease revocations,
	// so flush before both barriers (no-ops when caching is off). The
	// closing flush also charges write-back inside the timed window —
	// cached numbers include the cost of getting data to the servers.
	if err := r.FS.Flush(r.Env); err != nil {
		return err
	}
	r.Comm.Barrier(r.Env)
	r.c.opLats[r.ID].Reset()
	start := r.Env.Now()
	err := work()
	if err == nil {
		err = r.FS.Flush(r.Env)
	}
	r.Comm.Barrier(r.Env)
	if r.ID == 0 {
		r.c.winStart = start
		r.c.winEnd = r.Env.Now()
	}
	return err
}

// Utilization summarizes how busy the modeled hardware was over the
// whole run (fractions of elapsed virtual time, averaged per node) — it
// identifies each method's bottleneck.
type Utilization struct {
	ServerDisk float64
	ServerNIC  float64 // max of TX/RX direction averages
	ServerCPU  float64
	ClientNIC  float64
	ClientCPU  float64
}

// Result is one experiment cell.
type Result struct {
	Name      string
	Method    mpiio.Method
	Clients   int
	Elapsed   time.Duration // measured (virtual) time of the timed phase
	Bytes     int64         // application bytes moved in the timed phase
	PerClient iostats.Snapshot
	Disk      iostats.Snapshot // disk-scheduler counters summed over servers
	Util      Utilization
	Locks     locks.Stats // lock-service counters summed over meta shards
	// ShardLocks is each metadata shard's lock-service counters in shard
	// order (len 1 unsharded); MetaOps counts the workload's logical
	// control-plane operations (0 for data-plane workloads).
	ShardLocks []locks.Stats
	MetaOps    int64
	Fault      fault.Stats // what the injector actually did (zero when off)
	// Total is the undivided sum of every rank's lifetime counters —
	// the whole run including untimed setup, which workloads Reset out
	// of the tables. The recovery counters (Retries, Timeouts,
	// ReplayedBytes, FailoverNs) are meaningful here: averaging them
	// per client and per frame rounds small counts to zero, and a
	// fault can land in setup as easily as in the timed phase.
	Total iostats.Snapshot
	// Lat is the client operation latency distribution over the timed
	// phase, merged across ranks; SrvLat is the servers' per-request
	// service-time distribution over the whole run, merged across
	// servers. Quantiles() on either yields p50/p95/p99.
	Lat    metrics.HistSnapshot
	SrvLat metrics.HistSnapshot
	// Digest is the post-run file hash requested with Config.DigestFile
	// (0 when unused); DigestErr is any error the digest read hit, kept
	// separate from Err so a workload failure doesn't mask whether the
	// bytes were reachable.
	Digest    uint64
	DigestErr error
	// PhaseStart is when the timed phase began, in virtual time since
	// the simulation started; with Elapsed it locates the timed window,
	// which fault schedules are calibrated against.
	PhaseStart time.Duration
	Err        error
}

// BandwidthMBs reports aggregate bandwidth in MB/s (10^6 bytes, as the
// paper plots).
func (r Result) BandwidthMBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// Cluster is a simulated cluster ready to run one workload.
type Cluster struct {
	cfg       Config
	sched     *vtime.Scheduler
	net       *transport.SimNet
	fabric    *transport.SimFabric
	metaAddrs []string
	addrs     []string

	metas   []*pvfs.MetaServer
	servers []*pvfs.Server

	serverNodes []*transport.SimNode
	rankNodes   []*transport.SimNode

	winStart, winEnd time.Duration
	stats            []*iostats.Stats
	diskStats        *iostats.Stats        // shared by all servers' disk schedulers
	opLats           []*metrics.Histogram  // per-rank client op latency
	srvMetrics       []*pvfs.ServerMetrics // per-server request metrics
	totals           iostats.Snapshot
	errs             []error

	digest      uint64
	digestBytes int64
	digestErr   error

	inj *fault.Injector // nil when cfg.Fault is not live

	// Health aggregator state (cfg.HealthInterval > 0; DESIGN.md §17).
	healthStop  atomic.Bool
	healthMu    sync.Mutex
	pickers     []*replica.LeastLoaded // every rank's picker, for load feeding
	healthTicks int
	flaggedAt   []time.Duration // virtual time first flagged straggler; -1 never
	stragRuns   []int           // consecutive straggler ticks, for debounce
	lastHealth  []pvfs.ServerHealth
}

// NewCluster builds the simulated cluster: server nodes first (their
// listeners register deterministically before any client process runs),
// then client nodes with ProcsPerNode ranks each. The metadata server
// doubles up on I/O server node 0, as in the paper.
func NewCluster(cfg Config) *Cluster {
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 1
	}
	if cfg.StripSize <= 0 {
		cfg.StripSize = 64 * 1024
	}
	c := &Cluster{
		cfg:       cfg,
		sched:     vtime.New(),
		stats:     make([]*iostats.Stats, cfg.Clients),
		diskStats: &iostats.Stats{},
		opLats:    make([]*metrics.Histogram, cfg.Clients),
		errs:      make([]error, cfg.Clients),
	}
	for i := range c.opLats {
		c.opLats[i] = &metrics.Histogram{}
	}
	c.net = transport.NewSimNet(c.sched, cfg.SimCfg)

	serverNodes := make([]*transport.SimNode, cfg.Servers)
	for i := range serverNodes {
		serverNodes[i] = c.net.NewNode()
	}
	c.serverNodes = serverNodes
	k := cfg.Replicas
	if k < 1 {
		k = 1
	}
	if cfg.Servers%k != 0 {
		panic(fmt.Sprintf("bench: %d servers not divisible into replica groups of %d", cfg.Servers, k))
	}
	// Files stripe over replica GROUPS, not physical servers: the
	// metadata servers hand out layouts at most groups wide.
	groups := cfg.Servers / k
	ms := cfg.MetaShards
	if ms < 1 {
		ms = 1
	}
	for i := 0; i < ms; i++ {
		node := serverNodes[i%cfg.Servers]
		addr := transport.Addr(node, fmt.Sprintf("meta%d", i))
		m := pvfs.NewMetaServer(c.net, addr, groups)
		m.ConfigureShard(i, ms)
		m.LeaseTimeout = cfg.LeaseTimeout
		m.Tracer = cfg.Trace
		c.metaAddrs = append(c.metaAddrs, addr)
		c.metas = append(c.metas, m)
		c.net.Spawn(fmt.Sprintf("meta%d", i), node, func(env transport.Env) {
			m.Serve(env)
		})
	}
	for i := range serverNodes {
		c.addrs = append(c.addrs, transport.Addr(serverNodes[i], "io"))
	}
	for i := range serverNodes {
		srv := pvfs.NewServer(c.net, c.addrs[i], i, cfg.Cost)
		if k > 1 {
			// Group siblings, for re-replication after a kill: a wiped
			// member restarts, rebuilds its objects from the first
			// reachable peer, then rejoins service.
			g := i / k
			for j := 0; j < k; j++ {
				if p := g*k + j; p != i {
					srv.ReplicaPeers = append(srv.ReplicaPeers, c.addrs[p])
				}
			}
		}
		srv.DisableLoopCache = !cfg.LoopCache
		// Streamed transfers segment at the modeled NIC's flow-control
		// chunk size, as real PVFS flow buffers do.
		srv.StreamChunkBytes = cfg.SimCfg.ChunkBytes
		srv.DisableStreaming = cfg.NoStreaming
		srv.DisableDiskSched = cfg.NoDiskSched
		srv.SieveGapBytes = cfg.SieveGapBytes
		srv.Stats = c.diskStats
		srv.Tracer = cfg.Trace
		srv.Metrics = &pvfs.ServerMetrics{}
		if cfg.FlightEvents > 0 {
			srv.Flight = flightrec.New(cfg.FlightEvents)
		}
		c.srvMetrics = append(c.srvMetrics, srv.Metrics)
		if cfg.Discard {
			srv.NewStore = func(uint64) storage.Store { return storage.NewDiscard() }
		}
		c.servers = append(c.servers, srv)
		c.net.Spawn(fmt.Sprintf("ioserver%d", i), serverNodes[i], func(env transport.Env) {
			srv.Serve(env)
		})
	}

	if cfg.Fault.Live() {
		c.inj = fault.NewInjector(*cfg.Fault)
		// One sim proc per scheduled server event: sleep to the event's
		// virtual time, then fire it against the live server.
		for _, ev := range cfg.Fault.Events {
			ev := ev
			srv := c.servers[ev.Server%cfg.Servers]
			node := serverNodes[ev.Server%cfg.Servers]
			c.net.Spawn(fmt.Sprintf("fault-%v-io%d", ev.Kind, ev.Server%cfg.Servers), node, func(env transport.Env) {
				env.Sleep(ev.At)
				switch ev.Kind {
				case fault.Stall:
					srv.StallFor(env, ev.Dur)
				case fault.Crash:
					srv.Crash(ev.Dur)
				case fault.Degrade:
					srv.SetDiskScale(ev.Factor)
				case fault.Kill:
					srv.Kill(ev.Dur)
				}
			})
		}
	}

	if cfg.HealthInterval > 0 {
		c.flaggedAt = make([]time.Duration, cfg.Servers)
		for i := range c.flaggedAt {
			c.flaggedAt[i] = -1
		}
		c.stragRuns = make([]int, cfg.Servers)
		// The aggregator is a sim proc like the fault events: it wakes
		// every interval, scores the window, and exits at the first tick
		// after the controller raises healthStop (run teardown).
		c.net.Spawn("health-agg", serverNodes[0], func(env transport.Env) {
			prev := make([]metrics.HistSnapshot, cfg.Servers)
			for !c.healthStop.Load() {
				env.Sleep(cfg.HealthInterval)
				c.healthTick(env.Now(), prev)
			}
		})
	}

	nClientNodes := (cfg.Clients + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	clientNodes := make([]*transport.SimNode, nClientNodes)
	for i := range clientNodes {
		clientNodes[i] = c.net.NewNode()
	}
	c.rankNodes = make([]*transport.SimNode, cfg.Clients)
	for r := 0; r < cfg.Clients; r++ {
		c.rankNodes[r] = clientNodes[r/cfg.ProcsPerNode]
	}
	c.fabric = transport.NewSimFabric(c.net, c.rankNodes)
	return c
}

// Run executes fn on every rank, runs the simulation to completion, and
// returns the elapsed window recorded by TimePhase plus averaged
// per-client statistics. Server processes are shut down when every rank
// finishes.
func (c *Cluster) Run(fn func(r *Rank) error) (time.Duration, iostats.Snapshot, error) {
	wg := c.sched.NewWaitGroup()
	wg.Add(c.cfg.Clients)
	clientNet := transport.Network(c.net)
	if c.inj != nil {
		meta := make(map[string]bool, len(c.metaAddrs))
		for _, a := range c.metaAddrs {
			meta[a] = true
		}
		clientNet = c.inj.WrapNetwork(c.net, func(addr string) bool { return !meta[addr] })
	}
	retry := c.cfg.Retry
	if retry == (pvfs.RetryPolicy{}) && c.inj != nil {
		retry = pvfs.DefaultRetryPolicy()
	}
	for id := 0; id < c.cfg.Clients; id++ {
		id := id
		st := &iostats.Stats{}
		c.stats[id] = st
		c.net.Spawn(fmt.Sprintf("rank%d", id), c.rankNodes[id], func(env transport.Env) {
			defer wg.Done()
			fs := pvfs.NewShardedClient(clientNet, c.metaAddrs, c.addrs, c.cfg.Cost)
			fs.Stats = st
			fs.Retry = retry
			fs.Replicas = c.cfg.Replicas
			if c.cfg.LeastLoadedReads && c.cfg.Replicas > 1 {
				// Per-rank picker: each client balances on its own
				// outstanding requests, as a real library would. The
				// health aggregator (if on) also writes cluster-observed
				// scores into it, shifting reads off stragglers the rank
				// hasn't personally hit yet.
				lp := replica.NewLeastLoaded(len(c.addrs))
				fs.ReplicaPicker = lp
				c.healthMu.Lock()
				c.pickers = append(c.pickers, lp)
				c.healthMu.Unlock()
			}
			fs.StreamChunkBytes = c.cfg.SimCfg.ChunkBytes
			fs.DisableStreaming = c.cfg.NoStreaming
			fs.Tracer = c.cfg.Trace
			fs.TraceTrack = fmt.Sprintf("rank%d", id)
			fs.OpLat = c.opLats[id]
			fs.CacheBytes = c.cfg.CacheBytes
			fs.CacheChunkBytes = c.cfg.CacheChunkBytes
			defer fs.Close()
			r := &Rank{
				ID:    id,
				Env:   env,
				FS:    fs,
				Comm:  mpi.NewComm(c.fabric, id, c.cfg.Clients),
				Stats: st,
				c:     c,
			}
			c.errs[id] = fn(r)
		})
	}
	// Controller: shut the servers down once all ranks are done, so the
	// simulation drains instead of deadlocking on idle Accept loops.
	c.net.Spawn("controller", c.rankNodes[0], func(env transport.Env) {
		wg.Wait(env.(*transport.SimEnv).Proc())
		c.healthStop.Store(true) // aggregator exits at its next tick
		if c.cfg.DigestFile != "" {
			// Hash over the plain network (no injected message faults —
			// the scheduled server events have already fired), with
			// retries so a still-restarting member can't wedge the read.
			c.digest, c.digestBytes, c.digestErr = c.digestFile(env, retry)
		}
		c.fabric.Close()
		for _, m := range c.metas {
			m.Close()
		}
		for _, s := range c.servers {
			s.Close()
		}
	})
	if err := c.sched.Run(); err != nil {
		return 0, iostats.Snapshot{}, err
	}
	for id, err := range c.errs {
		if err != nil {
			return 0, iostats.Snapshot{}, fmt.Errorf("rank %d: %w", id, err)
		}
	}
	var agg, life iostats.Snapshot
	for _, st := range c.stats {
		agg = agg.Add(st.Snapshot())
		life = life.Add(st.Lifetime())
	}
	c.totals = life
	return c.winEnd - c.winStart, agg.Div(int64(c.cfg.Clients)), nil
}

// digestFile reads cfg.DigestFile end to end and folds it into an
// FNV-1a hash. Runs inside the simulation, after every rank is done.
func (c *Cluster) digestFile(env transport.Env, retry pvfs.RetryPolicy) (uint64, int64, error) {
	fs := pvfs.NewShardedClient(c.net, c.metaAddrs, c.addrs, c.cfg.Cost)
	fs.Replicas = c.cfg.Replicas
	fs.Retry = retry
	defer fs.Close()
	f, err := fs.Open(env, c.cfg.DigestFile)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: digest open %s: %w", c.cfg.DigestFile, err)
	}
	size, err := f.Size(env)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: digest size %s: %w", c.cfg.DigestFile, err)
	}
	h := fnv.New64a()
	buf := make([]byte, 1<<20)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if err := f.ReadContig(env, off, buf[:n]); err != nil {
			return 0, 0, fmt.Errorf("bench: digest read %s@%d: %w", c.cfg.DigestFile, off, err)
		}
		h.Write(buf[:n])
		off += n
	}
	// DTIO_DEBUG_REPLICAS=1 cross-checks every group member's copy of
	// the digest file and logs divergent chunks to stderr — the tool of
	// choice when a replicated run's digest disagrees with its healthy
	// twin and you need to know which member holds the bad bytes.
	if os.Getenv("DTIO_DEBUG_REPLICAS") != "" && c.cfg.Replicas > 1 {
		c.debugMemberDigests(env, retry, size)
	}
	return h.Sum64(), size, nil
}

// fixedPick is a debug picker that always prefers one member slot.
type fixedPick int

func (p fixedPick) Pick(handle uint64, off int64, group, k int) int { return int(p) % k }

// debugMemberDigests re-reads the digest file forcing each member slot
// in turn and logs per-64KiB-chunk mismatches against slot 0.
func (c *Cluster) debugMemberDigests(env transport.Env, retry pvfs.RetryPolicy, size int64) {
	per := make([][]uint64, c.cfg.Replicas)
	for j := 0; j < c.cfg.Replicas; j++ {
		fs := pvfs.NewShardedClient(c.net, c.metaAddrs, c.addrs, c.cfg.Cost)
		fs.Replicas = c.cfg.Replicas
		fs.Retry = retry
		fs.ReplicaPicker = fixedPick(j)
		f, err := fs.Open(env, c.cfg.DigestFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug member %d: open: %v\n", j, err)
			fs.Close()
			continue
		}
		buf := make([]byte, 64<<10)
		for off := int64(0); off < size; off += int64(len(buf)) {
			n := int64(len(buf))
			if off+n > size {
				n = size - off
			}
			if err := f.ReadContig(env, off, buf[:n]); err != nil {
				fmt.Fprintf(os.Stderr, "debug member %d: read@%d: %v\n", j, off, err)
				break
			}
			h := fnv.New64a()
			h.Write(buf[:n])
			per[j] = append(per[j], h.Sum64())
		}
		fs.Close()
	}
	for j := 1; j < c.cfg.Replicas; j++ {
		for i := range per[0] {
			if i < len(per[j]) && per[j][i] != per[0][i] {
				fmt.Fprintf(os.Stderr, "debug: chunk@%d (64KiB) differs: member0 %016x member%d %016x\n",
					int64(i)*64<<10, per[0][i], j, per[j][i])
			}
		}
	}
}

// Digest reports the post-run file digest requested with
// Config.DigestFile (call after Run): the FNV-1a hash of the file's
// bytes, the byte count hashed, and any error the digest read hit.
func (c *Cluster) Digest() (uint64, int64, error) {
	return c.digest, c.digestBytes, c.digestErr
}

// PhaseWindow reports the timed window recorded by TimePhase, as
// virtual times since the simulation started. Call after Run.
func (c *Cluster) PhaseWindow() (start, end time.Duration) {
	return c.winStart, c.winEnd
}

// TotalStats is the undivided sum of every rank's lifetime counters
// over the whole run, setup included (call after Run).
func (c *Cluster) TotalStats() iostats.Snapshot { return c.totals }

// LockStats snapshots the lock-service counters summed over every
// metadata shard (call after Run to check for leaked locks or to report
// contention).
func (c *Cluster) LockStats() locks.Stats {
	var s locks.Stats
	for _, m := range c.metas {
		s = s.Add(m.LockStats())
	}
	return s
}

// ShardLockStats snapshots each metadata shard's lock-service counters
// separately, in shard-id order (call after Run; shard balance checks).
func (c *Cluster) ShardLockStats() []locks.Stats {
	out := make([]locks.Stats, len(c.metas))
	for i, m := range c.metas {
		out[i] = m.LockStats()
	}
	return out
}

// MetaSnapshots captures each metadata shard's namespace and lock-table
// snapshot, in shard-id order (call after Run).
func (c *Cluster) MetaSnapshots() []pvfs.MetaSnapshot {
	out := make([]pvfs.MetaSnapshot, len(c.metas))
	for i, m := range c.metas {
		out[i] = m.Snapshot()
	}
	return out
}

// DiskStats snapshots the disk-scheduler counters summed over all
// servers (call after Run). Only the disk fields are populated.
func (c *Cluster) DiskStats() iostats.Snapshot { return c.diskStats.Snapshot() }

// ClientLat merges every rank's op-latency histogram (timed phase only;
// see TimePhase). Call after Run.
func (c *Cluster) ClientLat() metrics.HistSnapshot {
	var s metrics.HistSnapshot
	for _, h := range c.opLats {
		s = s.Add(h.Snapshot())
	}
	return s
}

// ServerLat merges every I/O server's request service-time histogram
// (whole run, reads and writes). Call after Run.
func (c *Cluster) ServerLat() metrics.HistSnapshot {
	var s metrics.HistSnapshot
	for _, m := range c.srvMetrics {
		s = s.Add(m.Lat())
	}
	return s
}

// ServerReadCounts reports each I/O server's served read-class request
// count (contig, list, dtype reads plus size probes), in physical
// server order. Call after Run; replica read-balance checks divide
// these within a group.
func (c *Cluster) ServerReadCounts() []int64 {
	out := make([]int64, len(c.srvMetrics))
	for i, m := range c.srvMetrics {
		out[i] = m.ReadLat.Snapshot().Count
	}
	return out
}

// Repairing reports which servers are currently rebuilding their
// objects from replica peers (call after Run it is all false; useful
// mid-run from controller code).
func (c *Cluster) Repairing() []bool {
	out := make([]bool, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.StatsSnapshot().Repairing
	}
	return out
}

// healthTick scores one aggregation interval: each server's service
// histogram is windowed against the previous tick (HistSnapshot.Sub),
// the window's p99 plus live queue depth and degrade/repair state fold
// into a health score against the cluster median, first-flag times are
// recorded, and the scores are written into every rank's least-loaded
// picker as a base load so reads drift off stragglers.
func (c *Cluster) healthTick(now time.Duration, prev []metrics.HistSnapshot) {
	snaps := make([]pvfs.ServerSnapshot, len(c.servers))
	for i, s := range c.servers {
		ss := s.StatsSnapshot()
		win := ss.Lat.Sub(prev[i])
		prev[i] = ss.Lat
		ss.Lat = win
		ss.P99Us = win.Quantile(0.99).Microseconds()
		snaps[i] = ss
	}
	cs := pvfs.BuildClusterSnapshot(snaps, nil)
	if os.Getenv("DTIO_DEBUG_HEALTH") != "" {
		for _, h := range cs.Health {
			if h.Score >= pvfs.StragglerScore {
				fmt.Fprintf(os.Stderr, "tick %v: srv%d score=%.2f p99us=%d med=%d n=%d inflight=%d deg=%v stall=%v\n",
					now, h.Server, h.Score, h.P99Us, cs.MedianP99Us, snaps[h.Server].Lat.Count, h.InFlight, h.Degraded, h.Stalled)
			}
		}
	}
	c.healthMu.Lock()
	c.healthTicks++
	c.lastHealth = cs.Health
	for _, h := range cs.Health {
		// Server-reported states (degraded disk, live repair) are
		// noise-free and flag on their first tick; statistical evidence
		// (tail ratio, queue depth, window silence) must hold for two
		// consecutive ticks so a one-window blip doesn't count as a
		// detection.
		if h.Straggler {
			c.stragRuns[h.Server]++
		} else {
			c.stragRuns[h.Server] = 0
		}
		immediate := h.Degraded || h.Repairing
		if c.flaggedAt[h.Server] < 0 && ((immediate && h.Straggler) || c.stragRuns[h.Server] >= 2) {
			c.flaggedAt[h.Server] = now
		}
	}
	pickers := append([]*replica.LeastLoaded(nil), c.pickers...)
	c.healthMu.Unlock()
	for _, h := range cs.Health {
		// A healthy server scores ~1 → base 16; a straggler ≥2 → ≥32.
		// The gap dwarfs a rank's own ±in-flight jitter, so the picker's
		// comparison is dominated by cluster-observed health.
		bias := int64(h.Score * 16)
		for _, p := range pickers {
			p.SetLoad(h.Server, bias)
		}
	}
}

// HealthTicks reports how many aggregation intervals have run (call
// after Run; 0 when Config.HealthInterval was 0).
func (c *Cluster) HealthTicks() int {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return c.healthTicks
}

// StragglerFlaggedAt reports the virtual time at which the aggregator
// first flagged server i as a straggler, and whether it ever did.
func (c *Cluster) StragglerFlaggedAt(server int) (time.Duration, bool) {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	if c.flaggedAt == nil || server < 0 || server >= len(c.flaggedAt) || c.flaggedAt[server] < 0 {
		return 0, false
	}
	return c.flaggedAt[server], true
}

// PostMortem returns server i's flight-recorder dump captured at its
// last crash or kill, and whether one exists (requires
// Config.FlightEvents > 0 and the server to have died). Call after
// Run.
func (c *Cluster) PostMortem(server int) (flightrec.Dump, bool) {
	if server < 0 || server >= len(c.servers) {
		return flightrec.Dump{}, false
	}
	return c.servers[server].PostMortem()
}

// LastHealth returns the most recent health table (nil before the
// first tick).
func (c *Cluster) LastHealth() []pvfs.ServerHealth {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return c.lastHealth
}

// ServerReplays sums the servers' replay-suppression counters.
func (c *Cluster) ServerReplays() int64 {
	var n int64
	for _, m := range c.srvMetrics {
		n += m.Replays.Value()
	}
	return n
}

// FaultStats reports what the injector actually did over the run (all
// zeros when no fault plan was configured).
func (c *Cluster) FaultStats() fault.Stats {
	if c.inj == nil {
		return fault.Stats{}
	}
	return c.inj.Stats()
}

// Utilization reports average busy fractions of the modeled hardware
// relative to the total simulated time (call after Run).
func (c *Cluster) Utilization() Utilization {
	total := c.sched.Now()
	if total <= 0 {
		return Utilization{}
	}
	frac := func(nodes []*transport.SimNode, pick func(n *transport.SimNode) time.Duration, slots float64) float64 {
		if len(nodes) == 0 {
			return 0
		}
		var busy time.Duration
		for _, n := range nodes {
			busy += pick(n)
		}
		return busy.Seconds() / (total.Seconds() * float64(len(nodes)) * slots)
	}
	nicMax := func(nodes []*transport.SimNode) float64 {
		tx := frac(nodes, func(n *transport.SimNode) time.Duration { return n.TX.BusyTime() }, 1)
		rx := frac(nodes, func(n *transport.SimNode) time.Duration { return n.RX.BusyTime() }, 1)
		if tx > rx {
			return tx
		}
		return rx
	}
	cpuSlots := float64(c.cfg.SimCfg.CPUSlots)
	uniqueClients := map[*transport.SimNode]bool{}
	var clientNodes []*transport.SimNode
	for _, n := range c.rankNodes {
		if !uniqueClients[n] {
			uniqueClients[n] = true
			clientNodes = append(clientNodes, n)
		}
	}
	return Utilization{
		ServerDisk: frac(c.serverNodes, func(n *transport.SimNode) time.Duration { return n.Disk.BusyTime() }, 1),
		ServerNIC:  nicMax(c.serverNodes),
		ServerCPU:  frac(c.serverNodes, func(n *transport.SimNode) time.Duration { return n.CPU.BusyTime() }, cpuSlots),
		ClientNIC:  nicMax(clientNodes),
		ClientCPU:  frac(clientNodes, func(n *transport.SimNode) time.Duration { return n.CPU.BusyTime() }, cpuSlots),
	}
}
