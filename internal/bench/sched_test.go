package bench

import (
	"fmt"
	"testing"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/mpiio"
	"dtio/internal/pvfs"
	"dtio/internal/workloads"
)

// TestZeroByteRequestsChargeNoDisk is the regression test for the
// zero-byte charging bug: a datatype request fans out to every server
// of the file, including ones that hold none of its bytes, and those
// servers used to pay DiskPerOp for doing nothing. With the scheduler,
// a request with no physical runs must leave the disk untouched.
func TestZeroByteRequestsChargeNoDisk(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	cfg.Servers = 4
	cfg.Discard = false
	cfg.StripSize = 1024
	c := NewCluster(cfg)
	_, _, err := c.Run(func(r *Rank) error {
		f, err := r.FS.Create(r.Env, "z.dat", cfg.StripSize, 0)
		if err != nil {
			return err
		}
		// 100 bytes entirely inside strip 0: servers 1-3 receive dtype
		// requests that expand to zero local bytes.
		mem := make([]byte, 100)
		for i := range mem {
			mem[i] = byte(i)
		}
		loop := dataloop.FromType(datatype.Bytes(100))
		if err := f.WriteDtype(r.Env, &pvfs.DtypeAccess{
			Mem: mem, MemLoop: loop, MemCount: 1, FileLoop: loop,
		}); err != nil {
			return err
		}
		got := make([]byte, 100)
		return f.ReadDtype(r.Env, &pvfs.DtypeAccess{
			Mem: got, MemLoop: loop, MemCount: 1, FileLoop: loop,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if busy := c.serverNodes[0].Disk.BusyTime(); busy <= 0 {
		t.Fatal("server 0 holds the bytes but charged no disk time")
	}
	for i, n := range c.serverNodes[1:] {
		if busy := n.Disk.BusyTime(); busy != 0 {
			t.Errorf("server %d holds no bytes but charged %v of disk time", i+1, busy)
		}
	}
}

// TestDiskSchedCollapsesTileDtypeOps checks the headline effect: the
// tile reader's dtype requests present many small physical runs per
// server and the scheduler dispatches them as far fewer operations,
// while the NoDiskSched ablation keeps (nearly) all of them.
func TestDiskSchedCollapsesTileDtypeOps(t *testing.T) {
	tile := workloads.DefaultTile()

	on := TileRead(DefaultConfig(6, 1), tile, mpiio.DtypeIO, 1)
	if on.Err != nil {
		t.Fatal(on.Err)
	}
	if on.Disk.DiskOps == 0 {
		t.Fatal("no physical runs recorded")
	}
	if on.Disk.DiskOpsMerged >= on.Disk.DiskOps {
		t.Fatalf("scheduler did not coalesce: %d runs -> %d ops",
			on.Disk.DiskOps, on.Disk.DiskOpsMerged)
	}

	offCfg := DefaultConfig(6, 1)
	offCfg.NoDiskSched = true
	off := TileRead(offCfg, tile, mpiio.DtypeIO, 1)
	if off.Err != nil {
		t.Fatal(off.Err)
	}
	if off.Disk.DiskOpsMerged <= on.Disk.DiskOpsMerged {
		t.Fatalf("ablation dispatched %d ops, scheduler %d: no scheduling win measured",
			off.Disk.DiskOpsMerged, on.Disk.DiskOpsMerged)
	}
	if on.BandwidthMBs() <= off.BandwidthMBs() {
		t.Fatalf("dtype tile read: sched on %.2f MB/s not faster than off %.2f MB/s",
			on.BandwidthMBs(), off.BandwidthMBs())
	}
}

// schedVariants are the scheduler configurations the pr3 benchmark
// sweeps; every one must produce byte-identical results.
func schedVariants() []struct {
	name string
	mut  func(*Config)
} {
	return []struct {
		name string
		mut  func(*Config)
	}{
		{"nosched", func(c *Config) { c.NoDiskSched = true }},
		{"gap0", func(c *Config) { c.SieveGapBytes = 0 }},
		{"gap4k", func(c *Config) { c.SieveGapBytes = 4096 }},
		{"gap64k", func(c *Config) { c.SieveGapBytes = 64 * 1024 }},
		{"gap512k", func(c *Config) { c.SieveGapBytes = 512 * 1024 }},
	}
}

// TestSchedVariantsVerified runs the verified (data-checking) workloads
// under every scheduler variant and access method: the scheduler must
// never change the bytes, only the dispatch.
func TestSchedVariantsVerified(t *testing.T) {
	methods := []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO}
	for _, v := range schedVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, m := range methods {
				tileCfg := verifyCfg(6, 1)
				v.mut(&tileCfg)
				if res := TileRead(tileCfg, smallTile(), m, 2); res.Err != nil {
					t.Fatalf("tile read %v: %v", m, res.Err)
				}
				tileCfg = verifyCfg(6, 1)
				v.mut(&tileCfg)
				if res := TileWrite(tileCfg, smallTile(), m, 2); res.Err != nil {
					t.Fatalf("tile write %v: %v", m, res.Err)
				}
				b3cfg := verifyCfg(8, 2)
				v.mut(&b3cfg)
				b3 := workloads.Block3DConfig{N: 24, ElemSize: 4, Procs: 8}
				if res := Block3D(b3cfg, b3, m, false); res.Err != nil {
					t.Fatalf("block3d read %v: %v", m, res.Err)
				}
				b3cfg = verifyCfg(8, 2)
				v.mut(&b3cfg)
				if res := Block3D(b3cfg, b3, m, true); res.Err != nil {
					t.Fatalf("block3d write %v: %v", m, res.Err)
				}
				flCfg := verifyCfg(4, 2)
				v.mut(&flCfg)
				fc := workloads.FlashConfig{Blocks: 4, NB: 4, Guard: 2, Vars: 6, ElemSize: 8, Procs: 4}
				if res := Flash(flCfg, fc, m); res.Err != nil {
					t.Fatalf("flash %v: %v", m, res.Err)
				}
			}
		})
	}
}

// TestSendRecvParallelSmoke drives a multi-server contiguous exchange
// through the parallelized send/receive path on the simulated transport
// and checks the cost accounting stays consistent (one wire message per
// involved server).
func TestSendRecvParallelSmoke(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Servers = 4
	cfg.Discard = false
	cfg.StripSize = 1024
	c := NewCluster(cfg)
	_, per, err := c.Run(func(r *Rank) error {
		f, err := r.FS.Create(r.Env, fmt.Sprintf("p%d.dat", r.ID), cfg.StripSize, 0)
		if err != nil {
			return err
		}
		data := make([]byte, 4*cfg.StripSize) // exactly one strip per server
		for i := range data {
			data[i] = byte(i * 13)
		}
		if err := f.WriteContig(r.Env, 0, data); err != nil {
			return err
		}
		got := make([]byte, len(data))
		if err := f.ReadContig(r.Env, 0, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != data[i] {
				return fmt.Errorf("byte %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Write + read each fan out to 4 servers.
	if per.WireMsgs != 8 {
		t.Fatalf("wire messages per client = %d, want 8", per.WireMsgs)
	}
}
