package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dtio/internal/mpiio"
	"dtio/internal/trace"
)

// TestTracedRunLinksServerSpansToClientOps is the acceptance check for
// the observability tentpole: a traced benchmark run must produce
// server-side request spans whose parent links resolve — possibly
// through intermediate server spans — to client operation spans on a
// rank track, all stamped in virtual time.
func TestTracedRunLinksServerSpansToClientOps(t *testing.T) {
	tr := trace.New()
	cfg := verifyCfg(6, 1)
	cfg.Trace = tr
	res := TileRead(cfg, smallTile(), mpiio.DtypeIO, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	byID := map[trace.SpanID]*trace.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	// Walk each server span's ancestry to its root.
	rootTrack := func(sp *trace.Span) string {
		for i := 0; i < len(spans); i++ {
			p, ok := byID[sp.Parent]
			if !ok {
				return sp.Track
			}
			sp = p
		}
		return sp.Track
	}
	var serverSpans, linkedToRank int
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Track, "io-server-") {
			continue
		}
		serverSpans++
		if sp.Parent == 0 {
			continue
		}
		root := rootTrack(sp)
		if !strings.HasPrefix(root, "rank") {
			t.Fatalf("server span %d (%s) roots at track %q, not a rank", sp.ID, sp.Name, root)
		}
		linkedToRank++
	}
	if serverSpans == 0 {
		t.Fatal("no server spans recorded")
	}
	if linkedToRank == 0 {
		t.Fatal("no server span links back to a client op span")
	}
	// Client op spans must exist on every rank's track and carry finish
	// times (virtual-time stamps, monotone per span).
	ranks := map[string]bool{}
	for _, sp := range spans {
		if strings.HasPrefix(sp.Track, "rank") {
			ranks[sp.Track] = true
			if sp.Finish >= 0 && sp.Finish < sp.Start {
				t.Fatalf("span %d (%s) finishes before it starts", sp.ID, sp.Name)
			}
		}
	}
	if len(ranks) != 6 {
		t.Fatalf("op spans on %d rank tracks, want 6", len(ranks))
	}

	// The export must be valid JSON with the expected envelope.
	var buf bytes.Buffer
	if err := tr.WriteChromeSorted(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome export is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) <= len(spans) {
		t.Fatalf("export has %d events for %d spans (+track metadata)", len(doc.TraceEvents), len(spans))
	}
}

// TestResultLatencyHistograms checks that every experiment cell carries
// populated client and server latency distributions with monotone
// quantiles.
func TestResultLatencyHistograms(t *testing.T) {
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.DtypeIO} {
		res := TileRead(verifyCfg(6, 1), smallTile(), m, 2)
		if res.Err != nil {
			t.Fatalf("%v: %v", m, res.Err)
		}
		if res.Lat.Count == 0 {
			t.Fatalf("%v: empty client latency histogram", m)
		}
		if res.SrvLat.Count == 0 {
			t.Fatalf("%v: empty server latency histogram", m)
		}
		p50, p95, p99 := res.Lat.Quantiles()
		if p50 <= 0 || p95 < p50 || p99 < p95 {
			t.Fatalf("%v: bad quantiles %v/%v/%v", m, p50, p95, p99)
		}
	}
}

// TestTracingDoesNotChangeTiming locks in that observation is passive:
// the same workload with and without a tracer must report identical
// virtual elapsed time and I/O counters.
func TestTracingDoesNotChangeTiming(t *testing.T) {
	base := TileRead(verifyCfg(6, 1), smallTile(), mpiio.DtypeIO, 2)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	cfg := verifyCfg(6, 1)
	cfg.Trace = trace.New()
	traced := TileRead(cfg, smallTile(), mpiio.DtypeIO, 2)
	if traced.Err != nil {
		t.Fatal(traced.Err)
	}
	if base.Elapsed != traced.Elapsed {
		t.Fatalf("tracing changed virtual time: %v vs %v", base.Elapsed, traced.Elapsed)
	}
	if base.PerClient != traced.PerClient {
		t.Fatalf("tracing changed I/O counters:\n%+v\n%+v", base.PerClient, traced.PerClient)
	}
}
