package bench

import (
	"errors"
	"testing"

	"dtio/internal/mpiio"
	"dtio/internal/workloads"
)

// verifyCfg is a small correctness-mode cluster.
func verifyCfg(clients, procsPerNode int) Config {
	cfg := DefaultConfig(clients, procsPerNode)
	cfg.Discard = false
	cfg.Verify = true
	cfg.Servers = 4
	return cfg
}

// smallTile is a scaled-down tile display for verified runs.
func smallTile() workloads.TileConfig {
	return workloads.TileConfig{
		TilesX: 3, TilesY: 2,
		TileW: 32, TileH: 24, Depth: 3,
		OverlapX: 8, OverlapY: 4,
		Frames: 2,
	}
}

func TestTileReadAllMethodsVerified(t *testing.T) {
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := TileRead(verifyCfg(6, 1), smallTile(), m, 2)
		if res.Err != nil {
			t.Fatalf("%v: %v", m, res.Err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", m)
		}
		if res.PerClient.DesiredBytes != smallTile().TileBytes() {
			t.Fatalf("%v: desired/client/frame = %d", m, res.PerClient.DesiredBytes)
		}
	}
}

func TestBlock3DAllMethodsVerified(t *testing.T) {
	b3 := workloads.Block3DConfig{N: 24, ElemSize: 4, Procs: 8}
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := Block3D(verifyCfg(8, 2), b3, m, false)
		if res.Err != nil {
			t.Fatalf("read %v: %v", m, res.Err)
		}
	}
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := Block3D(verifyCfg(8, 2), b3, m, true)
		if res.Err != nil {
			t.Fatalf("write %v: %v", m, res.Err)
		}
	}
}

func TestTileWriteAllMethodsVerified(t *testing.T) {
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := TileWrite(verifyCfg(6, 1), smallTile(), m, 2)
		if res.Err != nil {
			t.Fatalf("%v: %v", m, res.Err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", m)
		}
	}
	// The paper-faithful NoLocks ablation must still refuse.
	cfg := verifyCfg(6, 1)
	cfg.Hints.NoLocks = true
	if res := TileWrite(cfg, smallTile(), mpiio.Sieve, 1); !errors.Is(res.Err, mpiio.ErrSieveWrite) {
		t.Fatalf("NoLocks sieve write: %v", res.Err)
	}
}

// TestLockContentionVerified runs the contended interleaved-stripe
// sieve-write workload in the simulator with a sieve buffer smaller
// than the interleave period, so windows conflict constantly, and
// checks the final image byte for byte.
func TestLockContentionVerified(t *testing.T) {
	for _, writers := range []int{1, 2, 4} {
		cfg := verifyCfg(writers, 1)
		cfg.Hints.SieveBufSize = 96
		res := LockContention(cfg, writers, 64, 8)
		if res.Err != nil {
			t.Fatalf("%d writers: %v", writers, res.Err)
		}
		if res.Locks.Held != 0 || res.Locks.Queued != 0 {
			t.Fatalf("%d writers: leaked lock state: %+v", writers, res.Locks)
		}
		if res.Locks.Acquires == 0 || res.PerClient.LockWaits == 0 {
			t.Fatalf("%d writers: sieve writes took no locks: %+v", writers, res.Locks)
		}
		if writers >= 2 && res.Locks.Waits == 0 {
			t.Fatalf("%d writers: no lock contention measured: %+v", writers, res.Locks)
		}
	}
}

func TestFlashAllMethodsVerified(t *testing.T) {
	fc := workloads.FlashConfig{Blocks: 4, NB: 4, Guard: 2, Vars: 6, ElemSize: 8, Procs: 4}
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := Flash(verifyCfg(4, 2), fc, m)
		if res.Err != nil {
			t.Fatalf("%v: %v", m, res.Err)
		}
	}
}

func TestTileCharacteristicsMatchPaper(t *testing.T) {
	// Full-size tile pattern, 1 frame, discard storage: the Table 1
	// numbers must come out exactly.
	cfg := DefaultConfig(6, 1)
	tile := workloads.DefaultTile()
	posix := TileRead(cfg, tile, mpiio.Posix, 1)
	list := TileRead(cfg, tile, mpiio.ListIO, 1)
	dtype := TileRead(cfg, tile, mpiio.DtypeIO, 1)
	sieve := TileRead(cfg, tile, mpiio.Sieve, 1)
	two := TileRead(cfg, tile, mpiio.TwoPhase, 1)
	for _, r := range []Result{posix, list, dtype, sieve, two} {
		if r.Err != nil {
			t.Fatalf("%v: %v", r.Method, r.Err)
		}
		if r.PerClient.DesiredBytes != 2359296 { // 2.25 MB
			t.Errorf("%v desired=%d", r.Method, r.PerClient.DesiredBytes)
		}
	}
	if posix.PerClient.IOOps != 768 {
		t.Errorf("posix ops=%d want 768", posix.PerClient.IOOps)
	}
	if list.PerClient.IOOps != 12 {
		t.Errorf("list ops=%d want 12", list.PerClient.IOOps)
	}
	if dtype.PerClient.IOOps != 1 {
		t.Errorf("dtype ops=%d want 1", dtype.PerClient.IOOps)
	}
	if sieve.PerClient.IOOps != 2 {
		t.Errorf("sieve ops=%d want 2", sieve.PerClient.IOOps)
	}
	// Sieve accessed ~5.56 MB.
	if a := sieve.PerClient.AccessedBytes; a < 5_500_000 || a > 6_000_000 {
		t.Errorf("sieve accessed=%d want ~5.56MB", a)
	}
	// Two-phase: 1 op, ~1.70 MB accessed, ~1.5 MB resent.
	if two.PerClient.IOOps != 1 {
		t.Errorf("twophase ops=%d want 1", two.PerClient.IOOps)
	}
	if a := two.PerClient.AccessedBytes; a < 1_600_000 || a > 1_900_000 {
		t.Errorf("twophase accessed=%d want ~1.70MB", a)
	}
	if r := two.PerClient.ResentBytes; r < 1_300_000 || r > 1_700_000 {
		t.Errorf("twophase resent=%d want ~1.50MB", r)
	}
	// Request payload: dtype (one fixed-size loop per server) stays well
	// below list (16 bytes per region).
	if dtype.PerClient.ReqBytes*3 > list.PerClient.ReqBytes {
		t.Errorf("dtype req=%d not well below list req=%d",
			dtype.PerClient.ReqBytes, list.PerClient.ReqBytes)
	}
}

func TestTilePerformanceShape(t *testing.T) {
	// Figure 8 shape: dtype > list > two-phase; posix and sieve trail.
	cfg := DefaultConfig(6, 1)
	tile := workloads.DefaultTile()
	const frames = 3
	bw := map[mpiio.Method]float64{}
	for _, m := range []mpiio.Method{mpiio.Posix, mpiio.Sieve, mpiio.TwoPhase, mpiio.ListIO, mpiio.DtypeIO} {
		res := TileRead(cfg, tile, m, frames)
		if res.Err != nil {
			t.Fatalf("%v: %v", m, res.Err)
		}
		bw[m] = res.BandwidthMBs()
		t.Logf("%-9v %7.2f MB/s", m, res.BandwidthMBs())
	}
	if !(bw[mpiio.DtypeIO] > bw[mpiio.ListIO]) {
		t.Errorf("dtype (%.2f) should beat list (%.2f)", bw[mpiio.DtypeIO], bw[mpiio.ListIO])
	}
	if !(bw[mpiio.ListIO] > bw[mpiio.Posix]) {
		t.Errorf("list (%.2f) should beat posix (%.2f)", bw[mpiio.ListIO], bw[mpiio.Posix])
	}
	if !(bw[mpiio.DtypeIO] > bw[mpiio.TwoPhase]) {
		t.Errorf("dtype (%.2f) should beat twophase (%.2f)", bw[mpiio.DtypeIO], bw[mpiio.TwoPhase])
	}
}

func TestFormatters(t *testing.T) {
	cfg := DefaultConfig(6, 1)
	tile := smallTile()
	rs := []Result{
		TileRead(cfg, tile, mpiio.DtypeIO, 1),
		TileRead(cfg, tile, mpiio.ListIO, 1),
	}
	ct := CharacteristicsTable("tile", rs)
	if len(ct) == 0 || ct[0] != 't' {
		t.Fatal("empty characteristics table")
	}
	bt := BandwidthTable("tile", rs)
	if len(bt) == 0 {
		t.Fatal("empty bandwidth table")
	}
}
