package bench

import (
	"bytes"
	"fmt"

	"dtio/internal/datatype"
	"dtio/internal/mpiio"
	"dtio/internal/pvfs"
	"dtio/internal/transport"
	"dtio/internal/workloads"
)

// openShared creates (rank 0) or opens (others) the benchmark file.
func openShared(r *Rank, name string, stripSize int64) (*pvfs.File, error) {
	var pf *pvfs.File
	var err error
	if r.ID == 0 {
		pf, err = r.FS.Create(r.Env, name, stripSize, 0)
	}
	r.Comm.Barrier(r.Env)
	if r.ID != 0 {
		pf, err = r.FS.Open(r.Env, name)
	}
	return pf, err
}

// Block3DByte is the oracle for the 3-D block array: the expected value
// of file byte off.
func block3DByte(off int64) byte { return byte(off*131 + off>>11) }

// TileRead runs the tile reader benchmark (E1): every client reads its
// tile from `frames` consecutive frames.
func TileRead(cfg Config, tile workloads.TileConfig, method mpiio.Method, frames int) Result {
	res := Result{Name: "tile", Method: method, Clients: tile.NumClients()}
	if err := tile.Validate(); err != nil {
		res.Err = err
		return res
	}
	cfg.Clients = tile.NumClients()
	if frames <= 0 {
		frames = tile.Frames
	}
	cl := NewCluster(cfg)
	tileBytes := tile.TileBytes()
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "frames.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		if cfg.Verify && r.ID == 0 {
			frame := make([]byte, tile.FrameBytes())
			for f := 0; f < frames; f++ {
				workloads.FillFrame(f, frame)
				if err := pf.WriteContig(r.Env, int64(f)*tile.FrameBytes(), frame); err != nil {
					return err
				}
			}
		}
		r.Comm.Barrier(r.Env)
		f := mpiio.Open(pf, r.Comm, method, cfg.Hints)
		if err := f.SetView(0, datatype.Byte, tile.View(r.ID)); err != nil {
			return err
		}
		buf := make([]byte, tileBytes)
		memType := datatype.Bytes(tileBytes)
		r.Stats.Reset() // exclude setup traffic from the tables
		return r.TimePhase(func() error {
			for fr := 0; fr < frames; fr++ {
				if err := f.ReadAtAll(r.Env, int64(fr)*tileBytes, buf, memType, 1); err != nil {
					return err
				}
				if cfg.Verify {
					if err := verifyTile(tile, r.ID, fr, buf); err != nil {
						return err
					}
				}
			}
			return nil
		})
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Digest, _, res.DigestErr = cl.Digest()
	res.PhaseStart, _ = cl.PhaseWindow()
	res.Bytes = int64(tile.NumClients()) * int64(frames) * tileBytes
	res.Err = err
	// Tables report per-frame characteristics, as the paper does.
	res.PerClient = res.PerClient.Div(int64(frames))
	return res
}

func verifyTile(tile workloads.TileConfig, rank, frame int, buf []byte) error {
	pos := int64(0)
	var bad error
	tile.View(rank).Walk(0, func(off, n int64) bool {
		for i := int64(0); i < n; i++ {
			if buf[pos+i] != workloads.FramePixel(frame, off+i) {
				bad = fmt.Errorf("tile %d frame %d: byte at file offset %d wrong", rank, frame, off+i)
				return false
			}
		}
		pos += n
		return true
	})
	return bad
}

// TileWrite runs the tile writer benchmark: every client writes its
// (overlapping) tile of `frames` consecutive frames. Overlap bytes get
// identical values from every neighbor (FramePixel is a pure function
// of frame and offset) so the final image is deterministic regardless
// of write interleaving — but data sieving must still lock each
// read-modify-write window, or the bytes between a tile's rows would be
// clobbered with stale data.
func TileWrite(cfg Config, tile workloads.TileConfig, method mpiio.Method, frames int) Result {
	res := Result{Name: "tile-write", Method: method, Clients: tile.NumClients()}
	if err := tile.Validate(); err != nil {
		res.Err = err
		return res
	}
	cfg.Clients = tile.NumClients()
	if frames <= 0 {
		frames = tile.Frames
	}
	cl := NewCluster(cfg)
	tileBytes := tile.TileBytes()
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "frames-w.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		f := mpiio.Open(pf, r.Comm, method, cfg.Hints)
		view := tile.View(r.ID)
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			return err
		}
		buf := make([]byte, tileBytes)
		memType := datatype.Bytes(tileBytes)
		fill := func(fr int) {
			pos := int64(0)
			view.Walk(0, func(off, n int64) bool {
				for i := int64(0); i < n; i++ {
					buf[pos+i] = workloads.FramePixel(fr, off+i)
				}
				pos += n
				return true
			})
		}
		r.Stats.Reset() // exclude setup traffic from the tables
		if err := r.TimePhase(func() error {
			for fr := 0; fr < frames; fr++ {
				if cfg.Verify {
					fill(fr)
				}
				if err := f.WriteAtAll(r.Env, int64(fr)*tileBytes, buf, memType, 1); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if cfg.Verify {
			r.Comm.Barrier(r.Env)
			if r.ID == 0 {
				// The overlapping tiles cover the frame completely, so
				// every byte of every frame is determined.
				frame := make([]byte, tile.FrameBytes())
				for fr := 0; fr < frames; fr++ {
					if err := pf.ReadContig(r.Env, int64(fr)*tile.FrameBytes(), frame); err != nil {
						return err
					}
					for i := range frame {
						if frame[i] != workloads.FramePixel(fr, int64(i)) {
							return fmt.Errorf("frame %d byte %d wrong after tile write", fr, i)
						}
					}
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Digest, _, res.DigestErr = cl.Digest()
	res.PhaseStart, _ = cl.PhaseWindow()
	res.Bytes = int64(tile.NumClients()) * int64(frames) * tileBytes
	res.Err = err
	// Tables report per-frame characteristics, as the paper does.
	res.PerClient = res.PerClient.Div(int64(frames))
	return res
}

// contendByte is the oracle for the lock-contention region: the value
// of file byte off, whoever writes it.
func contendByte(off int64) byte { return byte(off*167 + off>>9) }

// LockContention measures the byte-range lock service under pressure:
// `writers` clients data-sieve interleaved stripes of one shared
// region, so nearly every read-modify-write window overlaps neighbors'
// windows and must queue at the metadata server. Per-client volume is
// held fixed as writers grow — the scaling curve isolates lock-wait
// cost from data movement.
func LockContention(cfg Config, writers int, stripe int64, rows int) Result {
	res := Result{Name: "lock-contention", Method: mpiio.Sieve, Clients: writers}
	if writers <= 0 || stripe <= 0 || rows <= 0 {
		res.Err = fmt.Errorf("bench: bad contention shape: %d writers, %d stripe, %d rows", writers, stripe, rows)
		return res
	}
	cfg.Clients = writers
	cl := NewCluster(cfg)
	period := stripe * int64(writers)
	perClient := stripe * int64(rows)
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "contend.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		f := mpiio.Open(pf, r.Comm, mpiio.Sieve, cfg.Hints)
		view := datatype.Subarray(
			[]int{rows, int(period)}, []int{rows, int(stripe)}, []int{0, r.ID * int(stripe)},
			datatype.OrderC, datatype.Byte)
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			return err
		}
		buf := make([]byte, perClient)
		if cfg.Verify {
			pos := int64(0)
			view.Walk(0, func(off, n int64) bool {
				for i := int64(0); i < n; i++ {
					buf[pos+i] = contendByte(off + i)
				}
				pos += n
				return true
			})
		}
		memType := datatype.Bytes(perClient)
		r.Stats.Reset()
		if err := r.TimePhase(func() error {
			// Independent writes: the ranks race, which is the point.
			return f.WriteAt(r.Env, 0, buf, memType, 1)
		}); err != nil {
			return err
		}
		if cfg.Verify {
			r.Comm.Barrier(r.Env)
			if r.ID == 0 {
				got := make([]byte, period*int64(rows))
				if err := pf.ReadContig(r.Env, 0, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != contendByte(int64(i)) {
						return fmt.Errorf("byte %d wrong after contended sieve writes: lost update", i)
					}
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Bytes = perClient * int64(writers)
	res.Err = err
	return res
}

// Block3D runs the ROMIO 3-D block test (E2) in read or write mode.
func Block3D(cfg Config, b3 workloads.Block3DConfig, method mpiio.Method, write bool) Result {
	name := "block3d-read"
	if write {
		name = "block3d-write"
	}
	res := Result{Name: name, Method: method, Clients: b3.Procs}
	if err := b3.Validate(); err != nil {
		res.Err = err
		return res
	}
	cfg.Clients = b3.Procs
	cl := NewCluster(cfg)
	blockBytes := b3.BlockBytes()
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "block3d.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		if cfg.Verify && !write && r.ID == 0 {
			// Populate the array with the oracle pattern.
			const chunk = 1 << 20
			buf := make([]byte, chunk)
			for at := int64(0); at < b3.TotalBytes(); at += chunk {
				n := b3.TotalBytes() - at
				if n > chunk {
					n = chunk
				}
				for i := int64(0); i < n; i++ {
					buf[i] = block3DByte(at + i)
				}
				if err := pf.WriteContig(r.Env, at, buf[:n]); err != nil {
					return err
				}
			}
		}
		r.Comm.Barrier(r.Env)
		f := mpiio.Open(pf, r.Comm, method, cfg.Hints)
		view := b3.View(r.ID)
		if err := f.SetView(0, datatype.Bytes(int64(b3.ElemSize)), view); err != nil {
			return err
		}
		buf := make([]byte, blockBytes)
		if write {
			if cfg.Verify {
				pos := int64(0)
				view.Walk(0, func(off, n int64) bool {
					for i := int64(0); i < n; i++ {
						buf[pos+i] = block3DByte(off + i)
					}
					pos += n
					return true
				})
			}
		}
		memType := datatype.Bytes(blockBytes)
		r.Stats.Reset()
		if err := r.TimePhase(func() error {
			if write {
				return f.WriteAtAll(r.Env, 0, buf, memType, 1)
			}
			return f.ReadAtAll(r.Env, 0, buf, memType, 1)
		}); err != nil {
			return err
		}
		if cfg.Verify && !write {
			pos := int64(0)
			var bad error
			view.Walk(0, func(off, n int64) bool {
				for i := int64(0); i < n; i++ {
					if buf[pos+i] != block3DByte(off+i) {
						bad = fmt.Errorf("rank %d: wrong byte at array offset %d", r.ID, off+i)
						return false
					}
				}
				pos += n
				return true
			})
			if bad != nil {
				return bad
			}
		}
		if cfg.Verify && write {
			r.Comm.Barrier(r.Env)
			if r.ID == 0 {
				got := make([]byte, b3.TotalBytes())
				if err := pf.ReadContig(r.Env, 0, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != block3DByte(int64(i)) {
						return fmt.Errorf("file byte %d wrong after collective write", i)
					}
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Digest, _, res.DigestErr = cl.Digest()
	res.PhaseStart, _ = cl.PhaseWindow()
	res.Bytes = int64(b3.Procs) * blockBytes
	res.Err = err
	return res
}

// Flash runs the FLASH I/O checkpoint (E3): one collective write of each
// process's reorganized blocks.
func Flash(cfg Config, fc workloads.FlashConfig, method mpiio.Method) Result {
	res := Result{Name: "flash", Method: method, Clients: fc.Procs}
	if err := fc.Validate(); err != nil {
		res.Err = err
		return res
	}
	cfg.Clients = fc.Procs
	cl := NewCluster(cfg)
	memType := fc.MemType()
	// In performance mode all ranks share one zero buffer (contents do
	// not matter and per-rank 60 MB buffers would dominate memory).
	var shared []byte
	if !cfg.Verify {
		shared = make([]byte, fc.MemBytes())
	}
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "flash.chk", cfg.StripSize)
		if err != nil {
			return err
		}
		f := mpiio.Open(pf, r.Comm, method, cfg.Hints)
		if err := f.SetView(0, datatype.Bytes(int64(fc.ElemSize)), fc.FileType(r.ID)); err != nil {
			return err
		}
		buf := shared
		if cfg.Verify {
			buf = make([]byte, fc.MemBytes())
			fc.FillMemory(r.ID, buf)
		}
		r.Stats.Reset()
		if err := r.TimePhase(func() error {
			return f.WriteAtAll(r.Env, 0, buf, memType, 1)
		}); err != nil {
			return err
		}
		if cfg.Verify {
			r.Comm.Barrier(r.Env)
			if r.ID == 0 {
				got := make([]byte, fc.TotalBytes())
				if err := pf.ReadContig(r.Env, 0, got); err != nil {
					return err
				}
				for i := range got {
					if got[i] != fc.FileOracle(int64(i)) {
						return fmt.Errorf("checkpoint byte %d wrong", i)
					}
				}
			}
		}
		return nil
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Locks = cl.LockStats()
	res.Digest, _, res.DigestErr = cl.Digest()
	res.PhaseStart, _ = cl.PhaseWindow()
	res.Bytes = fc.TotalBytes()
	res.Err = err
	return res
}

// AdjacentBlocks is the ablation A2 workload: the application describes
// its data block by block (as chunked high-level libraries do), but the
// blocks happen to be adjacent in the file. With coalescing the servers
// see a handful of large runs; without it they process one offset-length
// pair per block — isolating the value of the paper's §3.2 coalescing
// optimization in dataloop processing.
func AdjacentBlocks(cfg Config, nBlocks int, blockSize int64, noCoalesce bool) Result {
	res := Result{Name: "adjacent-blocks", Method: mpiio.DtypeIO, Clients: cfg.Clients}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
		res.Clients = 4
	}
	cl := NewCluster(cfg)
	perClient := int64(nBlocks) * blockSize
	elapsed, per, err := cl.Run(func(r *Rank) error {
		pf, err := openShared(r, "blocks.dat", cfg.StripSize)
		if err != nil {
			return err
		}
		hints := cfg.Hints
		hints.DtypeNoCoalesce = noCoalesce
		f := mpiio.Open(pf, r.Comm, mpiio.DtypeIO, hints)
		displs := make([]int64, nBlocks)
		base := int64(r.ID) * perClient
		for i := range displs {
			displs[i] = base + int64(i)*blockSize
		}
		view := datatype.HBlockIndexed(1, displs, datatype.Bytes(blockSize))
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			return err
		}
		buf := make([]byte, perClient)
		memType := datatype.Bytes(perClient)
		r.Stats.Reset()
		return r.TimePhase(func() error {
			if err := f.WriteAtAll(r.Env, 0, buf, memType, 1); err != nil {
				return err
			}
			return f.ReadAtAll(r.Env, 0, buf, memType, 1)
		})
	})
	res.Elapsed = elapsed
	res.PerClient = per
	res.Disk = cl.DiskStats()
	res.Util = cl.Utilization()
	res.Lat = cl.ClientLat()
	res.SrvLat = cl.ServerLat()
	res.Fault = cl.FaultStats()
	res.Total = cl.TotalStats()
	res.Bytes = 2 * perClient * int64(res.Clients)
	res.Err = err
	return res
}

// VerifyImage compares a file's contents to an expected image via one
// contiguous read on a throwaway cluster client (test helper).
func VerifyImage(env transport.Env, pf *pvfs.File, want []byte) error {
	got := make([]byte, len(want))
	if err := pf.ReadContig(env, 0, got); err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("file image mismatch")
	}
	return nil
}
