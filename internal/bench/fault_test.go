package bench

import (
	"testing"
	"time"

	"dtio/internal/fault"
	"dtio/internal/mpiio"
	"dtio/internal/pvfs"
)

// faultRetry is a retry policy scaled to the simulated cluster: virtual
// timeouts well above a healthy round trip, far below a fault window.
func faultRetry() pvfs.RetryPolicy {
	return pvfs.RetryPolicy{
		Attempts:   12,
		Timeout:    250 * time.Millisecond,
		Backoff:    5 * time.Millisecond,
		MaxBackoff: 160 * time.Millisecond,
	}
}

// TestFaultRunDeterministic: the same seed must produce the same fault
// schedule and therefore bit-identical results — elapsed virtual time,
// retry counters, and injector counters all match across runs.
func TestFaultRunDeterministic(t *testing.T) {
	run := func() Result {
		cfg := verifyCfg(6, 1)
		cfg.Fault = &fault.Plan{Seed: 17, DropProb: 0.15, DupProb: 0.03}
		cfg.Retry = faultRetry()
		return TileRead(cfg, smallTile(), mpiio.DtypeIO, 6)
	}
	a, b := run(), run()
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v / %v", a.Err, b.Err)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if a.Fault != b.Fault {
		t.Fatalf("injector counters diverged: %+v vs %+v", a.Fault, b.Fault)
	}
	if a.Total != b.Total {
		t.Fatalf("client counters diverged:\n%+v\n%+v", a.Total, b.Total)
	}
	if a.Fault.Dropped == 0 {
		t.Fatal("plan injected nothing; the test is vacuous")
	}
	if a.Total.Retries == 0 {
		t.Fatal("drops occurred but no client retried")
	}
}

// TestFaultOffMatchesPlain: a nil plan and a zero plan must leave the
// cluster untouched — identical virtual elapsed time and zero fault
// counters, i.e. the injector costs nothing when disabled.
func TestFaultOffMatchesPlain(t *testing.T) {
	base := TileRead(verifyCfg(6, 1), smallTile(), mpiio.ListIO, 2)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	cfg := verifyCfg(6, 1)
	cfg.Fault = &fault.Plan{Seed: 99} // zero probabilities, no events
	zeroed := TileRead(cfg, smallTile(), mpiio.ListIO, 2)
	if zeroed.Err != nil {
		t.Fatal(zeroed.Err)
	}
	if base.Elapsed != zeroed.Elapsed {
		t.Fatalf("zero plan changed elapsed: %v vs %v", base.Elapsed, zeroed.Elapsed)
	}
	if zeroed.Fault != (fault.Stats{}) || zeroed.Total.Retries != 0 {
		t.Fatalf("zero plan injected: %+v retries=%d", zeroed.Fault, zeroed.Total.Retries)
	}
}

// TestFaultCrashRestartVerified: a mid-run crash-restart of one server
// under message loss; the verified workload must still produce correct
// bytes, with the recovery visible in the retry counters.
func TestFaultCrashRestartVerified(t *testing.T) {
	cfg := verifyCfg(6, 1)
	cfg.Fault = &fault.Plan{
		Seed:     5,
		DropProb: 0.005,
		Events: []fault.Event{
			{At: 30 * time.Millisecond, Server: 1, Kind: fault.Crash, Dur: 50 * time.Millisecond},
		},
	}
	cfg.Retry = faultRetry()
	res := TileWrite(cfg, smallTile(), mpiio.DtypeIO, 2)
	if res.Err != nil {
		t.Fatalf("verified tile write under crash-restart: %v", res.Err)
	}
	if res.Total.Retries == 0 {
		t.Fatal("crash-restart run recorded no retries")
	}
}

// TestFaultStallAndDegrade: scheduled stall and disk-degrade events
// slow a run down without breaking it.
func TestFaultStallAndDegrade(t *testing.T) {
	base := TileRead(verifyCfg(6, 1), smallTile(), mpiio.ListIO, 2)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	cfg := verifyCfg(6, 1)
	cfg.Fault = &fault.Plan{
		Seed: 3,
		Events: []fault.Event{
			{At: 10 * time.Millisecond, Server: 0, Kind: fault.Degrade, Factor: 800},
			{At: 20 * time.Millisecond, Server: 2, Kind: fault.Stall, Dur: 40 * time.Millisecond},
		},
	}
	cfg.Retry = faultRetry()
	res := TileRead(cfg, smallTile(), mpiio.ListIO, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Elapsed <= base.Elapsed {
		t.Fatalf("degraded run not slower: %v vs baseline %v", res.Elapsed, base.Elapsed)
	}
}
