package bench

import (
	"testing"
	"time"
)

// streamElapsed runs one rank moving nbytes contiguously (read or
// write) on a 2-server simulated cluster and reports the timed phase.
func streamElapsed(t *testing.T, noStreaming, write bool, nbytes int64) time.Duration {
	t.Helper()
	cfg := DefaultConfig(1, 1)
	cfg.Servers = 2
	cfg.NoStreaming = noStreaming
	c := NewCluster(cfg)
	elapsed, _, err := c.Run(func(r *Rank) error {
		f, err := r.FS.Create(r.Env, "stream.dat", cfg.StripSize, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, nbytes)
		if !write {
			if err := f.WriteContig(r.Env, 0, buf); err != nil {
				return err
			}
		}
		return r.TimePhase(func() error {
			if write {
				return f.WriteContig(r.Env, 0, buf)
			}
			return f.ReadContig(r.Env, 0, buf)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
	return elapsed
}

// TestStreamingOverlapsDiskAndNetwork pins the tentpole win in simulated
// time: with flow-controlled streaming, segment k+1's disk work proceeds
// while segment k is on the wire, so a multi-segment transfer beats the
// store-and-forward ablation in both directions.
func TestStreamingOverlapsDiskAndNetwork(t *testing.T) {
	const nbytes = 8 << 20 // 4 MB per server: 64 segments each
	for _, write := range []bool{false, true} {
		name := "read"
		if write {
			name = "write"
		}
		plain := streamElapsed(t, true, write, nbytes)
		streamed := streamElapsed(t, false, write, nbytes)
		t.Logf("%s: store-and-forward %v, streamed %v", name, plain, streamed)
		if streamed >= plain {
			t.Fatalf("%s: streaming did not improve simulated time (%v >= %v)", name, streamed, plain)
		}
		// The overlap should hide a meaningful share of the serialized
		// pipeline, not round to noise.
		if float64(streamed) > 0.97*float64(plain) {
			t.Fatalf("%s: improvement under 3%% (%v vs %v)", name, streamed, plain)
		}
	}
}

// TestStreamingMatchesAblationBytes confirms streaming changes timing
// only: the bytes an application reads back are identical with the
// ablation on and off.
func TestStreamingMatchesAblationBytes(t *testing.T) {
	read := func(noStreaming bool) []byte {
		cfg := DefaultConfig(1, 1)
		cfg.Servers = 2
		cfg.Discard = false
		cfg.NoStreaming = noStreaming
		c := NewCluster(cfg)
		out := make([]byte, 300000)
		_, _, err := c.Run(func(r *Rank) error {
			f, err := r.FS.Create(r.Env, "b.dat", cfg.StripSize, 0)
			if err != nil {
				return err
			}
			data := make([]byte, len(out))
			for i := range data {
				data[i] = byte(i*7 + 3)
			}
			if err := f.WriteContig(r.Env, 0, data); err != nil {
				return err
			}
			return f.ReadContig(r.Env, 0, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := read(false), read(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs: streamed %d, ablation %d", i, a[i], b[i])
		}
	}
	if a[0] != 3 || a[1] != 10 {
		t.Fatal("read returned wrong data")
	}
}
