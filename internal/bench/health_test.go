package bench

import (
	"testing"
	"time"

	"dtio/internal/fault"
	"dtio/internal/pvfs"
)

// healthSweep runs a replica-read sweep against an 8-server, k=2
// cluster with the health aggregator ticking at interval and the given
// fault plan, and returns the cluster for post-run inspection. The
// sweep makes `passes` full passes of one 4 KiB read per 64 KiB picker
// window, so every group's picker choice is sampled continuously for
// the whole run.
func healthSweep(t *testing.T, interval time.Duration, plan *fault.Plan, fileBytes int64, passes int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(4, 1)
	cfg.Servers = 8
	cfg.Replicas = 2
	cfg.LeastLoadedReads = true
	cfg.HealthInterval = interval
	cfg.Fault = plan
	cfg.Retry = faultRetry()
	cl := NewCluster(cfg)
	_, _, err := cl.Run(func(r *Rank) error {
		var f *pvfs.File
		var err error
		if r.ID == 0 {
			f, err = r.FS.Create(r.Env, "health.dat", cfg.StripSize, 0)
			if err == nil {
				err = f.WriteContig(r.Env, fileBytes-1, []byte{0})
			}
		}
		r.Comm.Barrier(r.Env)
		if r.ID != 0 {
			f, err = r.FS.Open(r.Env, "health.dat")
		}
		if err != nil {
			return err
		}
		// Each rank starts its sweep a quarter of the file further along
		// and wraps: in lockstep from offset 0 every rank's first picks
		// pile onto the same cold member, which reads as a (real, but
		// uninteresting) startup straggler.
		const window = 64 * 1024
		windows := fileBytes / window
		buf := make([]byte, 4096)
		for p := 0; p < passes; p++ {
			for i := int64(0); i < windows; i++ {
				w := (i + int64(r.ID)*windows/4) % windows
				off := w * window
				if off+int64(len(buf)) > fileBytes {
					continue
				}
				if err := f.ReadContig(r.Env, off, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("health sweep: %v", err)
	}
	if cl.HealthTicks() == 0 {
		t.Fatal("aggregator never ticked; interval too long for the run")
	}
	return cl
}

// TestHealthFlagsDegradeWithinOneInterval: a disk degrade mid-run must
// be flagged by the very next aggregation tick (the Degraded state
// alone clears the straggler cutoff — no histogram evidence needed),
// and the health-fed pickers must shift reads onto the healthy group
// sibling for the rest of the run.
func TestHealthFlagsDegradeWithinOneInterval(t *testing.T) {
	const (
		// The interval must exceed the healthy service envelope (p99 runs
		// single-digit ms here), or "no completions this window" stops
		// meaning anything.
		interval  = 10 * time.Millisecond
		degradeAt = 50 * time.Millisecond
	)
	plan := &fault.Plan{Events: []fault.Event{
		{At: degradeAt, Server: 0, Kind: fault.Degrade, Factor: 800},
	}}
	cl := healthSweep(t, interval, plan, 8<<20, 4)

	at, ok := cl.StragglerFlaggedAt(0)
	if !ok {
		t.Fatal("degraded server 0 never flagged as straggler")
	}
	// Ticks land at multiples of the interval, so the first tick at or
	// after the event is at most one interval later.
	if at < degradeAt || at > degradeAt+interval {
		t.Fatalf("flagged at %v, want within one interval (%v) of degrade at %v", at, interval, degradeAt)
	}

	// Picker shift: group 0 is servers {0,1}; once server 0 carries the
	// straggler bias every window pick in the group lands on server 1.
	reads := cl.ServerReadCounts()
	if reads[0] >= reads[1] {
		t.Fatalf("reads did not shift off the straggler: server0=%d server1=%d (all: %v)",
			reads[0], reads[1], reads)
	}
	// Other groups stay balanced-ish: their members must all have served
	// reads (the bias only isolates the straggler, not healthy members).
	for s := 2; s < len(reads); s++ {
		if reads[s] == 0 {
			t.Fatalf("healthy server %d served nothing: %v", s, reads)
		}
	}
}

// TestHealthFlagsStall: a frozen server completes nothing, so its
// latency window is empty — silence, not a spike. The aggregator must
// still flag it, from queued requests with no completions, by the
// first tick whose window lies entirely inside the stall.
func TestHealthFlagsStall(t *testing.T) {
	const (
		interval = 10 * time.Millisecond
		stallAt  = 50 * time.Millisecond
		stallDur = 80 * time.Millisecond
	)
	plan := &fault.Plan{Events: []fault.Event{
		{At: stallAt, Server: 0, Kind: fault.Stall, Dur: stallDur},
	}}
	cl := healthSweep(t, interval, plan, 8<<20, 4)

	at, ok := cl.StragglerFlaggedAt(0)
	if !ok {
		t.Fatal("stalled server 0 never flagged as straggler")
	}
	// The tick right after stallAt may still see pre-stall completions
	// in its window; the next one cannot, and the debounce adds one
	// more tick before the flag counts as a detection.
	if at < stallAt || at > stallAt+4*interval {
		t.Fatalf("flagged at %v, want within four intervals (%v) of stall at %v", at, interval, stallAt)
	}
}
