package bench

import (
	"testing"

	"dtio/internal/mpiio"
	"dtio/internal/workloads"
)

func smallCacheCfg(verify bool) Config {
	cfg := DefaultConfig(4, 1)
	cfg.Servers = 4
	cfg.CacheBytes = 1 << 20
	cfg.CacheChunkBytes = 16 * 1024
	if verify {
		cfg.Discard = false
		cfg.Verify = true
	}
	return cfg
}

// TestReReadHitRatio: with the cache sized to hold each rank's region,
// re-reads are served locally at >= 90% hit ratio and the flushed file
// is byte-identical to the oracle.
func TestReReadHitRatio(t *testing.T) {
	cfg := smallCacheCfg(true)
	res := ReRead(cfg, 4, 64*1024, 1024, 4)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if ratio := res.Total.HitRatio(); ratio < 0.9 {
		t.Fatalf("hit ratio %.2f, want >= 0.9 (hits=%d misses=%d)",
			ratio, res.Total.CacheHits, res.Total.CacheMisses)
	}
}

// TestReWriteAbsorbed: repeated overwrites are absorbed in cache; the
// wire traffic of the timed phase is a small multiple of one region
// write, not rounds of them.
func TestReWriteAbsorbed(t *testing.T) {
	cfg := smallCacheCfg(true)
	const rounds = 8
	res := ReWrite(cfg, 4, 64*1024, 1024, rounds)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	uncfg := smallCacheCfg(true)
	uncfg.CacheBytes = 0
	unres := ReWrite(uncfg, 4, 64*1024, 1024, rounds)
	if unres.Err != nil {
		t.Fatal(unres.Err)
	}
	if res.PerClient.WireMsgs*4 >= unres.PerClient.WireMsgs {
		t.Fatalf("cached rewrite wire msgs %d not well below uncached %d",
			res.PerClient.WireMsgs, unres.PerClient.WireMsgs)
	}
	if res.PerClient.FlushOps == 0 {
		t.Fatal("no write-back flushes recorded")
	}
}

// TestCacheContentionCoherent: ping-ponging one shared extent across
// ranks stays deadlock-free and byte-correct, with revocations actually
// exercised.
func TestCacheContentionCoherent(t *testing.T) {
	cfg := smallCacheCfg(true)
	res := CacheContention(cfg, 4, 64*1024, 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Total.Invalidations == 0 {
		t.Fatal("contention run recorded no lease invalidations")
	}
}

// TestCachedTileWriteAggregates: the cached posix tile write produces
// the same image as the uncached one while sending a small fraction of
// its wire messages — the PR6 headline.
func TestCachedTileWriteAggregates(t *testing.T) {
	tile := workloads.TileConfig{
		TilesX: 3, TilesY: 2, TileW: 32, TileH: 24, Depth: 3,
		OverlapX: 8, OverlapY: 4, Frames: 1,
	}
	base := DefaultConfig(tile.NumClients(), 1)
	base.Servers = 4
	base.Discard = false
	base.Verify = true

	uncached := TileWrite(base, tile, mpiio.Posix, 1)
	if uncached.Err != nil {
		t.Fatal(uncached.Err)
	}
	cfg := base
	cfg.CacheBytes = 4 << 20
	cfg.CacheChunkBytes = 64 * 1024
	cached := TileWrite(cfg, tile, mpiio.Posix, 1)
	if cached.Err != nil {
		t.Fatal(cached.Err)
	}
	if cached.PerClient.WireMsgs*4 >= uncached.PerClient.WireMsgs {
		t.Fatalf("cached posix tile write: %d wire msgs/client, uncached %d — no collapse",
			cached.PerClient.WireMsgs, uncached.PerClient.WireMsgs)
	}
	if cached.PerClient.CacheHits == 0 || cached.PerClient.FlushOps == 0 {
		t.Fatalf("cache not exercised: %+v", cached.PerClient)
	}
}
