package bench

import (
	"fmt"
	"sort"
	"strings"

	"dtio/internal/iostats"
)

// CharacteristicsTable renders results in the layout of the paper's
// Tables 1-3: desired data, data accessed, I/O ops, and resent data per
// client, plus the request-payload column that motivates datatype I/O.
func CharacteristicsTable(title string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %14s %12s %14s %14s\n",
		"Method", "Desired/Client", "Accessed/Client", "IOOps/Client", "Resent/Client", "ReqPayload")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-14s ERROR: %v\n", r.Method, r.Err)
			continue
		}
		s := r.PerClient
		fmt.Fprintf(&b, "%-14s %14s %14s %12d %14s %14s\n",
			r.Method.String(),
			iostats.MB(s.DesiredBytes),
			iostats.MB(s.AccessedBytes),
			s.IOOps,
			iostats.MB(s.ResentBytes),
			iostats.MB(s.ReqBytes))
	}
	return b.String()
}

// BandwidthTable renders a performance figure as text: one row per
// client count, one column per method.
func BandwidthTable(title string, results []Result) string {
	methods := map[string]bool{}
	clients := map[int]bool{}
	cell := map[string]map[int]Result{}
	for _, r := range results {
		m := r.Method.String()
		methods[m] = true
		clients[r.Clients] = true
		if cell[m] == nil {
			cell[m] = map[int]Result{}
		}
		cell[m][r.Clients] = r
	}
	var ms []string
	for m := range methods {
		ms = append(ms, m)
	}
	sort.Strings(ms)
	var cs []int
	for c := range clients {
		cs = append(cs, c)
	}
	sort.Ints(cs)

	var b strings.Builder
	fmt.Fprintf(&b, "%s (aggregate MB/s)\n", title)
	fmt.Fprintf(&b, "%8s", "clients")
	for _, m := range ms {
		fmt.Fprintf(&b, " %12s", m)
	}
	b.WriteString("\n")
	for _, c := range cs {
		fmt.Fprintf(&b, "%8d", c)
		for _, m := range ms {
			r, ok := cell[m][c]
			switch {
			case !ok:
				fmt.Fprintf(&b, " %12s", "-")
			case r.Err != nil:
				fmt.Fprintf(&b, " %12s", "ERR")
			default:
				fmt.Fprintf(&b, " %12.2f", r.BandwidthMBs())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CacheTable renders the extent-cache columns of a result set: hits,
// misses, hit ratio, aggregated flushes and coherence invalidations per
// client (from the timed phase), plus wire messages — the aggregation
// win and the coherence cost side by side.
func CacheTable(title string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %8s %9s %10s %8s %10s\n",
		"Run", "clients", "hits", "misses", "hit%", "flushes", "flushed", "inval", "wiremsgs")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-16s ERROR: %v\n", r.Name, r.Err)
			continue
		}
		s := r.PerClient
		fmt.Fprintf(&b, "%-16s %8d %8d %8d %7.0f%% %9d %10s %8d %10d\n",
			r.Name, r.Clients,
			s.CacheHits, s.CacheMisses, 100*s.HitRatio(),
			s.FlushOps, iostats.MB(s.FlushBytes), s.Invalidations, s.WireMsgs)
	}
	return b.String()
}

// ReplicaTable renders the replication columns of a result set: write
// fan-out copies and degraded reads over the whole run (lifetime
// totals, since a kill can land in setup as easily as in the timed
// phase), repair traffic from the server side, and the bandwidth the
// run still delivered — availability and its cost side by side.
func ReplicaTable(title string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s %8s %10s %10s %10s %10s\n",
		"Run", "clients", "MB/s", "fanout", "degraded", "repair")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-24s ERROR: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-24s %8d %10.2f %10d %10d %10s\n",
			r.Name, r.Clients, r.BandwidthMBs(),
			r.Total.FanoutWrites, r.Total.DegradedReads,
			iostats.MB(r.Disk.ReplicaRepairBytes))
	}
	return b.String()
}

// UtilizationTable renders the bottleneck analysis of a result set.
func UtilizationTable(title string, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (busy fraction of run)\n", title)
	fmt.Fprintf(&b, "%-10s %8s %9s %9s %9s %9s %9s\n",
		"Method", "clients", "srv-disk", "srv-nic", "srv-cpu", "cli-nic", "cli-cpu")
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		u := r.Util
		fmt.Fprintf(&b, "%-10s %8d %8.0f%% %8.0f%% %8.0f%% %8.0f%% %8.0f%%\n",
			r.Method.String(), r.Clients,
			u.ServerDisk*100, u.ServerNIC*100, u.ServerCPU*100,
			u.ClientNIC*100, u.ClientCPU*100)
	}
	return b.String()
}
