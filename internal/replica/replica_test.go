package replica

import (
	"testing"

	"dtio/internal/striping"
)

// TestMapK1Identity: with k=1 the replica layer is the identity —
// group i is physical server i, exactly the pre-replication layout.
func TestMapK1Identity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		m := NewMap(n, 1)
		if m.Servers() != n || m.Groups() != n || m.K() != 1 {
			t.Fatalf("NewMap(%d,1): groups=%d k=%d servers=%d", n, m.Groups(), m.K(), m.Servers())
		}
		for i := 0; i < n; i++ {
			if m.Member(i, 0) != i {
				t.Fatalf("k=1 Member(%d,0) = %d, want %d", i, m.Member(i, 0), i)
			}
			g, j := m.GroupOf(i)
			if g != i || j != 0 {
				t.Fatalf("k=1 GroupOf(%d) = (%d,%d), want (%d,0)", i, g, j, i)
			}
			if peers := m.Peers(i); len(peers) != 0 {
				t.Fatalf("k=1 Peers(%d) = %v, want none", i, peers)
			}
		}
	}
}

// TestMapRoundTrip: Member and GroupOf are inverses, members of a
// group are k consecutive physical servers, and Peers is everyone in
// my group but me.
func TestMapRoundTrip(t *testing.T) {
	for _, tc := range []struct{ groups, k int }{
		{1, 2}, {2, 2}, {4, 3}, {3, 4}, {5, 1},
	} {
		m := NewMap(tc.groups, tc.k)
		for g := 0; g < tc.groups; g++ {
			members := m.Members(g)
			if len(members) != tc.k {
				t.Fatalf("%d/%d: Members(%d) has %d entries", tc.groups, tc.k, g, len(members))
			}
			for j, phys := range members {
				if phys != g*tc.k+j {
					t.Fatalf("%d/%d: Members(%d)[%d] = %d, want consecutive %d", tc.groups, tc.k, g, j, phys, g*tc.k+j)
				}
				if m.Member(g, j) != phys {
					t.Fatalf("%d/%d: Member(%d,%d) = %d != Members %d", tc.groups, tc.k, g, j, m.Member(g, j), phys)
				}
				gg, jj := m.GroupOf(phys)
				if gg != g || jj != j {
					t.Fatalf("%d/%d: GroupOf(%d) = (%d,%d), want (%d,%d)", tc.groups, tc.k, phys, gg, jj, g, j)
				}
				peers := m.Peers(phys)
				if len(peers) != tc.k-1 {
					t.Fatalf("%d/%d: Peers(%d) = %v", tc.groups, tc.k, phys, peers)
				}
				for _, p := range peers {
					pg, pj := m.GroupOf(p)
					if pg != g || pj == j {
						t.Fatalf("%d/%d: Peers(%d) contains %d (group %d member %d)", tc.groups, tc.k, phys, p, pg, pj)
					}
				}
			}
		}
	}
}

// TestStripingPieceToGroupMapping walks a logical region through the
// striping math (whose NServers is the replica *group* count) and
// checks every piece lands in exactly one group whose k physical
// members are the fan-out targets — including pieces that start or end
// precisely on strip boundaries.
func TestStripingPieceToGroupMapping(t *testing.T) {
	const k = 3
	lay := striping.Layout{StripSize: 100, NServers: 4, Base: 1}
	m := NewMap(lay.NServers, k)
	// Regions chosen to hit boundary cases: strip-aligned start,
	// strip-aligned end, a region inside one strip, one crossing every
	// server, and a full multi-stripe span.
	for _, reg := range []struct{ off, n int64 }{
		{0, 100}, {100, 100}, {95, 10}, {0, 400}, {250, 900}, {399, 2},
	} {
		var covered int64
		ok := lay.Split(reg.off, reg.n, func(p striping.Piece) bool {
			covered += p.Len
			if p.Server < 0 || p.Server >= m.Groups() {
				t.Fatalf("piece at %d: group %d out of range", p.Logical, p.Server)
			}
			// A piece never straddles a strip boundary, so one group
			// owns all of it; the k replicas are that group's members.
			if end := p.Logical + p.Len; (p.Logical / lay.StripSize) != (end-1)/lay.StripSize {
				t.Fatalf("piece [%d,%d) straddles a strip boundary", p.Logical, end)
			}
			for j, phys := range m.Members(p.Server) {
				g, mem := m.GroupOf(phys)
				if g != p.Server || mem != j {
					t.Fatalf("member %d of group %d maps back to (%d,%d)", j, p.Server, g, mem)
				}
			}
			return true
		})
		if !ok || covered != reg.n {
			t.Fatalf("region [%d,%d): covered %d bytes", reg.off, reg.off+reg.n, covered)
		}
		// ServerPieces per group must partition the region.
		var perGroup int64
		for g := 0; g < lay.NServers; g++ {
			lay.ServerPieces(g, reg.off, reg.n, func(_, _, ln int64) bool {
				perGroup += ln
				return true
			})
		}
		if perGroup != reg.n {
			t.Fatalf("region [%d,%d): ServerPieces over groups covered %d", reg.off, reg.off+reg.n, perGroup)
		}
	}
}

// TestMembershipStableUnderKill: placement is pure arithmetic, so a
// killed server changes which members are live, never which group owns
// a piece. The failover order from any picker choice enumerates every
// member exactly once, so a single death always leaves a live target.
func TestMembershipStableUnderKill(t *testing.T) {
	const groups, k = 4, 3
	m := NewMap(groups, k)
	killed := 7 // group 2, member 1
	g, j := m.GroupOf(killed)
	if g != 2 || j != 1 {
		t.Fatalf("GroupOf(%d) = (%d,%d)", killed, g, j)
	}
	// Membership after the kill is what it was before: recompute and
	// compare every slot.
	for gg := 0; gg < groups; gg++ {
		for jj, phys := range m.Members(gg) {
			if m.Member(gg, jj) != phys || phys != gg*k+jj {
				t.Fatalf("membership moved after kill: group %d member %d", gg, jj)
			}
		}
	}
	// Failover rotation (pick+i)%k from any starting pick visits all k
	// members once, so some live member is always reached.
	var pk Rendezvous
	for off := int64(0); off < 1<<22; off += 123457 {
		first := pk.Pick(42, off, g, k)
		seen := make(map[int]bool, k)
		for i := 0; i < k; i++ {
			seen[(first+i)%k] = true
		}
		if len(seen) != k {
			t.Fatalf("failover rotation from %d missed a member: %v", first, seen)
		}
	}
}

// TestRendezvousDeterministicAndUniform: the default picker is a pure
// function of its inputs, stays in range, and spreads distinct
// (handle, window) keys across a k=3 group within 20% of fair share —
// the balance bound the PR9 bench asserts end-to-end.
func TestRendezvousDeterministicAndUniform(t *testing.T) {
	var pk Rendezvous
	const k = 3
	counts := make([]int, k)
	total := 0
	for h := uint64(1); h <= 100; h++ {
		for w := int64(0); w < 300; w++ {
			off := w << pickWindow
			p := pk.Pick(h, off, int(h)%4, k)
			if p < 0 || p >= k {
				t.Fatalf("pick %d out of range", p)
			}
			if p2 := pk.Pick(h, off, int(h)%4, k); p2 != p {
				t.Fatalf("picker not deterministic: %d then %d", p, p2)
			}
			// Offsets inside the same window agree (read locality).
			if p3 := pk.Pick(h, off+(1<<pickWindow)-1, int(h)%4, k); p3 != p {
				t.Fatalf("window not stable: %d then %d", p, p3)
			}
			counts[p]++
			total++
		}
	}
	fair := float64(total) / k
	for j, c := range counts {
		if ratio := float64(c) / fair; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("member %d got %d of %d picks (%.0f%% of fair share)", j, c, total, ratio*100)
		}
	}
	if pk.Pick(9, 512, 0, 1) != 0 {
		t.Fatal("k=1 must pick member 0")
	}
}

// TestLeastLoaded: an idle least-loaded picker matches rendezvous
// exactly; once a member is loaded, picks avoid it; Observe composes
// with SetLoad.
func TestLeastLoaded(t *testing.T) {
	const groups, k = 2, 3
	m := NewMap(groups, k)
	ll := NewLeastLoaded(m.Servers())
	var rv Rendezvous
	for h := uint64(1); h < 50; h++ {
		off := int64(h) * 7919 << pickWindow
		if got, want := ll.Pick(h, off, 1, k), rv.Pick(h, off, 1, k); got != want {
			t.Fatalf("idle least-loaded pick %d, rendezvous %d", got, want)
		}
	}
	// Load member 1 of group 1 heavily: no pick should land on it.
	busy := m.Member(1, 1)
	ll.Observe(busy, 10)
	for h := uint64(1); h < 200; h++ {
		if p := ll.Pick(h, int64(h)<<pickWindow, 1, k); p == 1 {
			t.Fatalf("picked loaded member (load %d)", ll.Load(busy))
		}
	}
	// Draining the load restores the rendezvous choice.
	ll.Observe(busy, -10)
	if ll.Load(busy) != 0 {
		t.Fatalf("load %d after drain", ll.Load(busy))
	}
	ll.SetLoad(busy, 3)
	if ll.Load(busy) != 3 {
		t.Fatalf("SetLoad ignored: %d", ll.Load(busy))
	}
	ll.SetLoad(busy, 0)
	for h := uint64(1); h < 50; h++ {
		off := int64(h) * 104729 << pickWindow
		if got, want := ll.Pick(h, off, 1, k), rv.Pick(h, off, 1, k); got != want {
			t.Fatalf("drained least-loaded pick %d, rendezvous %d", got, want)
		}
	}
}
