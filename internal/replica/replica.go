// Package replica organizes the I/O servers into k-way replica groups
// layered *under* the striping math (DESIGN.md §16). The striping
// layout is computed over replica groups, not physical servers: a
// layout with NServers = G addresses groups 0..G-1, and each group g
// owns k consecutive physical servers g*k .. g*k+k-1. Every stripe
// piece the striping math assigns to group g is written to all k
// members and may be read from any one of them.
//
// The placement is pure arithmetic — no directory, no membership
// protocol. A killed server changes which members are *live*, never
// which group a piece belongs to, so repair is "copy the group's
// pieces back onto the same slot", and k=1 collapses to the identity:
// group i is exactly server i, byte-identical to the pre-replication
// layout.
//
// Read placement goes through a Picker. The default is rendezvous
// (highest-random-weight) hashing over (handle, offset window, member)
// — deterministic, stateless, and uniform across members — mirroring
// the shard package's name routing. A least-loaded picker is also
// provided, fed by per-server outstanding-request counts (the same
// signal the PR5 server histograms expose), with rendezvous order as
// the tie-break so it degenerates to the default when idle.
package replica

import "sync/atomic"

// Map describes a static replica placement: G groups of K consecutive
// physical servers. The zero value is invalid; use NewMap.
type Map struct {
	groups int
	k      int
}

// NewMap builds a placement of `groups` replica groups of size k.
// k < 1 is treated as 1 (no replication).
func NewMap(groups, k int) Map {
	if groups < 1 {
		panic("replica: no groups")
	}
	if k < 1 {
		k = 1
	}
	return Map{groups: groups, k: k}
}

// Groups reports the group count — the NServers the striping math sees.
func (m Map) Groups() int { return m.groups }

// K reports the replication factor.
func (m Map) K() int { return m.k }

// Servers reports the physical server count (groups × k).
func (m Map) Servers() int { return m.groups * m.k }

// Member reports the physical server index of member j of group g.
func (m Map) Member(g, j int) int { return g*m.k + j }

// Members returns group g's physical server indices in member order.
func (m Map) Members(g int) []int {
	out := make([]int, m.k)
	for j := range out {
		out[j] = g*m.k + j
	}
	return out
}

// GroupOf reports which (group, member) slot a physical server fills.
func (m Map) GroupOf(phys int) (g, member int) {
	return phys / m.k, phys % m.k
}

// Peers returns the physical indices of phys's group siblings (every
// member of its group except itself) — the servers a restarted member
// repairs from.
func (m Map) Peers(phys int) []int {
	g, me := m.GroupOf(phys)
	out := make([]int, 0, m.k-1)
	for j := 0; j < m.k; j++ {
		if j != me {
			out = append(out, g*m.k+j)
		}
	}
	return out
}

// Picker chooses which member of a group should serve a read. Pick
// returns the preferred member index in [0, k); the caller fails over
// to (pick+1)%k, (pick+2)%k, … when the preferred member is down, so a
// picker only ever chooses the *first* attempt.
type Picker interface {
	Pick(handle uint64, off int64, group, k int) int
}

// pickWindow quantizes the read offset for rendezvous keying: reads
// within the same 64 KiB window of a file agree on a member (locality
// for small sequential reads), while distinct windows, files, and
// groups spread uniformly across members.
const pickWindow = 16 // log2(64 KiB)

// Rendezvous is the default stateless picker: member with the highest
// (handle, offset window, member) weight wins, ties to the lower
// member. Deterministic across processes and runs.
type Rendezvous struct{}

// Pick implements Picker.
func (Rendezvous) Pick(handle uint64, off int64, group, k int) int {
	if k <= 1 {
		return 0
	}
	key := splitmix(handle) ^ splitmix(uint64(off>>pickWindow)) ^ splitmix(uint64(group)*0x9e3779b97f4a7c15)
	best, pick := uint64(0), 0
	for j := 0; j < k; j++ {
		w := splitmix(key + uint64(j+1)*0x9e3779b97f4a7c15)
		if j == 0 || w > best {
			best, pick = w, j
		}
	}
	return pick
}

// LeastLoaded picks the group member with the fewest outstanding
// requests, breaking ties by rendezvous order so an idle system
// behaves exactly like the default picker. Load is whatever the caller
// feeds it: the pvfs client counts its own in-flight requests per
// physical server, and anything with access to the PR5 server
// histograms can overwrite the counts with observed queue depths.
type LeastLoaded struct {
	loads []atomic.Int64 // indexed by physical server
}

// NewLeastLoaded sizes the picker for `servers` physical servers.
func NewLeastLoaded(servers int) *LeastLoaded {
	return &LeastLoaded{loads: make([]atomic.Int64, servers)}
}

// Observe adjusts a physical server's load by delta (+1 on dispatch,
// -1 on completion).
func (p *LeastLoaded) Observe(phys int, delta int64) {
	if phys >= 0 && phys < len(p.loads) {
		p.loads[phys].Add(delta)
	}
}

// SetLoad overwrites a physical server's load with an externally
// observed value (e.g. a histogram count delta).
func (p *LeastLoaded) SetLoad(phys int, v int64) {
	if phys >= 0 && phys < len(p.loads) {
		p.loads[phys].Store(v)
	}
}

// Load reports a physical server's current load.
func (p *LeastLoaded) Load(phys int) int64 {
	if phys >= 0 && phys < len(p.loads) {
		return p.loads[phys].Load()
	}
	return 0
}

// Pick implements Picker: least-loaded member, rendezvous tie-break.
func (p *LeastLoaded) Pick(handle uint64, off int64, group, k int) int {
	if k <= 1 {
		return 0
	}
	first := Rendezvous{}.Pick(handle, off, group, k)
	pick, min := first, int64(0)
	for i := 0; i < k; i++ {
		// Walk members in rendezvous-rotated order so equal loads
		// resolve to the stateless picker's choice.
		j := (first + i) % k
		phys := group*k + j
		var l int64
		if phys < len(p.loads) {
			l = p.loads[phys].Load()
		}
		if i == 0 || l < min {
			min, pick = l, j
		}
	}
	return pick
}

// splitmix is one full splitmix64 step (additive constant + finalizer),
// used to turn (handle, window, member) into a rendezvous weight. The
// finalizer alone (shard.mix64) is visibly biased on the small
// structured integers this picker hashes — file offsets stride group
// windows arithmetically — so the weight needs the extra odd-constant
// diffusion to keep member counts binomial.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
