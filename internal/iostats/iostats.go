// Package iostats collects the per-client I/O characteristics the paper
// reports in Tables 1-3: desired data, data accessed, number of I/O
// operations, and resent (redistributed) data, plus request-payload
// accounting that motivates datatype I/O.
package iostats

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stats accumulates one client's counters. All methods are safe for
// concurrent use.
type Stats struct {
	mu   sync.Mutex // guards base
	base Snapshot   // counters folded in by Reset; see Lifetime

	desired    atomic.Int64 // bytes the application asked for
	accessed   atomic.Int64 // bytes moved between client and file system
	ioOps      atomic.Int64 // logical file-system operations issued
	wireMsgs   atomic.Int64 // request messages actually sent to servers
	reqBytes   atomic.Int64 // request description payload (headers, lists, loops)
	resent     atomic.Int64 // bytes redistributed between clients (two-phase)
	lockWaits  atomic.Int64 // lock acquisitions (sieving writes, atomic mode)
	lockWaitNs atomic.Int64 // nanoseconds spent queued for locks
	regionsCPU atomic.Int64 // offset-length pairs processed locally
	diskOps    atomic.Int64 // physical runs presented to the disk scheduler
	diskMerged atomic.Int64 // disk operations dispatched after coalescing
	diskVec    atomic.Int64 // coalesced ops dispatched as one vectored call
	seekBytes  atomic.Int64 // head travel between dispatched operations
	retries    atomic.Int64 // request attempts beyond the first
	timeouts   atomic.Int64 // attempts that failed by receive timeout
	replayed   atomic.Int64 // payload bytes sent again on retries
	failoverNs atomic.Int64 // first failure to recovered, per recovered op
	cacheHits  atomic.Int64 // ops served entirely from the client cache
	cacheMiss  atomic.Int64 // ops that had to fill or bypass the cache
	flushOps   atomic.Int64 // write-back flushes issued
	flushBytes atomic.Int64 // dirty bytes written back by flushes
	invals     atomic.Int64 // cached chunks invalidated (revoke, expiry, bypass)
	degraded   atomic.Int64 // reads served by a non-preferred replica member
	fanout     atomic.Int64 // replica write copies beyond the first member
	repair     atomic.Int64 // bytes re-replicated onto a restarted member
	evDropped  atomic.Int64 // flight-recorder events overwritten before dump
}

// AddDesired records application-requested bytes.
func (s *Stats) AddDesired(n int64) { s.desired.Add(n) }

// AddAccessed records bytes transferred between this client and servers.
func (s *Stats) AddAccessed(n int64) { s.accessed.Add(n) }

// AddOps records logical file-system operations.
func (s *Stats) AddOps(n int64) { s.ioOps.Add(n) }

// AddWire records one request message carrying descBytes of description.
func (s *Stats) AddWire(descBytes int64) {
	s.wireMsgs.Add(1)
	s.reqBytes.Add(descBytes)
}

// AddResent records client-to-client redistribution traffic.
func (s *Stats) AddResent(n int64) { s.resent.Add(n) }

// AddLock records a lock acquisition.
func (s *Stats) AddLock() { s.lockWaits.Add(1) }

// AddLockWait records time spent queued before a lock was granted.
func (s *Stats) AddLockWait(ns int64) { s.lockWaitNs.Add(ns) }

// AddRegions records locally processed offset-length pairs.
func (s *Stats) AddRegions(n int64) { s.regionsCPU.Add(n) }

// AddDisk records one disk-scheduler batch: in physical runs collapsed
// into merged dispatched operations, with seek bytes of head travel
// between them (server-side counters; see DESIGN.md §10).
func (s *Stats) AddDisk(in, merged, seek int64) {
	s.diskOps.Add(in)
	s.diskMerged.Add(merged)
	s.seekBytes.Add(seek)
}

// AddVec records coalesced disk operations dispatched to storage as a
// single vectored (scatter-gather) call rather than through a staging
// copy.
func (s *Stats) AddVec(n int64) { s.diskVec.Add(n) }

// AddRetry records one retried request attempt.
func (s *Stats) AddRetry() { s.retries.Add(1) }

// AddTimeout records an attempt that failed by receive timeout (as
// opposed to a closed or reset connection).
func (s *Stats) AddTimeout() { s.timeouts.Add(1) }

// AddReplayed records payload bytes that had to be sent again because
// an earlier attempt failed (inline write payloads in full, streamed
// writes from the resume segment on).
func (s *Stats) AddReplayed(n int64) { s.replayed.Add(n) }

// AddFailover records the time from an operation's first failure to its
// eventual success.
func (s *Stats) AddFailover(ns int64) { s.failoverNs.Add(ns) }

// AddCacheHit records an operation served entirely from the client cache.
func (s *Stats) AddCacheHit() { s.cacheHits.Add(1) }

// AddCacheMiss records an operation that filled or bypassed the cache.
func (s *Stats) AddCacheMiss() { s.cacheMiss.Add(1) }

// AddFlush records one write-back flush of n dirty bytes.
func (s *Stats) AddFlush(n int64) {
	s.flushOps.Add(1)
	s.flushBytes.Add(n)
}

// AddInvalidations records cached chunks dropped for coherence (lease
// revocation or expiry, or a bypassing operation on the same range).
func (s *Stats) AddInvalidations(n int64) { s.invals.Add(n) }

// AddDegradedRead records a read served by a replica member other than
// the picker's first choice (failover or a mid-repair refusal).
func (s *Stats) AddDegradedRead() { s.degraded.Add(1) }

// AddFanoutWrite records one replica write copy beyond the group's
// first member (k-1 per replicated write when all members are up).
func (s *Stats) AddFanoutWrite() { s.fanout.Add(1) }

// AddRepair records bytes copied onto a restarted member from its
// surviving group peers during background re-replication.
func (s *Stats) AddRepair(n int64) { s.repair.Add(n) }

// AddEventDropped records a flight-recorder event overwritten before
// it could be dumped (the ring lapped it).
func (s *Stats) AddEventDropped() { s.evDropped.Add(1) }

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	DesiredBytes  int64
	AccessedBytes int64
	IOOps         int64
	WireMsgs      int64
	ReqBytes      int64
	ResentBytes   int64
	LockWaits     int64
	LockWaitNs    int64
	Regions       int64
	DiskOps       int64 // physical runs presented to the disk scheduler
	DiskOpsMerged int64 // operations actually dispatched after coalescing
	DiskVecOps    int64 // coalesced ops dispatched as one vectored call
	SeekBytes     int64 // head travel between dispatched operations
	Retries       int64 // request attempts beyond the first
	Timeouts      int64 // attempts that failed by receive timeout
	ReplayedBytes int64 // payload bytes sent again on retries
	FailoverNs    int64 // first failure to recovered, per recovered op
	CacheHits     int64 // ops served entirely from the client cache
	CacheMisses   int64 // ops that had to fill or bypass the cache
	FlushOps      int64 // write-back flushes issued
	FlushBytes    int64 // dirty bytes written back by flushes
	Invalidations int64 // cached chunks invalidated
	DegradedReads int64 // reads served by a non-preferred replica member
	FanoutWrites  int64 // replica write copies beyond the first member
	// ReplicaRepairBytes counts bytes re-replicated onto a restarted
	// member (server-side counter; see DESIGN.md §16).
	ReplicaRepairBytes int64
	// EventsDropped counts flight-recorder events the ring overwrote
	// before a dump could read them (server-side; DESIGN.md §17).
	EventsDropped int64
}

// Snapshot copies the current counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		DesiredBytes:       s.desired.Load(),
		AccessedBytes:      s.accessed.Load(),
		IOOps:              s.ioOps.Load(),
		WireMsgs:           s.wireMsgs.Load(),
		ReqBytes:           s.reqBytes.Load(),
		ResentBytes:        s.resent.Load(),
		LockWaits:          s.lockWaits.Load(),
		LockWaitNs:         s.lockWaitNs.Load(),
		Regions:            s.regionsCPU.Load(),
		DiskOps:            s.diskOps.Load(),
		DiskOpsMerged:      s.diskMerged.Load(),
		DiskVecOps:         s.diskVec.Load(),
		SeekBytes:          s.seekBytes.Load(),
		Retries:            s.retries.Load(),
		Timeouts:           s.timeouts.Load(),
		ReplayedBytes:      s.replayed.Load(),
		FailoverNs:         s.failoverNs.Load(),
		CacheHits:          s.cacheHits.Load(),
		CacheMisses:        s.cacheMiss.Load(),
		FlushOps:           s.flushOps.Load(),
		FlushBytes:         s.flushBytes.Load(),
		Invalidations:      s.invals.Load(),
		DegradedReads:      s.degraded.Load(),
		FanoutWrites:       s.fanout.Load(),
		ReplicaRepairBytes: s.repair.Load(),
		EventsDropped:      s.evDropped.Load(),
	}
}

// Reset zeroes all counters. The zeroed values are folded into the
// lifetime totals first, so benchmarks can scope Snapshot to a timed
// phase without losing whole-run accounting (Lifetime).
func (s *Stats) Reset() {
	s.mu.Lock()
	s.base = s.base.Add(Snapshot{
		DesiredBytes:       s.desired.Swap(0),
		AccessedBytes:      s.accessed.Swap(0),
		IOOps:              s.ioOps.Swap(0),
		WireMsgs:           s.wireMsgs.Swap(0),
		ReqBytes:           s.reqBytes.Swap(0),
		ResentBytes:        s.resent.Swap(0),
		LockWaits:          s.lockWaits.Swap(0),
		LockWaitNs:         s.lockWaitNs.Swap(0),
		Regions:            s.regionsCPU.Swap(0),
		DiskOps:            s.diskOps.Swap(0),
		DiskOpsMerged:      s.diskMerged.Swap(0),
		DiskVecOps:         s.diskVec.Swap(0),
		SeekBytes:          s.seekBytes.Swap(0),
		Retries:            s.retries.Swap(0),
		Timeouts:           s.timeouts.Swap(0),
		ReplayedBytes:      s.replayed.Swap(0),
		FailoverNs:         s.failoverNs.Swap(0),
		CacheHits:          s.cacheHits.Swap(0),
		CacheMisses:        s.cacheMiss.Swap(0),
		FlushOps:           s.flushOps.Swap(0),
		FlushBytes:         s.flushBytes.Swap(0),
		Invalidations:      s.invals.Swap(0),
		DegradedReads:      s.degraded.Swap(0),
		FanoutWrites:       s.fanout.Swap(0),
		ReplicaRepairBytes: s.repair.Swap(0),
		EventsDropped:      s.evDropped.Swap(0),
	})
	s.mu.Unlock()
}

// Lifetime reports the counters accumulated since construction,
// including everything zeroed out of Snapshot by Reset calls.
func (s *Stats) Lifetime() Snapshot {
	s.mu.Lock()
	base := s.base
	s.mu.Unlock()
	return base.Add(s.Snapshot())
}

// Add accumulates another snapshot (for aggregating clients).
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		DesiredBytes:       a.DesiredBytes + b.DesiredBytes,
		AccessedBytes:      a.AccessedBytes + b.AccessedBytes,
		IOOps:              a.IOOps + b.IOOps,
		WireMsgs:           a.WireMsgs + b.WireMsgs,
		ReqBytes:           a.ReqBytes + b.ReqBytes,
		ResentBytes:        a.ResentBytes + b.ResentBytes,
		LockWaits:          a.LockWaits + b.LockWaits,
		LockWaitNs:         a.LockWaitNs + b.LockWaitNs,
		Regions:            a.Regions + b.Regions,
		DiskOps:            a.DiskOps + b.DiskOps,
		DiskOpsMerged:      a.DiskOpsMerged + b.DiskOpsMerged,
		DiskVecOps:         a.DiskVecOps + b.DiskVecOps,
		SeekBytes:          a.SeekBytes + b.SeekBytes,
		Retries:            a.Retries + b.Retries,
		Timeouts:           a.Timeouts + b.Timeouts,
		ReplayedBytes:      a.ReplayedBytes + b.ReplayedBytes,
		FailoverNs:         a.FailoverNs + b.FailoverNs,
		CacheHits:          a.CacheHits + b.CacheHits,
		CacheMisses:        a.CacheMisses + b.CacheMisses,
		FlushOps:           a.FlushOps + b.FlushOps,
		FlushBytes:         a.FlushBytes + b.FlushBytes,
		Invalidations:      a.Invalidations + b.Invalidations,
		DegradedReads:      a.DegradedReads + b.DegradedReads,
		FanoutWrites:       a.FanoutWrites + b.FanoutWrites,
		ReplicaRepairBytes: a.ReplicaRepairBytes + b.ReplicaRepairBytes,
		EventsDropped:      a.EventsDropped + b.EventsDropped,
	}
}

// Div divides every counter by n (averaging across clients).
func (a Snapshot) Div(n int64) Snapshot {
	if n == 0 {
		return a
	}
	return Snapshot{
		DesiredBytes:       a.DesiredBytes / n,
		AccessedBytes:      a.AccessedBytes / n,
		IOOps:              a.IOOps / n,
		WireMsgs:           a.WireMsgs / n,
		ReqBytes:           a.ReqBytes / n,
		ResentBytes:        a.ResentBytes / n,
		LockWaits:          a.LockWaits / n,
		LockWaitNs:         a.LockWaitNs / n,
		Regions:            a.Regions / n,
		DiskOps:            a.DiskOps / n,
		DiskOpsMerged:      a.DiskOpsMerged / n,
		DiskVecOps:         a.DiskVecOps / n,
		SeekBytes:          a.SeekBytes / n,
		Retries:            a.Retries / n,
		Timeouts:           a.Timeouts / n,
		ReplayedBytes:      a.ReplayedBytes / n,
		FailoverNs:         a.FailoverNs / n,
		CacheHits:          a.CacheHits / n,
		CacheMisses:        a.CacheMisses / n,
		FlushOps:           a.FlushOps / n,
		FlushBytes:         a.FlushBytes / n,
		Invalidations:      a.Invalidations / n,
		DegradedReads:      a.DegradedReads / n,
		FanoutWrites:       a.FanoutWrites / n,
		ReplicaRepairBytes: a.ReplicaRepairBytes / n,
		EventsDropped:      a.EventsDropped / n,
	}
}

// MB formats a byte count the way the paper's tables do.
func MB(n int64) string {
	switch {
	case n == 0:
		return "—"
	case n < 1<<20:
		return fmt.Sprintf("%.2f KB", float64(n)/1024)
	default:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	}
}

// HitRatio reports cache hits as a fraction of cache-visible ops (0
// when the cache saw no traffic).
func (s Snapshot) HitRatio() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

func (s Snapshot) String() string {
	str := fmt.Sprintf("desired=%s accessed=%s ops=%d wire=%d req=%s resent=%s",
		MB(s.DesiredBytes), MB(s.AccessedBytes), s.IOOps, s.WireMsgs,
		MB(s.ReqBytes), MB(s.ResentBytes))
	// Subsystem counters print only when active, so seed-era workloads
	// keep their short table rows.
	if s.LockWaits != 0 || s.LockWaitNs != 0 {
		str += fmt.Sprintf(" lockwaits=%d lockwait=%s", s.LockWaits, time.Duration(s.LockWaitNs))
	}
	if s.DiskOps != 0 || s.DiskOpsMerged != 0 || s.SeekBytes != 0 {
		str += fmt.Sprintf(" diskops=%d merged=%d vec=%d seek=%s", s.DiskOps, s.DiskOpsMerged, s.DiskVecOps, MB(s.SeekBytes))
	}
	if s.Retries != 0 || s.Timeouts != 0 || s.ReplayedBytes != 0 || s.FailoverNs != 0 {
		str += fmt.Sprintf(" retries=%d timeouts=%d replayed=%s failover=%s",
			s.Retries, s.Timeouts, MB(s.ReplayedBytes), time.Duration(s.FailoverNs))
	}
	if s.CacheHits != 0 || s.CacheMisses != 0 || s.FlushOps != 0 || s.Invalidations != 0 {
		str += fmt.Sprintf(" cachehits=%d misses=%d hitratio=%.0f%% flushes=%d flushed=%s inval=%d",
			s.CacheHits, s.CacheMisses, 100*s.HitRatio(), s.FlushOps, MB(s.FlushBytes), s.Invalidations)
	}
	if s.DegradedReads != 0 || s.FanoutWrites != 0 || s.ReplicaRepairBytes != 0 {
		str += fmt.Sprintf(" degraded=%d fanout=%d repaired=%s",
			s.DegradedReads, s.FanoutWrites, MB(s.ReplicaRepairBytes))
	}
	if s.EventsDropped != 0 {
		str += fmt.Sprintf(" evdropped=%d", s.EventsDropped)
	}
	return str
}
