// Package iostats collects the per-client I/O characteristics the paper
// reports in Tables 1-3: desired data, data accessed, number of I/O
// operations, and resent (redistributed) data, plus request-payload
// accounting that motivates datatype I/O.
package iostats

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates one client's counters. All methods are safe for
// concurrent use.
type Stats struct {
	desired    atomic.Int64 // bytes the application asked for
	accessed   atomic.Int64 // bytes moved between client and file system
	ioOps      atomic.Int64 // logical file-system operations issued
	wireMsgs   atomic.Int64 // request messages actually sent to servers
	reqBytes   atomic.Int64 // request description payload (headers, lists, loops)
	resent     atomic.Int64 // bytes redistributed between clients (two-phase)
	lockWaits  atomic.Int64 // lock acquisitions (sieving writes, atomic mode)
	lockWaitNs atomic.Int64 // nanoseconds spent queued for locks
	regionsCPU atomic.Int64 // offset-length pairs processed locally
	diskOps    atomic.Int64 // physical runs presented to the disk scheduler
	diskMerged atomic.Int64 // disk operations dispatched after coalescing
	seekBytes  atomic.Int64 // head travel between dispatched operations
}

// AddDesired records application-requested bytes.
func (s *Stats) AddDesired(n int64) { s.desired.Add(n) }

// AddAccessed records bytes transferred between this client and servers.
func (s *Stats) AddAccessed(n int64) { s.accessed.Add(n) }

// AddOps records logical file-system operations.
func (s *Stats) AddOps(n int64) { s.ioOps.Add(n) }

// AddWire records one request message carrying descBytes of description.
func (s *Stats) AddWire(descBytes int64) {
	s.wireMsgs.Add(1)
	s.reqBytes.Add(descBytes)
}

// AddResent records client-to-client redistribution traffic.
func (s *Stats) AddResent(n int64) { s.resent.Add(n) }

// AddLock records a lock acquisition.
func (s *Stats) AddLock() { s.lockWaits.Add(1) }

// AddLockWait records time spent queued before a lock was granted.
func (s *Stats) AddLockWait(ns int64) { s.lockWaitNs.Add(ns) }

// AddRegions records locally processed offset-length pairs.
func (s *Stats) AddRegions(n int64) { s.regionsCPU.Add(n) }

// AddDisk records one disk-scheduler batch: in physical runs collapsed
// into merged dispatched operations, with seek bytes of head travel
// between them (server-side counters; see DESIGN.md §10).
func (s *Stats) AddDisk(in, merged, seek int64) {
	s.diskOps.Add(in)
	s.diskMerged.Add(merged)
	s.seekBytes.Add(seek)
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	DesiredBytes  int64
	AccessedBytes int64
	IOOps         int64
	WireMsgs      int64
	ReqBytes      int64
	ResentBytes   int64
	LockWaits     int64
	LockWaitNs    int64
	Regions       int64
	DiskOps       int64 // physical runs presented to the disk scheduler
	DiskOpsMerged int64 // operations actually dispatched after coalescing
	SeekBytes     int64 // head travel between dispatched operations
}

// Snapshot copies the current counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		DesiredBytes:  s.desired.Load(),
		AccessedBytes: s.accessed.Load(),
		IOOps:         s.ioOps.Load(),
		WireMsgs:      s.wireMsgs.Load(),
		ReqBytes:      s.reqBytes.Load(),
		ResentBytes:   s.resent.Load(),
		LockWaits:     s.lockWaits.Load(),
		LockWaitNs:    s.lockWaitNs.Load(),
		Regions:       s.regionsCPU.Load(),
		DiskOps:       s.diskOps.Load(),
		DiskOpsMerged: s.diskMerged.Load(),
		SeekBytes:     s.seekBytes.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.desired.Store(0)
	s.accessed.Store(0)
	s.ioOps.Store(0)
	s.wireMsgs.Store(0)
	s.reqBytes.Store(0)
	s.resent.Store(0)
	s.lockWaits.Store(0)
	s.lockWaitNs.Store(0)
	s.regionsCPU.Store(0)
	s.diskOps.Store(0)
	s.diskMerged.Store(0)
	s.seekBytes.Store(0)
}

// Add accumulates another snapshot (for aggregating clients).
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		DesiredBytes:  a.DesiredBytes + b.DesiredBytes,
		AccessedBytes: a.AccessedBytes + b.AccessedBytes,
		IOOps:         a.IOOps + b.IOOps,
		WireMsgs:      a.WireMsgs + b.WireMsgs,
		ReqBytes:      a.ReqBytes + b.ReqBytes,
		ResentBytes:   a.ResentBytes + b.ResentBytes,
		LockWaits:     a.LockWaits + b.LockWaits,
		LockWaitNs:    a.LockWaitNs + b.LockWaitNs,
		Regions:       a.Regions + b.Regions,
		DiskOps:       a.DiskOps + b.DiskOps,
		DiskOpsMerged: a.DiskOpsMerged + b.DiskOpsMerged,
		SeekBytes:     a.SeekBytes + b.SeekBytes,
	}
}

// Div divides every counter by n (averaging across clients).
func (a Snapshot) Div(n int64) Snapshot {
	if n == 0 {
		return a
	}
	return Snapshot{
		DesiredBytes:  a.DesiredBytes / n,
		AccessedBytes: a.AccessedBytes / n,
		IOOps:         a.IOOps / n,
		WireMsgs:      a.WireMsgs / n,
		ReqBytes:      a.ReqBytes / n,
		ResentBytes:   a.ResentBytes / n,
		LockWaits:     a.LockWaits / n,
		LockWaitNs:    a.LockWaitNs / n,
		Regions:       a.Regions / n,
		DiskOps:       a.DiskOps / n,
		DiskOpsMerged: a.DiskOpsMerged / n,
		SeekBytes:     a.SeekBytes / n,
	}
}

// MB formats a byte count the way the paper's tables do.
func MB(n int64) string {
	switch {
	case n == 0:
		return "—"
	case n < 1<<20:
		return fmt.Sprintf("%.2f KB", float64(n)/1024)
	default:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("desired=%s accessed=%s ops=%d wire=%d req=%s resent=%s",
		MB(s.DesiredBytes), MB(s.AccessedBytes), s.IOOps, s.WireMsgs,
		MB(s.ReqBytes), MB(s.ResentBytes))
}
