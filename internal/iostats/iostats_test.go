package iostats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var s Stats
	s.AddDesired(100)
	s.AddAccessed(250)
	s.AddOps(3)
	s.AddWire(64)
	s.AddWire(16)
	s.AddResent(40)
	s.AddLock()
	s.AddRegions(7)
	snap := s.Snapshot()
	if snap.DesiredBytes != 100 || snap.AccessedBytes != 250 || snap.IOOps != 3 {
		t.Fatalf("snap=%+v", snap)
	}
	if snap.WireMsgs != 2 || snap.ReqBytes != 80 {
		t.Fatalf("wire=%d req=%d", snap.WireMsgs, snap.ReqBytes)
	}
	if snap.ResentBytes != 40 || snap.LockWaits != 1 || snap.Regions != 7 {
		t.Fatalf("snap=%+v", snap)
	}
}

func TestReset(t *testing.T) {
	var s Stats
	s.AddDesired(5)
	s.AddWire(9)
	s.Reset()
	if s.Snapshot() != (Snapshot{}) {
		t.Fatalf("reset left %+v", s.Snapshot())
	}
}

func TestAddAndDiv(t *testing.T) {
	a := Snapshot{DesiredBytes: 10, IOOps: 4, ResentBytes: 6}
	b := Snapshot{DesiredBytes: 20, IOOps: 2, WireMsgs: 8}
	sum := a.Add(b)
	if sum.DesiredBytes != 30 || sum.IOOps != 6 || sum.WireMsgs != 8 || sum.ResentBytes != 6 {
		t.Fatalf("sum=%+v", sum)
	}
	avg := sum.Div(2)
	if avg.DesiredBytes != 15 || avg.IOOps != 3 || avg.WireMsgs != 4 {
		t.Fatalf("avg=%+v", avg)
	}
	if sum.Div(0) != sum {
		t.Fatal("div by zero should be identity")
	}
}

func TestConcurrentUse(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddOps(1)
				s.AddDesired(2)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.IOOps != 8000 || snap.DesiredBytes != 16000 {
		t.Fatalf("snap=%+v", snap)
	}
}

func TestMBFormatting(t *testing.T) {
	if MB(0) != "—" {
		t.Fatalf("zero: %q", MB(0))
	}
	if got := MB(2048); got != "2.00 KB" {
		t.Fatalf("2048: %q", got)
	}
	if got := MB(2359296); got != "2.25 MB" {
		t.Fatalf("2.25MB: %q", got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{DesiredBytes: 1 << 20, IOOps: 5}
	str := s.String()
	if !strings.Contains(str, "ops=5") || !strings.Contains(str, "1.00 MB") {
		t.Fatalf("string: %q", str)
	}
	// Subsystem counters stay out of quiet snapshots...
	for _, absent := range []string{"lockwaits", "diskops", "retries"} {
		if strings.Contains(str, absent) {
			t.Fatalf("quiet snapshot mentions %q: %q", absent, str)
		}
	}
	// ...and all appear once their subsystems were exercised.
	full := Snapshot{
		IOOps: 1, LockWaits: 2, LockWaitNs: 3e6,
		DiskOps: 40, DiskOpsMerged: 10, SeekBytes: 4096,
		Retries: 5, Timeouts: 1, ReplayedBytes: 2048, FailoverNs: 7e6,
	}
	fs := full.String()
	for _, want := range []string{
		"lockwaits=2", "lockwait=3ms",
		"diskops=40", "merged=10", "seek=4.00 KB",
		"retries=5", "timeouts=1", "replayed=2.00 KB", "failover=7ms",
	} {
		if !strings.Contains(fs, want) {
			t.Fatalf("missing %q in %q", want, fs)
		}
	}
}
