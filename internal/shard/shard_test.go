package shard

import (
	"fmt"
	"testing"
)

// TestSingleShardDegenerate: a 1-shard map must behave exactly like the
// unsharded system — every name on shard 0, handles 1, 2, 3, …
func TestSingleShardDegenerate(t *testing.T) {
	m := NewMap([]string{"meta"})
	for _, name := range []string{"", "a", "frames.dat", "x/y/z"} {
		if got := m.OfName(name); got != 0 {
			t.Fatalf("OfName(%q) = %d on 1 shard", name, got)
		}
	}
	h := FirstHandle(0, 1)
	for want := uint64(1); want <= 16; want++ {
		if h != want {
			t.Fatalf("1-shard handle sequence: got %d, want %d", h, want)
		}
		if OfHandle(h, 1) != 0 {
			t.Fatalf("OfHandle(%d, 1) != 0", h)
		}
		h = NextHandle(h, 1)
	}
}

// TestHandleSequencesPartition: across k shards the strided handle
// sequences are disjoint, cover every positive handle, and each handle
// routes back to its allocating shard.
func TestHandleSequencesPartition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 8} {
		seen := map[uint64]int{}
		for id := 0; id < k; id++ {
			h := FirstHandle(id, k)
			for i := 0; i < 64; i++ {
				if owner, dup := seen[h]; dup {
					t.Fatalf("k=%d: handle %d allocated by shards %d and %d", k, h, owner, id)
				}
				seen[h] = id
				if got := OfHandle(h, k); got != id {
					t.Fatalf("k=%d: OfHandle(%d) = %d, want %d", k, h, got, id)
				}
				h = NextHandle(h, k)
			}
		}
		// Coverage: every handle in [1, 64k] was allocated by someone.
		for h := uint64(1); h <= uint64(64*k); h++ {
			if _, ok := seen[h]; !ok {
				t.Fatalf("k=%d: handle %d allocated by no shard", k, h)
			}
		}
	}
}

// TestOfNameDeterministicAndBounded: same name, same answer, in range.
func TestOfNameDeterministicAndBounded(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("file.%d.dat", i)
			a, b := OfName(name, k), OfName(name, k)
			if a != b {
				t.Fatalf("OfName(%q, %d) not deterministic: %d vs %d", name, k, a, b)
			}
			if a < 0 || a >= k {
				t.Fatalf("OfName(%q, %d) = %d out of range", name, k, a)
			}
		}
	}
}

// TestOfNameBalance: rendezvous hashing spreads a synthetic namespace
// roughly evenly (each shard within 2x of the fair share on 4096 names).
func TestOfNameBalance(t *testing.T) {
	const names = 4096
	for _, k := range []int{2, 4, 8} {
		counts := make([]int, k)
		for i := 0; i < names; i++ {
			counts[OfName(fmt.Sprintf("rank%d/file%d.chk", i%97, i), k)]++
		}
		fair := names / k
		for id, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Fatalf("k=%d: shard %d holds %d of %d names (fair %d)", k, id, c, names, fair)
			}
		}
	}
}

// TestRendezvousStability: growing the map moves only names whose
// maximum weight lands on the new shard — no name relocates between
// surviving shards (the property that makes adding shards a map
// change, not a rebalance of everything).
func TestRendezvousStability(t *testing.T) {
	const names = 2048
	for k := 1; k < 8; k++ {
		moved := 0
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("stable.%d", i)
			before, after := OfName(name, k), OfName(name, k+1)
			if before != after {
				if after != k {
					t.Fatalf("k=%d->%d: %q moved %d -> %d (not the new shard)", k, k+1, name, before, after)
				}
				moved++
			}
		}
		// Expected move fraction is 1/(k+1); allow 2x slack.
		if moved > 2*names/(k+1) {
			t.Fatalf("k=%d->%d: %d of %d names moved (expected ~%d)", k, k+1, moved, names, names/(k+1))
		}
	}
}

// TestMapAccessors exercises the Map wrapper.
func TestMapAccessors(t *testing.T) {
	m := NewMap([]string{"m0", "m1", "m2"})
	if m.N() != 3 || m.Addr(1) != "m1" || len(m.Addrs()) != 3 {
		t.Fatalf("map accessors broken: %+v", m)
	}
	if got := m.OfHandle(5); got != OfHandle(5, 3) {
		t.Fatalf("Map.OfHandle disagrees with OfHandle")
	}
	if got := m.OfName("x"); got != OfName("x", 3) {
		t.Fatalf("Map.OfName disagrees with OfName")
	}
}
