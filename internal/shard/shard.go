// Package shard partitions the control plane: file metadata and the
// byte-range lock tables are split across N meta servers, and every
// client resolves which server owns a file locally, from a shard
// directory fixed at mount time (DESIGN.md §14).
//
// Two routing rules cover all traffic:
//
//   - Names route by rendezvous (highest-random-weight) hashing: every
//     party that knows the shard count computes the same owner for a
//     name with no directory server in the path. Adding a shard is a
//     map change — only names whose maximum moves to the new shard
//     relocate — not a protocol change.
//   - Handles route arithmetically: the shard that creates a file
//     allocates its handle from a strided sequence (shard id + 1,
//     step = shard count), so OfHandle is a modulo, not a lookup, and
//     the handle itself names its owner forever. Lock, lease, and
//     revocation traffic — which carries handles, not names — therefore
//     lands on the shard that holds the file's lock table without any
//     extra state.
//
// Since the shard that owns a name allocates the handle, OfName and
// OfHandle agree for every file, and a single-shard map degenerates to
// exactly the pre-sharding behavior: every name maps to shard 0 and
// handles count 1, 2, 3, …
package shard

// Map is a client-side shard directory: the ordered metadata shard
// addresses, resolved once at mount. It is immutable; "resharding" is
// mounting a new Map.
type Map struct {
	addrs []string
}

// NewMap builds a directory over the given shard addresses (index =
// shard id). At least one address is required.
func NewMap(addrs []string) *Map {
	if len(addrs) == 0 {
		panic("shard: empty shard map")
	}
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &Map{addrs: cp}
}

// N reports the shard count.
func (m *Map) N() int { return len(m.addrs) }

// Addr reports shard i's address.
func (m *Map) Addr(i int) string { return m.addrs[i] }

// Addrs returns the shard addresses in id order (shared slice; do not
// mutate).
func (m *Map) Addrs() []string { return m.addrs }

// OfName reports which shard owns the file name.
func (m *Map) OfName(name string) int { return OfName(name, len(m.addrs)) }

// OfHandle reports which shard owns the file handle.
func (m *Map) OfHandle(h uint64) int { return OfHandle(h, len(m.addrs)) }

// OfName picks a name's owner among `shards` shards by rendezvous
// hashing: the shard whose (name, shard) weight is highest wins, ties
// to the lower id. Deterministic across processes and runs.
func OfName(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv64(name)
	best, owner := uint64(0), 0
	for i := 0; i < shards; i++ {
		w := mix64(h ^ mix64(uint64(i)+0x9e3779b97f4a7c15))
		if i == 0 || w > best {
			best, owner = w, i
		}
	}
	return owner
}

// OfHandle reports a handle's owner: handles are allocated from the
// strided sequence FirstHandle, FirstHandle+shards, … so ownership is
// arithmetic. Handle 0 is invalid and maps to shard 0.
func OfHandle(h uint64, shards int) int {
	if shards <= 1 || h == 0 {
		return 0
	}
	return int((h - 1) % uint64(shards))
}

// FirstHandle is the first handle shard id allocates (id+1, so shard 0
// of a 1-shard map starts at 1, matching the unsharded server).
func FirstHandle(id, shards int) uint64 {
	if shards <= 1 {
		return 1
	}
	return uint64(id) + 1
}

// NextHandle advances a shard's handle sequence.
func NextHandle(h uint64, shards int) uint64 {
	if shards <= 1 {
		return h + 1
	}
	return h + uint64(shards)
}

// fnv64 is FNV-1a over the name.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// used to turn (name hash, shard id) into a rendezvous weight.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
