// Package datatype implements MPI-style derived datatypes: structured
// descriptions of noncontiguous byte layouts built from a small set of
// constructors (contiguous, vector, indexed, block-indexed, struct,
// subarray, resized).
//
// A Type describes a set of (offset, length) byte regions relative to an
// origin, together with an extent that determines the spacing when the
// type is repeated. The semantics follow the MPI standard: Size is the
// number of data bytes, Extent is UB-LB, and TrueLB/TrueUB bound the bytes
// actually touched.
//
// Types in this package are immutable after construction and safe for
// concurrent use.
package datatype

import (
	"fmt"
)

// Kind discriminates the constructor that produced a Type.
type Kind uint8

// Type kinds.
const (
	KindBasic Kind = iota // contiguous run of bytes
	KindContig
	KindVector  // count blocks of blocklen children, byte stride
	KindIndexed // blocks of varying length at varying displacements
	KindBlockIndexed
	KindStruct
	KindResized
)

func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindContig:
		return "contig"
	case KindVector:
		return "vector"
	case KindIndexed:
		return "indexed"
	case KindBlockIndexed:
		return "blockindexed"
	case KindStruct:
		return "struct"
	case KindResized:
		return "resized"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Type is an immutable structured byte-layout description.
type Type struct {
	kind   Kind
	size   int64 // data bytes per instance
	lb, ub int64 // extent bounds (ub-lb = extent)
	tlb    int64 // true lower bound: offset of first data byte
	tub    int64 // true upper bound: one past last data byte
	oneRun bool  // data provably forms a single contiguous run at tlb

	count    int64
	blocklen int64   // vector/blockindexed: children per block
	stride   int64   // vector: bytes between block starts
	lens     []int64 // indexed/struct: children (or bytes for struct child i) per block
	displs   []int64 // indexed/blockindexed/struct: byte displacements
	child    *Type
	children []*Type // struct only
}

// Kind reports the constructor kind.
func (t *Type) Kind() Kind { return t.kind }

// Size reports the number of data bytes in one instance of the type.
func (t *Type) Size() int64 { return t.size }

// Extent reports UB-LB, the spacing used when the type is repeated.
func (t *Type) Extent() int64 { return t.ub - t.lb }

// LB reports the lower bound.
func (t *Type) LB() int64 { return t.lb }

// UB reports the upper bound.
func (t *Type) UB() int64 { return t.ub }

// TrueLB reports the offset of the first data byte.
func (t *Type) TrueLB() int64 { return t.tlb }

// TrueUB reports one past the offset of the last data byte.
func (t *Type) TrueUB() int64 { return t.tub }

// TrueExtent reports TrueUB-TrueLB, the span of bytes actually touched.
func (t *Type) TrueExtent() int64 { return t.tub - t.tlb }

// IsContig reports whether the type's data is one dense run covering
// exactly its extent starting at offset zero.
func (t *Type) IsContig() bool {
	return t.oneRun && t.tlb == 0 && t.lb == 0 && t.size == t.Extent()
}

// OneRun reports whether the type's data provably forms a single
// contiguous run (it may still have a nonzero lower bound or padding in
// its extent). The analysis is structural and conservative: accidental
// adjacency in indexed types is not detected.
func (t *Type) OneRun() bool { return t.oneRun }

// denseChild reports whether repetitions of t at extent spacing form one
// contiguous run (single-run data filling the whole extent).
func denseChild(t *Type) bool {
	return t.oneRun && t.size == t.Extent()
}

// blockRun reports whether a block of n repetitions of child at extent
// spacing emits as a single run.
func blockRun(child *Type, n int64) bool {
	return child.oneRun && (n == 1 || child.size == child.Extent())
}

func (t *Type) String() string {
	switch t.kind {
	case KindBasic:
		return fmt.Sprintf("basic(%d)", t.size)
	case KindContig:
		return fmt.Sprintf("contig(%d, %s)", t.count, t.child)
	case KindVector:
		return fmt.Sprintf("hvector(%d, %d, %d, %s)", t.count, t.blocklen, t.stride, t.child)
	case KindIndexed:
		return fmt.Sprintf("hindexed(%d blocks, %s)", len(t.lens), t.child)
	case KindBlockIndexed:
		return fmt.Sprintf("hblockindexed(%d x %d, %s)", len(t.displs), t.blocklen, t.child)
	case KindStruct:
		return fmt.Sprintf("struct(%d fields)", len(t.children))
	case KindResized:
		return fmt.Sprintf("resized(lb=%d, extent=%d, %s)", t.lb, t.Extent(), t.child)
	}
	return "?"
}

// Bytes returns a basic type of n contiguous bytes. n must be positive.
func Bytes(n int64) *Type {
	if n <= 0 {
		panic("datatype: Bytes needs n > 0")
	}
	return &Type{kind: KindBasic, size: n, ub: n, tub: n, oneRun: true}
}

// Common fixed-size element types.
var (
	Byte    = Bytes(1)
	Int32   = Bytes(4)
	Int64   = Bytes(8)
	Float32 = Bytes(4)
	Float64 = Bytes(8)
)

// Contiguous returns a type of count repetitions of old laid end to end
// (spacing = old.Extent()).
func Contiguous(count int, old *Type) *Type {
	if count < 0 {
		panic("datatype: negative count")
	}
	c := int64(count)
	t := &Type{
		kind:  KindContig,
		size:  c * old.size,
		count: c,
		child: old,
	}
	if c == 0 {
		return t
	}
	ext := old.Extent()
	t.lb = old.lb
	t.ub = old.ub + (c-1)*ext
	t.tlb = old.tlb
	t.tub = old.tub + (c-1)*ext
	if ext < 0 { // pathological but legal with Resized
		t.lb = old.lb + (c-1)*ext
		t.ub = old.ub
		t.tlb = old.tlb + (c-1)*ext
		t.tub = old.tub
	}
	t.oneRun = (c == 1 && old.oneRun) || denseChild(old)
	return t
}

// Vector returns count blocks of blocklen olds, with stride given in
// elements of old (MPI_Type_vector).
func Vector(count, blocklen, stride int, old *Type) *Type {
	return HVector(count, blocklen, int64(stride)*old.Extent(), old)
}

// HVector returns count blocks of blocklen olds, with stride given in
// bytes (MPI_Type_create_hvector).
func HVector(count, blocklen int, strideBytes int64, old *Type) *Type {
	if count < 0 || blocklen < 0 {
		panic("datatype: negative count/blocklen")
	}
	c, bl := int64(count), int64(blocklen)
	t := &Type{
		kind:     KindVector,
		size:     c * bl * old.size,
		count:    c,
		blocklen: bl,
		stride:   strideBytes,
		child:    old,
	}
	if c == 0 || bl == 0 {
		return t
	}
	ext := old.Extent()
	// Bounds over all block starts i*stride, i in [0,count).
	minStart, maxStart := int64(0), (c-1)*strideBytes
	if strideBytes < 0 {
		minStart, maxStart = maxStart, minStart
	}
	blockSpan := (bl - 1) * ext // offset of last element in a block
	lo, hi := int64(0), blockSpan
	if ext < 0 {
		lo, hi = blockSpan, int64(0)
	}
	t.lb = minStart + lo + old.lb
	t.ub = maxStart + hi + old.ub
	t.tlb = minStart + lo + old.tlb
	t.tub = maxStart + hi + old.tub
	t.oneRun = blockRun(old, bl) && (c == 1 || strideBytes == bl*old.size)
	return t
}

// Indexed returns blocks of lens[i] olds at displacements displs[i] given
// in elements of old (MPI_Type_indexed).
func Indexed(lens, displs []int, old *Type) *Type {
	bd := make([]int64, len(displs))
	for i, d := range displs {
		bd[i] = int64(d) * old.Extent()
	}
	ln := make([]int64, len(lens))
	for i, l := range lens {
		ln[i] = int64(l)
	}
	return HIndexed(ln, bd, old)
}

// HIndexed returns blocks of lens[i] olds at byte displacements displs[i]
// (MPI_Type_create_hindexed).
func HIndexed(lens []int64, displs []int64, old *Type) *Type {
	if len(lens) != len(displs) {
		panic("datatype: lens/displs length mismatch")
	}
	t := &Type{
		kind:   KindIndexed,
		count:  int64(len(lens)),
		lens:   append([]int64(nil), lens...),
		displs: append([]int64(nil), displs...),
		child:  old,
	}
	ext := old.Extent()
	first := true
	for i := range lens {
		if lens[i] < 0 {
			panic("datatype: negative block length")
		}
		t.size += lens[i] * old.size
		if lens[i] == 0 {
			continue
		}
		span := (lens[i] - 1) * ext
		lo, hi := int64(0), span
		if ext < 0 {
			lo, hi = span, 0
		}
		blb := displs[i] + lo + old.lb
		bub := displs[i] + hi + old.ub
		btlb := displs[i] + lo + old.tlb
		btub := displs[i] + hi + old.tub
		if first {
			t.lb, t.ub, t.tlb, t.tub = blb, bub, btlb, btub
			first = false
			continue
		}
		t.lb = min64(t.lb, blb)
		t.ub = max64(t.ub, bub)
		t.tlb = min64(t.tlb, btlb)
		t.tub = max64(t.tub, btub)
	}
	nonzero, last := 0, int64(0)
	for _, l := range lens {
		if l > 0 {
			nonzero++
			last = l
		}
	}
	t.oneRun = nonzero == 1 && blockRun(old, last)
	return t
}

// BlockIndexed returns equal-size blocks of blocklen olds at displacements
// given in elements of old (MPI_Type_create_indexed_block).
func BlockIndexed(blocklen int, displs []int, old *Type) *Type {
	bd := make([]int64, len(displs))
	for i, d := range displs {
		bd[i] = int64(d) * old.Extent()
	}
	return HBlockIndexed(blocklen, bd, old)
}

// HBlockIndexed returns equal-size blocks at byte displacements.
func HBlockIndexed(blocklen int, displs []int64, old *Type) *Type {
	lens := make([]int64, len(displs))
	for i := range lens {
		lens[i] = int64(blocklen)
	}
	t := HIndexed(lens, displs, old)
	t.kind = KindBlockIndexed
	t.blocklen = int64(blocklen)
	return t
}

// Struct returns a heterogeneous type: lens[i] repetitions of types[i] at
// byte displacement displs[i] (MPI_Type_create_struct).
func Struct(lens []int, displs []int64, types []*Type) *Type {
	if len(lens) != len(displs) || len(lens) != len(types) {
		panic("datatype: struct argument length mismatch")
	}
	t := &Type{
		kind:     KindStruct,
		count:    int64(len(lens)),
		displs:   append([]int64(nil), displs...),
		children: append([]*Type(nil), types...),
	}
	t.lens = make([]int64, len(lens))
	first := true
	for i := range lens {
		if lens[i] < 0 {
			panic("datatype: negative block length")
		}
		t.lens[i] = int64(lens[i])
		old := types[i]
		t.size += int64(lens[i]) * old.size
		if lens[i] == 0 {
			continue
		}
		ext := old.Extent()
		span := (int64(lens[i]) - 1) * ext
		lo, hi := int64(0), span
		if ext < 0 {
			lo, hi = span, 0
		}
		blb := displs[i] + lo + old.lb
		bub := displs[i] + hi + old.ub
		btlb := displs[i] + lo + old.tlb
		btub := displs[i] + hi + old.tub
		if first {
			t.lb, t.ub, t.tlb, t.tub = blb, bub, btlb, btub
			first = false
			continue
		}
		t.lb = min64(t.lb, blb)
		t.ub = max64(t.ub, bub)
		t.tlb = min64(t.tlb, btlb)
		t.tub = max64(t.tub, btub)
	}
	nonzero := 0
	for i, l := range t.lens {
		if l > 0 && types[i].size > 0 {
			nonzero++
			if t.oneRun = blockRun(types[i], l); !t.oneRun {
				break
			}
		}
	}
	t.oneRun = t.oneRun && nonzero == 1
	return t
}

// Resized overrides the lower bound and extent of old
// (MPI_Type_create_resized).
func Resized(old *Type, lb, extent int64) *Type {
	return &Type{
		kind:   KindResized,
		size:   old.size,
		lb:     lb,
		ub:     lb + extent,
		tlb:    old.tlb,
		tub:    old.tub,
		child:  old,
		oneRun: old.oneRun,
	}
}

// Order selects array storage order for Subarray.
type Order int

// Storage orders.
const (
	OrderC       Order = iota // last dimension varies fastest (row-major)
	OrderFortran              // first dimension varies fastest (column-major)
)

// Subarray describes an n-dimensional subarray of an n-dimensional array
// (MPI_Type_create_subarray). sizes is the full array shape, subsizes the
// block shape, starts the block origin, all in elements of old. The
// resulting type's extent covers the entire array, so repeating it tiles
// consecutive arrays.
func Subarray(sizes, subsizes, starts []int, order Order, old *Type) *Type {
	n := len(sizes)
	if len(subsizes) != n || len(starts) != n || n == 0 {
		panic("datatype: subarray dimension mismatch")
	}
	for i := 0; i < n; i++ {
		if subsizes[i] < 0 || starts[i] < 0 || starts[i]+subsizes[i] > sizes[i] {
			panic(fmt.Sprintf("datatype: subarray dim %d out of range", i))
		}
	}
	// Normalize to C order: dimension n-1 contiguous.
	sz := append([]int(nil), sizes...)
	ssz := append([]int(nil), subsizes...)
	st := append([]int(nil), starts...)
	if order == OrderFortran {
		reverse(sz)
		reverse(ssz)
		reverse(st)
	}
	ext := old.Extent()
	// Row of subsizes[n-1] elements.
	t := Contiguous(ssz[n-1], old)
	rowBytes := int64(sz[n-1]) * ext
	offset := int64(st[n-1]) * ext
	stride := rowBytes
	// Fold in dimensions n-2 .. 0.
	for d := n - 2; d >= 0; d-- {
		t = HVector(ssz[d], 1, stride, t)
		offset += int64(st[d]) * stride
		stride *= int64(sz[d])
	}
	// Place at the start offset, and resize extent to the full array.
	t = HIndexed([]int64{1}, []int64{offset}, t)
	return Resized(t, 0, stride)
}

// Walk invokes fn for every contiguous data region of one instance of the
// type placed at byte origin base, in data-stream order (the order MPI
// pack would touch bytes). Adjacent regions are NOT coalesced. fn returns
// false to stop early; Walk reports whether iteration ran to completion.
func (t *Type) Walk(base int64, fn func(off, n int64) bool) bool {
	if t.size == 0 {
		return true
	}
	if t.oneRun {
		return fn(base+t.tlb, t.size)
	}
	switch t.kind {
	case KindBasic:
		return fn(base, t.size)
	case KindContig:
		ext := t.child.Extent()
		for i := int64(0); i < t.count; i++ {
			if !t.child.Walk(base+i*ext, fn) {
				return false
			}
		}
		return true
	case KindVector:
		ext := t.child.Extent()
		dense := blockRun(t.child, t.blocklen)
		for i := int64(0); i < t.count; i++ {
			blockBase := base + i*t.stride
			if dense {
				if !fn(blockBase+t.child.tlb, t.blocklen*t.child.size) {
					return false
				}
				continue
			}
			for j := int64(0); j < t.blocklen; j++ {
				if !t.child.Walk(blockBase+j*ext, fn) {
					return false
				}
			}
		}
		return true
	case KindIndexed, KindBlockIndexed:
		ext := t.child.Extent()
		for b := range t.lens {
			blockBase := base + t.displs[b]
			if blockRun(t.child, t.lens[b]) {
				if t.lens[b] > 0 {
					if !fn(blockBase+t.child.tlb, t.lens[b]*t.child.size) {
						return false
					}
				}
				continue
			}
			for j := int64(0); j < t.lens[b]; j++ {
				if !t.child.Walk(blockBase+j*ext, fn) {
					return false
				}
			}
		}
		return true
	case KindStruct:
		for b := range t.children {
			child := t.children[b]
			ext := child.Extent()
			blockBase := base + t.displs[b]
			if blockRun(child, t.lens[b]) {
				if t.lens[b] > 0 && child.size > 0 {
					if !fn(blockBase+child.tlb, t.lens[b]*child.size) {
						return false
					}
				}
				continue
			}
			for j := int64(0); j < t.lens[b]; j++ {
				if !child.Walk(blockBase+j*ext, fn) {
					return false
				}
			}
		}
		return true
	case KindResized:
		return t.child.Walk(base, fn)
	}
	panic("datatype: unknown kind")
}

// Region is a contiguous byte run.
type Region struct {
	Off int64
	Len int64
}

// Flatten materializes the regions of count instances of the type placed
// at byte origin base, coalescing adjacent regions. Instances are spaced
// by Extent().
func (t *Type) Flatten(base int64, count int) []Region {
	var out []Region
	ext := t.Extent()
	for i := 0; i < count; i++ {
		t.Walk(base+int64(i)*ext, func(off, n int64) bool {
			if n == 0 {
				return true
			}
			if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == off {
				out[len(out)-1].Len += n
			} else {
				out = append(out, Region{off, n})
			}
			return true
		})
	}
	return out
}

// NumRegions counts the uncoalesced contiguous regions of one instance.
func (t *Type) NumRegions() int64 {
	var n int64
	t.Walk(0, func(_, ln int64) bool {
		if ln > 0 {
			n++
		}
		return true
	})
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
