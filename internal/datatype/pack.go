package datatype

import "fmt"

// Pack gathers the data bytes of count instances of t from buf into a
// contiguous stream, in data-stream order. buf is addressed with the
// type's origin at buf[0]; regions with negative offsets (possible via
// Resized/Struct displacements) are a caller error. The stream slice must
// be exactly count*t.Size() bytes.
func Pack(buf []byte, t *Type, count int, stream []byte) error {
	need := int64(count) * t.Size()
	if int64(len(stream)) != need {
		return fmt.Errorf("datatype: pack stream is %d bytes, need %d", len(stream), need)
	}
	pos := int64(0)
	ext := t.Extent()
	for i := 0; i < count; i++ {
		ok := t.Walk(int64(i)*ext, func(off, n int64) bool {
			if off < 0 || off+n > int64(len(buf)) {
				return false
			}
			copy(stream[pos:pos+n], buf[off:off+n])
			pos += n
			return true
		})
		if !ok {
			return fmt.Errorf("datatype: pack region out of buffer bounds (buffer %d bytes)", len(buf))
		}
	}
	return nil
}

// Unpack scatters a contiguous stream into the data bytes of count
// instances of t inside buf (the inverse of Pack).
func Unpack(stream []byte, t *Type, count int, buf []byte) error {
	need := int64(count) * t.Size()
	if int64(len(stream)) != need {
		return fmt.Errorf("datatype: unpack stream is %d bytes, need %d", len(stream), need)
	}
	pos := int64(0)
	ext := t.Extent()
	for i := 0; i < count; i++ {
		ok := t.Walk(int64(i)*ext, func(off, n int64) bool {
			if off < 0 || off+n > int64(len(buf)) {
				return false
			}
			copy(buf[off:off+n], stream[pos:pos+n])
			pos += n
			return true
		})
		if !ok {
			return fmt.Errorf("datatype: unpack region out of buffer bounds (buffer %d bytes)", len(buf))
		}
	}
	return nil
}
