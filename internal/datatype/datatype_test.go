package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func regions(t *Type) []Region { return t.Flatten(0, 1) }

func TestBytes(t *testing.T) {
	b := Bytes(7)
	if b.Size() != 7 || b.Extent() != 7 || b.TrueLB() != 0 || b.TrueUB() != 7 {
		t.Fatalf("bytes(7): size=%d extent=%d tlb=%d tub=%d", b.Size(), b.Extent(), b.TrueLB(), b.TrueUB())
	}
	if !b.IsContig() {
		t.Fatal("bytes not contiguous")
	}
}

func TestContiguous(t *testing.T) {
	c := Contiguous(3, Int32)
	if c.Size() != 12 || c.Extent() != 12 {
		t.Fatalf("size=%d extent=%d", c.Size(), c.Extent())
	}
	want := []Region{{0, 12}}
	if got := regions(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
	if !c.IsContig() {
		t.Fatal("contig of basic should be contiguous")
	}
}

func TestContiguousZeroCount(t *testing.T) {
	c := Contiguous(0, Int32)
	if c.Size() != 0 || c.Extent() != 0 {
		t.Fatalf("zero-count: size=%d extent=%d", c.Size(), c.Extent())
	}
	if got := regions(c); len(got) != 0 {
		t.Fatalf("regions=%v", got)
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 int32s, stride 4 elements: offsets 0,16,32; each 8 bytes.
	v := Vector(3, 2, 4, Int32)
	if v.Size() != 24 {
		t.Fatalf("size=%d", v.Size())
	}
	if v.Extent() != 2*16+8 {
		t.Fatalf("extent=%d want 40", v.Extent())
	}
	want := []Region{{0, 8}, {16, 8}, {32, 8}}
	if got := regions(v); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestVectorDenseCoalesces(t *testing.T) {
	// stride == blocklen means fully dense.
	v := Vector(4, 3, 3, Byte)
	want := []Region{{0, 12}}
	if got := regions(v); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestHVectorNegativeStride(t *testing.T) {
	v := HVector(3, 1, -8, Int32)
	// blocks at 0, -8, -16
	if v.TrueLB() != -16 || v.TrueUB() != 4 {
		t.Fatalf("tlb=%d tub=%d", v.TrueLB(), v.TrueUB())
	}
	if v.Size() != 12 {
		t.Fatalf("size=%d", v.Size())
	}
}

func TestIndexed(t *testing.T) {
	// blocks: 2 elems at elem-offset 5, 1 elem at 0, 3 elems at 10
	ix := Indexed([]int{2, 1, 3}, []int{5, 0, 10}, Int32)
	if ix.Size() != 24 {
		t.Fatalf("size=%d", ix.Size())
	}
	if ix.TrueLB() != 0 || ix.TrueUB() != 52 {
		t.Fatalf("tlb=%d tub=%d", ix.TrueLB(), ix.TrueUB())
	}
	// Walk order follows block order, not offset order.
	want := []Region{{20, 8}, {0, 4}, {40, 12}}
	if got := regions(ix); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestIndexedZeroLengthBlocksIgnored(t *testing.T) {
	ix := Indexed([]int{0, 2, 0}, []int{99, 1, -5}, Int32)
	if ix.Size() != 8 {
		t.Fatalf("size=%d", ix.Size())
	}
	if ix.TrueLB() != 4 || ix.TrueUB() != 12 {
		t.Fatalf("tlb=%d tub=%d (zero blocks must not affect bounds)", ix.TrueLB(), ix.TrueUB())
	}
}

func TestBlockIndexed(t *testing.T) {
	b := BlockIndexed(2, []int{0, 4, 8}, Int32)
	want := []Region{{0, 8}, {16, 8}, {32, 8}}
	if got := regions(b); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
	if b.Kind() != KindBlockIndexed {
		t.Fatalf("kind=%v", b.Kind())
	}
}

func TestStruct(t *testing.T) {
	// int32 at 0, 2 float64 at 8
	st := Struct([]int{1, 2}, []int64{0, 8}, []*Type{Int32, Float64})
	if st.Size() != 20 {
		t.Fatalf("size=%d", st.Size())
	}
	if st.TrueLB() != 0 || st.TrueUB() != 24 {
		t.Fatalf("tlb=%d tub=%d", st.TrueLB(), st.TrueUB())
	}
	want := []Region{{0, 4}, {8, 16}}
	if got := regions(st); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestResized(t *testing.T) {
	r := Resized(Int32, 0, 12)
	if r.Extent() != 12 || r.Size() != 4 {
		t.Fatalf("extent=%d size=%d", r.Extent(), r.Size())
	}
	c := Contiguous(3, r)
	want := []Region{{0, 4}, {12, 4}, {24, 4}}
	if got := regions(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestResizedNegativeLB(t *testing.T) {
	r := Resized(Int32, -4, 16)
	if r.LB() != -4 || r.UB() != 12 || r.TrueLB() != 0 {
		t.Fatalf("lb=%d ub=%d tlb=%d", r.LB(), r.UB(), r.TrueLB())
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of int32, subarray 2x3 at (1,2), C order.
	s := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, OrderC, Int32)
	if s.Size() != 24 {
		t.Fatalf("size=%d", s.Size())
	}
	if s.Extent() != 4*6*4 {
		t.Fatalf("extent=%d want full array %d", s.Extent(), 4*6*4)
	}
	// Row r of the block: offset ((1+r)*6+2)*4, length 12.
	want := []Region{{32, 12}, {56, 12}}
	if got := regions(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestSubarray2DFortran(t *testing.T) {
	// Same block in Fortran order: first dim contiguous.
	// Array 4x6 col-major = C-order 6x4; block 2x3 at (1,2) -> C block 3x2 at (2,1).
	s := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, OrderFortran, Int32)
	c := Subarray([]int{6, 4}, []int{3, 2}, []int{2, 1}, OrderC, Int32)
	if !reflect.DeepEqual(regions(s), regions(c)) {
		t.Fatalf("fortran=%v c=%v", regions(s), regions(c))
	}
}

func TestSubarray3DTiling(t *testing.T) {
	// Repeating a subarray tiles consecutive arrays (extent = full array).
	s := Subarray([]int{4, 4, 4}, []int{2, 2, 2}, []int{0, 0, 0}, OrderC, Int32)
	r := s.Flatten(0, 2)
	if len(r) == 0 {
		t.Fatal("no regions")
	}
	arrayBytes := int64(4 * 4 * 4 * 4)
	// Second instance regions must be first instance regions + arrayBytes.
	one := s.Flatten(0, 1)
	for i := range one {
		if r[len(one)+i].Off != one[i].Off+arrayBytes {
			t.Fatalf("tiling broken at region %d: %v vs %v", i, r[len(one)+i], one[i])
		}
	}
}

func TestSubarrayFullArrayIsContig(t *testing.T) {
	s := Subarray([]int{3, 5}, []int{3, 5}, []int{0, 0}, OrderC, Int32)
	want := []Region{{0, 60}}
	if got := regions(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestNestedVectorOfVector(t *testing.T) {
	inner := Vector(2, 1, 2, Int32) // elems at 0, 8; extent 12
	outer := HVector(2, 1, 100, inner)
	want := []Region{{0, 4}, {8, 4}, {100, 4}, {108, 4}}
	if got := regions(outer); !reflect.DeepEqual(got, want) {
		t.Fatalf("regions=%v", got)
	}
}

func TestFlattenMultipleCount(t *testing.T) {
	v := Vector(2, 1, 2, Int32) // regions {0,4},{8,4}, extent 12
	got := v.Flatten(0, 2)
	// Instance 2 starts at extent 12; its first region {12,4} coalesces
	// with instance 1's trailing region {8,4}.
	want := []Region{{0, 4}, {8, 8}, {20, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestFlattenCoalescesAcrossInstances(t *testing.T) {
	c := Contiguous(2, Int32)
	got := c.Flatten(0, 3)
	want := []Region{{0, 24}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestNumRegions(t *testing.T) {
	v := Vector(768, 3072, 7596, Byte) // tile reader view: 768 rows
	if n := v.NumRegions(); n != 768 {
		t.Fatalf("NumRegions=%d", n)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	v := Vector(10, 1, 2, Int32)
	calls := 0
	done := v.Walk(0, func(_, _ int64) bool {
		calls++
		return calls < 3
	})
	if done || calls != 3 {
		t.Fatalf("done=%v calls=%d", done, calls)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	v := Vector(3, 2, 4, Int32) // 24 data bytes over 40-byte span
	buf := make([]byte, v.TrueExtent())
	for i := range buf {
		buf[i] = byte(i)
	}
	stream := make([]byte, v.Size())
	if err := Pack(buf, v, 1, stream); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(buf))
	if err := Unpack(stream, v, 1, out); err != nil {
		t.Fatal(err)
	}
	// Every data byte must round-trip; gap bytes stay zero.
	for _, r := range regions(v) {
		for i := r.Off; i < r.Off+r.Len; i++ {
			if out[i] != buf[i] {
				t.Fatalf("byte %d: got %d want %d", i, out[i], buf[i])
			}
		}
	}
}

func TestPackSizeMismatch(t *testing.T) {
	if err := Pack(make([]byte, 10), Int32, 1, make([]byte, 3)); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if err := Unpack(make([]byte, 3), Int32, 1, make([]byte, 10)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestPackOutOfBounds(t *testing.T) {
	if err := Pack(make([]byte, 2), Int32, 1, make([]byte, 4)); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestPropertySizeEqualsWalkSum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		typ := RandomType(rr, 1+rr.Intn(3))
		var sum int64
		typ.Walk(0, func(_, n int64) bool { sum += n; return true })
		return sum == typ.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoundsContainAllRegions(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		typ := RandomType(rr, 1+rr.Intn(3))
		ok := true
		typ.Walk(0, func(off, n int64) bool {
			if off < typ.TrueLB() || off+n > typ.TrueUB() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPackUnpackIdentityOnData(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		typ := RandomType(rr, 1+rr.Intn(3))
		if typ.TrueLB() < 0 {
			return true // pack addresses from origin; skip negative-LB layouts
		}
		span := typ.TrueUB()
		buf := make([]byte, span)
		rr.Read(buf)
		stream := make([]byte, typ.Size())
		if err := Pack(buf, typ, 1, stream); err != nil {
			return false
		}
		out := make([]byte, span)
		if err := Unpack(stream, typ, 1, out); err != nil {
			return false
		}
		ok := true
		typ.Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				if out[i] != buf[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFlattenCoversSize(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		typ := RandomType(rr, 1+rr.Intn(3))
		count := 1 + rr.Intn(3)
		var sum int64
		for _, reg := range typ.Flatten(0, count) {
			sum += reg.Len
		}
		return sum == typ.Size()*int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
