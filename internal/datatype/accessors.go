package datatype

// Structural accessors used by the dataloop converter (and by tooling that
// prints type trees). They expose the constructor arguments in normalized
// (byte-displacement) form.

// Count reports the repetition count for contig/vector kinds.
func (t *Type) Count() int64 { return t.count }

// BlockLen reports elements per block for vector/blockindexed kinds.
func (t *Type) BlockLen() int64 { return t.blocklen }

// StrideBytes reports the byte stride between vector blocks.
func (t *Type) StrideBytes() int64 { return t.stride }

// Lens returns the per-block element counts for indexed/struct kinds.
// The caller must not modify the returned slice.
func (t *Type) Lens() []int64 { return t.lens }

// Displs returns the per-block byte displacements for indexed,
// blockindexed and struct kinds. The caller must not modify it.
func (t *Type) Displs() []int64 { return t.displs }

// Child returns the element type for non-struct composite kinds.
func (t *Type) Child() *Type { return t.child }

// Children returns the field types of a struct kind. The caller must not
// modify the returned slice.
func (t *Type) Children() []*Type { return t.children }
