package datatype

import "math/rand"

// RandomType builds a random nested type with bounded fan-out, for
// property-based tests here and in dependent packages (dataloop, flatten,
// mpiio). depth bounds the nesting; generated displacements are
// non-negative and non-overlapping so the result is a valid, packable
// layout.
func RandomType(r *rand.Rand, depth int) *Type {
	if depth == 0 {
		return Bytes(1 + int64(r.Intn(8)))
	}
	child := RandomType(r, depth-1)
	switch r.Intn(5) {
	case 0:
		return Contiguous(1+r.Intn(4), child)
	case 1:
		return Vector(1+r.Intn(4), 1+r.Intn(3), 1+r.Intn(6), child)
	case 2:
		n := 1 + r.Intn(4)
		lens := make([]int, n)
		displs := make([]int, n)
		at := 0
		for i := 0; i < n; i++ {
			at += r.Intn(4)
			displs[i] = at
			lens[i] = 1 + r.Intn(3)
			at += lens[i]
		}
		return Indexed(lens, displs, child)
	case 3:
		n := 1 + r.Intn(4)
		displs := make([]int, n)
		at := 0
		bl := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			at += r.Intn(3)
			displs[i] = at
			at += bl
		}
		return BlockIndexed(bl, displs, child)
	default:
		return Resized(child, child.LB(), child.Extent()+int64(r.Intn(16)))
	}
}
