package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// coverMap marks each element byte covered by rank's darray type.
func coverMap(t *testing.T, size int, gsizes []int, distribs []Distribution, dargs, psizes []int, elem *Type) []int {
	t.Helper()
	total := elem.Size()
	for _, g := range gsizes {
		total *= int64(g)
	}
	seen := make([]int, total)
	for rank := 0; rank < size; rank++ {
		ty, err := Darray(size, rank, gsizes, distribs, dargs, psizes, elem)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		ty.Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				seen[i]++
			}
			return true
		})
	}
	return seen
}

func assertPartition(t *testing.T, seen []int) {
	t.Helper()
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("byte %d covered %d times", i, n)
		}
	}
}

func TestDarrayBlock2D(t *testing.T) {
	// 6x4 array of int32 over a 3x2 grid, block/block.
	seen := coverMap(t, 6, []int{6, 4},
		[]Distribution{DistBlock, DistBlock},
		[]int{DarrayDefault, DarrayDefault},
		[]int{3, 2}, Int32)
	assertPartition(t, seen)
	// Rank 0 owns rows 0-1, cols 0-1.
	ty, _ := Darray(6, 0, []int{6, 4},
		[]Distribution{DistBlock, DistBlock},
		[]int{DarrayDefault, DarrayDefault},
		[]int{3, 2}, Int32)
	if ty.Size() != 2*2*4 {
		t.Fatalf("rank 0 size=%d", ty.Size())
	}
	regions := ty.Flatten(0, 1)
	want := []Region{{Off: 0, Len: 8}, {Off: 16, Len: 8}}
	if len(regions) != 2 || regions[0] != want[0] || regions[1] != want[1] {
		t.Fatalf("regions=%v", regions)
	}
}

func TestDarrayCyclic1D(t *testing.T) {
	// 10 elements over 3 procs, cyclic(1): rank 1 gets 1,4,7.
	ty, err := Darray(3, 1, []int{10},
		[]Distribution{DistCyclic}, []int{1}, []int{3}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	regions := ty.Flatten(0, 1)
	wantOffs := []int64{4, 16, 28}
	if len(regions) != 3 {
		t.Fatalf("regions=%v", regions)
	}
	for i, r := range regions {
		if r.Off != wantOffs[i] || r.Len != 4 {
			t.Fatalf("regions=%v", regions)
		}
	}
	seen := coverMap(t, 3, []int{10}, []Distribution{DistCyclic}, []int{1}, []int{3}, Int32)
	assertPartition(t, seen)
}

func TestDarrayBlockCyclicMix(t *testing.T) {
	// 12x9 over 2x3 grid: block rows, cyclic(2) cols.
	seen := coverMap(t, 6, []int{12, 9},
		[]Distribution{DistBlock, DistCyclic},
		[]int{DarrayDefault, 2},
		[]int{2, 3}, Byte)
	assertPartition(t, seen)
}

func TestDarrayDistNone(t *testing.T) {
	// Undistributed first dimension: every rank sees all rows of its
	// column block.
	seen := coverMap(t, 2, []int{4, 6},
		[]Distribution{DistNone, DistBlock},
		[]int{DarrayDefault, DarrayDefault},
		[]int{1, 2}, Int32)
	assertPartition(t, seen)
}

func TestDarrayUnevenBlocks(t *testing.T) {
	// 7 elements over 3 procs, block: sizes 3,3,1.
	sizes := []int64{}
	for r := 0; r < 3; r++ {
		ty, err := Darray(3, r, []int{7}, []Distribution{DistBlock},
			[]int{DarrayDefault}, []int{3}, Byte)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, ty.Size())
	}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestDarrayMatchesSubarrayForBlock(t *testing.T) {
	// Block/block darray equals the corresponding subarray.
	const size = 8
	g := []int{8, 8, 8}
	ps := []int{2, 2, 2}
	for rank := 0; rank < size; rank++ {
		da, err := Darray(size, rank, g,
			[]Distribution{DistBlock, DistBlock, DistBlock},
			[]int{DarrayDefault, DarrayDefault, DarrayDefault},
			ps, Int32)
		if err != nil {
			t.Fatal(err)
		}
		z := rank % 2
		y := (rank / 2) % 2
		x := rank / 4
		sa := Subarray(g, []int{4, 4, 4}, []int{x * 4, y * 4, z * 4}, OrderC, Int32)
		if got, want := da.Flatten(0, 1), sa.Flatten(0, 1); len(got) != len(want) {
			t.Fatalf("rank %d: %d vs %d regions", rank, len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rank %d region %d: %v vs %v", rank, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDarrayValidation(t *testing.T) {
	if _, err := Darray(4, 0, []int{8}, []Distribution{DistBlock}, []int{DarrayDefault}, []int{3}, Byte); err == nil {
		t.Fatal("grid/size mismatch accepted")
	}
	if _, err := Darray(2, 5, []int{8}, []Distribution{DistBlock}, []int{DarrayDefault}, []int{2}, Byte); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if _, err := Darray(2, 0, []int{8}, []Distribution{DistNone}, []int{DarrayDefault}, []int{2}, Byte); err == nil {
		t.Fatal("DistNone with psize>1 accepted")
	}
	if _, err := Darray(2, 0, []int{8}, []Distribution{DistBlock}, []int{1}, []int{2}, Byte); err == nil {
		t.Fatal("undersized explicit block accepted")
	}
}

func TestPropertyDarrayPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(3)
		gsizes := make([]int, n)
		distribs := make([]Distribution, n)
		dargs := make([]int, n)
		psizes := make([]int, n)
		size := 1
		for d := 0; d < n; d++ {
			gsizes[d] = 1 + rr.Intn(9)
			switch rr.Intn(3) {
			case 0:
				distribs[d] = DistNone
				psizes[d] = 1
				dargs[d] = DarrayDefault
			case 1:
				distribs[d] = DistBlock
				psizes[d] = 1 + rr.Intn(3)
				dargs[d] = DarrayDefault
			default:
				distribs[d] = DistCyclic
				psizes[d] = 1 + rr.Intn(3)
				dargs[d] = 1 + rr.Intn(3)
			}
			size *= psizes[d]
		}
		elem := Bytes(int64(1 + rr.Intn(4)))
		total := elem.Size()
		for _, g := range gsizes {
			total *= int64(g)
		}
		seen := make([]int, total)
		for rank := 0; rank < size; rank++ {
			ty, err := Darray(size, rank, gsizes, distribs, dargs, psizes, elem)
			if err != nil {
				return false
			}
			ok := true
			ty.Walk(0, func(off, ln int64) bool {
				for i := off; i < off+ln; i++ {
					if i < 0 || i >= total {
						ok = false
						return false
					}
					seen[i]++
				}
				return true
			})
			if !ok {
				return false
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
