package datatype

import "fmt"

// Distribution selects how one dimension of a distributed array is split
// among processes (MPI_Type_create_darray semantics).
type Distribution int

// Distribution kinds.
const (
	// DistNone keeps the whole dimension on every process.
	DistNone Distribution = iota
	// DistBlock gives each process one contiguous block.
	DistBlock
	// DistCyclic deals blocks of the given argument size round-robin.
	DistCyclic
)

// DarrayArg is the distribution argument for one dimension; use it for
// DistCyclic block sizes. DarrayDefault picks the natural size.
const DarrayDefault = -1

// Darray builds the filetype of one process's portion of an
// n-dimensional array distributed block/cyclic over a process grid
// (MPI_Type_create_darray, C order). gsizes is the global shape in
// elements, distribs/dargs/psizes describe the distribution per
// dimension, and rank is the process's position in the C-order process
// grid. The resulting type's extent covers the whole array.
func Darray(size, rank int, gsizes []int, distribs []Distribution, dargs, psizes []int, old *Type) (*Type, error) {
	n := len(gsizes)
	if n == 0 || len(distribs) != n || len(dargs) != n || len(psizes) != n {
		return nil, fmt.Errorf("datatype: darray argument arrays must share length")
	}
	grid := 1
	for d, p := range psizes {
		if p <= 0 {
			return nil, fmt.Errorf("datatype: psizes[%d]=%d", d, p)
		}
		if distribs[d] == DistNone && p != 1 {
			return nil, fmt.Errorf("datatype: dimension %d undistributed but psizes=%d", d, p)
		}
		grid *= p
	}
	if grid != size {
		return nil, fmt.Errorf("datatype: process grid %d != size %d", grid, size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("datatype: rank %d out of range", rank)
	}

	// Process coordinates in C order (last dimension varies fastest).
	coords := make([]int, n)
	r := rank
	for d := n - 1; d >= 0; d-- {
		coords[d] = r % psizes[d]
		r /= psizes[d]
	}

	// Build from the innermost dimension outward. The running type
	// describes this process's elements of the trailing dimensions, with
	// extent equal to the full trailing-subarray extent.
	t := old
	ext := old.Extent()
	for d := n - 1; d >= 0; d-- {
		g := gsizes[d]
		if g <= 0 {
			return nil, fmt.Errorf("datatype: gsizes[%d]=%d", d, g)
		}
		p := psizes[d]
		c := coords[d]
		var dim *Type
		switch distribs[d] {
		case DistNone:
			dim = Contiguous(g, t)
		case DistBlock:
			b := dargs[d]
			if b == DarrayDefault {
				b = (g + p - 1) / p
			}
			if b <= 0 || b*p < g {
				return nil, fmt.Errorf("datatype: block %d too small for dim %d", b, d)
			}
			start := c * b
			count := g - start
			if count > b {
				count = b
			}
			if count < 0 {
				count = 0
			}
			dim = HIndexed(
				[]int64{int64(count)},
				[]int64{int64(start) * t.Extent()},
				t)
			dim = Resized(dim, 0, int64(g)*t.Extent())
		case DistCyclic:
			b := dargs[d]
			if b == DarrayDefault {
				b = 1
			}
			if b <= 0 {
				return nil, fmt.Errorf("datatype: cyclic block %d in dim %d", b, d)
			}
			// Blocks c*b, (c+p)*b, ... of size b (last may be short).
			var lens, displs []int64
			for at := c * b; at < g; at += p * b {
				ln := b
				if at+ln > g {
					ln = g - at
				}
				lens = append(lens, int64(ln))
				displs = append(displs, int64(at)*t.Extent())
			}
			if len(lens) == 0 {
				lens, displs = []int64{0}, []int64{0}
			}
			dim = HIndexed(lens, displs, t)
			dim = Resized(dim, 0, int64(g)*t.Extent())
		default:
			return nil, fmt.Errorf("datatype: unknown distribution %d", distribs[d])
		}
		t = dim
		ext *= int64(g)
	}
	return Resized(t, 0, ext), nil
}
