package workloads

import (
	"fmt"

	"dtio/internal/datatype"
)

// Block3DConfig describes the ROMIO coll_perf.c three-dimensional block
// test (paper §4.3): an N³ array of 4-byte elements block-decomposed over
// a k³ process cube; each process reads or writes its block with a
// contiguous memory buffer.
type Block3DConfig struct {
	N        int // array edge (600)
	ElemSize int // element bytes (4)
	Procs    int // process count; must be a perfect cube
}

// DefaultBlock3D returns the paper's configuration for p processes.
func DefaultBlock3D(p int) Block3DConfig {
	return Block3DConfig{N: 600, ElemSize: 4, Procs: p}
}

// cubeRoot returns k with k³ = p, or 0 if p is not a perfect cube.
func cubeRoot(p int) int {
	for k := 1; k*k*k <= p; k++ {
		if k*k*k == p {
			return k
		}
	}
	return 0
}

// Validate reports configuration errors.
func (c Block3DConfig) Validate() error {
	k := cubeRoot(c.Procs)
	if k == 0 {
		return fmt.Errorf("workloads: %d processes is not a perfect cube", c.Procs)
	}
	if c.N%k != 0 {
		return fmt.Errorf("workloads: array edge %d not divisible by cube edge %d", c.N, k)
	}
	if c.ElemSize <= 0 {
		return fmt.Errorf("workloads: bad element size %d", c.ElemSize)
	}
	return nil
}

// BlockEdge reports the per-process block edge in elements.
func (c Block3DConfig) BlockEdge() int { return c.N / cubeRoot(c.Procs) }

// BlockBytes reports the bytes each process accesses.
func (c Block3DConfig) BlockBytes() int64 {
	e := int64(c.BlockEdge())
	return e * e * e * int64(c.ElemSize)
}

// TotalBytes reports the full array size.
func (c Block3DConfig) TotalBytes() int64 {
	n := int64(c.N)
	return n * n * n * int64(c.ElemSize)
}

// View returns rank's file view: its subarray block of the N³ array.
// Blocks are assigned in C order over the process cube.
func (c Block3DConfig) View(rank int) *datatype.Type {
	k := cubeRoot(c.Procs)
	b := c.BlockEdge()
	z := rank % k
	y := (rank / k) % k
	x := rank / (k * k)
	return datatype.Subarray(
		[]int{c.N, c.N, c.N},
		[]int{b, b, b},
		[]int{x * b, y * b, z * b},
		datatype.OrderC, datatype.Bytes(int64(c.ElemSize)))
}

// Elem returns the oracle value of the array element at linear index i
// (in elements) — used to verify block reads and writes.
func Block3DElem(i int64) byte { return byte(i*2654435761 + (i >> 13)) }
