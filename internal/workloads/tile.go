// Package workloads constructs the three evaluation workloads of the
// paper — the tile reader, the ROMIO three-dimensional block test, and
// the FLASH I/O checkpoint — as MPI datatypes plus verification oracles.
package workloads

import (
	"fmt"

	"dtio/internal/datatype"
)

// TileConfig describes the tile reader benchmark (paper §4.2): an array
// of display tiles, each backed by one compute node reading its portion
// of every frame, with horizontal and vertical overlap between tiles.
type TileConfig struct {
	TilesX, TilesY int // display grid (3 x 2)
	TileW, TileH   int // pixels per tile (1024 x 768)
	Depth          int // bytes per pixel (3: 24-bit colour)
	OverlapX       int // horizontal pixel overlap (270)
	OverlapY       int // vertical pixel overlap (128)
	Frames         int // frames in the set (100)
}

// DefaultTile returns the paper's configuration.
func DefaultTile() TileConfig {
	return TileConfig{
		TilesX: 3, TilesY: 2,
		TileW: 1024, TileH: 768,
		Depth:    3,
		OverlapX: 270, OverlapY: 128,
		Frames: 100,
	}
}

// Validate reports configuration errors.
func (c TileConfig) Validate() error {
	if c.TilesX <= 0 || c.TilesY <= 0 || c.TileW <= 0 || c.TileH <= 0 || c.Depth <= 0 || c.Frames <= 0 {
		return fmt.Errorf("workloads: non-positive tile dimension: %+v", c)
	}
	if c.OverlapX < 0 || c.OverlapX >= c.TileW || c.OverlapY < 0 || c.OverlapY >= c.TileH {
		return fmt.Errorf("workloads: overlap out of range: %+v", c)
	}
	return nil
}

// NumClients reports the number of compute nodes (one per tile).
func (c TileConfig) NumClients() int { return c.TilesX * c.TilesY }

// FrameW reports frame width in pixels (tiles minus overlaps).
func (c TileConfig) FrameW() int { return c.TilesX*c.TileW - (c.TilesX-1)*c.OverlapX }

// FrameH reports frame height in pixels.
func (c TileConfig) FrameH() int { return c.TilesY*c.TileH - (c.TilesY-1)*c.OverlapY }

// FrameBytes reports the bytes of one frame.
func (c TileConfig) FrameBytes() int64 {
	return int64(c.FrameW()) * int64(c.FrameH()) * int64(c.Depth)
}

// TileBytes reports the bytes one client reads per frame.
func (c TileConfig) TileBytes() int64 {
	return int64(c.TileW) * int64(c.TileH) * int64(c.Depth)
}

// View returns rank's file view for one frame: a 2-D byte subarray of
// the frame whose extent is the full frame, so consecutive frames tile.
// Rank r drives tile (r % TilesX, r / TilesX).
func (c TileConfig) View(rank int) *datatype.Type {
	tx := rank % c.TilesX
	ty := rank / c.TilesX
	rowBytes := c.FrameW() * c.Depth
	return datatype.Subarray(
		[]int{c.FrameH(), rowBytes},
		[]int{c.TileH, c.TileW * c.Depth},
		[]int{ty * (c.TileH - c.OverlapY), tx * (c.TileW - c.OverlapX) * c.Depth},
		datatype.OrderC, datatype.Byte)
}

// FramePixel returns the deterministic byte value of byte i of frame f,
// the verification oracle for tile reads.
func FramePixel(f int, i int64) byte {
	return byte(int64(f)*131 + i*7 + (i >> 11))
}

// FillFrame writes the oracle pattern for frame f into buf.
func FillFrame(f int, buf []byte) {
	for i := range buf {
		buf[i] = FramePixel(f, int64(i))
	}
}
