package workloads

import (
	"testing"

	"dtio/internal/datatype"
)

func TestTilePaperNumbers(t *testing.T) {
	c := DefaultTile()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.FrameW() != 2532 || c.FrameH() != 1408 {
		t.Fatalf("frame %dx%d, paper says 2532x1408", c.FrameW(), c.FrameH())
	}
	// Paper: "Each frame is 10.2 MBytes".
	if c.FrameBytes() != 10695168 {
		t.Fatalf("frame bytes %d", c.FrameBytes())
	}
	// Paper Table 1: desired data per client 2.25 MB.
	if c.TileBytes() != 1024*768*3 {
		t.Fatalf("tile bytes %d", c.TileBytes())
	}
	// Paper Table 1: POSIX I/O requires 768 ops per client per frame.
	view := c.View(0)
	if n := view.NumRegions(); n != 768 {
		t.Fatalf("tile view has %d regions, want 768", n)
	}
	if view.Size() != c.TileBytes() {
		t.Fatalf("view size %d", view.Size())
	}
	if view.Extent() != c.FrameBytes() {
		t.Fatalf("view extent %d != frame %d", view.Extent(), c.FrameBytes())
	}
}

func TestTileViewsCoverFrame(t *testing.T) {
	c := DefaultTile()
	// The union of all tiles covers every frame byte (overlaps included).
	covered := make([]bool, c.FrameBytes())
	for r := 0; r < c.NumClients(); r++ {
		c.View(r).Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				covered[i] = true
			}
			return true
		})
	}
	for i, b := range covered {
		if !b {
			t.Fatalf("frame byte %d uncovered", i)
		}
	}
}

func TestTileOverlapSharedBytes(t *testing.T) {
	c := DefaultTile()
	// Tiles 0 and 1 overlap by OverlapX pixels per row.
	a := regionsSet(c.View(0))
	b := regionsSet(c.View(1))
	shared := int64(0)
	for off := range a {
		if b[off] {
			shared++
		}
	}
	want := int64(c.OverlapX) * int64(c.Depth) * int64(c.TileH)
	if shared != want {
		t.Fatalf("shared bytes %d want %d", shared, want)
	}
}

func regionsSet(ty *datatype.Type) map[int64]bool {
	m := make(map[int64]bool)
	ty.Walk(0, func(off, n int64) bool {
		for i := off; i < off+n; i++ {
			m[i] = true
		}
		return true
	})
	return m
}

func TestBlock3DPaperNumbers(t *testing.T) {
	for _, tc := range []struct {
		p        int
		desired  int64 // Table 2 "Desired Data per Client"
		posixOps int64 // Table 2 POSIX ops
	}{
		{8, 108000000, 90000},
		{27, 32000000, 40000},
		{64, 13500000, 22500},
	} {
		c := DefaultBlock3D(tc.p)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.BlockBytes() != tc.desired {
			t.Errorf("p=%d: block bytes %d want %d", tc.p, c.BlockBytes(), tc.desired)
		}
		view := c.View(0)
		if n := view.NumRegions(); n != tc.posixOps {
			t.Errorf("p=%d: regions %d want %d", tc.p, n, tc.posixOps)
		}
	}
}

func TestBlock3DBlocksPartitionArray(t *testing.T) {
	c := Block3DConfig{N: 12, ElemSize: 4, Procs: 8}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := make([]int, c.TotalBytes())
	for r := 0; r < c.Procs; r++ {
		c.View(r).Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				seen[i]++
			}
			return true
		})
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("byte %d covered %d times", i, n)
		}
	}
}

func TestBlock3DRejectsBadProcs(t *testing.T) {
	if err := DefaultBlock3D(10).Validate(); err == nil {
		t.Fatal("10 procs accepted")
	}
	if err := (Block3DConfig{N: 10, ElemSize: 4, Procs: 27}).Validate(); err == nil {
		t.Fatal("indivisible edge accepted")
	}
}

func TestFlashPaperNumbers(t *testing.T) {
	c := DefaultFlash(2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: desired 7.50 MB/client; POSIX ops 983,040; adds 7 MB... per
	// client ("Every processor adds 7 MBytes to the file": 7.5 MB data).
	if c.BytesPerClient() != 7864320 {
		t.Fatalf("bytes/client %d", c.BytesPerClient())
	}
	mem := c.MemType()
	if mem.Size() != c.BytesPerClient() {
		t.Fatalf("mem type size %d", mem.Size())
	}
	if n := mem.NumRegions(); n != 983040 {
		t.Fatalf("mem regions %d want 983040", n)
	}
	ft := c.FileType(0)
	if ft.Size() != c.BytesPerClient() {
		t.Fatalf("file type size %d", ft.Size())
	}
	if n := ft.NumRegions(); n != int64(c.Vars) {
		t.Fatalf("file regions %d want %d", n, c.Vars)
	}
}

func TestFlashFileTypesPartitionCheckpoint(t *testing.T) {
	c := FlashConfig{Blocks: 3, NB: 2, Guard: 1, Vars: 4, ElemSize: 8, Procs: 3}
	seen := make([]int, c.TotalBytes())
	for r := 0; r < c.Procs; r++ {
		c.FileType(r).Walk(0, func(off, n int64) bool {
			for i := off; i < off+n; i++ {
				seen[i]++
			}
			return true
		})
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("checkpoint byte %d covered %d times", i, n)
		}
	}
}

func TestFlashMemOracleMatchesFileOracle(t *testing.T) {
	// Packing the memory buffer through MemType in stream order must
	// produce exactly the FileOracle bytes at the FileType offsets.
	c := FlashConfig{Blocks: 2, NB: 2, Guard: 1, Vars: 3, ElemSize: 4, Procs: 2}
	for rank := 0; rank < c.Procs; rank++ {
		buf := make([]byte, c.MemBytes())
		c.FillMemory(rank, buf)
		mem := c.MemType()
		stream := make([]byte, mem.Size())
		if err := datatype.Pack(buf, mem, 1, stream); err != nil {
			t.Fatal(err)
		}
		//

		pos := int64(0)
		ok := true
		c.FileType(rank).Walk(0, func(off, n int64) bool {
			for i := int64(0); i < n; i++ {
				if stream[pos+i] != c.FileOracle(off+i) {
					t.Errorf("rank %d: stream byte %d != oracle at file offset %d", rank, pos+i, off+i)
					ok = false
					return false
				}
			}
			pos += n
			return true
		})
		if !ok {
			return
		}
		if pos != mem.Size() {
			t.Fatalf("stream walk covered %d of %d", pos, mem.Size())
		}
	}
}

func TestFlashGuardCellsUntouched(t *testing.T) {
	c := FlashConfig{Blocks: 1, NB: 2, Guard: 1, Vars: 2, ElemSize: 4, Procs: 1}
	buf := make([]byte, c.MemBytes())
	c.FillMemory(0, buf)
	// The memory type must only touch non-0xFF bytes... i.e. every byte
	// the type covers was set by FillMemory's interior loop.
	c.MemType().Walk(0, func(off, n int64) bool {
		for i := off; i < off+n; i++ {
			if buf[i] == 0xFF {
				t.Fatalf("mem type touches guard byte %d", i)
			}
		}
		return true
	})
}
