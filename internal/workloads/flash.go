package workloads

import (
	"fmt"

	"dtio/internal/datatype"
)

// FlashConfig describes the FLASH I/O checkpoint simulation (paper
// §4.4). Each process holds Blocks AMR blocks; a block is an
// (NB+2G)³ allocation of cells whose interior is NB³; every cell holds
// Vars variables of ElemSize bytes, variable-minor in memory. The
// checkpoint file is variable-major: all of variable 0 (for every
// process, then every block), then variable 1, and so on — so memory
// regions are single elements and file regions are whole-block runs.
type FlashConfig struct {
	Blocks   int // blocks per process (80)
	NB       int // interior cells per dimension (8)
	Guard    int // guard cells per side (4)
	Vars     int // variables per cell (24)
	ElemSize int // bytes per variable (8)
	Procs    int // number of clients
}

// DefaultFlash returns the paper's configuration for p clients.
func DefaultFlash(p int) FlashConfig {
	return FlashConfig{Blocks: 80, NB: 8, Guard: 4, Vars: 24, ElemSize: 8, Procs: p}
}

// Validate reports configuration errors.
func (c FlashConfig) Validate() error {
	if c.Blocks <= 0 || c.NB <= 0 || c.Guard < 0 || c.Vars <= 0 || c.ElemSize <= 0 || c.Procs <= 0 {
		return fmt.Errorf("workloads: bad FLASH config %+v", c)
	}
	return nil
}

// side reports the allocated block edge including guard cells.
func (c FlashConfig) side() int { return c.NB + 2*c.Guard }

// CellBytes reports the bytes of one cell (all variables).
func (c FlashConfig) CellBytes() int64 { return int64(c.Vars) * int64(c.ElemSize) }

// BlockAllocBytes reports the in-memory bytes of one block allocation.
func (c FlashConfig) BlockAllocBytes() int64 {
	s := int64(c.side())
	return s * s * s * c.CellBytes()
}

// MemBytes reports the in-memory buffer size per process.
func (c FlashConfig) MemBytes() int64 {
	return int64(c.Blocks) * c.BlockAllocBytes()
}

// InteriorElems reports the interior cells of one block.
func (c FlashConfig) InteriorElems() int64 {
	n := int64(c.NB)
	return n * n * n
}

// BytesPerClient reports the checkpoint bytes each process writes
// (7.5 MB in the paper's configuration).
func (c FlashConfig) BytesPerClient() int64 {
	return int64(c.Blocks) * c.InteriorElems() * c.CellBytes()
}

// TotalBytes reports the full checkpoint size.
func (c FlashConfig) TotalBytes() int64 {
	return c.BytesPerClient() * int64(c.Procs)
}

// MemType returns the memory datatype of one process's checkpoint data,
// in file-stream order (variable-major, then block, then z, y, x): the
// noncontiguous-in-memory side of the paper's hardest pattern. Every
// leaf region is a single element.
func (c FlashConfig) MemType() *datatype.Type {
	elem := datatype.Bytes(int64(c.ElemSize))
	s := int64(c.side())
	cell := c.CellBytes()
	// One variable of one block's interior: NB³ single elements strided
	// by cell within rows, rows strided by s*cell, planes by s²*cell.
	row := datatype.HVector(c.NB, 1, cell, elem)
	plane := datatype.HVector(c.NB, 1, s*cell, row)
	cube := datatype.HVector(c.NB, 1, s*s*cell, plane)
	// Guard offset of the first interior cell.
	g := int64(c.Guard)
	guardOff := ((g*s+g)*s + g) * cell
	// Variable-major over (var, block).
	displs := make([]int64, 0, c.Vars*c.Blocks)
	for v := 0; v < c.Vars; v++ {
		for b := 0; b < c.Blocks; b++ {
			displs = append(displs, int64(b)*c.BlockAllocBytes()+guardOff+int64(v)*int64(c.ElemSize))
		}
	}
	return datatype.HBlockIndexed(1, displs, cube)
}

// FileType returns rank's file datatype: for each variable, a contiguous
// run of this rank's Blocks×NB³ elements at the variable-major offset.
func (c FlashConfig) FileType(rank int) *datatype.Type {
	perRankVar := int64(c.Blocks) * c.InteriorElems() * int64(c.ElemSize)
	lens := make([]int64, c.Vars)
	displs := make([]int64, c.Vars)
	for v := 0; v < c.Vars; v++ {
		lens[v] = int64(c.Blocks) * c.InteriorElems()
		displs[v] = (int64(v)*int64(c.Procs) + int64(rank)) * perRankVar
	}
	t := datatype.HIndexed(lens, displs, datatype.Bytes(int64(c.ElemSize)))
	// Extent covers the whole checkpoint so the view could tile.
	return datatype.Resized(t, 0, perRankVar*int64(c.Vars)*int64(c.Procs))
}

// FillMemory writes the oracle pattern into a process's block buffer:
// interior element (b, v, z, y, x) gets a value derived from its global
// identity; guard cells get 0xFF so leaks are visible.
func (c FlashConfig) FillMemory(rank int, buf []byte) {
	for i := range buf {
		buf[i] = 0xFF
	}
	s := c.side()
	cell := int(c.CellBytes())
	for b := 0; b < c.Blocks; b++ {
		base := b * int(c.BlockAllocBytes())
		for z := 0; z < c.NB; z++ {
			for y := 0; y < c.NB; y++ {
				for x := 0; x < c.NB; x++ {
					cellOff := base + (((z+c.Guard)*s+(y+c.Guard))*s+(x+c.Guard))*cell
					for v := 0; v < c.Vars; v++ {
						val := c.OracleElem(rank, b, v, z, y, x)
						for e := 0; e < c.ElemSize; e++ {
							buf[cellOff+v*c.ElemSize+e] = val + byte(e)
						}
					}
				}
			}
		}
	}
}

// OracleElem returns the first byte of the oracle value for an interior
// element.
func (c FlashConfig) OracleElem(rank, b, v, z, y, x int) byte {
	return byte(rank*31 + b*17 + v*5 + z*3 + y*2 + x)
}

// FileOracle computes the expected checkpoint byte at file offset off.
func (c FlashConfig) FileOracle(off int64) byte {
	es := int64(c.ElemSize)
	elem := off / es
	e := off % es
	perVar := int64(c.Procs) * int64(c.Blocks) * c.InteriorElems()
	v := elem / perVar
	rest := elem % perVar
	perRank := int64(c.Blocks) * c.InteriorElems()
	rank := rest / perRank
	rest %= perRank
	b := rest / c.InteriorElems()
	rest %= c.InteriorElems()
	n := int64(c.NB)
	z := rest / (n * n)
	y := (rest / n) % n
	x := rest % n
	return c.OracleElem(int(rank), int(b), int(v), int(z), int(y), int(x)) + byte(e)
}
