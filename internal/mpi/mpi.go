// Package mpi provides the message-passing substrate the MPI-IO layer
// needs: ranks, ordered point-to-point messages, and the handful of
// collectives two-phase I/O uses (barrier, broadcast, allgather,
// alltoallv, allreduce).
//
// Ranks run as env threads over a transport.Fabric, so on the simulated
// cluster MPI traffic contends for the same NICs as file-system traffic —
// exactly the interaction the paper discusses for two-phase I/O.
//
// Tag matching is strict FIFO per source: a receive must name the tag of
// the next message from that source, or the program has a protocol bug
// and Recv panics. The collectives below are written for this discipline.
package mpi

import (
	"encoding/binary"
	"fmt"

	"dtio/internal/transport"
)

// Comm is one rank's view of a communicator.
type Comm struct {
	fabric transport.Fabric
	rank   int
	size   int
}

// NewComm creates rank `rank` of a size-rank communicator over fabric.
// All ranks must share the same fabric instance.
func NewComm(fabric transport.Fabric, rank, size int) *Comm {
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, size))
	}
	return &Comm{fabric: fabric, rank: rank, size: size}
}

// Rank reports this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the communicator size.
func (c *Comm) Size() int { return c.size }

// Reserved tag space for collectives.
const (
	tagBarrier = 1<<20 + iota
	tagBcast
	tagGather
	tagAlltoallv
	tagReduce
)

// Send delivers data to rank `to` with the given tag.
func (c *Comm) Send(env transport.Env, to, tag int, data []byte) {
	c.fabric.Send(env, c.rank, to, tag, data)
}

// Recv returns the next message from rank `from`, which must carry the
// given tag.
func (c *Comm) Recv(env transport.Env, from, tag int) []byte {
	got, data := c.fabric.Recv(env, c.rank, from)
	if got != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, from, got))
	}
	return data
}

// Barrier blocks until all ranks arrive (linear gather + release).
func (c *Comm) Barrier(env transport.Env) {
	if c.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			c.Recv(env, r, tagBarrier)
		}
		for r := 1; r < c.size; r++ {
			c.Send(env, r, tagBarrier, nil)
		}
	} else {
		c.Send(env, 0, tagBarrier, nil)
		c.Recv(env, 0, tagBarrier)
	}
}

// Bcast distributes root's data to all ranks and returns it.
func (c *Comm) Bcast(env transport.Env, root int, data []byte) []byte {
	if c.size == 1 {
		return data
	}
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r != root {
				c.Send(env, r, tagBcast, data)
			}
		}
		return data
	}
	return c.Recv(env, root, tagBcast)
}

// Gather collects every rank's data at root; non-roots return nil.
func (c *Comm) Gather(env transport.Env, root int, data []byte) [][]byte {
	if c.rank != root {
		c.Send(env, root, tagGather, data)
		return nil
	}
	out := make([][]byte, c.size)
	out[root] = data
	for r := 0; r < c.size; r++ {
		if r != root {
			out[r] = c.Recv(env, r, tagGather)
		}
	}
	return out
}

// Allgather collects every rank's data everywhere (gather at 0 + bcast).
func (c *Comm) Allgather(env transport.Env, data []byte) [][]byte {
	if c.size == 1 {
		return [][]byte{data}
	}
	parts := c.Gather(env, 0, data)
	if c.rank == 0 {
		flat := flattenParts(parts)
		c.Bcast(env, 0, flat)
		return parts
	}
	flat := c.Bcast(env, 0, nil)
	return splitParts(flat, c.size)
}

// AllgatherI64 gathers one int64 per rank.
func (c *Comm) AllgatherI64(env transport.Env, v int64) []int64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	parts := c.Allgather(env, b[:])
	out := make([]int64, c.size)
	for i, p := range parts {
		out[i] = int64(binary.LittleEndian.Uint64(p))
	}
	return out
}

// Alltoallv sends send[i] to rank i and returns recv where recv[i] came
// from rank i. Empty (nil) entries are delivered as empty messages.
// Messages to self are returned directly without fabric traffic.
func (c *Comm) Alltoallv(env transport.Env, send [][]byte) [][]byte {
	if len(send) != c.size {
		panic("mpi: alltoallv send length != communicator size")
	}
	recv := make([][]byte, c.size)
	recv[c.rank] = send[c.rank]
	// Issue every send first (sends are buffered and never block on the
	// receiver), then collect: this avoids convoy effects where a rank
	// stalls waiting for a peer that is itself mid-exchange. Distances
	// stagger the destinations so senders don't all target rank 0 first.
	for d := 1; d < c.size; d++ {
		dst := (c.rank + d) % c.size
		c.Send(env, dst, tagAlltoallv, send[dst])
	}
	for d := 1; d < c.size; d++ {
		src := (c.rank - d + c.size) % c.size
		recv[src] = c.Recv(env, src, tagAlltoallv)
	}
	return recv
}

// AllreduceI64 combines one value per rank with op (which must be
// associative and commutative) and returns the result everywhere.
func (c *Comm) AllreduceI64(env transport.Env, v int64, op func(a, b int64) int64) int64 {
	if c.size == 1 {
		return v
	}
	var b [8]byte
	if c.rank == 0 {
		acc := v
		for r := 1; r < c.size; r++ {
			p := c.Recv(env, r, tagReduce)
			acc = op(acc, int64(binary.LittleEndian.Uint64(p)))
		}
		binary.LittleEndian.PutUint64(b[:], uint64(acc))
		c.Bcast(env, 0, b[:])
		return acc
	}
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	c.Send(env, 0, tagReduce, b[:])
	p := c.Bcast(env, 0, nil)
	return int64(binary.LittleEndian.Uint64(p))
}

// flattenParts encodes a slice of byte slices into one buffer.
func flattenParts(parts [][]byte) []byte {
	n := 4
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for _, p := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

// splitParts reverses flattenParts.
func splitParts(flat []byte, want int) [][]byte {
	n := int(binary.LittleEndian.Uint32(flat))
	if n != want {
		panic(fmt.Sprintf("mpi: allgather expected %d parts, got %d", want, n))
	}
	out := make([][]byte, n)
	at := 4
	for i := 0; i < n; i++ {
		ln := int(binary.LittleEndian.Uint32(flat[at:]))
		at += 4
		out[i] = flat[at : at+ln]
		at += ln
	}
	return out
}
