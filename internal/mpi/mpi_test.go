package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dtio/internal/transport"
	"dtio/internal/vtime"
)

// runRanks executes fn on n ranks over a MemFabric with real goroutines.
func runRanks(t *testing.T, n int, fn func(env transport.Env, c *Comm)) {
	t.Helper()
	fab := transport.NewMemFabric(n)
	env := transport.NewRealEnv()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		c := NewComm(fab, r, n)
		go func() {
			defer wg.Done()
			fn(env, c)
		}()
	}
	wg.Wait()
}

func TestSendRecv(t *testing.T) {
	runRanks(t, 2, func(env transport.Env, c *Comm) {
		if c.Rank() == 0 {
			c.Send(env, 1, 7, []byte("hi"))
		} else {
			got := c.Recv(env, 0, 7)
			if string(got) != "hi" {
				t.Errorf("got %q", got)
			}
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	runRanks(t, 2, func(env transport.Env, c *Comm) {
		if c.Rank() == 0 {
			c.Send(env, 1, 7, nil)
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("no panic on tag mismatch")
			}
		}()
		c.Recv(env, 0, 8)
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		runRanks(t, n, func(env transport.Env, c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier(env)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	runRanks(t, 4, func(env transport.Env, c *Comm) {
		var data []byte
		if c.Rank() == 2 {
			data = []byte("payload")
		}
		got := c.Bcast(env, 2, data)
		if string(got) != "payload" {
			t.Errorf("rank %d got %q", c.Rank(), got)
		}
	})
}

func TestAllgather(t *testing.T) {
	runRanks(t, 5, func(env transport.Env, c *Comm) {
		mine := []byte(fmt.Sprintf("rank%d", c.Rank()))
		parts := c.Allgather(env, mine)
		if len(parts) != 5 {
			t.Errorf("len=%d", len(parts))
			return
		}
		for i, p := range parts {
			if string(p) != fmt.Sprintf("rank%d", i) {
				t.Errorf("part %d = %q", i, p)
			}
		}
	})
}

func TestAllgatherI64(t *testing.T) {
	runRanks(t, 4, func(env transport.Env, c *Comm) {
		vals := c.AllgatherI64(env, int64(c.Rank()*100-7))
		for i, v := range vals {
			if v != int64(i*100-7) {
				t.Errorf("vals=%v", vals)
				return
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 6
	runRanks(t, n, func(env transport.Env, c *Comm) {
		send := make([][]byte, n)
		for to := 0; to < n; to++ {
			if (c.Rank()+to)%3 == 0 {
				continue // leave some entries empty
			}
			send[to] = []byte(fmt.Sprintf("%d->%d", c.Rank(), to))
		}
		recv := c.Alltoallv(env, send)
		for from := 0; from < n; from++ {
			want := ""
			if (from+c.Rank())%3 != 0 {
				want = fmt.Sprintf("%d->%d", from, c.Rank())
			}
			if string(recv[from]) != want {
				t.Errorf("rank %d from %d: got %q want %q", c.Rank(), from, recv[from], want)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	runRanks(t, 7, func(env transport.Env, c *Comm) {
		mx := c.AllreduceI64(env, int64(c.Rank()*3), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if mx != 18 {
			t.Errorf("max=%d", mx)
		}
		sum := c.AllreduceI64(env, 1, func(a, b int64) int64 { return a + b })
		if sum != 7 {
			t.Errorf("sum=%d", sum)
		}
	})
}

func TestCollectivesOnSimFabric(t *testing.T) {
	sched := vtime.New()
	net := transport.NewSimNet(sched, transport.DefaultSimConfig())
	const n = 4
	nodes := make([]*transport.SimNode, n)
	for i := range nodes {
		nodes[i] = net.NewNode()
	}
	fab := transport.NewSimFabric(net, nodes)
	wg := sched.NewWaitGroup()
	wg.Add(n)
	net.Spawn("ctl", nodes[0], func(env transport.Env) {
		wg.Wait(env.(*transport.SimEnv).Proc())
		fab.Close()
	})
	ok := make([]bool, n)
	for r := 0; r < n; r++ {
		r := r
		net.Spawn(fmt.Sprintf("rank%d", r), nodes[r], func(env transport.Env) {
			c := NewComm(fab, r, n)
			c.Barrier(env)
			parts := c.Allgather(env, []byte{byte(r)})
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = bytes.Repeat([]byte{byte(r)}, to+1)
			}
			recv := c.Alltoallv(env, send)
			good := len(parts) == n
			for i := range parts {
				good = good && len(parts[i]) == 1 && parts[i][0] == byte(i)
			}
			for from := range recv {
				good = good && len(recv[from]) == r+1
				for _, b := range recv[from] {
					good = good && b == byte(from)
				}
			}
			c.Barrier(env)
			ok[r] = good
			wg.Done()
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	for r, g := range ok {
		if !g {
			t.Fatalf("rank %d failed", r)
		}
	}
	if sched.Now() == 0 {
		t.Fatal("sim collectives took zero time")
	}
}
