package pvfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dtio/internal/cache"
	"dtio/internal/dataloop"
	"dtio/internal/flatten"
	"dtio/internal/flightrec"
	"dtio/internal/iostats"
	"dtio/internal/metrics"
	"dtio/internal/storage"
	"dtio/internal/striping"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// ServerMetrics collects one I/O server's live introspection state:
// request latency histograms (split by request class) and the
// replay-suppression counter. All recording is atomic and
// allocation-free; a nil *ServerMetrics disables everything.
type ServerMetrics struct {
	// ReadLat observes read-class request service time (contig, list,
	// and dtype reads plus size probes), decode to response.
	ReadLat metrics.Histogram
	// WriteLat observes mutating request service time (writes including
	// stream drain, truncate, remove).
	WriteLat metrics.Histogram
	// Replays counts mutating requests answered from the replay cache
	// instead of re-executing.
	Replays metrics.Counter
}

func (m *ServerMetrics) observe(t wire.MsgType, d time.Duration) {
	if m == nil {
		return
	}
	switch t {
	case wire.MTReadContigReq, wire.MTReadListReq, wire.MTReadDtypeReq, wire.MTLocalSizeReq:
		m.ReadLat.Observe(d)
	default:
		m.WriteLat.Observe(d)
	}
}

func (m *ServerMetrics) addReplay() {
	if m == nil {
		return
	}
	m.Replays.Add(1)
}

// Lat merges the read and write histograms (the per-server latency
// snapshot the bench results and pvfsctl stats report).
func (m *ServerMetrics) Lat() metrics.HistSnapshot {
	if m == nil {
		return metrics.HistSnapshot{}
	}
	return m.ReadLat.Snapshot().Add(m.WriteLat.Snapshot())
}

// AdaptiveThreshold derives the tail-sampling slow-op cutoff from a
// server's live latency histograms: a rolling p99 over the window of
// requests since the previous recompute, floored so an idle or
// uniformly-fast server doesn't trace everything. Threshold is cheap
// enough for trace.TailConfig — an atomic load on most calls, with the
// p99 recomputed once every thresholdRecompute decisions (DESIGN.md
// §17).
type AdaptiveThreshold struct {
	m      *ServerMetrics
	floor  time.Duration
	calls  atomic.Int64
	cached atomic.Int64 // ns; 0 until first recompute succeeds

	mu   sync.Mutex
	prev metrics.HistSnapshot // merged snapshot at last recompute
}

// thresholdRecompute is how many Threshold calls share one cached p99,
// and the minimum window size (in samples) worth recomputing over.
const thresholdRecompute = 256

// NewAdaptiveThreshold returns a threshold tracking m's merged
// read+write histogram, never reporting below floor.
func NewAdaptiveThreshold(m *ServerMetrics, floor time.Duration) *AdaptiveThreshold {
	if floor <= 0 {
		floor = time.Millisecond
	}
	return &AdaptiveThreshold{m: m, floor: floor}
}

// Threshold reports the current slow-op cutoff (for trace.TailConfig).
func (a *AdaptiveThreshold) Threshold() time.Duration {
	if a == nil {
		return 0
	}
	if n := a.calls.Add(1); n == 1 || n%thresholdRecompute == 0 {
		a.recompute()
	}
	if v := a.cached.Load(); v > 0 {
		return time.Duration(v)
	}
	return a.floor
}

func (a *AdaptiveThreshold) recompute() {
	cur := a.m.Lat()
	a.mu.Lock()
	defer a.mu.Unlock()
	win := cur.Sub(a.prev)
	if win.Count < thresholdRecompute/4 {
		return // too few samples since last time: keep the old cutoff
	}
	a.prev = cur
	p99 := win.Quantile(0.99)
	if p99 < a.floor {
		p99 = a.floor
	}
	a.cached.Store(int64(p99))
}

// Server is one I/O server: a map of handle -> local object plus the
// request processing that turns contiguous, list, and datatype requests
// into local reads and writes.
type Server struct {
	net   transport.Network
	addr  string
	index int // this server's position in the cluster's server list
	cost  CostModel
	// NewStore creates backing storage for a new object (default:
	// storage.NewMem).
	NewStore func(handle uint64) storage.Store

	mu      sync.Mutex
	objects map[uint64]storage.Store
	lis     transport.Listener
	closed  bool

	// Fault administration and recovery state (DESIGN.md §11): open
	// handler connections (severed on Crash), the pending crash-restart
	// downtime Serve consumes, the stall deadline every dequeued request
	// waits out, a disk-time multiplier the scheduler picks up, and the
	// per-client replay history that makes mutating requests at-most-once
	// across retries.
	conns      map[transport.Conn]uint64 // value: accept order, so Crash severs deterministically
	connSeq    uint64
	restartIn  *time.Duration
	stallUntil time.Duration
	diskScale  atomic.Int64
	dedup      map[uint64]*clientHistory

	// Replica repair state (DESIGN.md §16). ReplicaPeers lists the
	// addresses of this server's group siblings; after a Kill (crash
	// with data loss) the restart comes back empty and re-replicates
	// every object from the first reachable peer. While repairing, the
	// member refuses replicated reads (clients fail over to surviving
	// peers) but accepts writes, recording their physical ranges in
	// written so the background copy never clobbers post-restart data.
	ReplicaPeers []string
	wipe         bool                      // set by Kill: next restart loses all objects
	repairing    bool                      // rebuilding from peers; guarded by mu
	repairLive   atomic.Bool               // lock-free mirror of repairing for hot paths
	incarnation  uint64                    // bumped on every wiped restart
	written      map[uint64]cache.RangeSet // physical ranges written since the wipe
	// pendingWrites counts write-class requests currently being
	// serviced. Reported to rebuilding group peers in ReplicaListResp:
	// a repair pass is only final once the source reports none in
	// flight, so a write racing the copy forces another pass.
	pendingWrites atomic.Int64

	// loopCache memoizes decoded dataloops AND their compiled run
	// programs by wire bytes: the datatype-caching extension the paper's
	// §5 proposes ("datatype caching ... could boost the performance of
	// PVFS datatype I/O by further reducing I/O request overhead").
	// Repeated accesses with the same view skip both the decode and the
	// flatten.Compile cost; replay is then pure arithmetic. Overflow is
	// handled by a second-chance sweep, not a reset, so a hot view
	// population survives a scan of cold ones. Disable with
	// DisableLoopCache.
	DisableLoopCache bool
	// DisableCompiledLoops keeps dtype expansion on the interpreted
	// Segment walk even when a compiled program is cached (the
	// compiled-vs-interpreted ablation; programs are still compiled and
	// cached so flipping the flag needs no warmup).
	DisableCompiledLoops bool
	cacheMu              sync.Mutex
	loopCache            map[string]*loopEntry
	cacheHits            int64
	cacheMisses          int64
	cacheEvictions       int64
	compiledReplays      atomic.Int64

	// StreamChunkBytes is the flow-control segment size: transfers
	// larger than this are streamed so disk and network overlap
	// (0 = DefaultStreamChunkBytes).
	StreamChunkBytes int
	// StreamWindow is the maximum number of unacknowledged segments in
	// flight per streamed transfer (0 = DefaultStreamWindow).
	StreamWindow int
	// DisableStreaming forces store-and-forward transfers regardless of
	// size (the pre-streaming behavior, kept for ablations).
	DisableStreaming bool

	// DisableDiskSched dispatches a request's physical runs in arrival
	// order with no coalescing (the NoDiskSched ablation; DESIGN.md §10).
	DisableDiskSched bool
	// SieveGapBytes is the disk scheduler's read gap-merge threshold:
	// runs separated by at most this many bytes are served by a single
	// over-reading disk operation (0 = merge strictly adjacent runs
	// only; see DefaultSieveGapBytes).
	SieveGapBytes int64
	// DisableVectoredIO makes coalesced disk operations stage through a
	// scratch buffer and issue one scalar ReadAt/WriteAt each (the
	// pre-vectored behavior) instead of handing the runs to the store as
	// a single ReadAtv/WriteAtv scatter-gather batch.
	DisableVectoredIO bool
	// Stats (optional) collects the disk-scheduler counters: runs
	// presented, operations dispatched, head travel.
	Stats *iostats.Stats

	// Tracer (optional) records request/disk/stream spans, parented to
	// the originating client op via wire.ReqTag.Span.
	Tracer *trace.Tracer
	// Metrics (optional) collects request latency histograms and the
	// replay counter.
	Metrics *ServerMetrics
	// Flight (optional) is the always-on flight recorder: a fixed ring
	// of compact per-request completion events (DESIGN.md §17). Dumped
	// on demand by wire.AdminFlightRec, on SIGQUIT by the daemon, and
	// automatically on the crash/kill paths (PostMortem/OnCrashDump).
	// Lapped events are counted in Stats as EventsDropped.
	Flight *flightrec.Ring
	// OnCrashDump (optional) receives the flight-recorder dump captured
	// at the instant of a Crash or Kill, before connections sever — the
	// daemon writes it to stderr, the bench keeps it for the report.
	OnCrashDump func(flightrec.Dump)
	// inflight counts requests currently inside handle: the queue depth
	// at arrival stamped into each flight record, and the InFlight
	// gauge in StatsSnapshot.
	inflight atomic.Int64
	// postmortem is the dump captured by the last Crash/Kill (nil until
	// one happens); guarded by mu.
	postmortem *flightrec.Dump

	spanTrack string // span track label, fixed at construction
}

// NewServer creates I/O server number index listening at addr.
func NewServer(net transport.Network, addr string, index int, cost CostModel) *Server {
	return &Server{
		net:       net,
		addr:      addr,
		index:     index,
		cost:      cost,
		NewStore:  func(uint64) storage.Store { return storage.NewMem() },
		objects:   make(map[uint64]storage.Store),
		spanTrack: fmt.Sprintf("io-server-%d", index),
	}
}

// Index reports this server's position in the cluster's server list.
func (s *Server) Index() int { return s.index }

// Serve listens and handles connections until Close. A Crash (fail-stop
// injected locally or by an admin request) makes the current incarnation
// return; Serve then waits out the downtime and listens again, which is
// exactly a daemon restart — local objects persist across it, standing
// in for the server's disk. A Kill restart instead comes back empty (a
// blank spare replacing a dead machine) and, when the server has
// replica peers, starts background re-replication from its group.
func (s *Server) Serve(env transport.Env) error {
	for {
		if err := s.serveOnce(env); err != nil {
			return err
		}
		down, ok := s.takeRestart()
		if !ok {
			return nil
		}
		sleepBoth(env, down)
		s.mu.Lock()
		closed := s.closed
		wiped := s.wipe && !closed
		if wiped {
			s.wipe = false
			s.objects = make(map[uint64]storage.Store)
			s.dedup = nil // the at-most-once history died with the data
			s.written = nil
			s.incarnation++
			if len(s.ReplicaPeers) > 0 {
				s.repairing = true
				s.repairLive.Store(true)
			}
		}
		inc := s.incarnation
		s.mu.Unlock()
		if closed {
			return nil
		}
		if wiped && len(s.ReplicaPeers) > 0 {
			env.Go("replica-repair", func(env transport.Env) { s.runRepair(env, inc) })
		}
	}
}

// serveOnce runs one server incarnation: listen, accept, handle, until
// the listener closes (Close or Crash).
func (s *Server) serveOnce(env transport.Env) error {
	lis, err := s.net.Listen(s.addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lis = lis
	closed := s.closed
	s.mu.Unlock()
	if closed {
		lis.Close()
		return nil
	}
	for {
		conn, err := lis.Accept(env)
		if err != nil {
			return nil
		}
		c := conn
		s.track(c, true)
		env.Go("io-handler", func(env transport.Env) {
			defer func() {
				s.track(c, false)
				c.Close()
			}()
			for {
				msg, err := c.Recv(env)
				if err != nil {
					return
				}
				resp, err := s.handle(env, c, msg)
				if err != nil {
					// The connection is out of protocol sync (e.g. a
					// failed stream); close it.
					return
				}
				if resp == nil {
					continue // fully answered by a stream
				}
				if err := c.Send(env, resp); err != nil {
					return
				}
			}
		})
	}
}

func (s *Server) track(c transport.Conn, add bool) {
	s.mu.Lock()
	if add {
		if s.conns == nil {
			s.conns = make(map[transport.Conn]uint64)
		}
		s.connSeq++
		s.conns[c] = s.connSeq
	} else {
		delete(s.conns, c)
	}
	s.mu.Unlock()
}

// Close stops the listener.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
}

// Crash simulates a fail-stop: the listener and every open connection
// drop immediately, with no goodbye to anyone mid-request. Serve
// restarts the server after down. In-flight requests die; clients
// recover via retries and stream resume.
func (s *Server) Crash(down time.Duration) {
	// Capture the flight recorder first: the dump is the post-mortem of
	// what this incarnation was doing when it died, so it must precede
	// the connection cull (and any OnCrashDump side effects see a ring
	// no longer advanced by requests on the severed connections... or
	// nearly so; late in-flight completions may still append, which is
	// fine — the dump is a snapshot, the ring stays live).
	if s.Flight != nil {
		d := flightrec.NewDump(s.index, s.Flight)
		s.mu.Lock()
		s.postmortem = &d
		s.mu.Unlock()
		if f := s.OnCrashDump; f != nil {
			f(d)
		}
	}
	s.mu.Lock()
	if s.restartIn == nil {
		d := down
		s.restartIn = &d
	}
	lis := s.lis
	s.lis = nil
	// Sever connections in accept order, not map order: under the
	// simulation the close wake-ups interleave with client goroutines,
	// and a run-to-run random order would make crash cells drift.
	type tracked struct {
		c   transport.Conn
		seq uint64
	}
	conns := make([]tracked, 0, len(s.conns))
	for c, seq := range s.conns {
		conns = append(conns, tracked{c, seq})
	}
	s.conns = nil
	s.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].seq < conns[j].seq })
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
}

// Kill simulates permanent server death followed by a blank spare at
// the same address: a Crash whose restart loses every local object
// (fault.Kill, wire.AdminKill). Unreplicated data is simply gone —
// reads return holes; with replica peers configured the restart
// re-builds the member from its surviving group (DESIGN.md §16).
func (s *Server) Kill(down time.Duration) {
	s.mu.Lock()
	s.wipe = true
	s.mu.Unlock()
	s.Crash(down)
}

// PostMortem returns the flight-recorder dump captured at the moment
// of the last Crash or Kill, and whether one exists (requires Flight
// to have been set when the crash happened).
func (s *Server) PostMortem() (flightrec.Dump, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.postmortem == nil {
		return flightrec.Dump{}, false
	}
	return *s.postmortem, true
}

// takeRestart consumes a pending crash-restart downtime.
func (s *Server) takeRestart() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.restartIn == nil {
		return 0, false
	}
	d := *s.restartIn
	s.restartIn = nil
	return d, true
}

// StallFor makes the server freeze for the next d — alive and
// accepting, but unresponsive, which clients can only distinguish from
// loss by timeout. The gate sits between requests and between stream
// segments, so in-flight transfers seize too, as they would under a
// wedged daemon.
func (s *Server) StallFor(env transport.Env, d time.Duration) {
	s.mu.Lock()
	if t := env.Now() + d; t > s.stallUntil {
		s.stallUntil = t
	}
	s.mu.Unlock()
}

// stallGate blocks while the server is inside a StallFor window.
func (s *Server) stallGate(env transport.Env) {
	s.mu.Lock()
	stall := s.stallUntil
	s.mu.Unlock()
	if now := env.Now(); now < stall {
		sleepBoth(env, stall-now)
	}
}

// SetDiskScale sets the modeled disk-time multiplier in percent (100 or
// 0 restores normal speed): a degraded, slow disk rather than a dead one.
func (s *Server) SetDiskScale(percent int64) {
	s.diskScale.Store(percent)
}

// sleepBoth waits d under both clocks: env.Sleep advances virtual time
// in simulation and is a no-op on real environments, where the
// wall-clock remainder is waited out for real.
func sleepBoth(env transport.Env, d time.Duration) {
	target := env.Now() + d
	env.Sleep(d)
	if rest := target - env.Now(); rest > 0 {
		time.Sleep(rest)
	}
}

// object returns (creating on demand) the local store for a handle.
func (s *Server) object(handle uint64) storage.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.objects[handle]
	if !ok {
		st = s.NewStore(handle)
		s.objects[handle] = st
	}
	return st
}

func ioErr(format string, args ...any) []byte {
	return wire.EncodeIOResp(&wire.IOResp{Err: fmt.Sprintf(format, args...)})
}

func ioErrSeq(seq uint64, format string, args ...any) []byte {
	return wire.EncodeIOResp(&wire.IOResp{Seq: seq, Err: fmt.Sprintf(format, args...)})
}

// dedupPerClient bounds the replay history per client. A client has at
// most one outstanding tagged request per server connection, so a small
// ring comfortably covers every replay a retry can produce.
const dedupPerClient = 8

// clientHistory is one client's recent mutating requests and their
// responses, for at-most-once replay suppression.
type clientHistory struct {
	seqs  [dedupPerClient]uint64
	resps [dedupPerClient][]byte
	pos   int
}

// replay returns the recorded response if this tag's request was
// already executed: the retry's request must not mutate again (a replayed
// write could otherwise resurrect old bytes over a later writer's data).
func (s *Server) replay(tag wire.ReqTag) ([]byte, bool) {
	if tag.Client == 0 {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.dedup[tag.Client]
	if h == nil {
		return nil, false
	}
	for i, q := range h.seqs {
		if q == tag.Seq && q != 0 {
			return h.resps[i], true
		}
	}
	return nil, false
}

// remember records a completed mutating request's response for replay.
func (s *Server) remember(tag wire.ReqTag, resp []byte) {
	if tag.Client == 0 || resp == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dedup == nil {
		s.dedup = make(map[uint64]*clientHistory)
	}
	h := s.dedup[tag.Client]
	if h == nil {
		h = &clientHistory{}
		s.dedup[tag.Client] = h
	}
	h.seqs[h.pos] = tag.Seq
	h.resps[h.pos] = resp
	h.pos = (h.pos + 1) % dedupPerClient
}

// layoutOf validates and converts the wire layout. Unreplicated files
// address cluster servers directly; replicated ones address (group,
// member) pairs, with group g's member j living at physical server
// g*k + j, so the striping math below stays in group space either way.
func (s *Server) layoutOf(l wire.FileLayout) (striping.Layout, error) {
	lay := striping.Layout{StripSize: l.StripSize, NServers: int(l.NServers), Base: int(l.Base)}
	if err := lay.Validate(); err != nil {
		return lay, err
	}
	if l.Replicas > 1 {
		if l.Member < 0 || l.Member >= l.Replicas || int(l.ServerIdx) >= int(l.NServers) ||
			int(l.ServerIdx)*int(l.Replicas)+int(l.Member) != s.index {
			return lay, fmt.Errorf("request for group %d/%d member %d/%d arrived at cluster server %d",
				l.ServerIdx, l.NServers, l.Member, l.Replicas, s.index)
		}
		return lay, nil
	}
	// A file's server list is cluster servers 0..NServers-1, so a
	// participating server's index within the file equals its cluster
	// index.
	if int(l.ServerIdx) != s.index || s.index >= int(l.NServers) {
		return lay, fmt.Errorf("request for file server %d/%d arrived at cluster server %d",
			l.ServerIdx, l.NServers, s.index)
	}
	return lay, nil
}

// repairGate refuses a replicated read while this member is rebuilding
// — its bytes are incomplete, and the client's failover path fetches
// them from a surviving peer. Unreplicated requests pass: their data
// has no other copy, so holes are the honest answer. Returns nil when
// the request may proceed.
func (s *Server) repairGate(l wire.FileLayout, seq uint64) []byte {
	if l.Replicas <= 1 || !s.repairLive.Load() {
		return nil
	}
	return ioErrSeq(seq, "server %d repairing", s.index)
}

// noteWrite records a physical range written while repairing, so the
// background copy never overwrites post-restart client data.
func (s *Server) noteWrite(handle uint64, off, n int64) {
	s.mu.Lock()
	if s.repairing {
		if s.written == nil {
			s.written = make(map[uint64]cache.RangeSet)
		}
		s.written[handle] = s.written[handle].Add(off, n)
	}
	s.mu.Unlock()
}

// tagOf extracts the request tag carried by a decoded I/O request (zero
// for untagged message kinds).
func tagOf(v any) wire.ReqTag {
	switch r := v.(type) {
	case *wire.ContigReq:
		return r.Tag
	case *wire.ListIOReq:
		return r.Tag
	case *wire.DtypeReq:
		return r.Tag
	case *wire.LocalSizeReq:
		return r.Tag
	case *wire.TruncateReq:
		return r.Tag
	case *wire.RemoveObjReq:
		return r.Tag
	}
	return wire.ReqTag{}
}

// handle services one request. A nil response with nil error means the
// request was answered entirely by a stream; a non-nil error means the
// connection is no longer usable and must close. With Tracer, Metrics,
// and Flight all nil the observation block is three nil checks — the
// dtype read hot path stays within PR1's allocation bound; with them
// enabled everything recorded is atomics and preallocated slots, so
// the bound holds there too (asserted by the observe tests).
func (s *Server) handle(env transport.Env, conn transport.Conn, msg []byte) ([]byte, error) {
	if s.Tracer == nil && s.Metrics == nil && s.Flight == nil {
		s.stallGate(env)
		t, v, err := wire.DecodeMsg(msg)
		if err != nil {
			return ioErr("bad request: %v", err), nil
		}
		env.Compute(s.cost.RequestOverhead)
		resp, _, err := s.dispatch(env, conn, t, v, nil)
		return resp, err
	}
	// Observed path: the queue-depth gauge counts from arrival and the
	// service clock starts before the stall gate, so a stalled server
	// shows the health aggregator rising depth and (once it unfreezes)
	// a p99 spike instead of silence (DESIGN.md §17).
	depth := s.inflight.Add(1) - 1 // queue depth at arrival: requests already in service
	start := env.Now()
	s.stallGate(env)
	t, v, err := wire.DecodeMsg(msg)
	if err != nil {
		s.inflight.Add(-1)
		return ioErr("bad request: %v", err), nil
	}
	env.Compute(s.cost.RequestOverhead)
	// t.String() is a map lookup of an interned name: no allocation
	// when only Metrics is enabled.
	sp := s.Tracer.Begin(env, s.spanTrack, t.String(), trace.SpanID(tagOf(v).Span))
	resp, flags, err := s.dispatch(env, conn, t, v, sp)
	svc := env.Now() - start
	sp.End(env)
	s.Metrics.observe(t, svc)
	s.inflight.Add(-1)
	if s.Flight != nil {
		s.recordFlight(t, v, svc, depth, flags, resp)
	}
	return resp, err
}

// recordFlight appends one completion event to the flight recorder.
// Only called with s.Flight set; alloc-free (a type switch, a few
// atomic loads, the ring's claim+store).
func (s *Server) recordFlight(t wire.MsgType, v any, svc time.Duration, depth int64, flags uint8, resp []byte) {
	if sc := s.diskScale.Load(); sc != 0 && sc != 100 {
		flags |= flightrec.FlagDegraded
	}
	if s.repairLive.Load() {
		flags |= flightrec.FlagRepairing
	}
	if wire.RespIsErr(resp) {
		flags |= flightrec.FlagError
	}
	if depth > 65535 {
		depth = 65535
	}
	handle, bytes := flightInfo(v)
	if s.Flight.Record(flightrec.Event{
		Span: tagOf(v).Span, Handle: handle, Bytes: bytes,
		ServiceNs: int64(svc), Op: uint8(t), Flags: flags, Depth: uint16(depth),
	}) && s.Stats != nil {
		s.Stats.AddEventDropped()
	}
}

// flightInfo extracts the handle and payload byte count a flight
// record carries, per request kind (zero when the kind has neither).
func flightInfo(v any) (handle uint64, bytes int64) {
	switch r := v.(type) {
	case *wire.ContigReq:
		return r.Layout.Handle, r.N
	case *wire.ListIOReq:
		var n int64
		for _, reg := range r.Regions {
			n += reg.Len
		}
		return r.Layout.Handle, n
	case *wire.DtypeReq:
		return r.Layout.Handle, r.NBytes
	case *wire.LocalSizeReq:
		return r.Layout.Handle, 0
	case *wire.TruncateReq:
		return r.Layout.Handle, r.Size
	case *wire.RemoveObjReq:
		return r.Layout.Handle, 0
	case *wire.WriteStreamHdr:
		return 0, r.Total // the handle lives on the inner request
	case *wire.ReplicaFetchReq:
		return r.Handle, r.N
	case *wire.ReplicaSumReq:
		return r.Handle, 0
	}
	return 0, 0
}

// dispatch routes one decoded request. sp is the request span (nil when
// tracing is off) threaded down so disk batches and stream segments
// parent to it. The middle return value carries the flight-recorder
// flags only dispatch can know (FlagReplay today); the caller merges
// in the server-state flags.
func (s *Server) dispatch(env transport.Env, conn transport.Conn, t wire.MsgType, v any, sp *trace.Span) ([]byte, uint8, error) {
	switch t {
	case wire.MTWriteContigReq, wire.MTWriteListReq, wire.MTWriteDtypeReq,
		wire.MTWriteStreamHdr, wire.MTTruncateReq:
		s.pendingWrites.Add(1)
		defer s.pendingWrites.Add(-1)
	}
	switch t {
	case wire.MTReadContigReq:
		r := v.(*wire.ContigReq)
		if resp := s.repairGate(r.Layout, r.Tag.Seq); resp != nil {
			return resp, 0, nil
		}
		resp, err := s.contig(env, conn, r, nil, sp)
		return resp, 0, err
	case wire.MTWriteContigReq:
		r := v.(*wire.ContigReq)
		if cached, ok := s.replay(r.Tag); ok {
			s.Metrics.addReplay()
			sp.SetAttr("replay", 1)
			return cached, flightrec.FlagReplay, nil
		}
		src := inlineSrc(r.Data)
		resp, err := s.contig(env, conn, r, src, sp)
		putSrc(src)
		s.remember(r.Tag, resp)
		return resp, 0, err
	case wire.MTReadListReq:
		r := v.(*wire.ListIOReq)
		if resp := s.repairGate(r.Layout, r.Tag.Seq); resp != nil {
			return resp, 0, nil
		}
		resp, err := s.list(env, conn, r, nil, sp)
		return resp, 0, err
	case wire.MTWriteListReq:
		r := v.(*wire.ListIOReq)
		if cached, ok := s.replay(r.Tag); ok {
			s.Metrics.addReplay()
			sp.SetAttr("replay", 1)
			return cached, flightrec.FlagReplay, nil
		}
		src := inlineSrc(r.Data)
		resp, err := s.list(env, conn, r, src, sp)
		putSrc(src)
		s.remember(r.Tag, resp)
		return resp, 0, err
	case wire.MTReadDtypeReq:
		r := v.(*wire.DtypeReq)
		if resp := s.repairGate(r.Layout, r.Tag.Seq); resp != nil {
			return resp, 0, nil
		}
		resp, err := s.dtype(env, conn, r, nil, sp)
		return resp, 0, err
	case wire.MTWriteDtypeReq:
		r := v.(*wire.DtypeReq)
		if cached, ok := s.replay(r.Tag); ok {
			s.Metrics.addReplay()
			sp.SetAttr("replay", 1)
			return cached, flightrec.FlagReplay, nil
		}
		src := inlineSrc(r.Data)
		resp, err := s.dtype(env, conn, r, src, sp)
		putSrc(src)
		s.remember(r.Tag, resp)
		return resp, 0, err
	case wire.MTWriteStreamHdr:
		return s.streamedWrite(env, conn, v.(*wire.WriteStreamHdr), sp)
	case wire.MTLocalSizeReq:
		r := v.(*wire.LocalSizeReq)
		if resp := s.repairGate(r.Layout, r.Tag.Seq); resp != nil {
			return resp, 0, nil // size is a read: a rebuilding object undercounts
		}
		if _, err := s.layoutOf(r.Layout); err != nil {
			return ioErrSeq(r.Tag.Seq, "%v", err), 0, nil
		}
		return wire.EncodeIOResp(&wire.IOResp{Seq: r.Tag.Seq, OK: true, Size: s.object(r.Layout.Handle).Size()}), 0, nil
	case wire.MTTruncateReq:
		r := v.(*wire.TruncateReq)
		if cached, ok := s.replay(r.Tag); ok {
			s.Metrics.addReplay()
			sp.SetAttr("replay", 1)
			return cached, flightrec.FlagReplay, nil
		}
		resp := s.truncate(r)
		s.remember(r.Tag, resp)
		return resp, 0, nil
	case wire.MTRemoveObjReq:
		r := v.(*wire.RemoveObjReq)
		s.mu.Lock()
		delete(s.objects, r.Layout.Handle)
		s.mu.Unlock()
		return wire.EncodeIOResp(&wire.IOResp{Seq: r.Tag.Seq, OK: true}), 0, nil
	case wire.MTAdminReq:
		resp, err := s.admin(env, conn, v.(*wire.AdminReq))
		return resp, 0, err
	case wire.MTReplicaListReq:
		return s.replicaList(), 0, nil
	case wire.MTReplicaFetchReq:
		return s.replicaFetch(v.(*wire.ReplicaFetchReq)), 0, nil
	case wire.MTReplicaSumReq:
		return s.replicaSums(v.(*wire.ReplicaSumReq)), 0, nil
	default:
		return ioErr("unexpected message %s", t), 0, nil
	}
}

func (s *Server) truncate(r *wire.TruncateReq) []byte {
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return ioErrSeq(r.Tag.Seq, "%v", err)
	}
	if r.Size < 0 {
		return ioErrSeq(r.Tag.Seq, "negative size %d", r.Size)
	}
	local := lay.LocalLen(int(r.Layout.ServerIdx), r.Size)
	if err := s.object(r.Layout.Handle).Truncate(local); err != nil {
		return ioErrSeq(r.Tag.Seq, "truncate: %v", err)
	}
	return wire.EncodeIOResp(&wire.IOResp{Seq: r.Tag.Seq, OK: true})
}

// ServerSnapshot is the JSON introspection payload an AdminStats
// request returns: the server's identity, its I/O counters, request
// latency distribution (read and write classes merged, with headline
// quantiles precomputed), and the replay/loop-cache state.
type ServerSnapshot struct {
	Server          int                  `json:"server"`
	IOStats         iostats.Snapshot     `json:"iostats"`
	Lat             metrics.HistSnapshot `json:"latency"`
	P50Us           int64                `json:"p50_us"`
	P95Us           int64                `json:"p95_us"`
	P99Us           int64                `json:"p99_us"`
	Replays         int64                `json:"replays"`
	CacheHits       int64                `json:"loop_cache_hits"`
	CacheMisses     int64                `json:"loop_cache_misses"`
	CacheEvictions  int64                `json:"loop_cache_evictions"`
	CompiledReplays int64                `json:"compiled_replays"`
	Repairing       bool                 `json:"repairing,omitempty"`
	// InFlight is the number of requests in service at the snapshot
	// instant — the live queue-depth signal the cluster health score
	// weighs (DESIGN.md §17).
	InFlight int64 `json:"inflight"`
	// Degraded reports a disk running under an admin degrade factor.
	Degraded bool `json:"degraded,omitempty"`
	// FlightTotal/FlightDropped are the flight recorder's lifetime
	// event count and lapped-before-dump count (0/0 without a recorder).
	FlightTotal   int64 `json:"flight_total,omitempty"`
	FlightDropped int64 `json:"flight_dropped,omitempty"`
}

// StatsSnapshot assembles the live introspection state an AdminStats
// request (and the daemon's debug listener) reports.
func (s *Server) StatsSnapshot() ServerSnapshot {
	snap := ServerSnapshot{Server: s.index}
	if s.Stats != nil {
		snap.IOStats = s.Stats.Snapshot()
	}
	snap.Lat = s.Metrics.Lat()
	p50, p95, p99 := snap.Lat.Quantiles()
	snap.P50Us = p50.Microseconds()
	snap.P95Us = p95.Microseconds()
	snap.P99Us = p99.Microseconds()
	if s.Metrics != nil {
		snap.Replays = s.Metrics.Replays.Value()
	}
	cs := s.LoopCacheStats()
	snap.CacheHits, snap.CacheMisses, snap.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	snap.CompiledReplays = s.CompiledReplays()
	snap.Repairing = s.repairLive.Load()
	snap.InFlight = s.inflight.Load()
	if sc := s.diskScale.Load(); sc != 0 && sc != 100 {
		snap.Degraded = true
	}
	snap.FlightTotal = s.Flight.Total()
	snap.FlightDropped = s.Flight.Dropped()
	return snap
}

// admin serves a fault-administration or introspection request
// (wire.AdminReq).
func (s *Server) admin(env transport.Env, conn transport.Conn, r *wire.AdminReq) ([]byte, error) {
	switch r.Op {
	case wire.AdminStall:
		s.StallFor(env, time.Duration(r.Dur))
		return wire.EncodeIOResp(&wire.IOResp{OK: true}), nil
	case wire.AdminDegrade:
		s.SetDiskScale(r.Factor)
		return wire.EncodeIOResp(&wire.IOResp{OK: true}), nil
	case wire.AdminStats:
		data, err := json.Marshal(s.StatsSnapshot())
		if err != nil {
			return ioErr("stats: %v", err), nil
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true, Size: int64(len(data)), Data: data}), nil
	case wire.AdminFlightRec:
		// NewDump is nil-safe: a server without a recorder answers with
		// an empty dump rather than an error, so sweeps over mixed
		// clusters need no special-casing.
		data, err := flightrec.NewDump(s.index, s.Flight).JSON()
		if err != nil {
			return ioErr("flightrec: %v", err), nil
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true, Size: int64(len(data)), Data: data}), nil
	case wire.AdminCrash:
		// Acknowledge before crashing — the crash severs this connection
		// along with every other one.
		conn.Send(env, wire.EncodeIOResp(&wire.IOResp{OK: true}))
		s.Crash(time.Duration(r.Dur))
		return nil, errors.New("pvfs: crashed by admin request")
	case wire.AdminKill:
		conn.Send(env, wire.EncodeIOResp(&wire.IOResp{OK: true}))
		s.Kill(time.Duration(r.Dur))
		return nil, errors.New("pvfs: killed by admin request")
	default:
		return ioErr("unknown admin op %d", r.Op), nil
	}
}

// repairChunkBytes bounds one repair fetch, so rebuilding a large
// member pulls bounded frames instead of whole objects.
const repairChunkBytes = 256 * 1024

// repairRecvTimeout bounds each wait for a peer's repair response.
const repairRecvTimeout = 2 * time.Second

// replicaList answers a peer's MTReplicaListReq with this member's
// local objects. A member that is itself mid-repair refuses, so a
// rebuild never copies from an incomplete source.
func (s *Server) replicaList() []byte {
	s.mu.Lock()
	if s.repairing {
		s.mu.Unlock()
		return wire.EncodeReplicaListResp(&wire.ReplicaListResp{Err: fmt.Sprintf("server %d repairing", s.index)})
	}
	handles := make([]uint64, 0, len(s.objects))
	for h := range s.objects {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	resp := &wire.ReplicaListResp{OK: true, Pending: s.pendingWrites.Load(),
		Handles: handles, Sizes: make([]int64, len(handles))}
	for i, h := range handles {
		resp.Sizes[i] = s.object(h).Size()
	}
	return wire.EncodeReplicaListResp(resp)
}

// replicaSums answers a peer's MTReplicaSumReq with per-chunk FNV-1a
// checksums of one local object's physical bytes. A rebuilding peer
// diffs consecutive sweeps: only chunks whose checksum changed (or
// were never copied) are re-fetched, so stabilization passes cost
// traffic proportional to churn, not object size.
func (s *Server) replicaSums(r *wire.ReplicaSumReq) []byte {
	s.mu.Lock()
	if s.repairing {
		s.mu.Unlock()
		return wire.EncodeReplicaSumResp(&wire.ReplicaSumResp{Err: fmt.Sprintf("server %d repairing", s.index)})
	}
	st := s.objects[r.Handle]
	s.mu.Unlock()
	resp := &wire.ReplicaSumResp{OK: true}
	if st == nil {
		return wire.EncodeReplicaSumResp(resp)
	}
	size := st.Size()
	buf := make([]byte, repairChunkBytes)
	for off := int64(0); off < size; off += repairChunkBytes {
		n := size - off
		if n > repairChunkBytes {
			n = repairChunkBytes
		}
		if err := st.ReadAt(buf[:n], off); err != nil {
			return wire.EncodeReplicaSumResp(&wire.ReplicaSumResp{Err: fmt.Sprintf("sum read: %v", err)})
		}
		h := fnv.New64a()
		h.Write(buf[:n])
		resp.Sums = append(resp.Sums, h.Sum64())
	}
	return wire.EncodeReplicaSumResp(resp)
}

// replicaFetch serves one bounded piece of a local object's physical
// byte space to a rebuilding peer.
func (s *Server) replicaFetch(r *wire.ReplicaFetchReq) []byte {
	if r.Off < 0 || r.N < 0 || r.N > repairChunkBytes {
		return ioErr("bad repair fetch off=%d n=%d", r.Off, r.N)
	}
	st := s.object(r.Handle)
	n := r.N
	if sz := st.Size(); r.Off+n > sz {
		n = sz - r.Off
		if n < 0 {
			n = 0
		}
	}
	buf := make([]byte, n)
	if err := st.ReadAt(buf, r.Off); err != nil {
		return ioErr("repair read: %v", err)
	}
	return wire.EncodeIOResp(&wire.IOResp{OK: true, Size: n, Data: buf})
}

// stale reports whether a repair goroutine belongs to a dead
// incarnation (the server was wiped again, or closed for good).
func (s *Server) stale(inc uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.incarnation != inc
}

// runRepair rebuilds this member from its first reachable group peer,
// then lifts the repair gate. Sweeps retry until a peer serves a full
// copy (peers may be down or themselves repairing); the sweep cap only
// bounds pathological clusters where no peer ever comes back — the
// member then stays degraded, which reads already tolerate.
func (s *Server) runRepair(env transport.Env, inc uint64) {
	for sweep := 0; sweep < 500; sweep++ {
		if s.stale(inc) {
			return
		}
		for _, addr := range s.ReplicaPeers {
			if s.repairFrom(env, addr, inc) {
				s.mu.Lock()
				if s.incarnation == inc {
					s.repairing = false
					s.written = nil
					s.repairLive.Store(false)
				}
				s.mu.Unlock()
				return
			}
		}
		sleepBoth(env, 2*time.Millisecond)
	}
}

// repairMaxPasses bounds the stabilization loop. Under sustained
// client writes a pass may never see a quiet peer; after this many
// sweeps the member lifts the gate anyway — by then every copied range
// is one the fan-out path is also keeping current, so accepting the
// last sweep narrows the exposure to in-flight pre-restart stragglers.
const repairMaxPasses = 64

// repairFrom copies every object a peer holds onto this member,
// skipping ranges clients wrote since the restart (those are already
// newer than anything the peer can serve), then keeps sweeping until a
// pass finds the peer quiet: no write requests in flight and every
// chunk checksum unchanged since the previous sweep. The loop closes
// the divergence race where a write abandoned on this (then-dead)
// member was still in flight to the peer when an earlier sweep read
// past its range — the late write flips a checksum, and the next sweep
// re-fetches exactly that chunk. Reports whether the copy completed
// and stabilized.
func (s *Server) repairFrom(env transport.Env, addr string, inc uint64) bool {
	conn, err := s.net.Dial(env, addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	prev := make(map[uint64][]uint64)
	for pass := 0; pass < repairMaxPasses; pass++ {
		if s.stale(inc) {
			return false
		}
		list, ok := s.repairList(env, conn)
		if !ok {
			return false
		}
		cur := make(map[uint64][]uint64, len(list.Handles))
		for _, h := range list.Handles {
			sums, ok := s.repairSums(env, conn, h)
			if !ok {
				return false
			}
			cur[h] = sums
		}
		if pass > 0 && list.Pending == 0 && sumsStable(prev, cur) {
			return true
		}
		for _, h := range list.Handles {
			for ci, sum := range cur[h] {
				if old := prev[h]; ci < len(old) && old[ci] == sum {
					continue // copied last sweep and unchanged since
				}
				if s.stale(inc) {
					return false
				}
				if !s.repairChunk(env, conn, h, int64(ci)*repairChunkBytes, inc) {
					return false
				}
			}
		}
		prev = cur
		sleepBoth(env, 2*time.Millisecond)
	}
	return true
}

// repairList asks the repair peer for its object list and in-flight
// write count.
func (s *Server) repairList(env transport.Env, conn transport.Conn) (*wire.ReplicaListResp, bool) {
	if err := conn.Send(env, wire.EncodeReplicaList()); err != nil {
		return nil, false
	}
	msg, err := transport.RecvTimeout(env, conn, repairRecvTimeout)
	if err != nil {
		return nil, false
	}
	_, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return nil, false
	}
	list, ok := v.(*wire.ReplicaListResp)
	if !ok || !list.OK || len(list.Handles) != len(list.Sizes) {
		return nil, false
	}
	return list, true
}

// repairSums asks the repair peer for one object's chunk checksums.
func (s *Server) repairSums(env transport.Env, conn transport.Conn, h uint64) ([]uint64, bool) {
	if err := conn.Send(env, wire.EncodeReplicaSum(&wire.ReplicaSumReq{Handle: h})); err != nil {
		return nil, false
	}
	msg, err := transport.RecvTimeout(env, conn, repairRecvTimeout)
	if err != nil {
		return nil, false
	}
	_, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return nil, false
	}
	resp, ok := v.(*wire.ReplicaSumResp)
	if !ok || !resp.OK {
		return nil, false
	}
	return resp.Sums, true
}

// sumsStable reports whether two consecutive checksum sweeps saw
// identical peer content (same objects, same chunks, same sums).
func sumsStable(prev, cur map[uint64][]uint64) bool {
	if len(prev) != len(cur) {
		return false
	}
	for h, cs := range cur {
		ps, ok := prev[h]
		if !ok || len(ps) != len(cs) {
			return false
		}
		for i := range cs {
			if ps[i] != cs[i] {
				return false
			}
		}
	}
	return true
}

// repairChunk fetches one repair-chunk-sized piece of a peer object
// and applies it locally, skipping ranges clients wrote since the
// restart. Reports false only on transport or store failure (a short
// or empty fetch — the peer's object shrank — is fine).
func (s *Server) repairChunk(env transport.Env, conn transport.Conn, h uint64, off int64, inc uint64) bool {
	if err := conn.Send(env, wire.EncodeReplicaFetch(&wire.ReplicaFetchReq{Handle: h, Off: off, N: repairChunkBytes})); err != nil {
		return false
	}
	msg, err := transport.RecvTimeout(env, conn, repairRecvTimeout)
	if err != nil {
		return false
	}
	_, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return false
	}
	resp, ok := v.(*wire.IOResp)
	if !ok || !resp.OK {
		return false
	}
	if len(resp.Data) == 0 {
		return true // the peer's object shrank; nothing to copy here
	}
	// Apply only the parts no client re-wrote since the restart, under
	// mu so a concurrent write cannot slip between the written-set check
	// and the store write and then be clobbered by stale peer bytes
	// (noteWrite precedes the client's store write, so whichever side
	// takes mu second wins correctly).
	s.mu.Lock()
	if s.closed || s.incarnation != inc {
		s.mu.Unlock()
		return false
	}
	todo := cache.RangeSet{}.Add(off, int64(len(resp.Data)))
	for _, w := range s.written[h] {
		todo = todo.Sub(w.Off, w.N)
	}
	st := s.objects[h]
	if st == nil {
		st = s.NewStore(h)
		s.objects[h] = st
	}
	var copied int64
	var werr error
	for _, reg := range todo {
		if werr = st.WriteAt(resp.Data[reg.Off-off:reg.End()-off], reg.Off); werr != nil {
			break
		}
		copied += reg.N
	}
	s.mu.Unlock()
	if s.Stats != nil && copied > 0 {
		s.Stats.AddRepair(copied)
	}
	return werr == nil
}

// streamedWrite unwraps a streamed write request and dispatches it with
// a stream-backed payload source. The uint8 is the flight-recorder
// flag set (FlagReplay when the inner request was answered from the
// dedup cache).
func (s *Server) streamedWrite(env transport.Env, conn transport.Conn, h *wire.WriteStreamHdr, sp *trace.Span) ([]byte, uint8, error) {
	seg := int64(h.SegBytes)
	nseg := int64(0)
	if seg > 0 {
		nseg = (h.Total + seg - 1) / seg
	}
	if h.Total <= 0 || seg <= 0 || h.Window <= 0 || h.Total <= seg ||
		h.StartSeg < 0 || h.StartSeg >= nseg {
		// The framing itself is broken; there is no way to know how many
		// chunks follow, so the connection cannot be salvaged.
		return nil, 0, fmt.Errorf("pvfs: bad stream header total=%d seg=%d window=%d start=%d",
			h.Total, h.SegBytes, h.Window, h.StartSeg)
	}
	// A resumed retry (StartSeg > 0) skips the payload prefix the client
	// knows is already durable; the region walk advances past those bytes
	// without touching the disk.
	src := &writeSrc{
		skip: h.StartSeg * seg,
		stream: &srvStream{
			conn:  conn,
			total: h.Total, seg: seg, window: int64(h.Window),
			nseg: nseg, next: h.StartSeg,
			gate: s.stallGate,
		},
	}
	t, v, err := wire.DecodeMsg(h.Inner)
	if err != nil {
		resp, err := s.reqFail(env, src, 0, "bad request: %v", err)
		return resp, 0, err
	}
	var tag wire.ReqTag
	switch r := v.(type) {
	case *wire.ContigReq:
		tag = r.Tag
	case *wire.ListIOReq:
		tag = r.Tag
	case *wire.DtypeReq:
		tag = r.Tag
	}
	// The stream header itself is untagged; the client op's span ID
	// arrives on the inner request, so re-parent now that it is known.
	sp.SetParent(trace.SpanID(tag.Span))
	if cached, ok := s.replay(tag); ok {
		// Already executed: consume the replayed stream (keeping the
		// connection in protocol sync) and answer from the record.
		s.Metrics.addReplay()
		sp.SetAttr("replay", 1)
		if err := src.drain(env); err != nil {
			return nil, 0, err
		}
		return cached, flightrec.FlagReplay, nil
	}
	var resp []byte
	switch t {
	case wire.MTWriteContigReq:
		resp, err = s.contig(env, conn, v.(*wire.ContigReq), src, sp)
	case wire.MTWriteListReq:
		resp, err = s.list(env, conn, v.(*wire.ListIOReq), src, sp)
	case wire.MTWriteDtypeReq:
		resp, err = s.dtype(env, conn, v.(*wire.DtypeReq), src, sp)
	default:
		resp, err := s.reqFail(env, src, 0, "unexpected streamed message %s", t)
		return resp, 0, err
	}
	s.remember(tag, resp)
	return resp, 0, err
}

// reqFail answers a failed request with an error IOResp, first draining
// a streamed payload so the connection stays in protocol sync.
func (s *Server) reqFail(env transport.Env, src *writeSrc, seq uint64, format string, args ...any) ([]byte, error) {
	if src != nil {
		if err := src.drain(env); err != nil {
			return nil, err
		}
	}
	return ioErrSeq(seq, format, args...), nil
}

// regionsFn enumerates one request's logical regions, in request order.
type regionsFn func(emit func(off, n int64) error) error

// applyWrite is the common write path: it walks the request's regions,
// batching payload runs (inline or streamed) into the disk scheduler,
// which dispatches them in sorted, coalesced order and charges the
// seek-aware disk cost. An inline payload dispatches as one batch; a
// streamed one dispatches a batch at every flow-control segment
// boundary, before the segment buffer is reused.
func (s *Server) applyWrite(env transport.Env, lay striping.Layout, idx int, handle uint64, st storage.Store, regions regionsFn, src *writeSrc, seq uint64, sp *trace.Span) ([]byte, error) {
	sd := s.newSched(true)
	defer putSched(sd)
	if src.stream != nil {
		src.flush = func(env transport.Env) error { return s.flushTraced(env, sd, st, sp) }
	}
	repairing := s.repairLive.Load()
	var nPieces int64
	err := regions(func(off, n int64) error {
		var inner error
		lay.ServerPieces(idx, off, n, func(phys, _, ln int64) bool {
			if repairing {
				s.noteWrite(handle, phys, ln)
			}
			for rem := ln; rem > 0; {
				b, skipped, e := src.next(env, rem)
				if e != nil {
					inner = e
					return false
				}
				if skipped > 0 {
					// Resumed-stream prefix: already on disk, advance past.
					phys += skipped
					rem -= skipped
					continue
				}
				sd.add(phys, int64(len(b)), 0, b)
				phys += int64(len(b))
				rem -= int64(len(b))
			}
			nPieces++
			return true
		})
		return inner
	})
	if err != nil {
		// Keep the bytes the request's regions did cover: dispatch what
		// is buffered before draining and answering.
		s.flushTraced(env, sd, st, sp)
		return s.reqFail(env, src, seq, "%v", err)
	}
	env.Compute(s.cost.PerRegionServer * time.Duration(nPieces))
	if err := s.flushTraced(env, sd, st, sp); err != nil {
		return s.reqFail(env, src, seq, "%v", err)
	}
	if n := src.leftover(); n != 0 {
		return s.reqFail(env, src, seq, "excess write payload (%d bytes)", n)
	}
	return wire.EncodeIOResp(&wire.IOResp{Seq: seq, OK: true}), nil
}

// flushTraced dispatches the buffered write runs, under a disk:flush
// span when tracing is on and the batch is non-empty (empty flushes add
// no trace noise).
func (s *Server) flushTraced(env transport.Env, sd *diskSched, st storage.Store, sp *trace.Span) error {
	if sp == nil || len(sd.spans) == 0 {
		return sd.flushWrites(env, st)
	}
	fsp := s.Tracer.Begin(env, s.spanTrack, "disk:flush", sp.SID())
	fsp.SetAttr("runs", int64(len(sd.spans)))
	err := sd.flushWrites(env, st)
	fsp.End(env)
	return err
}

// readReply is the common read path: one walk collects this server's
// physical runs and the byte total, then the response is either built
// inline in a single pre-sized frame or streamed in flow-controlled
// segments that overlap disk and network.
func (s *Server) readReply(env transport.Env, conn transport.Conn, lay striping.Layout, idx int, st storage.Store, regions regionsFn, seq uint64, sp *trace.Span) ([]byte, error) {
	sd := s.newSched(false)
	defer putSched(sd)
	var total, nPieces int64
	err := regions(func(off, n int64) error {
		lay.ServerPieces(idx, off, n, func(phys, _, ln int64) bool {
			sd.add(phys, ln, total, nil)
			total += ln
			nPieces++
			return true
		})
		return nil
	})
	if err != nil {
		return ioErrSeq(seq, "%v", err), nil
	}
	env.Compute(s.cost.PerRegionServer * time.Duration(nPieces))
	seg, window := streamParams(s.StreamChunkBytes, s.StreamWindow)
	if s.DisableStreaming || total <= seg {
		// Build the OK response in place: one allocation sized from the
		// known total, with storage reads landing directly in the frame.
		// A zero-byte request dispatches no operation and charges no
		// disk time.
		out := wire.AppendIORespOK(nil, seq, int(total))
		h := len(out)
		out = append(out, make([]byte, total)...)
		if sp == nil {
			if err := sd.runReads(env, st, out[h:]); err != nil {
				return ioErrSeq(seq, "%v", err), nil
			}
			return out, nil
		}
		dsp := s.Tracer.Begin(env, s.spanTrack, "disk:read", sp.SID())
		dsp.SetAttr("bytes", total)
		err = sd.runReads(env, st, out[h:])
		dsp.End(env)
		if err != nil {
			return ioErrSeq(seq, "%v", err), nil
		}
		return out, nil
	}
	return nil, s.streamRead(env, conn, st, sd, total, seg, window, seq, sp)
}

// contig serves a contiguous read (src nil) or write.
func (s *Server) contig(env transport.Env, conn transport.Conn, r *wire.ContigReq, src *writeSrc, sp *trace.Span) ([]byte, error) {
	seq := r.Tag.Seq
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return s.reqFail(env, src, seq, "%v", err)
	}
	if r.Off < 0 || r.N < 0 {
		return s.reqFail(env, src, seq, "bad range off=%d n=%d", r.Off, r.N)
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	regions := func(emit func(off, n int64) error) error {
		return emit(r.Off, r.N)
	}
	if src != nil {
		return s.applyWrite(env, lay, idx, r.Layout.Handle, st, regions, src, seq, sp)
	}
	return s.readReply(env, conn, lay, idx, st, regions, seq, sp)
}

// list serves a list I/O read (src nil) or write.
func (s *Server) list(env transport.Env, conn transport.Conn, r *wire.ListIOReq, src *writeSrc, sp *trace.Span) ([]byte, error) {
	seq := r.Tag.Seq
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return s.reqFail(env, src, seq, "%v", err)
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	regions := func(emit func(off, n int64) error) error {
		for _, reg := range r.Regions {
			if reg.Off < 0 || reg.Len < 0 {
				return fmt.Errorf("bad region %+v", reg)
			}
			if err := emit(reg.Off, reg.Len); err != nil {
				return err
			}
		}
		return nil
	}
	if src != nil {
		return s.applyWrite(env, lay, idx, r.Layout.Handle, st, regions, src, seq, sp)
	}
	return s.readReply(env, conn, lay, idx, st, regions, seq, sp)
}

// loopEntry is one memoized view: the decoded loop, its compiled run
// program (nil when flatten.Compile declined), and the second-chance
// reference bit.
type loopEntry struct {
	loop *dataloop.Loop
	prog *flatten.Program
	ref  bool
}

// loopCacheCap bounds the number of memoized views per server.
const loopCacheCap = 1024

// cachedLoop decodes a dataloop, memoizing decode+compile by wire
// bytes, and reports whether it was served from the cache.
func (s *Server) cachedLoop(enc []byte) (*dataloop.Loop, *flatten.Program, bool, error) {
	if s.DisableLoopCache {
		l, _, err := dataloop.Decode(enc)
		return l, nil, false, err
	}
	s.cacheMu.Lock()
	// The compiler elides the []byte->string conversion for a direct map
	// lookup, so the hit path allocates nothing.
	if e, ok := s.loopCache[string(enc)]; ok {
		s.cacheHits++
		e.ref = true
		s.cacheMu.Unlock()
		return e.loop, e.prog, true, nil
	}
	s.cacheMu.Unlock()
	l, _, err := dataloop.Decode(enc)
	if err != nil {
		return nil, nil, false, err
	}
	e := &loopEntry{loop: l, prog: flatten.Compile(l)}
	key := string(enc)
	s.cacheMu.Lock()
	if s.loopCache == nil {
		s.loopCache = make(map[string]*loopEntry)
	}
	if len(s.loopCache) >= loopCacheCap {
		s.evictLocked()
	}
	s.loopCache[key] = e
	s.cacheMisses++
	s.cacheMu.Unlock()
	return l, e.prog, false, nil
}

// evictLocked frees one slot with a second-chance sweep: entries hit
// since the last sweep get their reference bit cleared and survive; the
// first unreferenced entry found is evicted. Go's randomized map
// iteration stands in for the clock hand. If every entry had its bit
// set, the sweep clears them all and the first visited is evicted.
func (s *Server) evictLocked() {
	victim := ""
	for k, e := range s.loopCache {
		if !e.ref {
			victim = k
			break
		}
		e.ref = false
		if victim == "" {
			victim = k // fallback if everyone had a second chance
		}
	}
	if victim != "" {
		delete(s.loopCache, victim)
		s.cacheEvictions++
	}
}

// LoopCacheStats are the counters of the dataloop/compiled-program
// cache.
type LoopCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// LoopCacheStats reports the cache counters.
func (s *Server) LoopCacheStats() LoopCacheStats {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return LoopCacheStats{Hits: s.cacheHits, Misses: s.cacheMisses, Evictions: s.cacheEvictions}
}

// CompiledReplays reports how many dtype expansions ran on a compiled
// program instead of the interpreted walk.
func (s *Server) CompiledReplays() int64 { return s.compiledReplays.Load() }

// dtype serves a datatype read (src nil) or write: the server itself
// expands the dataloop into regions and extracts its local pieces.
func (s *Server) dtype(env transport.Env, conn transport.Conn, r *wire.DtypeReq, src *writeSrc, sp *trace.Span) ([]byte, error) {
	seq := r.Tag.Seq
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return s.reqFail(env, src, seq, "%v", err)
	}
	loop, prog, hit, err := s.cachedLoop(r.Loop)
	if err != nil {
		return s.reqFail(env, src, seq, "bad dataloop: %v", err)
	}
	if r.Count < 0 || r.Pos < 0 || r.NBytes < 0 || r.Pos+r.NBytes > r.Count*loop.Size {
		return s.reqFail(env, src, seq, "bad dtype range count=%d pos=%d n=%d", r.Count, r.Pos, r.NBytes)
	}
	if !hit {
		env.Compute(s.cost.DataloopDecode)
	} else {
		sp.SetAttr("loop_cache_hit", 1)
	}
	// Compiled replay matches the coalescing walk byte-for-byte; the
	// uncoalesced ablation and the compiled-off ablation both stay on
	// the interpreter.
	if r.NoCoalesce || s.DisableCompiledLoops {
		prog = nil
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	regions := func(emit func(off, n int64) error) error {
		if prog != nil {
			s.compiledReplays.Add(1)
			return prog.Replay(r.Count, r.Disp, r.Pos, r.NBytes, func(off, n int64) error {
				if off < 0 {
					return fmt.Errorf("dataloop region at negative offset %d", off)
				}
				return emit(off, n)
			})
		}
		it := flatten.NewIterAt(loop, r.Count, r.Disp, r.Pos, r.NBytes, !r.NoCoalesce)
		for {
			reg, ok := it.Next()
			if !ok {
				return nil
			}
			if reg.Off < 0 {
				return fmt.Errorf("dataloop region at negative offset %d", reg.Off)
			}
			if err := emit(reg.Off, reg.Len); err != nil {
				return err
			}
		}
	}
	if src != nil {
		return s.applyWrite(env, lay, idx, r.Layout.Handle, st, regions, src, seq, sp)
	}
	return s.readReply(env, conn, lay, idx, st, regions, seq, sp)
}
