package pvfs

import (
	"fmt"
	"sync"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/flatten"
	"dtio/internal/storage"
	"dtio/internal/striping"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// Server is one I/O server: a map of handle -> local object plus the
// request processing that turns contiguous, list, and datatype requests
// into local reads and writes.
type Server struct {
	net   transport.Network
	addr  string
	index int // this server's position in the cluster's server list
	cost  CostModel
	// NewStore creates backing storage for a new object (default:
	// storage.NewMem).
	NewStore func(handle uint64) storage.Store

	mu      sync.Mutex
	objects map[uint64]storage.Store
	lis     transport.Listener
	closed  bool

	// loopCache memoizes decoded dataloops by their wire bytes: the
	// datatype-caching extension the paper's §5 proposes ("datatype
	// caching ... could boost the performance of PVFS datatype I/O by
	// further reducing I/O request overhead"). Repeated accesses with
	// the same view skip the decode cost. Disable with DisableLoopCache.
	DisableLoopCache bool
	cacheMu          sync.Mutex
	loopCache        map[string]*dataloop.Loop
	cacheHits        int64
	cacheMisses      int64
}

// NewServer creates I/O server number index listening at addr.
func NewServer(net transport.Network, addr string, index int, cost CostModel) *Server {
	return &Server{
		net:      net,
		addr:     addr,
		index:    index,
		cost:     cost,
		NewStore: func(uint64) storage.Store { return storage.NewMem() },
		objects:  make(map[uint64]storage.Store),
	}
}

// Serve listens and handles connections until Close.
func (s *Server) Serve(env transport.Env) error {
	lis, err := s.net.Listen(s.addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lis = lis
	closed := s.closed
	s.mu.Unlock()
	if closed {
		lis.Close()
		return nil
	}
	for {
		conn, err := lis.Accept(env)
		if err != nil {
			return nil
		}
		c := conn
		env.Go("io-handler", func(env transport.Env) {
			defer c.Close()
			for {
				msg, err := c.Recv(env)
				if err != nil {
					return
				}
				resp := s.handle(env, msg)
				if err := c.Send(env, resp); err != nil {
					return
				}
			}
		})
	}
}

// Close stops the listener.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
}

// object returns (creating on demand) the local store for a handle.
func (s *Server) object(handle uint64) storage.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.objects[handle]
	if !ok {
		st = s.NewStore(handle)
		s.objects[handle] = st
	}
	return st
}

func ioErr(format string, args ...any) []byte {
	return wire.EncodeIOResp(&wire.IOResp{Err: fmt.Sprintf(format, args...)})
}

// layoutOf validates and converts the wire layout.
func (s *Server) layoutOf(l wire.FileLayout) (striping.Layout, error) {
	lay := striping.Layout{StripSize: l.StripSize, NServers: int(l.NServers), Base: int(l.Base)}
	if err := lay.Validate(); err != nil {
		return lay, err
	}
	// A file's server list is cluster servers 0..NServers-1, so a
	// participating server's index within the file equals its cluster
	// index.
	if int(l.ServerIdx) != s.index || s.index >= int(l.NServers) {
		return lay, fmt.Errorf("request for file server %d/%d arrived at cluster server %d",
			l.ServerIdx, l.NServers, s.index)
	}
	return lay, nil
}

func (s *Server) handle(env transport.Env, msg []byte) []byte {
	t, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return ioErr("bad request: %v", err)
	}
	env.Compute(s.cost.RequestOverhead)
	switch t {
	case wire.MTReadContigReq, wire.MTWriteContigReq:
		r := v.(*wire.ContigReq)
		return s.contig(env, r, t == wire.MTWriteContigReq)
	case wire.MTReadListReq, wire.MTWriteListReq:
		r := v.(*wire.ListIOReq)
		return s.list(env, r, t == wire.MTWriteListReq)
	case wire.MTReadDtypeReq, wire.MTWriteDtypeReq:
		r := v.(*wire.DtypeReq)
		return s.dtype(env, r, t == wire.MTWriteDtypeReq)
	case wire.MTLocalSizeReq:
		r := v.(*wire.LocalSizeReq)
		if _, err := s.layoutOf(r.Layout); err != nil {
			return ioErr("%v", err)
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true, Size: s.object(r.Layout.Handle).Size()})
	case wire.MTTruncateReq:
		r := v.(*wire.TruncateReq)
		lay, err := s.layoutOf(r.Layout)
		if err != nil {
			return ioErr("%v", err)
		}
		if r.Size < 0 {
			return ioErr("negative size %d", r.Size)
		}
		local := lay.LocalLen(int(r.Layout.ServerIdx), r.Size)
		if err := s.object(r.Layout.Handle).Truncate(local); err != nil {
			return ioErr("truncate: %v", err)
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true})
	case wire.MTRemoveObjReq:
		r := v.(*wire.RemoveObjReq)
		s.mu.Lock()
		delete(s.objects, r.Layout.Handle)
		s.mu.Unlock()
		return wire.EncodeIOResp(&wire.IOResp{OK: true})
	default:
		return ioErr("unexpected message %s", t)
	}
}

// pieces is the common server-side region walk: it yields this server's
// (physical, length) runs for each requested logical region, in request
// order, and accounts CPU + disk costs.
type pieceFn func(phys, n int64) error

func (s *Server) runPieces(env transport.Env, lay striping.Layout, idx int, write bool, regions func(emit func(off, n int64) error) error, fn pieceFn) (nPieces int64, nBytes int64, err error) {
	err = regions(func(off, n int64) error {
		var inner error
		lay.ServerPieces(idx, off, n, func(phys, _, ln int64) bool {
			if e := fn(phys, ln); e != nil {
				inner = e
				return false
			}
			nPieces++
			nBytes += ln
			return true
		})
		return inner
	})
	if err != nil {
		return 0, 0, err
	}
	env.Compute(s.cost.PerRegionServer * time.Duration(nPieces))
	if nBytes > 0 || s.cost.DiskPerOp > 0 {
		env.DiskUse(s.cost.diskTime(nBytes, write))
	}
	return nPieces, nBytes, nil
}

// contig serves a contiguous read/write.
func (s *Server) contig(env transport.Env, r *wire.ContigReq, write bool) []byte {
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return ioErr("%v", err)
	}
	if r.Off < 0 || r.N < 0 {
		return ioErr("bad range off=%d n=%d", r.Off, r.N)
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	if write {
		data := r.Data
		_, _, err := s.runPieces(env, lay, idx, true, func(emit func(off, n int64) error) error {
			return emit(r.Off, r.N)
		}, func(phys, n int64) error {
			if int64(len(data)) < n {
				return fmt.Errorf("short write payload")
			}
			if err := st.WriteAt(data[:n], phys); err != nil {
				return err
			}
			data = data[n:]
			return nil
		})
		if err != nil {
			return ioErr("%v", err)
		}
		if len(data) != 0 {
			return ioErr("excess write payload (%d bytes)", len(data))
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true})
	}
	var out []byte
	_, _, err = s.runPieces(env, lay, idx, false, func(emit func(off, n int64) error) error {
		return emit(r.Off, r.N)
	}, func(phys, n int64) error {
		at := len(out)
		out = append(out, make([]byte, n)...)
		return st.ReadAt(out[at:], phys)
	})
	if err != nil {
		return ioErr("%v", err)
	}
	return wire.EncodeIOResp(&wire.IOResp{OK: true, Data: out})
}

// list serves a list I/O read/write.
func (s *Server) list(env transport.Env, r *wire.ListIOReq, write bool) []byte {
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return ioErr("%v", err)
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	regions := func(emit func(off, n int64) error) error {
		for _, reg := range r.Regions {
			if reg.Off < 0 || reg.Len < 0 {
				return fmt.Errorf("bad region %+v", reg)
			}
			if err := emit(reg.Off, reg.Len); err != nil {
				return err
			}
		}
		return nil
	}
	if write {
		data := r.Data
		_, _, err := s.runPieces(env, lay, idx, true, regions, func(phys, n int64) error {
			if int64(len(data)) < n {
				return fmt.Errorf("short write payload")
			}
			if err := st.WriteAt(data[:n], phys); err != nil {
				return err
			}
			data = data[n:]
			return nil
		})
		if err != nil {
			return ioErr("%v", err)
		}
		if len(data) != 0 {
			return ioErr("excess write payload (%d bytes)", len(data))
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true})
	}
	var out []byte
	_, _, err = s.runPieces(env, lay, idx, false, regions, func(phys, n int64) error {
		at := len(out)
		out = append(out, make([]byte, n)...)
		return st.ReadAt(out[at:], phys)
	})
	if err != nil {
		return ioErr("%v", err)
	}
	return wire.EncodeIOResp(&wire.IOResp{OK: true, Data: out})
}

// cachedLoop decodes a dataloop, memoizing by wire bytes, and reports
// whether the decode was served from the cache.
func (s *Server) cachedLoop(enc []byte) (*dataloop.Loop, bool, error) {
	if s.DisableLoopCache {
		l, _, err := dataloop.Decode(enc)
		return l, false, err
	}
	key := string(enc)
	s.cacheMu.Lock()
	if s.loopCache == nil {
		s.loopCache = make(map[string]*dataloop.Loop)
	}
	if l, ok := s.loopCache[key]; ok {
		s.cacheHits++
		s.cacheMu.Unlock()
		return l, true, nil
	}
	s.cacheMu.Unlock()
	l, _, err := dataloop.Decode(enc)
	if err != nil {
		return nil, false, err
	}
	s.cacheMu.Lock()
	// Bound the cache; views are few, so plain reset on overflow is fine.
	if len(s.loopCache) >= 1024 {
		s.loopCache = make(map[string]*dataloop.Loop)
	}
	s.loopCache[key] = l
	s.cacheMisses++
	s.cacheMu.Unlock()
	return l, false, nil
}

// LoopCacheStats reports (hits, misses) of the dataloop cache.
func (s *Server) LoopCacheStats() (hits, misses int64) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.cacheHits, s.cacheMisses
}

// dtype serves a datatype read/write: the server itself expands the
// dataloop into regions and extracts its local pieces.
func (s *Server) dtype(env transport.Env, r *wire.DtypeReq, write bool) []byte {
	lay, err := s.layoutOf(r.Layout)
	if err != nil {
		return ioErr("%v", err)
	}
	loop, hit, err := s.cachedLoop(r.Loop)
	if err != nil {
		return ioErr("bad dataloop: %v", err)
	}
	if r.Count < 0 || r.Pos < 0 || r.NBytes < 0 || r.Pos+r.NBytes > r.Count*loop.Size {
		return ioErr("bad dtype range count=%d pos=%d n=%d", r.Count, r.Pos, r.NBytes)
	}
	if !hit {
		env.Compute(s.cost.DataloopDecode)
	}
	idx := int(r.Layout.ServerIdx)
	st := s.object(r.Layout.Handle)
	regions := func(emit func(off, n int64) error) error {
		it := flatten.NewIterAt(loop, r.Count, r.Disp, r.Pos, r.NBytes, !r.NoCoalesce)
		for {
			reg, ok := it.Next()
			if !ok {
				return nil
			}
			if reg.Off < 0 {
				return fmt.Errorf("dataloop region at negative offset %d", reg.Off)
			}
			if err := emit(reg.Off, reg.Len); err != nil {
				return err
			}
		}
	}
	if write {
		data := r.Data
		_, _, err := s.runPieces(env, lay, idx, true, regions, func(phys, n int64) error {
			if int64(len(data)) < n {
				return fmt.Errorf("short write payload")
			}
			if err := st.WriteAt(data[:n], phys); err != nil {
				return err
			}
			data = data[n:]
			return nil
		})
		if err != nil {
			return ioErr("%v", err)
		}
		if len(data) != 0 {
			return ioErr("excess write payload (%d bytes)", len(data))
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true})
	}
	var out []byte
	_, _, err = s.runPieces(env, lay, idx, false, regions, func(phys, n int64) error {
		at := len(out)
		out = append(out, make([]byte, n)...)
		return st.ReadAt(out[at:], phys)
	})
	if err != nil {
		return ioErr("%v", err)
	}
	return wire.EncodeIOResp(&wire.IOResp{OK: true, Data: out})
}
