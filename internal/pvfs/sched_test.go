package pvfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dtio/internal/iostats"
	"dtio/internal/storage"
	"dtio/internal/transport"
)

func testSched(write bool, gap int64, st *iostats.Stats) *diskSched {
	return &diskSched{
		cost:  DefaultCostModel(),
		stats: st,
		write: write,
		gap:   gap,
	}
}

// opsOf extracts the (off, n) of each dispatched op of a plan.
func opsOf(d *diskSched, p segPlan) [][2]int64 {
	var out [][2]int64
	for _, op := range d.ops[p.opsFrom:p.opsTo] {
		out = append(out, [2]int64{op.off, op.n})
	}
	return out
}

func TestPlanBatchElevatorOrderAndAdjacentMerge(t *testing.T) {
	d := testSched(true, 0, nil)
	// Arrival order deliberately scrambled; runs at 100..200, 300..350,
	// 200..300 are adjacent once sorted.
	d.add(300, 50, 0, nil)
	d.add(100, 100, 0, nil)
	d.add(200, 100, 0, nil)
	p := d.planBatch(d.spans)
	want := [][2]int64{{100, 250}}
	if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
}

func TestPlanBatchWriteGapDoesNotMerge(t *testing.T) {
	d := testSched(true, 64*1024, nil)
	d.add(0, 100, 0, nil)
	d.add(200, 100, 0, nil) // 100-byte hole: writes must not over-write it
	p := d.planBatch(d.spans)
	want := [][2]int64{{0, 100}, {200, 100}}
	if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
}

func TestPlanBatchOverlappingWritesKeepArrivalOrder(t *testing.T) {
	d := testSched(true, 0, nil)
	// Two runs touching byte 150: last writer (arrival order) must win,
	// so the batch may not be reordered or merged.
	d.add(150, 100, 0, nil)
	d.add(100, 100, 0, nil)
	p := d.planBatch(d.spans)
	want := [][2]int64{{150, 100}, {100, 100}}
	if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ops = %v, want %v (arrival order)", got, want)
	}
}

func TestPlanBatchReadGapMerge(t *testing.T) {
	for _, tc := range []struct {
		gap  int64
		want [][2]int64
	}{
		// Threshold covers the 1000- and 900-byte holes: one op
		// over-reads them all.
		{1024, [][2]int64{{0, 2200}}},
		// Threshold below the holes: three ops.
		{512, [][2]int64{{0, 100}, {1100, 100}, {2100, 100}}},
		// Adjacency only.
		{0, [][2]int64{{0, 100}, {1100, 100}, {2100, 100}}},
	} {
		d := testSched(false, tc.gap, nil)
		d.add(2100, 100, 200, nil)
		d.add(0, 100, 0, nil)
		d.add(1100, 100, 100, nil)
		p := d.planBatch(d.spans)
		if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Fatalf("gap=%d: ops = %v, want %v", tc.gap, got, tc.want)
		}
	}
}

func TestPlanBatchOverlappingReadsMerge(t *testing.T) {
	d := testSched(false, 0, nil)
	d.add(0, 100, 0, nil)
	d.add(50, 100, 100, nil) // overlaps the first run
	p := d.planBatch(d.spans)
	want := [][2]int64{{0, 150}}
	if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
}

func TestSchedDropsZeroLengthRuns(t *testing.T) {
	var st iostats.Stats
	d := testSched(false, 0, &st)
	d.add(0, 0, 0, nil)
	d.add(500, 0, 0, nil)
	if len(d.spans) != 0 {
		t.Fatalf("zero-length runs were recorded: %v", d.spans)
	}
	env := transport.NewRealEnv()
	if err := d.flushWrites(env, nil); err != nil {
		t.Fatal(err)
	}
	if s := st.Snapshot(); s.DiskOps != 0 || s.DiskOpsMerged != 0 {
		t.Fatalf("zero-byte request charged the disk: %+v", s)
	}
}

func TestChargeContinuationAndSeek(t *testing.T) {
	var st iostats.Stats
	d := testSched(false, 0, &st)
	cm := d.cost

	// Batch 1: one op at [0, 100).
	d.add(0, 100, 0, nil)
	p1 := d.planBatch(d.spans)
	if want := cm.DiskPerOp + cm.diskXfer(100, false); p1.cost != want {
		t.Fatalf("first op cost = %v, want %v", p1.cost, want)
	}
	d.spans = d.spans[:0]

	// Batch 2 continues exactly at the head: no positioning charge, not
	// counted as a new dispatched op.
	d.add(100, 50, 100, nil)
	p2 := d.planBatch(d.spans)
	if want := cm.diskXfer(50, false); p2.cost != want {
		t.Fatalf("continuation cost = %v, want %v (transfer only)", p2.cost, want)
	}
	d.spans = d.spans[:0]

	// Batch 3 jumps 1 MiB: per-op charge plus one DiskSeekPerMB.
	d.add(150+1<<20, 10, 150, nil)
	p3 := d.planBatch(d.spans)
	if want := cm.DiskPerOp + cm.diskSeek(1<<20) + cm.diskXfer(10, false); p3.cost != want {
		t.Fatalf("seek cost = %v, want %v", p3.cost, want)
	}
	if cm.diskSeek(1<<20) != cm.DiskSeekPerMB {
		t.Fatalf("diskSeek(1MiB) = %v, want %v", cm.diskSeek(1<<20), cm.DiskSeekPerMB)
	}

	s := st.Snapshot()
	if s.DiskOps != 3 || s.DiskOpsMerged != 2 {
		t.Fatalf("ops in/out = %d/%d, want 3/2 (continuation is free)", s.DiskOps, s.DiskOpsMerged)
	}
	if s.SeekBytes != 1<<20 {
		t.Fatalf("seek bytes = %d, want %d", s.SeekBytes, int64(1)<<20)
	}
}

func TestChargeSeekCap(t *testing.T) {
	cm := DefaultCostModel()
	if got := cm.diskSeek(100 << 20); got != cm.DiskSeekMax {
		t.Fatalf("diskSeek(100MiB) = %v, want cap %v", got, cm.DiskSeekMax)
	}
}

func TestNoSortDispatchesArrivalOrderUncoalesced(t *testing.T) {
	d := testSched(false, 64*1024, nil)
	d.noSort = true
	d.add(200, 100, 100, nil)
	d.add(0, 100, 0, nil)
	d.add(300, 100, 200, nil) // adjacent to the first run, still separate
	p := d.planBatch(d.spans)
	want := [][2]int64{{200, 100}, {0, 100}, {300, 100}}
	if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ops = %v, want %v (arrival order)", got, want)
	}
}

func TestPlanStreamSplitsAtSegmentBoundaries(t *testing.T) {
	var st iostats.Stats
	d := testSched(false, 0, &st)
	// 250 payload bytes in two runs, segment size 100: the first run
	// straddles the first boundary, the second starts mid-segment.
	d.add(1000, 150, 0, nil)
	d.add(5000, 100, 150, nil)
	segs := d.planStream(250, 100)
	if len(segs) != 3 {
		t.Fatalf("got %d segment plans, want 3", len(segs))
	}
	want := [][][2]int64{
		{{1000, 100}},
		{{1100, 50}, {5000, 50}},
		{{5050, 50}},
	}
	for k, p := range segs {
		if got := opsOf(d, p); fmt.Sprint(got) != fmt.Sprint(want[k]) {
			t.Fatalf("segment %d ops = %v, want %v", k, got, want[k])
		}
	}
	// Segment boundaries split the runs into 4 sub-runs, but only two
	// operations pay a positioning charge (offsets 1000 and 5000): the
	// head carries across batches, so the boundary splits continue free.
	if s := st.Snapshot(); s.DiskOps != 4 || s.DiskOpsMerged != 2 {
		t.Fatalf("ops in/out = %d/%d, want 4/2", s.DiskOps, s.DiskOpsMerged)
	}
	// Segment 2 is a pure continuation of segment 1's last op.
	if want := d.cost.diskXfer(50, false); d.segs[2].cost != want {
		t.Fatalf("segment 2 cost = %v, want transfer-only %v", d.segs[2].cost, want)
	}
}

// TestSchedRoundTripVariants reproduces the same strided pattern under
// every scheduler configuration the benchmarks sweep and checks the
// bytes are identical in all of them.
func TestSchedRoundTripVariants(t *testing.T) {
	variants := []struct {
		name string
		tune func(*Server)
	}{
		{"nosched", func(s *Server) { s.DisableDiskSched = true }},
		{"gap0", func(s *Server) { s.SieveGapBytes = 0 }},
		{"gap4k", func(s *Server) { s.SieveGapBytes = 4096 }},
		{"gap512k", func(s *Server) { s.SieveGapBytes = 512 * 1024 }},
		{"novec", func(s *Server) { s.DisableVectoredIO = true }},
		{"novec-gap4k", func(s *Server) { s.DisableVectoredIO = true; s.SieveGapBytes = 4096 }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			_, c := startStreamCluster(t, 3, 1024, 2, v.tune)
			env := transport.NewRealEnv()
			f, err := c.Create(env, "v.dat", 512, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Strided regions with sub-strip pieces and holes smaller and
			// larger than the 4K threshold.
			var fileRegions []Region
			total := 0
			for i := 0; i < 40; i++ {
				ln := 100 + i*7%300
				fileRegions = append(fileRegions, Region{Off: int64(i)*900 + int64(i%3), Len: int64(ln)})
				total += ln
			}
			mem := patterned(total)
			memRegions := []Region{{Off: 0, Len: int64(total)}}
			if err := f.WriteList(env, fileRegions, memRegions, mem); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, total)
			if err := f.ReadList(env, fileRegions, memRegions, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, mem) {
				t.Fatal("list round trip corrupted")
			}
			// Overwrite a contiguous range crossing all servers and re-read.
			blob := patterned(7000)
			if err := f.WriteContig(env, 200, blob); err != nil {
				t.Fatal(err)
			}
			got2 := make([]byte, len(blob))
			if err := f.ReadContig(env, 200, got2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got2, blob) {
				t.Fatal("contig round trip corrupted")
			}
		})
	}
}

// TestVectoredBatchByteIdentity executes the same coalesced plans with
// vectored dispatch on and off against real stores and checks the
// bytes agree, including sieve-gap scatters and the overlapping-read
// fallback, along with the vectored-dispatch counter.
func TestVectoredBatchByteIdentity(t *testing.T) {
	env := transport.NewRealEnv()
	// Writes: strictly adjacent runs coalesce into one op; vectored
	// dispatch gathers the payload slices, scalar stages through scratch.
	payload := patterned(300)
	runWrites := func(vec bool, st storage.Store) int64 {
		var is iostats.Stats
		d := testSched(true, 0, &is)
		d.vec = vec
		d.add(1000, 100, 0, payload[0:100])
		d.add(1100, 100, 100, payload[100:200])
		d.add(1200, 100, 200, payload[200:300])
		if err := d.flushWrites(env, st); err != nil {
			t.Fatal(err)
		}
		return is.Snapshot().DiskVecOps
	}
	a, b := storage.NewMem(), storage.NewMem()
	if v := runWrites(true, a); v != 1 {
		t.Fatalf("vectored writes dispatched %d vec ops, want 1", v)
	}
	if v := runWrites(false, b); v != 0 {
		t.Fatalf("scalar writes dispatched %d vec ops, want 0", v)
	}
	ga, gb := make([]byte, 300), make([]byte, 300)
	a.ReadAt(ga, 1000)
	b.ReadAt(gb, 1000)
	if !bytes.Equal(ga, gb) || !bytes.Equal(ga, payload) {
		t.Fatal("vectored and scalar writes diverged")
	}

	// Reads: a sieved scatter with two gaps, plus an overlapping pair
	// that must fall back to the staging copy even with vectoring on.
	src := storage.NewMem()
	src.WriteAt(patterned(20000), 0)
	runReads := func(vec bool) ([]byte, int64) {
		var is iostats.Stats
		d := testSched(false, 4096, &is)
		d.vec = vec
		dst := make([]byte, 450)
		d.add(0, 100, 0, nil)
		d.add(600, 100, 100, nil)  // 500-byte sieved gap
		d.add(1400, 100, 200, nil) // 700-byte sieved gap
		// Overlapping runs: the same disk bytes feed two response
		// positions, which a one-pass scatter cannot serve.
		d.add(9000, 100, 300, nil)
		d.add(9050, 50, 400, nil)
		p := d.planBatch(d.spans)
		if err := d.readBatch(src, p, dst, 0); err != nil {
			t.Fatal(err)
		}
		return dst, is.Snapshot().DiskVecOps
	}
	va, nva := runReads(true)
	vb, nvb := runReads(false)
	if !bytes.Equal(va, vb) {
		t.Fatal("vectored and scalar reads diverged")
	}
	if nva != 1 || nvb != 0 {
		t.Fatalf("vec ops = %d/%d, want 1/0 (overlap op must fall back)", nva, nvb)
	}
}

// TestVecMinRunFloor checks the vectored-dispatch minimum-run floor:
// coalesced operations whose runs average below vecMin stay on the
// scalar staging path (preadv/pwritev per-iovec overhead would exceed
// the copy it saves), while runs at or above the floor dispatch
// vectored. Bytes must be identical either way.
func TestVecMinRunFloor(t *testing.T) {
	env := transport.NewRealEnv()
	// Writes: adjacent runs averaging 100 bytes stay scalar under a
	// 512-byte floor; runs of 1024 bytes clear it.
	runWrites := func(runLen int, st storage.Store) int64 {
		payload := patterned(3 * runLen)
		var is iostats.Stats
		d := testSched(true, 0, &is)
		d.vec = true
		d.vecMin = 512
		for i := 0; i < 3; i++ {
			d.add(int64(1000+i*runLen), int64(runLen), int64(i*runLen), payload[i*runLen:(i+1)*runLen])
		}
		if err := d.flushWrites(env, st); err != nil {
			t.Fatal(err)
		}
		return is.Snapshot().DiskVecOps
	}
	small, large := storage.NewMem(), storage.NewMem()
	if v := runWrites(100, small); v != 0 {
		t.Fatalf("sub-floor writes dispatched %d vec ops, want 0", v)
	}
	if v := runWrites(1024, large); v != 1 {
		t.Fatalf("above-floor writes dispatched %d vec ops, want 1", v)
	}
	got := make([]byte, 300)
	small.ReadAt(got, 1000)
	if !bytes.Equal(got, patterned(300)) {
		t.Fatal("sub-floor scalar write corrupted bytes")
	}

	// Reads: the same gapped layout at both run sizes; the sub-floor
	// batch must match the above-floor path byte-for-byte against the
	// same backing store (offsets scaled so the layout shape is equal).
	src := storage.NewMem()
	src.WriteAt(patterned(64*1024), 0)
	runReads := func(runLen int, vecMin int64) ([]byte, int64) {
		var is iostats.Stats
		d := testSched(false, 4096, &is)
		d.vec = true
		d.vecMin = vecMin
		dst := make([]byte, 3*runLen)
		for i := 0; i < 3; i++ {
			// Runs separated by sieve-mergeable sub-gap holes.
			d.add(int64(i*(runLen+200)), int64(runLen), int64(i*runLen), nil)
		}
		p := d.planBatch(d.spans)
		if err := d.readBatch(src, p, dst, 0); err != nil {
			t.Fatal(err)
		}
		return dst, is.Snapshot().DiskVecOps
	}
	subFloor, nSub := runReads(100, 512)
	noFloor, nNo := runReads(100, 0)
	if nSub != 0 || nNo != 1 {
		t.Fatalf("vec ops = %d/%d, want 0 (sub-floor) / 1 (no floor)", nSub, nNo)
	}
	if !bytes.Equal(subFloor, noFloor) {
		t.Fatal("sub-floor scalar read diverged from vectored read")
	}
	if above, n := runReads(1024, 512); n != 1 {
		t.Fatalf("above-floor reads dispatched %d vec ops, want 1", n)
	} else if len(above) != 3*1024 {
		t.Fatalf("above-floor read returned %d bytes", len(above))
	}
}

// TestSchedChargesDiskOnSim verifies end to end, on a simulated node,
// that a strided read dispatches fewer operations than it has runs and
// that the zero-byte path charges nothing.
func TestSchedChargesDiskOnSim(t *testing.T) {
	var st iostats.Stats
	d := testSched(false, 64*1024, &st)
	// Tile-like: 32 runs of 128 bytes every 4 KiB — one sieved dispatch.
	for i := int64(0); i < 32; i++ {
		d.add(i*4096, 128, i*128, nil)
	}
	p := d.planBatch(d.spans)
	s := st.Snapshot()
	if s.DiskOps != 32 || s.DiskOpsMerged != 1 {
		t.Fatalf("ops in/out = %d/%d, want 32/1", s.DiskOps, s.DiskOpsMerged)
	}
	// The over-read spans the full extent: 31*4096+128 bytes.
	wantN := int64(31*4096 + 128)
	if got := opsOf(d, p); got[0][1] != wantN {
		t.Fatalf("sieved op reads %d bytes, want %d", got[0][1], wantN)
	}
	if p.cost < d.cost.DiskPerOp || p.cost > d.cost.DiskPerOp+2*time.Millisecond+d.cost.diskXfer(wantN, false) {
		t.Fatalf("implausible sieved cost %v", p.cost)
	}
}
