package pvfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dtio/internal/fault"
	"dtio/internal/iostats"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// replicatedCluster is an in-process cluster of groups*k I/O servers
// organized into replica groups of k consecutive members, with the
// metadata server striping over groups (DESIGN.md §16).
type replicatedCluster struct {
	*testCluster
	k      int
	groups int
	srvIO  *iostats.Stats // shared by all servers (repair counters)
}

func startReplicatedCluster(t *testing.T, groups, k int) *replicatedCluster {
	t.Helper()
	rc := &replicatedCluster{
		testCluster: &testCluster{
			net: transport.NewMemNetwork(),
			env: transport.NewRealEnv(),
		},
		k:      k,
		groups: groups,
		srvIO:  &iostats.Stats{},
	}
	tc := rc.testCluster
	tc.meta = NewMetaServer(tc.net, "meta", groups)
	go tc.meta.Serve(tc.env)
	for i := 0; i < groups*k; i++ {
		tc.addrs = append(tc.addrs, fmt.Sprintf("io%d", i))
	}
	for i := 0; i < groups*k; i++ {
		s := NewServer(tc.net, tc.addrs[i], i, CostModel{})
		s.Stats = rc.srvIO
		if k > 1 {
			g := i / k
			for j := 0; j < k; j++ {
				if p := g*k + j; p != i {
					s.ReplicaPeers = append(s.ReplicaPeers, tc.addrs[p])
				}
			}
		}
		tc.servers = append(tc.servers, s)
		go s.Serve(tc.env)
	}
	t.Cleanup(func() {
		tc.meta.Close()
		for _, s := range tc.servers {
			s.Close()
		}
	})
	c := rc.client()
	defer c.Close()
	for i := 0; i < 2000; i++ {
		if f, err := c.Create(tc.env, "__probe__", 64, 0); err == nil {
			if _, err := f.Size(tc.env); err == nil {
				c.Remove(tc.env, "__probe__")
				return rc
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("replicated cluster did not come up")
	return nil
}

// client returns a retrying, stats-collecting client mounted with the
// cluster's replica geometry.
func (rc *replicatedCluster) client() *Client {
	c := NewClient(rc.net, "meta", rc.addrs, CostModel{})
	c.Replicas = rc.k
	c.Stats = &iostats.Stats{}
	c.Retry = testRetryPolicy()
	return c
}

// waitRepaired polls until server phys has restarted (its listener
// answers dials again) and finished rebuilding from its peers.
func (rc *replicatedCluster) waitRepaired(t *testing.T, phys int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	restarted := false
	for time.Now().Before(deadline) {
		if !restarted {
			if conn, err := rc.net.Dial(rc.env, rc.addrs[phys]); err == nil {
				conn.Close()
				restarted = true
			}
		}
		if restarted && !rc.servers[phys].StatsSnapshot().Repairing {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server %d never finished repairing", phys)
}

func repPattern(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13+i/257) ^ salt
	}
	return b
}

// TestReplicatedRoundTrip: with k=2 every write lands on both members
// (FanoutWrites counts the extra copies) and reads return the written
// bytes through every access path.
func TestReplicatedRoundTrip(t *testing.T) {
	rc := startReplicatedCluster(t, 2, 2)
	env := rc.env
	c := rc.client()
	defer c.Close()

	f, err := c.Create(env, "rep.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Layout().NServers != 2 {
		t.Fatalf("file striped over %d groups, want 2", f.Layout().NServers)
	}
	data := repPattern(64*1024, 0)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replicated contig round trip corrupted")
	}
	// List I/O through the same fan-out.
	regions := []Region{{Off: 100, Len: 3000}, {Off: 40000, Len: 3000}}
	memR := []Region{{Off: 0, Len: 6000}}
	lbuf := repPattern(6000, 7)
	if err := f.WriteList(env, regions, memR, lbuf); err != nil {
		t.Fatal(err)
	}
	lgot := make([]byte, 6000)
	if err := f.ReadList(env, regions, memR, lgot); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lgot, lbuf) {
		t.Fatal("replicated list round trip corrupted")
	}
	if sz, err := f.Size(env); err != nil || sz != int64(len(data)) {
		t.Fatalf("size %d err %v, want %d", sz, err, len(data))
	}
	snap := c.Stats.Snapshot()
	if snap.FanoutWrites == 0 {
		t.Fatal("k=2 writes recorded no fan-out copies")
	}
	// The second copies must be complete: kill member 0 of BOTH groups
	// (servers 0 and 2) and re-read everything off members 1 and 3.
	want := append([]byte(nil), data...)
	copy(want[100:], lbuf[:3000])
	copy(want[40000:], lbuf[3000:])
	rc.servers[0].Kill(10 * time.Second)
	rc.servers[2].Kill(10 * time.Second)
	surv := make([]byte, len(want))
	if err := f.ReadContig(env, 0, surv); err != nil {
		t.Fatalf("read with both first members dead: %v", err)
	}
	if !bytes.Equal(surv, want) {
		t.Fatal("surviving members hold different bytes than were written")
	}
}

// TestReplicatedReadFailover: killing one member mid-session leaves
// every byte readable from its surviving peer, with degraded reads
// counted; the wiped member rebuilds from the peer and can then serve
// alone.
func TestReplicatedReadFailover(t *testing.T) {
	rc := startReplicatedCluster(t, 2, 2)
	env := rc.env
	c := rc.client()
	defer c.Close()

	f, err := c.Create(env, "failover.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := repPattern(2*1024*1024, 3)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}

	// Kill group 0 member 1, then read at every 64 KiB picker window:
	// rendezvous spreads preferences over both members, so some of
	// these reads must fail over (and be counted degraded).
	rc.servers[1].Kill(40 * time.Millisecond)
	got := make([]byte, 4096)
	for off := int64(0); off < int64(len(data)); off += 64 * 1024 {
		if err := f.ReadContig(env, off, got); err != nil {
			t.Fatalf("read at %d with a dead member: %v", off, err)
		}
		if !bytes.Equal(got, data[off:off+4096]) {
			t.Fatalf("degraded read at %d corrupted data", off)
		}
	}
	whole := make([]byte, len(data))
	if err := f.ReadContig(env, 0, whole); err != nil {
		t.Fatalf("full read with a dead member: %v", err)
	}
	if !bytes.Equal(whole, data) {
		t.Fatal("degraded full read corrupted data")
	}
	if snap := c.Stats.Snapshot(); snap.DegradedReads == 0 {
		t.Fatal("failover recorded no degraded reads")
	}

	// The wiped member restarts blank and re-replicates from its peer.
	rc.waitRepaired(t, 1)
	if rb := rc.srvIO.Snapshot().ReplicaRepairBytes; rb == 0 {
		t.Fatal("repair copied no bytes")
	}
	// Now the repaired member must serve alone: kill its peer.
	rc.servers[0].Kill(10 * time.Second)
	got2 := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got2); err != nil {
		t.Fatalf("read from repaired member: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("repaired member served wrong bytes")
	}
}

// TestReplicatedWriteWithDeadMember: writes issued while one member is
// down land on the survivor and the group stays available; the wiped
// member's repair then folds those writes in (the written-since-restart
// mask protects post-restart client writes from stale peer bytes), so
// the rebuilt member can serve the final contents alone.
func TestReplicatedWriteWithDeadMember(t *testing.T) {
	rc := startReplicatedCluster(t, 1, 2)
	env := rc.env
	c := rc.client()
	defer c.Close()

	f, err := c.Create(env, "dead-writes.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := repPattern(96*1024, 1)
	if err := f.WriteContig(env, 0, before); err != nil {
		t.Fatal(err)
	}

	// Down long enough to outlast the client's whole retry ladder, so
	// the write genuinely abandons the member rather than riding out a
	// short restart.
	rc.servers[1].Kill(500 * time.Millisecond)
	// Overwrite a slice of the file while member 1 is down: only member
	// 0 can ack it.
	during := repPattern(32*1024, 9)
	if err := f.WriteContig(env, 8192, during); err != nil {
		t.Fatalf("write with a dead member: %v", err)
	}
	want := append([]byte(nil), before...)
	copy(want[8192:], during)

	rc.waitRepaired(t, 1)
	// More writes after the repair completes, to both members again.
	after := repPattern(16*1024, 5)
	if err := f.WriteContig(env, 50000, after); err != nil {
		t.Fatal(err)
	}
	copy(want[50000:], after)

	// The rebuilt member must hold everything: kill the survivor.
	rc.servers[0].Kill(10 * time.Second)
	got := make([]byte, len(want))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatalf("read from rebuilt member: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rebuilt member missed writes made while it was dead")
	}
}

// TestKillWipesUnreplicatedData documents the k=1 semantics: a kill is
// a dead machine replaced by a blank spare, and with no replica group
// to rebuild from, the restarted server serves holes (zeros).
func TestKillWipesUnreplicatedData(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c, _ := faultyClient(tc, fault.Plan{})
	defer c.Close()
	f, err := c.Create(env, "wiped.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteContig(env, 0, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	tc.servers[0].Kill(30 * time.Millisecond)
	got := make([]byte, 8)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatalf("read after kill-restart: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unreplicated kill preserved data %q, want zeros", got)
	}
}

// TestAdminKillOverWire: pvfsctl's kill verb goes through Client.Admin
// and wipes like a direct Kill.
func TestAdminKillOverWire(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c, _ := faultyClient(tc, fault.Plan{})
	defer c.Close()
	f, err := c.Create(env, "adminkill.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteContig(env, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := c.Admin(env, 0, wire.AdminKill, 30*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatalf("read after admin kill: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 6)) {
		t.Fatalf("admin kill preserved data %q, want zeros", got)
	}
}
