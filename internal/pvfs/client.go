package pvfs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sort"

	"dtio/internal/cache"
	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/flatten"
	"dtio/internal/flightrec"
	"dtio/internal/iostats"
	"dtio/internal/metrics"
	"dtio/internal/replica"
	"dtio/internal/shard"
	"dtio/internal/striping"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// RetryPolicy configures the client's I/O-server retry behavior
// (DESIGN.md §11). A retry resends the identical request frame — same
// tag — after dropping and redialing the connection, so the server's
// replay cache can suppress duplicate write side effects. The zero
// value disables retries: one attempt, blocking receives, the pre-fault
// behavior.
type RetryPolicy struct {
	// Attempts bounds total attempts per request (<=1 means no retry).
	Attempts int
	// Timeout is the per-attempt receive deadline; 0 blocks forever (a
	// crashed server is then only detected by connection reset).
	Timeout time.Duration
	// Backoff is slept before the first retry and doubles per retry up
	// to MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the policy the benchmarks run under fault
// injection: enough attempts to ride out a crash-restart, timeouts well
// above the simulated cluster's service times.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts:   10,
		Timeout:    2 * time.Second,
		Backoff:    5 * time.Millisecond,
		MaxBackoff: 320 * time.Millisecond,
	}
}

// clientIDs allocates process-unique nonzero client ids for request
// tags (tag Client 0 means untagged, so the counter starts past the
// incarnation base). Ids must not collide across *processes* either: a
// long-lived server deduplicates mutating requests by (Client, Seq),
// and a recycled id makes a fresh client's early writes look like
// replays of a previous process's — the server acks them from the
// replay cache without writing a byte. The high 32 bits therefore
// carry a per-process random incarnation; the low bits count clients
// within the process. Id values never influence behavior beyond map
// identity, so the randomness cannot perturb the deterministic
// simulation.
var clientIDs atomic.Uint64

func init() {
	var b [4]byte
	if _, err := crand.Read(b[:]); err == nil {
		clientIDs.Store(uint64(binary.LittleEndian.Uint32(b[:])) << 32)
	}
}

// Client is one process's connection to the file system. A Client (and
// the Files opened through it) must be used from one logical thread at a
// time — the usual PVFS library discipline. (Internally an operation
// fans out one sibling thread per involved server; those threads touch
// disjoint connection-table slots.)
type Client struct {
	net         transport.Network
	shards      *shard.Map
	serverAddrs []string
	cost        CostModel

	// Stats accumulates this client's I/O characteristics; may be nil.
	Stats *iostats.Stats

	// StreamChunkBytes is the flow-control segment size for streamed
	// writes (0 = DefaultStreamChunkBytes); servers choose their own for
	// streamed reads.
	StreamChunkBytes int
	// StreamWindow is the maximum number of unacknowledged segments in
	// flight per streamed write (0 = DefaultStreamWindow).
	StreamWindow int
	// DisableStreaming forces store-and-forward writes regardless of
	// size (the pre-streaming behavior, kept for ablations).
	DisableStreaming bool
	// Retry governs I/O-server request retries. The metadata channel is
	// not retried: it is stateful (locks, leases) and the fault injector
	// leaves it reliable.
	Retry RetryPolicy

	// Replicas is the cluster's replica group size k (DESIGN.md §16):
	// serverAddrs is then k consecutive physical members per logical
	// stripe server, every write fans out to all members of its group,
	// and reads are served by any live member. 0 or 1 means
	// unreplicated — byte-identical to the pre-replication client. Set
	// before the first operation, identically on every client of the
	// cluster.
	Replicas int
	// ReplicaPicker chooses which member serves a replicated read (nil
	// = replica.Rendezvous{}); failover rotates from its choice.
	ReplicaPicker replica.Picker

	// CacheBytes enables the coherent client-side extent cache
	// (DESIGN.md §13) with this data budget; 0 disables caching
	// entirely. Contiguous reads and writes no larger than a chunk are
	// served from cached, lease-covered chunks and written back in
	// aggregated runs. Set before the first operation.
	CacheBytes int64
	// CacheChunkBytes overrides the cache's chunk (and lease)
	// granularity (0 = cache.DefaultChunkBytes).
	CacheChunkBytes int64

	// Tracer records operation/attempt spans; nil disables tracing (the
	// nil checks are the whole disabled-mode cost).
	Tracer *trace.Tracer
	// TraceTrack is this client's span track label ("" = "client").
	TraceTrack string
	// OpLat observes whole-operation latency, one sample per logical
	// read/write op; nil disables.
	OpLat *metrics.Histogram

	id     uint64           // request-tag client id
	seq    atomic.Uint64    // request-tag sequence counter
	metas  []transport.Conn // one lazy connection per metadata shard
	conns  []transport.Conn
	opSpan *trace.Span // current operation's span (single logical thread)

	// suspect[phys] is a virtual-time deadline until which physical
	// server phys is presumed dead (it failed a connection-class
	// attempt): replicated reads skip it and replicated writes probe it
	// with a single cheap attempt instead of the full retry ladder.
	// Zero means healthy. Atomics because sibling threads of one
	// operation touch different servers concurrently.
	suspect []atomic.Int64

	cc *clientCache // extent cache state; nil until first cached op
	// Messages that arrived on the meta connection out of turn. A grant
	// can only belong to the single outstanding acquire (stashed when a
	// revoke's nested release exchange pulls it off the wire first);
	// revokes arriving mid-exchange are deferred to the next safe point
	// (lockCall's wait loop or a cached op boundary).
	pendGrants  []*wire.LockGrant
	pendRevokes []*wire.LeaseRevoke
}

// NewClient prepares a client for a cluster with a single metadata
// server (the 1-shard special case). Connections are established lazily.
func NewClient(net transport.Network, metaAddr string, serverAddrs []string, cost CostModel) *Client {
	return NewShardedClient(net, []string{metaAddr}, serverAddrs, cost)
}

// NewShardedClient prepares a client for a cluster whose control plane
// is partitioned over metaAddrs (index = shard id). The address list is
// the mount-time shard directory: the client routes every name, handle,
// lock, and lease to its owning shard locally, with no directory server
// in the path. All clients of a cluster must mount the same list in the
// same order.
func NewShardedClient(net transport.Network, metaAddrs []string, serverAddrs []string, cost CostModel) *Client {
	m := shard.NewMap(metaAddrs)
	return &Client{
		net:         net,
		shards:      m,
		serverAddrs: serverAddrs,
		cost:        cost,
		id:          clientIDs.Add(1),
		metas:       make([]transport.Conn, m.N()),
		conns:       make([]transport.Conn, len(serverAddrs)),
		suspect:     make([]atomic.Int64, len(serverAddrs)),
	}
}

// k reports the replica group size (always >= 1).
func (c *Client) k() int {
	if c.Replicas > 1 {
		return c.Replicas
	}
	return 1
}

func (c *Client) picker() replica.Picker {
	if c.ReplicaPicker != nil {
		return c.ReplicaPicker
	}
	return replica.Rendezvous{}
}

// suspectTTL is how long a failed member is skipped before being
// re-probed. Short: a probe against a still-dead member costs one
// instant dial failure, while a long memo would hide a restarted
// member from reads unnecessarily.
const suspectTTL = 100 * time.Millisecond

func (c *Client) isSuspect(env transport.Env, phys int) bool {
	d := c.suspect[phys].Load()
	return d != 0 && int64(env.Now()) < d
}

func (c *Client) markSuspect(env transport.Env, phys int) {
	c.suspect[phys].Store(int64(env.Now() + suspectTTL))
}

func (c *Client) clearSuspect(phys int) {
	c.suspect[phys].Store(0)
}

// MetaShards reports the number of metadata shards in the mount.
func (c *Client) MetaShards() int { return c.shards.N() }

// tag allocates the request tag for one logical operation. Every request
// the operation sends (one per involved server) shares it; a new batch
// of requests gets a new tag. The current op span rides along so server
// spans parent back to it.
func (c *Client) tag() wire.ReqTag {
	return wire.ReqTag{Client: c.id, Seq: c.seq.Add(1), Span: uint64(c.opSpan.SID())}
}

func (c *Client) track() string {
	if c.TraceTrack != "" {
		return c.TraceTrack
	}
	return "client"
}

// opObs is one operation's observation state, carried by value so the
// disabled path (nil Tracer and nil OpLat) allocates nothing.
type opObs struct {
	sp     *trace.Span
	start  time.Duration
	active bool
}

// beginOp opens the operation span and latency clock. The span becomes
// the parent for request tags and attempt spans until endOp/clearOp.
func (c *Client) beginOp(env transport.Env, name string) opObs {
	if c.Tracer == nil && c.OpLat == nil {
		return opObs{}
	}
	o := opObs{start: env.Now(), active: true}
	o.sp = c.Tracer.Begin(env, c.track(), name, 0)
	c.opSpan = o.sp
	return o
}

// endOp closes a successful operation: ends the span and records the
// latency sample. Failed operations skip endOp — their spans export
// unfinished and no latency is recorded (error latencies would poison
// the percentiles with timeout ladders).
func (c *Client) endOp(env transport.Env, o opObs, nbytes int64) {
	if !o.active {
		return
	}
	o.sp.SetAttr("bytes", nbytes)
	o.sp.End(env)
	c.OpLat.Observe(env.Now() - o.start)
}

// clearOp detaches the operation span (deferred by every instrumented
// op, so later untraced requests cannot parent to a finished span).
func (c *Client) clearOp() {
	c.opSpan = nil
}

// serverError is a response the server itself produced: the request was
// received, processed, and rejected. Retrying cannot change the answer.
type serverError struct {
	s   int
	msg string
}

func (e *serverError) Error() string { return fmt.Sprintf("pvfs: server %d: %s", e.s, e.msg) }

// retryable reports whether another attempt could succeed: anything but
// a server-level rejection (timeouts, resets, decode failures from
// corrupted exchanges) is worth retrying.
func retryable(err error) bool {
	var se *serverError
	return !errors.As(err, &se)
}

// Close tears down all connections. Close cannot flush the extent
// cache (it takes no Env to perform I/O with): callers using the cache
// must Flush first or accept that unflushed cached writes are dropped
// (the server reclaims the leases by expiry or connection teardown).
func (c *Client) Close() {
	for i, conn := range c.metas {
		if conn != nil {
			conn.Close()
			c.metas[i] = nil
		}
	}
	for i, conn := range c.conns {
		if conn != nil {
			conn.Close()
			c.conns[i] = nil
		}
	}
}

func (c *Client) stats() *iostats.Stats {
	return c.Stats
}

// metaDial returns (dialing on demand) the connection to meta shard s.
func (c *Client) metaDial(env transport.Env, s int) (transport.Conn, error) {
	if c.metas[s] == nil {
		conn, err := c.net.Dial(env, c.shards.Addr(s))
		if err != nil {
			return nil, err
		}
		c.metas[s] = conn
	}
	return c.metas[s], nil
}

func (c *Client) metaCall(env transport.Env, s int, req []byte) (*wire.MetaResp, error) {
	conn, err := c.metaDial(env, s)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(env, req); err != nil {
		return nil, err
	}
	r, err := c.awaitMetaResp(env, conn)
	if err != nil {
		return nil, err
	}
	if !r.OK {
		return nil, errors.New("pvfs: " + r.Err)
	}
	return r, nil
}

// awaitMetaResp receives on one shard's connection until the exchange's
// MetaResp arrives, stashing any lease traffic that crosses it on the
// wire. Revokes are deferred rather than handled here: servicing one
// means flushing and releasing, and the nested release exchange would
// steal this exchange's response.
func (c *Client) awaitMetaResp(env transport.Env, conn transport.Conn) (*wire.MetaResp, error) {
	for {
		raw, err := conn.Recv(env)
		if err != nil {
			return nil, err
		}
		t, v, err := wire.DecodeMsg(raw)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MTMetaResp:
			return v.(*wire.MetaResp), nil
		case wire.MTLockGrant:
			c.pendGrants = append(c.pendGrants, v.(*wire.LockGrant))
		case wire.MTLeaseRevoke:
			c.pendRevokes = append(c.pendRevokes, v.(*wire.LeaseRevoke))
		default:
			return nil, errors.New("pvfs: unexpected metadata response " + t.String())
		}
	}
}

// lockCall sends one lock-service request on shard s's connection and
// waits for the grant. An acquire that queues gets no immediate reply;
// the blocking Recv here is exactly the client-side wait. While blocked,
// the client services lease revocations inline — a caching client
// waiting on a lock must still answer the server's request to give up
// conflicting leases, or two caching clients deadlock hold-and-wait.
// (This also resolves self-conflicts: our own non-revocable lock queued
// behind our own cache lease revokes it right here.)
//
// The blocked client only listens on shard s, so before blocking it
// surrenders any cache leases held on *other* shards: a revoke arriving
// on a connection nobody reads is the cross-shard variant of the
// hold-and-wait deadlock above. Single-file (and single-shard)
// workloads never pay this — it only fires when one client caches
// files owned by different shards.
func (c *Client) lockCall(env transport.Env, s int, req []byte) (*wire.LockGrant, error) {
	if c.cc != nil && c.shards.N() > 1 {
		if err := c.cc.releaseShardsExcept(env, s); err != nil {
			return nil, err
		}
	}
	conn, err := c.metaDial(env, s)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(env, req); err != nil {
		return nil, err
	}
	for {
		if len(c.pendGrants) > 0 {
			g := c.pendGrants[0]
			c.pendGrants = c.pendGrants[1:]
			if !g.OK {
				return nil, errors.New("pvfs: " + g.Err)
			}
			return g, nil
		}
		if len(c.pendRevokes) > 0 && c.cc != nil {
			r := c.pendRevokes[0]
			c.pendRevokes = c.pendRevokes[1:]
			if err := c.cc.handleRevoke(env, r); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := conn.Recv(env)
		if err != nil {
			return nil, err
		}
		t, v, err := wire.DecodeMsg(raw)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MTLockGrant:
			c.pendGrants = append(c.pendGrants, v.(*wire.LockGrant))
		case wire.MTLeaseRevoke:
			c.pendRevokes = append(c.pendRevokes, v.(*wire.LeaseRevoke))
		default:
			return nil, errors.New("pvfs: unexpected response " + t.String() + " while waiting for a lock grant")
		}
	}
}

// conn returns (dialing on demand) the connection to server i.
func (c *Client) conn(env transport.Env, i int) (transport.Conn, error) {
	if c.conns[i] == nil {
		conn, err := c.net.Dial(env, c.serverAddrs[i])
		if err != nil {
			return nil, err
		}
		c.conns[i] = conn
	}
	return c.conns[i], nil
}

// File is an open file.
type File struct {
	c      *Client
	name   string
	handle uint64
	layout striping.Layout

	// NoCache opts this file's operations out of the client's extent
	// cache (the O_DIRECT of this API). The mpiio layer sets it for
	// read-modify-write paths that already hold their own non-revocable
	// locks, which a cached access would queue behind forever.
	NoCache bool
}

// Create creates and opens a file striped over nServers servers (0 = all)
// with the given strip size.
func (c *Client) Create(env transport.Env, name string, stripSize int64, nServers int) (*File, error) {
	r, err := c.metaCall(env, c.shards.OfName(name), wire.EncodeCreate(&wire.CreateReq{
		Name: name, StripSize: stripSize, NServers: int32(nServers),
	}))
	if err != nil {
		return nil, err
	}
	return c.fileOf(name, r)
}

// Open opens an existing file.
func (c *Client) Open(env transport.Env, name string) (*File, error) {
	r, err := c.metaCall(env, c.shards.OfName(name), wire.EncodeOpen(&wire.OpenReq{Name: name}))
	if err != nil {
		return nil, err
	}
	return c.fileOf(name, r)
}

func (c *Client) fileOf(name string, r *wire.MetaResp) (*File, error) {
	lay := striping.Layout{StripSize: r.StripSize, NServers: int(r.NServers), Base: int(r.Base)}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if lay.NServers*c.k() > len(c.serverAddrs) {
		return nil, fmt.Errorf("pvfs: file needs %d servers x%d replicas, cluster has %d",
			lay.NServers, c.k(), len(c.serverAddrs))
	}
	return &File{c: c, name: name, handle: r.Handle, layout: lay}, nil
}

// Remove deletes a file: metadata first, then each server's object.
func (c *Client) Remove(env transport.Env, name string) error {
	f, err := c.Open(env, name)
	if err != nil {
		return err
	}
	if c.cc != nil {
		// The meta server drops the file's lock table with the file;
		// cached state is discarded, not flushed or released.
		c.cc.forgetHandle(f.handle)
	}
	if _, err := c.metaCall(env, c.shards.OfName(name), wire.EncodeRemove(&wire.RemoveReq{Name: name})); err != nil {
		return err
	}
	tag := c.tag()
	groups := make([]int, f.layout.NServers)
	for i := range groups {
		groups[i] = i
	}
	// Removal mutates every replica member, so it rides the write
	// fan-out path (with no payload to carry).
	return c.writeAll(env, groups, make([][]byte, f.layout.NServers),
		func(g, m int, _ []byte) []byte {
			return wire.EncodeRemoveObj(&wire.RemoveObjReq{Tag: tag, Layout: f.wireLayoutAt(g, m)})
		}, tag.Seq)
}

// ListNames returns the namespace contents: each shard's partition,
// merged and sorted (per-shard listings are already sorted, but the
// union across shards is not).
func (c *Client) ListNames(env transport.Env) ([]string, error) {
	var names []string
	for s := 0; s < c.shards.N(); s++ {
		part, err := c.listShard(env, s)
		if err != nil {
			return nil, err
		}
		names = append(names, part...)
	}
	sort.Strings(names)
	return names, nil
}

// listShard fetches one shard's namespace listing, stashing any lease
// traffic that crosses the response on the wire (like awaitMetaResp).
func (c *Client) listShard(env transport.Env, s int) ([]string, error) {
	conn, err := c.metaDial(env, s)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(env, wire.EncodeListNames()); err != nil {
		return nil, err
	}
	for {
		raw, err := conn.Recv(env)
		if err != nil {
			return nil, err
		}
		t, v, err := wire.DecodeMsg(raw)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MTListResp:
			r := v.(*wire.ListResp)
			if !r.OK {
				return nil, errors.New("pvfs: " + r.Err)
			}
			return r.Names, nil
		case wire.MTLockGrant:
			c.pendGrants = append(c.pendGrants, v.(*wire.LockGrant))
		case wire.MTLeaseRevoke:
			c.pendRevokes = append(c.pendRevokes, v.(*wire.LeaseRevoke))
		default:
			return nil, errors.New("pvfs: unexpected listing response " + t.String())
		}
	}
}

// FileLock is a held byte-range lock, returned by Lock and surrendered
// to Unlock.
type FileLock struct {
	f      *File
	id     uint64
	Off, N int64
	Shared bool
}

// Lock acquires a byte-range lock on [off, off+n) from the metadata
// server, blocking until granted. Shared locks admit other shared
// holders; exclusive locks admit nobody. Grants are FIFO-fair, and the
// server reclaims the lock if its lease expires before Unlock. To stay
// deadlock-free, callers hold at most one lock per file at a time (the
// discipline mpiio's sieving writes and atomic mode follow).
func (f *File) Lock(env transport.Env, off, n int64, shared bool) (*FileLock, error) {
	sp := f.c.Tracer.Begin(env, f.c.track(), "lock", f.c.opSpan.SID())
	sp.SetAttr("off", off)
	sp.SetAttr("n", n)
	g, err := f.c.lockCall(env, f.c.shards.OfHandle(f.handle), wire.EncodeLockAcquire(&wire.LockAcquireReq{
		Handle: f.handle, Off: off, N: n, Shared: shared, Span: uint64(sp.SID()),
	}))
	sp.End(env)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("waited_ns", g.WaitedNs)
	if st := f.c.stats(); st != nil {
		st.AddLock()
		st.AddLockWait(g.WaitedNs)
	}
	return &FileLock{f: f, id: g.LockID, Off: off, N: n, Shared: shared}, nil
}

// Unlock releases a lock returned by Lock.
func (f *File) Unlock(env transport.Env, lk *FileLock) error {
	if lk == nil || lk.f != f {
		return errors.New("pvfs: unlock of a lock this file does not hold")
	}
	_, err := f.c.metaCall(env, f.c.shards.OfHandle(f.handle), wire.EncodeLockRelease(&wire.LockReleaseReq{
		Handle: f.handle, LockID: lk.id,
	}))
	return err
}

// Name reports the file name.
func (f *File) Name() string { return f.name }

// ClientStats returns the owning client's stats collector (may be nil).
func (f *File) ClientStats() *iostats.Stats { return f.c.Stats }

// Cost returns the owning client's cost model.
func (f *File) Cost() CostModel { return f.c.cost }

// Layout reports the striping layout.
func (f *File) Layout() striping.Layout { return f.layout }

func (f *File) wireLayout(serverIdx int) wire.FileLayout {
	return f.wireLayoutAt(serverIdx, 0)
}

// wireLayoutAt names one replica member's object: the file's layout
// plus which logical stripe server this request is for and which group
// member it is addressed to. The object a member stores is identical
// across its group (same ServerIdx, same striping math), which is what
// makes any member able to serve a group's reads.
func (f *File) wireLayoutAt(serverIdx, member int) wire.FileLayout {
	return wire.FileLayout{
		Handle:    f.handle,
		StripSize: f.layout.StripSize,
		NServers:  int32(f.layout.NServers),
		Base:      int32(f.layout.Base),
		ServerIdx: int32(serverIdx),
		Replicas:  int32(f.c.k()),
		Member:    int32(member),
	}
}

// phys maps (logical stripe server, group member) to the physical
// cluster server index: groups are k consecutive addresses.
func (c *Client) phys(serverIdx, member int) int {
	return serverIdx*c.k() + member
}

// sendRecv sends one request per server and collects the responses, in
// order. Any server-reported error aborts. dataLens (optional) reports
// how many trailing bytes of each request are data payload, so the
// request-description statistics exclude them (and replayed-byte
// accounting includes them). seq is the operation tag's sequence, used
// to match responses to this request generation. Each server's exchange
// runs in its own sibling thread (send and receive alike), so a large
// request serializing onto one server's wire — or a streamed response
// draining from it — does not stall the others.
func (c *Client) sendRecv(env transport.Env, servers []int, reqs [][]byte, dataLens []int64, seq uint64) ([]*wire.IOResp, error) {
	// Pre-dial best-effort: a server that is down right now is left for
	// the per-server retry loop, which redials with backoff.
	for _, s := range servers {
		_, _ = c.conn(env, s)
	}
	descLen := func(i int) int64 {
		desc := int64(len(reqs[i]))
		if dataLens != nil {
			desc -= dataLens[i]
		}
		return desc
	}
	payLen := func(i int) int64 {
		if dataLens != nil {
			return dataLens[i]
		}
		return 0
	}
	out := make([]*wire.IOResp, len(servers))
	if len(servers) == 1 {
		r, err := c.exchange(env, servers[0], reqs[0], descLen(0), payLen(0), seq)
		if err != nil {
			return nil, err
		}
		out[0] = r
		return out, nil
	}
	fns := make([]func(transport.Env) error, len(servers))
	for i, s := range servers {
		i, s := i, s
		fns[i] = func(env transport.Env) error {
			r, err := c.exchange(env, s, reqs[i], descLen(i), payLen(i), seq)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	}
	if err := env.Parallel("pvfs-sendrecv", fns...); err != nil {
		return nil, err
	}
	return out, nil
}

// exchange performs one request/response with server s, retrying per
// c.Retry: on any retryable failure the (suspect) connection is
// dropped, the client backs off, redials, and resends the identical
// frame. payLen is the request's trailing payload length, counted as
// replayed bytes on each resend.
func (c *Client) exchange(env transport.Env, s int, req []byte, descLen, payLen int64, seq uint64) (*wire.IOResp, error) {
	return c.exchangeN(env, s, req, descLen, payLen, seq, 0)
}

// exchangeN is exchange with an explicit attempt budget (0 = the retry
// policy's); the write fan-out path probes suspected-dead members with
// a single attempt instead of the full ladder.
func (c *Client) exchangeN(env transport.Env, s int, req []byte, descLen, payLen int64, seq uint64, attempts int) (*wire.IOResp, error) {
	if attempts < 1 {
		attempts = c.Retry.Attempts
	}
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.Retry.Backoff
	var firstFail time.Duration
	for a := 1; ; a++ {
		asp := c.Tracer.Begin(env, c.track(), "attempt", c.opSpan.SID())
		asp.SetAttr("server", int64(s))
		asp.SetAttr("try", int64(a))
		r, err := c.tryExchange(env, s, req, descLen, seq)
		asp.End(env)
		if err == nil {
			if a > 1 {
				if st := c.stats(); st != nil {
					st.AddFailover(int64(env.Now() - firstFail))
				}
			}
			return r, nil
		}
		if !retryable(err) {
			return nil, err
		}
		c.dropConn(s) // suspect: mid-frame state, stale stream, or reset
		if a >= attempts {
			return nil, fmt.Errorf("pvfs: server %d: gave up after %d attempts: %w", s, a, err)
		}
		if a == 1 {
			firstFail = env.Now()
		}
		if st := c.stats(); st != nil {
			st.AddRetry()
			if errors.Is(err, transport.ErrTimeout) {
				st.AddTimeout()
			}
			st.AddReplayed(payLen)
		}
		backoff = c.sleepBackoff(env, backoff)
	}
}

// sleepBackoff sleeps the current backoff and returns the next one
// (doubled, capped at MaxBackoff). The sleep covers modeled and wall
// time: redial of a crashed daemon must actually wait, and a dial
// failure is otherwise instant, which would burn every attempt before
// the server could restart.
func (c *Client) sleepBackoff(env transport.Env, backoff time.Duration) time.Duration {
	if backoff > 0 {
		sleepBoth(env, backoff)
	}
	next := backoff * 2
	if c.Retry.MaxBackoff > 0 && next > c.Retry.MaxBackoff {
		next = c.Retry.MaxBackoff
	}
	return next
}

// tryExchange is one attempt of exchange: dial if needed, send, await
// the matching response.
func (c *Client) tryExchange(env transport.Env, s int, req []byte, descLen int64, seq uint64) (*wire.IOResp, error) {
	conn, err := c.conn(env, s)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(env, req); err != nil {
		return nil, fmt.Errorf("pvfs: send to server %d: %w", s, err)
	}
	if st := c.stats(); st != nil {
		st.AddWire(descLen)
	}
	return c.recvResp(env, conn, s, seq, c.Retry.Timeout)
}

// recvResp receives frames from conn until the response matching seq
// arrives, reassembling a streamed read. Debris from earlier attempts
// on the same connection — duplicated responses with a stale Seq,
// leftover stream acks — is discarded; a response stream with a stale
// Seq cannot be skipped coherently, so it fails the attempt and the
// caller redials.
func (c *Client) recvResp(env transport.Env, conn transport.Conn, s int, seq uint64, timeout time.Duration) (*wire.IOResp, error) {
	for {
		raw, err := transport.RecvTimeout(env, conn, timeout)
		if err != nil {
			return nil, fmt.Errorf("pvfs: recv from server %d: %w", s, err)
		}
		t, v, err := wire.DecodeMsg(raw)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MTIOResp:
			r := v.(*wire.IOResp)
			if r.Seq != seq {
				continue // stale or duplicated response
			}
			if !r.OK {
				return nil, &serverError{s: s, msg: r.Err}
			}
			return r, nil
		case wire.MTReadStreamHdr:
			h := v.(*wire.ReadStreamHdr)
			if h.Seq != seq {
				return nil, fmt.Errorf("pvfs: server %d: stale stream (seq %d, want %d)", s, h.Seq, seq)
			}
			data, err := c.recvStream(env, conn, h, timeout)
			if err != nil {
				return nil, fmt.Errorf("pvfs: server %d: %w", s, err)
			}
			return &wire.IOResp{Seq: seq, OK: true, Data: data}, nil
		case wire.MTStreamChunk, wire.MTStreamAck:
			continue // debris from an abandoned streamed attempt
		default:
			return nil, errors.New("pvfs: unexpected I/O response")
		}
	}
}

// recvStream reassembles a streamed read response, granting credit as
// segments are consumed. Duplicated already-consumed chunks are
// skipped; a gap or a short/timed-out receive fails the attempt, and
// the caller drops the connection (the stream cannot resynchronize).
func (c *Client) recvStream(env transport.Env, conn transport.Conn, h *wire.ReadStreamHdr, timeout time.Duration) ([]byte, error) {
	if h.Total <= 0 || h.SegBytes <= 0 || h.Window <= 0 {
		return nil, fmt.Errorf("bad stream header total=%d seg=%d window=%d", h.Total, h.SegBytes, h.Window)
	}
	total, seg, window := h.Total, int64(h.SegBytes), int64(h.Window)
	nseg := (total + seg - 1) / seg
	data := make([]byte, total)
	ab := getBuf(16)
	defer putBuf(ab)
	var chunk wire.StreamChunk
	for k := int64(0); k < nseg; k++ {
		for {
			raw, err := transport.RecvTimeout(env, conn, timeout)
			if err != nil {
				return nil, err
			}
			if err := wire.DecodeStreamChunk(raw, &chunk); err != nil {
				return nil, err
			}
			if chunk.Err == "" && int64(chunk.Seq) < k {
				continue // injected duplicate of a consumed segment
			}
			break
		}
		if chunk.Err != "" {
			return nil, errors.New(chunk.Err)
		}
		nk := segLen(total, seg, k)
		if int64(chunk.Seq) != k || int64(len(chunk.Data)) != nk {
			return nil, fmt.Errorf("stream chunk seq=%d len=%d, want seq=%d len=%d",
				chunk.Seq, len(chunk.Data), k, nk)
		}
		copy(data[k*seg:], chunk.Data)
		if k+window < nseg {
			*ab = wire.AppendStreamAck(*ab, uint32(k))
			if err := conn.Send(env, *ab); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// dropConn closes and forgets the cached connection to server s (after
// a mid-stream failure leaves it out of protocol sync; the next request
// redials).
func (c *Client) dropConn(s int) {
	if c.conns[s] != nil {
		c.conns[s].Close()
		c.conns[s] = nil
	}
}

// sendRecvRead issues one read-class request per involved replica
// group and collects the responses in group order. With k == 1 it is
// exactly sendRecv; otherwise each group's request is served by any
// live member (DESIGN.md §16). off keys the picker so repeated reads
// of one region keep hitting the member whose page cache has it.
// mkReq builds the frame addressed to one member.
func (f *File) sendRecvRead(env transport.Env, off int64, groups []int, mkReq func(g, member int) []byte, seq uint64) ([]*wire.IOResp, error) {
	c := f.c
	if c.k() == 1 {
		reqs := make([][]byte, len(groups))
		for i, g := range groups {
			reqs[i] = mkReq(g, 0)
		}
		return c.sendRecv(env, groups, reqs, nil, seq)
	}
	out := make([]*wire.IOResp, len(groups))
	if len(groups) == 1 {
		r, err := c.readAny(env, f.handle, off, groups[0], mkReq, seq)
		if err != nil {
			return nil, err
		}
		out[0] = r
		return out, nil
	}
	fns := make([]func(transport.Env) error, len(groups))
	for i, g := range groups {
		i, g := i, g
		fns[i] = func(env transport.Env) error {
			r, err := c.readAny(env, f.handle, off, g, mkReq, seq)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	}
	if err := env.Parallel("pvfs-read-any", fns...); err != nil {
		return nil, err
	}
	return out, nil
}

// readAny performs one replicated read exchange with group g. The
// picker names a preferred member; suspected-dead members are skipped
// up front, and each failed attempt rotates to the next member, so
// failover from a freshly-dead server costs one failed attempt, not a
// retry ladder. A member-level rejection (e.g. a repairing replica)
// rotates too, but a full cycle of rejections fails the operation —
// the servers are answering, and every answer is no.
func (c *Client) readAny(env transport.Env, handle uint64, off int64, g int, mkReq func(g, member int) []byte, seq uint64) (*wire.IOResp, error) {
	k := c.k()
	first := c.picker().Pick(handle, off, g, k)
	start := first
	for j := 0; j < k; j++ {
		if m := (first + j) % k; !c.isSuspect(env, c.phys(g, m)) {
			start = m
			break
		}
	}
	attempts := c.Retry.Attempts
	if attempts < k {
		attempts = k
	}
	backoff := c.Retry.Backoff
	var firstFail time.Duration
	sawFail := false
	rejected := 0 // consecutive member-level rejections
	for a := 1; ; a++ {
		m := (start + a - 1) % k
		phys := c.phys(g, m)
		req := mkReq(g, m)
		asp := c.Tracer.Begin(env, c.track(), "attempt", c.opSpan.SID())
		asp.SetAttr("server", int64(phys))
		asp.SetAttr("try", int64(a))
		lo, _ := c.picker().(interface{ Observe(phys int, delta int64) })
		if lo != nil {
			lo.Observe(phys, 1)
		}
		r, err := c.tryExchange(env, phys, req, int64(len(req)), seq)
		if lo != nil {
			lo.Observe(phys, -1)
		}
		asp.End(env)
		if err == nil {
			c.clearSuspect(phys)
			if st := c.stats(); st != nil {
				if m != first {
					st.AddDegradedRead()
				}
				if sawFail {
					st.AddFailover(int64(env.Now() - firstFail))
				}
			}
			return r, nil
		}
		if !retryable(err) {
			rejected++
			if rejected >= k {
				return nil, err
			}
			continue // next member answers; no backoff, the server is up
		}
		rejected = 0
		c.dropConn(phys)
		c.markSuspect(env, phys)
		if a >= attempts {
			return nil, fmt.Errorf("pvfs: group %d: gave up after %d attempts: %w", g, a, err)
		}
		if !sawFail {
			sawFail = true
			firstFail = env.Now()
		}
		if st := c.stats(); st != nil {
			st.AddRetry()
			if errors.Is(err, transport.ErrTimeout) {
				st.AddTimeout()
			}
		}
		backoff = c.sleepBackoff(env, backoff)
	}
}

// writeAll issues one write per involved replica group, streaming any
// payload larger than the segment size so the servers' disks overlap
// the network transfer, and waits for the acks. payloads is indexed by
// group (= server id when k == 1); mkReq builds the (inline or inner)
// request for one member and must embed the tag whose sequence is seq,
// so retries of either form hit the server's replay cache. With k > 1
// every member of each group receives the group's full payload under
// that same tag (the per-client replay rings make the k copies
// independently at-most-once).
func (c *Client) writeAll(env transport.Env, groups []int, payloads [][]byte, mkReq func(g, member int, data []byte) []byte, seq uint64) error {
	seg, window := streamParams(c.StreamChunkBytes, c.StreamWindow)
	if c.k() > 1 {
		return c.writeFanout(env, groups, payloads, mkReq, seg, window, seq)
	}
	stream := false
	if !c.DisableStreaming {
		for _, s := range groups {
			if int64(len(payloads[s])) > seg {
				stream = true
				break
			}
		}
	}
	if !stream {
		reqs := make([][]byte, len(groups))
		dataLens := make([]int64, len(groups))
		for i, s := range groups {
			reqs[i] = mkReq(s, 0, payloads[s])
			dataLens[i] = int64(len(payloads[s]))
		}
		_, err := c.sendRecv(env, groups, reqs, dataLens, seq)
		return err
	}
	// Pre-dial best-effort so the per-server transfers can proceed
	// concurrently; a credit-window stall against one server must not
	// serialize others, and a dead server is left for the retry loops.
	for _, s := range groups {
		_, _ = c.conn(env, s)
	}
	fns := make([]func(transport.Env) error, len(groups))
	for i, s := range groups {
		s := s
		fns[i] = func(env transport.Env) error {
			return c.writeOne(env, s, 0, payloads[s], mkReq, seg, window, seq, 0)
		}
	}
	return env.Parallel("pvfs-write", fns...)
}

// writeFanout is writeAll's replicated path: one sibling thread per
// (group, member), every member receiving its group's full payload.
// Every reachable member must ack. A member that exhausts its retries
// with connection-class failures is abandoned — marked suspect, its
// copy left for the wipe+repair path to rebuild — as long as at least
// one copy of the group's data landed; if a whole group is
// unreachable, or any member rejects the request outright, the
// operation fails. Writes to an already-suspected member probe with a
// single attempt, so a dead server taxes each write one instant dial
// failure instead of a retry ladder.
//
// Consistency note: abandoning a member is only safe because a member
// that missed acks while unreachable can only rejoin service through
// the kill path (wipe, then re-replicate from a surviving peer). A
// plain crash-restart shorter than the retry ladder is ridden out by
// the retries themselves, exactly as in the unreplicated client.
func (c *Client) writeFanout(env transport.Env, groups []int, payloads [][]byte, mkReq func(g, member int, data []byte) []byte, seg, window int64, seq uint64) error {
	k := c.k()
	for _, g := range groups {
		for j := 0; j < k; j++ {
			if !c.isSuspect(env, c.phys(g, j)) {
				_, _ = c.conn(env, c.phys(g, j))
			}
		}
	}
	errs := make([][]error, len(groups))
	fns := make([]func(transport.Env) error, 0, len(groups)*k)
	for gi, g := range groups {
		errs[gi] = make([]error, k)
		gi, g := gi, g
		for j := 0; j < k; j++ {
			j := j
			fns = append(fns, func(env transport.Env) error {
				phys := c.phys(g, j)
				attempts := 0 // retry-policy default
				if c.isSuspect(env, phys) {
					attempts = 1
				}
				err := c.writeOne(env, g, j, payloads[g], mkReq, seg, window, seq, attempts)
				if err == nil {
					c.clearSuspect(phys)
				} else if retryable(err) {
					c.markSuspect(env, phys)
				}
				errs[gi][j] = err
				return nil
			})
		}
	}
	if err := env.Parallel("pvfs-write-fanout", fns...); err != nil {
		return err
	}
	st := c.stats()
	for gi := range groups {
		acked := 0
		var connErr error
		for j := 0; j < k; j++ {
			switch e := errs[gi][j]; {
			case e == nil:
				acked++
			case !retryable(e):
				return e
			default:
				connErr = e
			}
		}
		if acked == 0 {
			return connErr
		}
		if st != nil {
			for x := 1; x < acked; x++ {
				st.AddFanoutWrite()
			}
		}
	}
	return nil
}

// writeOne performs one member's write: inline when the payload fits a
// single segment, streamed otherwise. attempts overrides the retry
// policy's budget when nonzero.
func (c *Client) writeOne(env transport.Env, g, member int, payload []byte, mkReq func(int, int, []byte) []byte, seg, window int64, seq uint64, attempts int) error {
	phys := c.phys(g, member)
	total := int64(len(payload))
	if c.DisableStreaming || total <= seg {
		req := mkReq(g, member, payload)
		_, err := c.exchangeN(env, phys, req, int64(len(req))-total, total, seq, attempts)
		return err
	}
	return c.writeStream(env, phys, payload, mkReq(g, member, nil), seg, window, seq, attempts, c.k() == 1)
}

// writeStream sends one server's payload as a flow-controlled segment
// stream, retrying per c.Retry (or the explicit attempts budget when
// nonzero). When resumable, a failed attempt resumes from the last
// acknowledged segment: ack a proves every segment before a reached the
// disk (the server flushes segment k's runs before receiving k+1 and
// acks k on receipt), so the retry re-sends the header with StartSeg=a
// and only segments a.. follow. Segment a itself may or may not have
// been applied; re-writing the same bytes is idempotent, and the
// server's replay cache catches the case where the whole write finished
// and only the response was lost.
//
// Replicated writes pass resumable=false: a member wiped by a kill
// mid-stream lost its acknowledged prefix, so every retry restarts
// from segment 0 (still idempotent, and a fully-applied duplicate is
// suppressed by the replay ring).
func (c *Client) writeStream(env transport.Env, s int, payload, inner []byte, seg, window int64, seq uint64, attempts int, resumable bool) error {
	if attempts < 1 {
		attempts = c.Retry.Attempts
	}
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.Retry.Backoff
	total := int64(len(payload))
	resume := int64(0)
	var firstFail time.Duration
	for a := 1; ; a++ {
		asp := c.Tracer.Begin(env, c.track(), "write-stream-attempt", c.opSpan.SID())
		asp.SetAttr("server", int64(s))
		asp.SetAttr("try", int64(a))
		asp.SetAttr("resume_seg", resume)
		next, err := c.tryWriteStream(env, s, payload, inner, seg, window, seq, resume)
		asp.End(env)
		if err == nil {
			if a > 1 {
				if st := c.stats(); st != nil {
					st.AddFailover(int64(env.Now() - firstFail))
				}
			}
			return nil
		}
		if next > resume && resumable {
			resume = next
		}
		if !retryable(err) {
			return err
		}
		c.dropConn(s)
		if a >= attempts {
			return fmt.Errorf("pvfs: server %d: gave up after %d attempts: %w", s, a, err)
		}
		if a == 1 {
			firstFail = env.Now()
		}
		if st := c.stats(); st != nil {
			st.AddRetry()
			if errors.Is(err, transport.ErrTimeout) {
				st.AddTimeout()
			}
			st.AddReplayed(total - resume*seg)
		}
		backoff = c.sleepBackoff(env, backoff)
	}
}

// tryWriteStream is one attempt of writeStream, sending segments
// start.. and returning the resume segment for the next attempt (the
// highest acknowledgment seen, which only grows).
func (c *Client) tryWriteStream(env transport.Env, s int, payload, inner []byte, seg, window int64, seq uint64, start int64) (resume int64, err error) {
	resume = start
	conn, err := c.conn(env, s)
	if err != nil {
		return resume, err
	}
	total := int64(len(payload))
	nseg := (total + seg - 1) / seg
	hdr := wire.EncodeWriteStreamHdr(&wire.WriteStreamHdr{
		Total: total, SegBytes: int32(seg), Window: int32(window),
		StartSeg: start, Inner: inner,
	})
	if err := conn.Send(env, hdr); err != nil {
		return resume, fmt.Errorf("pvfs: send to server %d: %w", s, err)
	}
	if st := c.stats(); st != nil {
		st.AddWire(int64(len(hdr))) // the description; segments are payload
	}
	fp := getBuf(13 + int(seg))
	ackedThrough := start - 1
	for k := start; k < nseg; k++ {
		if k >= start+window && ackedThrough < k-window {
			got, aerr := recvAckAtLeast(env, conn, uint32(k-window), c.Retry.Timeout)
			if aerr != nil {
				err = aerr
				break
			}
			if int64(got) > ackedThrough {
				ackedThrough = int64(got)
				resume = ackedThrough
			}
		}
		nk := segLen(total, seg, k)
		*fp = wire.AppendStreamChunk((*fp), uint32(k), "", payload[k*seg:k*seg+nk])
		if err = conn.Send(env, *fp); err != nil {
			break
		}
	}
	putBuf(fp)
	if err != nil {
		return resume, fmt.Errorf("pvfs: server %d: %w", s, err)
	}
	_, err = c.recvResp(env, conn, s, seq, c.Retry.Timeout)
	return resume, err
}

// involvedServers reports which servers hold any byte of the given
// regions (emitted in ascending server order).
func (f *File) involvedServers(regions func(emit func(off, n int64))) []int {
	present := make([]bool, f.layout.NServers)
	regions(func(off, n int64) {
		f.layout.Split(off, n, func(p striping.Piece) bool {
			present[p.Server] = true
			return true
		})
	})
	var out []int
	for s, p := range present {
		if p {
			out = append(out, s)
		}
	}
	return out
}

// ReadContig reads len(buf) bytes at logical offset off. One logical I/O
// operation; one request per involved server.
func (f *File) ReadContig(env transport.Env, off int64, buf []byte) error {
	n := int64(len(buf))
	if n == 0 {
		return nil
	}
	if cc := f.cacheFor(); cc != nil {
		if n <= cc.store.ChunkBytes() {
			return cc.readContig(env, f, off, buf)
		}
		// Large reads bypass the cache but must still see our own
		// cached writes: flush overlapping dirty data first.
		if err := cc.prepRanges(env, f, false, []cache.Region{{Off: off, N: n}}); err != nil {
			return err
		}
	}
	o := f.c.beginOp(env, "read-contig")
	defer f.c.clearOp()
	tag := f.c.tag()
	servers := f.involvedServers(func(emit func(off, n int64)) { emit(off, n) })
	resps, err := f.sendRecvRead(env, off, servers, func(g, m int) []byte {
		return wire.EncodeContig(&wire.ContigReq{Tag: tag, Layout: f.wireLayoutAt(g, m), Off: off, N: n}, false)
	}, tag.Seq)
	if err != nil {
		return err
	}
	for i, s := range servers {
		data := resps[i].Data
		cur := int64(0)
		short := false
		f.layout.ServerPieces(s, off, n, func(_, logical, ln int64) bool {
			if cur+ln > int64(len(data)) {
				short = true
				return false
			}
			copy(buf[logical-off:logical-off+ln], data[cur:cur+ln])
			cur += ln
			return true
		})
		if short || cur != int64(len(data)) {
			return fmt.Errorf("pvfs: server %d returned %d bytes, expected a different amount", s, len(data))
		}
	}
	if st := f.c.stats(); st != nil {
		st.AddOps(1)
		st.AddAccessed(n)
	}
	f.c.endOp(env, o, n)
	return nil
}

// WriteContig writes data at logical offset off.
func (f *File) WriteContig(env transport.Env, off int64, data []byte) error {
	n := int64(len(data))
	if n == 0 {
		return nil
	}
	if cc := f.cacheFor(); cc != nil {
		if n <= cc.store.ChunkBytes() {
			return cc.writeContig(env, f, off, data)
		}
		// Large writes bypass the cache: flush overlapping dirty data
		// (issue-order), then invalidate the overlap so later cached
		// reads cannot serve pre-write bytes.
		if err := cc.prepRanges(env, f, true, []cache.Region{{Off: off, N: n}}); err != nil {
			return err
		}
	}
	o := f.c.beginOp(env, "write-contig")
	defer f.c.clearOp()
	servers := f.involvedServers(func(emit func(off, n int64)) { emit(off, n) })
	payloads := make([][]byte, f.layout.NServers)
	for _, s := range servers {
		var tot int64
		f.layout.ServerPieces(s, off, n, func(_, _, ln int64) bool {
			tot += ln
			return true
		})
		payload := make([]byte, 0, tot)
		f.layout.ServerPieces(s, off, n, func(_, logical, ln int64) bool {
			payload = append(payload, data[logical-off:logical-off+ln]...)
			return true
		})
		payloads[s] = payload
	}
	tag := f.c.tag()
	err := f.c.writeAll(env, servers, payloads, func(g, m int, data []byte) []byte {
		return wire.EncodeContig(&wire.ContigReq{
			Tag: tag, Layout: f.wireLayoutAt(g, m), Off: off, N: n, Data: data,
		}, true)
	}, tag.Seq)
	if err != nil {
		return err
	}
	if st := f.c.stats(); st != nil {
		st.AddOps(1)
		st.AddAccessed(n)
	}
	f.c.endOp(env, o, n)
	return nil
}

// listTotal validates a list I/O call and returns the byte count.
func listTotal(fileRegions, memRegions []flatten.Region, mem []byte) (int64, error) {
	var fn, mn int64
	for _, r := range fileRegions {
		if r.Off < 0 || r.Len < 0 {
			return 0, fmt.Errorf("pvfs: bad file region %+v", r)
		}
		fn += r.Len
	}
	for _, r := range memRegions {
		if r.Off < 0 || r.Len < 0 || r.Off+r.Len > int64(len(mem)) {
			return 0, fmt.Errorf("pvfs: bad memory region %+v", r)
		}
		mn += r.Len
	}
	if fn != mn {
		return 0, fmt.Errorf("pvfs: file list covers %d bytes, memory list %d", fn, mn)
	}
	return fn, nil
}

// splitRegions partitions logical file regions by server, clipping at
// strip boundaries, preserving stream order within each server. This is
// the client-side list building the paper identifies as list I/O's
// overhead; it keeps each request carrying only that server's regions.
func (f *File) splitRegions(fileRegions []flatten.Region) [][]flatten.Region {
	out := make([][]flatten.Region, f.layout.NServers)
	for _, reg := range fileRegions {
		f.layout.Split(reg.Off, reg.Len, func(p striping.Piece) bool {
			l := out[p.Server]
			// Merge adjacent logical pieces on the same server.
			if k := len(l); k > 0 && l[k-1].Off+l[k-1].Len == p.Logical {
				l[k-1].Len += p.Len
			} else {
				l = append(l, flatten.Region{Off: p.Logical, Len: p.Len})
			}
			out[p.Server] = l
			return true
		})
	}
	return out
}

// walkMapped walks file-stream pieces split by server, pairing them with
// memory offsets, via the dual cursor. fn is called in stream order.
func (f *File) walkMapped(file, mem flatten.Source, fn func(server int, memOff, n int64) error) (pieces int64, err error) {
	d := flatten.NewDual(file, mem)
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			return pieces, nil
		}
		var inner error
		f.layout.Split(fo, n, func(p striping.Piece) bool {
			delta := p.Logical - fo
			if e := fn(p.Server, mo+delta, p.Len); e != nil {
				inner = e
				return false
			}
			pieces++
			return true
		})
		if inner != nil {
			return pieces, inner
		}
	}
}

// splitListBatches cuts a list I/O call into batches of at most
// wire.MaxListRegions file and memory regions each, preserving stream
// order. The dual cursor pairs file bytes with memory bytes, so each
// batch's two lists cover exactly the same byte count, and issuing the
// batches in order is equivalent to the original call (list I/O
// semantics are defined in stream order). Adjacent pieces re-merge
// within a batch, so region counts do not inflate beyond the pairing
// splits.
func splitListBatches(fileRegions, memRegions []flatten.Region) (fb, mb [][]flatten.Region) {
	d := flatten.NewDual(flatten.NewSliceSource(fileRegions), flatten.NewSliceSource(memRegions))
	var curF, curM []flatten.Region
	flush := func() {
		if len(curF) > 0 {
			fb = append(fb, curF)
			mb = append(mb, curM)
			curF, curM = nil, nil
		}
	}
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			break
		}
		if len(curF) >= wire.MaxListRegions || len(curM) >= wire.MaxListRegions {
			flush()
		}
		if k := len(curF); k > 0 && curF[k-1].Off+curF[k-1].Len == fo {
			curF[k-1].Len += n
		} else {
			curF = append(curF, flatten.Region{Off: fo, Len: n})
		}
		if k := len(curM); k > 0 && curM[k-1].Off+curM[k-1].Len == mo {
			curM[k-1].Len += n
		} else {
			curM = append(curM, flatten.Region{Off: mo, Len: n})
		}
	}
	flush()
	return fb, mb
}

// ReadList performs a list I/O read: file regions (logical byte ranges)
// into memory regions of mem. Calls beyond wire.MaxListRegions regions
// are split into multiple requests transparently (the interface bound
// the paper discusses is the per-request protocol limit, not a caller
// burden).
func (f *File) ReadList(env transport.Env, fileRegions, memRegions []flatten.Region, mem []byte) error {
	total, err := listTotal(fileRegions, memRegions, mem)
	if err != nil {
		return err
	}
	if total == 0 {
		return nil
	}
	if cc := f.cacheFor(); cc != nil {
		regions := make([]cache.Region, len(fileRegions))
		for i, r := range fileRegions {
			regions[i] = cache.Region{Off: r.Off, N: r.Len}
		}
		if err := cc.prepRanges(env, f, false, regions); err != nil {
			return err
		}
	}
	if len(fileRegions) > wire.MaxListRegions || len(memRegions) > wire.MaxListRegions {
		fb, mb := splitListBatches(fileRegions, memRegions)
		for i := range fb {
			if err := f.ReadList(env, fb[i], mb[i], mem); err != nil {
				return err
			}
		}
		return nil
	}
	o := f.c.beginOp(env, "read-list")
	defer f.c.clearOp()
	o.sp.SetAttr("regions", int64(len(fileRegions)))
	tag := f.c.tag()
	perServer := f.splitRegions(fileRegions)
	var servers []int
	for s, regs := range perServer {
		if regs == nil {
			continue
		}
		servers = append(servers, s)
	}
	resps, err := f.sendRecvRead(env, fileRegions[0].Off, servers, func(g, m int) []byte {
		return wire.EncodeListIO(&wire.ListIOReq{Tag: tag, Layout: f.wireLayoutAt(g, m), Regions: perServer[g]}, false)
	}, tag.Seq)
	if err != nil {
		return err
	}
	cursors := make([]int64, f.layout.NServers)
	bufs := make([][]byte, f.layout.NServers)
	for i, s := range servers {
		bufs[s] = resps[i].Data
	}
	pieces, err := f.walkMapped(
		flatten.NewSliceSource(fileRegions),
		flatten.NewSliceSource(memRegions),
		func(server int, memOff, n int64) error {
			b := bufs[server]
			cur := cursors[server]
			if cur+n > int64(len(b)) {
				return fmt.Errorf("pvfs: server %d returned short data", server)
			}
			copy(mem[memOff:memOff+n], b[cur:cur+n])
			cursors[server] = cur + n
			return nil
		})
	if err != nil {
		return err
	}
	env.Compute(f.c.cost.PerRegionClient * time.Duration(pieces))
	if st := f.c.stats(); st != nil {
		st.AddOps(1)
		st.AddAccessed(total)
		st.AddRegions(pieces)
	}
	f.c.endOp(env, o, total)
	return nil
}

// WriteList performs a list I/O write. Like ReadList, oversized calls
// are split into protocol-sized batches, each written in stream order.
func (f *File) WriteList(env transport.Env, fileRegions, memRegions []flatten.Region, mem []byte) error {
	total, err := listTotal(fileRegions, memRegions, mem)
	if err != nil {
		return err
	}
	if total == 0 {
		return nil
	}
	if cc := f.cacheFor(); cc != nil {
		regions := make([]cache.Region, len(fileRegions))
		for i, r := range fileRegions {
			regions[i] = cache.Region{Off: r.Off, N: r.Len}
		}
		if err := cc.prepRanges(env, f, true, regions); err != nil {
			return err
		}
	}
	if len(fileRegions) > wire.MaxListRegions || len(memRegions) > wire.MaxListRegions {
		fb, mb := splitListBatches(fileRegions, memRegions)
		for i := range fb {
			if err := f.WriteList(env, fb[i], mb[i], mem); err != nil {
				return err
			}
		}
		return nil
	}
	o := f.c.beginOp(env, "write-list")
	defer f.c.clearOp()
	o.sp.SetAttr("regions", int64(len(fileRegions)))
	bufs := make([][]byte, f.layout.NServers)
	pieces, err := f.walkMapped(
		flatten.NewSliceSource(fileRegions),
		flatten.NewSliceSource(memRegions),
		func(server int, memOff, n int64) error {
			bufs[server] = append(bufs[server], mem[memOff:memOff+n]...)
			return nil
		})
	if err != nil {
		return err
	}
	env.Compute(f.c.cost.PerRegionClient * time.Duration(pieces))
	perServer := f.splitRegions(fileRegions)
	var servers []int
	for s := 0; s < f.layout.NServers; s++ {
		if bufs[s] == nil {
			continue
		}
		servers = append(servers, s)
	}
	tag := f.c.tag()
	err = f.c.writeAll(env, servers, bufs, func(g, m int, data []byte) []byte {
		return wire.EncodeListIO(&wire.ListIOReq{
			Tag: tag, Layout: f.wireLayoutAt(g, m), Regions: perServer[g], Data: data,
		}, true)
	}, tag.Seq)
	if err != nil {
		return err
	}
	if st := f.c.stats(); st != nil {
		st.AddOps(1)
		st.AddAccessed(total)
		st.AddRegions(pieces)
	}
	f.c.endOp(env, o, total)
	return nil
}

// DtypeAccess describes a datatype I/O operation: memory described by a
// dataloop over the caller's buffer, file described by a dataloop view
// (tiled at Disp), starting at stream position Pos.
type DtypeAccess struct {
	Mem      []byte
	MemLoop  *dataloop.Loop
	MemCount int64
	FileLoop *dataloop.Loop
	Disp     int64 // byte displacement of file tile 0
	Pos      int64 // starting stream offset within the tiled file view
	// NoCoalesce disables adjacent-region coalescing on both client and
	// server (ablation A2).
	NoCoalesce bool
}

func (a *DtypeAccess) validate() (nbytes, tiles int64, err error) {
	if a.MemLoop == nil || a.FileLoop == nil {
		return 0, 0, errors.New("pvfs: nil dataloop")
	}
	nbytes = a.MemCount * a.MemLoop.Size
	if nbytes == 0 {
		return 0, 0, nil
	}
	if a.FileLoop.Size <= 0 {
		return 0, 0, errors.New("pvfs: file dataloop has zero size")
	}
	if a.Pos < 0 || a.Disp < 0 {
		return 0, 0, errors.New("pvfs: negative position or displacement")
	}
	tiles = (a.Pos + nbytes + a.FileLoop.Size - 1) / a.FileLoop.Size
	return nbytes, tiles, nil
}

// ReadDtype performs a datatype read: one logical operation; the file
// dataloop ships to every server of the file, each of which expands it
// locally.
func (f *File) ReadDtype(env transport.Env, a *DtypeAccess) error {
	return f.dtypeOp(env, a, false)
}

// WriteDtype performs a datatype write.
func (f *File) WriteDtype(env transport.Env, a *DtypeAccess) error {
	return f.dtypeOp(env, a, true)
}

func (f *File) dtypeOp(env transport.Env, a *DtypeAccess, write bool) error {
	nbytes, tiles, err := a.validate()
	if err != nil {
		return err
	}
	if nbytes == 0 {
		return nil
	}
	if cc := f.cacheFor(); cc != nil {
		// Datatype footprints are not worth enumerating client-side (the
		// servers expand the loop): conservatively flush the whole file's
		// dirty data, and invalidate it for writes.
		if err := cc.prepFile(env, f, write); err != nil {
			return err
		}
	}
	name := "read-dtype"
	if write {
		name = "write-dtype"
	}
	o := f.c.beginOp(env, name)
	defer f.c.clearOp()
	o.sp.SetAttr("tiles", tiles)
	loopBytes := a.FileLoop.Encode(nil)
	tag := f.c.tag()
	mkReq := func(g, m int, data []byte) []byte {
		return wire.EncodeDtype(&wire.DtypeReq{
			Tag:        tag,
			Layout:     f.wireLayoutAt(g, m),
			Loop:       loopBytes,
			Count:      tiles,
			Disp:       a.Disp,
			Pos:        a.Pos,
			NBytes:     nbytes,
			NoCoalesce: a.NoCoalesce,
			Data:       data,
		}, write)
	}
	newDual := func() (flatten.Source, flatten.Source) {
		return flatten.NewIterAt(a.FileLoop, tiles, a.Disp, a.Pos, nbytes, !a.NoCoalesce),
			flatten.NewIter(a.MemLoop, a.MemCount, 0, !a.NoCoalesce)
	}
	servers := make([]int, f.layout.NServers)
	for i := range servers {
		servers[i] = i
	}
	if write {
		bufs := make([][]byte, f.layout.NServers)
		file, mem := newDual()
		pieces, err := f.walkMapped(file, mem, func(server int, memOff, n int64) error {
			if memOff < 0 || memOff+n > int64(len(a.Mem)) {
				return fmt.Errorf("pvfs: memory region [%d,%d) outside buffer", memOff, memOff+n)
			}
			bufs[server] = append(bufs[server], a.Mem[memOff:memOff+n]...)
			return nil
		})
		if err != nil {
			return err
		}
		// The job/access building overlaps the transfer: real PVFS
		// clients stream accesses as they are generated.
		cpu := f.c.cost.PerRegionClient * time.Duration(pieces)
		if err := env.Overlap(cpu, func() error {
			return f.c.writeAll(env, servers, bufs, mkReq, tag.Seq)
		}); err != nil {
			return err
		}
		if st := f.c.stats(); st != nil {
			st.AddOps(1)
			st.AddAccessed(nbytes)
			st.AddRegions(pieces)
		}
		f.c.endOp(env, o, nbytes)
		return nil
	}
	// Pre-count pieces so the scatter's job-build CPU can be charged
	// overlapped with the transfer: real clients scatter each flow
	// buffer as it arrives.
	var pieces int64
	{
		file, mem := newDual()
		var err error
		pieces, err = f.walkMapped(file, mem, func(int, int64, int64) error { return nil })
		if err != nil {
			return err
		}
	}
	cpu := f.c.cost.PerRegionClient * time.Duration(pieces)
	err = env.Overlap(cpu, func() error {
		resps, err := f.sendRecvRead(env, a.Disp+a.Pos, servers, func(g, m int) []byte {
			return mkReq(g, m, nil)
		}, tag.Seq)
		if err != nil {
			return err
		}
		bufs := make([][]byte, f.layout.NServers)
		cursors := make([]int64, f.layout.NServers)
		for i, s := range servers {
			bufs[s] = resps[i].Data
		}
		file, mem := newDual()
		_, err = f.walkMapped(file, mem, func(server int, memOff, n int64) error {
			if memOff < 0 || memOff+n > int64(len(a.Mem)) {
				return fmt.Errorf("pvfs: memory region [%d,%d) outside buffer", memOff, memOff+n)
			}
			b := bufs[server]
			cur := cursors[server]
			if cur+n > int64(len(b)) {
				return fmt.Errorf("pvfs: server %d returned short data", server)
			}
			copy(a.Mem[memOff:memOff+n], b[cur:cur+n])
			cursors[server] = cur + n
			return nil
		})
		return err
	})
	if err != nil {
		return err
	}
	if st := f.c.stats(); st != nil {
		st.AddOps(1)
		st.AddAccessed(nbytes)
		st.AddRegions(pieces)
	}
	f.c.endOp(env, o, nbytes)
	return nil
}

// Size reports the logical file size (max over servers' local EOFs).
func (f *File) Size(env transport.Env) (int64, error) {
	if cc := f.cacheFor(); cc != nil {
		// Buffered writes do not extend server EOFs until flushed.
		if err := cc.prepFile(env, f, false); err != nil {
			return 0, err
		}
	}
	tag := f.c.tag()
	servers := make([]int, f.layout.NServers)
	for i := range servers {
		servers[i] = i
	}
	resps, err := f.sendRecvRead(env, 0, servers, func(g, m int) []byte {
		return wire.EncodeLocalSize(&wire.LocalSizeReq{Tag: tag, Layout: f.wireLayoutAt(g, m)})
	}, tag.Seq)
	if err != nil {
		return 0, err
	}
	var size int64
	for i, s := range servers {
		if eof := f.layout.LocalEOF(s, resps[i].Size); eof > size {
			size = eof
		}
	}
	return size, nil
}

// Truncate sets the logical file size.
func (f *File) Truncate(env transport.Env, size int64) error {
	if cc := f.cacheFor(); cc != nil {
		// Flush and drop everything cached for the file: chunks past the
		// new EOF would resurrect truncated bytes.
		if err := cc.syncFile(env, f); err != nil {
			return err
		}
	}
	tag := f.c.tag()
	groups := make([]int, f.layout.NServers)
	for i := range groups {
		groups[i] = i
	}
	// Truncation mutates every replica member, so it rides the write
	// fan-out path (with no payload to carry).
	return f.c.writeAll(env, groups, make([][]byte, f.layout.NServers),
		func(g, m int, _ []byte) []byte {
			return wire.EncodeTruncate(&wire.TruncateReq{Tag: tag, Layout: f.wireLayoutAt(g, m), Size: size})
		}, tag.Seq)
}

// Admin sends a fault-administration request to I/O server s: stall,
// crash-restart, or disk-degrade (pvfsctl's stall/crash/degrade verbs,
// and the bench fault driver's wire path). The response is read
// directly — admin requests are untagged and never retried; a crash ack
// is followed by the server closing the connection, so the cached conn
// is dropped.
func (c *Client) Admin(env transport.Env, s int, op wire.AdminOp, dur time.Duration, factor int64) error {
	_, err := c.adminCall(env, s, op, dur, factor)
	return err
}

// adminCall performs one untagged admin exchange with server s and
// returns the raw response (whose Data carries the AdminStats payload).
func (c *Client) adminCall(env transport.Env, s int, op wire.AdminOp, dur time.Duration, factor int64) (*wire.IOResp, error) {
	if s < 0 || s >= len(c.serverAddrs) {
		return nil, fmt.Errorf("pvfs: no server %d", s)
	}
	conn, err := c.conn(env, s)
	if err != nil {
		return nil, err
	}
	req := wire.EncodeAdmin(&wire.AdminReq{Op: op, Dur: int64(dur), Factor: factor})
	if err := conn.Send(env, req); err != nil {
		c.dropConn(s)
		return nil, fmt.Errorf("pvfs: admin send to server %d: %w", s, err)
	}
	raw, err := transport.RecvTimeout(env, conn, c.Retry.Timeout)
	if err != nil {
		c.dropConn(s)
		return nil, fmt.Errorf("pvfs: admin recv from server %d: %w", s, err)
	}
	_, v, err := wire.DecodeMsg(raw)
	if err != nil {
		c.dropConn(s)
		return nil, err
	}
	r, ok := v.(*wire.IOResp)
	if !ok {
		c.dropConn(s)
		return nil, errors.New("pvfs: unexpected admin response")
	}
	if op == wire.AdminCrash {
		c.dropConn(s) // the server closes this conn as it goes down
	}
	if !r.OK {
		return nil, &serverError{s: s, msg: r.Err}
	}
	return r, nil
}

// FetchStats retrieves I/O server s's live introspection snapshot
// (pvfsctl's stats verb) over the admin path.
func (c *Client) FetchStats(env transport.Env, s int) (*ServerSnapshot, error) {
	r, err := c.adminCall(env, s, wire.AdminStats, 0, 0)
	if err != nil {
		return nil, err
	}
	var snap ServerSnapshot
	if err := json.Unmarshal(r.Data, &snap); err != nil {
		return nil, fmt.Errorf("pvfs: server %d stats payload: %w", s, err)
	}
	return &snap, nil
}

// FetchFlight retrieves I/O server s's flight-recorder dump (the
// last-N per-request completion events, DESIGN.md §17) over the admin
// path. A server without a recorder answers with an empty dump.
func (c *Client) FetchFlight(env transport.Env, s int) (*flightrec.Dump, error) {
	r, err := c.adminCall(env, s, wire.AdminFlightRec, 0, 0)
	if err != nil {
		return nil, err
	}
	var d flightrec.Dump
	if err := json.Unmarshal(r.Data, &d); err != nil {
		return nil, fmt.Errorf("pvfs: server %d flight payload: %w", s, err)
	}
	return &d, nil
}

// FetchMetaStats retrieves metadata shard s's introspection snapshot
// (pvfsctl's stats verb). Lease traffic crossing the response on the
// shard's connection is stashed, like any other metadata exchange.
func (c *Client) FetchMetaStats(env transport.Env, s int) (*MetaSnapshot, error) {
	if s < 0 || s >= c.shards.N() {
		return nil, fmt.Errorf("pvfs: no meta shard %d", s)
	}
	conn, err := c.metaDial(env, s)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(env, wire.EncodeMetaStats()); err != nil {
		return nil, err
	}
	for {
		raw, err := transport.RecvTimeout(env, conn, c.Retry.Timeout)
		if err != nil {
			return nil, fmt.Errorf("pvfs: meta shard %d stats: %w", s, err)
		}
		t, v, err := wire.DecodeMsg(raw)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MTIOResp:
			r := v.(*wire.IOResp)
			if !r.OK {
				return nil, fmt.Errorf("pvfs: meta shard %d: %s", s, r.Err)
			}
			var snap MetaSnapshot
			if err := json.Unmarshal(r.Data, &snap); err != nil {
				return nil, fmt.Errorf("pvfs: meta shard %d stats payload: %w", s, err)
			}
			return &snap, nil
		case wire.MTLockGrant:
			c.pendGrants = append(c.pendGrants, v.(*wire.LockGrant))
		case wire.MTLeaseRevoke:
			c.pendRevokes = append(c.pendRevokes, v.(*wire.LeaseRevoke))
		default:
			return nil, errors.New("pvfs: unexpected meta stats response " + t.String())
		}
	}
}

// Regions re-exports the flatten region type for list I/O callers.
type Region = datatype.Region

// MaxListRegions re-exports the per-request list I/O region bound.
const MaxListRegions = wire.MaxListRegions
