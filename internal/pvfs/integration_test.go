package pvfs

import (
	"bytes"
	"testing"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// TestTCPClusterEndToEnd runs a real TCP cluster on loopback and
// exercises every access interface through it.
func TestTCPClusterEndToEnd(t *testing.T) {
	net := transport.NewTCPNetwork()
	env := transport.NewRealEnv()
	const nServers = 3

	// Bind listeners on ephemeral ports first so addresses are known.
	metaL, err := net.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metaAddr, _ := transport.BoundAddr(metaL)
	metaL.Close()
	meta := NewMetaServer(net, metaAddr, nServers)
	go meta.Serve(env)
	defer meta.Close()

	var addrs []string
	var servers []*Server
	for i := 0; i < nServers; i++ {
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := transport.BoundAddr(l)
		l.Close()
		s := NewServer(net, addr, i, CostModel{})
		servers = append(servers, s)
		addrs = append(addrs, addr)
		go s.Serve(env)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	c := NewClient(net, metaAddr, addrs, CostModel{})
	defer c.Close()
	var f *File
	for i := 0; i < 200; i++ {
		f, err = c.Create(env, "tcp.dat", 128, 0)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("create over TCP: %v", err)
	}

	// Contig across stripes.
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := f.WriteContig(env, 123, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 123, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP contig round trip corrupted")
	}

	// Datatype I/O over TCP.
	fileTy := datatype.Vector(50, 1, 3, datatype.Int32)
	mem := make([]byte, 200)
	for i := range mem {
		mem[i] = byte(i + 7)
	}
	a := &DtypeAccess{
		Mem: mem, MemLoop: dataloop.FromType(datatype.Bytes(200)), MemCount: 1,
		FileLoop: dataloop.FromType(fileTy), Disp: 20000,
	}
	if err := f.WriteDtype(env, a); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 200)
	a2 := *a
	a2.Mem = back
	if err := f.ReadDtype(env, &a2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, mem) {
		t.Fatal("TCP dtype round trip corrupted")
	}

	// List I/O over TCP.
	lr := []Region{{Off: 50000, Len: 64}, {Off: 51000, Len: 36}}
	mr := []Region{{Off: 0, Len: 100}}
	if err := f.WriteList(env, lr, mr, mem[:100]); err != nil {
		t.Fatal(err)
	}
	lg := make([]byte, 100)
	if err := f.ReadList(env, lr, mr, lg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lg, mem[:100]) {
		t.Fatal("TCP list round trip corrupted")
	}

	size, err := f.Size(env)
	if err != nil {
		t.Fatal(err)
	}
	if size != 51036 {
		t.Fatalf("size=%d", size)
	}
}

// TestServerGoneMidRun: killing a server makes client operations fail
// with errors, not hang.
func TestServerGoneMidRun(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, err := c.Create(env, "die.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteContig(env, 0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	// Kill server 1 (its listener and, via closed conns, its handlers).
	tc.servers[1].Close()
	// The client's cached connection dies with the handler after the
	// server stops accepting; a fresh client cannot dial at all.
	c2 := tc.client()
	defer c2.Close()
	f2, err := c2.Open(env, "die.dat")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1000)
		done <- f2.ReadContig(env, 0, buf)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read succeeded with a dead server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read hung on dead server")
	}
}

// TestResponseValidation: clients reject short server data.
func TestClientRejectsShortData(t *testing.T) {
	// A server handler that answers OK with truncated data.
	net := transport.NewMemNetwork()
	env := transport.NewRealEnv()
	lis, err := net.Listen("evil")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := lis.Accept(env)
		if err != nil {
			return
		}
		for {
			raw, err := conn.Recv(env)
			if err != nil {
				return
			}
			// Always respond OK with 1 byte, whatever was asked —
			// echoing the tag so the client accepts the frame.
			var seq uint64
			if _, v, err := wire.DecodeMsg(raw); err == nil {
				if r, ok := v.(*wire.ContigReq); ok {
					seq = r.Tag.Seq
				}
			}
			conn.Send(env, encodeEvilResp(seq))
		}
	}()
	meta := NewMetaServer(net, "meta", 1)
	go meta.Serve(env)
	defer meta.Close()
	c := NewClient(net, "meta", []string{"evil"}, CostModel{})
	defer c.Close()
	var f *File
	for i := 0; i < 1000; i++ {
		f, err = c.Create(env, "x", 64, 0)
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if err := f.ReadContig(env, 0, buf); err == nil {
		t.Fatal("short response accepted")
	}
}

func encodeEvilResp(seq uint64) []byte {
	return wire.EncodeIOResp(&wire.IOResp{Seq: seq, OK: true, Data: []byte{0}})
}

func TestDataloopCache(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, err := c.Create(env, "cache.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 64)
	a := &DtypeAccess{
		Mem: mem, MemLoop: dataloop.FromType(datatype.Bytes(64)), MemCount: 1,
		FileLoop: dataloop.FromType(datatype.Vector(16, 1, 2, datatype.Int32)),
	}
	for i := 0; i < 5; i++ {
		if err := f.WriteDtype(env, a); err != nil {
			t.Fatal(err)
		}
	}
	cs := tc.servers[0].LoopCacheStats()
	if cs.Misses != 1 || cs.Hits != 4 {
		t.Fatalf("hits=%d misses=%d, want 4/1", cs.Hits, cs.Misses)
	}
	// Cached programs replay on the compiled path.
	if tc.servers[0].CompiledReplays() == 0 {
		t.Fatal("no compiled replays recorded for a cached regular view")
	}
	// Disabled cache decodes every time.
	tc.servers[0].DisableLoopCache = true
	for i := 0; i < 3; i++ {
		if err := f.ReadDtype(env, a); err != nil {
			t.Fatal(err)
		}
	}
	c2 := tc.servers[0].LoopCacheStats()
	if c2.Hits != cs.Hits || c2.Misses != cs.Misses {
		t.Fatalf("disabled cache still updated: %d/%d", c2.Hits, c2.Misses)
	}
}
