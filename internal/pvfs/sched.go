package pvfs

import (
	"sort"
	"sync"
	"time"

	"dtio/internal/iostats"
	"dtio/internal/storage"
	"dtio/internal/transport"
)

// DefaultSieveGapBytes is the default read gap-merge threshold of the
// disk scheduler: two runs separated by at most this many bytes are
// served by one over-reading disk operation. 64 KiB sits well below the
// ~25 KB/op break-even of the calibrated cost model times the typical
// merge fan-in, and matches the flow-control segment size so one
// sieved dispatch never dwarfs a streaming batch.
const DefaultSieveGapBytes = 64 * 1024

// vecMinRunBytes is the average-run-size floor for vectored dispatch.
// preadv/pwritev pay a per-iovec kernel cost, so once a coalesced
// operation's runs shrink toward cell size, one scalar access plus a
// scatter/gather copy through pooled scratch moves the same bytes
// faster than a long iovec list. Runs averaging at or above the floor
// (row-sized and larger) dispatch vectored; smaller ones stage.
const vecMinRunBytes = 512

// ioSpan is one physical run a request produces: n bytes at off on the
// server's local object, occupying [pos, pos+n) of the request-order
// payload (writes) or response (reads). Write runs carry their payload
// bytes; read runs are filled from disk.
type ioSpan struct {
	off, n int64
	pos    int64
	data   []byte
}

// diskOp is one dispatched disk operation: the coalesced runs
// sorted[first:first+count], issued as a single n-byte access at off.
// For reads n may exceed the runs' byte total — gaps up to the sieve
// threshold are over-read and discarded (data sieving at the disk).
type diskOp struct {
	off, n       int64
	first, count int
}

// segPlan is one planned dispatch batch: ops[opsFrom:opsTo] plus the
// batch's modeled disk time.
type segPlan struct {
	opsFrom, opsTo int
	cost           time.Duration
}

// diskSched is the per-request disk scheduler (DESIGN.md §10). It
// collects the physical runs a request produces, reorders each dispatch
// batch by physical offset (elevator order), coalesces strictly
// adjacent runs — plus, for reads, runs separated by gaps up to the
// sieve threshold — and prices the result per dispatched operation with
// a seek term proportional to head travel. The head position carries
// across a request's batches, so a streamed transfer that continues
// sequentially pays one positioning charge, not one per segment.
type diskSched struct {
	cost    CostModel
	stats   *iostats.Stats
	write   bool
	noSort  bool  // ablation: arrival-order dispatch, no coalescing
	vec     bool  // dispatch coalesced ops as one vectored store call
	vecMin  int64 // average-run floor for vectored dispatch (0: always)
	gap     int64 // read gap-merge threshold (0 = adjacency only)
	scale   int64 // disk-time multiplier in percent (0 or 100 = normal)
	head    int64 // head position after the last dispatched op
	started bool  // head is meaningful

	spans  []ioSpan  // arrival order, as the request walk produced them
	sorted []ioSpan  // dispatch order, one batch after another
	ops    []diskOp  // dispatched operations; first/count index sorted
	segs   []segPlan // per-segment plans of a streamed read
	iov    [][]byte  // scatter-gather list reused across vectored ops
}

// schedPool recycles schedulers (and their slices) across requests so
// the read/write hot paths stay allocation-free in steady state.
var schedPool = sync.Pool{New: func() any { return new(diskSched) }}

// newSched returns a pooled scheduler configured for this server.
func (s *Server) newSched(write bool) *diskSched {
	d := schedPool.Get().(*diskSched)
	d.cost = s.cost
	d.stats = s.Stats
	d.write = write
	d.noSort = s.DisableDiskSched
	d.vec = !s.DisableVectoredIO
	d.vecMin = vecMinRunBytes
	d.gap = s.SieveGapBytes
	d.scale = s.diskScale.Load()
	d.head = 0
	d.started = false
	return d
}

// clearSpans drops payload references so pooled slices don't pin
// request buffers, and truncates.
func clearSpans(s []ioSpan) []ioSpan {
	for i := range s {
		s[i].data = nil
	}
	return s[:0]
}

func putSched(d *diskSched) {
	d.spans = clearSpans(d.spans)
	d.sorted = clearSpans(d.sorted)
	d.ops = d.ops[:0]
	d.segs = d.segs[:0]
	d.iov = clearIov(d.iov)
	d.stats = nil
	d.vecMin = 0
	schedPool.Put(d)
}

// clearIov drops buffer references so the pooled scatter-gather list
// doesn't pin response frames or payload segments, and truncates.
func clearIov(iov [][]byte) [][]byte {
	for i := range iov {
		iov[i] = nil
	}
	return iov[:0]
}

// add records one physical run. Zero-length runs are dropped here: they
// produce no disk operation and charge no disk time (a request that
// touches zero bytes must not occupy the disk).
func (d *diskSched) add(off, n, pos int64, data []byte) {
	if n <= 0 {
		return
	}
	d.spans = append(d.spans, ioSpan{off: off, n: n, pos: pos, data: data})
}

// writeOverlap reports whether any two offset-sorted write runs touch
// the same byte.
func writeOverlap(b []ioSpan) bool {
	for i := 1; i < len(b); i++ {
		if b[i].off < b[i-1].off+b[i-1].n {
			return true
		}
	}
	return false
}

// planBatch schedules one dispatch batch: it appends the batch to the
// dispatch-order list, coalesces it into operations, and prices them.
// batch must not alias d.sorted. Overlapping write runs fall back to
// arrival order — reordering them would change the bytes on disk.
func (d *diskSched) planBatch(batch []ioSpan) segPlan {
	p := segPlan{opsFrom: len(d.ops), opsTo: len(d.ops)}
	if len(batch) == 0 {
		return p
	}
	from := len(d.sorted)
	d.sorted = append(d.sorted, batch...)
	b := d.sorted[from:]
	if !d.noSort {
		sort.Slice(b, func(i, j int) bool {
			if b[i].off != b[j].off {
				return b[i].off < b[j].off
			}
			return b[i].pos < b[j].pos
		})
		if d.write && writeOverlap(b) {
			copy(b, batch)
		}
	}
	cur := diskOp{off: b[0].off, n: b[0].n, first: from, count: 1}
	for i := 1; i < len(b); i++ {
		sp := b[i]
		end := cur.off + cur.n
		var join bool
		switch {
		case d.noSort:
			// Ablation: every run dispatches as its own operation.
		case d.write:
			join = sp.off == end
		default:
			join = sp.off >= cur.off && sp.off <= end+d.gap
		}
		if join {
			if e := sp.off + sp.n; e > end {
				cur.n = e - cur.off
			}
			cur.count++
			continue
		}
		d.ops = append(d.ops, cur)
		cur = diskOp{off: sp.off, n: sp.n, first: from + i, count: 1}
	}
	d.ops = append(d.ops, cur)
	p.opsTo = len(d.ops)
	p.cost = d.charge(d.ops[p.opsFrom:p.opsTo], int64(len(batch)))
	return p
}

// charge prices one batch's operations and advances the head. An
// operation starting exactly at the head continues the previous
// dispatch sequentially: no positioning charge and no new operation
// counted — the disk just keeps streaming.
func (d *diskSched) charge(ops []diskOp, nIn int64) time.Duration {
	var t time.Duration
	var nOut, seek int64
	for _, op := range ops {
		if !d.started || op.off != d.head {
			t += d.cost.DiskPerOp
			if d.started {
				dist := op.off - d.head
				if dist < 0 {
					dist = -dist
				}
				t += d.cost.diskSeek(dist)
				seek += dist
			}
			nOut++
		}
		t += d.cost.diskXfer(op.n, d.write)
		d.head = op.off + op.n
		d.started = true
	}
	if d.stats != nil {
		d.stats.AddDisk(nIn, nOut, seek)
	}
	if d.scale > 0 && d.scale != 100 {
		t = t * time.Duration(d.scale) / 100
	}
	return t
}

// runReads plans and executes a non-streamed read: every collected
// run's bytes land at dst[run.pos:]. Disk time is charged after the
// data is read, where the pre-scheduler path charged it.
func (d *diskSched) runReads(env transport.Env, st storage.Store, dst []byte) error {
	p := d.planBatch(d.spans)
	if err := d.readBatch(st, p, dst, 0); err != nil {
		return err
	}
	env.DiskUse(p.cost)
	return nil
}

// readBatch executes one planned batch's reads: single-run operations
// land directly in dst, and coalesced ones dispatch as one vectored
// scatter (storage.ReadAtv — preadv on file stores) whose buffers are
// the runs' dst windows, so run bytes never pass through a staging
// copy. Sieved gap bytes scatter into a pooled throwaway slice. Runs
// that overlap on disk (the same bytes feed two response positions)
// cannot scatter in one pass, so those operations — and every one when
// vectoring is disabled or the runs average below the vecMin floor —
// stage through a pooled scratch buffer and copy out per run. Either
// way the response is byte-identical. base translates absolute payload
// positions into dst indices.
func (d *diskSched) readBatch(st storage.Store, p segPlan, dst []byte, base int64) error {
	for _, op := range d.ops[p.opsFrom:p.opsTo] {
		runs := d.sorted[op.first : op.first+op.count]
		if op.count == 1 {
			sp := runs[0]
			if err := st.ReadAt(dst[sp.pos-base:sp.pos-base+sp.n], sp.off); err != nil {
				return err
			}
			continue
		}
		if d.vec {
			if maxGap, runBytes, ok := vecLayout(op, runs); ok && runBytes >= d.vecMin*int64(op.count) {
				if err := d.readVec(st, op, runs, dst, base, maxGap); err != nil {
					return err
				}
				continue
			}
		}
		bp := getBuf(int(op.n))
		if err := st.ReadAt(*bp, op.off); err != nil {
			putBuf(bp)
			return err
		}
		for _, sp := range runs {
			copy(dst[sp.pos-base:sp.pos-base+sp.n], (*bp)[sp.off-op.off:sp.off-op.off+sp.n])
		}
		putBuf(bp)
	}
	return nil
}

// vecLayout reports whether a coalesced operation's runs are ascending
// and non-overlapping — the layout a one-pass scatter can serve — plus
// the widest gap between consecutive runs (the scratch size the gap
// buffers need) and the runs' byte total (for the vecMin floor). Sorted
// read runs may still overlap: the join rule admits any run starting
// inside the current operation.
func vecLayout(op diskOp, runs []ioSpan) (maxGap, runBytes int64, ok bool) {
	end := op.off
	for _, sp := range runs {
		if sp.off < end {
			return 0, 0, false
		}
		if g := sp.off - end; g > maxGap {
			maxGap = g
		}
		runBytes += sp.n
		end = sp.off + sp.n
	}
	return maxGap, runBytes, true
}

// readVec dispatches one coalesced operation as a single vectored read.
// Every gap shares one pooled scratch slice: the store fills buffers in
// ascending offset order and gap bytes are discarded, so the aliasing
// is harmless.
func (d *diskSched) readVec(st storage.Store, op diskOp, runs []ioSpan, dst []byte, base, maxGap int64) error {
	iov := d.iov[:0]
	var gp *[]byte
	if maxGap > 0 {
		gp = getBuf(int(maxGap))
	}
	end := op.off
	for _, sp := range runs {
		if g := sp.off - end; g > 0 {
			iov = append(iov, (*gp)[:g])
		}
		iov = append(iov, dst[sp.pos-base:sp.pos-base+sp.n])
		end = sp.off + sp.n
	}
	err := st.ReadAtv(iov, op.off)
	if gp != nil {
		putBuf(gp)
	}
	d.iov = clearIov(iov)
	if d.stats != nil {
		d.stats.AddVec(1)
	}
	return err
}

// flushWrites dispatches the runs buffered so far — a whole inline
// payload, or one flow-control segment's worth of a streamed one — and
// resets the batch, keeping the head position. The disk charge lands
// before the writes, where the streamed path's per-segment charge was.
func (d *diskSched) flushWrites(env transport.Env, st storage.Store) error {
	if len(d.spans) == 0 {
		return nil
	}
	p := d.planBatch(d.spans)
	env.DiskUse(p.cost)
	err := d.writeBatch(st, p)
	d.spans = clearSpans(d.spans)
	d.sorted = clearSpans(d.sorted)
	d.ops = d.ops[:0]
	return err
}

// writeBatch executes one planned batch's writes: single-run operations
// write their payload directly, and coalesced ones hand their payload
// slices to the store as one vectored gather (storage.WriteAtv —
// pwritev on file stores), zero-copy. Coalesced write runs are always
// strictly adjacent (the join rule), so the gather covers the
// operation exactly and op.n is the runs' byte total. With vectoring
// disabled, or runs averaging below the vecMin floor, the runs gather
// into a pooled scratch buffer and issue one scalar WriteAt.
func (d *diskSched) writeBatch(st storage.Store, p segPlan) error {
	for _, op := range d.ops[p.opsFrom:p.opsTo] {
		runs := d.sorted[op.first : op.first+op.count]
		if op.count == 1 {
			if err := st.WriteAt(runs[0].data, op.off); err != nil {
				return err
			}
			continue
		}
		if d.vec && op.n >= d.vecMin*int64(op.count) {
			iov := d.iov[:0]
			for _, sp := range runs {
				iov = append(iov, sp.data)
			}
			err := st.WriteAtv(iov, op.off)
			d.iov = clearIov(iov)
			if d.stats != nil {
				d.stats.AddVec(1)
			}
			if err != nil {
				return err
			}
			continue
		}
		bp := getBuf(int(op.n))
		for _, sp := range runs {
			copy((*bp)[sp.off-op.off:], sp.data)
		}
		err := st.WriteAt(*bp, op.off)
		putBuf(bp)
		if err != nil {
			return err
		}
	}
	return nil
}

// planStream splits the collected read runs at flow-control segment
// boundaries of the response payload and plans one dispatch batch per
// segment, in order (the head carries across batches, so a run split by
// a segment boundary continues sequentially for free). It returns one
// plan per segment; execute them with readBatch in the same order.
func (d *diskSched) planStream(total, seg int64) []segPlan {
	nseg := (total + seg - 1) / seg
	split := make([]ioSpan, 0, len(d.spans)+int(nseg))
	starts := make([]int, nseg+1)
	k := int64(0)
	for _, sp := range d.spans {
		for sp.n > 0 {
			for sp.pos >= (k+1)*seg {
				k++
				starts[k] = len(split)
			}
			take := (k+1)*seg - sp.pos
			if take > sp.n {
				take = sp.n
			}
			split = append(split, ioSpan{off: sp.off, n: take, pos: sp.pos})
			sp.off += take
			sp.pos += take
			sp.n -= take
		}
	}
	starts[nseg] = len(split)
	d.segs = d.segs[:0]
	for k := int64(0); k < nseg; k++ {
		d.segs = append(d.segs, d.planBatch(split[starts[k]:starts[k+1]]))
	}
	return d.segs
}
