package pvfs

import (
	"sync"
	"sync/atomic"
	"testing"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/transport"
)

func cacheServer() *Server {
	return NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
}

// distinctLoop returns the wire encoding of a loop unique to n.
func distinctLoop(n int64) []byte {
	return dataloop.FromType(datatype.Bytes(n)).Encode(nil)
}

func TestLoopCacheEvictionBound(t *testing.T) {
	s := cacheServer()
	for i := int64(1); i <= loopCacheCap; i++ {
		if _, _, hit, err := s.cachedLoop(distinctLoop(i)); err != nil || hit {
			t.Fatalf("i=%d hit=%v err=%v", i, hit, err)
		}
	}
	if n := len(s.loopCache); n != loopCacheCap {
		t.Fatalf("cache holds %d entries, want %d", n, loopCacheCap)
	}
	// Mark one entry hot, then stream 200 cold distinct views through.
	// Second-chance eviction keeps the cache exactly at capacity and the
	// hot entry survives every sweep; a reset would wipe it.
	hot := distinctLoop(1)
	if _, _, hit, _ := s.cachedLoop(hot); !hit {
		t.Fatal("warm entry missed")
	}
	const cold = 200
	for i := int64(0); i < cold; i++ {
		if _, _, hit, err := s.cachedLoop(distinctLoop(loopCacheCap + 1 + i)); err != nil || hit {
			t.Fatalf("cold insert %d hit=%v err=%v", i, hit, err)
		}
		if n := len(s.loopCache); n != loopCacheCap {
			t.Fatalf("cache holds %d entries mid-stream, want %d", n, loopCacheCap)
		}
		if _, _, hit, _ := s.cachedLoop(hot); !hit {
			t.Fatalf("hot entry evicted after %d cold inserts", i+1)
		}
	}
	cs := s.LoopCacheStats()
	if cs.Evictions != cold {
		t.Fatalf("evictions=%d, want %d", cs.Evictions, cold)
	}
	if cs.Misses != loopCacheCap+cold {
		t.Fatalf("misses=%d, want %d", cs.Misses, loopCacheCap+cold)
	}
	if cs.Hits != cold+1 {
		t.Fatalf("hits=%d, want %d", cs.Hits, cold+1)
	}
	// The most recent cold entry is still resident.
	if _, _, hit, _ := s.cachedLoop(distinctLoop(loopCacheCap + cold)); !hit {
		t.Fatal("fresh entry missed")
	}
}

func TestLoopCacheDisabled(t *testing.T) {
	s := cacheServer()
	s.DisableLoopCache = true
	enc := distinctLoop(7)
	for i := 0; i < 3; i++ {
		l, prog, hit, err := s.cachedLoop(enc)
		if err != nil || l == nil || hit {
			t.Fatalf("l=%v hit=%v err=%v", l, hit, err)
		}
		if prog != nil {
			t.Fatal("disabled cache compiled a program")
		}
	}
	if cs := s.LoopCacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", cs.Hits, cs.Misses)
	}
	if s.loopCache != nil {
		t.Fatal("disabled cache stored entries")
	}
}

func TestLoopCacheStatsConcurrent(t *testing.T) {
	// Hammer the cache from many goroutines (meaningful under -race):
	// every call is either a hit or a miss, and double-misses from
	// check-then-insert races are bounded by goroutines x keys.
	s := cacheServer()
	const goroutines, calls, keys = 8, 200, 4
	encs := make([][]byte, keys)
	for i := range encs {
		encs[i] = distinctLoop(int64(100 + i))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, _, _, err := s.cachedLoop(encs[(g+i)%keys]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cs := s.LoopCacheStats()
	if cs.Hits+cs.Misses != goroutines*calls {
		t.Fatalf("hits=%d + misses=%d != %d calls", cs.Hits, cs.Misses, goroutines*calls)
	}
	if cs.Misses < keys || cs.Misses > goroutines*keys {
		t.Fatalf("misses=%d outside [%d,%d]", cs.Misses, keys, goroutines*keys)
	}
}

func TestCompiledCacheConcurrentReplay(t *testing.T) {
	// Many goroutines hitting the same cached compiled program and
	// replaying it concurrently: Program must be immutable in practice,
	// not just by doc-comment (this is the -race coverage for concurrent
	// compiled-cache hits).
	s := cacheServer()
	enc := dataloop.FromType(datatype.Vector(64, 2, 5, datatype.Int32)).Encode(nil)
	loop, prog, _, err := s.cachedLoop(enc)
	if err != nil || prog == nil {
		t.Fatalf("prog=%v err=%v", prog, err)
	}
	want := loop.Size * 3
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, p, hit, err := s.cachedLoop(enc)
				if err != nil || !hit || p == nil {
					bad.Add(1)
					return
				}
				var got int64
				p.Replay(3, 0, 0, want, func(off, n int64) error {
					got += n
					return nil
				})
				if got != want {
					bad.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d goroutines saw a bad replay", bad.Load())
	}
}

func TestLoopCacheHitPathAllocs(t *testing.T) {
	// The hit path must be allocation-free: the []byte->string map lookup
	// is elided by the compiler and the entry is returned as-is.
	s := cacheServer()
	enc := distinctLoop(42)
	if _, _, hit, err := s.cachedLoop(enc); err != nil || hit {
		t.Fatalf("warmup hit=%v err=%v", hit, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		l, _, hit, err := s.cachedLoop(enc)
		if err != nil || !hit || l == nil {
			t.Fatalf("l=%v hit=%v err=%v", l, hit, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("loop cache hit path allocates %.1f per lookup", allocs)
	}
}
