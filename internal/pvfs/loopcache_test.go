package pvfs

import (
	"sync"
	"testing"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/transport"
)

func cacheServer() *Server {
	return NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
}

// distinctLoop returns the wire encoding of a loop unique to n.
func distinctLoop(n int64) []byte {
	return dataloop.FromType(datatype.Bytes(n)).Encode(nil)
}

func TestLoopCacheEvictionBound(t *testing.T) {
	s := cacheServer()
	for i := int64(1); i <= 1024; i++ {
		if _, hit, err := s.cachedLoop(distinctLoop(i)); err != nil || hit {
			t.Fatalf("i=%d hit=%v err=%v", i, hit, err)
		}
	}
	if n := len(s.loopCache); n != 1024 {
		t.Fatalf("cache holds %d entries, want 1024", n)
	}
	// The 1025th distinct loop trips the bound: the cache resets rather
	// than growing without limit.
	if _, hit, err := s.cachedLoop(distinctLoop(1025)); err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if n := len(s.loopCache); n != 1 {
		t.Fatalf("cache holds %d entries after reset, want 1", n)
	}
	// An early entry was evicted by the reset: requesting it misses.
	if _, hit, _ := s.cachedLoop(distinctLoop(1)); hit {
		t.Fatal("evicted entry reported as hit")
	}
	// The survivor of the reset still hits.
	if _, hit, _ := s.cachedLoop(distinctLoop(1025)); !hit {
		t.Fatal("fresh entry missed")
	}
	hits, misses := s.LoopCacheStats()
	if hits != 1 || misses != 1026 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestLoopCacheDisabled(t *testing.T) {
	s := cacheServer()
	s.DisableLoopCache = true
	enc := distinctLoop(7)
	for i := 0; i < 3; i++ {
		l, hit, err := s.cachedLoop(enc)
		if err != nil || l == nil || hit {
			t.Fatalf("l=%v hit=%v err=%v", l, hit, err)
		}
	}
	if hits, misses := s.LoopCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", hits, misses)
	}
	if s.loopCache != nil {
		t.Fatal("disabled cache stored entries")
	}
}

func TestLoopCacheStatsConcurrent(t *testing.T) {
	// Hammer the cache from many goroutines (meaningful under -race):
	// every call is either a hit or a miss, and double-misses from
	// check-then-insert races are bounded by goroutines x keys.
	s := cacheServer()
	const goroutines, calls, keys = 8, 200, 4
	encs := make([][]byte, keys)
	for i := range encs {
		encs[i] = distinctLoop(int64(100 + i))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, _, err := s.cachedLoop(encs[(g+i)%keys]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := s.LoopCacheStats()
	if hits+misses != goroutines*calls {
		t.Fatalf("hits=%d + misses=%d != %d calls", hits, misses, goroutines*calls)
	}
	if misses < keys || misses > goroutines*keys {
		t.Fatalf("misses=%d outside [%d,%d]", misses, keys, goroutines*keys)
	}
}

func TestLoopCacheHitPathAllocs(t *testing.T) {
	// The hit path must be allocation-free: the []byte->string map lookup
	// is elided by the compiler and the entry is returned as-is.
	s := cacheServer()
	enc := distinctLoop(42)
	if _, hit, err := s.cachedLoop(enc); err != nil || hit {
		t.Fatalf("warmup hit=%v err=%v", hit, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		l, hit, err := s.cachedLoop(enc)
		if err != nil || !hit || l == nil {
			t.Fatalf("l=%v hit=%v err=%v", l, hit, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("loop cache hit path allocates %.1f per lookup", allocs)
	}
}
