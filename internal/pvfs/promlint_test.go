package pvfs

import (
	"bytes"
	"strings"
	"testing"

	"dtio/internal/iostats"
	"dtio/internal/metrics"
	"dtio/internal/transport"
)

// TestPrometheusNamingConformance lints the exact registries the
// daemons serve on /metrics: every counter must end in _total,
// durations must export in base seconds, sizes in bytes, fractions as
// ratios, and histogram names must match their seconds-valued buckets.
// Registration goes through RegisterServerMetrics/RegisterMetaMetrics,
// the same path cmd/pvfs-server and cmd/pvfs-meta use, so a
// nonconforming name added to either daemon fails here.
func TestPrometheusNamingConformance(t *testing.T) {
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	s.Metrics = &ServerMetrics{}
	s.Stats = &iostats.Stats{}
	sreg := metrics.NewRegistry()
	RegisterServerMetrics(sreg, s)
	for _, p := range sreg.Lint() {
		t.Errorf("pvfs-server registry: %s", p)
	}

	m := NewMetaServer(transport.NewMemNetwork(), "meta", 4)
	mreg := metrics.NewRegistry()
	RegisterMetaMetrics(mreg, m)
	for _, p := range mreg.Lint() {
		t.Errorf("pvfs-meta registry: %s", p)
	}
}

// TestPrometheusExpositionRenders: the renamed metrics must actually
// appear in the text exposition with their declared types — a rename
// that lints clean but never renders would be worse than the old name.
func TestPrometheusExpositionRenders(t *testing.T) {
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	s.Metrics = &ServerMetrics{}
	s.Stats = &iostats.Stats{}
	reg := metrics.NewRegistry()
	RegisterServerMetrics(reg, s)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pvfs_server_read_latency_seconds histogram",
		"# TYPE pvfs_server_replays_total counter",
		"# TYPE pvfs_server_lock_wait_seconds_total counter",
		"# TYPE pvfs_server_failover_seconds_total counter",
		"# TYPE pvfs_server_cache_hit_ratio gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, gone := range []string{"_ns ", "_pct ", "pvfs_server_replays "} {
		if strings.Contains(out, gone) {
			t.Errorf("exposition still serves pre-rename metric %q", gone)
		}
	}
}
