package pvfs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dtio/internal/transport"
	"dtio/internal/vtime"
	"dtio/internal/wire"
)

// metaRig is a metadata server alone on a Mem network — enough for
// namespace and lock tests, which never touch the I/O servers.
type metaRig struct {
	net  *transport.MemNetwork
	env  transport.Env
	meta *MetaServer
}

func startMeta(t *testing.T, lease time.Duration) *metaRig {
	t.Helper()
	rig := &metaRig{
		net: transport.NewMemNetwork(),
		env: transport.NewRealEnv(),
	}
	rig.meta = NewMetaServer(rig.net, "meta", 4)
	rig.meta.LeaseTimeout = lease
	go rig.meta.Serve(rig.env)
	t.Cleanup(rig.meta.Close)
	c := rig.client()
	defer c.Close()
	for i := 0; i < 2000; i++ {
		if _, err := c.Create(rig.env, "__probe__", 64, 0); err == nil {
			c.metaCall(rig.env, 0, wire.EncodeRemove(&wire.RemoveReq{Name: "__probe__"}))
			return rig
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("metadata server did not come up")
	return nil
}

func (rig *metaRig) client() *Client {
	return NewClient(rig.net, "meta", []string{"io0", "io1", "io2", "io3"}, CostModel{})
}

func TestMetaErrorPaths(t *testing.T) {
	rig := startMeta(t, 0)
	c := rig.client()
	defer c.Close()
	env := rig.env

	if _, err := c.Create(env, "", 64, 0); err == nil || !strings.Contains(err.Error(), "empty file name") {
		t.Fatalf("empty name: %v", err)
	}
	if _, err := c.Create(env, "a", 0, 0); err == nil || !strings.Contains(err.Error(), "strip size") {
		t.Fatalf("zero strip: %v", err)
	}
	if _, err := c.Create(env, "a", 64, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(env, "a", 64, 0); err == nil || !strings.Contains(err.Error(), "file exists") {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := c.Open(env, "nope"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := c.metaCall(env, 0, wire.EncodeRemove(&wire.RemoveReq{Name: "nope"})); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("remove missing: %v", err)
	}
	// A data-server message sent to the metadata port is refused, not
	// misinterpreted.
	if _, err := c.metaCall(env, 0, wire.EncodeLocalSize(&wire.LocalSizeReq{})); err == nil || !strings.Contains(err.Error(), "unexpected message") {
		t.Fatalf("wrong-port message: %v", err)
	}
	// So is a frame that does not decode.
	conn, err := rig.net.Dial(env, "meta")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(env, []byte{255, 1, 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, v, err := wire.DecodeMsg(raw); err != nil {
		t.Fatal(err)
	} else if r := v.(*wire.MetaResp); r.OK || !strings.Contains(r.Err, "bad request") {
		t.Fatalf("garbage frame: %+v", r)
	}
}

// TestCloseRacingServe drives Close concurrently with Serve start-up:
// whichever order the listener registration and the close land in, Serve
// must return and never leave a live listener behind.
func TestCloseRacingServe(t *testing.T) {
	for i := 0; i < 50; i++ {
		net := transport.NewMemNetwork()
		env := transport.NewRealEnv()
		m := NewMetaServer(net, "meta", 2)
		done := make(chan error, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			wg.Done()
			done <- m.Serve(env)
		}()
		wg.Wait()
		m.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Serve did not return after Close", i)
		}
		// The address must be free again: a second server can bind it.
		if _, err := net.Listen("meta"); err != nil {
			t.Fatalf("iteration %d: listener leaked: %v", i, err)
		}
	}
}

func TestLockProtocol(t *testing.T) {
	rig := startMeta(t, 0)
	env := rig.env
	ca := rig.client()
	cb := rig.client()
	defer ca.Close()
	defer cb.Close()

	fa, err := ca.Create(env, "locked.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, "locked.dat")
	if err != nil {
		t.Fatal(err)
	}

	// Shared locks on overlapping ranges coexist.
	sa, err := fa.Lock(env, 0, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fb.Lock(env, 50, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Unlock(env, sa); err != nil {
		t.Fatal(err)
	}
	if err := fb.Unlock(env, sb); err != nil {
		t.Fatal(err)
	}

	// An exclusive conflict blocks until release.
	la, err := fa.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *FileLock, 1)
	go func() {
		lb, err := fb.Lock(env, 50, 10, false)
		if err != nil {
			t.Error(err)
		}
		got <- lb
	}()
	select {
	case <-got:
		t.Fatal("conflicting lock granted while held")
	case <-time.After(20 * time.Millisecond):
	}
	if err := fa.Unlock(env, la); err != nil {
		t.Fatal(err)
	}
	var lb *FileLock
	select {
	case lb = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never granted after release")
	}
	if err := fb.Unlock(env, lb); err != nil {
		t.Fatal(err)
	}

	// Double release is refused.
	if err := fb.Unlock(env, lb); err == nil {
		t.Fatal("double unlock accepted")
	}
	s := rig.meta.LockStats()
	if s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked lock state: %+v", s)
	}
	if s.Waits != 1 || s.Immediate != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if st := cb.Stats; st != nil {
		t.Fatal("test assumes nil stats") // guard against rig drift
	}
}

// TestLockDisconnectReleases covers the crash path a lease also guards:
// closing the holder's connection frees its locks immediately.
func TestLockDisconnectReleases(t *testing.T) {
	rig := startMeta(t, 0)
	env := rig.env
	ca := rig.client()
	cb := rig.client()
	defer cb.Close()

	fa, err := ca.Create(env, "d.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Lock(env, 0, 1<<20, false); err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, "d.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		lb, err := fb.Lock(env, 0, 64, false)
		if err == nil {
			err = fb.Unlock(env, lb)
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	ca.Close()                        // holder vanishes without releasing
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not granted after holder disconnect")
	}
	if s := rig.meta.LockStats(); s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked lock state: %+v", s)
	}
}

// TestLockRemoveFailsWaiters: removing a file fails its queued lock
// requests instead of leaving them to wait forever.
func TestLockRemoveFailsWaiters(t *testing.T) {
	rig := startMeta(t, 0)
	env := rig.env
	ca := rig.client()
	cb := rig.client()
	cc := rig.client()
	defer ca.Close()
	defer cb.Close()
	defer cc.Close()

	fa, err := ca.Create(env, "r.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	la, err := fa.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, "r.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := fb.Lock(env, 0, 100, false)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	// Remove the file's metadata entry (client Remove would also wipe
	// server objects; there are none in this rig).
	if _, err := cc.metaCall(env, 0, wire.EncodeRemove(&wire.RemoveReq{Name: "r.dat"})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err == nil || !strings.Contains(err.Error(), "file removed") {
			t.Fatalf("waiter outcome: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still queued after file removal")
	}
	// The holder's lock state is gone with the file.
	if err := fa.Unlock(env, la); err == nil {
		t.Fatal("unlock succeeded on a removed file's lock")
	}
	if s := rig.meta.LockStats(); s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked lock state: %+v", s)
	}
}

// TestLockLeaseExpiry exercises lazy lease reclamation outside the
// simulator: once the lease elapses on the wall clock, the next lock
// operation sweeps the stale holder and grants the waiter.
func TestLockLeaseExpiry(t *testing.T) {
	const lease = 20 * time.Millisecond
	rig := startMeta(t, lease)
	env := rig.env
	ca := rig.client()
	cb := rig.client()
	cc := rig.client()
	defer ca.Close()
	defer cb.Close()
	defer cc.Close()

	fa, err := ca.Create(env, "l.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Lock(env, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, "l.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		lb, err := fb.Lock(env, 0, 100, false)
		if err == nil {
			err = fb.Unlock(env, lb)
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // waiter queues; lease still live
	select {
	case <-got:
		t.Fatal("waiter granted before the lease expired")
	default:
	}
	time.Sleep(2 * lease) // client A is now presumed dead...
	fc, err := cc.Open(env, "l.dat")
	if err != nil {
		t.Fatal(err)
	}
	// ...and any lock traffic reclaims its lease.
	lc, err := fc.Lock(env, 500, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not granted after lease expiry")
	}
	if err := fc.Unlock(env, lc); err != nil {
		t.Fatal(err)
	}
	s := rig.meta.LockStats()
	if s.Expired == 0 {
		t.Fatalf("no lease reclaimed: %+v", s)
	}
	if s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked lock state: %+v", s)
	}
}

// TestLockLeaseWatchdogSim runs the crashed-holder scenario in virtual
// time, where Sleep advances the clock: the server's watchdog must grant
// the waiter at exactly the lease deadline, with no lock traffic to
// trigger a lazy sweep.
func TestLockLeaseWatchdogSim(t *testing.T) {
	const lease = 100 * time.Millisecond
	sched := vtime.New()
	net := transport.NewSimNet(sched, transport.DefaultSimConfig())
	serverNode := net.NewNode()
	nodeA := net.NewNode()
	nodeB := net.NewNode()

	meta := NewMetaServer(net, transport.Addr(serverNode, "meta"), 1)
	meta.LeaseTimeout = lease
	net.Spawn("meta", serverNode, func(env transport.Env) { meta.Serve(env) })

	addrs := []string{transport.Addr(serverNode, "io")} // never dialed
	metaAddr := transport.Addr(serverNode, "meta")

	var grantedAt time.Duration
	var waitErr error
	done := sched.NewWaitGroup()
	done.Add(2)

	// Client A acquires and then "crashes": it stops participating but
	// keeps its connection open, so only the lease can free the range.
	net.Spawn("clientA", nodeA, func(env transport.Env) {
		defer done.Done()
		c := NewClient(net, metaAddr, addrs, CostModel{})
		f, err := c.Create(env, "w.dat", 64, 0)
		if err == nil {
			_, err = f.Lock(env, 0, 100, false)
		}
		if err != nil {
			waitErr = err
			return
		}
		env.Sleep(10 * lease) // crashed, conn still up
		c.Close()
	})
	// Client B requests the same range shortly after and must be rescued
	// by the watchdog at the lease deadline.
	net.Spawn("clientB", nodeB, func(env transport.Env) {
		defer done.Done()
		c := NewClient(net, metaAddr, addrs, CostModel{})
		defer c.Close()
		env.Sleep(10 * time.Millisecond)
		f, err := c.Open(env, "w.dat")
		if err == nil {
			_, err = f.Lock(env, 0, 100, false)
		}
		if err != nil {
			waitErr = err
			return
		}
		grantedAt = env.Now()
	})
	net.Spawn("controller", serverNode, func(env transport.Env) {
		done.Wait(env.(*transport.SimEnv).Proc())
		meta.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if waitErr != nil {
		t.Fatal(waitErr)
	}
	if grantedAt < lease || grantedAt > lease+10*time.Millisecond {
		t.Fatalf("waiter granted at %v; want the %v lease deadline", grantedAt, lease)
	}
	if s := meta.LockStats(); s.Expired != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestLockLeaseWatchdogReal pins the watchdog on real envs: a waiter
// queued behind a silent (but still connected) holder must be granted
// once the lease elapses, with no further lock traffic to trigger a
// lazy sweep — the watchdog goroutine waits the lease out on the wall
// clock.
func TestLockLeaseWatchdogReal(t *testing.T) {
	const lease = 30 * time.Millisecond
	rig := startMeta(t, lease)
	env := rig.env
	ca := rig.client()
	cb := rig.client()
	defer ca.Close()
	defer cb.Close()

	fa, err := ca.Create(env, "w.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Lock(env, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, "w.dat")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lb, err := fb.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < lease/2 {
		t.Fatalf("waiter granted after %v, before the lease could expire", waited)
	}
	if err := fb.Unlock(env, lb); err != nil {
		t.Fatal(err)
	}
	s := rig.meta.LockStats()
	if s.Expired == 0 {
		t.Fatalf("stats: no lease expiry recorded: %+v", s)
	}
	if s.Held != 0 || s.Queued != 0 {
		t.Fatalf("stats: leaked state: %+v", s)
	}
}
