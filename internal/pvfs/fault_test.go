package pvfs

import (
	"bytes"
	"testing"
	"time"

	"dtio/internal/fault"
	"dtio/internal/iostats"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// testRetryPolicy is tight enough to keep wall-clock tests fast: the
// Mem network delivers instantly, so a timeout only ever fires because
// a fault ate a frame or a server is stalled/down.
func testRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts:   12,
		Timeout:    60 * time.Millisecond,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
	}
}

// faultyClient returns a stats-collecting retry client whose I/O-server
// connections (and only those — the metadata channel stays reliable)
// run through the injector.
func faultyClient(tc *testCluster, plan fault.Plan) (*Client, *fault.Injector) {
	in := fault.NewInjector(plan)
	net := in.WrapNetwork(tc.net, func(addr string) bool { return addr != "meta" })
	c := NewClient(net, "meta", tc.addrs, CostModel{})
	c.Stats = &iostats.Stats{}
	c.Retry = testRetryPolicy()
	return c, in
}

// TestRetryUnderLoss: with drops, duplicates, and resets injected on
// every I/O connection, reads and writes still complete with the right
// bytes, and the retry counters show the recovery machinery worked.
func TestRetryUnderLoss(t *testing.T) {
	tc := startCluster(t, 2)
	env := tc.env
	c, in := faultyClient(tc, fault.Plan{Seed: 11, DropProb: 0.08, DupProb: 0.03, ResetProb: 0.01})
	defer c.Close()
	c.StreamChunkBytes = 8 * 1024 // more frames per transfer = more faults met

	f, err := c.Create(env, "lossy.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i*7 + i/251)
	}
	for round := 0; round < 3; round++ {
		if err := f.WriteContig(env, int64(round)*int64(len(data)), data); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
	}
	got := make([]byte, len(data))
	for round := 0; round < 3; round++ {
		if err := f.ReadContig(env, int64(round)*int64(len(data)), got); err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d read corrupted", round)
		}
	}
	// List I/O under the same fire.
	regions := []Region{{Off: 5, Len: 1000}, {Off: 100000, Len: 1000}}
	memR := []Region{{Off: 0, Len: 2000}}
	lgot := make([]byte, 2000)
	if err := f.ReadList(env, regions, memR, lgot); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lgot[:1000], data[5:1005]) || !bytes.Equal(lgot[1000:], data[100000:101000]) {
		t.Fatal("list read corrupted")
	}

	st := in.Stats()
	if st.Dropped == 0 {
		t.Fatal("injector dropped nothing — the test exercised no faults")
	}
	snap := c.Stats.Snapshot()
	if snap.Retries == 0 {
		t.Fatalf("frames were dropped (%d) but the client never retried", st.Dropped)
	}
	if snap.ReplayedBytes == 0 {
		t.Fatal("write retries recorded no replayed payload bytes")
	}
}

// TestWriteDedupSuppressesReplay: a write retried after its response
// was lost must not re-apply once another client has overwritten the
// range — at-most-once semantics via the server's replay cache.
func TestWriteDedupSuppressesReplay(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c := tc.client()
	defer c.Close()
	f, err := c.Create(env, "dedup.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tc.net.Dial(env, "io0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqA := wire.EncodeContig(&wire.ContigReq{
		Tag: wire.ReqTag{Client: 77, Seq: 1}, Layout: f.wireLayout(0),
		Off: 0, N: 4, Data: []byte("AAAA"),
	}, true)
	rawExchange := func() *wire.IOResp {
		t.Helper()
		if err := conn.Send(env, reqA); err != nil {
			t.Fatal(err)
		}
		raw, err := transport.RecvTimeout(env, conn, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, v, err := wire.DecodeMsg(raw)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := v.(*wire.IOResp)
		if !ok || !r.OK || r.Seq != 1 {
			t.Fatalf("bad write response %+v", v)
		}
		return r
	}
	rawExchange() // original write applies: file = AAAA

	// Another client overwrites the range.
	if err := f.WriteContig(env, 0, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}

	// The "lost response" retry: identical frame, same tag. The server
	// must answer from its replay cache without touching the object.
	rawExchange()
	got := make([]byte, 4)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "BBBB" {
		t.Fatalf("replayed write resurrected old bytes: %q", got)
	}
}

// TestStreamedWriteResumeAfterCrash drives the wire protocol by hand:
// half a streamed write, a server crash, then a resumed retry with
// StartSeg at the last acknowledged segment. The server must skip the
// already-durable prefix and the final bytes must be exactly the
// payload.
func TestStreamedWriteResumeAfterCrash(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c := tc.client()
	defer c.Close()
	f, err := c.Create(env, "resume.dat", 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	const seg, window, nseg = int64(1024), int64(2), int64(8)
	total := seg * nseg
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	inner := wire.EncodeContig(&wire.ContigReq{
		Tag: wire.ReqTag{Client: 99, Seq: 5}, Layout: f.wireLayout(0),
		Off: 0, N: total,
	}, true)

	sendSegs := func(conn transport.Conn, from, to int64) {
		t.Helper()
		for k := from; k < to; k++ {
			frame := wire.AppendStreamChunk(nil, uint32(k), "", payload[k*seg:(k+1)*seg])
			if err := conn.Send(env, frame); err != nil {
				t.Fatalf("segment %d: %v", k, err)
			}
		}
	}

	conn, err := tc.net.Dial(env, "io0")
	if err != nil {
		t.Fatal(err)
	}
	hdr := wire.EncodeWriteStreamHdr(&wire.WriteStreamHdr{
		Total: total, SegBytes: int32(seg), Window: int32(window),
		StartSeg: 0, Inner: inner,
	})
	if err := conn.Send(env, hdr); err != nil {
		t.Fatal(err)
	}
	sendSegs(conn, 0, 4)
	// Collect acks until segment 3 is acknowledged: segments 0..2 are
	// then durably flushed (the server flushes k before receiving k+1).
	lastAck, err := recvAckAtLeast(env, conn, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc.servers[0].Crash(20 * time.Millisecond)
	conn.Close()

	// Redial once the restarted incarnation is listening.
	var conn2 transport.Conn
	for i := 0; i < 2000; i++ {
		if conn2, err = tc.net.Dial(env, "io0"); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server did not restart: %v", err)
	}
	start := int64(lastAck)
	hdr2 := wire.EncodeWriteStreamHdr(&wire.WriteStreamHdr{
		Total: total, SegBytes: int32(seg), Window: int32(window),
		StartSeg: start, Inner: inner,
	})
	if err := conn2.Send(env, hdr2); err != nil {
		t.Fatal(err)
	}
	sendSegs(conn2, start, nseg)
	// Skip trailing acks; the tagged response ends the exchange.
	var resp *wire.IOResp
	for {
		raw, err := transport.RecvTimeout(env, conn2, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, v, err := wire.DecodeMsg(raw)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := v.(*wire.IOResp); ok {
			resp = r
			break
		}
	}
	if !resp.OK || resp.Seq != 5 {
		t.Fatalf("resumed write response %+v", resp)
	}
	conn2.Close()

	got := make([]byte, total)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("resumed streamed write corrupted data")
	}
}

// TestRetryAfterStall: a stalled server produces timeouts, not errors;
// the operation completes once the stall passes, and the stats show
// timeouts, retries, replayed bytes, and a failover duration.
func TestRetryAfterStall(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c, _ := faultyClient(tc, fault.Plan{}) // no message faults; just retries
	defer c.Close()
	c.Retry.Timeout = 40 * time.Millisecond
	f, err := c.Create(env, "stall.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteContig(env, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	tc.servers[0].StallFor(env, 250*time.Millisecond)
	if err := f.WriteContig(env, 0, []byte("world")); err != nil {
		t.Fatalf("write through stall: %v", err)
	}
	got := make([]byte, 5)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	snap := c.Stats.Snapshot()
	if snap.Timeouts == 0 || snap.Retries == 0 {
		t.Fatalf("stall produced no timeouts/retries: %+v", snap)
	}
	if snap.ReplayedBytes < 5 {
		t.Fatalf("replayed bytes %d, want >= 5", snap.ReplayedBytes)
	}
	if snap.FailoverNs <= 0 {
		t.Fatal("no failover time recorded")
	}
}

// TestCrashRestartClientRecovers: a fail-stop crash mid-session. The
// client rides it out with redial retries; the server's objects (its
// "disk") survive the restart.
func TestCrashRestartClientRecovers(t *testing.T) {
	tc := startCluster(t, 2)
	env := tc.env
	c, _ := faultyClient(tc, fault.Plan{})
	defer c.Close()
	f, err := c.Create(env, "crash.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32*1024)
	for i := range data {
		data[i] = byte(i % 131)
	}
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	tc.servers[0].Crash(80 * time.Millisecond)
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatalf("read across crash-restart: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across crash-restart")
	}
	if snap := c.Stats.Snapshot(); snap.Retries == 0 {
		t.Fatal("crash recovery recorded no retries")
	}
}

// TestAdminOverWire: pvfsctl's stall/degrade/crash verbs go through
// Client.Admin and the wire AdminReq.
func TestAdminOverWire(t *testing.T) {
	tc := startCluster(t, 1)
	env := tc.env
	c, _ := faultyClient(tc, fault.Plan{})
	defer c.Close()
	f, err := c.Create(env, "admin.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Admin(env, 0, wire.AdminDegrade, 0, 400); err != nil {
		t.Fatal(err)
	}
	if got := tc.servers[0].diskScale.Load(); got != 400 {
		t.Fatalf("disk scale %d, want 400", got)
	}
	if err := c.Admin(env, 0, wire.AdminDegrade, 0, 100); err != nil {
		t.Fatal(err)
	}

	if err := c.Admin(env, 0, wire.AdminStall, 150*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	c.Retry.Timeout = 40 * time.Millisecond
	if err := f.WriteContig(env, 0, []byte("stalled")); err != nil {
		t.Fatal(err)
	}
	if snap := c.Stats.Snapshot(); snap.Timeouts == 0 {
		t.Fatal("admin stall produced no timeouts")
	}

	if err := c.Admin(env, 0, wire.AdminCrash, 60*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatalf("read after admin crash: %v", err)
	}
	if string(got) != "stalled" {
		t.Fatalf("got %q", got)
	}
}

// TestLeaseReclaimedOnClientDeath: a client that dies holding a lock —
// without its connection closing, so the disconnect path never fires —
// loses the lock to the metadata server's lease watchdog, and a second
// client's queued acquire is granted.
func TestLeaseReclaimedOnClientDeath(t *testing.T) {
	net := transport.NewMemNetwork()
	env := transport.NewRealEnv()
	meta := NewMetaServer(net, "meta", 1)
	meta.LeaseTimeout = 120 * time.Millisecond
	go meta.Serve(env)
	defer meta.Close()
	srv := NewServer(net, "io0", 0, CostModel{})
	go srv.Serve(env)
	defer srv.Close()

	c1 := NewClient(net, "meta", []string{"io0"}, CostModel{})
	var f1 *File
	var err error
	for i := 0; i < 2000; i++ {
		if f1, err = c1.Create(env, "lease.dat", 64, 0); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Lock(env, 0, 10, false); err != nil {
		t.Fatal(err)
	}
	// c1 "dies" here: never unlocks, never closes. The meta connection
	// stays open, so only the lease watchdog can free the range.

	c2 := NewClient(net, "meta", []string{"io0"}, CostModel{})
	defer c2.Close()
	f2, err := c2.Open(env, "lease.dat")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var lk2 *FileLock
	go func() {
		var e error
		lk2, e = f2.Lock(env, 0, 10, false)
		done <- e
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lock never reclaimed from dead client")
	}
	if err := f2.Unlock(env, lk2); err != nil {
		t.Fatal(err)
	}
}
