package pvfs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dtio/internal/flightrec"
	"dtio/internal/trace"
)

// TestAdaptiveThresholdTracksP99 drives the rolling-p99 cutoff: it
// starts at the floor, then follows the latency distribution of the
// most recent window rather than the all-time histogram.
func TestAdaptiveThresholdTracksP99(t *testing.T) {
	m := &ServerMetrics{}
	at := NewAdaptiveThreshold(m, 50*time.Microsecond)

	// No samples yet: the first call's recompute skips (window too
	// small) and the floor holds.
	if got := at.Threshold(); got != 50*time.Microsecond {
		t.Fatalf("empty threshold %v, want floor", got)
	}

	// A fast window: p99 lands in the 100µs bucket's range.
	for i := 0; i < 300; i++ {
		m.ReadLat.Observe(100 * time.Microsecond)
	}
	var thr time.Duration
	for i := 0; i < thresholdRecompute+1; i++ { // cross a recompute boundary
		thr = at.Threshold()
	}
	if thr < 50*time.Microsecond || thr > time.Millisecond {
		t.Fatalf("fast-window threshold %v, want ~100µs", thr)
	}

	// The server degrades: the next window is 30ms ops, and the cutoff
	// must follow it up even though all-time p99 is dragged down by the
	// earlier fast samples.
	for i := 0; i < 300; i++ {
		m.ReadLat.Observe(30 * time.Millisecond)
	}
	for i := 0; i < thresholdRecompute+1; i++ {
		thr = at.Threshold()
	}
	if thr < 10*time.Millisecond {
		t.Fatalf("degraded-window threshold %v, want >= 10ms (rolling, not all-time)", thr)
	}

	// Nil is a valid disabled threshold.
	var nilAT *AdaptiveThreshold
	if got := nilAT.Threshold(); got != 0 {
		t.Fatalf("nil threshold %v", got)
	}
}

// TestTailTracingOnLiveCluster runs tail-sampled tracing over real
// cluster traffic: with an unreachable cutoff every tree drops; once
// ops qualify as slow, the request trees commit with client/server
// linkage intact and the flight-recorder context stamped on the root.
func TestTailTracingOnLiveCluster(t *testing.T) {
	tr := trace.New()
	var cutoff atomic.Int64
	cutoff.Store(int64(time.Hour)) // phase 1: nothing is slow
	var ring *flightrec.Ring
	tr.EnableTailSampling(trace.TailConfig{ // before any traffic, like a daemon would
		Threshold: func() time.Duration { return time.Duration(cutoff.Load()) },
		OnKeepSlow: func(root *trace.Span) {
			root.SetStr("flight", flightrec.NewDump(0, ring).TailText(nil, 4))
		},
	})
	tc, c := startStreamCluster(t, 2, 64*1024, 4, func(s *Server) {
		s.Tracer = tr
		if s.Index() == 0 {
			ring = flightrec.New(64)
			s.Flight = ring
		}
	})
	c.Tracer = tr
	c.TraceTrack = "rank0"
	env := tc.env

	f, err := c.Create(env, "tail.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := patterned(9000)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("fast traffic retained %d spans under tail sampling", n)
	}
	roots, slow, _, dropped := tr.TailStats()
	if roots == 0 || slow != 0 || dropped == 0 {
		t.Fatalf("phase-1 stats roots=%d slow=%d dropped=%d", roots, slow, dropped)
	}

	// Phase 2: every op is now "slow" — trees commit whole.
	cutoff.Store(1)
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("slow traffic retained nothing")
	}
	byID := map[trace.SpanID]*trace.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var reqLinked, flightAttr int
	for _, sp := range spans {
		if strings.HasPrefix(sp.Track, "io-server-") && sp.Parent != 0 {
			if p, ok := byID[sp.Parent]; ok && p.Track == "rank0" {
				reqLinked++
			}
		}
		for _, a := range sp.Attrs {
			if a.Key == "flight" && a.IsStr && a.Str != "" {
				flightAttr++
			}
		}
	}
	if reqLinked == 0 {
		t.Fatal("retained trees lost client/server span linkage")
	}
	if flightAttr == 0 {
		t.Fatal("no retained root carries flight-recorder context")
	}
}
