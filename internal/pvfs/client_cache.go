package pvfs

import (
	"errors"
	"sort"

	"dtio/internal/cache"
	"dtio/internal/flatten"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// clientCache couples the extent cache (internal/cache) with lease
// bookkeeping and the revocation protocol (DESIGN.md §13). Every
// resident chunk is covered by a revocable byte-range lock — shared for
// read-only chunks, exclusive for dirty ones — acquired from the
// metadata server's lock service, so cross-client coherence reduces to
// lock conflicts: the server revokes whichever leases block a new
// request, the holder flushes and releases, and the requester proceeds.
//
// Everything here runs on the client's single logical thread. Revokes
// arrive on the meta connection and are serviced at two kinds of safe
// point: inline while blocked in lockCall (breaking hold-and-wait
// cycles between caching clients), and polled at cached-op boundaries
// via the transport's non-blocking receive. Holding leases across
// external synchronization (a barrier) is therefore forbidden — the
// mpiio layer flushes at the end of every collective operation, and
// other users must call Sync/Flush before synchronizing.
type clientCache struct {
	c      *Client
	store  *cache.Store
	byLock map[uint64]*cache.Chunk // granted lease id -> covered chunk
	files  map[uint64]*File        // handle -> a File to flush through
	// busy marks an internal fill or flush in flight, so the plain
	// read/write path it uses does not re-enter the cache.
	busy bool
}

func (c *Client) cacheEnabled() bool { return c.CacheBytes > 0 }

func (c *Client) cacheState() *clientCache {
	if c.cc == nil {
		c.cc = &clientCache{
			c:      c,
			store:  cache.New(cache.Config{ChunkBytes: c.CacheChunkBytes, MaxBytes: c.CacheBytes}),
			byLock: make(map[uint64]*cache.Chunk),
			files:  make(map[uint64]*File),
		}
	}
	return c.cc
}

// cacheFor returns the client's cache when this file operation should
// consult it: caching enabled, the file not opted out, and no internal
// fill/flush already driving the plain path.
func (f *File) cacheFor() *clientCache {
	if !f.c.cacheEnabled() || f.NoCache {
		return nil
	}
	cc := f.c.cacheState()
	if cc.busy {
		return nil
	}
	return cc
}

// maintain is the op-boundary safe point: service revocations the meta
// server pushed since the last operation (deferred from mid-exchange
// arrivals, plus whatever the non-blocking poll surfaces now), then
// flush leases nearing expiry while dirty data is still ours to write.
func (cc *clientCache) maintain(env transport.Env) error {
	for {
		for len(cc.c.pendRevokes) > 0 {
			r := cc.c.pendRevokes[0]
			cc.c.pendRevokes = cc.c.pendRevokes[1:]
			if err := cc.handleRevoke(env, r); err != nil {
				return err
			}
		}
		// Poll every shard connection: a revocation arrives on the
		// connection its lease was granted on, and a multi-shard client
		// may hold leases on several.
		polled := false
		for _, conn := range cc.c.metas {
			if conn == nil {
				continue
			}
			raw, ok, err := transport.TryRecv(env, conn)
			if err != nil || !ok {
				// No polling support (TCP) or nothing pending: lock-wait
				// servicing and lease expiry remain the coherence backstops.
				continue
			}
			polled = true
			t, v, derr := wire.DecodeMsg(raw)
			if derr != nil {
				return derr
			}
			switch t {
			case wire.MTLeaseRevoke:
				cc.c.pendRevokes = append(cc.c.pendRevokes, v.(*wire.LeaseRevoke))
			case wire.MTLockGrant:
				cc.c.pendGrants = append(cc.c.pendGrants, v.(*wire.LockGrant))
			}
		}
		if !polled && len(cc.c.pendRevokes) == 0 {
			break
		}
	}
	return cc.expireLeases(env)
}

// expireLeases flushes and drops chunks whose lease deadline (with a
// safety margin, see ensureLease) has passed: dirty data must reach the
// servers while the lease still protects the range. A client that slept
// past the full server-side lease re-acquires before flushing
// (ensureLease), accepting last-writer-wins on anything written in the
// gap.
func (cc *clientCache) expireLeases(env transport.Env) error {
	now := int64(env.Now())
	var expired []*cache.Chunk
	for _, ch := range cc.store.All() {
		if ch.LeaseEnd != 0 && now >= ch.LeaseEnd {
			expired = append(expired, ch)
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].Handle != expired[j].Handle {
			return expired[i].Handle < expired[j].Handle
		}
		return expired[i].Off < expired[j].Off
	})
	for _, ch := range expired {
		if err := cc.dropChunk(env, ch, true); err != nil {
			return err
		}
		if st := cc.c.stats(); st != nil {
			st.AddInvalidations(1)
		}
	}
	return nil
}

// handleRevoke services one server-pushed revocation: flush the covered
// chunk's dirty ranges, release the lease (the release is the ack the
// server's waiter queue is waiting on), and drop the chunk. An unknown
// lock id means our own release crossed the revoke on the wire; nothing
// to do.
func (cc *clientCache) handleRevoke(env transport.Env, r *wire.LeaseRevoke) error {
	ch := cc.byLock[r.LockID]
	if ch == nil {
		return nil
	}
	sp := cc.c.Tracer.Begin(env, cc.c.track(), "cache:invalidate", cc.c.opSpan.SID())
	sp.SetAttr("off", ch.Off)
	sp.SetAttr("dirty", ch.Dirty.Bytes())
	err := cc.dropChunk(env, ch, true)
	sp.End(env)
	if st := cc.c.stats(); st != nil {
		st.AddInvalidations(1)
	}
	return err
}

// dropChunk removes a chunk from the cache, optionally flushing its
// dirty ranges first, and releases its lease.
func (cc *clientCache) dropChunk(env transport.Env, ch *cache.Chunk, flush bool) error {
	if flush && len(ch.Dirty) > 0 {
		if f := cc.files[ch.Handle]; f != nil {
			if err := cc.flushChunks(env, f, []*cache.Chunk{ch}); err != nil {
				return err
			}
		}
	}
	cc.releaseLease(env, ch)
	cc.store.Drop(ch)
	return nil
}

// releaseLease gives the chunk's lock back to the meta server. Errors
// are swallowed: a lease the server already reclaimed (expiry, dropped
// handle) reports "no such lock", and on a dead meta connection the
// server's owner cleanup releases everything anyway.
func (cc *clientCache) releaseLease(env transport.Env, ch *cache.Chunk) {
	if ch.LockID == 0 {
		return
	}
	id := ch.LockID
	delete(cc.byLock, id)
	ch.LockID = 0
	_, _ = cc.c.metaCall(env, cc.c.shards.OfHandle(ch.Handle), wire.EncodeLockRelease(&wire.LockReleaseReq{
		Handle: ch.Handle, LockID: id,
	}))
}

// releaseShardsExcept flushes and drops every cached chunk whose lease
// lives on a shard other than s. Called before blocking on shard s's
// lock service: while blocked, the client reads only shard s's
// connection, so a lease it still held elsewhere could be revoked into
// the void and deadlock the revoker against our wait. Surrendering the
// other shards' leases first makes the blocked client revocation-free
// everywhere it is not listening.
func (cc *clientCache) releaseShardsExcept(env transport.Env, s int) error {
	var doomed []*cache.Chunk
	for _, ch := range cc.store.All() {
		if cc.c.shards.OfHandle(ch.Handle) != s {
			doomed = append(doomed, ch)
		}
	}
	sort.Slice(doomed, func(i, j int) bool {
		if doomed[i].Handle != doomed[j].Handle {
			return doomed[i].Handle < doomed[j].Handle
		}
		return doomed[i].Off < doomed[j].Off
	})
	for _, ch := range doomed {
		if err := cc.dropChunk(env, ch, true); err != nil {
			return err
		}
	}
	return nil
}

// ensureLease returns the chunk at chunkOff holding a live lease strong
// enough for the access, acquiring or upgrading as needed. An upgrade
// (shared -> exclusive) or a near-expiry lease is flushed, released and
// re-acquired; its cached data cannot survive the release, because the
// range is unprotected in between.
func (cc *clientCache) ensureLease(env transport.Env, f *File, chunkOff int64, excl bool) (*cache.Chunk, error) {
	now := int64(env.Now())
	if ch := cc.store.Get(f.handle, chunkOff); ch != nil && ch.LockID != 0 {
		if (ch.LeaseEnd == 0 || now < ch.LeaseEnd) && (ch.Exclusive || !excl) {
			cc.store.Touch(ch)
			return ch, nil
		}
		if err := cc.dropChunk(env, ch, true); err != nil {
			return nil, err
		}
	}
	sp := cc.c.Tracer.Begin(env, cc.c.track(), "lock", cc.c.opSpan.SID())
	sp.SetAttr("off", chunkOff)
	g, err := cc.c.lockCall(env, cc.c.shards.OfHandle(f.handle), wire.EncodeLockAcquire(&wire.LockAcquireReq{
		Handle: f.handle, Off: chunkOff, N: cc.store.ChunkBytes(),
		Shared: !excl, Span: uint64(sp.SID()), Revocable: true,
	}))
	sp.End(env)
	if err != nil {
		return nil, err
	}
	if st := cc.c.stats(); st != nil {
		st.AddLock()
		st.AddLockWait(g.WaitedNs)
	}
	ch := cc.store.GetOrCreate(f.handle, chunkOff)
	ch.LockID, ch.Exclusive = g.LockID, excl
	ch.LeaseEnd = 0
	if g.LeaseNs > 0 {
		// Flush at 3/4 of the lease: the margin is what lets dirty data
		// reach the servers before the server-side reclaim.
		ch.LeaseEnd = int64(env.Now()) + g.LeaseNs*3/4
	}
	cc.byLock[g.LockID] = ch
	cc.files[f.handle] = f
	return ch, nil
}

// readContig serves a small read from the cache, filling whole chunks
// on miss (the read-ahead that turns streams of tiny reads into one
// chunk-sized server read).
func (cc *clientCache) readContig(env transport.Env, f *File, off int64, buf []byte) error {
	if err := cc.maintain(env); err != nil {
		return err
	}
	cb := cc.store.ChunkBytes()
	n := int64(len(buf))
	hit := true
	for co := cc.store.Align(off); co < off+n; co += cb {
		// Lease, check, fill and copy one chunk at a time: a later
		// chunk's lock wait can revoke (flush and drop) an earlier one,
		// so no chunk pointer is held across a wait.
		ch, err := cc.ensureLease(env, f, co, false)
		if err != nil {
			return err
		}
		lo, hi := max(off, co), min(off+n, co+cb)
		if ch.ReadInto(lo, buf[lo-off:hi-off]) {
			continue
		}
		hit = false
		if err := cc.fillChunk(env, f, ch); err != nil {
			return err
		}
		if !ch.ReadInto(lo, buf[lo-off:hi-off]) {
			return errors.New("pvfs: cache fill left requested range invalid")
		}
	}
	if st := cc.c.stats(); st != nil {
		if hit {
			st.AddCacheHit()
		} else {
			st.AddCacheMiss()
		}
	}
	return cc.evict(env)
}

// writeContig absorbs a small write into the cache under exclusive
// leases; the bytes reach the servers in an aggregated flush (revoke,
// eviction, lease expiry, or Sync).
func (cc *clientCache) writeContig(env transport.Env, f *File, off int64, data []byte) error {
	if err := cc.maintain(env); err != nil {
		return err
	}
	cb := cc.store.ChunkBytes()
	n := int64(len(data))
	for co := cc.store.Align(off); co < off+n; co += cb {
		ch, err := cc.ensureLease(env, f, co, true)
		if err != nil {
			return err
		}
		lo, hi := max(off, co), min(off+n, co+cb)
		ch.Write(lo, data[lo-off:hi-off])
	}
	if st := cc.c.stats(); st != nil {
		st.AddCacheHit()
	}
	return cc.evict(env)
}

// fillChunk reads the chunk's whole extent through the plain path (the
// store zero-fills past EOF, so over-reading the tail is safe) and
// installs it around any dirty bytes already present.
func (cc *clientCache) fillChunk(env transport.Env, f *File, ch *cache.Chunk) error {
	data := make([]byte, cc.store.ChunkBytes())
	cc.busy = true
	save := cc.c.opSpan
	err := f.ReadContig(env, ch.Off, data)
	cc.c.opSpan = save
	cc.busy = false
	if err != nil {
		return err
	}
	ch.Fill(data)
	return nil
}

// flushChunks writes the chunks' dirty ranges back as one list-I/O
// call: the runs are gathered in ascending file order into a single
// request stream, which the streaming write path and the server disk
// scheduler then handle as a few large sorted runs.
func (cc *clientCache) flushChunks(env transport.Env, f *File, chunks []*cache.Chunk) error {
	sorted := make([]*cache.Chunk, 0, len(chunks))
	for _, ch := range chunks {
		if len(ch.Dirty) > 0 {
			sorted = append(sorted, ch)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	var fileRegions, memRegions []flatten.Region
	var mem []byte
	for _, ch := range sorted {
		for _, r := range ch.DirtyRuns() {
			fileRegions = append(fileRegions, flatten.Region{Off: r.Off, Len: r.N})
			memRegions = append(memRegions, flatten.Region{Off: int64(len(mem)), Len: r.N})
			rel := r.Off - ch.Off
			mem = append(mem, ch.Data[rel:rel+r.N]...)
		}
	}
	sp := cc.c.Tracer.Begin(env, cc.c.track(), "cache:flush", cc.c.opSpan.SID())
	sp.SetAttr("bytes", int64(len(mem)))
	sp.SetAttr("runs", int64(len(fileRegions)))
	cc.busy = true
	save := cc.c.opSpan
	err := f.WriteList(env, fileRegions, memRegions, mem)
	cc.c.opSpan = save
	cc.busy = false
	sp.End(env)
	if err != nil {
		return err
	}
	for _, ch := range sorted {
		ch.MarkClean()
	}
	if st := cc.c.stats(); st != nil {
		st.AddFlush(int64(len(mem)))
	}
	return nil
}

// evict flushes and drops least-recently-used chunks until the cache
// fits its budget.
func (cc *clientCache) evict(env transport.Env) error {
	for cc.store.OverBudget() {
		v := cc.store.Victim(nil)
		if v == nil {
			return nil
		}
		if err := cc.dropChunk(env, v, true); err != nil {
			return err
		}
	}
	return nil
}

// prepRanges keeps a cache-bypassing operation (large contiguous, list,
// or NoCache-adjacent I/O on a caching client) coherent with this
// client's own cache: overlapping dirty data is flushed first — reads
// must see the client's own writes, and writes must land in issue
// order — and a bypassing write additionally invalidates overlapping
// cached data, which would otherwise serve pre-write bytes to later
// cached reads.
func (cc *clientCache) prepRanges(env transport.Env, f *File, write bool, regions []cache.Region) error {
	if err := cc.maintain(env); err != nil {
		return err
	}
	for _, r := range regions {
		for _, ch := range cc.store.Overlapping(f.handle, r.Off, r.N) {
			if len(ch.Dirty) > 0 {
				if err := cc.flushChunks(env, f, []*cache.Chunk{ch}); err != nil {
					return err
				}
			}
			if write {
				if err := cc.dropChunk(env, ch, false); err != nil {
					return err
				}
				if st := cc.c.stats(); st != nil {
					st.AddInvalidations(1)
				}
			}
		}
	}
	return nil
}

// prepFile is prepRanges over the whole file, for operations whose file
// footprint is not worth enumerating (datatype I/O).
func (cc *clientCache) prepFile(env transport.Env, f *File, write bool) error {
	if err := cc.maintain(env); err != nil {
		return err
	}
	chunks := cc.store.Chunks(f.handle)
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Off < chunks[j].Off })
	if err := cc.flushChunks(env, f, chunks); err != nil {
		return err
	}
	if !write {
		return nil
	}
	for _, ch := range chunks {
		if err := cc.dropChunk(env, ch, false); err != nil {
			return err
		}
		if st := cc.c.stats(); st != nil {
			st.AddInvalidations(1)
		}
	}
	return nil
}

// syncFile flushes the file's dirty chunks as one sorted run batch and
// releases every lease the file holds.
func (cc *clientCache) syncFile(env transport.Env, f *File) error {
	if err := cc.maintain(env); err != nil {
		return err
	}
	chunks := cc.store.Chunks(f.handle)
	if len(chunks) == 0 {
		return nil
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Off < chunks[j].Off })
	if err := cc.flushChunks(env, f, chunks); err != nil {
		return err
	}
	for _, ch := range chunks {
		cc.releaseLease(env, ch)
		cc.store.Drop(ch)
	}
	return nil
}

// forgetHandle discards a removed file's cache state without flushing:
// the meta server dropped the file's lock table with the file, so there
// is nothing to release and nowhere to flush to.
func (cc *clientCache) forgetHandle(handle uint64) {
	for _, ch := range cc.store.Chunks(handle) {
		delete(cc.byLock, ch.LockID)
		cc.store.Drop(ch)
	}
	delete(cc.files, handle)
}

// Sync flushes this file's dirty cached data to the servers and
// releases its leases. Callers must Sync before synchronizing with
// other processes outside the file system (a barrier): a client
// blocked in a barrier cannot answer revocations, and another rank
// waiting on one of its leases would deadlock the pair. The mpiio
// layer does this automatically at the end of collective operations.
// With the cache disabled Sync is a no-op.
func (f *File) Sync(env transport.Env) error {
	if f.c.cc == nil {
		return nil
	}
	return f.c.cc.syncFile(env, f)
}

// Flush is Sync for every cached file of the client, in stable handle
// order. Call it before Close: Close itself cannot flush (it takes no
// Env to do I/O with) and drops unflushed cached writes.
func (c *Client) Flush(env transport.Env) error {
	if c.cc == nil {
		return nil
	}
	handles := make([]uint64, 0, len(c.cc.files))
	for h := range c.cc.files {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		if err := c.cc.syncFile(env, c.cc.files[h]); err != nil {
			return err
		}
	}
	return nil
}
