package pvfs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// TestServerReadHotPathAllocsWithMetrics locks in that metrics-only
// observation (histograms on, tracing off) keeps the dtype read hot
// path within the same allocation bound as the unobserved path: the
// observe block is two clock reads and a few atomic adds.
func TestServerReadHotPathAllocsWithMetrics(t *testing.T) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	s.Metrics = &ServerMetrics{}
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64) // 512 pieces
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
	}, false)
	if resp, err := s.handle(env, nil, req); err != nil || resp == nil {
		t.Fatalf("warmup: resp=%v err=%v", resp, err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		resp, err := s.handle(env, nil, req)
		if err != nil || resp == nil {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
	})
	if allocs > 32 {
		t.Fatalf("metrics-enabled dtype read hot path allocates %.0f per request", allocs)
	}
	if got := s.Metrics.ReadLat.Snapshot().Count; got < 50 {
		t.Fatalf("ReadLat observed %d requests, want >= 50", got)
	}
	if got := s.Metrics.WriteLat.Snapshot().Count; got != 0 {
		t.Fatalf("WriteLat observed %d read requests", got)
	}
}

// TestFetchStats drives the AdminStats round trip: real I/O, then a
// stats fetch whose JSON payload must carry the latency histogram,
// request counts, and loop-cache state.
func TestFetchStats(t *testing.T) {
	tc, c := startStreamCluster(t, 2, 64*1024, 4, func(s *Server) {
		s.Metrics = &ServerMetrics{}
	})
	env := tc.env
	f, err := c.Create(env, "stats.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := patterned(10000)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	for s := 0; s < 2; s++ {
		snap, err := c.FetchStats(env, s)
		if err != nil {
			t.Fatalf("server %d: %v", s, err)
		}
		if snap.Server != s {
			t.Fatalf("server %d reported index %d", s, snap.Server)
		}
		if snap.Lat.Count == 0 {
			t.Fatalf("server %d: no requests in latency histogram", s)
		}
		if snap.P50Us < 0 || snap.P95Us < snap.P50Us || snap.P99Us < snap.P95Us {
			t.Fatalf("server %d: non-monotone quantiles %d/%d/%d",
				s, snap.P50Us, snap.P95Us, snap.P99Us)
		}
	}
}

// TestClientServerSpanLink verifies the tentpole wiring end to end on a
// live Mem-network cluster: a server's request span must parent (via
// the ReqTag.Span piggyback) to the client operation span that caused
// it, and disk spans must parent to the request span.
func TestClientServerSpanLink(t *testing.T) {
	tr := trace.New()
	tc, c := startStreamCluster(t, 2, 64*1024, 4, func(s *Server) {
		s.Tracer = tr
	})
	c.Tracer = tr
	c.TraceTrack = "rank0"
	env := tc.env
	f, err := c.Create(env, "spans.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := patterned(9000)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}

	byID := map[trace.SpanID]*trace.Span{}
	for _, sp := range tr.Spans() {
		byID[sp.ID] = sp
	}
	var linked, disk int
	for _, sp := range tr.Spans() {
		if !strings.HasPrefix(sp.Track, "io-server-") {
			continue
		}
		if sp.Parent == 0 {
			continue
		}
		p, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has dangling parent %d", sp.ID, sp.Name, sp.Parent)
		}
		switch {
		case p.Track == "rank0":
			// Request span parented straight to the client op.
			linked++
		case strings.HasPrefix(p.Track, "io-server-"):
			// Disk/stream child of a request span; its grandparent must
			// reach the client op.
			disk++
			if g, ok := byID[p.Parent]; !ok || g.Track != "rank0" {
				t.Fatalf("span %d (%s): grandparent not a client op", sp.ID, sp.Name)
			}
		default:
			t.Fatalf("span %d (%s) parented to unexpected track %q", sp.ID, sp.Name, p.Track)
		}
	}
	if linked == 0 {
		t.Fatal("no server request spans parented to client op spans")
	}
	if disk == 0 {
		t.Fatal("no disk/stream spans parented to server request spans")
	}
	// The whole forest must export as valid Chrome JSON.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"io-server-0"`)) {
		t.Fatal("export missing server track")
	}
}

// TestLockWaitSpan verifies the metadata server records a lock:wait
// span, parented to the contending client op, once a blocked waiter is
// granted.
func TestLockWaitSpan(t *testing.T) {
	tr := trace.New()
	tc, c := startStreamCluster(t, 1, 64*1024, 4, nil)
	tc.meta.Tracer = tr
	env := tc.env
	f, err := c.Create(env, "lk.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := f.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c2 := tc.client()
		defer c2.Close()
		f2, err := c2.Open(env, "lk.dat")
		if err != nil {
			done <- err
			return
		}
		lk2, err := f2.Lock(env, 50, 100, false)
		if err != nil {
			done <- err
			return
		}
		done <- f2.Unlock(env, lk2)
	}()
	// Give the second client time to queue behind the held range, then
	// release so its wait completes with a nonzero duration.
	for i := 0; i < 2000 && tc.meta.LockStats().Queued == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if tc.meta.LockStats().Queued == 0 {
		t.Fatal("second locker never queued")
	}
	if err := f.Unlock(env, lk); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sp := range tr.Spans() {
		if sp.Track == "meta" && sp.Name == "lock:wait" {
			found = true
			if sp.Finish <= sp.Start {
				t.Fatalf("lock:wait span has no duration: [%v, %v]", sp.Start, sp.Finish)
			}
		}
	}
	if !found {
		t.Fatal("no lock:wait span recorded for the queued waiter")
	}
}
