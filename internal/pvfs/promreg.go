package pvfs

import (
	"dtio/internal/metrics"
)

// RegisterServerMetrics wires an I/O server's introspection state into
// a Prometheus registry: service-time histograms, the replay-cache
// counter, and every iostats counter under the pvfs_server prefix.
// Both the pvfs-server daemon and the naming-conformance test build
// their registries through this function, so the names a lint pass
// approves are exactly the names a live scrape serves.
func RegisterServerMetrics(reg *metrics.Registry, s *Server) {
	if s.Metrics != nil {
		reg.Hist("pvfs_server_read_latency_seconds", "read request service time", &s.Metrics.ReadLat)
		reg.Hist("pvfs_server_write_latency_seconds", "write request service time", &s.Metrics.WriteLat)
		reg.Counter("pvfs_server_replays_total", "requests answered from the replay cache",
			func() float64 { return float64(s.Metrics.Replays.Value()) })
	}
	if s.Stats != nil {
		metrics.RegisterIOStats(reg, "pvfs_server", s.Stats.Snapshot)
	}
}

// RegisterMetaMetrics wires a metadata server's lock-manager counters
// into a Prometheus registry under the pvfs_meta prefix.
func RegisterMetaMetrics(reg *metrics.Registry, m *MetaServer) {
	reg.Gauge("pvfs_meta_locks_held", "byte-range locks currently held",
		func() int64 { return int64(m.LockStats().Held) })
	reg.Gauge("pvfs_meta_locks_queued", "lock requests currently waiting",
		func() int64 { return int64(m.LockStats().Queued) })
	reg.Counter("pvfs_meta_lock_acquires_total", "lock acquisitions accepted",
		func() float64 { return float64(m.LockStats().Acquires) })
	reg.Counter("pvfs_meta_lock_waits_total", "acquisitions that had to queue",
		func() float64 { return float64(m.LockStats().Waits) })
	reg.Counter("pvfs_meta_lock_wait_seconds_total", "total queued time of completed waits",
		func() float64 { return m.LockStats().WaitTime.Seconds() })
	reg.Counter("pvfs_meta_lock_expired_total", "leases reclaimed by the watchdog",
		func() float64 { return float64(m.LockStats().Expired) })
}
