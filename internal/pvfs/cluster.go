// Cluster-wide observability: ClusterSnapshot merges every I/O
// server's AdminStats snapshot and every metadata shard's snapshot
// into one JSON document with a per-server health score, so one fetch
// answers "which server is the straggler" (DESIGN.md §17). The same
// scoring feeds the bench aggregator's live straggler detection and
// the replica read picker's load bias.

package pvfs

import (
	"fmt"
	"sort"
	"time"

	"dtio/internal/metrics"
	"dtio/internal/transport"
)

// StragglerScore is the health-score cutoff above which a server is
// flagged as a straggler. A healthy idle server scores ~1 (its p99
// tracks the cluster median and its queue is empty), so 2.0 means
// "twice the cluster's tail, or the equivalent in queue depth /
// degradation".
const StragglerScore = 2.0

// HealthScore folds one server's signals into a scalar: the ratio of
// its p99 service time to the cluster median (1.0 when it tracks the
// pack), a queue-depth term (every 4 queued requests add the weight
// of one median-p99 ratio), a stall penalty (requests are waiting but
// none completed in the observation window — a frozen disk shows
// silence, not a latency spike, until it unfreezes), and fixed
// penalties for a degraded disk and a live repair pass — states that
// predict slowness even before the histograms show it.
func HealthScore(p99, medianP99 time.Duration, inflight int64, degraded, repairing, stalled bool) float64 {
	ratio := 1.0
	if medianP99 > 0 {
		ratio = float64(p99) / float64(medianP99)
	}
	score := ratio + float64(inflight)/4
	if stalled {
		score += StragglerScore
	}
	if degraded {
		score += 2
	}
	if repairing {
		score += 3
	}
	return score
}

// ServerHealth is one server's row in the cluster health table.
type ServerHealth struct {
	Server    int     `json:"server"`
	P99Us     int64   `json:"p99_us"`
	InFlight  int64   `json:"inflight"`
	Degraded  bool    `json:"degraded,omitempty"`
	Repairing bool    `json:"repairing,omitempty"`
	// Stalled: requests were in flight but none completed in the
	// snapshot's observation window.
	Stalled bool    `json:"stalled,omitempty"`
	Score   float64 `json:"score"`
	Straggler bool    `json:"straggler,omitempty"`
}

// ClusterSnapshot is the merged cluster view: every server's stats
// snapshot, every metadata shard's snapshot, the cluster-merged
// latency histogram, and the derived health table. It is the JSON
// document `pvfsctl stats -all` prints and `pvfsctl top` refreshes.
type ClusterSnapshot struct {
	Servers []ServerSnapshot `json:"servers"`
	Metas   []MetaSnapshot   `json:"metas,omitempty"`
	Health  []ServerHealth   `json:"health"`
	// Lat merges every server's service-time histogram; the quantiles
	// below are over it.
	Lat         metrics.HistSnapshot `json:"latency"`
	P50Us       int64                `json:"p50_us"`
	P95Us       int64                `json:"p95_us"`
	P99Us       int64                `json:"p99_us"`
	MedianP99Us int64                `json:"median_p99_us"`
	Stragglers  []int                `json:"stragglers,omitempty"`
	// Unreachable lists daemons that did not answer the fetch (empty
	// when the snapshot is complete).
	Unreachable []string `json:"unreachable,omitempty"`
}

// medianP99 is the middle per-server p99 (µs), over servers that have
// served at least one request. Zero when nothing has.
func medianP99(servers []ServerSnapshot) int64 {
	var p99s []int64
	for _, s := range servers {
		if s.Lat.Count > 0 {
			p99s = append(p99s, s.P99Us)
		}
	}
	if len(p99s) == 0 {
		return 0
	}
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	return p99s[len(p99s)/2]
}

// BuildClusterSnapshot derives the merged view and health table from
// already-fetched per-daemon snapshots (the aggregation is pure, so
// the simulated bench and the TCP control tool share it).
func BuildClusterSnapshot(servers []ServerSnapshot, metas []MetaSnapshot) ClusterSnapshot {
	cs := ClusterSnapshot{Servers: servers, Metas: metas}
	med := medianP99(servers)
	cs.MedianP99Us = med
	for _, s := range servers {
		cs.Lat = cs.Lat.Add(s.Lat)
		h := ServerHealth{
			Server:    s.Server,
			P99Us:     s.P99Us,
			InFlight:  s.InFlight,
			Degraded:  s.Degraded,
			Repairing: s.Repairing,
			// One waiting request is just an op in progress; several
			// waiting with zero completions is a pile-up. Sound when the
			// observation window exceeds the normal service envelope.
			Stalled: s.InFlight >= 2 && s.Lat.Count == 0,
		}
		h.Score = HealthScore(time.Duration(s.P99Us)*time.Microsecond,
			time.Duration(med)*time.Microsecond, s.InFlight, s.Degraded, s.Repairing, h.Stalled)
		h.Straggler = h.Score >= StragglerScore
		if h.Straggler {
			cs.Stragglers = append(cs.Stragglers, s.Server)
		}
		cs.Health = append(cs.Health, h)
	}
	p50, p95, p99 := cs.Lat.Quantiles()
	cs.P50Us = p50.Microseconds()
	cs.P95Us = p95.Microseconds()
	cs.P99Us = p99.Microseconds()
	return cs
}

// NServers reports how many I/O servers the client addresses.
func (c *Client) NServers() int { return len(c.serverAddrs) }

// FetchCluster assembles a ClusterSnapshot from every daemon the
// client addresses. Unreachable daemons are skipped and listed in the
// snapshot's Unreachable field; the returned error (non-nil whenever
// that list is non-empty) wraps the first failure, so callers can
// both show the partial view and exit nonzero.
func (c *Client) FetchCluster(env transport.Env) (*ClusterSnapshot, error) {
	var (
		servers     []ServerSnapshot
		metas       []MetaSnapshot
		unreachable []string
		firstErr    error
	)
	miss := func(what string, err error) {
		unreachable = append(unreachable, what)
		if firstErr == nil {
			firstErr = fmt.Errorf("pvfs: %s: %w", what, err)
		}
	}
	for s := 0; s < c.MetaShards(); s++ {
		snap, err := c.FetchMetaStats(env, s)
		if err != nil {
			miss(fmt.Sprintf("meta shard %d", s), err)
			continue
		}
		metas = append(metas, *snap)
	}
	for s := 0; s < c.NServers(); s++ {
		snap, err := c.FetchStats(env, s)
		if err != nil {
			miss(fmt.Sprintf("server %d", s), err)
			continue
		}
		servers = append(servers, *snap)
	}
	cs := BuildClusterSnapshot(servers, metas)
	cs.Unreachable = unreachable
	return &cs, firstErr
}
