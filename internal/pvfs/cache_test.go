package pvfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"dtio/internal/iostats"
	"dtio/internal/transport"
)

// cachedClient returns a client with the extent cache enabled.
func (tc *testCluster) cachedClient(cacheBytes, chunkBytes int64) *Client {
	c := tc.client()
	c.CacheBytes = cacheBytes
	c.CacheChunkBytes = chunkBytes
	c.Stats = &iostats.Stats{}
	return c
}

// TestCacheAggregation: a stream of tiny writes is absorbed by the cache
// and reaches the servers as a handful of aggregated flushes, with the
// flushed image byte-identical to the uncached result.
func TestCacheAggregation(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.cachedClient(1<<20, 4096)
	defer c.Close()
	f, err := c.Create(tc.env, "agg.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ops, opLen = 512, 32
	want := make([]byte, ops*opLen)
	for i := range want {
		want[i] = byte(i*13 + 7)
	}
	for i := 0; i < ops; i++ {
		if err := f.WriteContig(tc.env, int64(i*opLen), want[i*opLen:(i+1)*opLen]); err != nil {
			t.Fatal(err)
		}
	}
	mid := c.Stats.Snapshot()
	if mid.WireMsgs != 0 {
		t.Fatalf("absorbed writes sent %d wire messages, want 0", mid.WireMsgs)
	}
	if mid.CacheHits != ops {
		t.Fatalf("CacheHits = %d, want %d", mid.CacheHits, ops)
	}
	if err := c.Flush(tc.env); err != nil {
		t.Fatal(err)
	}
	s := c.Stats.Snapshot()
	if s.FlushOps == 0 || s.FlushBytes != int64(len(want)) {
		t.Fatalf("flush stats: ops=%d bytes=%d, want >0 and %d", s.FlushOps, s.FlushBytes, len(want))
	}
	// The per-server wire cost of the flush must be far below one round
	// trip per small write.
	if s.WireMsgs >= ops {
		t.Fatalf("flush cost %d wire messages for %d writes; aggregation failed", s.WireMsgs, ops)
	}
	// Uncached read-back: byte-identical.
	plain := tc.client()
	defer plain.Close()
	pf, err := plain.Open(tc.env, "agg.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pf.ReadContig(tc.env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flushed image differs from written data")
	}
}

// TestCacheReadHits: re-reads of a cached region are served locally.
func TestCacheReadHits(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.cachedClient(1<<20, 4096)
	defer c.Close()
	f, err := c.Create(tc.env, "hits.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16*1024)
	for i := range want {
		want[i] = byte(i * 3)
	}
	// Seed through the plain path so the first cached read misses.
	f.NoCache = true
	if err := f.WriteContig(tc.env, 0, want); err != nil {
		t.Fatal(err)
	}
	f.NoCache = false
	buf := make([]byte, 512)
	const rounds = 64
	for rd := 0; rd < rounds; rd++ {
		for at := 0; at < len(want); at += len(buf) {
			if err := f.ReadContig(tc.env, int64(at), buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want[at:at+len(buf)]) {
				t.Fatalf("round %d: wrong bytes at %d", rd, at)
			}
		}
	}
	s := c.Stats.Snapshot()
	ratio := s.HitRatio()
	if ratio < 0.9 {
		t.Fatalf("hit ratio %.2f, want >= 0.9 (hits=%d misses=%d)", ratio, s.CacheHits, s.CacheMisses)
	}
}

// TestCacheCoherence: two caching clients ping-pong through one shared
// chunk — each writes its own slot and polls the peer's slot for the
// round value. Every step conflicts with the peer's cached copy of the
// chunk, so progress is only possible if the lease protocol revokes,
// flushes and re-grants on every transition: the rounds advancing in
// lockstep IS the proof that overlapping cached writes serialize via
// revocation, deterministically and regardless of goroutine scheduling.
func TestCacheCoherence(t *testing.T) {
	tc := startCluster(t, 3)
	const rounds = 20
	const slotA, slotB = int64(0), int64(64) // same 4 KiB chunk
	run := func(c *Client, mine, peer int64) error {
		f, err := c.Open(tc.env, "coh.dat")
		if err != nil {
			return err
		}
		one := make([]byte, 1)
		for rd := 0; rd < rounds; rd++ {
			one[0] = byte(rd + 1)
			if err := f.WriteContig(tc.env, mine, one); err != nil {
				return err
			}
			// Poll the peer's slot; each read is an op boundary that
			// also services revocations of our own lease.
			got := make([]byte, 1)
			for got[0] != byte(rd+1) {
				if err := f.ReadContig(tc.env, peer, got); err != nil {
					return err
				}
			}
		}
		return c.Flush(tc.env)
	}
	seed := tc.client()
	if _, err := seed.Create(tc.env, "coh.dat", 128, 0); err != nil {
		t.Fatal(err)
	}
	seed.Close()
	a := tc.cachedClient(1<<20, 4096)
	b := tc.cachedClient(1<<20, 4096)
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = run(a, slotA, slotB) }()
	go func() { defer wg.Done(); errs[1] = run(b, slotB, slotA) }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	inval := a.Stats.Snapshot().Invalidations + b.Stats.Snapshot().Invalidations
	if inval == 0 {
		t.Fatal("no invalidations: the clients never actually contended through the lease protocol")
	}
	// Both slots carry the final round's value in the flushed image.
	plain := tc.client()
	defer plain.Close()
	pf, err := plain.Open(tc.env, "coh.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if err := pf.ReadContig(tc.env, slotA, got[:1]); err != nil {
		t.Fatal(err)
	}
	if err := pf.ReadContig(tc.env, slotB, got[1:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != rounds || got[1] != rounds {
		t.Fatalf("final slots = %v, want both %d", got, rounds)
	}
}

// TestCacheWriterObservedByReader: a reader on a second client pulls
// dirty data out of a writer's cache through revocation — the writer
// only has to keep issuing operations (its op-boundary poll services
// the revoke), never to flush explicitly.
func TestCacheWriterObservedByReader(t *testing.T) {
	tc := startCluster(t, 3)
	w := tc.cachedClient(1<<20, 4096)
	r := tc.cachedClient(1<<20, 4096)
	defer w.Close()
	defer r.Close()
	wf, err := w.Create(tc.env, "wr.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 1024)
	for i := range want {
		want[i] = byte(i*7 + 1)
	}
	if err := wf.WriteContig(tc.env, 0, want); err != nil {
		t.Fatal(err)
	}
	// Writer stays live on an unrelated file; its maintain() poll is the
	// only thing that can service the revoke.
	other, err := w.Create(tc.env, "wr-other.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := other.ReadContig(tc.env, 0, buf); err != nil {
				return
			}
		}
	}()
	rf, err := r.Open(tc.env, "wr.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := rf.ReadContig(tc.env, 0, got); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if !bytes.Equal(got, want) {
		t.Fatal("reader did not observe the writer's cached data")
	}
	if w.Stats.Snapshot().Invalidations == 0 {
		t.Fatal("writer's lease was never revoked")
	}
}

// TestCacheSelfConflict: a non-revocable Lock() on a range the client's
// own cache holds a lease over must not deadlock — the inline revoke
// handler flushes and releases the cache's lease while blocked in the
// lock wait.
func TestCacheSelfConflict(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.cachedClient(1<<20, 4096)
	defer c.Close()
	f, err := c.Create(tc.env, "self.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("cached-before-lock")
	if err := f.WriteContig(tc.env, 100, want); err != nil {
		t.Fatal(err)
	}
	donec := make(chan error, 1)
	go func() {
		lk, err := f.Lock(tc.env, 0, 4096, false)
		if err != nil {
			donec <- err
			return
		}
		donec <- f.Unlock(tc.env, lk)
	}()
	select {
	case err := <-donec:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("self-conflicting lock deadlocked against the client's own cache lease")
	}
	if c.Stats.Snapshot().FlushOps == 0 {
		t.Fatal("self-revocation did not flush the dirty chunk")
	}
}

// TestCacheLeaseExpiryFlush: dirty data buffered under a finite lease is
// flushed by the client's expiry margin before the server reclaims the
// lease — acknowledged application writes survive lease loss.
func TestCacheLeaseExpiryFlush(t *testing.T) {
	net := transport.NewMemNetwork()
	env := transport.NewRealEnv()
	meta := NewMetaServer(net, "meta", 2)
	meta.LeaseTimeout = 200 * time.Millisecond
	go meta.Serve(env)
	defer meta.Close()
	var addrs []string
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("io%d", i)
		s := NewServer(net, addr, i, CostModel{})
		addrs = append(addrs, addr)
		go s.Serve(env)
		defer s.Close()
	}
	c := NewClient(net, "meta", addrs, CostModel{})
	c.CacheBytes = 1 << 20
	c.CacheChunkBytes = 4096
	c.Stats = &iostats.Stats{}
	defer c.Close()
	var f *File
	var err error
	for i := 0; i < 2000; i++ {
		if f, err = c.Create(env, "exp.dat", 128, 0); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("dirty-under-short-lease")
	if err := f.WriteContig(env, 0, want); err != nil {
		t.Fatal(err)
	}
	// Sleep past the client's 3/4 margin; the next operation's maintain
	// pass must flush and drop the chunk.
	time.Sleep(300 * time.Millisecond)
	if err := f.ReadContig(env, 64*1024, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats.Snapshot(); s.FlushOps == 0 {
		t.Fatalf("no flush after lease expiry (stats %+v)", s)
	}
	plain := NewClient(net, "meta", addrs, CostModel{})
	defer plain.Close()
	pf, err := plain.Open(env, "exp.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pf.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("dirty data lost across lease expiry")
	}
}

// TestCacheFlushAcrossCrash: a flush issued while an I/O server is down
// rides the retry path; once the server restarts, the write-back lands
// and no acknowledged data is lost.
func TestCacheFlushAcrossCrash(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.cachedClient(1<<20, 4096)
	c.Retry = RetryPolicy{Attempts: 20, Timeout: 250 * time.Millisecond, Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	defer c.Close()
	f, err := c.Create(tc.env, "crash.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8*1024)
	for i := range want {
		want[i] = byte(i*11 + 3)
	}
	for at := 0; at < len(want); at += 256 {
		if err := f.WriteContig(tc.env, int64(at), want[at:at+256]); err != nil {
			t.Fatal(err)
		}
	}
	tc.servers[0].Crash(150 * time.Millisecond)
	if err := c.Flush(tc.env); err != nil {
		t.Fatalf("flush across crash: %v", err)
	}
	plain := tc.client()
	defer plain.Close()
	pf, err := plain.Open(tc.env, "crash.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pf.ReadContig(tc.env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cached writes lost across server crash-restart")
	}
	if c.Stats.Snapshot().Retries == 0 {
		t.Log("note: crash window closed before the flush needed a retry")
	}
}

// TestCacheEvictionWriteback: a cache smaller than the write footprint
// evicts LRU chunks through flush; everything written is durable after
// Flush and byte-identical.
func TestCacheEvictionWriteback(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.cachedClient(16*1024, 4096) // 4 chunks resident
	defer c.Close()
	f, err := c.Create(tc.env, "evict.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64*1024)
	for i := range want {
		want[i] = byte(i*5 + 1)
	}
	for at := 0; at < len(want); at += 1024 {
		if err := f.WriteContig(tc.env, int64(at), want[at:at+1024]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(tc.env); err != nil {
		t.Fatal(err)
	}
	plain := tc.client()
	defer plain.Close()
	pf, err := plain.Open(tc.env, "evict.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pf.ReadContig(tc.env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("eviction write-back corrupted data")
	}
}

// TestCacheMixedPaths: list and dtype operations on a caching client
// stay coherent with its own cached dirty data (flush-before-bypass),
// and bypassing writes invalidate stale cached copies.
func TestCacheMixedPaths(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.cachedClient(1<<20, 4096)
	defer c.Close()
	f, err := c.Create(tc.env, "mixed.dat", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cached write, then a list read over the same range must see it.
	if err := f.WriteContig(tc.env, 10, []byte("cached")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	lr := []Region{{Off: 10, Len: 6}}
	mr := []Region{{Off: 0, Len: 6}}
	if err := f.ReadList(tc.env, lr, mr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "cached" {
		t.Fatalf("list read missed cached dirty data: %q", got)
	}
	// A list write over a cached range, then a cached read must not
	// serve the stale pre-write copy.
	if err := f.ReadContig(tc.env, 10, got); err != nil { // populate cache
		t.Fatal(err)
	}
	if err := f.WriteList(tc.env, lr, mr, []byte("listio")); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadContig(tc.env, 10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "listio" {
		t.Fatalf("cached read served stale data after bypassing write: %q", got)
	}
}
