package pvfs

import (
	"fmt"
	"sort"
	"sync"

	"dtio/internal/transport"
	"dtio/internal/wire"
)

// fileMeta is one namespace entry.
type fileMeta struct {
	handle    uint64
	stripSize int64
	nServers  int32
	base      int32
}

// MetaServer owns the namespace: file names, handles, and striping
// parameters. It performs no data I/O.
type MetaServer struct {
	net      transport.Network
	addr     string
	nServers int32

	mu     sync.Mutex
	next   uint64
	files  map[string]*fileMeta
	closed bool
	lis    transport.Listener
}

// NewMetaServer creates a metadata server for a cluster of nServers I/O
// servers, listening at addr on net.
func NewMetaServer(net transport.Network, addr string, nServers int) *MetaServer {
	return &MetaServer{
		net:      net,
		addr:     addr,
		nServers: int32(nServers),
		next:     1,
		files:    make(map[string]*fileMeta),
	}
}

// Serve listens and handles requests until the listener is closed. Call
// it from a dedicated thread (env.Go / SimNet.Spawn / goroutine).
func (m *MetaServer) Serve(env transport.Env) error {
	lis, err := m.net.Listen(m.addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.lis = lis
	closed := m.closed
	m.mu.Unlock()
	if closed {
		lis.Close()
		return nil
	}
	for {
		conn, err := lis.Accept(env)
		if err != nil {
			return nil
		}
		c := conn
		env.Go("meta-handler", func(env transport.Env) {
			defer c.Close()
			for {
				msg, err := c.Recv(env)
				if err != nil {
					return
				}
				resp := m.handle(msg)
				if err := c.Send(env, resp); err != nil {
					return
				}
			}
		})
	}
}

// Close stops the listener.
func (m *MetaServer) Close() {
	m.mu.Lock()
	m.closed = true
	lis := m.lis
	m.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
}

func (m *MetaServer) handle(msg []byte) []byte {
	t, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return wire.EncodeMetaResp(&wire.MetaResp{Err: "bad request: " + err.Error()})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch t {
	case wire.MTCreateReq:
		r := v.(*wire.CreateReq)
		if r.Name == "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: "empty file name"})
		}
		if _, ok := m.files[r.Name]; ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("file exists: %s", r.Name)})
		}
		if r.StripSize <= 0 {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: "strip size must be positive"})
		}
		n := r.NServers
		if n <= 0 || n > m.nServers {
			n = m.nServers
		}
		f := &fileMeta{
			handle:    m.next,
			stripSize: r.StripSize,
			nServers:  n,
			base:      0,
		}
		m.next++
		m.files[r.Name] = f
		return wire.EncodeMetaResp(&wire.MetaResp{
			OK: true, Handle: f.handle, StripSize: f.stripSize,
			NServers: f.nServers, Base: f.base,
		})
	case wire.MTOpenReq:
		r := v.(*wire.OpenReq)
		f, ok := m.files[r.Name]
		if !ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("no such file: %s", r.Name)})
		}
		return wire.EncodeMetaResp(&wire.MetaResp{
			OK: true, Handle: f.handle, StripSize: f.stripSize,
			NServers: f.nServers, Base: f.base,
		})
	case wire.MTRemoveReq:
		r := v.(*wire.RemoveReq)
		if _, ok := m.files[r.Name]; !ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("no such file: %s", r.Name)})
		}
		delete(m.files, r.Name)
		return wire.EncodeMetaResp(&wire.MetaResp{OK: true})
	case wire.MTListReq:
		names := make([]string, 0, len(m.files))
		for n := range m.files {
			names = append(names, n)
		}
		sort.Strings(names)
		return wire.EncodeListResp(&wire.ListResp{OK: true, Names: names})
	default:
		return wire.EncodeMetaResp(&wire.MetaResp{Err: "unexpected message " + t.String()})
	}
}
