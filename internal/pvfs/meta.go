package pvfs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"dtio/internal/locks"
	"dtio/internal/shard"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// DefaultLeaseTimeout is how long a granted byte-range lock may be held
// before the server reclaims it from a presumed-crashed client. Real
// daemons want a generous bound; simulations and tests usually override
// it (0 disables expiry).
const DefaultLeaseTimeout = 30 * time.Second

// fileMeta is one namespace entry.
type fileMeta struct {
	handle    uint64
	stripSize int64
	nServers  int32
	base      int32
}

// MetaServer owns a partition of the namespace: file names, handles,
// and striping parameters. It performs no data I/O. It also hosts the
// byte-range lock service for its partition: every lock request for a
// file is ordered at the file's owning shard, a single authority per
// file, which is what keeps the FIFO fairness and deadlock reasoning in
// internal/locks sound cluster-wide — locks never span files, so
// per-file single-authority ordering is full ordering. An unsharded
// deployment is the 1-shard special case (shard 0 of 1).
type MetaServer struct {
	net      transport.Network
	addr     string
	nServers int32

	// shardID/shardCount place this server in the shard map. Configured
	// by ConfigureShard before Serve; the default (0 of 1) is the
	// unsharded server.
	shardID    int
	shardCount int

	// LeaseTimeout bounds how long a granted lock may be held before it
	// is reclaimed (a crashed client cannot wedge the cluster). Set it
	// before Serve; 0 disables expiry. Note that outside the simulator
	// Sleep does not advance Env time, so reclamation happens lazily on
	// the next lock operation rather than from the watchdog.
	LeaseTimeout time.Duration

	// Tracer (optional) records lock-wait spans on the "meta" track,
	// parented to the requesting client op via wire.LockAcquireReq.Span.
	Tracer *trace.Tracer

	locks *locks.Manager

	mu        sync.Mutex
	next      uint64
	nextOwner uint64
	files     map[string]*fileMeta
	closed    bool
	lis       transport.Listener
}

// NewMetaServer creates a metadata server for a cluster of nServers I/O
// servers, listening at addr on net.
func NewMetaServer(net transport.Network, addr string, nServers int) *MetaServer {
	return &MetaServer{
		net:          net,
		addr:         addr,
		nServers:     int32(nServers),
		shardCount:   1,
		LeaseTimeout: DefaultLeaseTimeout,
		locks:        locks.NewManager(DefaultLeaseTimeout),
		next:         1,
		files:        make(map[string]*fileMeta),
	}
}

// ConfigureShard makes this server shard id of count in a partitioned
// control plane. Handles are then allocated from the strided sequence
// shard.FirstHandle/NextHandle (so shard.OfHandle routes them back
// here), and lock ids from the matching strided range (so ids are
// unique cluster-wide and clients can key lease state by bare id).
// Call before Serve. (0, 1) is the unsharded default.
func (m *MetaServer) ConfigureShard(id, count int) {
	if count < 1 || id < 0 || id >= count {
		panic(fmt.Sprintf("pvfs: bad shard placement %d of %d", id, count))
	}
	m.mu.Lock()
	m.shardID, m.shardCount = id, count
	m.next = shard.FirstHandle(id, count)
	m.mu.Unlock()
	m.locks.SetIDRange(uint64(id)+1, uint64(count))
}

// LockStats snapshots the lock service's counters.
func (m *MetaServer) LockStats() locks.Stats { return m.locks.Stats() }

// MetaSnapshot is one metadata shard's introspection snapshot, returned
// by the MTMetaStatsReq admin path (JSON, like the I/O servers'
// AdminStats) so pvfsctl can show shard balance at a glance.
type MetaSnapshot struct {
	Shard      int   `json:"shard"`
	Shards     int   `json:"shards"`
	Files      int   `json:"files"`       // namespace entries on this shard
	LockTables int   `json:"lock_tables"` // files with live lock state
	Held       int   `json:"locks_held"`
	Queued     int   `json:"locks_queued"`
	MaxQueue   int   `json:"max_queue_depth"`
	Acquires   int64 `json:"acquires"`
	Grants     int64 `json:"immediate_grants"`
	Waits      int64 `json:"waits"`
	Releases   int64 `json:"releases"`
	Revokes    int64 `json:"lease_revocations"`
	Expiries   int64 `json:"lease_expiries"`
}

// Snapshot captures this shard's namespace size and lock-service state.
func (m *MetaServer) Snapshot() MetaSnapshot {
	m.mu.Lock()
	s := MetaSnapshot{Shard: m.shardID, Shards: m.shardCount, Files: len(m.files)}
	m.mu.Unlock()
	ls := m.locks.Stats()
	s.LockTables = ls.Tables
	s.Held = ls.Held
	s.Queued = ls.Queued
	s.MaxQueue = ls.MaxQueue
	s.Acquires = ls.Acquires
	s.Grants = ls.Immediate
	s.Waits = ls.Waits
	s.Releases = ls.Releases
	s.Revokes = ls.Revocations
	s.Expiries = ls.Expired
	return s
}

// Serve listens and handles requests until the listener is closed. Call
// it from a dedicated thread (env.Go / SimNet.Spawn / goroutine).
func (m *MetaServer) Serve(env transport.Env) error {
	m.locks.SetLease(m.LeaseTimeout)
	lis, err := m.net.Listen(m.addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.lis = lis
	closed := m.closed
	m.mu.Unlock()
	if closed {
		lis.Close()
		return nil
	}
	for {
		conn, err := lis.Accept(env)
		if err != nil {
			return nil
		}
		c := conn
		m.mu.Lock()
		m.nextOwner++
		owner := m.nextOwner
		m.mu.Unlock()
		env.Go("meta-handler", func(env transport.Env) {
			defer func() {
				c.Close()
				// A vanished client must not keep ranges locked: drop
				// everything it held or queued and grant the survivors.
				m.deliver(env, m.locks.ReleaseOwner(env.Now(), owner))
			}()
			for {
				msg, err := c.Recv(env)
				if err != nil {
					return
				}
				resp := m.handleMsg(env, c, owner, msg)
				if resp == nil {
					continue // queued lock acquire; the grant follows later
				}
				if err := c.Send(env, resp); err != nil {
					return
				}
			}
		})
	}
}

// Close stops the listener.
func (m *MetaServer) Close() {
	m.mu.Lock()
	m.closed = true
	lis := m.lis
	m.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
}

// handleMsg dispatches one request. A nil result means no immediate
// response (an acquire that queued); the grant is sent on the waiter's
// connection by whichever thread later frees the range.
func (m *MetaServer) handleMsg(env transport.Env, c transport.Conn, owner uint64, msg []byte) []byte {
	t, v, err := wire.DecodeMsg(msg)
	if err != nil {
		return wire.EncodeMetaResp(&wire.MetaResp{Err: "bad request: " + err.Error()})
	}
	switch t {
	case wire.MTLockAcquireReq:
		r := v.(*wire.LockAcquireReq)
		if err := m.checkHandleRoute(r.Handle); err != "" {
			return wire.EncodeLockGrant(&wire.LockGrant{Err: err})
		}
		return m.lockAcquire(env, c, owner, r)
	case wire.MTLockReleaseReq:
		r := v.(*wire.LockReleaseReq)
		if err := m.checkHandleRoute(r.Handle); err != "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: err})
		}
		return m.lockRelease(env, owner, r)
	case wire.MTMetaStatsReq:
		data, err := json.Marshal(m.Snapshot())
		if err != nil {
			return wire.EncodeIOResp(&wire.IOResp{Err: err.Error()})
		}
		return wire.EncodeIOResp(&wire.IOResp{OK: true, Data: data})
	}
	resp, removed := m.handleNS(t, v)
	if removed != 0 {
		m.deliver(env, m.locks.DropHandle(env.Now(), removed))
	}
	return resp
}

// checkHandleRoute rejects lock traffic for a handle another shard
// owns. A misroute is a client-side shard-directory bug; failing loudly
// beats silently hosting a second lock table for the same file (which
// would break the single-authority ordering every fairness and
// coherence argument rests on).
func (m *MetaServer) checkHandleRoute(h uint64) string {
	m.mu.Lock()
	id, count := m.shardID, m.shardCount
	m.mu.Unlock()
	if count > 1 && shard.OfHandle(h, count) != id {
		return fmt.Sprintf("misrouted: handle %d belongs to shard %d, not %d of %d",
			h, shard.OfHandle(h, count), id, count)
	}
	return ""
}

// checkNameRoute is checkHandleRoute for namespace traffic. Callers
// hold m.mu.
func (m *MetaServer) checkNameRoute(name string) string {
	if m.shardCount > 1 && shard.OfName(name, m.shardCount) != m.shardID {
		return fmt.Sprintf("misrouted: name %q belongs to shard %d, not %d of %d",
			name, shard.OfName(name, m.shardCount), m.shardID, m.shardCount)
	}
	return ""
}

// lockCtx is the per-waiter context stored with a queued lock request:
// the connection to answer on, plus the requesting client op's span ID
// so the wait can be recorded against it when the grant finally fires.
type lockCtx struct {
	conn transport.Conn
	span trace.SpanID
}

func (m *MetaServer) lockAcquire(env transport.Env, c transport.Conn, owner uint64, r *wire.LockAcquireReq) []byte {
	if r.N <= 0 || r.Off < 0 {
		return wire.EncodeLockGrant(&wire.LockGrant{Err: fmt.Sprintf("bad lock range [%d, +%d)", r.Off, r.N)})
	}
	id, granted, wake := m.locks.Acquire(env.Now(), locks.Req{
		Handle: r.Handle, Off: r.Off, N: r.N, Shared: r.Shared,
		Owner: owner, Ctx: lockCtx{conn: c, span: trace.SpanID(r.Span)},
		Revocable: r.Revocable,
	})
	m.deliver(env, wake)
	if granted {
		return wire.EncodeLockGrant(&wire.LockGrant{OK: true, LockID: id, LeaseNs: int64(m.LeaseTimeout)})
	}
	m.armWatchdog(env)
	return nil
}

func (m *MetaServer) lockRelease(env transport.Env, owner uint64, r *wire.LockReleaseReq) []byte {
	ok, wake := m.locks.Release(env.Now(), r.Handle, r.LockID, owner)
	m.deliver(env, wake)
	if !ok {
		return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("no such lock %d on handle %d", r.LockID, r.Handle)})
	}
	return wire.EncodeMetaResp(&wire.MetaResp{OK: true})
}

// deliver sends finished waits to their clients, then drains and sends
// any pending cache-lease revocations (the revocation callback rides
// the same deferred-grant delivery path: each revoke travels on the
// connection its lease was granted on — the holder's meta connection —
// where the client services it inline while blocked on a lock wait, or
// polls it between operations). Each grant travels on the waiter's own
// connection; Conn implementations serialize concurrent senders, so any
// thread may deliver. Send errors are ignored — a vanished waiter's
// handler cleans up via ReleaseOwner, and leases expire as a backstop.
func (m *MetaServer) deliver(env transport.Env, wake []locks.Granted) {
	for _, g := range wake {
		lc, ok := g.Ctx.(lockCtx)
		if !ok {
			continue
		}
		if m.Tracer != nil && g.Err == "" && g.Waited > 0 {
			// The wait's duration is only known at grant time; record it
			// as a completed span against the requester's op.
			now := env.Now()
			m.Tracer.Record("meta", "lock:wait", lc.span, now-g.Waited, now)
		}
		lc.conn.Send(env, wire.EncodeLockGrant(&wire.LockGrant{
			OK: g.Err == "", Err: g.Err, LockID: g.ID, WaitedNs: int64(g.Waited),
			LeaseNs: int64(m.LeaseTimeout),
		}))
	}
	// Promotions can themselves require revocations (a revocable lock
	// granted with conflicting requests still queued behind it).
	for _, rv := range m.locks.TakeRevocations() {
		lc, ok := rv.Ctx.(lockCtx)
		if !ok {
			continue
		}
		lc.conn.Send(env, wire.EncodeLeaseRevoke(&wire.LeaseRevoke{
			Handle: rv.Handle, LockID: rv.ID, Off: rv.Off, N: rv.N,
		}))
	}
}

// armWatchdog schedules a lease sweep when requests are queued behind
// leased locks, so a crashed-but-connected client's lock is reclaimed
// even if no further lock traffic arrives. At most one watchdog thread
// runs at a time; in environments whose Sleep does not advance Now it
// fires early and retires, leaving reclamation to lazy sweeps.
func (m *MetaServer) armWatchdog(env transport.Env) {
	target, ok := m.locks.ArmWatchdog()
	if !ok {
		return
	}
	env.Go("lock-watchdog", func(env transport.Env) {
		for {
			for {
				d := target - env.Now()
				if d <= 0 {
					break
				}
				env.Sleep(d)
				if env.Now() >= target {
					break
				}
				// env.Sleep is a no-op on real envs (it models simulated
				// cost); there the clock is wall time, so wait it out for
				// real — a queued waiter must not depend on further lock
				// traffic to reclaim a dead holder's lease.
				time.Sleep(d)
			}
			wake, next, again := m.locks.WatchdogFire(env.Now())
			m.deliver(env, wake)
			if !again {
				return
			}
			target = next
		}
	})
}

// handleNS serves the namespace operations. removed is the handle of a
// file deleted by this request (0 otherwise) so the caller can drop its
// lock state.
func (m *MetaServer) handleNS(t wire.MsgType, v any) (resp []byte, removed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch t {
	case wire.MTCreateReq:
		r := v.(*wire.CreateReq)
		if r.Name == "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: "empty file name"}), 0
		}
		if err := m.checkNameRoute(r.Name); err != "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: err}), 0
		}
		if _, ok := m.files[r.Name]; ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("file exists: %s", r.Name)}), 0
		}
		if r.StripSize <= 0 {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: "strip size must be positive"}), 0
		}
		n := r.NServers
		if n <= 0 || n > m.nServers {
			n = m.nServers
		}
		f := &fileMeta{
			handle:    m.next,
			stripSize: r.StripSize,
			nServers:  n,
			base:      0,
		}
		// The owning shard allocates the handle from its strided
		// sequence, so shard.OfHandle(f.handle) == shardID: lock and
		// lease traffic, which carries handles rather than names, routes
		// back here with pure arithmetic.
		m.next = shard.NextHandle(m.next, m.shardCount)
		m.files[r.Name] = f
		return wire.EncodeMetaResp(&wire.MetaResp{
			OK: true, Handle: f.handle, StripSize: f.stripSize,
			NServers: f.nServers, Base: f.base,
		}), 0
	case wire.MTOpenReq:
		r := v.(*wire.OpenReq)
		if err := m.checkNameRoute(r.Name); err != "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: err}), 0
		}
		f, ok := m.files[r.Name]
		if !ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("no such file: %s", r.Name)}), 0
		}
		return wire.EncodeMetaResp(&wire.MetaResp{
			OK: true, Handle: f.handle, StripSize: f.stripSize,
			NServers: f.nServers, Base: f.base,
		}), 0
	case wire.MTRemoveReq:
		r := v.(*wire.RemoveReq)
		if err := m.checkNameRoute(r.Name); err != "" {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: err}), 0
		}
		f, ok := m.files[r.Name]
		if !ok {
			return wire.EncodeMetaResp(&wire.MetaResp{Err: fmt.Sprintf("no such file: %s", r.Name)}), 0
		}
		delete(m.files, r.Name)
		return wire.EncodeMetaResp(&wire.MetaResp{OK: true}), f.handle
	case wire.MTListReq:
		names := make([]string, 0, len(m.files))
		for n := range m.files {
			names = append(names, n)
		}
		sort.Strings(names)
		return wire.EncodeListResp(&wire.ListResp{OK: true, Names: names}), 0
	default:
		return wire.EncodeMetaResp(&wire.MetaResp{Err: "unexpected message " + t.String()}), 0
	}
}
