package pvfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/storage"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// startStreamCluster is startCluster with streaming tuned to a small
// segment size so tests exercise multi-segment transfers cheaply. tune
// (optional) adjusts each server before it starts serving.
func startStreamCluster(t *testing.T, nServers, chunk, window int, tune func(*Server)) (*testCluster, *Client) {
	t.Helper()
	tc := &testCluster{
		net: transport.NewMemNetwork(),
		env: transport.NewRealEnv(),
	}
	tc.meta = NewMetaServer(tc.net, "meta", nServers)
	go tc.meta.Serve(tc.env)
	for i := 0; i < nServers; i++ {
		addr := fmt.Sprintf("io%d", i)
		s := NewServer(tc.net, addr, i, CostModel{})
		s.StreamChunkBytes = chunk
		s.StreamWindow = window
		if tune != nil {
			tune(s)
		}
		tc.servers = append(tc.servers, s)
		tc.addrs = append(tc.addrs, addr)
		go s.Serve(tc.env)
	}
	t.Cleanup(func() {
		tc.meta.Close()
		for _, s := range tc.servers {
			s.Close()
		}
	})
	c := tc.client()
	c.StreamChunkBytes = chunk
	c.StreamWindow = window
	t.Cleanup(c.Close)
	for i := 0; i < 2000; i++ {
		if f, err := c.Create(tc.env, "__probe__", 64, 0); err == nil {
			if _, err := f.Size(tc.env); err == nil {
				c.Remove(tc.env, "__probe__")
				return tc, c
			}
		} else if f, err := c.Open(tc.env, "__probe__"); err == nil {
			// Created on an earlier retry; check the data servers again.
			if _, err := f.Size(tc.env); err == nil {
				c.Remove(tc.env, "__probe__")
				return tc, c
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("cluster did not come up")
	return nil, nil
}

func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

func TestStreamSegmentBoundaries(t *testing.T) {
	const chunk = 1024
	// One server: the per-server payload equals the transfer size, so the
	// sizes below hit the exact segment boundaries of the stream protocol.
	sizes := []int{0, 1, chunk - 1, chunk, chunk + 1, 2 * chunk, 3*chunk + 17}
	for _, nServers := range []int{1, 3} {
		_, c := startStreamCluster(t, nServers, chunk, 2, nil)
		env := transport.NewRealEnv()
		for _, size := range sizes {
			name := fmt.Sprintf("s%d.dat", size)
			f, err := c.Create(env, name, 512, 0)
			if err != nil {
				t.Fatal(err)
			}
			data := patterned(size)
			if err := f.WriteContig(env, 13, data); err != nil {
				t.Fatalf("n=%d write: %v", size, err)
			}
			got := make([]byte, size)
			if err := f.ReadContig(env, 13, got); err != nil {
				t.Fatalf("n=%d read: %v", size, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("servers=%d n=%d: round trip corrupted", nServers, size)
			}
		}
	}
}

func TestStreamWindowOne(t *testing.T) {
	// A window of 1 forces a full stop-and-wait ack exchange per segment:
	// the strictest schedule for the credit protocol.
	_, c := startStreamCluster(t, 1, 256, 1, nil)
	env := transport.NewRealEnv()
	f, err := c.Create(env, "w1.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := patterned(256*32 + 5)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted")
	}
}

func TestStreamListAndDtype(t *testing.T) {
	const chunk = 1024
	_, c := startStreamCluster(t, 3, chunk, 2, nil)
	env := transport.NewRealEnv()

	// List I/O: two file regions whose per-server payloads span several
	// segments.
	f, err := c.Create(env, "l.dat", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := patterned(20000)
	fileRegions := []Region{{Off: 40, Len: 9000}, {Off: 30000, Len: 11000}}
	memRegions := []Region{{Off: 0, Len: 20000}}
	if err := f.WriteList(env, fileRegions, memRegions, mem); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(mem))
	if err := f.ReadList(env, fileRegions, memRegions, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Fatal("list round trip corrupted")
	}

	// Datatype I/O: strided file elements so each server's spans straddle
	// segment boundaries mid-piece.
	f2, err := c.Create(env, "d.dat", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	fileTy := datatype.Vector(2000, 1, 2, datatype.Int64) // 16000 data bytes over 32000
	fileLoop := dataloop.FromType(fileTy)
	memLoop := dataloop.FromType(datatype.Bytes(16000))
	dmem := patterned(16000)
	acc := &DtypeAccess{Mem: dmem, MemLoop: memLoop, MemCount: 1, FileLoop: fileLoop}
	if err := f2.WriteDtype(env, acc); err != nil {
		t.Fatal(err)
	}
	dgot := make([]byte, len(dmem))
	if err := f2.ReadDtype(env, &DtypeAccess{Mem: dgot, MemLoop: memLoop, MemCount: 1, FileLoop: fileLoop}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dgot, dmem) {
		t.Fatal("dtype round trip corrupted")
	}
}

// failCtl switches injected read failures on and off for every store of
// a server.
type failCtl struct {
	mu        sync.Mutex
	failAfter int64 // fail reads at offset >= failAfter; -1 = never
}

func (fc *failCtl) set(v int64) {
	fc.mu.Lock()
	fc.failAfter = v
	fc.mu.Unlock()
}

type flakyStore struct {
	storage.Store
	ctl *failCtl
}

func (fs *flakyStore) ReadAt(p []byte, off int64) error {
	fs.ctl.mu.Lock()
	fa := fs.ctl.failAfter
	fs.ctl.mu.Unlock()
	if fa >= 0 && off >= fa {
		return errors.New("injected storage failure")
	}
	return fs.Store.ReadAt(p, off)
}

func TestStreamReadErrorMidStream(t *testing.T) {
	// window > nseg: no acks flow, so the client deterministically reads
	// the terminal error chunk and surfaces the storage failure verbatim.
	// window < nseg: the server may close while a client ack is in
	// flight, so only a clean failure is guaranteed. Both must leave the
	// client able to recover by redialing.
	for _, tt := range []struct {
		window    int
		exactText bool
	}{{8, true}, {2, false}} {
		const chunk = 1024
		ctl := &failCtl{failAfter: -1}
		_, c := startStreamCluster(t, 1, chunk, tt.window, func(s *Server) {
			s.NewStore = func(uint64) storage.Store {
				return &flakyStore{Store: storage.NewMem(), ctl: ctl}
			}
		})
		env := transport.NewRealEnv()
		f, err := c.Create(env, "e.dat", 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		data := patterned(5 * chunk)
		if err := f.WriteContig(env, 0, data); err != nil {
			t.Fatal(err)
		}
		// Fail from segment 2 on: the first segments are already on the
		// wire when the server hits the fault, so the error is mid-stream.
		ctl.set(2 * chunk)
		got := make([]byte, len(data))
		err = f.ReadContig(env, 0, got)
		if err == nil {
			t.Fatalf("window=%d: mid-stream failure not surfaced", tt.window)
		}
		if tt.exactText && !strings.Contains(err.Error(), "injected storage failure") {
			t.Fatalf("window=%d: failure not surfaced verbatim: %v", tt.window, err)
		}
		// The client dropped the broken connection; the next operation
		// redials and succeeds.
		ctl.set(-1)
		if err := f.ReadContig(env, 0, got); err != nil {
			t.Fatalf("window=%d: read after redial: %v", tt.window, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("window=%d: data after redial corrupted", tt.window)
		}
	}
}

func TestStreamWriteRequestErrorKeepsConnUsable(t *testing.T) {
	// A request-level failure of a streamed write (payload exceeds the
	// request's regions) must drain the stream and answer with an error
	// IOResp on a connection that remains in protocol sync.
	tc, c := startStreamCluster(t, 1, 64*1024, 4, nil)
	env := tc.env
	f, err := c.Create(env, "x.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.conn(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	const seg, total = 1024, 3000
	inner := wire.EncodeContig(&wire.ContigReq{Layout: f.wireLayout(0), Off: 0, N: 100}, true)
	hdr := wire.EncodeWriteStreamHdr(&wire.WriteStreamHdr{
		Total: total, SegBytes: seg, Window: 4, Inner: inner,
	})
	if err := conn.Send(env, hdr); err != nil {
		t.Fatal(err)
	}
	payload := patterned(total)
	for k := 0; k*seg < total; k++ {
		end := (k + 1) * seg
		if end > total {
			end = total
		}
		chunk := wire.EncodeStreamChunk(&wire.StreamChunk{Seq: uint32(k), Data: payload[k*seg : end]})
		if err := conn.Send(env, chunk); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := wire.DecodeMsg(raw)
	if err != nil {
		t.Fatal(err)
	}
	resp := v.(*wire.IOResp)
	if resp.OK || !strings.Contains(resp.Err, "excess write payload") {
		t.Fatalf("response %+v", resp)
	}
	// The same connection still serves requests, and the 100 bytes the
	// request covered were written before the failure was detected.
	chk := make([]byte, 100)
	if err := f.ReadContig(env, 0, chk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chk, payload[:100]) {
		t.Fatal("written prefix lost")
	}
}

func TestStreamBadHeaderClosesConn(t *testing.T) {
	// A stream header whose framing is self-contradictory (total fits one
	// segment) cannot be salvaged: the server closes the connection.
	tc, c := startStreamCluster(t, 1, 64*1024, 4, nil)
	env := tc.env
	f, err := c.Create(env, "y.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.conn(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := wire.EncodeContig(&wire.ContigReq{Layout: f.wireLayout(0), Off: 0, N: 10}, true)
	hdr := wire.EncodeWriteStreamHdr(&wire.WriteStreamHdr{
		Total: 500, SegBytes: 1024, Window: 4, Inner: inner,
	})
	if err := conn.Send(env, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(env); err == nil {
		t.Fatal("connection survived a broken stream header")
	}
}

// TestServerReadHotPathAllocs locks in the pre-sized single-allocation
// response path: a noncontiguous dtype read of many pieces must not
// allocate per piece (the seed grew the response buffer per piece).
func TestServerReadHotPathAllocs(t *testing.T) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64) // 512 pieces
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
	}, false)
	// Warm the object map and the loop cache.
	if resp, err := s.handle(env, nil, req); err != nil || resp == nil {
		t.Fatalf("warmup: resp=%v err=%v", resp, err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		resp, err := s.handle(env, nil, req)
		if err != nil || resp == nil {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
	})
	// Decode, iterator state, and the single response frame: a small
	// constant, far below one allocation per piece.
	if allocs > 32 {
		t.Fatalf("dtype read hot path allocates %.0f per request", allocs)
	}
}

// TestServerWriteHotPathAllocs is the write-side twin of the read
// bound: an inline noncontiguous dtype write of many pieces must stay
// within the same small constant — the scheduler, the payload source,
// and the scatter-gather list are all pooled, and vectored dispatch
// gathers payload slices without a staging copy.
func TestServerWriteHotPathAllocs(t *testing.T) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64) // 512 pieces
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
		Data: patterned(512 * 8),
	}, true)
	resp, err := s.handle(env, nil, req)
	if err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if _, v, err := wire.DecodeMsg(resp); err != nil || !v.(*wire.IOResp).OK {
		t.Fatalf("warmup response not OK: %v %v", v, err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		resp, err := s.handle(env, nil, req)
		if err != nil || resp == nil {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
	})
	if allocs > 32 {
		t.Fatalf("dtype write hot path allocates %.0f per request", allocs)
	}
}

// BenchmarkDtypeServerWritePath measures the server-side cost of one
// cached-loop noncontiguous dtype write (run with -benchmem to see the
// per-request allocation count).
func BenchmarkDtypeServerWritePath(b *testing.B) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64)
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
		Data: patterned(512 * 8),
	}, true)
	if _, err := s.handle(env, nil, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handle(env, nil, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDtypeServerHotPath measures the server-side cost of one
// cached-loop noncontiguous dtype read (run with -benchmem to see the
// per-request allocation count).
func BenchmarkDtypeServerHotPath(b *testing.B) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64)
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
	}, false)
	if _, err := s.handle(env, nil, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handle(env, nil, req); err != nil {
			b.Fatal(err)
		}
	}
}
