package pvfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/iostats"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// testCluster is an in-process cluster on the Mem network.
type testCluster struct {
	net     *transport.MemNetwork
	env     transport.Env
	meta    *MetaServer
	servers []*Server
	addrs   []string
}

func startCluster(t *testing.T, nServers int) *testCluster {
	t.Helper()
	tc := &testCluster{
		net: transport.NewMemNetwork(),
		env: transport.NewRealEnv(),
	}
	tc.meta = NewMetaServer(tc.net, "meta", nServers)
	go tc.meta.Serve(tc.env)
	for i := 0; i < nServers; i++ {
		addr := fmt.Sprintf("io%d", i)
		s := NewServer(tc.net, addr, i, CostModel{})
		tc.servers = append(tc.servers, s)
		tc.addrs = append(tc.addrs, addr)
		go s.Serve(tc.env)
	}
	t.Cleanup(func() {
		tc.meta.Close()
		for _, s := range tc.servers {
			s.Close()
		}
	})
	// Wait for ALL listeners (metadata and every I/O server): a stat
	// touches each server, so success means the cluster is fully up.
	c := NewClient(tc.net, "meta", tc.addrs, CostModel{})
	defer c.Close()
	for i := 0; i < 2000; i++ {
		if f, err := c.Create(tc.env, "__probe__", 64, 0); err == nil {
			if _, err := f.Size(tc.env); err == nil {
				c.Remove(tc.env, "__probe__")
				return tc
			}
		} else if _, err := c.Open(tc.env, "__probe__"); err == nil {
			// Created on an earlier retry; check the data servers again.
			f, _ := c.Open(tc.env, "__probe__")
			if _, err := f.Size(tc.env); err == nil {
				c.Remove(tc.env, "__probe__")
				return tc
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("cluster did not come up")
	return nil
}

func (tc *testCluster) client() *Client {
	return NewClient(tc.net, "meta", tc.addrs, CostModel{})
}

// selfOverlaps reports whether any two data regions of one instance of
// the type overlap.
func selfOverlaps(ty *datatype.Type) bool {
	regions := ty.Flatten(0, 1)
	sort.Slice(regions, func(i, j int) bool { return regions[i].Off < regions[j].Off })
	for i := 1; i < len(regions); i++ {
		if regions[i].Off < regions[i-1].Off+regions[i-1].Len {
			return true
		}
	}
	return false
}

func TestCreateOpenRemove(t *testing.T) {
	tc := startCluster(t, 4)
	c := tc.client()
	defer c.Close()
	env := tc.env

	f, err := c.Create(env, "a.dat", 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Layout().NServers != 4 || f.Layout().StripSize != 1024 {
		t.Fatalf("layout %+v", f.Layout())
	}
	if _, err := c.Create(env, "a.dat", 1024, 0); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := c.Open(env, "missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	names, err := c.ListNames(env)
	if err != nil || len(names) != 1 || names[0] != "a.dat" {
		t.Fatalf("names=%v err=%v", names, err)
	}
	if err := c.Remove(env, "a.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(env, "a.dat"); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

func TestCreateValidation(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.client()
	defer c.Close()
	if _, err := c.Create(tc.env, "", 1024, 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.Create(tc.env, "x", 0, 0); err == nil {
		t.Fatal("zero strip accepted")
	}
}

func TestContigRoundTripAcrossStripes(t *testing.T) {
	tc := startCluster(t, 4)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, err := c.Create(env, "c.dat", 128, 0) // small strips force splitting
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := f.WriteContig(env, 77, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 77, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("contig round trip corrupted")
	}
	// Holes read zero.
	hole := make([]byte, 77)
	if err := f.ReadContig(env, 0, hole); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 77)) {
		t.Fatal("hole not zero")
	}
	// Size.
	size, err := f.Size(env)
	if err != nil {
		t.Fatal(err)
	}
	if size != 77+5000 {
		t.Fatalf("size=%d", size)
	}
}

func TestTruncate(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "t.dat", 100, 0)
	f.WriteContig(env, 0, make([]byte, 1000))
	if err := f.Truncate(env, 250); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size(env)
	if size != 250 {
		t.Fatalf("size=%d", size)
	}
}

func TestListIORoundTrip(t *testing.T) {
	tc := startCluster(t, 4)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "l.dat", 64, 0)

	mem := []byte("AABBCCDDEEFF")
	fileRegions := []Region{{Off: 10, Len: 4}, {Off: 100, Len: 2}, {Off: 300, Len: 6}}
	memRegions := []Region{{Off: 0, Len: 6}, {Off: 6, Len: 6}}
	if err := f.WriteList(env, fileRegions, memRegions, mem); err != nil {
		t.Fatal(err)
	}
	// Read back with a different split of memory regions.
	got := make([]byte, 12)
	memRegions2 := []Region{{Off: 0, Len: 3}, {Off: 3, Len: 3}, {Off: 6, Len: 6}}
	if err := f.ReadList(env, fileRegions, memRegions2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Fatalf("got %q want %q", got, mem)
	}
	// Cross-check against contig reads.
	chk := make([]byte, 4)
	f.ReadContig(env, 10, chk)
	if string(chk) != "AABB" {
		t.Fatalf("file[10:14]=%q", chk)
	}
}

func TestListIOValidation(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "v.dat", 64, 0)
	mem := make([]byte, 10)
	// Mismatched byte counts.
	err := f.WriteList(env, []Region{{Off: 0, Len: 4}}, []Region{{Off: 0, Len: 5}}, mem)
	if err == nil {
		t.Fatal("mismatched lists accepted")
	}
	// Memory region outside the buffer.
	err = f.ReadList(env, []Region{{Off: 0, Len: 4}}, []Region{{Off: 8, Len: 4}}, mem)
	if err == nil {
		t.Fatal("out-of-buffer memory region accepted")
	}
}

// TestListIOAutoSplit: calls beyond the per-request protocol bound are
// split into multiple requests transparently and stay byte-correct.
func TestListIOAutoSplit(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "big.dat", 64, 0)
	n := MaxListRegions + 10
	many := make([]Region, n)
	mem := make([]byte, n)
	for i := range many {
		many[i] = Region{Off: int64(i * 3), Len: 1} // every 3rd byte
		mem[i] = byte(i%251 + 1)
	}
	memR := []Region{{Off: 0, Len: int64(n)}}
	if err := f.WriteList(env, many, memR, mem); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if err := f.ReadList(env, many, memR, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Fatal("auto-split list round trip corrupted data")
	}
	// Spot-check placement and the holes with a contig read.
	chk := make([]byte, 7)
	if err := f.ReadContig(env, 0, chk); err != nil {
		t.Fatal(err)
	}
	want := []byte{mem[0], 0, 0, mem[1], 0, 0, mem[2]}
	if !bytes.Equal(chk, want) {
		t.Fatalf("file[0:7]=%v want %v", chk, want)
	}
}

func TestDtypeRoundTripVector(t *testing.T) {
	tc := startCluster(t, 4)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "d.dat", 64, 0)

	// File: every other 4-byte element of a 50-element grid;
	// memory: contiguous.
	fileTy := datatype.Vector(25, 1, 2, datatype.Int32)
	fileLoop := dataloop.FromType(fileTy)
	memLoop := dataloop.FromType(datatype.Bytes(100))
	mem := make([]byte, 100)
	for i := range mem {
		mem[i] = byte(i + 1)
	}
	err := f.WriteDtype(env, &DtypeAccess{
		Mem: mem, MemLoop: memLoop, MemCount: 1,
		FileLoop: fileLoop, Disp: 8, Pos: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	err = f.ReadDtype(env, &DtypeAccess{
		Mem: got, MemLoop: memLoop, MemCount: 1,
		FileLoop: fileLoop, Disp: 8, Pos: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Fatal("dtype round trip corrupted")
	}
	// Verify placement with a contig read: element k at 8 + k*8.
	chk := make([]byte, 4)
	f.ReadContig(env, 8+3*8, chk)
	if !bytes.Equal(chk, mem[12:16]) {
		t.Fatalf("element 3 misplaced: %v vs %v", chk, mem[12:16])
	}
	// The gap elements are zero.
	f.ReadContig(env, 8+4, chk)
	if !bytes.Equal(chk, make([]byte, 4)) {
		t.Fatal("gap written")
	}
}

func TestDtypeNoncontigBothSides(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "d2.dat", 32, 0)

	// Memory: 10 elements of 8 bytes spaced 16 (stride gaps).
	memTy := datatype.Vector(10, 1, 2, datatype.Int64)
	memLoop := dataloop.FromType(memTy)
	mem := make([]byte, memTy.TrueExtent())
	for i := range mem {
		mem[i] = byte(200 - i)
	}
	// File: 4 blocks of 20 bytes at scattered displacements.
	fileTy := datatype.HIndexed([]int64{1, 1, 1, 1}, []int64{100, 0, 400, 220}, datatype.Bytes(20))
	fileLoop := dataloop.FromType(fileTy)

	err := f.WriteDtype(env, &DtypeAccess{
		Mem: mem, MemLoop: memLoop, MemCount: 1,
		FileLoop: fileLoop, Disp: 0, Pos: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(mem))
	err = f.ReadDtype(env, &DtypeAccess{
		Mem: got, MemLoop: memLoop, MemCount: 1,
		FileLoop: fileLoop, Disp: 0, Pos: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare only the data bytes (gaps in got stay zero).
	memTy.Walk(0, func(off, n int64) bool {
		if !bytes.Equal(got[off:off+n], mem[off:off+n]) {
			t.Fatalf("data bytes differ at %d", off)
		}
		return true
	})
}

func TestDtypePosWindow(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "w.dat", 64, 0)

	// File view: contiguous; write the full file then read a window via
	// Pos into the tiled view.
	full := make([]byte, 256)
	for i := range full {
		full[i] = byte(i)
	}
	f.WriteContig(env, 0, full)
	tile := dataloop.FromType(datatype.Bytes(64)) // view tiles of 64
	got := make([]byte, 100)
	err := f.ReadDtype(env, &DtypeAccess{
		Mem: got, MemLoop: dataloop.FromType(datatype.Bytes(100)), MemCount: 1,
		FileLoop: tile, Disp: 0, Pos: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full[50:150]) {
		t.Fatal("windowed dtype read wrong")
	}
}

func TestCrossMethodEquivalence(t *testing.T) {
	// Data written with datatype I/O reads back identically via contig,
	// list, and datatype paths.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		tc := startCluster(t, 1+rr.Intn(5))
		c := tc.client()
		defer c.Close()
		env := tc.env
		file, err := c.Create(env, "x.dat", int64(16+rr.Intn(100)), 0)
		if err != nil {
			return false
		}

		fileTy := datatype.RandomType(rr, 1+rr.Intn(2))
		if fileTy.TrueLB() < 0 || selfOverlaps(fileTy) {
			// Overlapping writes are undefined (as in MPI); skip.
			return true
		}
		n := fileTy.Size()
		mem := make([]byte, n)
		rr.Read(mem)
		memLoop := dataloop.FromType(datatype.Bytes(n))
		err = file.WriteDtype(env, &DtypeAccess{
			Mem: mem, MemLoop: memLoop, MemCount: 1,
			FileLoop: dataloop.FromType(fileTy), Disp: 0, Pos: 0,
		})
		if err != nil {
			t.Logf("write: %v", err)
			return false
		}
		// Read back via dtype.
		got := make([]byte, n)
		err = file.ReadDtype(env, &DtypeAccess{
			Mem: got, MemLoop: memLoop, MemCount: 1,
			FileLoop: dataloop.FromType(fileTy), Disp: 0, Pos: 0,
		})
		if err != nil || !bytes.Equal(got, mem) {
			t.Logf("dtype read mismatch: %v", err)
			return false
		}
		// Read back via list I/O (chunking to 64 regions).
		regions := fileTy.Flatten(0, 1)
		var listGot []byte
		for start := 0; start < len(regions); start += 64 {
			end := start + 64
			if end > len(regions) {
				end = len(regions)
			}
			chunk := regions[start:end]
			var cn int64
			for _, r := range chunk {
				cn += r.Len
			}
			buf := make([]byte, cn)
			if err := file.ReadList(env, chunk, []Region{{Off: 0, Len: cn}}, buf); err != nil {
				t.Logf("list read: %v", err)
				return false
			}
			listGot = append(listGot, buf...)
		}
		if !bytes.Equal(listGot, mem) {
			t.Log("list read mismatch")
			return false
		}
		// Read back via per-region contig.
		var contigGot []byte
		for _, r := range regions {
			buf := make([]byte, r.Len)
			if err := file.ReadContig(env, r.Off, buf); err != nil {
				return false
			}
			contigGot = append(contigGot, buf...)
		}
		return bytes.Equal(contigGot, mem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	tc := startCluster(t, 4)
	c := tc.client()
	defer c.Close()
	var stats iostats.Stats
	c.Stats = &stats
	env := tc.env
	f, _ := c.Create(env, "s.dat", 64, 0)
	f.WriteContig(env, 0, make([]byte, 1000))
	snap := stats.Snapshot()
	if snap.IOOps != 1 {
		t.Fatalf("ops=%d", snap.IOOps)
	}
	if snap.AccessedBytes != 1000 {
		t.Fatalf("accessed=%d", snap.AccessedBytes)
	}
	// 1000 bytes over 64-byte strips on 4 servers: all 4 involved.
	if snap.WireMsgs != 4 {
		t.Fatalf("wire=%d", snap.WireMsgs)
	}
}

func TestServerRejectsMisroutedRequest(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.client()
	defer c.Close()
	env := tc.env
	f, _ := c.Create(env, "m.dat", 64, 0)
	// Hand-craft a request with the wrong server index.
	conn, err := c.conn(env, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := wire.EncodeContig(&wire.ContigReq{Layout: f.wireLayout(0), Off: 0, N: 10}, false)
	conn.Send(env, req)
	raw, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	_, v, _ := wire.DecodeMsg(raw)
	if v.(*wire.IOResp).OK {
		t.Fatal("misrouted request accepted")
	}
}

func TestServerRejectsGarbageFrame(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.client()
	defer c.Close()
	env := tc.env
	conn, err := c.conn(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(env, []byte{0xde, 0xad})
	raw, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := wire.DecodeMsg(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*wire.IOResp).OK {
		t.Fatal("garbage accepted")
	}
}
