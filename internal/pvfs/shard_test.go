package pvfs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dtio/internal/iostats"
	"dtio/internal/shard"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// shardRig is a sharded control plane on a Mem network: n metadata
// shards plus two I/O servers, enough to drive locks, leases, and
// cached data through cross-shard paths.
type shardRig struct {
	net     *transport.MemNetwork
	env     transport.Env
	metas   []*MetaServer
	addrs   []string
	ioAddrs []string
}

func startShards(t *testing.T, n int, lease time.Duration) *shardRig {
	t.Helper()
	rig := &shardRig{
		net: transport.NewMemNetwork(),
		env: transport.NewRealEnv(),
	}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("meta%d", i)
		m := NewMetaServer(rig.net, addr, 2)
		m.ConfigureShard(i, n)
		m.LeaseTimeout = lease
		go m.Serve(rig.env)
		t.Cleanup(m.Close)
		rig.metas = append(rig.metas, m)
		rig.addrs = append(rig.addrs, addr)
	}
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("io%d", i)
		s := NewServer(rig.net, addr, i, CostModel{})
		go s.Serve(rig.env)
		t.Cleanup(s.Close)
		rig.ioAddrs = append(rig.ioAddrs, addr)
	}
	// Wait for every shard to answer: one probe file owned by each.
	c := rig.client()
	defer c.Close()
	for s := 0; s < n; s++ {
		name := nameOnShard(s, n, "__probe__")
		ok := false
		for i := 0; i < 2000 && !ok; i++ {
			if _, err := c.Create(rig.env, name, 64, 0); err == nil {
				ok = true
				if _, err := c.metaCall(rig.env, s, wire.EncodeRemove(&wire.RemoveReq{Name: name})); err != nil {
					t.Fatal(err)
				}
			} else {
				time.Sleep(time.Millisecond)
			}
		}
		if !ok {
			t.Fatalf("metadata shard %d did not come up", s)
		}
	}
	return rig
}

func (rig *shardRig) client() *Client {
	return NewShardedClient(rig.net, rig.addrs, rig.ioAddrs, CostModel{})
}

// nameOnShard finds a file name the rendezvous hash places on shard s.
func nameOnShard(s, n int, prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.%d", prefix, i)
		if shard.OfName(name, n) == s {
			return name
		}
	}
}

// TestShardNamespacePartition drives creates through a 2-shard client
// and checks that both shards own files, that every file opens and
// removes through name routing, and that ListNames merges the shards.
func TestShardNamespacePartition(t *testing.T) {
	rig := startShards(t, 2, 0)
	c := rig.client()
	defer c.Close()
	env := rig.env

	var names []string
	for i := 0; i < 16; i++ {
		names = append(names, fmt.Sprintf("part.%02d", i))
		if _, err := c.Create(env, names[i], 64, 0); err != nil {
			t.Fatal(err)
		}
	}
	for s, m := range rig.metas {
		if snap := m.Snapshot(); snap.Files == 0 {
			t.Fatalf("shard %d owns no files; partition collapsed", s)
		} else if snap.Shard != s || snap.Shards != 2 {
			t.Fatalf("shard %d snapshot identity: %+v", s, snap)
		}
	}
	got, err := c.ListNames(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("ListNames merged %d names, want %d: %v", len(got), len(names), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("ListNames not sorted: %v", got)
		}
	}
	for _, name := range names {
		f, err := c.Open(env, name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		// The handle's shard must agree with the name's shard: locks
		// route by handle and would otherwise land on the wrong table.
		if hs, ns := shard.OfHandle(f.handle, 2), shard.OfName(name, 2); hs != ns {
			t.Fatalf("%s: handle %d on shard %d, name on shard %d", name, f.handle, hs, ns)
		}
		if err := c.Remove(env, name); err != nil {
			t.Fatalf("remove %s: %v", name, err)
		}
	}
	if rest, err := c.ListNames(env); err != nil || len(rest) != 0 {
		t.Fatalf("namespace not empty after removes: %v %v", rest, err)
	}
}

// TestShardMisrouteRefused sends name and handle traffic to the wrong
// shard and expects loud errors, not silent misplacement.
func TestShardMisrouteRefused(t *testing.T) {
	rig := startShards(t, 2, 0)
	c := rig.client()
	defer c.Close()
	env := rig.env

	name := nameOnShard(0, 2, "mis")
	f, err := c.Create(env, name, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Name owned by shard 0, sent to shard 1.
	if _, err := c.metaCall(env, 1, wire.EncodeOpen(&wire.OpenReq{Name: name})); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Fatalf("misrouted open: %v", err)
	}
	if _, err := c.metaCall(env, 1, wire.EncodeCreate(&wire.CreateReq{Name: name, StripSize: 64})); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Fatalf("misrouted create: %v", err)
	}
	// Handle owned by shard 0, lock release sent to shard 1.
	wrong := shard.OfHandle(f.handle, 2) ^ 1
	if _, err := c.metaCall(env, wrong, wire.EncodeLockRelease(&wire.LockReleaseReq{Handle: f.handle, LockID: 1})); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Fatalf("misrouted lock release: %v", err)
	}
}

// TestShardLockIndependence: exclusive locks on files owned by
// different shards never block each other, while conflicts within a
// shard still queue FIFO (the PR2 invariant, per partition).
func TestShardLockIndependence(t *testing.T) {
	rig := startShards(t, 2, 0)
	env := rig.env
	ca, cb := rig.client(), rig.client()
	defer ca.Close()
	defer cb.Close()

	n0, n1 := nameOnShard(0, 2, "ind"), nameOnShard(1, 2, "ind")
	f0, err := ca.Create(env, n0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ca.Create(env, n1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Holding an exclusive lock on shard 0's file must not delay an
	// exclusive lock on shard 1's file.
	l0, err := f0.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := cb.Open(env, n1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		lk, err := g1.Lock(env, 0, 100, false)
		if err == nil {
			err = g1.Unlock(env, lk)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-shard lock blocked by an unrelated shard's holder")
	}
	// Same-shard conflict still queues, FIFO: two waiters on shard 1's
	// file are granted in arrival order.
	l1, err := f1.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	waiter := func(id int) (*Client, chan error) {
		cw := rig.client()
		fw, err := cw.Open(env, n1)
		errc := make(chan error, 1)
		if err != nil {
			errc <- err
			return cw, errc
		}
		go func() {
			lk, err := fw.Lock(env, 0, 100, false)
			if err == nil {
				order <- id
				time.Sleep(5 * time.Millisecond)
				err = fw.Unlock(env, lk)
			}
			errc <- err
		}()
		return cw, errc
	}
	cw1, e1 := waiter(1)
	defer cw1.Close()
	time.Sleep(20 * time.Millisecond) // waiter 1 queues first
	cw2, e2 := waiter(2)
	defer cw2.Close()
	time.Sleep(20 * time.Millisecond)
	if err := f1.Unlock(env, l1); err != nil {
		t.Fatal(err)
	}
	for _, e := range []chan error{e1, e2} {
		select {
		case err := <-e:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter never granted")
		}
	}
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d; want FIFO 1,2", first, second)
	}
	if err := f0.Unlock(env, l0); err != nil {
		t.Fatal(err)
	}
	// All lock work for n1 happened on its owning shard.
	owner := shard.OfName(n1, 2)
	if s := rig.metas[owner].LockStats(); s.Waits != 2 {
		t.Fatalf("owning shard %d stats: %+v", owner, s)
	}
}

// TestShardLeaseReclaim is the PR4 invariant per partition: a holder
// that goes silent with locks on two different shards has each lease
// reclaimed by the owning shard, and waiters on both shards proceed.
func TestShardLeaseReclaim(t *testing.T) {
	const lease = 40 * time.Millisecond
	rig := startShards(t, 2, lease)
	env := rig.env
	holder, waiter := rig.client(), rig.client()
	defer waiter.Close()
	// The holder's Close releases cleanly; keep it open so only lease
	// expiry can free the ranges. (Closed at the end for cleanup.)
	defer holder.Close()

	n0, n1 := nameOnShard(0, 2, "lease"), nameOnShard(1, 2, "lease")
	f0, err := holder.Create(env, n0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := holder.Create(env, n1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f0.Lock(env, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Lock(env, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	// The holder now goes silent. Waiters on both shards must be
	// rescued by each shard's own watchdog. (Only the first wait is
	// timed: both watchdogs start at acquisition, so by the time the
	// first lease has been waited out the second shard has usually
	// reclaimed too, and its grant is rightly immediate.)
	for i, name := range []string{n0, n1} {
		g, err := waiter.Open(env, name)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		lk, err := g.Lock(env, 0, 100, false)
		if err != nil {
			t.Fatal(err)
		}
		if waited := time.Since(start); i == 0 && waited < lease/2 {
			t.Fatalf("%s: granted after %v, before the lease could expire", name, waited)
		}
		if err := g.Unlock(env, lk); err != nil {
			t.Fatal(err)
		}
	}
	for s, m := range rig.metas {
		st := m.LockStats()
		if st.Expired != 1 {
			t.Fatalf("shard %d reclaimed %d leases, want exactly its own", s, st.Expired)
		}
		if st.Held != 0 || st.Queued != 0 {
			t.Fatalf("shard %d leaked lock state: %+v", s, st)
		}
	}
}

// TestShardRemoveFailsWaiters: removing a file on a non-zero shard
// fails that shard's queued lock requests (and only that shard's).
func TestShardRemoveFailsWaiters(t *testing.T) {
	rig := startShards(t, 2, 0)
	env := rig.env
	ca, cb, cc := rig.client(), rig.client(), rig.client()
	defer ca.Close()
	defer cb.Close()
	defer cc.Close()

	name := nameOnShard(1, 2, "rm")
	fa, err := ca.Create(env, name, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Lock(env, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	fb, err := cb.Open(env, name)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := fb.Lock(env, 0, 100, false)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue on shard 1
	if _, err := cc.metaCall(env, 1, wire.EncodeRemove(&wire.RemoveReq{Name: name})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err == nil || !strings.Contains(err.Error(), "file removed") {
			t.Fatalf("waiter outcome: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still queued after file removal")
	}
	if s := rig.metas[1].LockStats(); s.Held != 0 || s.Queued != 0 {
		t.Fatalf("owning shard leaked lock state: %+v", s)
	}
}

// TestShardCacheCoherence is the PR6 invariant across partitions: a
// cached client holding dirty data under a shard-1 lease must flush it
// when a conflicting reader's lock forces revocation, even while the
// writer is busy talking to shard 0 — the revoke arrives on a
// different shard's connection than the one the writer is blocked on.
func TestShardCacheCoherence(t *testing.T) {
	rig := startShards(t, 2, 0)
	env := rig.env
	writer := rig.client()
	writer.CacheBytes = 1 << 20
	writer.CacheChunkBytes = 4096
	writer.Stats = &iostats.Stats{}
	defer writer.Close()
	reader := rig.client()
	defer reader.Close()

	n0, n1 := nameOnShard(0, 2, "coh"), nameOnShard(1, 2, "coh")
	f0, err := writer.Create(env, n0, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := writer.Create(env, n1, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("dirty-on-shard-one")
	if err := f1.WriteContig(env, 0, want); err != nil {
		t.Fatal(err)
	}
	// The reader demands shard 1's range while the writer keeps itself
	// busy on shard 0; the writer must notice the revoke on its shard-1
	// connection at cached-op boundaries and flush.
	done := make(chan error, 1)
	go func() {
		g1, err := reader.Open(env, n1)
		if err != nil {
			done <- err
			return
		}
		lk, err := g1.Lock(env, 0, int64(len(want)), true)
		if err != nil {
			done <- err
			return
		}
		done <- g1.Unlock(env, lk)
	}()
	deadline := time.After(10 * time.Second)
	for finished := false; !finished; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			finished = true
		case <-deadline:
			t.Fatal("reader's lock never granted: revocation lost across shards")
		default:
			if err := f0.WriteContig(env, 0, []byte("busy")); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if s := writer.Stats.Snapshot(); s.FlushOps == 0 {
		t.Fatalf("revocation did not flush dirty cache (stats %+v)", s)
	}
	// The flushed bytes are visible to an uncached client.
	got := make([]byte, len(want))
	g1, err := reader.Open(env, n1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

// TestShardLockFlushesOtherShards: before blocking on one shard's lock
// service, a caching client surrenders leases it holds on other shards
// (the cross-shard deadlock-avoidance rule), so its dirty data lands
// durably without an explicit Flush.
func TestShardLockFlushesOtherShards(t *testing.T) {
	rig := startShards(t, 2, 0)
	env := rig.env
	c := rig.client()
	c.CacheBytes = 1 << 20
	c.CacheChunkBytes = 4096
	c.Stats = &iostats.Stats{}
	defer c.Close()

	n0, n1 := nameOnShard(0, 2, "xs"), nameOnShard(1, 2, "xs")
	f0, err := c.Create(env, n0, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := c.Create(env, n1, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("surrendered-before-blocking")
	if err := f0.WriteContig(env, 0, want); err != nil {
		t.Fatal(err)
	}
	// Locking shard 1's file must first surrender the shard-0 lease.
	lk, err := f1.Lock(env, 0, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Unlock(env, lk); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats.Snapshot(); s.FlushOps == 0 {
		t.Fatalf("cross-shard lock did not surrender foreign leases (stats %+v)", s)
	}
	plain := rig.client()
	defer plain.Close()
	pf, err := plain.Open(env, n0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := pf.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

// TestShardMetaStatsFetch pulls the wire-level introspection snapshot
// from every shard and sanity-checks the counters.
func TestShardMetaStatsFetch(t *testing.T) {
	rig := startShards(t, 2, 0)
	c := rig.client()
	defer c.Close()
	env := rig.env

	name := nameOnShard(1, 2, "stats")
	f, err := c.Create(env, name, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := f.Lock(env, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unlock(env, lk); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		snap, err := c.FetchMetaStats(env, s)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Shard != s || snap.Shards != 2 {
			t.Fatalf("shard %d snapshot identity: %+v", s, snap)
		}
		want := 0
		if s == 1 {
			want = 1
		}
		if snap.Files != want {
			t.Fatalf("shard %d reports %d files, want %d", s, snap.Files, want)
		}
		if s == 1 && (snap.Acquires != 1 || snap.Releases != 1) {
			t.Fatalf("owning shard counters: %+v", snap)
		}
	}
	if _, err := c.FetchMetaStats(env, 99); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
