// Package pvfs implements a PVFS-style parallel file system: a metadata
// server owning the namespace and striping parameters, I/O servers each
// holding one object per file (its stripes), and a client library.
//
// Clients learn a file's layout at open time and then talk to I/O
// servers directly. Servers are stateless about metadata: every I/O
// request carries the file's layout, and each server derives its local
// byte regions from the request description — a contiguous range, an
// explicit region list (list I/O), or a dataloop it expands itself
// (datatype I/O, the paper's contribution).
package pvfs

import (
	"time"
)

// CostModel parameterizes the simulated processing costs (DESIGN.md §4).
// The zero value disables all modeled costs (used on Mem/TCP transports,
// where only functionality matters).
type CostModel struct {
	// RequestOverhead is server CPU charged per request (PVFS 1.x
	// request decode + job setup + iod bookkeeping ran in the
	// millisecond range on the testbed's hardware; this is what makes
	// thousands of small requests expensive).
	RequestOverhead time.Duration
	// PerRegionServer is server CPU per offset-length pair produced
	// while building the job/access structures.
	PerRegionServer time.Duration
	// PerRegionClient is client CPU per pair while building its side of
	// the job/access structures (the heavyweight list building of the
	// PVFS client library; list I/O and datatype I/O pay it).
	PerRegionClient time.Duration
	// MemcpyPerPiece is the lighter per-piece cost of plain buffer
	// gather/scatter (data sieving extraction, two-phase staging).
	MemcpyPerPiece time.Duration
	// DataloopDecode is extra server CPU per datatype request (parsing
	// and setting up dataloop processing).
	DataloopDecode time.Duration
	// DiskPerOp is charged per dispatched disk operation, after the
	// server's disk scheduler has coalesced a request's physical runs
	// (DESIGN.md §10). An operation that continues the previous dispatch
	// sequentially (no head movement) is free: the disk just keeps
	// streaming.
	DiskPerOp time.Duration
	// DiskSeekPerMB is head-travel time per MiB of distance between
	// consecutive dispatched operations, capped at DiskSeekMax. Short
	// seeks on the era's SCSI disks are roughly linear in distance
	// (track-to-track ~1 ms over ~0.5 MB tracks).
	DiskSeekPerMB time.Duration
	// DiskSeekMax caps one seek's modeled time (full-stroke plus
	// settle); beyond a few MB of travel, seek time flattens out.
	DiskSeekMax time.Duration
	// DiskReadBytesPerSec is effective server read throughput. Reads in
	// the paper's benchmarks are largely sequential or buffer-cache
	// warm, so this is near the disk's streaming rate.
	DiskReadBytesPerSec float64
	// DiskWriteBytesPerSec is effective server write-ingestion
	// throughput (write syscalls, FS overhead, interleaved client
	// streams on one spindle) — far below the streaming rate on the
	// paper's testbed.
	DiskWriteBytesPerSec float64
}

// DefaultCostModel returns the Chiba City calibration from DESIGN.md §4.
func DefaultCostModel() CostModel {
	return CostModel{
		RequestOverhead:      2 * time.Millisecond,
		PerRegionServer:      50 * time.Microsecond,
		PerRegionClient:      15 * time.Microsecond,
		MemcpyPerPiece:       4 * time.Microsecond,
		DataloopDecode:       50 * time.Microsecond,
		DiskPerOp:            time.Millisecond,
		DiskSeekPerMB:        2 * time.Millisecond,
		DiskSeekMax:          8 * time.Millisecond,
		DiskReadBytesPerSec:  25e6,
		DiskWriteBytesPerSec: 2.5e6,
	}
}

// diskXfer is the transfer time of n bytes at the read or write rate.
func (c CostModel) diskXfer(n int64, write bool) time.Duration {
	bw := c.DiskReadBytesPerSec
	if write {
		bw = c.DiskWriteBytesPerSec
	}
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// diskSeek is the head-travel time for a jump of dist bytes.
func (c CostModel) diskSeek(dist int64) time.Duration {
	if dist <= 0 || c.DiskSeekPerMB <= 0 {
		return 0
	}
	d := time.Duration(float64(dist) / (1 << 20) * float64(c.DiskSeekPerMB))
	if c.DiskSeekMax > 0 && d > c.DiskSeekMax {
		return c.DiskSeekMax
	}
	return d
}
