package pvfs

import (
	"testing"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/flightrec"
	"dtio/internal/iostats"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// TestServerReadHotPathAllocsWithFlight locks in the PR10 bound: the
// always-on configuration — flight recorder AND latency histograms —
// keeps the dtype read hot path within the same ≤32-alloc budget as
// the unobserved path. Recording is one atomic claim plus atomic
// stores into a preallocated slot.
func TestServerReadHotPathAllocsWithFlight(t *testing.T) {
	env := transport.NewRealEnv()
	s := NewServer(transport.NewMemNetwork(), "x", 0, CostModel{})
	s.Metrics = &ServerMetrics{}
	s.Flight = flightrec.New(256)
	s.Stats = &iostats.Stats{}
	fileTy := datatype.Vector(512, 1, 2, datatype.Int64) // 512 pieces
	loop := dataloop.FromType(fileTy)
	req := wire.EncodeDtype(&wire.DtypeReq{
		Layout: wire.FileLayout{Handle: 1, StripSize: 1 << 20, NServers: 1},
		Loop:   loop.Encode(nil),
		Count:  1, NBytes: 512 * 8,
	}, false)
	if resp, err := s.handle(env, nil, req); err != nil || resp == nil {
		t.Fatalf("warmup: resp=%v err=%v", resp, err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		resp, err := s.handle(env, nil, req)
		if err != nil || resp == nil {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
	})
	if allocs > 32 {
		t.Fatalf("flight-enabled dtype read hot path allocates %.0f per request", allocs)
	}
	if got := s.Flight.Total(); got < 51 {
		t.Fatalf("flight recorder saw %d events, want >= 51", got)
	}
	evs := s.Flight.Snapshot()
	last := evs[len(evs)-1]
	if last.Op != uint8(wire.MTReadDtypeReq) || last.Handle != 1 || last.Bytes != 512*8 {
		t.Fatalf("last event %+v, want readdtype handle=1 bytes=%d", last, 512*8)
	}
	if last.Flags != 0 {
		t.Fatalf("healthy read flagged %#x", last.Flags)
	}
}

// TestFlightOverWire drives the AdminFlightRec round trip on a live
// cluster: real reads and writes, then a dump fetch whose events must
// carry the ops, handles, byte counts, and replay flags — and whose
// drop accounting must line up with iostats.EventsDropped.
func TestFlightOverWire(t *testing.T) {
	stats := make([]*iostats.Stats, 0, 2)
	rings := make([]*flightrec.Ring, 0, 2)
	tc, c := startStreamCluster(t, 2, 64*1024, 4, func(s *Server) {
		st := &iostats.Stats{}
		r := flightrec.New(16) // tiny, so the test can exercise lapping
		s.Stats = st
		s.Flight = r
		stats = append(stats, st)
		rings = append(rings, r)
	})
	env := tc.env
	f, err := c.Create(env, "flight.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := patterned(10000)
	if err := f.WriteContig(env, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadContig(env, 0, got); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		d, err := c.FetchFlight(env, s)
		if err != nil {
			t.Fatalf("server %d: %v", s, err)
		}
		if d.Server != s {
			t.Fatalf("server %d dump reports index %d", s, d.Server)
		}
		if len(d.Events) == 0 {
			t.Fatalf("server %d dump empty", s)
		}
		var reads, writes int
		for _, ev := range d.Events {
			switch wire.MsgType(ev.Op) {
			case wire.MTReadContigReq:
				reads++
				if ev.Handle == 0 || ev.Bytes <= 0 {
					t.Fatalf("server %d read event missing payload info: %+v", s, ev)
				}
			case wire.MTWriteContigReq, wire.MTWriteStreamHdr:
				writes++
			}
			if ev.ServiceNs < 0 {
				t.Fatalf("server %d event with negative service time: %+v", s, ev)
			}
		}
		if reads == 0 || writes == 0 {
			t.Fatalf("server %d dump: %d reads, %d writes — want both", s, reads, writes)
		}
		// The admin fetch itself is recorded too, so total keeps moving;
		// the dump's own accounting must agree with the ring's.
		if d.Total < int64(len(d.Events)) {
			t.Fatalf("server %d: total %d < retained %d", s, d.Total, len(d.Events))
		}
		if want := rings[s].Dropped(); d.Dropped > want {
			t.Fatalf("server %d: dump dropped %d > ring %d", s, d.Dropped, want)
		}
		// The admin fetch is itself recorded after the dump snapshot, so
		// iostats may run at most one event ahead of the dump's figure.
		if dropped := stats[s].Snapshot().EventsDropped; dropped < d.Dropped || dropped > d.Dropped+1 {
			t.Fatalf("server %d: iostats EventsDropped %d != dump %d (±1)", s, dropped, d.Dropped)
		}
	}
	// Lap server 0's tiny ring hard and recheck the truncation counter.
	for i := 0; i < 50; i++ {
		if err := f.ReadContig(env, 0, got[:32]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.FetchFlight(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dropped == 0 {
		t.Fatal("tiny ring never lapped under load")
	}
	if dropped := stats[0].Snapshot().EventsDropped; dropped < d.Dropped || dropped > d.Dropped+1 {
		t.Fatalf("iostats EventsDropped %d != dump %d (±1) after lapping", dropped, d.Dropped)
	}
}

// TestCrashPostMortem verifies the kill path ships its black box: a
// server killed mid-run captures the flight window at the instant of
// death, both through OnCrashDump and the PostMortem accessor, with
// the victim's final requests in it.
func TestCrashPostMortem(t *testing.T) {
	dumped := make(chan flightrec.Dump, 1)
	tc, c := startStreamCluster(t, 2, 64*1024, 4, func(s *Server) {
		s.Flight = flightrec.New(64)
		if s.Index() == 0 {
			s.OnCrashDump = func(d flightrec.Dump) { dumped <- d }
		}
	})
	env := tc.env
	f, err := c.Create(env, "pm.dat", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteContig(env, 0, patterned(9000)); err != nil {
		t.Fatal(err)
	}
	victim := tc.servers[0]
	if _, ok := victim.PostMortem(); ok {
		t.Fatal("post-mortem exists before any crash")
	}
	victim.Kill(time.Hour)
	d, ok := victim.PostMortem()
	if !ok {
		t.Fatal("no post-mortem after kill")
	}
	if len(d.Events) == 0 {
		t.Fatal("post-mortem dump carries no events")
	}
	var sawIO bool
	for _, ev := range d.Events {
		mt := wire.MsgType(ev.Op)
		if mt == wire.MTWriteContigReq || mt == wire.MTWriteStreamHdr || mt == wire.MTReadContigReq {
			sawIO = true
		}
	}
	if !sawIO {
		t.Fatalf("post-mortem has no I/O events: %+v", d.Events)
	}
	select {
	case cb := <-dumped:
		if len(cb.Events) != len(d.Events) || cb.Server != 0 {
			t.Fatalf("OnCrashDump saw %d events for server %d, PostMortem %d",
				len(cb.Events), cb.Server, len(d.Events))
		}
	default:
		t.Fatal("OnCrashDump never invoked")
	}
}
