package pvfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dtio/internal/storage"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// Streamed transfer parameters. Transfers strictly larger than the
// segment size are pipelined: the payload moves as wire.StreamChunk
// frames under the credit-window protocol documented in internal/wire,
// so the data owner's disk work overlaps the network transfer instead
// of store-and-forwarding the whole payload.
const (
	// DefaultStreamChunkBytes bounds the flow-control segment size (it
	// matches transport.DefaultSimConfig().ChunkBytes).
	DefaultStreamChunkBytes = 64 * 1024
	// DefaultStreamWindow is the maximum number of unacknowledged
	// segments in flight per transfer.
	DefaultStreamWindow = 4
)

// streamParams applies defaults to configured segment/window values.
func streamParams(chunk, window int) (seg, win int64) {
	if chunk <= 0 {
		chunk = DefaultStreamChunkBytes
	}
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return int64(chunk), int64(window)
}

// segLen is the byte count of segment k of a total-byte stream.
func segLen(total, seg, k int64) int64 {
	if n := total - k*seg; n < seg {
		return n
	}
	return seg
}

// bufPool recycles the scratch buffers that stage stream segments and
// frames, so steady-state streaming does not allocate per segment.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a pooled buffer with length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) { bufPool.Put(bp) }

// span is one physical run of bytes on a server's local object.
type span struct{ off, n int64 }

// spanPool recycles the per-request span lists of server read paths.
var spanPool = sync.Pool{New: func() any { return new([]span) }}

// spanCursor feeds a span list's bytes into successive destination
// buffers; spans may straddle segment boundaries.
type spanCursor struct {
	spans []span
	i     int
	off   int64 // bytes consumed of spans[i]
}

func (c *spanCursor) fill(st storage.Store, dst []byte) error {
	for len(dst) > 0 {
		sp := c.spans[c.i]
		n := sp.n - c.off
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if err := st.ReadAt(dst[:n], sp.off+c.off); err != nil {
			return err
		}
		dst = dst[n:]
		c.off += n
		if c.off == sp.n {
			c.i++
			c.off = 0
		}
	}
	return nil
}

// recvAck consumes one StreamAck frame, verifying its sequence.
func recvAck(env transport.Env, conn transport.Conn, want uint32) error {
	raw, err := conn.Recv(env)
	if err != nil {
		return err
	}
	seq, err := wire.DecodeStreamAck(raw)
	if err != nil {
		return err
	}
	if seq != want {
		return fmt.Errorf("stream ack for segment %d, want %d", seq, want)
	}
	return nil
}

// errShortPayload is the request-level error for a write whose payload
// ends before the request's regions are covered.
var errShortPayload = errors.New("short write payload")

// srvStream is the server side of one streamed write: it receives
// segments in order, grants credit as they are consumed, and charges
// the disk per segment so applying overlaps later segments' arrival.
type srvStream struct {
	conn   transport.Conn
	cost   CostModel
	total  int64
	seg    int64
	window int64
	nseg   int64
	next   int64 // next expected segment
	fatal  error // connection-level failure; the conn must close
	ack    []byte
	chunk  wire.StreamChunk
}

// nextChunk receives segment s.next, models its disk ingestion (unless
// discarding after a request failure), and acks it per the credit rule.
func (ss *srvStream) nextChunk(env transport.Env, discard bool) ([]byte, error) {
	if ss.next >= ss.nseg {
		return nil, errShortPayload
	}
	raw, err := ss.conn.Recv(env)
	if err != nil {
		ss.fatal = err
		return nil, err
	}
	if err := wire.DecodeStreamChunk(raw, &ss.chunk); err != nil {
		ss.fatal = err
		return nil, err
	}
	k := ss.next
	want := segLen(ss.total, ss.seg, k)
	if int64(ss.chunk.Seq) != k || int64(len(ss.chunk.Data)) != want || ss.chunk.Err != "" {
		ss.fatal = fmt.Errorf("pvfs: stream chunk seq=%d len=%d err=%q, want seq=%d len=%d",
			ss.chunk.Seq, len(ss.chunk.Data), ss.chunk.Err, k, want)
		return nil, ss.fatal
	}
	ss.next++
	if !discard {
		var d time.Duration
		if bw := ss.cost.DiskWriteBytesPerSec; bw > 0 {
			d = time.Duration(float64(want) / bw * float64(time.Second))
		}
		if k == 0 {
			d += ss.cost.DiskPerOp
		}
		env.DiskUse(d)
	}
	if k+ss.window < ss.nseg {
		ss.ack = wire.AppendStreamAck(ss.ack, uint32(k))
		if err := ss.conn.Send(env, ss.ack); err != nil {
			ss.fatal = err
			return nil, err
		}
	}
	return ss.chunk.Data, nil
}

// drain consumes and acks the rest of the stream after a request-level
// failure, so the connection stays usable for the error response. It
// returns only connection-level (fatal) errors.
func (ss *srvStream) drain(env transport.Env) error {
	if ss.fatal != nil {
		return ss.fatal
	}
	for ss.next < ss.nseg {
		if _, err := ss.nextChunk(env, true); err != nil {
			return ss.fatal
		}
	}
	return nil
}

// writeSrc supplies a write request's payload bytes, either from the
// inline request data or pulled segment-by-segment off a stream.
type writeSrc struct {
	data     []byte // unconsumed inline payload / current segment
	consumed int64
	stream   *srvStream // nil when the payload is inline
}

func inlineSrc(data []byte) *writeSrc { return &writeSrc{data: data} }

// next returns between 1 and want unconsumed payload bytes, receiving
// the next segment when the current one is exhausted.
func (p *writeSrc) next(env transport.Env, want int64) ([]byte, error) {
	if len(p.data) == 0 && p.stream != nil {
		b, err := p.stream.nextChunk(env, false)
		if err != nil {
			return nil, err
		}
		p.data = b
	}
	if len(p.data) == 0 {
		return nil, errShortPayload
	}
	n := int64(len(p.data))
	if n > want {
		n = want
	}
	b := p.data[:n]
	p.data = p.data[n:]
	p.consumed += n
	return b, nil
}

// leftover reports payload bytes beyond what the request consumed.
func (p *writeSrc) leftover() int64 {
	if p.stream != nil {
		return p.stream.total - p.consumed
	}
	return int64(len(p.data))
}

// drain disposes of an aborted streamed payload; nil for inline.
func (p *writeSrc) drain(env transport.Env) error {
	if p.stream == nil {
		return nil
	}
	return p.stream.drain(env)
}

// streamRead sends total bytes described by spans as a flow-controlled
// segment stream: segment k+1 comes off the disk while segment k is on
// the wire. A storage failure mid-stream sends a terminal error chunk
// and returns an error, closing the connection.
func (s *Server) streamRead(env transport.Env, conn transport.Conn, st storage.Store, spans []span, total, seg, window int64) error {
	nseg := (total + seg - 1) / seg
	hdr := wire.EncodeReadStreamHdr(&wire.ReadStreamHdr{
		Total: total, SegBytes: int32(seg), Window: int32(window),
	})
	if err := conn.Send(env, hdr); err != nil {
		return err
	}
	bw := s.cost.DiskReadBytesPerSec
	diskFor := func(k int64) time.Duration {
		var d time.Duration
		if bw > 0 {
			d = time.Duration(float64(segLen(total, seg, k)) / bw * float64(time.Second))
		}
		if k == 0 {
			d += s.cost.DiskPerOp
		}
		return d
	}
	fp := getBuf(13 + int(seg)) // chunk frame: type+seq+err+len = 13 bytes of header
	defer func() { putBuf(fp) }()
	frame := *fp
	cur := spanCursor{spans: spans}
	// Segment 0 comes off the disk before anything is on the wire.
	env.DiskUse(diskFor(0))
	for k := int64(0); k < nseg; k++ {
		nk := segLen(total, seg, k)
		frame = wire.AppendStreamChunkHdr(frame[:0], uint32(k), int(nk))
		h := len(frame)
		frame = frame[:h+int(nk)]
		*fp = frame
		if err := cur.fill(st, frame[h:]); err != nil {
			// Terminal error chunk, then fail the connection: the client
			// cannot resynchronize a half-delivered stream.
			conn.Send(env, wire.EncodeStreamChunk(&wire.StreamChunk{Seq: uint32(k), Err: err.Error()}))
			return fmt.Errorf("pvfs: streamed read: %w", err)
		}
		var nextDisk time.Duration
		if k+1 < nseg {
			nextDisk = diskFor(k + 1)
		}
		k := k
		err := env.OverlapDisk(nextDisk, func() error {
			if k >= window {
				if err := recvAck(env, conn, uint32(k-window)); err != nil {
					return err
				}
			}
			return conn.Send(env, frame)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
