package pvfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dtio/internal/storage"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// Streamed transfer parameters. Transfers strictly larger than the
// segment size are pipelined: the payload moves as wire.StreamChunk
// frames under the credit-window protocol documented in internal/wire,
// so the data owner's disk work overlaps the network transfer instead
// of store-and-forwarding the whole payload.
const (
	// DefaultStreamChunkBytes bounds the flow-control segment size (it
	// matches transport.DefaultSimConfig().ChunkBytes).
	DefaultStreamChunkBytes = 64 * 1024
	// DefaultStreamWindow is the maximum number of unacknowledged
	// segments in flight per transfer.
	DefaultStreamWindow = 4
)

// streamParams applies defaults to configured segment/window values.
func streamParams(chunk, window int) (seg, win int64) {
	if chunk <= 0 {
		chunk = DefaultStreamChunkBytes
	}
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return int64(chunk), int64(window)
}

// segLen is the byte count of segment k of a total-byte stream.
func segLen(total, seg, k int64) int64 {
	if n := total - k*seg; n < seg {
		return n
	}
	return seg
}

// bufPool recycles the scratch buffers that stage stream segments and
// frames, so steady-state streaming does not allocate per segment.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a pooled buffer with length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) { bufPool.Put(bp) }

// recvAck consumes one StreamAck frame, verifying its sequence.
func recvAck(env transport.Env, conn transport.Conn, want uint32) error {
	raw, err := conn.Recv(env)
	if err != nil {
		return err
	}
	seq, err := wire.DecodeStreamAck(raw)
	if err != nil {
		return err
	}
	if seq != want {
		return fmt.Errorf("stream ack for segment %d, want %d", seq, want)
	}
	return nil
}

// errShortPayload is the request-level error for a write whose payload
// ends before the request's regions are covered.
var errShortPayload = errors.New("short write payload")

// srvStream is the server side of one streamed write: it receives
// segments in order and grants credit as they are consumed. Disk time
// is charged by the disk scheduler when each segment's batch of runs is
// dispatched (see applyWrite), not here.
type srvStream struct {
	conn   transport.Conn
	total  int64
	seg    int64
	window int64
	nseg   int64
	next   int64 // next expected segment
	fatal  error // connection-level failure; the conn must close
	ack    []byte
	chunk  wire.StreamChunk
}

// nextChunk receives segment s.next and acks it per the credit rule.
func (ss *srvStream) nextChunk(env transport.Env, discard bool) ([]byte, error) {
	if ss.next >= ss.nseg {
		return nil, errShortPayload
	}
	raw, err := ss.conn.Recv(env)
	if err != nil {
		ss.fatal = err
		return nil, err
	}
	if err := wire.DecodeStreamChunk(raw, &ss.chunk); err != nil {
		ss.fatal = err
		return nil, err
	}
	k := ss.next
	want := segLen(ss.total, ss.seg, k)
	if int64(ss.chunk.Seq) != k || int64(len(ss.chunk.Data)) != want || ss.chunk.Err != "" {
		ss.fatal = fmt.Errorf("pvfs: stream chunk seq=%d len=%d err=%q, want seq=%d len=%d",
			ss.chunk.Seq, len(ss.chunk.Data), ss.chunk.Err, k, want)
		return nil, ss.fatal
	}
	ss.next++
	if k+ss.window < ss.nseg {
		ss.ack = wire.AppendStreamAck(ss.ack, uint32(k))
		if err := ss.conn.Send(env, ss.ack); err != nil {
			ss.fatal = err
			return nil, err
		}
	}
	return ss.chunk.Data, nil
}

// drain consumes and acks the rest of the stream after a request-level
// failure, so the connection stays usable for the error response. It
// returns only connection-level (fatal) errors.
func (ss *srvStream) drain(env transport.Env) error {
	if ss.fatal != nil {
		return ss.fatal
	}
	for ss.next < ss.nseg {
		if _, err := ss.nextChunk(env, true); err != nil {
			return ss.fatal
		}
	}
	return nil
}

// writeSrc supplies a write request's payload bytes, either from the
// inline request data or pulled segment-by-segment off a stream.
type writeSrc struct {
	data     []byte // unconsumed inline payload / current segment
	consumed int64
	stream   *srvStream // nil when the payload is inline
	// flush (optional, streamed writes) dispatches the runs buffered
	// from the current segment. It runs before the next segment is
	// received, because chunk data aliases the connection's receive
	// buffer and is only valid until the next Recv.
	flush func(env transport.Env) error
}

func inlineSrc(data []byte) *writeSrc { return &writeSrc{data: data} }

// next returns between 1 and want unconsumed payload bytes, receiving
// the next segment when the current one is exhausted.
func (p *writeSrc) next(env transport.Env, want int64) ([]byte, error) {
	if len(p.data) == 0 && p.stream != nil {
		if p.flush != nil {
			if err := p.flush(env); err != nil {
				return nil, err
			}
		}
		b, err := p.stream.nextChunk(env, false)
		if err != nil {
			return nil, err
		}
		p.data = b
	}
	if len(p.data) == 0 {
		return nil, errShortPayload
	}
	n := int64(len(p.data))
	if n > want {
		n = want
	}
	b := p.data[:n]
	p.data = p.data[n:]
	p.consumed += n
	return b, nil
}

// leftover reports payload bytes beyond what the request consumed.
func (p *writeSrc) leftover() int64 {
	if p.stream != nil {
		return p.stream.total - p.consumed
	}
	return int64(len(p.data))
}

// drain disposes of an aborted streamed payload; nil for inline.
func (p *writeSrc) drain(env transport.Env) error {
	if p.stream == nil {
		return nil
	}
	return p.stream.drain(env)
}

// streamRead sends the total bytes collected in sd as a flow-controlled
// segment stream: segment k+1 comes off the disk while segment k is on
// the wire. Each segment's runs are dispatched as one scheduled batch
// (sorted, coalesced, gap-sieved), and its planned disk time replaces
// the old bytes-only per-segment charge; a sequential stream keeps the
// head moving and pays a single positioning charge in total. A storage
// failure mid-stream sends a terminal error chunk and returns an error,
// closing the connection.
func (s *Server) streamRead(env transport.Env, conn transport.Conn, st storage.Store, sd *diskSched, total, seg, window int64) error {
	nseg := (total + seg - 1) / seg
	hdr := wire.EncodeReadStreamHdr(&wire.ReadStreamHdr{
		Total: total, SegBytes: int32(seg), Window: int32(window),
	})
	if err := conn.Send(env, hdr); err != nil {
		return err
	}
	segs := sd.planStream(total, seg)
	fp := getBuf(13 + int(seg)) // chunk frame: type+seq+err+len = 13 bytes of header
	defer func() { putBuf(fp) }()
	frame := *fp
	// Segment 0 comes off the disk before anything is on the wire.
	env.DiskUse(segs[0].cost)
	for k := int64(0); k < nseg; k++ {
		nk := segLen(total, seg, k)
		frame = wire.AppendStreamChunkHdr(frame[:0], uint32(k), int(nk))
		h := len(frame)
		frame = frame[:h+int(nk)]
		*fp = frame
		if err := sd.readBatch(st, segs[k], frame[h:], k*seg); err != nil {
			// Terminal error chunk, then fail the connection: the client
			// cannot resynchronize a half-delivered stream.
			conn.Send(env, wire.EncodeStreamChunk(&wire.StreamChunk{Seq: uint32(k), Err: err.Error()}))
			return fmt.Errorf("pvfs: streamed read: %w", err)
		}
		var nextDisk time.Duration
		if k+1 < nseg {
			nextDisk = segs[k+1].cost
		}
		k := k
		err := env.OverlapDisk(nextDisk, func() error {
			if k >= window {
				if err := recvAck(env, conn, uint32(k-window)); err != nil {
					return err
				}
			}
			return conn.Send(env, frame)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
