package pvfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dtio/internal/storage"
	"dtio/internal/trace"
	"dtio/internal/transport"
	"dtio/internal/wire"
)

// Streamed transfer parameters. Transfers strictly larger than the
// segment size are pipelined: the payload moves as wire.StreamChunk
// frames under the credit-window protocol documented in internal/wire,
// so the data owner's disk work overlaps the network transfer instead
// of store-and-forwarding the whole payload.
const (
	// DefaultStreamChunkBytes bounds the flow-control segment size (it
	// matches transport.DefaultSimConfig().ChunkBytes).
	DefaultStreamChunkBytes = 64 * 1024
	// DefaultStreamWindow is the maximum number of unacknowledged
	// segments in flight per transfer.
	DefaultStreamWindow = 4
)

// streamParams applies defaults to configured segment/window values.
func streamParams(chunk, window int) (seg, win int64) {
	if chunk <= 0 {
		chunk = DefaultStreamChunkBytes
	}
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return int64(chunk), int64(window)
}

// segLen is the byte count of segment k of a total-byte stream.
func segLen(total, seg, k int64) int64 {
	if n := total - k*seg; n < seg {
		return n
	}
	return seg
}

// bufPool recycles the scratch buffers that stage stream segments and
// frames, so steady-state streaming does not allocate per segment.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a pooled buffer with length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) { bufPool.Put(bp) }

// recvAckAtLeast consumes StreamAck frames until one acknowledging
// segment want or later arrives, and returns that sequence. Acks are
// cumulative — a later ack subsumes an earlier one the network dropped,
// and duplicated earlier acks are skipped — so a lossy path cannot
// wedge the credit window as long as any ack gets through. A zero
// timeout blocks indefinitely.
func recvAckAtLeast(env transport.Env, conn transport.Conn, want uint32, timeout time.Duration) (uint32, error) {
	for {
		raw, err := transport.RecvTimeout(env, conn, timeout)
		if err != nil {
			return 0, err
		}
		seq, err := wire.DecodeStreamAck(raw)
		if err != nil {
			return 0, err
		}
		if seq >= want {
			return seq, nil
		}
	}
}

// errShortPayload is the request-level error for a write whose payload
// ends before the request's regions are covered.
var errShortPayload = errors.New("short write payload")

// srvStream is the server side of one streamed write: it receives
// segments in order and grants credit as they are consumed. Disk time
// is charged by the disk scheduler when each segment's batch of runs is
// dispatched (see applyWrite), not here.
type srvStream struct {
	conn   transport.Conn
	total  int64
	seg    int64
	window int64
	nseg   int64
	next   int64                   // next expected segment
	gate   func(env transport.Env) // per-segment stall gate (may be nil)
	fatal  error                   // connection-level failure; the conn must close
	ack    []byte
	chunk  wire.StreamChunk
}

// nextChunk receives segment s.next and acks it per the credit rule.
// Duplicated earlier chunks (fault injection) are consumed and skipped;
// a gap means payload was lost and the connection cannot be salvaged.
func (ss *srvStream) nextChunk(env transport.Env, discard bool) ([]byte, error) {
	if ss.next >= ss.nseg {
		return nil, errShortPayload
	}
	if ss.gate != nil {
		ss.gate(env)
	}
	k := ss.next
	for {
		raw, err := ss.conn.Recv(env)
		if err != nil {
			ss.fatal = err
			return nil, err
		}
		if err := wire.DecodeStreamChunk(raw, &ss.chunk); err != nil {
			ss.fatal = err
			return nil, err
		}
		if int64(ss.chunk.Seq) < k && ss.chunk.Err == "" {
			continue // duplicate of an already-consumed segment
		}
		break
	}
	want := segLen(ss.total, ss.seg, k)
	if int64(ss.chunk.Seq) != k || int64(len(ss.chunk.Data)) != want || ss.chunk.Err != "" {
		ss.fatal = fmt.Errorf("pvfs: stream chunk seq=%d len=%d err=%q, want seq=%d len=%d",
			ss.chunk.Seq, len(ss.chunk.Data), ss.chunk.Err, k, want)
		return nil, ss.fatal
	}
	ss.next++
	if k+ss.window < ss.nseg {
		ss.ack = wire.AppendStreamAck(ss.ack, uint32(k))
		if err := ss.conn.Send(env, ss.ack); err != nil {
			ss.fatal = err
			return nil, err
		}
	}
	return ss.chunk.Data, nil
}

// drain consumes and acks the rest of the stream after a request-level
// failure, so the connection stays usable for the error response. It
// returns only connection-level (fatal) errors.
func (ss *srvStream) drain(env transport.Env) error {
	if ss.fatal != nil {
		return ss.fatal
	}
	for ss.next < ss.nseg {
		if _, err := ss.nextChunk(env, true); err != nil {
			return ss.fatal
		}
	}
	return nil
}

// writeSrc supplies a write request's payload bytes, either from the
// inline request data or pulled segment-by-segment off a stream.
type writeSrc struct {
	data     []byte // unconsumed inline payload / current segment
	consumed int64
	// skip is the resumed-write prefix (bytes already durable from a
	// previous attempt): next reports them as skipped without receiving
	// or touching the disk, and the request walk advances past them.
	skip   int64
	stream *srvStream // nil when the payload is inline
	// flush (optional, streamed writes) dispatches the runs buffered
	// from the current segment. It runs before the next segment is
	// received, because chunk data aliases the connection's receive
	// buffer and is only valid until the next Recv.
	flush func(env transport.Env) error
}

// writeSrcPool recycles inline payload sources across requests, part of
// keeping the write hot path inside the same per-request allocation
// bound as the read path.
var writeSrcPool = sync.Pool{New: func() any { return new(writeSrc) }}

func inlineSrc(data []byte) *writeSrc {
	p := writeSrcPool.Get().(*writeSrc)
	*p = writeSrc{data: data}
	return p
}

// putSrc returns an inline source to the pool, dropping its payload
// reference. Streamed sources hold per-request stream state and are
// not pooled.
func putSrc(p *writeSrc) {
	if p.stream != nil {
		return
	}
	*p = writeSrc{}
	writeSrcPool.Put(p)
}

// next returns up to want unconsumed payload bytes: either skipped > 0
// (already-durable resume prefix the caller must step over without
// writing) or 1..want bytes in b, receiving the next segment when the
// current one is exhausted.
func (p *writeSrc) next(env transport.Env, want int64) (b []byte, skipped int64, err error) {
	if p.skip > 0 {
		n := p.skip
		if n > want {
			n = want
		}
		p.skip -= n
		p.consumed += n
		return nil, n, nil
	}
	if len(p.data) == 0 && p.stream != nil {
		if p.flush != nil {
			if err := p.flush(env); err != nil {
				return nil, 0, err
			}
		}
		b, err := p.stream.nextChunk(env, false)
		if err != nil {
			return nil, 0, err
		}
		p.data = b
	}
	if len(p.data) == 0 {
		return nil, 0, errShortPayload
	}
	n := int64(len(p.data))
	if n > want {
		n = want
	}
	b = p.data[:n]
	p.data = p.data[n:]
	p.consumed += n
	return b, 0, nil
}

// leftover reports payload bytes beyond what the request consumed.
func (p *writeSrc) leftover() int64 {
	if p.stream != nil {
		return p.stream.total - p.consumed
	}
	return int64(len(p.data))
}

// drain disposes of an aborted streamed payload; nil for inline.
func (p *writeSrc) drain(env transport.Env) error {
	if p.stream == nil {
		return nil
	}
	return p.stream.drain(env)
}

// streamRead sends the total bytes collected in sd as a flow-controlled
// segment stream: segment k+1 comes off the disk while segment k is on
// the wire. Each segment's runs are dispatched as one scheduled batch
// (sorted, coalesced, gap-sieved), and its planned disk time replaces
// the old bytes-only per-segment charge; a sequential stream keeps the
// head moving and pays a single positioning charge in total. A storage
// failure mid-stream sends a terminal error chunk and returns an error,
// closing the connection.
func (s *Server) streamRead(env transport.Env, conn transport.Conn, st storage.Store, sd *diskSched, total, seg, window int64, seq uint64, sp *trace.Span) error {
	nseg := (total + seg - 1) / seg
	hdr := wire.EncodeReadStreamHdr(&wire.ReadStreamHdr{
		Seq: seq, Total: total, SegBytes: int32(seg), Window: int32(window),
	})
	if err := conn.Send(env, hdr); err != nil {
		return err
	}
	segs := sd.planStream(total, seg)
	ackedThrough := int64(-1)
	fp := getBuf(13 + int(seg)) // chunk frame: type+seq+err+len = 13 bytes of header
	defer func() { putBuf(fp) }()
	frame := *fp
	// Segment 0 comes off the disk before anything is on the wire.
	env.DiskUse(segs[0].cost)
	for k := int64(0); k < nseg; k++ {
		s.stallGate(env)
		nk := segLen(total, seg, k)
		var ssp *trace.Span
		if sp != nil {
			ssp = s.Tracer.Begin(env, s.spanTrack, "stream:seg", sp.SID())
			ssp.SetAttr("seg", k)
			ssp.SetAttr("bytes", nk)
		}
		frame = wire.AppendStreamChunkHdr(frame[:0], uint32(k), int(nk))
		h := len(frame)
		frame = frame[:h+int(nk)]
		*fp = frame
		if err := sd.readBatch(st, segs[k], frame[h:], k*seg); err != nil {
			// Terminal error chunk, then fail the connection: the client
			// cannot resynchronize a half-delivered stream.
			conn.Send(env, wire.EncodeStreamChunk(&wire.StreamChunk{Seq: uint32(k), Err: err.Error()}))
			return fmt.Errorf("pvfs: streamed read: %w", err)
		}
		var nextDisk time.Duration
		if k+1 < nseg {
			nextDisk = segs[k+1].cost
		}
		k := k
		err := env.OverlapDisk(nextDisk, func() error {
			if k >= window && ackedThrough < k-window {
				got, err := recvAckAtLeast(env, conn, uint32(k-window), 0)
				if err != nil {
					return err
				}
				ackedThrough = int64(got)
			}
			return conn.Send(env, frame)
		})
		ssp.End(env)
		if err != nil {
			return err
		}
	}
	return nil
}
