package fault

import (
	"testing"
	"time"

	"dtio/internal/transport"
)

// TestSameSeedSameSchedule: the decision stream is a pure function of
// the seed — the determinism the recovery tests and benchmarks rely on.
func TestSameSeedSameSchedule(t *testing.T) {
	plan := Plan{
		Seed: 42, DropProb: 0.05, DupProb: 0.05, ResetProb: 0.02,
		DelayProb: 0.1, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
	}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 5000; i++ {
		actA, delA := a.decide()
		actB, delB := b.decide()
		if actA != actB || delA != delB {
			t.Fatalf("decision %d diverged: (%v,%v) vs (%v,%v)", i, actA, delA, actB, delB)
		}
	}
	// A different seed produces a different schedule.
	plan.Seed = 43
	c, d := NewInjector(Plan{Seed: 42, DropProb: 0.05, DupProb: 0.05, ResetProb: 0.02}), NewInjector(Plan{Seed: 43, DropProb: 0.05, DupProb: 0.05, ResetProb: 0.02})
	same := 0
	for i := 0; i < 5000; i++ {
		actC, _ := c.decide()
		actD, _ := d.decide()
		if actC == actD {
			same++
		}
	}
	if same == 5000 {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestRatesApproximateProbabilities: long-run action frequencies track
// the configured probabilities.
func TestRatesApproximateProbabilities(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, DropProb: 0.1, DupProb: 0.05})
	const n = 50000
	var drops, dups int
	for i := 0; i < n; i++ {
		switch act, _ := in.decide(); act {
		case drop:
			drops++
		case dup:
			dups++
		case reset:
			t.Fatal("reset with ResetProb 0")
		}
	}
	if f := float64(drops) / n; f < 0.08 || f > 0.12 {
		t.Fatalf("drop rate %.4f, configured 0.10", f)
	}
	if f := float64(dups) / n; f < 0.035 || f > 0.065 {
		t.Fatalf("dup rate %.4f, configured 0.05", f)
	}
}

func TestPlanLive(t *testing.T) {
	var p *Plan
	if p.Live() {
		t.Fatal("nil plan live")
	}
	if (&Plan{Seed: 9}).Live() {
		t.Fatal("probability-free plan live")
	}
	if !(&Plan{DropProb: 0.01}).Live() {
		t.Fatal("drop plan not live")
	}
	if !(&Plan{Events: []Event{{Server: 1, Kind: Crash}}}).Live() {
		t.Fatal("event plan not live")
	}
}

// TestWrapNetworkFilter: only dials matching the filter are injected;
// the listener side and other addresses pass through untouched.
func TestWrapNetworkFilter(t *testing.T) {
	env := transport.NewRealEnv()
	mem := transport.NewMemNetwork()
	for _, addr := range []string{"io0", "meta"} {
		lis, err := mem.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				c, err := lis.Accept(env)
				if err != nil {
					return
				}
				go func() { // echo server
					for {
						m, err := c.Recv(env)
						if err != nil {
							return
						}
						c.Send(env, m)
					}
				}()
			}
		}()
	}
	in := NewInjector(Plan{Seed: 1, DropProb: 1})
	net := in.WrapNetwork(mem, func(addr string) bool { return addr == "io0" })

	// Unfiltered address: reliable despite DropProb 1.
	mc, err := net.Dial(env, "meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Send(env, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if m, err := transport.RecvTimeout(env, mc, time.Second); err != nil || string(m) != "hi" {
		t.Fatalf("meta echo %q err=%v", m, err)
	}

	// Filtered address: every frame vanishes.
	ic, err := net.Dial(env, "io0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ic.Send(env, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.RecvTimeout(env, ic, 50*time.Millisecond); err != transport.ErrTimeout {
		t.Fatalf("expected timeout on dropped traffic, got %v", err)
	}
	if st := in.Stats(); st.Dropped == 0 {
		t.Fatal("no drops counted")
	}
}

// TestWrapConnDupAndReset: duplication delivers the frame twice;
// reset tears the connection down.
func TestWrapConnDupAndReset(t *testing.T) {
	env := transport.NewRealEnv()
	mem := transport.NewMemNetwork()
	lis, err := mem.Listen("io")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := lis.Accept(env)
		if err != nil {
			return
		}
		c.Send(env, []byte("one"))
	}()
	in := NewInjector(Plan{Seed: 3, DupProb: 1})
	net := in.WrapNetwork(mem, nil)
	c, err := net.Dial(env, "io")
	if err != nil {
		t.Fatal(err)
	}
	// The receive side duplicates the single sent frame.
	for i := 0; i < 2; i++ {
		m, err := transport.RecvTimeout(env, c, time.Second)
		if err != nil || string(m) != "one" {
			t.Fatalf("copy %d: %q err=%v", i, m, err)
		}
	}
	if st := in.Stats(); st.Duplicated == 0 {
		t.Fatal("no duplicates counted")
	}

	rin := NewInjector(Plan{Seed: 4, ResetProb: 1})
	rnet := rin.WrapNetwork(mem, nil)
	rc, err := rnet.Dial(env, "io")
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Send(env, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("expected ErrClosed from injected reset, got %v", err)
	}
	if st := rin.Stats(); st.Resets == 0 {
		t.Fatal("no resets counted")
	}
}
