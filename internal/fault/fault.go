// Package fault is a deterministic, seedable fault injector for the
// cluster's transports and servers (DESIGN.md §11). A Plan describes
// per-message probabilities (drop, duplicate, delay, connection reset)
// plus a schedule of server events (stall, crash-restart, disk
// degrade); an Injector turns the probabilities into a reproducible
// decision stream and wraps a transport.Network so every dialed
// connection to a matching address is subjected to them.
//
// Determinism: decision n is a pure function of (Seed, n). Under the
// virtual-time simulator the order in which connections consume
// decisions is itself deterministic, so one seed fixes the entire fault
// schedule — the property the recovery tests assert.
package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"dtio/internal/transport"
)

// Kind selects a scheduled server event.
type Kind int

// Server event kinds.
const (
	// Stall makes the server hold every request it dequeues for Dur
	// (alive but unresponsive; clients see timeouts, not resets).
	Stall Kind = iota + 1
	// Crash drops the server's listener and every open connection, then
	// restarts it after Dur. Local objects survive, standing in for the
	// server's disk.
	Crash
	// Degrade multiplies the server's modeled disk time by Factor/100
	// until reset with Factor == 100.
	Degrade
	// Kill crashes the server like Crash but loses its local objects:
	// the restart after Dur comes back empty, standing in for a dead
	// machine replaced by a blank spare. Unreplicated data is gone;
	// replica groups re-build the member from its surviving peers
	// (DESIGN.md §16).
	Kill
)

func (k Kind) String() string {
	switch k {
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	case Degrade:
		return "degrade"
	case Kill:
		return "kill"
	}
	return "fault.Kind(?)"
}

// Event is one scheduled server fault.
type Event struct {
	At     time.Duration // virtual time the event fires
	Server int           // cluster I/O server index
	Kind   Kind
	Dur    time.Duration // Stall length / Crash downtime
	Factor int64         // Degrade: disk slowdown in percent
}

// Plan describes a fault workload. The zero value injects nothing.
type Plan struct {
	Seed uint64

	// Per-message probabilities, applied independently to every frame
	// crossing a wrapped connection (each direction separately).
	DropProb  float64
	DupProb   float64
	DelayProb float64
	ResetProb float64 // abrupt connection teardown

	// Injected delay is uniform in [DelayMin, DelayMax].
	DelayMin, DelayMax time.Duration

	Events []Event
}

// Live reports whether the plan injects anything at all.
func (p *Plan) Live() bool {
	if p == nil {
		return false
	}
	return p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0 ||
		p.ResetProb > 0 || len(p.Events) > 0
}

// Stats counts what the injector actually did.
type Stats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Resets     int64
}

// Injector makes the plan's per-message decisions. Safe for concurrent
// use; decisions are consumed from one deterministic stream.
type Injector struct {
	plan Plan
	n    atomic.Uint64

	dropped    atomic.Int64
	duplicated atomic.Int64
	delayed    atomic.Int64
	resets     atomic.Int64
}

// NewInjector prepares an injector for the plan.
func NewInjector(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Dropped:    in.dropped.Load(),
		Duplicated: in.duplicated.Load(),
		Delayed:    in.delayed.Load(),
		Resets:     in.resets.Load(),
	}
}

// splitmix64 is the standard 64-bit finalizer-style generator: a bijective
// scramble good enough for fault schedules and cheap enough for hot paths.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// action is one per-message decision.
type action int

const (
	pass action = iota
	drop
	dup
	reset
)

// decide consumes decision n and returns what to do with one message.
// A delayed message may additionally be dropped/duplicated — delay is an
// independent roll so its probability composes the obvious way.
func (in *Injector) decide() (act action, delay time.Duration) {
	n := in.n.Add(1)
	r := splitmix64(in.plan.Seed ^ n)
	u := float64(r>>11) / (1 << 53)
	switch {
	case u < in.plan.ResetProb:
		act = reset
	case u < in.plan.ResetProb+in.plan.DropProb:
		act = drop
	case u < in.plan.ResetProb+in.plan.DropProb+in.plan.DupProb:
		act = dup
	}
	if in.plan.DelayProb > 0 && act != reset {
		r2 := splitmix64(r)
		if float64(r2>>11)/(1<<53) < in.plan.DelayProb {
			span := in.plan.DelayMax - in.plan.DelayMin
			delay = in.plan.DelayMin
			if span > 0 {
				r3 := splitmix64(r2)
				delay += time.Duration(r3 % uint64(span))
			}
			if delay < 0 {
				delay = 0
			}
		}
	}
	return act, delay
}

// WrapNetwork returns a network identical to inner except that every
// connection dialed to an address matching filter is fault-injected.
// Listeners (and the server ends of connections) pass through
// untouched: both directions of a dialed connection are injected at the
// client end, which covers the full path while leaving control channels
// (e.g. the metadata server) reliable.
func (in *Injector) WrapNetwork(inner transport.Network, filter func(addr string) bool) transport.Network {
	return &network{inner: inner, in: in, filter: filter}
}

type network struct {
	inner  transport.Network
	in     *Injector
	filter func(addr string) bool
}

func (n *network) Listen(addr string) (transport.Listener, error) {
	return n.inner.Listen(addr)
}

func (n *network) Dial(env transport.Env, addr string) (transport.Conn, error) {
	c, err := n.inner.Dial(env, addr)
	if err != nil {
		return nil, err
	}
	if n.filter != nil && !n.filter(addr) {
		return c, nil
	}
	return &conn{inner: c, in: n.in}, nil
}

// conn injects faults on both directions of one dialed connection.
type conn struct {
	inner transport.Conn
	in    *Injector

	mu      sync.Mutex
	pending [][]byte // receive-side duplicates awaiting redelivery
}

// Send applies one decision to an outgoing frame. A dropped frame
// vanishes silently (the peer never sees it); a reset tears the
// connection down mid-conversation, which the caller observes as
// ErrClosed here and the peer observes on its next receive.
func (c *conn) Send(env transport.Env, msg []byte) error {
	act, delay := c.in.decide()
	if delay > 0 {
		c.in.delayed.Add(1)
		env.Sleep(delay)
	}
	switch act {
	case drop:
		c.in.dropped.Add(1)
		return nil
	case dup:
		c.in.duplicated.Add(1)
		if err := c.inner.Send(env, msg); err != nil {
			return err
		}
		return c.inner.Send(env, msg)
	case reset:
		c.in.resets.Add(1)
		c.inner.Close()
		return transport.ErrClosed
	}
	return c.inner.Send(env, msg)
}

// Recv applies one decision to each incoming frame: a drop consumes the
// frame and waits for the next, a duplicate stashes a copy that the
// following Recv returns again.
func (c *conn) Recv(env transport.Env) ([]byte, error) {
	return c.recv(env, 0)
}

// RecvTimeout implements transport.TimedConn. Each underlying wait gets
// the full budget again after an injected drop — slightly generous, but
// the retry layers above only need an upper bound on responsiveness.
func (c *conn) RecvTimeout(env transport.Env, d time.Duration) ([]byte, error) {
	return c.recv(env, d)
}

func (c *conn) recv(env transport.Env, d time.Duration) ([]byte, error) {
	for {
		c.mu.Lock()
		if len(c.pending) > 0 {
			msg := c.pending[0]
			c.pending = c.pending[1:]
			c.mu.Unlock()
			return msg, nil
		}
		c.mu.Unlock()
		msg, err := transport.RecvTimeout(env, c.inner, d)
		if err != nil {
			return nil, err
		}
		act, delay := c.in.decide()
		if delay > 0 {
			c.in.delayed.Add(1)
			env.Sleep(delay)
		}
		switch act {
		case drop:
			c.in.dropped.Add(1)
			continue
		case dup:
			c.in.duplicated.Add(1)
			cp := append([]byte(nil), msg...)
			c.mu.Lock()
			c.pending = append(c.pending, cp)
			c.mu.Unlock()
			return msg, nil
		case reset:
			c.in.resets.Add(1)
			c.inner.Close()
			return nil, transport.ErrClosed
		}
		return msg, nil
	}
}

func (c *conn) Close() error { return c.inner.Close() }
