package mpiio

import (
	"bytes"
	"testing"

	"dtio/internal/datatype"
	"dtio/internal/mpi"
	"dtio/internal/pvfs"
)

// TestConcurrentSieveWriters is the lock-contention stress test: many
// writers data-sieve into interleaved stripes of one file with a sieve
// buffer deliberately smaller than the interleave period, so every
// read-modify-write window covers other ranks' bytes and conflicts with
// their window locks. Without locking this loses updates; with it the
// final image must be exact. Run under -race in CI.
func TestConcurrentSieveWriters(t *testing.T) {
	const (
		nServers = 4
		nProcs   = 6 // ≥ 4 concurrent writers per the acceptance bar
		stripe   = 32
		rows     = 24 // stripes owned by each rank
		rounds   = 3  // rewrites raise contention; data is idempotent
	)
	period := nProcs * stripe
	fileSize := rows * period
	cell := func(rank, i int) byte { return byte(rank*31 + i*7 + (i >> 9)) }

	r := newRig(t, nServers, nProcs)
	name := "stress.dat"
	hints := DefaultHints()
	hints.SieveBufSize = 48 // < period: windows straddle foreign stripes

	r.parallel(func(rank int, comm *mpi.Comm) {
		c := r.client()
		defer c.Close()
		var pf *pvfs.File
		var err error
		if rank == 0 {
			pf, err = c.Create(r.env, name, 64, 0)
		}
		comm.Barrier(r.env)
		if rank != 0 {
			pf, err = c.Open(r.env, name)
		}
		if err != nil {
			t.Error(err)
			return
		}
		f := Open(pf, comm, Sieve, hints)
		// Rank's view: its stripe-th slice of every period.
		view := datatype.Subarray(
			[]int{rows, period}, []int{rows, stripe}, []int{0, rank * stripe},
			datatype.OrderC, datatype.Byte)
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, rows*stripe)
		for i := range data {
			data[i] = cell(rank, i)
		}
		for round := 0; round < rounds; round++ {
			if err := f.WriteAt(r.env, 0, data, datatype.Bytes(int64(len(data))), 1); err != nil {
				t.Errorf("rank %d round %d: %v", rank, round, err)
				return
			}
		}
		comm.Barrier(r.env)
	})
	if t.Failed() {
		return
	}

	c := r.client()
	defer c.Close()
	pf, err := c.Open(r.env, name)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, fileSize)
	if err := pf.ReadContig(r.env, 0, got); err != nil {
		t.Fatal(err)
	}
	for off := range got {
		rank := (off % period) / stripe
		i := (off/period)*stripe + off%stripe
		if want := cell(rank, i); got[off] != want {
			t.Fatalf("byte %d: got %d want %d (rank %d stripe): lost update", off, got[off], want, rank)
		}
	}
	s := r.meta.LockStats()
	if s.Held != 0 || s.Queued != 0 {
		t.Fatalf("leaked lock state after stress: %+v", s)
	}
	if s.Acquires == 0 || s.Releases != s.Immediate+s.Waits {
		t.Fatalf("inconsistent lock accounting: %+v", s)
	}
}

// TestAtomicModeOverlappingWriters: with atomicity enabled, fully
// overlapping noncontiguous independent writes serialize — the final
// file equals exactly one rank's complete pattern, never an interleave.
func TestAtomicModeOverlappingWriters(t *testing.T) {
	const (
		nServers = 4
		nProcs   = 4
		block    = 64
		rows     = 16
	)
	// All ranks share one view: the first block of every 2-block row. The
	// regions written are identical across ranks and noncontiguous, so a
	// non-atomic method would issue several operations that can
	// interleave with other ranks'.
	view := datatype.Subarray(
		[]int{rows, 2 * block}, []int{rows, block}, []int{0, 0},
		datatype.OrderC, datatype.Byte)
	cell := func(rank, i int) byte { return byte(rank*41 + i*11 + 3) }

	for _, m := range []Method{Posix, Sieve, ListIO, DtypeIO} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			r := newRig(t, nServers, nProcs)
			name := "atomic-" + m.String()
			r.parallel(func(rank int, comm *mpi.Comm) {
				c := r.client()
				defer c.Close()
				var pf *pvfs.File
				var err error
				if rank == 0 {
					pf, err = c.Create(r.env, name, 256, 0)
				}
				comm.Barrier(r.env)
				if rank != 0 {
					pf, err = c.Open(r.env, name)
				}
				if err != nil {
					t.Error(err)
					return
				}
				f := Open(pf, comm, m, DefaultHints())
				if err := f.SetAtomicity(true); err != nil {
					t.Error(err)
					return
				}
				if err := f.SetView(0, datatype.Byte, view); err != nil {
					t.Error(err)
					return
				}
				data := make([]byte, rows*block)
				for i := range data {
					data[i] = cell(rank, i)
				}
				if err := f.WriteAt(r.env, 0, data, datatype.Bytes(int64(len(data))), 1); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
				comm.Barrier(r.env)
			})
			if t.Failed() {
				return
			}

			c := r.client()
			defer c.Close()
			pf, err := c.Open(r.env, name)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, rows*2*block)
			if err := pf.ReadContig(r.env, 0, got); err != nil {
				t.Fatal(err)
			}
			// Exactly one rank's pattern, on every written block.
			winner := -1
			for rank := 0; rank < nProcs; rank++ {
				if got[0] == cell(rank, 0) {
					winner = rank
					break
				}
			}
			if winner < 0 {
				t.Fatalf("first byte %d matches no rank", got[0])
			}
			want := make([]byte, rows*2*block)
			for row := 0; row < rows; row++ {
				for j := 0; j < block; j++ {
					want[row*2*block+j] = cell(winner, row*block+j)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: interleaved write despite atomic mode (winner rank %d)", m, winner)
			}
			if s := r.meta.LockStats(); s.Held != 0 || s.Queued != 0 {
				t.Fatalf("leaked lock state: %+v", s)
			}
		})
	}
}
