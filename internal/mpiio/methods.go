package mpiio

import (
	"fmt"
	"time"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/flatten"
	"dtio/internal/pvfs"
	"dtio/internal/transport"
)

// posix breaks the access into one contiguous file-system operation per
// run that is contiguous in both file and memory — the naive method of
// paper §2.1.
func (f *File) posix(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int, write bool) error {
	d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			return nil
		}
		if mo < 0 || mo+n > int64(len(buf)) {
			return fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
		}
		var err error
		if write {
			err = f.pv.WriteContig(env, fo, buf[mo:mo+n])
		} else {
			err = f.pv.ReadContig(env, fo, buf[mo:mo+n])
		}
		if err != nil {
			return err
		}
	}
}

// sieveRead reads large windows covering the noncontiguous regions into a
// scratch buffer and extracts the desired bytes (paper §2.2). Windows
// advance through the file; an out-of-window region simply starts a new
// window (our evaluation patterns are monotone, as ROMIO's flattened
// representations usually are).
func (f *File) sieveRead(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int) error {
	last := f.lastFileByte(pos, nbytes)
	bufSize := f.hints.SieveBufSize
	if bufSize <= 0 {
		bufSize = DefaultHints().SieveBufSize
	}
	var (
		sbuf     []byte
		wlo, whi int64
	)
	var pieces int64
	d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			env.Compute(f.pv.Cost().MemcpyPerPiece * time.Duration(pieces))
			return nil
		}
		pieces++
		if mo < 0 || mo+n > int64(len(buf)) {
			return fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
		}
		for n > 0 {
			if sbuf == nil || fo < wlo || fo >= whi {
				wlo = fo
				whi = wlo + bufSize
				if whi > last+1 {
					whi = last + 1
				}
				sbuf = make([]byte, whi-wlo)
				if err := f.pv.ReadContig(env, wlo, sbuf); err != nil {
					return err
				}
			}
			take := n
			if fo+take > whi {
				take = whi - fo
			}
			copy(buf[mo:mo+take], sbuf[fo-wlo:fo-wlo+take])
			fo += take
			mo += take
			n -= take
		}
	}
}

// sieveWrite is data sieving for writes, the cell the paper's matrix
// left empty (§4.1): each buffer-sized window is locked exclusively at
// the metadata server, read, modified in memory, and written back, so
// the bytes between the desired regions survive concurrent writers.
// Windows advance through the file as in sieveRead. When locked is true
// an atomic-mode lock already spans the whole access and the per-window
// locks are skipped — a second lock from the same holder would queue
// behind the first forever.
func (f *File) sieveWrite(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int, locked bool) error {
	last := f.lastFileByte(pos, nbytes)
	bufSize := f.hints.SieveBufSize
	if bufSize <= 0 {
		bufSize = DefaultHints().SieveBufSize
	}
	var (
		sbuf     []byte
		wlo, whi int64
		lk       *pvfs.FileLock
	)
	defer func() {
		if lk != nil { // error path: do not strand the window lock
			f.pv.Unlock(env, lk)
		}
	}()
	// flush writes the current window back and releases its lock.
	flush := func() error {
		if sbuf == nil {
			return nil
		}
		err := f.pv.WriteContig(env, wlo, sbuf)
		sbuf = nil
		if lk != nil {
			if uerr := f.pv.Unlock(env, lk); err == nil {
				err = uerr
			}
			lk = nil
		}
		return err
	}
	var pieces int64
	d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			if err := flush(); err != nil {
				return err
			}
			env.Compute(f.pv.Cost().MemcpyPerPiece * time.Duration(pieces))
			return nil
		}
		pieces++
		if mo < 0 || mo+n > int64(len(buf)) {
			return fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
		}
		for n > 0 {
			if sbuf == nil || fo < wlo || fo >= whi {
				if err := flush(); err != nil {
					return err
				}
				wlo = fo
				whi = wlo + bufSize
				if whi > last+1 {
					whi = last + 1
				}
				if !locked {
					var err error
					lk, err = f.pv.Lock(env, wlo, whi-wlo, false)
					if err != nil {
						return err
					}
				}
				sbuf = make([]byte, whi-wlo)
				if err := f.pv.ReadContig(env, wlo, sbuf); err != nil {
					return err
				}
			}
			take := n
			if fo+take > whi {
				take = whi - fo
			}
			copy(sbuf[fo-wlo:fo-wlo+take], buf[mo:mo+take])
			fo += take
			mo += take
			n -= take
		}
	}
}

// listIO flattens both sides into offset-length lists and issues list
// I/O calls of at most MaxListRegions regions per side (paper §2.4).
func (f *File) listIO(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int, write bool) error {
	maxRegs := f.hints.ListCap
	if maxRegs <= 0 {
		maxRegs = DefaultHints().ListCap
	}
	if maxRegs > pvfs.MaxListRegions {
		maxRegs = pvfs.MaxListRegions
	}
	var (
		fileRegs, memRegs []flatten.Region
	)
	flush := func() error {
		if len(fileRegs) == 0 {
			return nil
		}
		var err error
		if write {
			err = f.pv.WriteList(env, fileRegs, memRegs, buf)
		} else {
			err = f.pv.ReadList(env, fileRegs, memRegs, buf)
		}
		fileRegs = fileRegs[:0]
		memRegs = memRegs[:0]
		return err
	}
	add := func(regs []flatten.Region, off, n int64) []flatten.Region {
		if k := len(regs); k > 0 && regs[k-1].Off+regs[k-1].Len == off {
			regs[k-1].Len += n
			return regs
		}
		return append(regs, flatten.Region{Off: off, Len: n})
	}
	wouldGrow := func(regs []flatten.Region, off int64) bool {
		k := len(regs)
		return k == 0 || regs[k-1].Off+regs[k-1].Len != off
	}
	d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			break
		}
		if mo < 0 || mo+n > int64(len(buf)) {
			return fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
		}
		if (wouldGrow(fileRegs, fo) && len(fileRegs) == maxRegs) ||
			(wouldGrow(memRegs, mo) && len(memRegs) == maxRegs) {
			if err := flush(); err != nil {
				return err
			}
		}
		fileRegs = add(fileRegs, fo, n)
		memRegs = add(memRegs, mo, n)
	}
	return flush()
}

// dtypeIO ships the view's dataloop to the servers (paper §3): a single
// logical operation regardless of region count. Converting the memory
// type to a dataloop at each call mirrors the prototype's per-operation
// conversion cost.
func (f *File) dtypeIO(env transport.Env, buf []byte, memType *datatype.Type, memCount int, pos int64, write bool) error {
	// Model the per-operation type-conversion cost called out in §3.2.
	env.Compute(time.Duration(f.floop.NumNodes()) * 2 * time.Microsecond)
	a := &pvfs.DtypeAccess{
		Mem:        buf,
		MemLoop:    dataloop.FromType(memType),
		MemCount:   int64(memCount),
		FileLoop:   f.floop,
		Disp:       f.disp,
		Pos:        pos,
		NoCoalesce: f.hints.DtypeNoCoalesce,
	}
	if write {
		return f.pv.WriteDtype(env, a)
	}
	return f.pv.ReadDtype(env, a)
}
