// Package mpiio is a ROMIO-like MPI-IO layer over the pvfs client: file
// views (displacement + etype + filetype), independent and collective
// reads/writes, and the paper's five access methods — POSIX I/O, data
// sieving, two-phase collective I/O, list I/O, and datatype I/O.
//
// An access is (offset in etypes, count × memtype) against the current
// view; the k-th byte of the memory stream maps to the k-th byte of the
// file-view stream, exactly as in MPI-IO.
package mpiio

import (
	"errors"
	"fmt"

	"dtio/internal/dataloop"
	"dtio/internal/datatype"
	"dtio/internal/flatten"
	"dtio/internal/mpi"
	"dtio/internal/pvfs"
	"dtio/internal/transport"
)

// Method selects the noncontiguous access strategy.
type Method int

// The five access methods of the paper's evaluation.
const (
	Posix Method = iota
	Sieve
	TwoPhase
	ListIO
	DtypeIO
)

func (m Method) String() string {
	switch m {
	case Posix:
		return "posix"
	case Sieve:
		return "sieve"
	case TwoPhase:
		return "twophase"
	case ListIO:
		return "listio"
	case DtypeIO:
		return "dtype"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Hints mirror the ROMIO hints the paper's runs used (§4.1: 4 MByte
// buffers for data sieving and collective I/O).
type Hints struct {
	SieveBufSize int64 // data sieving buffer
	CBBufSize    int64 // two-phase collective buffer per aggregator
	// ListCap bounds regions per list I/O request (64 in the paper's
	// PVFS implementation; ablation A1 sweeps it).
	ListCap int
	// DtypeNoCoalesce disables adjacent-region coalescing in datatype
	// I/O processing (ablation A2).
	DtypeNoCoalesce bool
	// NoLocks disables the byte-range lock service, reproducing the
	// paper's lockless PVFS (§4.1): sieving writes fail with
	// ErrSieveWrite and atomic mode cannot be enabled.
	NoLocks bool
	// NoCache opts this file out of the pvfs client's extent cache
	// (pvfs.Client.CacheBytes); meaningless when the client has caching
	// off. Paths that take their own non-revocable byte-range locks
	// (atomic mode, sieving writes, two-phase) bypass the cache
	// regardless — a cached access under the holder's own lock would
	// queue behind it forever.
	NoCache bool
}

// DefaultHints returns the paper's configuration.
func DefaultHints() Hints {
	return Hints{SieveBufSize: 4 << 20, CBBufSize: 4 << 20, ListCap: 64}
}

// ErrSieveWrite is returned for data sieving writes under the NoLocks
// hint: the read-modify-write needs its window locked, and the hint
// reproduces the paper's lockless PVFS (§4.1). With locks available
// (the default) sieving writes take the real path in sieveWrite.
var ErrSieveWrite = errors.New("mpiio: data sieving writes require file locking, disabled by the NoLocks hint")

// ErrAtomicTwoPhase rejects atomic mode on a two-phase file: ranks
// holding byte-range locks across two-phase's internal barriers can
// deadlock (ROMIO likewise implements atomic mode only for independent
// operations).
var ErrAtomicTwoPhase = errors.New("mpiio: atomic mode is incompatible with two-phase collective I/O")

// ErrAtomicNoLocks rejects atomic mode when the NoLocks hint disabled
// the byte-range lock service it is built on.
var ErrAtomicNoLocks = errors.New("mpiio: atomic mode needs the byte-range lock service, disabled by the NoLocks hint")

// ErrCollectiveOnly is returned when two-phase is used on an independent
// operation.
var ErrCollectiveOnly = errors.New("mpiio: two-phase is a collective optimization; use ReadAtAll/WriteAtAll")

// File is an open MPI-IO file.
type File struct {
	pv     *pvfs.File
	comm   *mpi.Comm // nil for independent-only use
	method Method
	hints  Hints
	atomic bool

	disp     int64
	etype    *datatype.Type
	filetype *datatype.Type
	floop    *dataloop.Loop

	// ptr is the individual file pointer, in etypes (see pointer.go).
	ptr int64
}

// Open wraps an open pvfs file. comm may be nil if only independent
// operations are used. The default view is disp 0, etype and filetype
// both bytes.
func Open(pv *pvfs.File, comm *mpi.Comm, method Method, hints Hints) *File {
	pv.NoCache = hints.NoCache
	f := &File{pv: pv, comm: comm, method: method, hints: hints}
	if err := f.SetView(0, datatype.Byte, datatype.Byte); err != nil {
		panic("mpiio: default view rejected: " + err.Error())
	}
	return f
}

// Method reports the access method.
func (f *File) Method() Method { return f.method }

// SetAtomicity switches MPI-IO atomic mode, as MPI_File_set_atomicity.
// In atomic mode every operation is made atomic with respect to other
// processes by bracketing it with one byte-range lock spanning the
// access's first through last file byte — shared for reads, exclusive
// for writes. Overlapping independent writes then serialize instead of
// interleaving.
func (f *File) SetAtomicity(enable bool) error {
	if !enable {
		f.atomic = false
		return nil
	}
	if f.method == TwoPhase {
		return ErrAtomicTwoPhase
	}
	if f.hints.NoLocks {
		return ErrAtomicNoLocks
	}
	f.atomic = true
	return nil
}

// Atomicity reports whether atomic mode is enabled.
func (f *File) Atomicity() bool { return f.atomic }

// SetView establishes the file view, as MPI_File_set_view.
func (f *File) SetView(disp int64, etype, filetype *datatype.Type) error {
	if disp < 0 {
		return fmt.Errorf("mpiio: negative displacement %d", disp)
	}
	if etype == nil || filetype == nil {
		return errors.New("mpiio: nil etype or filetype")
	}
	if etype.Size() <= 0 {
		return errors.New("mpiio: etype must have positive size")
	}
	if filetype.Size() <= 0 || filetype.Size()%etype.Size() != 0 {
		return fmt.Errorf("mpiio: filetype size %d not a positive multiple of etype size %d",
			filetype.Size(), etype.Size())
	}
	if filetype.TrueLB() < 0 {
		return fmt.Errorf("mpiio: filetype true lower bound %d is negative", filetype.TrueLB())
	}
	f.disp = disp
	f.etype = etype
	f.filetype = filetype
	f.floop = dataloop.FromType(filetype)
	f.ptr = 0 // MPI_File_set_view resets the individual pointer
	return nil
}

// access validates one operation's parameters and returns (pos, nbytes):
// the window of the view's byte stream.
func (f *File) access(offset int64, buf []byte, memType *datatype.Type, memCount int) (pos, nbytes int64, err error) {
	if offset < 0 || memCount < 0 {
		return 0, 0, fmt.Errorf("mpiio: bad offset %d / count %d", offset, memCount)
	}
	if memType == nil {
		return 0, 0, errors.New("mpiio: nil memory type")
	}
	if memType.TrueLB() < 0 {
		return 0, 0, fmt.Errorf("mpiio: memory type true lower bound %d is negative", memType.TrueLB())
	}
	nbytes = int64(memCount) * memType.Size()
	if nbytes > 0 {
		span := memType.TrueUB() + int64(memCount-1)*memType.Extent()
		if span > int64(len(buf)) {
			return 0, 0, fmt.Errorf("mpiio: memory type spans %d bytes, buffer has %d", span, len(buf))
		}
	}
	return offset * f.etype.Size(), nbytes, nil
}

// tiles reports how many filetype tiles the window [pos, pos+n) touches.
func (f *File) tiles(pos, nbytes int64) int64 {
	return (pos + nbytes + f.floop.Size - 1) / f.floop.Size
}

// fileWindow iterates the file regions (absolute offsets, coalesced) of
// the view window.
func (f *File) fileWindow(pos, nbytes int64) *flatten.Iter {
	return flatten.NewIterAt(f.floop, f.tiles(pos, nbytes), f.disp, pos, nbytes, true)
}

// memSource iterates the memory regions of the access.
func memSource(memType *datatype.Type, memCount int) *flatten.Iter {
	return flatten.NewIter(dataloop.FromType(memType), int64(memCount), 0, true)
}

// lastFileByte reports the absolute file offset of the window's final
// stream byte.
func (f *File) lastFileByte(pos, nbytes int64) int64 {
	it := flatten.NewIterAt(f.floop, f.tiles(pos, nbytes), f.disp, pos+nbytes-1, 1, false)
	r, ok := it.Next()
	if !ok {
		return -1
	}
	return r.Off
}

// firstFileByte reports the absolute file offset of the window's first
// stream byte.
func (f *File) firstFileByte(pos, nbytes int64) int64 {
	it := flatten.NewIterAt(f.floop, f.tiles(pos, nbytes), f.disp, pos, 1, false)
	r, ok := it.Next()
	if !ok {
		return -1
	}
	return r.Off
}

func (f *File) stats() *iostatsRef { return &iostatsRef{f.pv} }

// iostatsRef forwards to the pvfs client's stats if present.
type iostatsRef struct{ pv *pvfs.File }

func (r *iostatsRef) desired(n int64) {
	if st := r.pv.ClientStats(); st != nil {
		st.AddDesired(n)
	}
}

func (r *iostatsRef) resent(n int64) {
	if st := r.pv.ClientStats(); st != nil {
		st.AddResent(n)
	}
}

// ReadAt performs an independent read of memCount memType instances from
// the view at offset (in etypes).
func (f *File) ReadAt(env transport.Env, offset int64, buf []byte, memType *datatype.Type, memCount int) error {
	return f.rw(env, offset, buf, memType, memCount, false, false)
}

// WriteAt performs an independent write.
func (f *File) WriteAt(env transport.Env, offset int64, buf []byte, memType *datatype.Type, memCount int) error {
	return f.rw(env, offset, buf, memType, memCount, true, false)
}

// ReadAtAll performs a collective read: every rank of the communicator
// must call it.
func (f *File) ReadAtAll(env transport.Env, offset int64, buf []byte, memType *datatype.Type, memCount int) error {
	return f.rw(env, offset, buf, memType, memCount, false, true)
}

// WriteAtAll performs a collective write.
func (f *File) WriteAtAll(env transport.Env, offset int64, buf []byte, memType *datatype.Type, memCount int) error {
	return f.rw(env, offset, buf, memType, memCount, true, true)
}

func (f *File) rw(env transport.Env, offset int64, buf []byte, memType *datatype.Type, memCount int, write, collective bool) error {
	pos, nbytes, err := f.access(offset, buf, memType, memCount)
	if err != nil {
		return err
	}
	if f.method == TwoPhase {
		if !collective {
			return ErrCollectiveOnly
		}
		if f.comm == nil {
			return errors.New("mpiio: two-phase needs a communicator")
		}
		f.stats().desired(nbytes)
		// Flush before the exchange's internal barriers — a rank blocked
		// in a barrier cannot answer lease revocations — and run the
		// phase uncached (aggregators hold their own window state; a
		// lease acquired mid-phase would cross the next barrier).
		if err := f.pv.Sync(env); err != nil {
			return err
		}
		return f.uncached(func() error {
			return f.twoPhase(env, pos, nbytes, buf, memType, memCount, write)
		})
	}
	if collective {
		// Collective operations leave no leases held (DESIGN.md §13):
		// callers barrier around them, and a rank blocked in a barrier
		// cannot answer revocations.
		if err := f.pv.Sync(env); err != nil {
			return err
		}
	}
	if nbytes == 0 {
		return nil
	}
	f.stats().desired(nbytes)
	var outer *pvfs.FileLock
	if f.atomic {
		lo := f.firstFileByte(pos, nbytes)
		hi := f.lastFileByte(pos, nbytes)
		var err error
		outer, err = f.pv.Lock(env, lo, hi+1-lo, !write)
		if err != nil {
			return err
		}
	}
	if outer != nil {
		// A cached access under our own atomic-mode lock would queue its
		// lease behind that lock forever.
		err = f.uncached(func() error {
			return f.dispatch(env, pos, nbytes, buf, memType, memCount, write, true)
		})
	} else {
		err = f.dispatch(env, pos, nbytes, buf, memType, memCount, write, false)
	}
	if outer != nil {
		if uerr := f.pv.Unlock(env, outer); err == nil {
			err = uerr
		}
	}
	if collective {
		if serr := f.pv.Sync(env); err == nil {
			err = serr
		}
	}
	return err
}

// uncached runs fn with the pvfs file's extent cache bypassed, for
// paths that hold their own non-revocable locks over the accessed
// ranges.
func (f *File) uncached(fn func() error) error {
	save := f.pv.NoCache
	f.pv.NoCache = true
	err := fn()
	f.pv.NoCache = save
	return err
}

// Sync flushes this file's cached writes to the I/O servers and
// releases the cache's leases, as MPI_File_sync. Independent-mode users
// of a caching client must call it before synchronizing with other
// ranks outside the file system (collective operations sync
// themselves). A no-op when the client has caching off.
func (f *File) Sync(env transport.Env) error { return f.pv.Sync(env) }

// dispatch runs the access with the independent method. locked reports
// that an atomic-mode lock already covers the whole access, so sieving
// writes must not take their per-window locks (a second lock from the
// same holder would queue behind the first forever).
func (f *File) dispatch(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int, write, locked bool) error {
	switch f.method {
	case Posix:
		return f.posix(env, pos, nbytes, buf, memType, memCount, write)
	case Sieve:
		if write {
			if f.hints.NoLocks {
				return ErrSieveWrite
			}
			// Sieving writes lock their windows; cache accesses inside
			// would queue behind our own lock.
			return f.uncached(func() error {
				return f.sieveWrite(env, pos, nbytes, buf, memType, memCount, locked)
			})
		}
		return f.sieveRead(env, pos, nbytes, buf, memType, memCount)
	case ListIO:
		return f.listIO(env, pos, nbytes, buf, memType, memCount, write)
	case DtypeIO:
		return f.dtypeIO(env, buf, memType, memCount, pos, write)
	}
	return fmt.Errorf("mpiio: unknown method %v", f.method)
}
