package mpiio

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dtio/internal/datatype"
	"dtio/internal/iostats"
	"dtio/internal/mpi"
	"dtio/internal/pvfs"
	"dtio/internal/transport"
)

// rig is an in-process cluster plus an MPI world.
type rig struct {
	net   *transport.MemNetwork
	env   transport.Env
	addrs []string
	fab   *transport.MemFabric
	size  int
	meta  *pvfs.MetaServer
}

func newRig(t *testing.T, nServers, nProcs int) *rig {
	t.Helper()
	r := &rig{
		net:  transport.NewMemNetwork(),
		env:  transport.NewRealEnv(),
		fab:  transport.NewMemFabric(nProcs),
		size: nProcs,
	}
	meta := pvfs.NewMetaServer(r.net, "meta", nServers)
	r.meta = meta
	go meta.Serve(r.env)
	var servers []*pvfs.Server
	for i := 0; i < nServers; i++ {
		addr := fmt.Sprintf("io%d", i)
		s := pvfs.NewServer(r.net, addr, i, pvfs.CostModel{})
		servers = append(servers, s)
		r.addrs = append(r.addrs, addr)
		go s.Serve(r.env)
	}
	t.Cleanup(func() {
		meta.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	// Readiness probe must touch every I/O server, not just metadata.
	c := pvfs.NewClient(r.net, "meta", r.addrs, pvfs.CostModel{})
	defer c.Close()
	for i := 0; i < 2000; i++ {
		f, err := c.Create(r.env, "__probe__", 64, 0)
		if err != nil {
			f, err = c.Open(r.env, "__probe__")
		}
		if err == nil {
			if _, err := f.Size(r.env); err == nil {
				c.Remove(r.env, "__probe__")
				return r
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("rig did not come up")
	return nil
}

// client opens a fresh pvfs client.
func (r *rig) client() *pvfs.Client {
	return pvfs.NewClient(r.net, "meta", r.addrs, pvfs.CostModel{})
}

// parallel runs fn on every rank concurrently and waits.
func (r *rig) parallel(fn func(rank int, comm *mpi.Comm)) {
	var wg sync.WaitGroup
	for rank := 0; rank < r.size; rank++ {
		wg.Add(1)
		rank := rank
		go func() {
			defer wg.Done()
			fn(rank, mpi.NewComm(r.fab, rank, r.size))
		}()
	}
	wg.Wait()
}

// blockView builds a per-rank 2-D block view: array rows x cols bytes,
// each rank owning a contiguous band of rows split into row pieces of
// blockCols bytes — a tile-reader-like pattern.
func blockView(rank, nProcs, rows, cols, blockCols int) *datatype.Type {
	rowsPer := rows / nProcs
	return datatype.Subarray(
		[]int{rows, cols},
		[]int{rowsPer, blockCols},
		[]int{rank * rowsPer, (cols - blockCols) / 2},
		datatype.OrderC, datatype.Byte)
}

func TestSetViewValidation(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, err := c.Create(r.env, "v.dat", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := Open(pf, nil, Posix, DefaultHints())
	if err := f.SetView(-1, datatype.Byte, datatype.Byte); err == nil {
		t.Fatal("negative disp accepted")
	}
	// filetype not a multiple of etype
	if err := f.SetView(0, datatype.Int32, datatype.Bytes(6)); err == nil {
		t.Fatal("etype mismatch accepted")
	}
	if err := f.SetView(0, datatype.Int32, datatype.Contiguous(3, datatype.Int32)); err != nil {
		t.Fatal(err)
	}
}

// TestSieveWriteRejectedNoLocks pins the paper-faithful ablation: with
// the lock service disabled, sieving writes fail exactly as on the
// lockless PVFS of §4.1, and atomic mode cannot be enabled.
func TestSieveWriteRejectedNoLocks(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "s.dat", 64, 0)
	hints := DefaultHints()
	hints.NoLocks = true
	f := Open(pf, nil, Sieve, hints)
	err := f.WriteAt(r.env, 0, make([]byte, 4), datatype.Int32, 1)
	if err != ErrSieveWrite {
		t.Fatalf("err=%v", err)
	}
	if err := f.SetAtomicity(true); err != ErrAtomicNoLocks {
		t.Fatalf("SetAtomicity under NoLocks: %v", err)
	}
}

func TestAtomicityTwoPhaseRejected(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "a.dat", 64, 0)
	f := Open(pf, nil, TwoPhase, DefaultHints())
	if err := f.SetAtomicity(true); err != ErrAtomicTwoPhase {
		t.Fatalf("err=%v", err)
	}
	if err := f.SetAtomicity(false); err != nil || f.Atomicity() {
		t.Fatalf("disabling atomicity: err=%v atomic=%v", err, f.Atomicity())
	}
}

func TestTwoPhaseIndependentRejected(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "t.dat", 64, 0)
	f := Open(pf, nil, TwoPhase, DefaultHints())
	if err := f.ReadAt(r.env, 0, make([]byte, 4), datatype.Int32, 1); err != ErrCollectiveOnly {
		t.Fatalf("err=%v", err)
	}
}

// writeOracle computes the expected file image of a multi-rank write.
func writeOracle(fileSize int, nProcs, rows, cols, blockCols int, data func(rank int) []byte) []byte {
	img := make([]byte, fileSize)
	for rank := 0; rank < nProcs; rank++ {
		view := blockView(rank, nProcs, rows, cols, blockCols)
		d := data(rank)
		pos := 0
		view.Walk(0, func(off, n int64) bool {
			copy(img[off:off+n], d[pos:pos+int(n)])
			pos += int(n)
			return true
		})
	}
	return img
}

func rankData(rank, n int) []byte {
	out := make([]byte, n)
	r := rand.New(rand.NewSource(int64(rank) + 42))
	r.Read(out)
	return out
}

func TestAllMethodsWriteEquivalence(t *testing.T) {
	const (
		nServers  = 4
		nProcs    = 4
		rows      = 64
		cols      = 512
		blockCols = 300
	)
	perRank := (rows / nProcs) * blockCols
	want := writeOracle(rows*cols, nProcs, rows, cols, blockCols,
		func(rank int) []byte { return rankData(rank, perRank) })

	for _, m := range []Method{Posix, Sieve, TwoPhase, ListIO, DtypeIO} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			r := newRig(t, nServers, nProcs)
			name := "w-" + m.String()
			r.parallel(func(rank int, comm *mpi.Comm) {
				c := r.client()
				defer c.Close()
				var pf *pvfs.File
				var err error
				if rank == 0 {
					pf, err = c.Create(r.env, name, 4096, 0)
				}
				comm.Barrier(r.env)
				if rank != 0 {
					pf, err = c.Open(r.env, name)
				}
				if err != nil {
					t.Error(err)
					return
				}
				f := Open(pf, comm, m, DefaultHints())
				if err := f.SetView(0, datatype.Byte, blockView(rank, nProcs, rows, cols, blockCols)); err != nil {
					t.Error(err)
					return
				}
				data := rankData(rank, perRank)
				if err := f.WriteAtAll(r.env, 0, data, datatype.Bytes(int64(perRank)), 1); err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				comm.Barrier(r.env)
			})
			if t.Failed() {
				return
			}
			// Verify the file image.
			c := r.client()
			defer c.Close()
			pf, err := c.Open(r.env, name)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, rows*cols)
			if err := pf.ReadContig(r.env, 0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("method %v: first diff at byte %d", m, i)
					}
				}
			}
		})
	}
}

func TestAllMethodsReadEquivalence(t *testing.T) {
	const (
		nServers  = 3
		nProcs    = 3
		rows      = 60
		cols      = 400
		blockCols = 250
	)
	perRank := (rows / nProcs) * blockCols

	for _, m := range []Method{Posix, Sieve, TwoPhase, ListIO, DtypeIO} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			r := newRig(t, nServers, nProcs)
			// Populate the file.
			img := make([]byte, rows*cols)
			rand.New(rand.NewSource(7)).Read(img)
			c := r.client()
			pf, err := c.Create(r.env, "r.dat", 1024, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := pf.WriteContig(r.env, 0, img); err != nil {
				t.Fatal(err)
			}
			c.Close()

			r.parallel(func(rank int, comm *mpi.Comm) {
				cc := r.client()
				defer cc.Close()
				pf, err := cc.Open(r.env, "r.dat")
				if err != nil {
					t.Error(err)
					return
				}
				f := Open(pf, comm, m, DefaultHints())
				view := blockView(rank, nProcs, rows, cols, blockCols)
				if err := f.SetView(0, datatype.Byte, view); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, perRank)
				if err := f.ReadAtAll(r.env, 0, got, datatype.Bytes(int64(perRank)), 1); err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				// Oracle: pack the view regions out of the image.
				want := make([]byte, 0, perRank)
				view.Walk(0, func(off, n int64) bool {
					want = append(want, img[off:off+n]...)
					return true
				})
				if !bytes.Equal(got, want) {
					t.Errorf("rank %d: method %v read wrong data", rank, m)
				}
			})
		})
	}
}

func TestNoncontigMemoryAllMethods(t *testing.T) {
	// Memory side noncontiguous (FLASH-like): strided 8-byte elements.
	const nServers = 3
	for _, m := range []Method{Posix, Sieve, ListIO, DtypeIO} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			r := newRig(t, nServers, 1)
			c := r.client()
			defer c.Close()
			img := make([]byte, 8192)
			rand.New(rand.NewSource(3)).Read(img)
			pf, _ := c.Create(r.env, "m.dat", 256, 0)
			pf.WriteContig(r.env, 0, img)

			f := Open(pf, nil, m, DefaultHints())
			fileTy := datatype.Vector(32, 2, 4, datatype.Int32) // 256 data bytes/tile
			if err := f.SetView(16, datatype.Int32, fileTy); err != nil {
				t.Fatal(err)
			}
			memTy := datatype.Vector(32, 1, 2, datatype.Int64) // 256 bytes, strided
			buf := make([]byte, memTy.TrueExtent())
			if err := f.ReadAt(r.env, 0, buf, memTy, 1); err != nil {
				t.Fatal(err)
			}
			// Oracle via manual dual mapping.
			var fileBytes []byte
			fileTy.Walk(0, func(off, n int64) bool {
				fileBytes = append(fileBytes, img[16+off:16+off+n]...)
				return true
			})
			var pos int
			memTy.Walk(0, func(off, n int64) bool {
				if !bytes.Equal(buf[off:off+n], fileBytes[pos:pos+int(n)]) {
					t.Errorf("mismatch at mem offset %d", off)
					return false
				}
				pos += int(n)
				return true
			})
		})
	}
}

func TestReadAtOffsetInEtypes(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i)
	}
	pf, _ := c.Create(r.env, "o.dat", 128, 0)
	pf.WriteContig(r.env, 0, img)
	f := Open(pf, nil, DtypeIO, DefaultHints())
	// View = whole file as int32 etype/filetype; offset counts etypes.
	if err := f.SetView(0, datatype.Int32, datatype.Contiguous(16, datatype.Int32)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := f.ReadAt(r.env, 5, got, datatype.Int64, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img[20:28]) {
		t.Fatalf("offset read got %v want %v", got, img[20:28])
	}
}

func TestTwoPhaseSparseWriteReadModifyWrite(t *testing.T) {
	// Two ranks write disjoint, gappy regions; pre-existing data in the
	// gaps must survive (exercises the aggregator pre-read).
	const nProcs = 2
	r := newRig(t, 2, nProcs)
	c := r.client()
	img := bytes.Repeat([]byte{0xEE}, 2048)
	pf, _ := c.Create(r.env, "sp.dat", 128, 0)
	pf.WriteContig(r.env, 0, img)
	c.Close()

	r.parallel(func(rank int, comm *mpi.Comm) {
		cc := r.client()
		defer cc.Close()
		pf, err := cc.Open(r.env, "sp.dat")
		if err != nil {
			t.Error(err)
			return
		}
		f := Open(pf, comm, TwoPhase, DefaultHints())
		// Rank r writes 4-byte pieces at 64*k + 32*r, k=0..15: gaps remain.
		view := datatype.Vector(16, 1, 16, datatype.Int32)
		if err := f.SetView(int64(32*rank), datatype.Int32, view); err != nil {
			t.Error(err)
			return
		}
		data := bytes.Repeat([]byte{byte(0xA0 + rank)}, 64)
		if err := f.WriteAtAll(r.env, 0, data, datatype.Bytes(64), 1); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
	if t.Failed() {
		return
	}
	cc := r.client()
	defer cc.Close()
	pf2, _ := cc.Open(r.env, "sp.dat")
	got := make([]byte, 2048)
	pf2.ReadContig(r.env, 0, got)
	for i := 0; i < 1024; i++ {
		want := byte(0xEE)
		switch {
		case i%64 < 4:
			want = 0xA0
		case i%64 >= 32 && i%64 < 36:
			want = 0xA1
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], want)
		}
	}
}

func TestStatsMatchPaperShapesTileLike(t *testing.T) {
	// A miniature tile pattern: check the op-count relationships the
	// paper's Table 1 shows: posix ops == rows, list ops == ceil(rows/64),
	// dtype ops == 1, sieve accessed > desired.
	const rows, rowLen, stride = 256, 48, 96
	r := newRig(t, 4, 1)
	mk := func(m Method) iostatsSnapshot {
		c := r.client()
		defer c.Close()
		st := newStats()
		c.Stats = st
		name := fmt.Sprintf("tile-%v", m)
		pf, err := c.Create(r.env, name, 512, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Populate.
		img := make([]byte, rows*stride)
		pf.WriteContig(r.env, 0, img)
		st.Reset()
		f := Open(pf, nil, m, DefaultHints())
		view := datatype.Vector(rows, rowLen, stride, datatype.Byte)
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, rows*rowLen)
		if err := f.ReadAt(r.env, 0, buf, datatype.Bytes(rows*rowLen), 1); err != nil {
			t.Fatal(err)
		}
		return st.Snapshot()
	}
	posix := mk(Posix)
	list := mk(ListIO)
	dtype := mk(DtypeIO)
	sieve := mk(Sieve)
	if posix.IOOps != rows {
		t.Errorf("posix ops=%d want %d", posix.IOOps, rows)
	}
	if list.IOOps != rows/64 {
		t.Errorf("list ops=%d want %d", list.IOOps, rows/64)
	}
	if dtype.IOOps != 1 {
		t.Errorf("dtype ops=%d want 1", dtype.IOOps)
	}
	if sieve.AccessedBytes <= sieve.DesiredBytes {
		t.Errorf("sieve accessed=%d should exceed desired=%d", sieve.AccessedBytes, sieve.DesiredBytes)
	}
	if dtype.ReqBytes >= list.ReqBytes {
		t.Errorf("dtype request payload %d should be far below list %d", dtype.ReqBytes, list.ReqBytes)
	}
	for _, s := range []iostatsSnapshot{posix, list, dtype} {
		if s.AccessedBytes != rows*rowLen {
			t.Errorf("accessed=%d want %d", s.AccessedBytes, rows*rowLen)
		}
	}
}

// Aliases keeping the test bodies terse.
type iostatsSnapshot = iostats.Snapshot

func newStats() *iostats.Stats { return &iostats.Stats{} }
