package mpiio

import (
	"errors"
	"fmt"
	"io"

	"dtio/internal/datatype"
	"dtio/internal/flatten"
	"dtio/internal/transport"
)

// Individual file pointer operations (MPI_File_read / write / seek
// family). The pointer counts etypes within the current view, as the
// standard specifies, and advances by the number of etypes accessed.

// Seek whence values follow the io package (MPI_SEEK_SET/CUR/END).
func (f *File) Seek(env transport.Env, offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.ptr
	case io.SeekEnd:
		end, err := f.sizeEtypes(env)
		if err != nil {
			return 0, err
		}
		base = end
	default:
		return 0, fmt.Errorf("mpiio: bad seek whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("mpiio: seek to negative offset %d", pos)
	}
	f.ptr = pos
	return pos, nil
}

// Tell reports the individual file pointer (in etypes).
func (f *File) Tell() int64 { return f.ptr }

// sizeEtypes converts the file size to a view-relative etype count: the
// number of whole etypes of the view stream that lie within the file.
func (f *File) sizeEtypes(env transport.Env) (int64, error) {
	size, err := f.pv.Size(env)
	if err != nil {
		return 0, err
	}
	if size <= f.disp {
		return 0, nil
	}
	// Walk view tiles until the file end; count covered stream bytes.
	// The view is periodic, so whole tiles can be skipped arithmetically.
	tileExt := f.filetype.Extent()
	tileSize := f.floop.Size
	if tileExt <= 0 {
		return 0, errors.New("mpiio: view has non-positive extent")
	}
	span := size - f.disp
	whole := span / tileExt
	stream := whole * tileSize
	rem := span - whole*tileExt // bytes into the next tile
	if rem > 0 {
		it := flatten.NewIter(f.floop, 1, 0, false)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			if r.Off+r.Len <= rem {
				stream += r.Len
			} else if r.Off < rem {
				stream += rem - r.Off
			}
		}
	}
	return stream / f.etype.Size(), nil
}

// Read reads at the individual file pointer and advances it.
func (f *File) Read(env transport.Env, buf []byte, memType *datatype.Type, memCount int) error {
	if err := f.ReadAt(env, f.ptr, buf, memType, memCount); err != nil {
		return err
	}
	f.advance(memType, memCount)
	return nil
}

// Write writes at the individual file pointer and advances it.
func (f *File) Write(env transport.Env, buf []byte, memType *datatype.Type, memCount int) error {
	if err := f.WriteAt(env, f.ptr, buf, memType, memCount); err != nil {
		return err
	}
	f.advance(memType, memCount)
	return nil
}

// ReadAll / WriteAll are the pointer-relative collectives.
func (f *File) ReadAll(env transport.Env, buf []byte, memType *datatype.Type, memCount int) error {
	if err := f.ReadAtAll(env, f.ptr, buf, memType, memCount); err != nil {
		return err
	}
	f.advance(memType, memCount)
	return nil
}

// WriteAll is the pointer-relative collective write.
func (f *File) WriteAll(env transport.Env, buf []byte, memType *datatype.Type, memCount int) error {
	if err := f.WriteAtAll(env, f.ptr, buf, memType, memCount); err != nil {
		return err
	}
	f.advance(memType, memCount)
	return nil
}

func (f *File) advance(memType *datatype.Type, memCount int) {
	bytes := int64(memCount) * memType.Size()
	f.ptr += bytes / f.etype.Size()
}

// GetSize reports the file size in bytes (MPI_File_get_size).
func (f *File) GetSize(env transport.Env) (int64, error) { return f.pv.Size(env) }

// SetSize truncates or extends the file (MPI_File_set_size). The
// individual file pointer is unchanged, as the standard specifies.
func (f *File) SetSize(env transport.Env, size int64) error {
	if size < 0 {
		return fmt.Errorf("mpiio: negative size %d", size)
	}
	return f.pv.Truncate(env, size)
}

// Preallocate ensures the file is at least size bytes
// (MPI_File_preallocate).
func (f *File) Preallocate(env transport.Env, size int64) error {
	cur, err := f.pv.Size(env)
	if err != nil {
		return err
	}
	if cur >= size {
		return nil
	}
	return f.pv.Truncate(env, size)
}
