package mpiio

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"dtio/internal/datatype"
	"dtio/internal/flatten"
	"dtio/internal/transport"
)

// Two-phase collective I/O (paper §2.3, after Thakur's extended two-phase
// method as implemented in ROMIO):
//
//  1. Ranks exchange their access bounds; the global extent is split into
//     equal contiguous file domains, one per aggregator (every rank
//     aggregates, as with ROMIO's defaults on this many nodes).
//  2. Each aggregator processes its domain in CBBufSize chunks; all ranks
//     execute the same number of rounds.
//  3. Per round, each rank tells each aggregator which byte ranges of the
//     current chunk it needs (reads) or supplies (writes, with data).
//     Aggregators perform one large contiguous file-system operation per
//     round and redistribute over the message-passing fabric.
//
// For writes, a chunk whose incoming regions do not fully cover its span
// is read-modified-written — legal under MPI-IO consistency semantics
// without file locks, which is why two-phase writes work on PVFS while
// data sieving writes do not (paper §4.1).

// tpPlan is the per-operation collective plan, identical on all ranks.
type tpPlan struct {
	gmin, gmax int64   // global access extent
	domLo      []int64 // per-aggregator domain bounds
	domHi      []int64
	cb         int64 // chunk size
	rounds     int
}

// chunk reports aggregator a's round-r chunk, which may be empty.
func (p *tpPlan) chunk(a, r int) (lo, hi int64) {
	lo = p.domLo[a] + int64(r)*p.cb
	hi = lo + p.cb
	if hi > p.domHi[a] {
		hi = p.domHi[a]
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// plan computes the collective plan from each rank's [first, last] file
// byte bounds (first == -1 when the rank accesses nothing).
func (f *File) plan(env transport.Env, first, last int64) *tpPlan {
	firsts := f.comm.AllgatherI64(env, first)
	lasts := f.comm.AllgatherI64(env, last)
	p := &tpPlan{gmin: -1, gmax: -1}
	for i := range firsts {
		if firsts[i] < 0 {
			continue
		}
		if p.gmin < 0 || firsts[i] < p.gmin {
			p.gmin = firsts[i]
		}
		if lasts[i]+1 > p.gmax {
			p.gmax = lasts[i] + 1
		}
	}
	if p.gmin < 0 {
		return p // nobody accesses anything
	}
	n := int64(f.comm.Size())
	total := p.gmax - p.gmin
	domSize := (total + n - 1) / n
	p.domLo = make([]int64, n)
	p.domHi = make([]int64, n)
	for a := int64(0); a < n; a++ {
		lo := p.gmin + a*domSize
		hi := lo + domSize
		if lo > p.gmax {
			lo = p.gmax
		}
		if hi > p.gmax {
			hi = p.gmax
		}
		p.domLo[a], p.domHi[a] = lo, hi
	}
	p.cb = f.hints.CBBufSize
	if p.cb <= 0 {
		p.cb = DefaultHints().CBBufSize
	}
	p.rounds = int((domSize + p.cb - 1) / p.cb)
	if p.rounds == 0 {
		p.rounds = 1
	}
	return p
}

// aggOf reports which aggregator's domain holds file offset off.
func (p *tpPlan) aggOf(off int64) int {
	if len(p.domLo) == 0 {
		return 0
	}
	domSize := p.domHi[0] - p.domLo[0]
	if domSize <= 0 {
		return 0
	}
	a := int((off - p.gmin) / domSize)
	if a >= len(p.domLo) {
		a = len(p.domLo) - 1
	}
	return a
}

// tpPiece is one of this rank's sub-pieces within one aggregator's
// current chunk.
type tpPiece struct {
	fileOff int64
	memOff  int64
	n       int64
}

// roundPieces walks this rank's access and collects, per aggregator, the
// pieces falling into that aggregator's round-r chunk.
func (f *File) roundPieces(p *tpPlan, r int, pos, nbytes int64, memType *datatype.Type, memCount int, buf []byte) ([][]tpPiece, error) {
	size := f.comm.Size()
	out := make([][]tpPiece, size)
	if nbytes == 0 {
		return out, nil
	}
	d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
	for {
		fo, mo, n, ok := d.Next()
		if !ok {
			return out, nil
		}
		if mo < 0 || mo+n > int64(len(buf)) {
			return nil, fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
		}
		// A piece may span several aggregators' chunks.
		aFirst := p.aggOf(fo)
		aLast := p.aggOf(fo + n - 1)
		for a := aFirst; a <= aLast; a++ {
			lo, hi := p.chunk(a, r)
			if lo == hi {
				continue
			}
			c, ok := flatten.Clip(flatten.Region{Off: fo, Len: n}, lo, hi)
			if !ok {
				continue
			}
			out[a] = append(out[a], tpPiece{
				fileOff: c.Off,
				memOff:  mo + (c.Off - fo),
				n:       c.Len,
			})
		}
	}
}

// decodeReq parses a wire region list into (off, len) pairs.
func decodeReq(b []byte) ([]flatten.Region, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("mpiio: truncated request list")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+16*n {
		return nil, fmt.Errorf("mpiio: truncated request list (%d entries)", n)
	}
	out := make([]flatten.Region, n)
	at := 4
	for i := range out {
		out[i].Off = int64(binary.LittleEndian.Uint64(b[at:]))
		out[i].Len = int64(binary.LittleEndian.Uint64(b[at+8:]))
		at += 16
	}
	return out, nil
}

// twoPhase runs the collective read or write.
func (f *File) twoPhase(env transport.Env, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int, write bool) error {
	first, last := int64(-1), int64(-1)
	if nbytes > 0 {
		first = f.firstFileByte(pos, nbytes)
		last = f.lastFileByte(pos, nbytes)
	}
	p := f.plan(env, first, last)
	if p.gmin < 0 {
		return nil // collectively empty
	}
	me := f.comm.Rank()
	size := f.comm.Size()
	st := f.stats()
	for r := 0; r < p.rounds; r++ {
		var mine [][]tpPiece
		if !write {
			var err error
			mine, err = f.roundPieces(p, r, pos, nbytes, memType, memCount, buf)
			if err != nil {
				return err
			}
			var pieces int64
			for a := range mine {
				pieces += int64(len(mine[a]))
			}
			env.Compute(f.pv.Cost().MemcpyPerPiece * time.Duration(pieces))
		}
		if write {
			// Phase 1: ship region lists + data to aggregators.
			send, dataLens, pieces, err := f.buildWriteRound(p, r, pos, nbytes, buf, memType, memCount)
			if err != nil {
				return err
			}
			env.Compute(f.pv.Cost().MemcpyPerPiece * time.Duration(pieces))
			for a := 0; a < size; a++ {
				if a != me {
					st.resent(dataLens[a])
				}
			}
			incoming := f.comm.Alltoallv(env, send)
			// Phase 2: aggregate and write my chunk.
			if err := f.tpWriteChunk(env, p, r, incoming); err != nil {
				return err
			}
		} else {
			// Phase 1: ship region lists to aggregators (adjacent
			// pieces coalesce on the wire; reply data order is
			// unchanged, so the piece-level scatter below still works).
			send := make([][]byte, size)
			for a := 0; a < size; a++ {
				if len(mine[a]) != 0 {
					send[a] = encodeCoalesced(mine[a])
				}
			}
			incoming := f.comm.Alltoallv(env, send)
			// Phase 2: read my chunk and redistribute.
			replies, err := f.tpReadChunk(env, p, r, incoming, me, st)
			if err != nil {
				return err
			}
			got := f.comm.Alltoallv(env, replies)
			// Scatter replies into memory, in the same piece order the
			// requests were generated.
			for a := 0; a < size; a++ {
				data := got[a]
				var cur int64
				for _, pc := range mine[a] {
					if cur+pc.n > int64(len(data)) {
						return fmt.Errorf("mpiio: aggregator %d returned short data", a)
					}
					copy(buf[pc.memOff:pc.memOff+pc.n], data[cur:cur+pc.n])
					cur += pc.n
				}
			}
		}
	}
	return nil
}

// tpReadChunk reads this aggregator's round chunk (clipped to the bytes
// actually requested) and extracts each requester's regions.
func (f *File) tpReadChunk(env transport.Env, p *tpPlan, r int, incoming [][]byte, me int, st *iostatsRef) ([][]byte, error) {
	reqs := make([][]flatten.Region, len(incoming))
	lo, hi := int64(-1), int64(-1)
	for src, msg := range incoming {
		regs, err := decodeReq(msg)
		if err != nil {
			return nil, err
		}
		reqs[src] = regs
		for _, reg := range regs {
			if lo < 0 || reg.Off < lo {
				lo = reg.Off
			}
			if reg.Off+reg.Len > hi {
				hi = reg.Off + reg.Len
			}
		}
	}
	replies := make([][]byte, len(incoming))
	if lo < 0 {
		return replies, nil // nothing requested this round
	}
	cbuf := make([]byte, hi-lo)
	if err := f.pv.ReadContig(env, lo, cbuf); err != nil {
		return nil, err
	}
	for src, regs := range reqs {
		if len(regs) == 0 {
			continue
		}
		var total int64
		for _, reg := range regs {
			total += reg.Len
		}
		out := make([]byte, 0, total)
		for _, reg := range regs {
			if reg.Off < lo || reg.Off+reg.Len > hi {
				return nil, fmt.Errorf("mpiio: request outside chunk")
			}
			out = append(out, cbuf[reg.Off-lo:reg.Off-lo+reg.Len]...)
		}
		replies[src] = out
		if src != me {
			st.resent(total)
		}
	}
	return replies, nil
}

// tpWriteChunk merges incoming regions+data into this aggregator's round
// chunk and writes it with one contiguous operation, pre-reading the
// span first if the incoming regions leave holes.
func (f *File) tpWriteChunk(env transport.Env, p *tpPlan, r int, incoming [][]byte) error {
	type srcRegs struct {
		regs []flatten.Region
		data []byte
	}
	var all []flatten.Region
	parsed := make([]srcRegs, len(incoming))
	lo, hi := int64(-1), int64(-1)
	for src, msg := range incoming {
		regs, err := decodeReq(msg)
		if err != nil {
			return err
		}
		if len(regs) == 0 {
			continue
		}
		var total int64
		for _, reg := range regs {
			total += reg.Len
			if lo < 0 || reg.Off < lo {
				lo = reg.Off
			}
			if reg.Off+reg.Len > hi {
				hi = reg.Off + reg.Len
			}
		}
		dataStart := 4 + 16*len(regs)
		if int64(len(msg)-dataStart) != total {
			return fmt.Errorf("mpiio: write payload %d bytes, regions say %d", len(msg)-dataStart, total)
		}
		parsed[src] = srcRegs{regs: regs, data: msg[dataStart:]}
		all = append(all, regs...)
	}
	if lo < 0 {
		return nil // nothing to write this round
	}
	covered := coveredSpan(all, lo, hi)
	cbuf := make([]byte, hi-lo)
	if !covered {
		// Read-modify-write under MPI-IO semantics (no locks needed).
		if err := f.pv.ReadContig(env, lo, cbuf); err != nil {
			return err
		}
	}
	// Apply in source order for determinism.
	for _, sr := range parsed {
		var cur int64
		for _, reg := range sr.regs {
			if reg.Off < lo || reg.Off+reg.Len > hi {
				return fmt.Errorf("mpiio: write region outside chunk")
			}
			copy(cbuf[reg.Off-lo:reg.Off-lo+reg.Len], sr.data[cur:cur+reg.Len])
			cur += reg.Len
		}
	}
	return f.pv.WriteContig(env, lo, cbuf)
}

// coveredSpan reports whether the union of regions covers [lo, hi).
func coveredSpan(regs []flatten.Region, lo, hi int64) bool {
	if len(regs) == 0 {
		return false
	}
	sorted := make([]flatten.Region, len(regs))
	copy(sorted, regs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	at := lo
	for _, reg := range sorted {
		if reg.Off > at {
			return false
		}
		if end := reg.Off + reg.Len; end > at {
			at = end
		}
	}
	return at >= hi
}

// encodeCoalesced serializes the (fileOff, n) list of pieces, merging
// file-adjacent neighbors.
func encodeCoalesced(pieces []tpPiece) []byte {
	regs := make([]flatten.Region, 0, 16)
	for _, pc := range pieces {
		if k := len(regs); k > 0 && regs[k-1].Off+regs[k-1].Len == pc.fileOff {
			regs[k-1].Len += pc.n
			continue
		}
		regs = append(regs, flatten.Region{Off: pc.fileOff, Len: pc.n})
	}
	out := make([]byte, 0, 4+16*len(regs))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(regs)))
	for _, reg := range regs {
		out = binary.LittleEndian.AppendUint64(out, uint64(reg.Off))
		out = binary.LittleEndian.AppendUint64(out, uint64(reg.Len))
	}
	return out
}

// buildWriteRound streams this rank's access once, producing for each
// aggregator the round-r message: a coalesced region list followed by the
// data bytes in stream order. Nothing piece-granular is materialized, so
// fine-grained patterns (FLASH: single-element memory pieces) stay cheap.
func (f *File) buildWriteRound(p *tpPlan, r int, pos, nbytes int64, buf []byte, memType *datatype.Type, memCount int) (send [][]byte, dataLens []int64, pieces int64, err error) {
	size := f.comm.Size()
	regs := make([][]flatten.Region, size)
	data := make([][]byte, size)
	if nbytes > 0 {
		d := flatten.NewDual(f.fileWindow(pos, nbytes), memSource(memType, memCount))
		for {
			fo, mo, n, ok := d.Next()
			if !ok {
				break
			}
			pieces++
			if mo < 0 || mo+n > int64(len(buf)) {
				return nil, nil, 0, fmt.Errorf("mpiio: memory region [%d,%d) outside buffer", mo, mo+n)
			}
			aFirst := p.aggOf(fo)
			aLast := p.aggOf(fo + n - 1)
			for a := aFirst; a <= aLast; a++ {
				lo, hi := p.chunk(a, r)
				if lo == hi {
					continue
				}
				c, ok := flatten.Clip(flatten.Region{Off: fo, Len: n}, lo, hi)
				if !ok {
					continue
				}
				if k := len(regs[a]); k > 0 && regs[a][k-1].Off+regs[a][k-1].Len == c.Off {
					regs[a][k-1].Len += c.Len
				} else {
					regs[a] = append(regs[a], c)
				}
				m := mo + (c.Off - fo)
				data[a] = append(data[a], buf[m:m+c.Len]...)
			}
		}
	}
	send = make([][]byte, size)
	dataLens = make([]int64, size)
	for a := 0; a < size; a++ {
		if len(regs[a]) == 0 {
			continue
		}
		msg := make([]byte, 0, 4+16*len(regs[a])+len(data[a]))
		msg = binary.LittleEndian.AppendUint32(msg, uint32(len(regs[a])))
		for _, reg := range regs[a] {
			msg = binary.LittleEndian.AppendUint64(msg, uint64(reg.Off))
			msg = binary.LittleEndian.AppendUint64(msg, uint64(reg.Len))
		}
		msg = append(msg, data[a]...)
		send[a] = msg
		dataLens[a] = int64(len(data[a]))
	}
	return send, dataLens, pieces, nil
}
