package mpiio

import (
	"bytes"
	"testing"

	"dtio/internal/datatype"
	"dtio/internal/mpi"
	"dtio/internal/pvfs"
)

func TestZeroSizeOperations(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "z.dat", 64, 0)
	for _, m := range []Method{Posix, Sieve, ListIO, DtypeIO} {
		f := Open(pf, nil, m, DefaultHints())
		if err := f.ReadAt(r.env, 0, nil, datatype.Int32, 0); err != nil {
			t.Fatalf("%v zero read: %v", m, err)
		}
		if err := f.WriteAt(r.env, 0, nil, datatype.Int32, 0); err != nil {
			t.Fatalf("%v zero write: %v", m, err)
		}
	}
}

func TestCollectiveWithEmptyRanks(t *testing.T) {
	// Half the ranks write nothing; the collective must still complete
	// and the other halves' data must land.
	const nProcs = 4
	r := newRig(t, 2, nProcs)
	r.parallel(func(rank int, comm *mpi.Comm) {
		cc := r.client()
		defer cc.Close()
		var pf *pvfsFile
		var err error
		if rank == 0 {
			pf, err = clientCreate(cc, r, "e.dat")
		}
		comm.Barrier(r.env)
		if rank != 0 {
			pf, err = clientOpen(cc, r, "e.dat")
		}
		if err != nil {
			t.Error(err)
			return
		}
		f := Open(pf, comm, TwoPhase, DefaultHints())
		count := 0
		if rank%2 == 0 {
			count = 1
		}
		view := datatype.HIndexed([]int64{16}, []int64{int64(rank) * 16}, datatype.Byte)
		if err := f.SetView(0, datatype.Byte, view); err != nil {
			t.Error(err)
			return
		}
		data := bytes.Repeat([]byte{byte('A' + rank)}, 16)
		if err := f.WriteAtAll(r.env, 0, data, datatype.Bytes(16), count); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
	if t.Failed() {
		return
	}
	c := r.client()
	defer c.Close()
	pf, _ := clientOpen(c, r, "e.dat")
	got := make([]byte, 48)
	pf.ReadContig(r.env, 0, got)
	for i := 0; i < 16; i++ {
		if got[i] != 'A' {
			t.Fatalf("rank 0 data missing at %d", i)
		}
		if got[32+i] != 'C' {
			t.Fatalf("rank 2 data missing at %d", 32+i)
		}
		if got[16+i] != 0 {
			t.Fatalf("rank 1 wrote despite count 0")
		}
	}
}

func TestCollectiveAllEmpty(t *testing.T) {
	const nProcs = 3
	r := newRig(t, 2, nProcs)
	r.parallel(func(rank int, comm *mpi.Comm) {
		cc := r.client()
		defer cc.Close()
		var pf *pvfsFile
		var err error
		if rank == 0 {
			pf, err = clientCreate(cc, r, "ae.dat")
		}
		comm.Barrier(r.env)
		if rank != 0 {
			pf, err = clientOpen(cc, r, "ae.dat")
		}
		if err != nil {
			t.Error(err)
			return
		}
		f := Open(pf, comm, TwoPhase, DefaultHints())
		if err := f.WriteAtAll(r.env, 0, nil, datatype.Byte, 0); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
}

func TestViewDisplacement(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "disp.dat", 64, 0)
	for _, m := range []Method{Posix, ListIO, DtypeIO} {
		f := Open(pf, nil, m, DefaultHints())
		// A 16-byte header precedes the strided records.
		if err := f.SetView(16, datatype.Int32, datatype.Vector(4, 1, 2, datatype.Int32)); err != nil {
			t.Fatal(err)
		}
		data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
		if err := f.WriteAt(r.env, 0, data, datatype.Bytes(16), 1); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		chk := make([]byte, 4)
		pf.ReadContig(r.env, 16, chk) // element 0 lands right after the header
		if !bytes.Equal(chk, data[:4]) {
			t.Fatalf("%v: header displacement ignored: %v", m, chk)
		}
		pf.ReadContig(r.env, 16+8, chk) // element 1 at stride 2
		if !bytes.Equal(chk, data[4:8]) {
			t.Fatalf("%v: stride wrong: %v", m, chk)
		}
	}
}

func TestListCapHintChunksCalls(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	st := newStats()
	c.Stats = st
	pf, _ := c.Create(r.env, "cap.dat", 4096, 0)
	hints := DefaultHints()
	hints.ListCap = 8
	f := Open(pf, nil, ListIO, hints)
	// 32 strided regions with cap 8 -> 4 list calls.
	if err := f.SetView(0, datatype.Int32, datatype.Vector(32, 1, 2, datatype.Int32)); err != nil {
		t.Fatal(err)
	}
	st.Reset()
	buf := make([]byte, 128)
	if err := f.ReadAt(r.env, 0, buf, datatype.Bytes(128), 1); err != nil {
		t.Fatal(err)
	}
	if ops := st.Snapshot().IOOps; ops != 4 {
		t.Fatalf("ops=%d want 4", ops)
	}
}

func TestReadPastEOFZeroFills(t *testing.T) {
	r := newRig(t, 2, 1)
	c := r.client()
	defer c.Close()
	pf, _ := c.Create(r.env, "eof.dat", 64, 0)
	pf.WriteContig(r.env, 0, []byte{1, 2, 3})
	f := Open(pf, nil, DtypeIO, DefaultHints())
	got := make([]byte, 10)
	if err := f.ReadAt(r.env, 0, got, datatype.Bytes(10), 1); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

// Helpers keeping edge tests terse.
type pvfsFile = pvfs.File

func clientCreate(c *pvfs.Client, r *rig, name string) (*pvfs.File, error) {
	return c.Create(r.env, name, 1024, 0)
}

func clientOpen(c *pvfs.Client, r *rig, name string) (*pvfs.File, error) {
	return c.Open(r.env, name)
}
